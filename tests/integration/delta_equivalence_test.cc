// Incremental-validation equivalence (DESIGN.md §12): running the pipeline
// with the delta-aware validator must produce bit-identical decision
// digests to a forced full recompute, across the §2 outage scenario
// catalog, at serial and parallel thread counts. The in-process sibling of
// scripts/check_build.sh --delta-gate, with the extra assertion the shell
// diff cannot make: that the incremental arm actually took the incremental
// path rather than silently falling back to full recompute.
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "controlplane/pipeline.h"
#include "core/validator.h"
#include "faults/scenario_catalog.h"
#include "flow/tm_generators.h"
#include "net/topologies.h"
#include "obs/metrics.h"

namespace hodor {
namespace {

constexpr std::uint64_t kEpochs = 6;
constexpr std::uint64_t kFaultStart = 2;  // window [kFaultStart, kFaultEnd)
constexpr std::uint64_t kFaultEnd = 4;

struct ArmResult {
  std::vector<std::uint64_t> digests;
  double incremental_hardening_runs = 0.0;
};

// One pipeline run over a scenario: healthy epochs, fault onset, steady
// faulted state, recovery. Hermetic metrics so arms don't see each other.
ArmResult RunArm(const net::Topology& topo,
                 const faults::OutageScenario& scenario,
                 const flow::DemandMatrix& base, std::size_t threads,
                 bool force_full) {
  net::GroundTruthState state(topo);
  obs::MetricsRegistry metrics;

  controlplane::PipelineOptions popts;
  popts.num_threads = threads;
  popts.force_full = force_full;
  popts.metrics = &metrics;
  popts.collector.probes.false_loss_rate = 0.0;
  core::ValidatorOptions vopts;
  vopts.hardening.num_threads = threads;
  vopts.metrics = &metrics;

  controlplane::Pipeline pipeline(topo, popts, util::Rng(11));
  const core::Validator validator(topo, vopts);
  pipeline.SetDeltaValidator(validator.AsDeltaPipelineValidator());
  pipeline.Bootstrap(state, base);

  ArmResult result;
  for (std::uint64_t epoch = 0; epoch < kEpochs; ++epoch) {
    const bool faulted = epoch >= kFaultStart && epoch < kFaultEnd;
    if (epoch == kFaultStart && scenario.setup) scenario.setup(state);

    // Drifting demand, like production telemetry: the diff is never
    // trivially empty, so replay eligibility is genuinely decided per
    // check, not handed out by a frozen input.
    util::Rng drift(1000 * epoch + 17);
    flow::DemandMatrix demand = base;
    for (const auto& [i, j] : base.Pairs()) {
      demand.Set(i, j, base.At(i, j) * (1.0 + drift.Uniform(-0.03, 0.03)));
    }

    const auto r = pipeline.RunEpoch(
        state, demand, faulted ? scenario.snapshot_fault : nullptr,
        faulted ? scenario.aggregation
                : controlplane::AggregationFaultHooks{});
    result.digests.push_back(r.decision.provenance.CanonicalDigest());
  }

  const obs::Counter* inc =
      metrics.FindCounter("hodor_hardening_incremental_runs_total", {});
  result.incremental_hardening_runs = inc ? inc->value() : 0.0;
  return result;
}

TEST(DeltaEquivalence, IncrementalDigestsMatchFullAcrossScenarioCatalog) {
  const net::Topology topo = net::Abilene();
  const faults::ScenarioCatalog catalog(topo);

  util::Rng rng(77);
  flow::DemandMatrix demand = flow::GravityDemand(topo, rng);
  flow::NormalizeToMaxUtilization(topo, 0.35, demand);

  double incremental_runs_total = 0.0;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    for (const auto& scenario : catalog.scenarios()) {
      const ArmResult inc = RunArm(topo, scenario, demand, threads, false);
      const ArmResult full = RunArm(topo, scenario, demand, threads, true);
      ASSERT_EQ(inc.digests.size(), full.digests.size());
      for (std::size_t e = 0; e < inc.digests.size(); ++e) {
        EXPECT_EQ(inc.digests[e], full.digests[e])
            << scenario.id << " t" << threads << " epoch " << e
            << ": incremental decision diverged from full recompute";
      }
      // force_full must really disable the incremental path.
      EXPECT_EQ(full.incremental_hardening_runs, 0.0) << scenario.id;
      incremental_runs_total += inc.incremental_hardening_runs;
    }
  }
  // The equivalence above is vacuous if nothing ran incrementally.
  EXPECT_GT(incremental_runs_total, 0.0);
}

TEST(DeltaEquivalence, IncrementalDigestsAreThreadCountInvariant) {
  // The parallel check/hardening path must integrate deterministically:
  // same epochs, same digests, regardless of worker count — including when
  // replayed verdicts and fresh evaluations mix within one epoch.
  const net::Topology topo = net::Abilene();
  const faults::ScenarioCatalog catalog(topo);

  util::Rng rng(77);
  flow::DemandMatrix demand = flow::GravityDemand(topo, rng);
  flow::NormalizeToMaxUtilization(topo, 0.35, demand);

  const auto& scenario = catalog.scenarios().front();
  const ArmResult serial = RunArm(topo, scenario, demand, 1, false);
  const ArmResult threaded = RunArm(topo, scenario, demand, 4, false);
  ASSERT_EQ(serial.digests.size(), threaded.digests.size());
  for (std::size_t e = 0; e < serial.digests.size(); ++e) {
    EXPECT_EQ(serial.digests[e], threaded.digests[e]) << "epoch " << e;
  }
  EXPECT_GT(serial.incremental_hardening_runs, 0.0);
  EXPECT_GT(threaded.incremental_hardening_runs, 0.0);
}

}  // namespace
}  // namespace hodor
