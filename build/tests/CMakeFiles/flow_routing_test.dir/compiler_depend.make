# Empty compiler generated dependencies file for flow_routing_test.
# This may be replaced when dependencies are built.
