#include "replay/replayer.h"

#include <sstream>
#include <unordered_map>

#include "util/strings.h"

namespace hodor::replay {

namespace {

// Diffs recorded vs fresh invariants by (check, invariant) key; a flip is
// a verdict change or an invariant present on only one side.
void DiffInvariants(const std::vector<RecordedInvariant>& recorded,
                    const obs::DecisionRecord& fresh_record,
                    std::vector<InvariantFlip>& out) {
  const auto fresh = fresh_record.Invariants();
  std::unordered_map<std::string, std::size_t> by_key;
  by_key.reserve(recorded.size());
  for (std::size_t i = 0; i < recorded.size(); ++i) {
    by_key.emplace(recorded[i].check + "|" + recorded[i].invariant, i);
  }
  std::vector<bool> matched(recorded.size(), false);
  for (const obs::InvariantRecord& f : fresh) {
    const auto it = by_key.find(f.check + "|" + f.invariant);
    if (it == by_key.end()) {
      InvariantFlip flip;
      flip.check = f.check;
      flip.invariant = f.invariant;
      flip.fresh_present = true;
      flip.fresh = f.verdict;
      flip.fresh_residual = f.residual;
      flip.fresh_threshold = f.threshold;
      out.push_back(std::move(flip));
      continue;
    }
    matched[it->second] = true;
    const RecordedInvariant& r = recorded[it->second];
    if (r.verdict == f.verdict) continue;
    InvariantFlip flip;
    flip.check = f.check;
    flip.invariant = f.invariant;
    flip.recorded_present = true;
    flip.fresh_present = true;
    flip.recorded = r.verdict;
    flip.fresh = f.verdict;
    flip.recorded_residual = r.residual;
    flip.fresh_residual = f.residual;
    flip.recorded_threshold = r.threshold;
    flip.fresh_threshold = f.threshold;
    out.push_back(std::move(flip));
  }
  for (std::size_t i = 0; i < recorded.size(); ++i) {
    if (matched[i]) continue;
    InvariantFlip flip;
    flip.check = recorded[i].check;
    flip.invariant = recorded[i].invariant;
    flip.recorded_present = true;
    flip.recorded = recorded[i].verdict;
    flip.recorded_residual = recorded[i].residual;
    flip.recorded_threshold = recorded[i].threshold;
    out.push_back(std::move(flip));
  }
}

}  // namespace

std::string InvariantFlip::ToString() const {
  std::ostringstream os;
  os << check << "/" << invariant << ": ";
  if (!recorded_present) {
    os << "(absent) -> " << obs::InvariantVerdictName(fresh) << " (residual "
       << util::FormatDouble(fresh_residual, 4) << ", threshold "
       << util::FormatDouble(fresh_threshold, 4) << ")";
  } else if (!fresh_present) {
    os << obs::InvariantVerdictName(recorded) << " -> (absent)";
  } else {
    os << obs::InvariantVerdictName(recorded) << " -> "
       << obs::InvariantVerdictName(fresh) << " (residual "
       << util::FormatDouble(recorded_residual, 4) << " -> "
       << util::FormatDouble(fresh_residual, 4) << ", threshold "
       << util::FormatDouble(recorded_threshold, 4) << " -> "
       << util::FormatDouble(fresh_threshold, 4) << ")";
  }
  return os.str();
}

std::string ReplayReport::Summary() const {
  std::ostringstream os;
  os << "replayed " << epochs_replayed << "/" << epochs_total << " epochs";
  if (epochs_unvalidated > 0) {
    os << " (" << epochs_unvalidated << " recorded without a validator)";
  }
  if (tail_truncated) os << " [torn tail skipped]";
  if (clean()) {
    os << ": no divergence";
  } else {
    os << ": " << divergent_epochs << " divergent, " << verdict_flips
       << " verdict flips";
  }
  return os.str();
}

Replayer::Replayer(ReplayOptions opts) : opts_(std::move(opts)) {
  // The diff is over decision records; without provenance there is nothing
  // to fingerprint.
  opts_.validator.record_provenance = true;
}

util::StatusOr<ReplayReport> Replayer::Replay(
    const EpochLogReader& reader) const {
  const core::Validator validator(reader.topology(), opts_.validator);
  ReplayReport report;
  report.epochs_total = reader.epoch_count();
  report.tail_truncated = reader.tail_truncated();

  // Incremental replay state: the previous decoded snapshot and the delta
  // scratch. Decoded frames are all-dirty (frame_codec), so the diff is an
  // unpruned — still exact — value compare. An unvalidated record still
  // advances `prev`, but the validator's cache epoch won't match the
  // resulting delta, so the next epoch safely falls back to full.
  telemetry::NetworkSnapshot prev(reader.topology(), 0);
  telemetry::FrameDelta delta;
  bool have_prev = false;

  for (std::size_t i = 0; i < reader.epoch_count(); ++i) {
    auto record_or = reader.Read(i);
    if (!record_or.ok()) return record_or.status();
    const EpochRecord& rec = record_or.value();
    const telemetry::FrameDelta* delta_ptr = nullptr;
    if (!opts_.force_full) {
      if (have_prev) {
        rec.snapshot.DiffAgainst(prev, delta);
        delta_ptr = &delta;
      }
      prev = rec.snapshot;
      have_prev = true;
    }
    if (!rec.verdict.validated) {
      ++report.epochs_unvalidated;
      continue;
    }
    const core::ValidationReport fresh =
        validator.Validate(rec.input, rec.snapshot, delta_ptr);
    ++report.epochs_replayed;

    EpochDiff diff;
    diff.epoch = rec.epoch;
    diff.recorded_accept = rec.verdict.accept;
    diff.fresh_accept = fresh.ok();
    diff.recorded_digest = rec.verdict.decision_digest;
    diff.fresh_digest = fresh.provenance.CanonicalDigest();
    if (diff.diverged()) {
      DiffInvariants(rec.verdict.invariants, fresh.provenance, diff.flips);
      ++report.divergent_epochs;
      if (diff.verdict_flipped()) ++report.verdict_flips;
      report.epochs.push_back(std::move(diff));
    } else if (opts_.keep_clean_epochs) {
      report.epochs.push_back(std::move(diff));
    }
  }
  return report;
}

util::StatusOr<ReplayReport> Replayer::ReplayFile(
    const std::string& path) const {
  EpochLogReader reader;
  HODOR_RETURN_IF_ERROR(reader.Open(path));
  return Replay(reader);
}

}  // namespace hodor::replay
