#include "faults/scenario_catalog.h"

#include <algorithm>
#include <unordered_set>

#include "faults/aggregation_faults.h"
#include "faults/snapshot_faults.h"
#include "net/graph_algorithms.h"

namespace hodor::faults {

namespace {

// Nodes ordered by descending degree, ties broken by name: stable,
// topology-intrinsic "importance" order for picking scenario victims.
std::vector<net::NodeId> NodesByDegree(const net::Topology& topo) {
  std::vector<net::NodeId> nodes = topo.NodeIds();
  std::sort(nodes.begin(), nodes.end(), [&](net::NodeId a, net::NodeId b) {
    const std::size_t da = topo.OutLinks(a).size();
    const std::size_t db = topo.OutLinks(b).size();
    if (da != db) return da > db;
    return topo.node(a).name < topo.node(b).name;
  });
  return nodes;
}

// The forward direction of each physical link, in id order.
std::vector<net::LinkId> PhysicalLinks(const net::Topology& topo) {
  std::vector<net::LinkId> out;
  for (const net::Link& l : topo.links()) {
    if (l.id.value() < l.reverse.value()) out.push_back(l.id);
  }
  return out;
}

// Picks up to `want` physical links whose removal (on top of
// `already_removed`) keeps the topology strongly connected. Used by the
// disaster control scenario: a real regional outage partitions capacity,
// not reachability, in the networks we model.
std::vector<net::LinkId> RemovableLinks(const net::Topology& topo,
                                        std::size_t want) {
  std::vector<net::LinkId> removed;
  std::unordered_set<net::LinkId> dead;
  for (net::LinkId e : PhysicalLinks(topo)) {
    if (removed.size() >= want) break;
    dead.insert(e);
    dead.insert(topo.link(e).reverse);
    const bool still_connected = net::IsStronglyConnected(
        topo, [&](net::LinkId x) { return dead.find(x) == dead.end(); });
    if (still_connected) {
      removed.push_back(e);
    } else {
      dead.erase(e);
      dead.erase(topo.link(e).reverse);
    }
  }
  return removed;
}

}  // namespace

ScenarioCatalog::ScenarioCatalog(const net::Topology& topo,
                                 std::uint64_t seed)
    : topo_(&topo) {
  const std::vector<net::NodeId> by_degree = NodesByDegree(topo);
  const std::vector<net::LinkId> physical = PhysicalLinks(topo);
  HODOR_CHECK_MSG(by_degree.size() >= 4 && physical.size() >= 4,
                  "scenario catalog needs a topology with >=4 nodes/links");
  const net::NodeId hub = by_degree[0];
  const net::NodeId second = by_degree[1];
  const net::NodeId third = by_degree[2];
  const net::NodeId leaf = by_degree.back();

  // ---- §2.1: incorrect router signals -----------------------------------

  {
    OutageScenario s;
    s.id = "telemetry-dup-zero";
    s.description =
        "Duplicated telemetry messages randomly report zero packets on a "
        "router's interfaces; the control plane treats those interfaces as "
        "faulty and routes around a healthy router.";
    s.paper_ref = "§2.1 Telemetry Bugs";
    s.fault_class = FaultClass::kRouterSignal;
    s.expected_detection = "topology check (missing links) + R1/R2 hardening";
    s.expect_hardening_flags = true;
    s.snapshot_fault = ZeroedCountersFault(hub, 0.5, seed ^ 0x1);
    std::vector<net::LinkId> hub_links(topo.OutLinks(hub).begin(),
                                       topo.OutLinks(hub).end());
    s.aggregation.topology = LinksMarkedDown(topo, hub_links);
    scenarios_.push_back(std::move(s));
  }
  {
    OutageScenario s;
    s.id = "malformed-telemetry";
    s.description =
        "An OS bug makes most of a router's telemetry unparseable; the "
        "topology service conservatively excludes its links and hands the "
        "controller a partial view.";
    s.paper_ref = "§2.1 Telemetry Bugs";
    s.fault_class = FaultClass::kRouterSignal;
    s.expected_detection =
        "topology check (missing links, via far-end status + probes)";
    s.snapshot_fault = MalformedTelemetry(second, 0.9, seed ^ 0x2);
    scenarios_.push_back(std::move(s));
  }
  {
    OutageScenario s;
    s.id = "delayed-telemetry";
    s.description =
        "A router exports counters from a stale measurement window (delayed "
        "telemetry / wrong QoS marking); its rates describe a traffic "
        "regime that no longer exists.";
    s.paper_ref = "§2.1 Telemetry Bugs";
    s.fault_class = FaultClass::kRouterSignal;
    s.expected_detection = "hardening (R1 flags every counter pair)";
    s.expect_hardening_flags = true;
    s.snapshot_fault = ScaledRouterCounters(second, 0.3);
    scenarios_.push_back(std::move(s));
  }
  {
    OutageScenario s;
    s.id = "drain-restart-race";
    s.description =
        "A controller-job restart races a router marking itself drained for "
        "maintenance: the router can no longer forward, but its drain "
        "signal reads undrained, so traffic keeps arriving.";
    s.paper_ref = "§2.1 Incorrect intent";
    s.fault_class = FaultClass::kRouterSignal;
    s.expected_detection = "drain check (undrained-but-dead, via probes)";
    s.setup = [third](net::GroundTruthState& st) {
      st.SetNodeDrained(third, true);      // the operator's real intent
      st.SetNodeForwarding(third, false);  // maintenance in progress
    };
    s.snapshot_fault = WrongDrainSignal(third, false);
    scenarios_.push_back(std::move(s));
  }
  {
    OutageScenario s;
    s.id = "erroneous-auto-drain";
    s.description =
        "A bad drain condition erroneously marks healthy, traffic-carrying "
        "routers as drained; the controller squeezes their traffic onto the "
        "rest of the network.";
    s.paper_ref = "§2.1 Incorrect intent";
    s.fault_class = FaultClass::kRouterSignal;
    s.expected_detection =
        "drain check warning (drained-but-active; §4.3 case 2 is "
        "fundamentally ambiguous without drain reasons)";
    s.snapshot_fault = ComposeFaults({WrongDrainSignal(hub, true),
                                      WrongDrainSignal(second, true)});
    scenarios_.push_back(std::move(s));
  }
  {
    OutageScenario s;
    s.id = "counter-corruption";
    s.description =
        "A single interface counter reports a wrong value (the Figure 3 "
        "incident): harmless to routing today, but it poisons any system "
        "that trusts raw counters.";
    s.paper_ref = "§4.1 Figure 3";
    s.fault_class = FaultClass::kRouterSignal;
    s.expected_detection = "hardening (R1 detect, R2 repair via conservation)";
    s.input_fault = false;  // the derived inputs stay correct
    s.expect_hardening_flags = true;
    s.snapshot_fault = CorruptLinkCounter(physical[0], CounterSide::kTx,
                                          CounterCorruption::kScale, 1.3);
    scenarios_.push_back(std::move(s));
  }

  // ---- §2.2: incorrect aggregation ---------------------------------------

  {
    OutageScenario s;
    s.id = "partial-topology-stitch";
    s.description =
        "A topology-service rollout stitches the graph before all routers "
        "reported link status; two routers' links are missing and the "
        "controller squeezes everything through the remainder.";
    s.paper_ref = "§2.2 Bugs in the control plane infrastructure";
    s.fault_class = FaultClass::kAggregation;
    s.expected_detection = "topology check (missing links)";
    s.aggregation.topology = PartialTopologyStitch(topo, {hub, second});
    scenarios_.push_back(std::move(s));
  }
  {
    OutageScenario s;
    s.id = "liveness-misreport";
    s.description =
        "An instrumentation service misreports the liveness of particular "
        "links; the controller sees less bandwidth than exists and places "
        "traffic sub-optimally.";
    s.paper_ref = "§2.2 Bugs in the control plane infrastructure";
    s.fault_class = FaultClass::kAggregation;
    s.expected_detection = "topology check (missing links)";
    s.aggregation.topology = LinksMarkedDown(
        topo, {physical[0], physical[1], physical[2]});
    scenarios_.push_back(std::move(s));
  }
  {
    OutageScenario s;
    s.id = "ignored-drain";
    s.description =
        "A router's correct drain signal is partially ignored by the "
        "topology instrumentation: the drained (and non-forwarding) "
        "router's capacity is counted as available.";
    s.paper_ref = "§2.2 Bugs in the control plane infrastructure";
    s.fault_class = FaultClass::kAggregation;
    s.expected_detection = "drain check (input ignores drain)";
    s.setup = [third](net::GroundTruthState& st) {
      st.SetNodeDrained(third, true);
      st.SetNodeForwarding(third, false);
    };
    s.aggregation.drain = DrainsDropped();
    scenarios_.push_back(std::move(s));
  }
  {
    OutageScenario s;
    s.id = "phantom-links";
    s.description =
        "Dead links are presented to the controller as operational; it "
        "overloads links it believes exist and blackholes traffic.";
    s.paper_ref = "§1 (incorrect topology view)";
    s.fault_class = FaultClass::kAggregation;
    s.expected_detection = "topology check (phantom links)";
    s.setup = [physical](net::GroundTruthState& st) {
      st.SetLinkUp(physical[1], false);
      st.SetLinkUp(physical[3], false);
    };
    s.aggregation.topology = LinksMarkedUp(topo, {physical[1], physical[3]});
    scenarios_.push_back(std::move(s));
  }

  // ---- §2.2: external inputs (demand) ------------------------------------

  {
    OutageScenario s;
    s.id = "partial-demand";
    s.description =
        "A demand-instrumentation rollout aggregates end-host measurements "
        "incorrectly: whole ingress routers' demand is missing, so the "
        "programmed routes ignore a large fraction of real traffic.";
    s.paper_ref = "§2.2 External Input";
    s.fault_class = FaultClass::kExternalInput;
    s.expected_detection = "demand check (ingress/egress invariants)";
    s.aggregation.demand = DemandRowsDropped(topo, {hub, second});
    scenarios_.push_back(std::move(s));
  }
  {
    OutageScenario s;
    s.id = "throttle-mismatch";
    s.description =
        "Demand is measured correctly but end hosts are incorrectly "
        "throttled: the traffic admitted to the network differs from the "
        "measured demand the controller plans for.";
    s.paper_ref = "§2.2 External Input";
    s.fault_class = FaultClass::kExternalInput;
    s.expected_detection = "demand check (counters vs demand sums)";
    s.aggregation.demand = DemandScaled(1.7);
    scenarios_.push_back(std::move(s));
  }
  {
    OutageScenario s;
    s.id = "stale-demand-pattern";
    s.description =
        "A caching bug re-attributes demand to the wrong ingress routers: "
        "the matrix keeps a plausible total and plausible magnitudes (so "
        "history-based checks pass), but describes traffic that is not "
        "currently occurring.";
    s.paper_ref = "§1 ('not *currently occurring*'), §2.2 External Input";
    s.fault_class = FaultClass::kExternalInput;
    s.expected_detection = "demand check (per-node invariants)";
    s.aggregation.demand = DemandRowsRotated(topo);
    scenarios_.push_back(std::move(s));
  }

  // ---- controls ------------------------------------------------------------

  {
    OutageScenario s;
    s.id = "healthy";
    s.description = "Nothing is wrong; every signal and input is correct.";
    s.paper_ref = "control";
    s.fault_class = FaultClass::kNone;
    s.input_fault = false;
    s.expected_detection = "none";
    scenarios_.push_back(std::move(s));
  }
  {
    OutageScenario s;
    s.id = "disaster-legit";
    s.description =
        "A regional disaster takes down a third of the links and drains "
        "several routers. The inputs are atypical but CORRECT — static "
        "range checks and anomaly detectors false-positive here; a dynamic "
        "validator must accept.";
    s.paper_ref = "§1 (false-positive risk of static checks)";
    s.fault_class = FaultClass::kNone;
    s.input_fault = false;
    s.expected_detection = "none (inputs correctly reflect the disaster)";
    // Links are chosen so the survivors stay connected: the disaster
    // destroys capacity, not reachability — otherwise stranded demand
    // would make even a correct demand input legitimately inconsistent.
    const std::vector<net::LinkId> downed =
        RemovableLinks(topo, physical.size() / 3);
    const net::LinkId drained_link =
        [&]() {
          std::unordered_set<net::LinkId> dead(downed.begin(), downed.end());
          for (net::LinkId e : physical) {
            if (dead.find(e) == dead.end()) {
              // Must also not disconnect when drained on top of the downs.
              dead.insert(e);
              std::unordered_set<net::LinkId> all;
              for (net::LinkId x : dead) {
                all.insert(x);
                all.insert(topo.link(x).reverse);
              }
              const bool ok = net::IsStronglyConnected(
                  topo,
                  [&](net::LinkId x) { return all.find(x) == all.end(); });
              if (ok) return e;
              dead.erase(e);
            }
          }
          return physical[0];
        }();
    (void)leaf;
    s.setup = [downed, drained_link](net::GroundTruthState& st) {
      for (net::LinkId e : downed) st.SetLinkUp(e, false);
      st.SetLinkDrained(drained_link, true);
    };
    scenarios_.push_back(std::move(s));
  }
}

util::StatusOr<const OutageScenario*> ScenarioCatalog::Find(
    std::string_view id) const {
  for (const OutageScenario& s : scenarios_) {
    if (s.id == id) return &s;
  }
  return util::NotFoundError("no scenario named '" + std::string(id) + "'");
}

}  // namespace hodor::faults
