// HTTP parsing/rendering units plus live TelemetryServer smoke tests.
#include "obs/serve/telemetry_server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>

#include "obs/health/signal_health.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/provenance.h"
#include "obs/serve/http.h"
#include "obs/timeseries.h"
#include "test_util.h"

namespace hodor::obs {
namespace {

// --- http.h units ----------------------------------------------------------

TEST(ParseHttpRequest, ParsesPlainGet) {
  const auto req = ParseHttpRequest("GET /metrics HTTP/1.1\r\nHost: x\r\n");
  ASSERT_TRUE(req.has_value());
  EXPECT_EQ(req->method, "GET");
  EXPECT_EQ(req->target, "/metrics");
  EXPECT_EQ(req->path, "/metrics");
  EXPECT_TRUE(req->query.empty());
}

TEST(ParseHttpRequest, SplitsQueryParameters) {
  const auto req =
      ParseHttpRequest("GET /decisions?last=5&who=a%20b HTTP/1.1\r\n");
  ASSERT_TRUE(req.has_value());
  EXPECT_EQ(req->path, "/decisions");
  EXPECT_EQ(req->query.at("last"), "5");
  EXPECT_EQ(req->query.at("who"), "a b");
}

TEST(ParseHttpRequest, ToleratesBareLf) {
  const auto req = ParseHttpRequest("GET /healthz HTTP/1.0\nHost: x\n");
  ASSERT_TRUE(req.has_value());
  EXPECT_EQ(req->path, "/healthz");
}

TEST(ParseHttpRequest, RejectsMalformedLines) {
  EXPECT_FALSE(ParseHttpRequest("").has_value());
  EXPECT_FALSE(ParseHttpRequest("GET\r\n").has_value());
  EXPECT_FALSE(ParseHttpRequest("GET /x SPDY/3\r\n").has_value());
  EXPECT_FALSE(ParseHttpRequest("GET nopath HTTP/1.1\r\n").has_value());
}

TEST(UrlDecode, DecodesEscapesAndPlus) {
  EXPECT_EQ(UrlDecode("a%20b+c"), "a b c");
  EXPECT_EQ(UrlDecode("100%"), "100%");  // bad escape kept verbatim
  EXPECT_EQ(UrlDecode("%2Fpath"), "/path");
}

TEST(BuildHttpResponse, CarriesStatusLengthAndClose) {
  const std::string resp = BuildHttpResponse(200, "text/plain", "hello");
  EXPECT_NE(resp.find("HTTP/1.1 200 OK\r\n"), std::string::npos);
  EXPECT_NE(resp.find("Content-Length: 5\r\n"), std::string::npos);
  EXPECT_NE(resp.find("Connection: close\r\n"), std::string::npos);
  EXPECT_EQ(resp.substr(resp.size() - 5), "hello");
}

// --- routing (no sockets) --------------------------------------------------

HttpRequest Get(const std::string& target) {
  const auto req = ParseHttpRequest("GET " + target + " HTTP/1.1\r\n");
  EXPECT_TRUE(req.has_value());
  return *req;
}

TEST(TelemetryServerRouting, ServesPublishedMetrics) {
  MetricsRegistry reg;
  reg.GetCounter("hodor_epochs_total").Increment(3);
  TelemetryServer server;
  server.PublishMetrics(&reg);
  const std::string resp = server.HandleRequest(Get("/metrics"));
  EXPECT_NE(resp.find("200 OK"), std::string::npos);
  EXPECT_NE(resp.find("hodor_epochs_total 3"), std::string::npos);
  const std::string json = server.HandleRequest(Get("/metrics.json"));
  EXPECT_NE(json.find("hodor_epochs_total"), std::string::npos);
}

TEST(TelemetryServerRouting, DecisionsRingIsNewestFirstAndTrimmable) {
  TelemetryServer server({.max_decisions = 2});
  for (std::uint64_t e = 1; e <= 3; ++e) {
    DecisionRecord record;
    record.epoch = e;
    server.PublishDecision(record);
  }
  // Ring capacity 2: epoch 1 evicted, epoch 3 first.
  std::string body = testing::HttpBody(server.HandleRequest(Get("/decisions")));
  EXPECT_TRUE(IsValidJson(body)) << body;
  EXPECT_EQ(body.find("\"epoch\":1"), std::string::npos);
  EXPECT_LT(body.find("\"epoch\":3"), body.find("\"epoch\":2"));
  // ?last=1 trims to the newest.
  body = testing::HttpBody(server.HandleRequest(Get("/decisions?last=1")));
  EXPECT_NE(body.find("\"epoch\":3"), std::string::npos);
  EXPECT_EQ(body.find("\"epoch\":2"), std::string::npos);
  // Non-numeric ?last is a client error.
  const std::string bad = server.HandleRequest(Get("/decisions?last=banana"));
  EXPECT_NE(bad.find("400 Bad Request"), std::string::npos);
}

TEST(TelemetryServerRouting, TraceRingIsNewestFirstAndTrimmable) {
  TelemetryServer server({.max_trace_epochs = 2});
  for (std::uint64_t e = 1; e <= 3; ++e) {
    server.PublishTrace(e, "{\"epoch\":" + std::to_string(e) +
                               ",\"bottleneck\":\"program\"}");
  }
  // Ring capacity 2: epoch 1 evicted, newest first.
  std::string body = testing::HttpBody(server.HandleRequest(Get("/trace")));
  EXPECT_TRUE(IsValidJson(body)) << body;
  EXPECT_EQ(body.find("\"epoch\":1"), std::string::npos);
  EXPECT_LT(body.find("\"epoch\":3"), body.find("\"epoch\":2"));
  EXPECT_NE(body.find("\"bottleneck\":\"program\""), std::string::npos);
  // ?last=1 trims to the newest breakdown.
  body = testing::HttpBody(server.HandleRequest(Get("/trace?last=1")));
  EXPECT_NE(body.find("\"epoch\":3"), std::string::npos);
  EXPECT_EQ(body.find("\"epoch\":2"), std::string::npos);
  // Non-numeric ?last is a client error.
  EXPECT_NE(server.HandleRequest(Get("/trace?last=soon")).find(
                "400 Bad Request"),
            std::string::npos);
  // The index advertises the endpoint.
  EXPECT_NE(server.HandleRequest(Get("/")).find("/trace"), std::string::npos);
}

TEST(TelemetryServerRouting, TraceWithNothingPublishedIsAnEmptyArray) {
  TelemetryServer server;
  const std::string body =
      testing::HttpBody(server.HandleRequest(Get("/trace")));
  EXPECT_TRUE(IsValidJson(body)) << body;
  EXPECT_EQ(body, "[]");
}

TEST(TelemetryServerRouting, UnknownPathIs404NonGetIs405) {
  TelemetryServer server;
  EXPECT_NE(server.HandleRequest(Get("/nope")).find("404 Not Found"),
            std::string::npos);
  auto post = ParseHttpRequest("POST /metrics HTTP/1.1\r\n");
  ASSERT_TRUE(post.has_value());
  EXPECT_NE(server.HandleRequest(*post).find("405 Method Not Allowed"),
            std::string::npos);
}

// --- observatory endpoints (/query, /slo, /buildz, /dashboard) -------------

TEST(TelemetryServerRouting, EveryResponseIsNoStore) {
  TelemetryServer server;
  for (const char* target :
       {"/", "/metrics", "/metrics.json", "/healthz", "/decisions", "/trace",
        "/health/signals", "/alerts", "/query", "/slo", "/buildz",
        "/dashboard", "/definitely-not-a-path"}) {
    EXPECT_NE(server.HandleRequest(Get(target))
                  .find("Cache-Control: no-store\r\n"),
              std::string::npos)
        << target;
  }
}

TEST(TelemetryServerRouting, QueryWithoutStoreAnswersEmptySchema) {
  TelemetryServer server;
  const std::string body =
      testing::HttpBody(server.HandleRequest(Get("/query")));
  EXPECT_TRUE(IsValidJson(body)) << body;
  EXPECT_NE(body.find("\"resolution\":\"raw\""), std::string::npos);
  EXPECT_NE(body.find("\"epochs_sampled\":0"), std::string::npos);
  EXPECT_NE(body.find("\"series\":[]"), std::string::npos);
}

TEST(TelemetryServerRouting, QueryRejectsMalformedParameters) {
  TelemetryServer server;
  // Non-numeric ?last is a client error — with and without a store.
  EXPECT_NE(server.HandleRequest(Get("/query?last=banana"))
                .find("400 Bad Request"),
            std::string::npos);
  EXPECT_NE(server.HandleRequest(Get("/query?last=banana"))
                .find("last must be a number"),
            std::string::npos);
  // Unconfigured resolutions are refused, not silently remapped.
  EXPECT_NE(server.HandleRequest(Get("/query?res=37"))
                .find("unknown resolution"),
            std::string::npos);
  auto store = std::make_shared<TimeSeriesStore>();
  server.PublishTimeSeries(store);
  EXPECT_NE(server.HandleRequest(Get("/query?res=37"))
                .find("unknown resolution"),
            std::string::npos);
  EXPECT_NE(server.HandleRequest(Get("/query?last=soon"))
                .find("last must be a number"),
            std::string::npos);
  // An oversized glob is bounded out before matching.
  const std::string long_glob(600, 'a');
  EXPECT_NE(server.HandleRequest(Get("/query?series=" + long_glob))
                .find("series glob too long"),
            std::string::npos);
}

TEST(TelemetryServerRouting, QueryServesPublishedStore) {
  MetricsRegistry reg;
  reg.GetGauge("hodor_signal_trust", {{"check", "demand"}}, "").Set(93.0);
  auto store = std::make_shared<TimeSeriesStore>();
  store->Sample(0, reg);
  store->Sample(1, reg);
  TelemetryServer server;
  server.PublishTimeSeries(store);
  const std::string body = testing::HttpBody(
      server.HandleRequest(Get("/query?series=hodor_signal_trust*&last=1")));
  EXPECT_TRUE(IsValidJson(body)) << body;
  EXPECT_NE(body.find("hodor_signal_trust{check=\\\"demand\\\"}"),
            std::string::npos);
  EXPECT_NE(body.find("[1,93]"), std::string::npos);
  EXPECT_EQ(body.find("[0,93]"), std::string::npos);  // last=1 trims
}

TEST(TelemetryServerRouting, BuildzReportsBuildAndRuntimeFacts) {
  TelemetryServer server;
  const std::string body =
      testing::HttpBody(server.HandleRequest(Get("/buildz")));
  EXPECT_TRUE(IsValidJson(body)) << body;
  EXPECT_NE(body.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(body.find("\"git\":\""), std::string::npos);
  EXPECT_NE(body.find("\"uptime_seconds\":"), std::string::npos);
  EXPECT_NE(body.find("\"hardware_threads\":"), std::string::npos);
  EXPECT_NE(body.find("\"hodor_threads\":"), std::string::npos);
}

TEST(TelemetryServerRouting, SloDefaultsToEmptyObjectUntilPublished) {
  TelemetryServer server;
  std::string body = testing::HttpBody(server.HandleRequest(Get("/slo")));
  EXPECT_TRUE(IsValidJson(body)) << body;
  server.PublishSlo("{\"ok\":true}");
  body = testing::HttpBody(server.HandleRequest(Get("/slo")));
  EXPECT_NE(body.find("\"ok\":true"), std::string::npos);
}

TEST(TelemetryServerRouting, DashboardIsSelfContainedHtml) {
  TelemetryServer server;
  const std::string resp = server.HandleRequest(Get("/dashboard"));
  EXPECT_NE(resp.find("200 OK"), std::string::npos);
  EXPECT_NE(resp.find("text/html"), std::string::npos);
  EXPECT_NE(resp.find("<html"), std::string::npos);
  // The page must never trigger an external fetch (acceptance: zero
  // external requests).
  for (const char* needle :
       {"src=\"http", "src='http", "href=\"http", "href='http"}) {
    EXPECT_EQ(resp.find(needle), std::string::npos) << needle;
  }
  // The index advertises the new endpoints.
  const std::string index = server.HandleRequest(Get("/"));
  for (const char* endpoint : {"/query", "/slo", "/buildz", "/dashboard"}) {
    EXPECT_NE(index.find(endpoint), std::string::npos) << endpoint;
  }
}

TEST(TelemetryServerRouting, FleetDefaultsToEmptySchemaUntilPublished) {
  TelemetryServer server;
  const std::string resp = server.HandleRequest(Get("/fleet"));
  EXPECT_NE(resp.find("200 OK"), std::string::npos);
  EXPECT_NE(resp.find("application/json"), std::string::npos);
  // Schema-complete before the first publish, so probes can validate shape.
  EXPECT_NE(resp.find("\"summary\""), std::string::npos);
  EXPECT_NE(resp.find("\"instances\":[]"), std::string::npos);

  server.PublishFleet(
      "{\"summary\":{\"instances\":2},\"instances\":[{\"name\":\"a\"}]}");
  const std::string published = server.HandleRequest(Get("/fleet"));
  EXPECT_NE(published.find("\"name\":\"a\""), std::string::npos);
}

TEST(TelemetryServerRouting, IndexEnumeratesEveryRegisteredEndpoint) {
  TelemetryServer server;
  const std::string index = server.HandleRequest(Get("/"));
  // The index is generated from the same route table that dispatches
  // requests, so every endpoint it lists must actually serve.
  for (const char* endpoint :
       {"/metrics", "/metrics.json", "/healthz", "/decisions", "/trace",
        "/health/signals", "/alerts", "/query", "/slo", "/fleet", "/buildz",
        "/dashboard"}) {
    EXPECT_NE(index.find(std::string("\"") + endpoint + "\""),
              std::string::npos)
        << endpoint;
    const std::string resp = server.HandleRequest(Get(endpoint));
    EXPECT_NE(resp.find("200 OK"), std::string::npos) << endpoint;
  }
  // But not itself.
  EXPECT_EQ(index.find("\"/\""), std::string::npos);
}

TEST(TelemetryServerConcurrency, QueryRacesPublishTimeSeriesSwapSafely) {
  // Readers hold a shared_ptr snapshot of the store while the publisher
  // swaps in replacements; the store itself synchronizes Sample vs
  // QueryJson. Nothing here should tear, crash, or 500 (TSan covers the
  // data-race half via check_build.sh --sanitize=thread).
  MetricsRegistry reg;
  Gauge& g = reg.GetGauge("hodor_signal_trust", {{"check", "demand"}}, "");
  TelemetryServer server;
  std::atomic<bool> stop{false};
  std::thread publisher([&] {
    auto store = std::make_shared<TimeSeriesStore>();
    for (std::uint64_t epoch = 0; !stop.load(std::memory_order_relaxed);
         ++epoch) {
      g.Set(static_cast<double>(epoch % 100));
      store->Sample(epoch, reg);
      server.PublishTimeSeries(store);
      if (epoch % 16 == 0) store = std::make_shared<TimeSeriesStore>();
    }
  });
  for (int i = 0; i < 500; ++i) {
    const std::string resp = server.HandleRequest(
        Get(i % 2 ? "/query?series=*&res=10" : "/query?last=3"));
    ASSERT_NE(resp.find("200 OK"), std::string::npos) << resp;
    EXPECT_TRUE(IsValidJson(testing::HttpBody(resp)));
  }
  stop.store(true);
  publisher.join();
}

// --- live server smoke (real sockets) --------------------------------------

TEST(TelemetryServerSmoke, ServesMetricsAndHealthzOverLoopback) {
  MetricsRegistry reg;
  reg.GetCounter("hodor_epochs_total").Increment(7);

  TelemetryServer server;
  ASSERT_TRUE(server.Start());
  ASSERT_NE(server.port(), 0);
  server.PublishMetrics(&reg);

  // /metrics: Prometheus exposition with the published counter.
  const std::string metrics = testing::HttpGet(server.port(), "/metrics");
  EXPECT_NE(metrics.find("200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(metrics.find("hodor_epochs_total 7"), std::string::npos);

  // /healthz: valid JSON, status ok, request accounting.
  const std::string healthz = testing::HttpGet(server.port(), "/healthz");
  EXPECT_NE(healthz.find("200 OK"), std::string::npos);
  const std::string body = testing::HttpBody(healthz);
  EXPECT_TRUE(IsValidJson(body)) << body;
  EXPECT_NE(body.find("\"status\":\"ok\""), std::string::npos);

  // The index lists the endpoints.
  EXPECT_NE(testing::HttpGet(server.port(), "/").find("/metrics"),
            std::string::npos);

  EXPECT_GE(server.requests_served(), 3u);
  server.Stop();
  EXPECT_FALSE(server.running());
  // Stopped server no longer answers.
  EXPECT_EQ(testing::HttpGet(server.port(), "/healthz"), "");
}

TEST(TelemetryServerSmoke, ServesSignalsAndAlertsSnapshots) {
  TelemetryServer server;
  ASSERT_TRUE(server.Start());

  SignalHealthBoard board;
  DecisionRecord record;
  record.epoch = 4;
  InvariantRecord inv;
  inv.check = "demand";
  inv.invariant = "ingress(SEAT)";
  inv.residual = 0.3;
  inv.threshold = 0.02;
  inv.verdict = InvariantVerdict::kFail;
  record.Add(inv);
  board.ObserveEpoch(record);
  server.PublishSignals(board);
  server.PublishAlerts("{\"active\":[{\"entity\":\"SEAT\"}],\"resolved\":[]}");

  const std::string signals =
      testing::HttpBody(testing::HttpGet(server.port(), "/health/signals"));
  EXPECT_TRUE(IsValidJson(signals)) << signals;
  EXPECT_NE(signals.find("\"entity\":\"SEAT\""), std::string::npos);

  const std::string alerts =
      testing::HttpBody(testing::HttpGet(server.port(), "/alerts"));
  EXPECT_NE(alerts.find("\"entity\":\"SEAT\""), std::string::npos);

  server.Stop();
}

TEST(TelemetryServerSmoke, OversizedRequestLineIsRejectedNotBuffered) {
  TelemetryServer server;
  ASSERT_TRUE(server.Start());
  // A request head past the 8 KiB cap must be refused with a 400 before the
  // terminator ever arrives — the server must not buffer it indefinitely.
  const std::string huge =
      "GET /metrics?pad=" + std::string(16 * 1024, 'x') + " HTTP/1.1\r\n\r\n";
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  std::size_t sent = 0;
  while (sent < huge.size()) {
    const ssize_t n =
        ::send(fd, huge.data() + sent, huge.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) break;  // server may close mid-send after responding
    sent += static_cast<std::size_t>(n);
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  EXPECT_NE(response.find("400 Bad Request"), std::string::npos) << response;
  EXPECT_NE(response.find("request too large"), std::string::npos);
  // The server stays healthy for the next client.
  EXPECT_NE(testing::HttpGet(server.port(), "/healthz")
                .find("\"status\":\"ok\""),
            std::string::npos);
  server.Stop();
}

TEST(TelemetryServerSmoke, StartStopIsIdempotentAndRestartSafe) {
  TelemetryServer server;
  ASSERT_TRUE(server.Start());
  const std::uint16_t port = server.port();
  EXPECT_NE(port, 0);
  server.Stop();
  server.Stop();  // second stop is a no-op
  EXPECT_FALSE(server.running());
}

}  // namespace
}  // namespace hodor::obs
