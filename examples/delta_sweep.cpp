// Delta sweep: the incremental-validation equivalence harness behind
// scripts/check_build.sh --delta-gate.
//
// Runs every outage scenario in the §2 catalog through a pipeline with the
// delta-aware validator installed (core::Validator::AsDeltaPipelineValidator)
// and prints one line per epoch with the decision digest, at 1 and 4
// worker threads. The fault window opens mid-run, so every scenario
// exercises the incremental path across healthy epochs, the fault onset
// (signals flip → large dirty sets), the steady faulted state (small dirty
// sets again), and recovery.
//
// The gate runs this binary twice — once as-is (incremental) and once with
// HODOR_FORCE_FULL=1 (full recompute every epoch) — and diffs the output:
// every printed digest must be bit-identical, per the DESIGN §12 contract
// that the delta is a work-avoidance hint, never a correctness input.
//
//   ./build/examples/delta_sweep
//   HODOR_FORCE_FULL=1 ./build/examples/delta_sweep
#include <cstdio>
#include <iostream>
#include <string>

#include "controlplane/pipeline.h"
#include "core/validator.h"
#include "faults/scenario_catalog.h"
#include "flow/tm_generators.h"
#include "net/topologies.h"
#include "obs/metrics.h"
#include "util/logging.h"

namespace {

using namespace hodor;

constexpr std::uint64_t kEpochs = 8;
constexpr std::uint64_t kFaultStart = 3;  // fault window [kFaultStart, kFaultEnd)
constexpr std::uint64_t kFaultEnd = 6;

void SweepScenario(const net::Topology& topo,
                   const faults::OutageScenario& scenario,
                   const flow::DemandMatrix& base, std::size_t threads) {
  net::GroundTruthState state(topo);

  controlplane::PipelineOptions popts;
  popts.num_threads = threads;
  popts.collector.probes.false_loss_rate = 0.0;
  core::ValidatorOptions vopts;
  vopts.hardening.num_threads = threads;

  controlplane::Pipeline pipeline(topo, popts, util::Rng(11));
  const core::Validator validator(topo, vopts);
  pipeline.SetDeltaValidator(validator.AsDeltaPipelineValidator());
  pipeline.Bootstrap(state, base);

  for (std::uint64_t epoch = 0; epoch < kEpochs; ++epoch) {
    const bool faulted = epoch >= kFaultStart && epoch < kFaultEnd;
    if (epoch == kFaultStart && scenario.setup) scenario.setup(state);

    // Drifting demand: every epoch's snapshot differs a little everywhere,
    // like production telemetry, so the diff is never trivially empty.
    util::Rng drift(1000 * epoch + 17);
    flow::DemandMatrix demand = base;
    for (const auto& [i, j] : base.Pairs()) {
      demand.Set(i, j, base.At(i, j) * (1.0 + drift.Uniform(-0.03, 0.03)));
    }

    const auto r = pipeline.RunEpoch(
        state, demand, faulted ? scenario.snapshot_fault : nullptr,
        faulted ? scenario.aggregation
                : controlplane::AggregationFaultHooks{});
    char digest[20];
    std::snprintf(digest, sizeof digest, "%016llx",
                  static_cast<unsigned long long>(
                      r.decision.provenance.CanonicalDigest()));
    std::cout << scenario.id << " t" << threads << " e" << epoch << " "
              << (r.decision.accept ? "accept" : "reject") << " " << digest
              << (faulted ? " [fault]" : "") << "\n";
  }
}

}  // namespace

int main() {
  util::Logger::Instance().SetMinLevel(util::LogLevel::kError);
  const net::Topology topo = net::Abilene();
  const faults::ScenarioCatalog catalog(topo);

  util::Rng rng(77);
  flow::DemandMatrix demand = flow::GravityDemand(topo, rng);
  flow::NormalizeToMaxUtilization(topo, 0.35, demand);

  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    for (const auto& scenario : catalog.scenarios()) {
      SweepScenario(topo, scenario, demand, threads);
    }
  }

  // Sanity line on stderr (the gate diffs stdout only): proves the sweep
  // actually exercised the incremental path rather than silently falling
  // back to full recompute everywhere. Under HODOR_FORCE_FULL=1 this
  // legitimately reads 0.
  const obs::Counter* inc = obs::ResolveRegistry(nullptr).FindCounter(
      "hodor_hardening_incremental_runs_total", {});
  std::cerr << "incremental hardening runs: " << (inc ? inc->value() : 0.0)
            << "\n";
  return 0;
}
