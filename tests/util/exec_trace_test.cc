#include "util/exec_trace.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

namespace hodor::util {
namespace {

ExecEvent MakeEvent(std::uint64_t start_ns, std::uint64_t duration_ns,
                    std::uint64_t epoch, ExecEventKind kind,
                    std::uint16_t arg = 0, std::uint32_t detail = 0) {
  ExecEvent ev;
  ev.start_ns = start_ns;
  ev.duration_ns = duration_ns;
  ev.epoch = epoch;
  ev.kind = kind;
  ev.arg = arg;
  ev.detail = detail;
  return ev;
}

// Collapses a Drain result into one flat event list for a single tid.
std::vector<ExecEvent> EventsFor(const std::vector<ExecTracer::ThreadEvents>& batches,
                                 std::uint16_t tid) {
  std::vector<ExecEvent> out;
  for (const auto& b : batches) {
    if (b.tid != tid) continue;
    out.insert(out.end(), b.events.begin(), b.events.end());
  }
  return out;
}

TEST(ExecRing, CapacityRoundsUpToPowerOfTwoMinimumEight) {
  EXPECT_EQ(ExecRing(0).capacity(), 8u);
  EXPECT_EQ(ExecRing(5).capacity(), 8u);
  EXPECT_EQ(ExecRing(8).capacity(), 8u);
  EXPECT_EQ(ExecRing(9).capacity(), 16u);
  EXPECT_EQ(ExecRing(8192).capacity(), 8192u);
}

TEST(ExecTracer, EmitDrainRoundtripPreservesEveryField) {
  ExecTracer tracer(64);
  ExecThreadHandle h = tracer.RegisterThread("control");
  ASSERT_TRUE(h);
  tracer.Emit(h, MakeEvent(100, 50, 7, ExecEventKind::kStage, 3, 0));
  tracer.Emit(h, MakeEvent(200, 25, 7, ExecEventKind::kQueuePush, 1, 42));

  std::vector<ExecTracer::ThreadEvents> batches;
  tracer.Drain(&batches);
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_EQ(batches[0].name, "control");
  const std::vector<ExecEvent> evs = EventsFor(batches, h.tid);
  ASSERT_EQ(evs.size(), 2u);
  EXPECT_EQ(evs[0].start_ns, 100u);
  EXPECT_EQ(evs[0].duration_ns, 50u);
  EXPECT_EQ(evs[0].epoch, 7u);
  EXPECT_EQ(evs[0].kind, ExecEventKind::kStage);
  EXPECT_EQ(evs[0].arg, 3);
  EXPECT_EQ(evs[1].kind, ExecEventKind::kQueuePush);
  EXPECT_EQ(evs[1].arg, 1);
  EXPECT_EQ(evs[1].detail, 42u);
  EXPECT_EQ(tracer.dropped_total(), 0u);
}

TEST(ExecTracer, DrainIsIncremental) {
  ExecTracer tracer(64);
  ExecThreadHandle h = tracer.RegisterThread("control");
  tracer.Emit(h, MakeEvent(1, 1, 0, ExecEventKind::kMark));
  std::vector<ExecTracer::ThreadEvents> first;
  tracer.Drain(&first);
  EXPECT_EQ(EventsFor(first, h.tid).size(), 1u);

  std::vector<ExecTracer::ThreadEvents> second;
  tracer.Drain(&second);  // nothing new → empty batches omitted
  EXPECT_TRUE(second.empty());

  tracer.Emit(h, MakeEvent(2, 1, 0, ExecEventKind::kMark));
  std::vector<ExecTracer::ThreadEvents> third;
  tracer.Drain(&third);
  const std::vector<ExecEvent> evs = EventsFor(third, h.tid);
  ASSERT_EQ(evs.size(), 1u);
  EXPECT_EQ(evs[0].start_ns, 2u);
}

// S3: a full ring overwrites its oldest events, the drain keeps the newest
// window, and every lost event lands in dropped_total.
TEST(ExecTracer, OverflowDropsOldestAndCountsEveryLoss) {
  ExecTracer tracer(8);  // exact power of two → capacity 8
  ExecThreadHandle h = tracer.RegisterThread("control");
  constexpr std::uint64_t kEmitted = 100;
  for (std::uint64_t i = 0; i < kEmitted; ++i) {
    tracer.Emit(h, MakeEvent(i, 1, 0, ExecEventKind::kMark));
  }
  std::vector<ExecTracer::ThreadEvents> batches;
  tracer.Drain(&batches);
  const std::vector<ExecEvent> evs = EventsFor(batches, h.tid);
  EXPECT_LE(evs.size(), 8u);
  EXPECT_EQ(evs.size() + tracer.dropped_total(), kEmitted);
  EXPECT_GE(tracer.dropped_total(), kEmitted - 8);
  // The survivors are the newest events, still in emission order.
  ASSERT_FALSE(evs.empty());
  EXPECT_EQ(evs.back().start_ns, kEmitted - 1);
  for (std::size_t i = 1; i < evs.size(); ++i) {
    EXPECT_EQ(evs[i].start_ns, evs[i - 1].start_ns + 1);
  }
}

TEST(ExecTracer, NullHandleSwallowsEmits) {
  ExecTracer tracer(8);
  ExecThreadHandle null_handle;
  EXPECT_FALSE(null_handle);
  tracer.Emit(null_handle, MakeEvent(1, 1, 0, ExecEventKind::kMark));
  std::vector<ExecTracer::ThreadEvents> batches;
  tracer.Drain(&batches);
  EXPECT_TRUE(batches.empty());
  EXPECT_EQ(tracer.dropped_total(), 0u);
}

TEST(ExecTracer, RegistrationCapsAtMaxThreads) {
  ExecTracer tracer(8);
  for (std::size_t i = 0; i < ExecTracer::kMaxThreads; ++i) {
    EXPECT_TRUE(tracer.RegisterThread("t" + std::to_string(i)));
  }
  EXPECT_FALSE(tracer.RegisterThread("one-too-many"));
  EXPECT_EQ(tracer.thread_count(), ExecTracer::kMaxThreads);
  EXPECT_EQ(tracer.thread_name(0), "t0");
  EXPECT_EQ(tracer.thread_name(ExecTracer::kMaxThreads), "");
}

TEST(ExecTracer, CurrentEpochIsSharedWithEmitters) {
  ExecTracer tracer(8);
  EXPECT_EQ(tracer.current_epoch(), 0u);
  tracer.SetCurrentEpoch(41);
  EXPECT_EQ(tracer.current_epoch(), 41u);
}

TEST(ExecTracer, NowNsIsMonotoneFromConstruction) {
  ExecTracer tracer(8);
  const std::uint64_t a = tracer.NowNs();
  const std::uint64_t b = tracer.NowNs();
  EXPECT_LE(a, b);
}

// Deliberately concurrent writer/drainer: the per-slot seqlock must keep
// the accounting exact — every emitted event is either drained intact or
// counted dropped, never both, never neither. The TSan configuration of
// check_build.sh runs this to vet the protocol.
TEST(ExecTracer, ConcurrentDrainNeverMiscountsEvents) {
  ExecTracer tracer(32);  // small ring → constant overwrite pressure
  ExecThreadHandle h = tracer.RegisterThread("writer");
  constexpr std::uint64_t kEmitted = 200000;
  std::atomic<bool> done{false};
  std::uint64_t drained = 0;
  std::thread drainer([&] {
    std::vector<ExecTracer::ThreadEvents> batches;
    while (!done.load(std::memory_order_acquire)) {
      batches.clear();
      tracer.Drain(&batches);
      for (const auto& b : batches) drained += b.events.size();
    }
  });
  for (std::uint64_t i = 0; i < kEmitted; ++i) {
    tracer.Emit(h, MakeEvent(i, 1, i, ExecEventKind::kPoolTask,
                             static_cast<std::uint16_t>(i & 0xffff)));
  }
  done.store(true, std::memory_order_release);
  drainer.join();
  // Pick up whatever the drainer had not reached yet.
  std::vector<ExecTracer::ThreadEvents> tail;
  tracer.Drain(&tail);
  for (const auto& b : tail) drained += b.events.size();
  EXPECT_EQ(drained + tracer.dropped_total(), kEmitted);
  EXPECT_GT(drained, 0u);
}

}  // namespace
}  // namespace hodor::util
