#include "util/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <vector>

namespace hodor::util {
namespace {

TEST(ThreadPool, RunsEveryTaskExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4u);
  std::vector<std::atomic<int>> hits(100);
  pool.Run(100, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ReusableAcrossRuns) {
  ThreadPool pool(3);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> sum{0};
    pool.Run(17, [&](std::size_t i) { sum.fetch_add(static_cast<int>(i)); });
    EXPECT_EQ(sum.load(), 136);  // 0+1+...+16
  }
}

TEST(ThreadPool, SingleThreadRunsInline) {
  ThreadPool pool(1);
  int count = 0;  // no atomics needed: everything on the calling thread
  pool.Run(10, [&](std::size_t) { ++count; });
  EXPECT_EQ(count, 10);
}

TEST(ShardCountTest, SerialAndSmallRangesGetOneShard) {
  EXPECT_EQ(ShardCount(nullptr, 1000), 1u);
  ThreadPool pool(4);
  EXPECT_EQ(ShardCount(&pool, 0), 0u);
  EXPECT_EQ(ShardCount(&pool, 7), 1u);  // < 2 * threads: not worth sharding
  EXPECT_EQ(ShardCount(&pool, 8), 4u);
  EXPECT_EQ(ShardCount(&pool, 1000), 4u);
}

TEST(ParallelForTest, ShardsAreContiguousOrderedAndComplete) {
  ThreadPool pool(4);
  const std::size_t total = 1001;
  const std::size_t shards = ShardCount(&pool, total);
  std::vector<std::pair<std::size_t, std::size_t>> ranges(shards);
  ParallelFor(&pool, total,
              [&](std::size_t begin, std::size_t end, std::size_t shard) {
                ranges[shard] = {begin, end};
              });
  std::size_t expect_begin = 0;
  for (const auto& [begin, end] : ranges) {
    EXPECT_EQ(begin, expect_begin);
    EXPECT_LT(begin, end);
    expect_begin = end;
  }
  EXPECT_EQ(expect_begin, total);
}

TEST(ParallelForTest, ShardMergeReproducesSerialOrder) {
  // The determinism contract the hardening engine relies on: per-shard
  // result lists concatenated in shard index order equal the serial
  // iteration order.
  const std::size_t total = 500;
  std::vector<std::size_t> serial(total);
  std::iota(serial.begin(), serial.end(), 0);

  ThreadPool pool(4);
  std::vector<std::vector<std::size_t>> per_shard(ShardCount(&pool, total));
  ParallelFor(&pool, total,
              [&](std::size_t begin, std::size_t end, std::size_t shard) {
                for (std::size_t i = begin; i < end; ++i) {
                  per_shard[shard].push_back(i);
                }
              });
  std::vector<std::size_t> merged;
  for (const auto& s : per_shard) {
    merged.insert(merged.end(), s.begin(), s.end());
  }
  EXPECT_EQ(merged, serial);
}

TEST(ParallelForTest, NullPoolRunsInlineAsOneShard) {
  std::vector<std::pair<std::size_t, std::size_t>> calls;
  ParallelFor(nullptr, 42,
              [&](std::size_t begin, std::size_t end, std::size_t shard) {
                calls.emplace_back(begin, end);
                EXPECT_EQ(shard, 0u);
              });
  ASSERT_EQ(calls.size(), 1u);
  EXPECT_EQ(calls[0].first, 0u);
  EXPECT_EQ(calls[0].second, 42u);
}

TEST(ThreadsFromEnvTest, ParsesAndFallsBack) {
  unsetenv("HODOR_THREADS");
  EXPECT_EQ(ThreadsFromEnv(3), 3u);
  setenv("HODOR_THREADS", "8", 1);
  EXPECT_EQ(ThreadsFromEnv(3), 8u);
  setenv("HODOR_THREADS", "junk", 1);
  EXPECT_EQ(ThreadsFromEnv(3), 3u);
  setenv("HODOR_THREADS", "-2", 1);
  EXPECT_EQ(ThreadsFromEnv(3), 3u);
  unsetenv("HODOR_THREADS");
}

TEST(ThreadsFromEnvTest, ValidatesRangeAndRejectsTrailingJunk) {
  // Trailing junk is malformed, not "parse the prefix": an operator who
  // typed HODOR_THREADS=8x meant something — do not silently guess 8.
  setenv("HODOR_THREADS", "8x", 1);
  EXPECT_EQ(ThreadsFromEnv(3), 3u);
  setenv("HODOR_THREADS", "0", 1);
  EXPECT_EQ(ThreadsFromEnv(3), 3u);
  // Absurd values clamp to the documented cap instead of spawning a
  // fork-bomb-sized pool.
  setenv("HODOR_THREADS", "100000", 1);
  EXPECT_EQ(ThreadsFromEnv(3), kMaxThreadsFromEnv);
  setenv("HODOR_THREADS", "99999999999999999999", 1);  // strtol overflow
  EXPECT_EQ(ThreadsFromEnv(3), kMaxThreadsFromEnv);
  setenv("HODOR_THREADS", "512", 1);
  EXPECT_EQ(ThreadsFromEnv(3), 512u);
  unsetenv("HODOR_THREADS");
}

}  // namespace
}  // namespace hodor::util
