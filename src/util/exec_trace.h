// Execution tracer: per-thread lock-free ring buffers of fixed-size trace
// events, the substrate under the obs layer's timeline analysis and
// Perfetto export (DESIGN §10).
//
// Why this exists: the staged epoch engine moves work onto worker threads
// and a sink thread, and the stage-span histograms (obs/span.h) can say
// *how long* a stage took but not *where* the epoch's wall time went —
// which thread ran what, when, and who waited on whom. The tracer records
// exactly that, cheaply enough to stay on in production:
//
//   - One ExecRing per registered thread, single writer, no locks on the
//     emit path. An emit is four relaxed atomic word stores plus two
//     sequence stores — no allocation, no syscalls, no branches beyond a
//     null check at the call site.
//   - Bounded and loss-tolerant. A full ring overwrites its oldest events
//     (the epoch loop must never block on its own instrumentation); the
//     drain counts every overwritten event so `hodor_trace_dropped_total`
//     stays honest.
//   - Race-free by construction, not by hope. Every shared word is a
//     std::atomic accessed with explicit ordering (per-slot seqlock:
//     odd sequence while the writer is mid-slot, even when published), so
//     the deliberately concurrent writer/drainer pair is clean under TSan.
//
// Layering: util owns the event record and the rings (no obs dependency);
// obs/exec_timeline.h owns drains-to-analysis and export. The epoch
// engine, util::ThreadPool, and util::BoundedSpscQueue emit; everything
// else only reads.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace hodor::util {

// What one trace event describes. Values are stable across a process (the
// exporter maps them to track names); `arg`/`detail` are kind-specific.
enum class ExecEventKind : std::uint16_t {
  kNone = 0,
  kEpoch,        // control thread: one whole epoch; arg unused
  kStage,        // control thread: one stage execution; arg = stage index
  kPoolTask,     // pool thread: one ThreadPool task; arg = task index
  kQueuePush,    // producer: queue hand-off; arg = queue id,
                 // detail = depth after push, duration = blocked wait
  kQueuePop,     // consumer: queue hand-off; arg = queue id,
                 // detail = depth after pop, duration = blocked wait
  kSinkDeliver,  // sink thread: delivering one epoch to all sinks
  kMark,         // free-form instant; arg/detail caller-defined
};

// One fixed-size trace record. Timestamps are steady-clock nanoseconds
// since the owning ExecTracer's construction (ExecTracer::NowNs), so all
// threads of one tracer share a timebase.
struct ExecEvent {
  std::uint64_t start_ns = 0;
  std::uint64_t duration_ns = 0;
  std::uint64_t epoch = 0;
  ExecEventKind kind = ExecEventKind::kNone;
  std::uint16_t arg = 0;
  std::uint32_t detail = 0;
};
static_assert(sizeof(ExecEvent) == 32, "ExecEvent must stay four words");

// Single-writer ring of ExecEvents with per-slot seqlocks. The writer
// never blocks and never observes the reader; the reader (ExecTracer's
// drain) validates each slot's sequence around the copy and counts any
// event it lost to overwrite or a mid-copy race as dropped.
class ExecRing {
 public:
  // Capacity is rounded up to a power of two, minimum 8.
  explicit ExecRing(std::size_t capacity);

  ExecRing(const ExecRing&) = delete;
  ExecRing& operator=(const ExecRing&) = delete;

  std::size_t capacity() const { return mask_ + 1; }

  // Writer side: publish one event. Wait-free; overwrites the oldest
  // event when the ring is full. Must only ever be called from the one
  // thread that owns this ring.
  void Emit(const ExecEvent& ev) {
    const std::uint64_t n = write_index_++;
    Slot& slot = slots_[n & mask_];
    // Per-slot seqlock, writer protocol: mark busy (odd), store the
    // payload, publish (even, keyed to this event index).
    slot.seq.store(2 * n + 1, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
    slot.word[0].store(ev.start_ns, std::memory_order_relaxed);
    slot.word[1].store(ev.duration_ns, std::memory_order_relaxed);
    slot.word[2].store(ev.epoch, std::memory_order_relaxed);
    slot.word[3].store(Pack(ev), std::memory_order_relaxed);
    slot.seq.store(2 * n + 2, std::memory_order_release);
    head_.store(n + 1, std::memory_order_release);
  }

  // Reader side: copy every event in [*cursor, head) that is still intact
  // into `out`, advance *cursor to head, and return how many events in
  // that range were lost (overwritten before or torn during the copy).
  std::uint64_t DrainInto(std::uint64_t* cursor,
                          std::vector<ExecEvent>* out) const;

 private:
  struct Slot {
    std::atomic<std::uint64_t> seq{0};
    std::array<std::atomic<std::uint64_t>, 4> word{};
  };

  static std::uint64_t Pack(const ExecEvent& ev) {
    return (static_cast<std::uint64_t>(ev.kind) << 48) |
           (static_cast<std::uint64_t>(ev.arg) << 32) |
           static_cast<std::uint64_t>(ev.detail);
  }
  static void Unpack(std::uint64_t w, ExecEvent* ev) {
    ev->kind = static_cast<ExecEventKind>((w >> 48) & 0xffff);
    ev->arg = static_cast<std::uint16_t>((w >> 32) & 0xffff);
    ev->detail = static_cast<std::uint32_t>(w & 0xffffffffu);
  }

  std::vector<Slot> slots_;
  std::uint64_t mask_;
  std::atomic<std::uint64_t> head_{0};  // next event index to be published
  std::uint64_t write_index_ = 0;       // writer-local mirror of head_
};

// Handle a registered thread emits through. Null handles (tracing
// disabled, or the tracer ran out of thread slots) swallow emits.
struct ExecThreadHandle {
  ExecRing* ring = nullptr;
  std::uint16_t tid = 0;
  explicit operator bool() const { return ring != nullptr; }
};

// The tracer: a registry of per-thread rings sharing one timebase plus
// the drain side. Registration and drains are mutex-protected (rare);
// emits are lock-free through the handle.
class ExecTracer {
 public:
  // Every registered thread gets its own ring of `ring_capacity` events.
  explicit ExecTracer(std::size_t ring_capacity = 8192);

  ExecTracer(const ExecTracer&) = delete;
  ExecTracer& operator=(const ExecTracer&) = delete;

  // Registers a named event stream and returns the handle its owning
  // thread emits through. May be called on behalf of another thread (the
  // handle, not the caller, fixes the writer). Returns a null handle once
  // kMaxThreads streams exist.
  ExecThreadHandle RegisterThread(std::string name);

  void Emit(ExecThreadHandle handle, const ExecEvent& ev) {
    if (handle.ring) handle.ring->Emit(ev);
  }

  // Steady-clock nanoseconds since this tracer was constructed: the
  // shared timebase of every event it records.
  std::uint64_t NowNs() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - base_)
            .count());
  }

  // The epoch id emitters that lack their own epoch context (pool tasks,
  // queue hand-offs) stamp into their events. The control thread sets it
  // at each epoch boundary; readers load relaxed.
  void SetCurrentEpoch(std::uint64_t epoch) {
    current_epoch_.store(epoch, std::memory_order_relaxed);
  }
  std::uint64_t current_epoch() const {
    return current_epoch_.load(std::memory_order_relaxed);
  }

  // One drained batch: the events a thread published since the previous
  // Drain, in emission order.
  struct ThreadEvents {
    std::uint16_t tid = 0;
    std::string name;
    std::vector<ExecEvent> events;
  };

  // Drains every ring since the previous Drain call, appending one
  // ThreadEvents per registered thread (empty batches omitted). Safe to
  // call concurrently with emitters; serialized against other drains.
  void Drain(std::vector<ThreadEvents>* out);

  // Total events lost to ring overwrite across all threads, accumulated
  // at drain time.
  std::uint64_t dropped_total() const;

  std::size_t thread_count() const;
  // Name of a registered stream (empty when out of range).
  std::string thread_name(std::uint16_t tid) const;

  static constexpr std::size_t kMaxThreads = 64;

 private:
  struct ThreadStream {
    std::string name;
    std::unique_ptr<ExecRing> ring;
    std::uint64_t drain_cursor = 0;
  };

  const std::chrono::steady_clock::time_point base_;
  const std::size_t ring_capacity_;
  std::atomic<std::uint64_t> current_epoch_{0};

  mutable std::mutex mu_;  // guards threads_ and dropped_total_
  std::vector<ThreadStream> threads_;
  std::uint64_t dropped_total_ = 0;
};

}  // namespace hodor::util
