file(REMOVE_RECURSE
  "CMakeFiles/core_link_state_fusion_test.dir/core/link_state_fusion_test.cc.o"
  "CMakeFiles/core_link_state_fusion_test.dir/core/link_state_fusion_test.cc.o.d"
  "core_link_state_fusion_test"
  "core_link_state_fusion_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_link_state_fusion_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
