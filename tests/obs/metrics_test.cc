// Metrics registry: instrument semantics, series identity, and both export
// formats (Prometheus text exposition and JSON).
#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>
#include <thread>

#include "obs/json.h"
#include "obs/metrics.h"

namespace hodor::obs {
namespace {

TEST(Counter, AccumulatesMonotonically) {
  MetricsRegistry reg;
  Counter& c = reg.GetCounter("hodor_test_total");
  EXPECT_EQ(c.value(), 0.0);
  c.Increment();
  c.Increment(2.5);
  EXPECT_DOUBLE_EQ(c.value(), 3.5);
  // Get-or-create returns the same instrument.
  EXPECT_DOUBLE_EQ(reg.GetCounter("hodor_test_total").value(), 3.5);
}

TEST(Gauge, SetAndAdd) {
  MetricsRegistry reg;
  Gauge& g = reg.GetGauge("hodor_test_gauge");
  g.Set(4.0);
  g.Add(-1.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
}

TEST(Histogram, BucketsObservationsWithOverflow) {
  Histogram h({1.0, 10.0});
  h.Observe(0.5);
  h.Observe(5.0);
  h.Observe(100.0);  // beyond every bound → implicit +Inf bucket
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 105.5);
  ASSERT_EQ(h.bucket_counts().size(), 3u);
  EXPECT_EQ(h.bucket_counts()[0], 1u);
  EXPECT_EQ(h.bucket_counts()[1], 1u);
  EXPECT_EQ(h.bucket_counts()[2], 1u);
}

TEST(Histogram, BoundaryValueLandsInLowerBucket) {
  Histogram h({1.0, 10.0});
  h.Observe(1.0);  // le semantics: v <= bound
  EXPECT_EQ(h.bucket_counts()[0], 1u);
}

TEST(Histogram, RejectsNonIncreasingBounds) {
  EXPECT_THROW(Histogram({5.0, 5.0}), std::logic_error);
  EXPECT_THROW(Histogram({5.0, 1.0}), std::logic_error);
}

TEST(Histogram, EmptyBoundsDefaultToLatencyBuckets) {
  MetricsRegistry reg;
  Histogram& h = reg.GetHistogram("hodor_test_us");
  EXPECT_EQ(h.upper_bounds(), DefaultLatencyBucketsUs());
}

TEST(Histogram, RegistryOptionOverridesDefaultBuckets) {
  MetricsRegistryOptions opts;
  opts.default_histogram_buckets = {1.0, 2.0, 4.0};
  MetricsRegistry reg(std::move(opts));
  Histogram& h = reg.GetHistogram("hodor_test_us");
  EXPECT_EQ(h.upper_bounds(), (std::vector<double>{1.0, 2.0, 4.0}));
  // Explicit bounds still win over the registry default.
  Histogram& explicit_h =
      reg.GetHistogram("hodor_other_us", {}, {10.0, 20.0});
  EXPECT_EQ(explicit_h.upper_bounds(), (std::vector<double>{10.0, 20.0}));
}

TEST(Histogram, SetDefaultBucketsAffectsLaterHistogramsOnly) {
  MetricsRegistry reg;
  Histogram& before = reg.GetHistogram("hodor_before_us");
  reg.SetDefaultHistogramBuckets({0.5, 1.5});
  Histogram& after = reg.GetHistogram("hodor_after_us");
  EXPECT_EQ(before.upper_bounds(), DefaultLatencyBucketsUs());
  EXPECT_EQ(after.upper_bounds(), (std::vector<double>{0.5, 1.5}));
  // Empty restores the built-in default.
  reg.SetDefaultHistogramBuckets({});
  Histogram& restored = reg.GetHistogram("hodor_restored_us");
  EXPECT_EQ(restored.upper_bounds(), DefaultLatencyBucketsUs());
}

TEST(MetricsRegistry, SeriesIdentityIgnoresLabelOrder) {
  MetricsRegistry reg;
  Counter& a = reg.GetCounter("hodor_test_total",
                              {{"check", "demand"}, {"stage", "validate"}});
  Counter& b = reg.GetCounter("hodor_test_total",
                              {{"stage", "validate"}, {"check", "demand"}});
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(reg.series_count(), 1u);
}

TEST(MetricsRegistry, DistinctLabelsAreDistinctSeries) {
  MetricsRegistry reg;
  reg.GetCounter("hodor_test_total", {{"check", "demand"}}).Increment();
  reg.GetCounter("hodor_test_total", {{"check", "drain"}}).Increment(2.0);
  EXPECT_EQ(reg.family_count(), 1u);
  EXPECT_EQ(reg.series_count(), 2u);
  const Counter* demand = reg.FindCounter("hodor_test_total",
                                          {{"check", "demand"}});
  ASSERT_NE(demand, nullptr);
  EXPECT_DOUBLE_EQ(demand->value(), 1.0);
}

TEST(MetricsRegistry, FindDoesNotCreate) {
  MetricsRegistry reg;
  EXPECT_EQ(reg.FindCounter("absent"), nullptr);
  EXPECT_EQ(reg.FindGauge("absent"), nullptr);
  EXPECT_EQ(reg.FindHistogram("absent"), nullptr);
  EXPECT_EQ(reg.family_count(), 0u);
}

TEST(MetricsRegistry, TypeConflictRaises) {
  MetricsRegistry reg;
  reg.GetCounter("hodor_test_total");
  EXPECT_THROW(reg.GetGauge("hodor_test_total"), std::logic_error);
  // A Find under the wrong type misses rather than aliasing.
  EXPECT_EQ(reg.FindGauge("hodor_test_total"), nullptr);
}

TEST(MetricsRegistry, ResetDropsEverything) {
  MetricsRegistry reg;
  reg.GetCounter("hodor_test_total").Increment();
  reg.Reset();
  EXPECT_EQ(reg.family_count(), 0u);
  EXPECT_EQ(reg.FindCounter("hodor_test_total"), nullptr);
}

TEST(MetricsRegistry, ResolveRegistryNullMeansGlobal) {
  MetricsRegistry reg;
  EXPECT_EQ(&ResolveRegistry(&reg), &reg);
  EXPECT_EQ(&ResolveRegistry(nullptr), &MetricsRegistry::Global());
}

TEST(MetricsRegistry, PrometheusExpositionShape) {
  MetricsRegistry reg;
  reg.GetCounter("hodor_epochs_total", {}, "Control epochs run").Increment(3);
  reg.GetGauge("hodor_loss", {{"kind", "network"}}).Set(0.25);
  Histogram& h = reg.GetHistogram("hodor_stage_duration_us",
                                  {{"stage", "collect"}}, {10.0, 100.0});
  h.Observe(5.0);
  h.Observe(50.0);
  h.Observe(5000.0);

  const std::string text = reg.ExportPrometheus();
  EXPECT_NE(text.find("# HELP hodor_epochs_total Control epochs run"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE hodor_epochs_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("hodor_epochs_total 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE hodor_loss gauge"), std::string::npos);
  EXPECT_NE(text.find("hodor_loss{kind=\"network\"} 0.25"),
            std::string::npos);
  // Histogram: cumulative le buckets, +Inf equal to the total count.
  EXPECT_NE(text.find("# TYPE hodor_stage_duration_us histogram"),
            std::string::npos);
  EXPECT_NE(
      text.find("hodor_stage_duration_us_bucket{stage=\"collect\",le=\"10\"} 1"),
      std::string::npos);
  EXPECT_NE(
      text.find(
          "hodor_stage_duration_us_bucket{stage=\"collect\",le=\"100\"} 2"),
      std::string::npos);
  EXPECT_NE(
      text.find(
          "hodor_stage_duration_us_bucket{stage=\"collect\",le=\"+Inf\"} 3"),
      std::string::npos);
  EXPECT_NE(text.find("hodor_stage_duration_us_sum{stage=\"collect\"} 5055"),
            std::string::npos);
  EXPECT_NE(text.find("hodor_stage_duration_us_count{stage=\"collect\"} 3"),
            std::string::npos);
}

TEST(MetricsRegistry, JsonExportParsesAndNamesSeries) {
  MetricsRegistry reg;
  reg.GetCounter("hodor_epochs_total").Increment();
  reg.GetGauge("hodor_loss", {{"kind", "network"}}).Set(0.5);
  reg.GetHistogram("hodor_stage_duration_us", {{"stage", "harden"}},
                   {10.0})
      .Observe(3.0);

  const std::string json = reg.ExportJson();
  EXPECT_TRUE(IsValidJson(json)) << json;
  EXPECT_NE(json.find("\"hodor_epochs_total\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"network\""), std::string::npos);
  // The overflow bucket renders with le:null.
  EXPECT_NE(json.find("{\"le\":null,\"count\":0}"), std::string::npos);
}

TEST(Json, EscapeHandlesQuotesAndControls) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(JsonEscape("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(JsonEscape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(Json, NumberRendersNonFiniteAsNull) {
  EXPECT_EQ(JsonNumber(1.5), "1.5");
  EXPECT_EQ(JsonNumber(std::numeric_limits<double>::quiet_NaN()), "null");
  EXPECT_EQ(JsonNumber(std::numeric_limits<double>::infinity()), "null");
}

TEST(MergeFrom, FoldsCountersGaugesAndHistograms) {
  MetricsRegistry dest;
  dest.GetCounter("hodor_m_total", {{"k", "a"}}, "help").Increment(2.0);
  dest.GetHistogram("hodor_m_us", {}, {1.0, 10.0}).Observe(0.5);

  MetricsRegistry shard;
  shard.GetCounter("hodor_m_total", {{"k", "a"}}).Increment(3.0);
  shard.GetCounter("hodor_m_total", {{"k", "b"}}).Increment(7.0);
  shard.GetGauge("hodor_m_gauge").Set(4.5);
  Histogram& sh = shard.GetHistogram("hodor_m_us", {}, {1.0, 10.0});
  sh.Observe(5.0);
  sh.Observe(100.0);

  dest.MergeFrom(shard);
  EXPECT_DOUBLE_EQ(dest.FindCounter("hodor_m_total", {{"k", "a"}})->value(),
                   5.0);  // counters add
  EXPECT_DOUBLE_EQ(dest.FindCounter("hodor_m_total", {{"k", "b"}})->value(),
                   7.0);  // new series materialize
  EXPECT_DOUBLE_EQ(dest.FindGauge("hodor_m_gauge")->value(), 4.5);
  const Histogram* h = dest.FindHistogram("hodor_m_us");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), 3u);  // bucket counts add
  EXPECT_DOUBLE_EQ(h->sum(), 105.5);
  EXPECT_EQ(h->bucket_counts()[0], 1u);
  EXPECT_EQ(h->bucket_counts()[1], 1u);
  EXPECT_EQ(h->bucket_counts()[2], 1u);
}

TEST(MergeFrom, MismatchedHistogramBoundsRejected) {
  MetricsRegistry dest;
  dest.GetHistogram("hodor_m_us", {}, {1.0, 10.0}).Observe(0.5);
  MetricsRegistry shard;
  shard.GetHistogram("hodor_m_us", {}, {2.0, 20.0}).Observe(0.5);
  EXPECT_THROW(dest.MergeFrom(shard), std::logic_error);
}

TEST(MergeFrom, RepeatedShardFoldsAreDeterministic) {
  // The parallel discipline: per-worker shards folded in a fixed order
  // must equal a single serial registry, whatever the shard split was.
  MetricsRegistry serial;
  for (int i = 0; i < 10; ++i) {
    serial.GetCounter("hodor_m_total").Increment();
    serial.GetHistogram("hodor_m_us", {}, {1.0}).Observe(static_cast<double>(i));
  }
  MetricsRegistry merged;
  for (int shard_idx = 0; shard_idx < 2; ++shard_idx) {
    MetricsRegistry shard;
    for (int i = shard_idx * 5; i < (shard_idx + 1) * 5; ++i) {
      shard.GetCounter("hodor_m_total").Increment();
      shard.GetHistogram("hodor_m_us", {}, {1.0}).Observe(static_cast<double>(i));
    }
    merged.MergeFrom(shard);
  }
  EXPECT_EQ(merged.ExportPrometheus(), serial.ExportPrometheus());
}

TEST(CopyFrom, MirrorsValuesAndKeepsDestOnlySeries) {
  MetricsRegistry src;
  src.GetCounter("hodor_m_total").Increment(6.0);
  src.GetHistogram("hodor_m_us", {}, {1.0}).Observe(0.5);

  MetricsRegistry mirror;
  mirror.GetCounter("hodor_m_total").Increment(100.0);  // stale value
  mirror.GetGauge("hodor_sink_private").Set(9.0);       // sink-owned series

  mirror.CopyFrom(src);
  // Values mirror the source exactly (no accumulation)...
  EXPECT_DOUBLE_EQ(mirror.FindCounter("hodor_m_total")->value(), 6.0);
  EXPECT_EQ(mirror.FindHistogram("hodor_m_us")->count(), 1u);
  // ...and the mirror's own series survive (grows-only contract).
  EXPECT_DOUBLE_EQ(mirror.FindGauge("hodor_sink_private")->value(), 9.0);

  src.GetCounter("hodor_m_total").Increment();
  mirror.CopyFrom(src);
  EXPECT_DOUBLE_EQ(mirror.FindCounter("hodor_m_total")->value(), 7.0);
}

#ifndef NDEBUG
TEST(OwnershipAssertion, SecondThreadMutationCaughtInDebugBuilds) {
  MetricsRegistry reg;
  reg.GetCounter("hodor_m_total").Increment();  // binds to this thread
  bool threw = false;
  std::thread other([&] {
    try {
      reg.GetCounter("hodor_m_total").Increment();
    } catch (const std::logic_error&) {
      threw = true;
    }
  });
  other.join();
  EXPECT_TRUE(threw);
}

TEST(OwnershipAssertion, ReleaseOwnerThreadHandsOff) {
  MetricsRegistry reg;
  reg.GetCounter("hodor_m_total").Increment();
  reg.ReleaseOwnerThread();
  bool threw = false;
  std::thread other([&] {
    try {
      reg.GetCounter("hodor_m_total").Increment();  // rebinds to this thread
    } catch (const std::logic_error&) {
      threw = true;
    }
  });
  other.join();
  EXPECT_FALSE(threw);
  EXPECT_DOUBLE_EQ(reg.FindCounter("hodor_m_total")->value(), 2.0);
}
#endif  // NDEBUG

TEST(Json, ValidatorAcceptsAndRejects) {
  EXPECT_TRUE(IsValidJson("{\"a\":[1,2.5e3,true,null],\"b\":\"x\\n\"}"));
  EXPECT_TRUE(IsValidJson("[]"));
  EXPECT_TRUE(IsValidJson("-0.5"));
  EXPECT_FALSE(IsValidJson(""));
  EXPECT_FALSE(IsValidJson("{"));
  EXPECT_FALSE(IsValidJson("{\"a\":1,}"));
  EXPECT_FALSE(IsValidJson("[1 2]"));
  EXPECT_FALSE(IsValidJson("\"unterminated"));
  EXPECT_FALSE(IsValidJson("{} trailing"));
}

}  // namespace
}  // namespace hodor::obs
