#include <gtest/gtest.h>

#include "core/baselines/anomaly_detector.h"
#include "core/baselines/static_checker.h"
#include "faults/aggregation_faults.h"
#include "test_util.h"

namespace hodor::core::baselines {
namespace {

using controlplane::ControllerInput;
using net::LinkId;
using net::NodeId;

struct BaselineFixture : ::testing::Test {
  BaselineFixture() : net(testing::MakeAbilene()) {}

  ControllerInput HonestInput(std::uint64_t seed = 2) {
    return net.Input(net.Snapshot(seed), seed + 100);
  }

  testing::HealthyNetwork net;
};

// ---------- static checker ---------------------------------------------------

TEST_F(BaselineFixture, StaticImpossibleDemandCaught) {
  StaticChecker checker(net.topo);
  ControllerInput input = HonestInput();
  // More demand from one router than its physical edge capacity: impossible.
  const NodeId v = net.topo.ExternalNodes()[0];
  const NodeId other = net.topo.ExternalNodes()[1];
  input.demand.Set(v, other,
                   net.topo.node(v).external_capacity * 2.0);
  const auto r = checker.Check(input);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.violations[0].find("impossible"), std::string::npos);
}

TEST_F(BaselineFixture, StaticWrongShapeCaught) {
  StaticChecker checker(net.topo);
  ControllerInput input = HonestInput();
  input.demand = flow::DemandMatrix(net.topo.node_count() + 2);
  EXPECT_FALSE(checker.Check(input).ok());
}

TEST_F(BaselineFixture, StaticHistoryChecksNeedTraining) {
  StaticChecker checker(net.topo);
  ControllerInput input = HonestInput();
  // Untrained: plausible-looking inputs pass even when wrong.
  faults::DemandScaled(0.5)(input.demand);
  EXPECT_TRUE(checker.Check(input).ok());
}

TEST_F(BaselineFixture, StaticHistoryFlagsOutOfRange) {
  StaticChecker checker(net.topo);
  for (std::uint64_t s = 0; s < 5; ++s) checker.Observe(HonestInput(s));
  EXPECT_EQ(checker.history_size(), 5u);
  ControllerInput bad = HonestInput();
  faults::DemandScaled(3.0)(bad.demand);  // way above any observed total
  const auto r = checker.Check(bad);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.violations[0].find("historically unlikely"),
            std::string::npos);
}

TEST_F(BaselineFixture, StaticMissesWrongButPlausibleInput) {
  // The paper's central criticism: an input inside historical ranges passes
  // static checks even though it does not reflect *current* state.
  StaticChecker checker(net.topo);
  for (std::uint64_t s = 0; s < 5; ++s) checker.Observe(HonestInput(s));
  ControllerInput stale = HonestInput(0);  // yesterday's input, unchanged
  faults::DemandScaled(0.97)(stale.demand);
  EXPECT_TRUE(checker.Check(stale).ok());
}

TEST_F(BaselineFixture, StaticFalsePositivesOnLegitimateDisaster) {
  StaticChecker checker(net.topo);
  for (std::uint64_t s = 0; s < 5; ++s) checker.Observe(HonestInput(s));
  // Disaster: half the links go down, honestly reported.
  ControllerInput disaster = HonestInput();
  for (std::size_t i = 0; i < disaster.link_available.size() / 2; ++i) {
    disaster.link_available[i] = false;
  }
  const auto r = checker.Check(disaster);
  EXPECT_FALSE(r.ok()) << "range heuristics reject the truthful disaster";
}

// ---------- anomaly detector --------------------------------------------------

TEST_F(BaselineFixture, AnomalyDetectorNeedsHistory) {
  AnomalyDetector det(net.topo);
  ControllerInput bad = HonestInput();
  faults::DemandScaled(10.0)(bad.demand);
  EXPECT_TRUE(det.Check(bad).ok());  // no history yet: silent
}

TEST_F(BaselineFixture, AnomalyDetectorFlagsLargeShift) {
  AnomalyDetector det(net.topo);
  for (std::uint64_t s = 0; s < 10; ++s) det.Observe(HonestInput(s));
  ControllerInput bad = HonestInput();
  faults::DemandScaled(5.0)(bad.demand);
  const auto r = det.Check(bad);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.anomalies[0].find("deviates from history"), std::string::npos);
}

TEST_F(BaselineFixture, AnomalyDetectorAcceptsNormalVariation) {
  AnomalyDetector det(net.topo);
  for (std::uint64_t s = 0; s < 10; ++s) det.Observe(HonestInput(s));
  EXPECT_TRUE(det.Check(HonestInput(42)).ok());
}

TEST_F(BaselineFixture, AnomalyDetectorMissesStaleInput) {
  // A frozen input is statistically identical to history: undetectable by
  // outlier analysis, caught only by comparing against current state.
  AnomalyDetector det(net.topo);
  const ControllerInput frozen = HonestInput(0);
  for (int i = 0; i < 10; ++i) det.Observe(frozen);
  EXPECT_TRUE(det.Check(frozen).ok());
}

TEST_F(BaselineFixture, AnomalyDetectorFalsePositivesOnDisaster) {
  AnomalyDetector det(net.topo);
  for (std::uint64_t s = 0; s < 10; ++s) det.Observe(HonestInput(s));
  ControllerInput disaster = HonestInput();
  for (std::size_t i = 0; i < disaster.link_available.size() / 2; ++i) {
    disaster.link_available[i] = false;
  }
  EXPECT_FALSE(det.Check(disaster).ok());
}

}  // namespace
}  // namespace hodor::core::baselines
