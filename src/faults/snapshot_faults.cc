#include "faults/snapshot_faults.h"

namespace hodor::faults {

using telemetry::NetworkSnapshot;
using telemetry::SignalFrame;
using telemetry::SnapshotMutator;

SnapshotMutator ComposeFaults(std::vector<SnapshotMutator> faults) {
  return [faults = std::move(faults)](NetworkSnapshot& snapshot) {
    for (const auto& f : faults) {
      if (f) f(snapshot);
    }
  };
}

SnapshotMutator ZeroedCountersFault(net::NodeId router, double probability,
                                    std::uint64_t seed) {
  return [router, probability, seed](NetworkSnapshot& snapshot) {
    util::Rng rng(seed);
    const net::Topology& topo = snapshot.topology();
    SignalFrame& frame = snapshot.frame();
    for (net::LinkId e : topo.OutLinks(router)) {
      if (frame.TxRate(e) && rng.Bernoulli(probability)) frame.SetTxRate(e, 0.0);
    }
    for (net::LinkId e : topo.InLinks(router)) {
      if (frame.RxRate(e) && rng.Bernoulli(probability)) frame.SetRxRate(e, 0.0);
    }
    if (frame.ExtInRate(router) && rng.Bernoulli(probability)) {
      frame.SetExtInRate(router, 0.0);
    }
    if (frame.ExtOutRate(router) && rng.Bernoulli(probability)) {
      frame.SetExtOutRate(router, 0.0);
    }
  };
}

SnapshotMutator CorruptLinkCounter(net::LinkId link, CounterSide side,
                                   CounterCorruption how, double param) {
  return [link, side, how, param](NetworkSnapshot& snapshot) {
    SignalFrame& frame = snapshot.frame();
    // `get` reads the current value; `set`/`drop` write through the frame
    // (no-ops when the owning router is unresponsive).
    auto corrupt = [&](auto get, auto set, auto drop) {
      switch (how) {
        case CounterCorruption::kZero: set(0.0); break;
        case CounterCorruption::kScale: {
          const std::optional<double> v = get();
          if (v) set(*v * param);
          break;
        }
        case CounterCorruption::kAbsolute: set(param); break;
        case CounterCorruption::kDrop: drop(); break;
      }
    };
    if (side == CounterSide::kTx || side == CounterSide::kBoth) {
      corrupt([&] { return frame.TxRate(link); },
              [&](double v) { frame.SetTxRate(link, v); },
              [&] { frame.ClearTxRate(link); });
    }
    if (side == CounterSide::kRx || side == CounterSide::kBoth) {
      corrupt([&] { return frame.RxRate(link); },
              [&](double v) { frame.SetRxRate(link, v); },
              [&] { frame.ClearRxRate(link); });
    }
  };
}

SnapshotMutator UnresponsiveRouter(net::NodeId router) {
  return [router](NetworkSnapshot& snapshot) {
    snapshot.frame().MarkUnresponsive(router);
  };
}

SnapshotMutator MalformedTelemetry(net::NodeId router, double probability,
                                   std::uint64_t seed) {
  return [router, probability, seed](NetworkSnapshot& snapshot) {
    util::Rng rng(seed);
    const net::Topology& topo = snapshot.topology();
    SignalFrame& frame = snapshot.frame();
    // Drops roll the dice only for signals that are actually present.
    auto maybe_drop = [&](bool present, auto drop) {
      if (present && rng.Bernoulli(probability)) drop();
    };
    maybe_drop(frame.NodeDrained(router).has_value(),
               [&] { frame.ClearNodeDrained(router); });
    maybe_drop(frame.DroppedRate(router).has_value(),
               [&] { frame.ClearDroppedRate(router); });
    maybe_drop(frame.ExtInRate(router).has_value(),
               [&] { frame.ClearExtInRate(router); });
    maybe_drop(frame.ExtOutRate(router).has_value(),
               [&] { frame.ClearExtOutRate(router); });
    for (net::LinkId e : topo.OutLinks(router)) {
      maybe_drop(frame.Status(e).has_value(), [&] { frame.ClearStatus(e); });
      maybe_drop(frame.TxRate(e).has_value(), [&] { frame.ClearTxRate(e); });
      maybe_drop(frame.LinkDrain(e).has_value(),
                 [&] { frame.ClearLinkDrain(e); });
    }
    for (net::LinkId e : topo.InLinks(router)) {
      maybe_drop(frame.RxRate(e).has_value(), [&] { frame.ClearRxRate(e); });
    }
  };
}

SnapshotMutator WrongDrainSignal(net::NodeId router, bool reported) {
  return [router, reported](NetworkSnapshot& snapshot) {
    snapshot.frame().SetNodeDrained(router, reported);
  };
}

SnapshotMutator AsymmetricLinkDrain(net::LinkId link) {
  return [link](NetworkSnapshot& snapshot) {
    const net::Topology& topo = snapshot.topology();
    SignalFrame& frame = snapshot.frame();
    // src announces the drain; dst (through its own out-interface on the
    // reverse direction) does not.
    frame.SetLinkDrain(link, true);
    frame.SetLinkDrain(topo.link(link).reverse, false);
  };
}

SnapshotMutator FalseLinkStatus(net::LinkId link, bool at_src,
                                telemetry::LinkStatus reported) {
  return [link, at_src, reported](NetworkSnapshot& snapshot) {
    const net::Topology& topo = snapshot.topology();
    const net::LinkId iface = at_src ? link : topo.link(link).reverse;
    snapshot.frame().SetStatus(iface, reported);
  };
}

namespace {

void ScaleRouterCounters(NetworkSnapshot& snapshot, net::NodeId router,
                         double factor) {
  const net::Topology& topo = snapshot.topology();
  SignalFrame& frame = snapshot.frame();
  auto scale = [&](std::optional<double> v, auto set) {
    if (v) set(*v * factor);
  };
  scale(frame.DroppedRate(router),
        [&](double v) { frame.SetDroppedRate(router, v); });
  scale(frame.ExtInRate(router),
        [&](double v) { frame.SetExtInRate(router, v); });
  scale(frame.ExtOutRate(router),
        [&](double v) { frame.SetExtOutRate(router, v); });
  for (net::LinkId e : topo.OutLinks(router)) {
    scale(frame.TxRate(e), [&](double v) { frame.SetTxRate(e, v); });
  }
  for (net::LinkId e : topo.InLinks(router)) {
    scale(frame.RxRate(e), [&](double v) { frame.SetRxRate(e, v); });
  }
}

}  // namespace

SnapshotMutator VendorCounterBug(std::vector<net::NodeId> fleet,
                                 double factor) {
  return [fleet = std::move(fleet), factor](NetworkSnapshot& snapshot) {
    for (net::NodeId router : fleet) {
      ScaleRouterCounters(snapshot, router, factor);
    }
  };
}

SnapshotMutator ScaledRouterCounters(net::NodeId router, double factor) {
  return [router, factor](NetworkSnapshot& snapshot) {
    ScaleRouterCounters(snapshot, router, factor);
  };
}

}  // namespace hodor::faults
