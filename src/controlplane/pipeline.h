// The always-on control loop (paper §3: Hodor is envisioned as an always-on
// system validating inputs as the controller receives them).
//
// Each epoch:
//   1. traffic flows under the currently installed routing plan → the true
//      per-link rates that telemetry will report;
//   2. the Collector reads all router signals (router-level faults may
//      corrupt this snapshot);
//   3. the instrumentation services aggregate the controller's inputs
//      (aggregation-level faults may corrupt these);
//   4. an optional input validator inspects (input, snapshot) and a policy
//      decides: accept, or fall back to the last accepted input / alert;
//   5. the controller programs a new plan from the chosen input;
//   6. the true demand is simulated over the new plan → outcome metrics.
//
// The pipeline deliberately knows nothing about Hodor's internals: the
// validator is injected as a callback, so the same harness runs "no
// validation", "static checks", "anomaly detection", and "Hodor".
//
// Since the staged-epoch refactor, Pipeline is a thin facade over
// controlplane::EpochEngine (epoch_engine.h), which owns the explicit
// stage graph, the double-buffered EpochState, and the optional sink
// thread. The default configuration behaves exactly like the historical
// monolithic loop: serial stages, sinks invoked synchronously on the
// calling thread, bit-identical outputs.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "controlplane/controller_input.h"
#include "controlplane/sdn_controller.h"
#include "controlplane/services.h"
#include "flow/metrics.h"
#include "flow/simulator.h"
#include "net/state.h"
#include "obs/provenance.h"
#include "obs/span.h"
#include "telemetry/collector.h"

namespace hodor::obs {
class ExecTimeline;
}  // namespace hodor::obs

namespace hodor::controlplane {

// What a validator decided about one epoch's inputs.
struct ValidationDecision {
  bool accept = true;
  std::string reason;  // operator-facing summary when rejected
  // Audit trail: which invariants were evaluated and which fired, with
  // residuals and thresholds. Filled by provenance-aware validators
  // (core::Validator::AsPipelineValidator); empty otherwise.
  obs::DecisionRecord provenance;
};

using InputValidatorFn = std::function<ValidationDecision(
    const ControllerInput&, const telemetry::NetworkSnapshot&)>;

// Delta-aware validator callback (DESIGN.md §12): additionally receives
// the exact changed-signal set between this epoch's snapshot and the
// previous one, or nullptr / a delta with full=true when no incremental
// basis exists (first epoch, fault stamp set, HODOR_FORCE_FULL, topology
// change). Implementations must produce decisions bit-identical to a full
// recompute regardless of the delta — it is a work-avoidance hint, never a
// correctness input.
using DeltaInputValidatorFn = std::function<ValidationDecision(
    const ControllerInput&, const telemetry::NetworkSnapshot&,
    const telemetry::FrameDelta*)>;

struct EpochResult;

// Epoch sink: invoked with every completed EpochResult. Sinks are the
// operability fan-out — feeding a SignalHealthBoard, driving an
// AlertEngine, appending to a replay::EpochLogWriter, publishing to a
// TelemetryServer — without the pipeline depending on any of those types.
// With threaded sinks enabled (PipelineOptions::threaded_sinks) every sink
// runs on the engine's dedicated sink thread; otherwise they run inline at
// the end of RunEpoch. Either way all sinks see all epochs in order, and a
// sink must not throw.
using EpochSinkFn = std::function<void(const EpochResult&)>;

// What to do when the validator rejects an input (paper §3 step 3:
// "reject inputs that fail validation and fall back temporarily to the
// last input state, or trigger an alert").
enum class RejectionPolicy {
  kAlertOnly,           // log, but use the input anyway
  kFallbackToLastGood,  // reuse the last accepted input
};

struct PipelineOptions {
  telemetry::CollectorOptions collector;
  ControlInfraOptions infra;
  ControllerOptions controller;
  RejectionPolicy policy = RejectionPolicy::kFallbackToLastGood;

  // Intra-epoch parallelism: worker threads for the sharded stages
  // (honest collection over router agents; the validator's sibling checks
  // follow core::ValidatorOptions::hardening.num_threads). 1 = fully
  // serial. Any value produces bit-identical results — see DESIGN §9.
  std::size_t num_threads = 1;

  // Escape hatch for the incremental validation path: when true, every
  // epoch hands the delta validator a full=true delta, forcing the full
  // recompute (the incremental path's A/B and safety switch). Also
  // settable without a rebuild via the HODOR_FORCE_FULL=1 environment
  // variable, read once at pipeline construction.
  bool force_full = false;

  // When true, epoch sinks run on a dedicated sink thread fed by a small
  // bounded queue (double-buffered EpochState; backpressure blocks, never
  // drops), taking disk and string-rendering cost off the control loop.
  // When false (default), sinks run synchronously inside RunEpoch — the
  // historical behavior.
  bool threaded_sinks = false;

  // Observability. Stage spans (epoch, collect, aggregate, validate,
  // program, simulate) and epoch counters go to `metrics` (nullptr → the
  // process-global registry); `trace`, when given, receives every span as
  // a JSON-Lines record. Both propagate into the collector options unless
  // those already name a registry/trace.
  obs::MetricsRegistry* metrics = nullptr;
  obs::TraceWriter* trace = nullptr;

  // Always-on execution tracer (util/exec_trace.h + obs/exec_timeline.h):
  // per-thread ring buffers of stage/pool-task/queue events, drained
  // off-path into a critical-path analyzer and a Perfetto exporter. On by
  // default — the rings are wait-free and drop-oldest, so the control loop
  // never blocks on its own instrumentation (overhead is gated ≤ 3% by
  // scripts/check_build.sh --trace-gate). Disable for A/B overhead runs.
  bool exec_trace = true;
  // Events each registered thread's ring holds before overwriting its
  // oldest (counted in hodor_trace_dropped_total).
  std::size_t trace_ring_capacity = 8192;
  // Drained events the analyzer retains in memory for /trace breakdowns
  // and Perfetto export.
  std::size_t trace_retain_events = 1 << 16;
};

struct EpochResult {
  std::uint64_t epoch = 0;
  ControllerInput raw_input;           // as aggregated (possibly corrupted)
  bool validated = false;              // was a validator installed?
  ValidationDecision decision;
  bool used_fallback = false;          // rejected and replaced by last-good
  flow::NetworkMetrics metrics;        // outcome under the new plan
  flow::SimulationResult outcome;
  telemetry::NetworkSnapshot snapshot; // what the validator saw
  // Pipeline-level stage timings for this epoch (the validator's inner
  // harden/check-* spans go to the registry/trace only).
  std::vector<obs::SpanRecord> spans;
  // Registry a sink may render race-free while the control thread runs
  // ahead: with threaded sinks this points at the engine's per-epoch
  // metrics mirror; with synchronous sinks it is the pipeline's configured
  // registry (nullptr → the process-global one, per ResolveRegistry).
  // Valid only during sink invocation — nulled in the EpochResult that
  // RunEpoch returns.
  const obs::MetricsRegistry* metrics_mirror = nullptr;
  // Fault classes active this epoch (faults::FaultClassName values, e.g.
  // "router-signal"). Inferred from the RunEpoch fault hooks unless the
  // caller stamped an explicit set (Pipeline::SetFaultStamp). Ground truth
  // for detection-latency scoring — deliberately kept out of
  // DecisionRecord's canonical text so digests stay fault-stamp-agnostic.
  std::vector<std::string> fault_classes;
};

class EpochEngine;

class Pipeline {
 public:
  Pipeline(const net::Topology& topo, PipelineOptions opts, util::Rng rng);
  ~Pipeline();
  Pipeline(Pipeline&&) noexcept;
  Pipeline& operator=(Pipeline&&) noexcept;

  // Installs an initial honest plan: SPF over the true usable topology for
  // the given demand. Call once before the first RunEpoch.
  void Bootstrap(const net::GroundTruthState& state,
                 const flow::DemandMatrix& true_demand);

  void SetValidator(InputValidatorFn validator);

  // Installs a delta-aware validator (core::Validator::
  // AsDeltaPipelineValidator). The engine then tracks the previous epoch's
  // snapshot, computes the per-epoch FrameDelta after collection, and
  // passes it through — forcing full=true on the first epoch, while a
  // fault stamp is set, and under PipelineOptions::force_full /
  // HODOR_FORCE_FULL=1. Mutually exclusive with SetValidator (the last
  // call wins).
  void SetDeltaValidator(DeltaInputValidatorFn validator);

  // Subscribes a sink to every future epoch (see EpochSinkFn). Sinks are
  // invoked in subscription order. Subscribe before the first RunEpoch;
  // with threaded sinks, subscribing mid-run is rejected. An empty
  // function is a no-op subscription (skipped at dispatch), so conditional
  // hooks can subscribe unconditionally.
  void AddEpochSink(EpochSinkFn sink);

  // Runs one epoch. `snapshot_fault` corrupts router telemetry (§2.1),
  // `aggregation_faults` corrupt service outputs (§2.2); both may be empty
  // for a healthy epoch.
  EpochResult RunEpoch(const net::GroundTruthState& state,
                       const flow::DemandMatrix& true_demand,
                       const telemetry::SnapshotMutator& snapshot_fault = nullptr,
                       const AggregationFaultHooks& aggregation_faults = {});

  // Fault-class stamping for detection-latency scoring. By default each
  // epoch's EpochResult::fault_classes is inferred from the RunEpoch
  // arguments (snapshot fault → "router-signal", topology/drain hooks →
  // "aggregation", demand hook → "external-input"). A harness injecting
  // faults some other way (e.g. by mutating ground truth) can override
  // with an explicit sticky stamp; ClearFaultStamp returns to inference.
  // Stamps feed EpochResult and the hodor_fault_active{class} gauges only
  // — never the decision digest.
  void SetFaultStamp(std::vector<std::string> classes);
  void ClearFaultStamp();

  // Blocks until every epoch produced so far has been delivered to all
  // sinks. No-op with synchronous sinks. Call before reading state a
  // threaded sink mutates (boards, alert logs) from the control thread.
  void DrainSinks();

  const flow::RoutingPlan& installed_plan() const;
  const std::optional<ControllerInput>& last_good_input() const;

  // The execution-trace analyzer (critical path, per-stage self/wait,
  // sink health); nullptr when options().exec_trace is false. Poll/Analyze
  // from the thread running the epochs only.
  obs::ExecTimeline* exec_timeline();

  // Drains outstanding trace events and writes everything retained as
  // Chrome/Perfetto trace JSON to `path` (load in ui.perfetto.dev). False
  // when tracing is disabled, nothing was recorded, or the file cannot be
  // written.
  bool WriteExecTrace(const std::string& path);

 private:
  std::unique_ptr<EpochEngine> engine_;
};

}  // namespace hodor::controlplane
