// Ground-truth dynamic network condition.
//
// A GroundTruthState records what is *actually* true in the simulated
// network, independent of what any telemetry reports: which links carry
// light, whose dataplanes really forward, and which elements operators
// intend to be drained. Fault injection corrupts the *signals* about this
// state (or the aggregation of those signals) — never the state itself —
// which is exactly the situation the paper describes: the network is fine
// (or drained, or down), but the controller hears otherwise.
#pragma once

#include <vector>

#include "net/topology.h"

namespace hodor::net {

class GroundTruthState {
 public:
  // All links up and healthy, nothing drained.
  explicit GroundTruthState(const Topology& topo);

  const Topology& topology() const { return *topo_; }

  // --- physical link layer -------------------------------------------------

  // Sets both directions of the physical link containing `link`.
  void SetLinkUp(LinkId link, bool up);
  bool link_up(LinkId link) const { return link_up_[link.value()]; }

  // Dataplane health: when false the link reports "up" at the optical /
  // interface-status level but cannot actually pass traffic (mis-programmed
  // ACL, dataplane bug — the §4.2 semantic-incorrectness case). Set on both
  // directions.
  void SetLinkDataplaneOk(LinkId link, bool ok);
  bool link_dataplane_ok(LinkId link) const {
    return link_dataplane_ok_[link.value()];
  }

  // --- operator intent ------------------------------------------------------

  // Intended drain on a node (maintenance, fault response). A drained node
  // must not carry traffic.
  void SetNodeDrained(NodeId node, bool drained);
  bool node_drained(NodeId node) const { return node_drained_[node.value()]; }

  // Intended drain on a physical link (both directions).
  void SetLinkDrained(LinkId link, bool drained);
  bool link_drained(LinkId link) const { return link_drained_[link.value()]; }

  // --- node health -----------------------------------------------------------

  // When false the router cannot forward traffic at all (it *should* be
  // drained; §4.3 case 1 is the scenario where it is not).
  void SetNodeForwarding(NodeId node, bool ok);
  bool node_forwarding(NodeId node) const {
    return node_forwarding_[node.value()];
  }

  // --- derived usability ------------------------------------------------------

  // True when traffic can and may be routed over `link`: physically up,
  // dataplane healthy, not drained, and both endpoint routers forwarding
  // and undrained.
  bool LinkUsable(LinkId link) const;

  // True when the link can physically pass traffic, ignoring drain intent.
  // Used to evaluate "drained but could still carry traffic" (§4.3 case 2).
  bool LinkPhysicallyUsable(LinkId link) const;

  std::size_t UsableLinkCount() const;

 private:
  const Topology* topo_;
  std::vector<bool> link_up_;
  std::vector<bool> link_dataplane_ok_;
  std::vector<bool> link_drained_;
  std::vector<bool> node_drained_;
  std::vector<bool> node_forwarding_;
};

}  // namespace hodor::net
