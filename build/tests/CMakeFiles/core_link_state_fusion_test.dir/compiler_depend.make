# Empty compiler generated dependencies file for core_link_state_fusion_test.
# This may be replaced when dependencies are built.
