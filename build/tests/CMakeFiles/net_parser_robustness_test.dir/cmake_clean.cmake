file(REMOVE_RECURSE
  "CMakeFiles/net_parser_robustness_test.dir/net/parser_robustness_test.cc.o"
  "CMakeFiles/net_parser_robustness_test.dir/net/parser_robustness_test.cc.o.d"
  "net_parser_robustness_test"
  "net_parser_robustness_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_parser_robustness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
