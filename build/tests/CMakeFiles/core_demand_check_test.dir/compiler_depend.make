# Empty compiler generated dependencies file for core_demand_check_test.
# This may be replaced when dependencies are built.
