#include "core/drain_check.h"

#include <sstream>

#include "obs/metrics.h"
#include "obs/provenance.h"
#include "util/status.h"

namespace hodor::core {

std::string DrainViolation::ToString(const net::Topology& topo) const {
  std::ostringstream os;
  auto entity = [&]() {
    return node.valid() ? topo.node(node).name : topo.LinkName(link);
  };
  switch (kind) {
    case DrainViolationKind::kInputIgnoresDrain:
      os << "input ignores drain of " << entity();
      break;
    case DrainViolationKind::kInputInventsDrain:
      os << "input drains " << entity() << " which reports undrained";
      break;
    case DrainViolationKind::kUndrainedDeadRouter:
      os << topo.node(node).name
         << " cannot carry traffic but is not drained";
      break;
    case DrainViolationKind::kDrainAsymmetry:
      os << "link drain asymmetry on " << topo.LinkName(link);
      break;
  }
  return os.str();
}

DrainCheckResult CheckDrains(const net::Topology& topo,
                             const HardenedState& hardened,
                             const std::vector<bool>& node_drained_input,
                             const std::vector<bool>& link_drained_input,
                             const DrainCheckOptions& opts,
                             obs::DecisionRecord* provenance) {
  HODOR_CHECK(node_drained_input.size() == topo.node_count());
  HODOR_CHECK(link_drained_input.size() == topo.link_count());
  DrainCheckResult result;

  // Drain invariants are boolean; residual 1.0 marks a mismatch. Invariant
  // names are taken by value and moved through: each call site composes the
  // one name it needs, so every record costs a single string allocation.
  auto record = [&](std::string invariant, bool fired, std::string detail) {
    if (!provenance) return;
    provenance->Add(obs::InvariantRecord{
        "drain", std::move(invariant), fired ? 1.0 : 0.0, 0.0,
        fired ? obs::InvariantVerdict::kFail : obs::InvariantVerdict::kPass,
        std::move(detail), /*source=*/"", /*confidence=*/0.0});
  };
  auto fail = [&](net::NodeId node, net::LinkId link,
                  DrainViolationKind kind, std::string invariant) {
    DrainViolation violation{node, link, kind};
    record(std::move(invariant), /*fired=*/true, violation.ToString(topo));
    result.violations.push_back(violation);
  };

  for (const net::Node& n : topo.nodes()) {
    const HardenedDrain& hd = hardened.drains[n.id.value()];
    const bool input_drained = node_drained_input[n.id.value()];
    auto intent = [&n] { return "drain-intent(" + n.name + ")"; };
    if (hd.node_drained.has_value()) {
      ++result.checked_signals;
      if (*hd.node_drained && !input_drained) {
        fail(n.id, net::LinkId::Invalid(),
             DrainViolationKind::kInputIgnoresDrain, intent());
      } else if (!*hd.node_drained && input_drained) {
        fail(n.id, net::LinkId::Invalid(),
             DrainViolationKind::kInputInventsDrain, intent());
      } else {
        record(intent(), /*fired=*/false, "");
      }
    } else {
      ++result.skipped_signals;
      if (provenance) {
        provenance->Add(obs::InvariantRecord{
            "drain", intent(), 0.0, 0.0, obs::InvariantVerdict::kSkipped,
            "router intent signal unknown", /*source=*/"",
            /*confidence=*/0.0});
      }
    }
    // §4.3 case 1, gated by probe coverage: firing "dead but undrained"
    // from a handful of probes is exactly the low-confidence false
    // positive the confidence calibration exists to avoid.
    const double live_conf = hd.liveness_confidence;
    auto live_record = [&](double residual, obs::InvariantVerdict verdict,
                           std::string detail) {
      if (!provenance) return;
      provenance->Add(obs::InvariantRecord{
          "drain", "drain-liveness(" + n.name + ")", residual, 0.0, verdict,
          std::move(detail), /*source=*/"r4-probes",
          /*confidence=*/live_conf});
    };
    if (hd.undrained_but_dead && !input_drained &&
        live_conf < opts.min_liveness_confidence) {
      ++result.skipped_signals;
      live_record(1.0, obs::InvariantVerdict::kSkipped,
                  "dead-router evidence below liveness confidence floor");
    } else {
      ++result.checked_signals;
      if (hd.undrained_but_dead && !input_drained) {
        DrainViolation violation{n.id, net::LinkId::Invalid(),
                                 DrainViolationKind::kUndrainedDeadRouter};
        live_record(1.0, obs::InvariantVerdict::kFail,
                    violation.ToString(topo));
        result.violations.push_back(violation);
      } else {
        live_record(0.0, obs::InvariantVerdict::kPass,
                    hd.drained_but_active
                        ? "drained but carrying traffic (warning)"
                        : "");
      }
    }
    if (hd.drained_but_active) {
      result.warnings_drained_but_active.push_back(n.id);
    }
  }

  for (std::uint32_t i = 0; i < topo.link_count(); ++i) {
    const net::LinkId e(i);
    const net::Link& l = topo.link(e);
    if (l.reverse.value() < e.value()) continue;  // once per physical link
    auto symmetry = [&] { return "drain-symmetry(" + topo.LinkNameRef(e) + ")"; };
    ++result.checked_signals;
    if (hardened.link_drain_disagreement[e.value()]) {
      fail(net::NodeId::Invalid(), e, DrainViolationKind::kDrainAsymmetry,
           symmetry());
    } else {
      record(symmetry(), /*fired=*/false, "");
    }
    const auto& hd = hardened.link_drained[e.value()];
    auto intent = [&] { return "drain-intent(" + topo.LinkNameRef(e) + ")"; };
    if (!hd.has_value()) {
      ++result.skipped_signals;
      if (provenance) {
        provenance->Add(obs::InvariantRecord{
            "drain", intent(), 0.0, 0.0, obs::InvariantVerdict::kSkipped,
            "link drain status unknown", /*source=*/"", /*confidence=*/0.0});
      }
      continue;
    }
    ++result.checked_signals;
    const bool input_drained = link_drained_input[e.value()];
    if (*hd && !input_drained) {
      fail(net::NodeId::Invalid(), e, DrainViolationKind::kInputIgnoresDrain,
           intent());
    } else if (!*hd && input_drained) {
      fail(net::NodeId::Invalid(), e, DrainViolationKind::kInputInventsDrain,
           intent());
    } else {
      record(intent(), /*fired=*/false, "");
    }
  }

  obs::MetricsRegistry& reg = obs::ResolveRegistry(opts.metrics);
  const obs::Labels labels = {{"check", "drain"}};
  reg.GetCounter("hodor_check_runs_total", labels, "Check invocations")
      .Increment();
  reg.GetCounter("hodor_check_invariants_total", labels,
                 "Invariants evaluated")
      .Increment(static_cast<double>(result.checked_signals));
  reg.GetCounter("hodor_check_violations_total", labels, "Invariants fired")
      .Increment(static_cast<double>(result.violations.size()));
  reg.GetCounter("hodor_check_skipped_total", labels,
                 "Invariants skipped (signal unknown or suppressed)")
      .Increment(static_cast<double>(result.skipped_signals));
  reg.GetCounter("hodor_check_warnings_total", labels,
                 "Drained-but-active warnings")
      .Increment(static_cast<double>(result.warnings_drained_but_active.size()));
  return result;
}

}  // namespace hodor::core
