#include "obs/exec_timeline.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <utility>

#include "obs/json.h"
#include "obs/metrics.h"

namespace hodor::obs {

namespace {

constexpr double kNsPerMs = 1e6;

// Fixed-point milliseconds with microsecond resolution: enough for
// human-readable breakdowns without JsonNumber's full precision churn.
std::string Ms(double ms) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", ms);
  return std::string(buf);
}

std::string Ratio(double r) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4f", r);
  return std::string(buf);
}

void AppendStages(std::ostringstream& os,
                  const std::vector<StageBreakdown>& stages) {
  os << "\"stages\":[";
  for (std::size_t i = 0; i < stages.size(); ++i) {
    if (i > 0) os << ',';
    os << "{\"stage\":\"" << JsonEscape(stages[i].name) << "\",\"self_ms\":"
       << Ms(stages[i].self_ms) << ",\"wait_ms\":" << Ms(stages[i].wait_ms)
       << ",\"busy_ratio\":" << Ratio(stages[i].busy_ratio) << '}';
  }
  os << ']';
}

}  // namespace

std::string EpochBreakdown::ToJson() const {
  std::ostringstream os;
  os << "{\"epoch\":" << epoch << ",\"critical_path_ms\":"
     << Ms(critical_path_ms) << ",\"bottleneck\":\"" << JsonEscape(bottleneck)
     << "\",";
  AppendStages(os, stages);
  os << ",\"pool_busy_ratio\":" << Ratio(pool_busy_ratio)
     << ",\"backpressure_ms\":" << Ms(backpressure_ms)
     << ",\"sink_queue_depth_max\":" << sink_queue_depth_max
     << ",\"sink_delivered\":" << (sink_delivered ? "true" : "false")
     << ",\"sink_lag_ms\":" << Ms(sink_lag_ms) << '}';
  return os.str();
}

std::string ExecSummary::ToJson() const {
  std::ostringstream os;
  os << "{\"epochs\":" << epochs << ",\"mean_critical_path_ms\":"
     << Ms(mean_critical_path_ms) << ",\"bottleneck\":\""
     << JsonEscape(bottleneck) << "\",";
  AppendStages(os, stages);
  os << ",\"mean_pool_busy_ratio\":" << Ratio(mean_pool_busy_ratio)
     << ",\"mean_backpressure_ms\":" << Ms(mean_backpressure_ms)
     << ",\"sink_queue_depth_max\":" << sink_queue_depth_max
     << ",\"mean_sink_lag_ms\":" << Ms(mean_sink_lag_ms) << '}';
  return os.str();
}

ExecSummary Summarize(const std::vector<EpochBreakdown>& breakdowns) {
  ExecSummary summary;
  summary.epochs = breakdowns.size();
  if (breakdowns.empty()) return summary;

  // Stage order follows the first breakdown; epochs that miss a stage
  // (none in practice — the graph is fixed) contribute zero.
  std::map<std::string, std::size_t> index;
  for (const StageBreakdown& s : breakdowns.front().stages) {
    index.emplace(s.name, summary.stages.size());
    summary.stages.push_back(StageBreakdown{s.name, 0.0, 0.0, 0.0});
  }
  std::map<std::string, std::size_t> bottleneck_votes;
  for (const EpochBreakdown& b : breakdowns) {
    summary.mean_critical_path_ms += b.critical_path_ms;
    summary.mean_pool_busy_ratio += b.pool_busy_ratio;
    summary.mean_backpressure_ms += b.backpressure_ms;
    summary.mean_sink_lag_ms += b.sink_lag_ms;
    summary.sink_queue_depth_max =
        std::max(summary.sink_queue_depth_max, b.sink_queue_depth_max);
    if (!b.bottleneck.empty()) ++bottleneck_votes[b.bottleneck];
    for (const StageBreakdown& s : b.stages) {
      const auto it = index.find(s.name);
      if (it == index.end()) continue;
      summary.stages[it->second].self_ms += s.self_ms;
      summary.stages[it->second].wait_ms += s.wait_ms;
      summary.stages[it->second].busy_ratio += s.busy_ratio;
    }
  }
  const double n = static_cast<double>(breakdowns.size());
  summary.mean_critical_path_ms /= n;
  summary.mean_pool_busy_ratio /= n;
  summary.mean_backpressure_ms /= n;
  summary.mean_sink_lag_ms /= n;
  for (StageBreakdown& s : summary.stages) {
    s.self_ms /= n;
    s.wait_ms /= n;
    s.busy_ratio /= n;
  }
  std::size_t best = 0;
  for (const auto& [name, votes] : bottleneck_votes) {
    if (votes > best) {
      best = votes;
      summary.bottleneck = name;
    }
  }
  return summary;
}

ExecTimeline::ExecTimeline(util::ExecTracer* tracer, ExecTimelineOptions opts)
    : tracer_(tracer), opts_(std::move(opts)) {
  if (opts_.retain_events == 0) opts_.retain_events = 1;
}

void ExecTimeline::Poll() {
  std::vector<util::ExecTracer::ThreadEvents> batches;
  tracer_->Drain(&batches);
  for (const util::ExecTracer::ThreadEvents& batch : batches) {
    if (batch.tid >= thread_names_.size()) {
      thread_names_.resize(batch.tid + 1);
    }
    thread_names_[batch.tid] = batch.name;
    for (const util::ExecEvent& ev : batch.events) {
      retained_.push_back(TaggedEvent{batch.tid, ev});
    }
  }
  while (retained_.size() > opts_.retain_events) {
    // Count evicted epoch anchors: once an epoch's kEpoch event is gone
    // the epoch can no longer be analyzed, and that loss should be a
    // metric, not a silent nullopt from Analyze.
    if (retained_.front().ev.kind == util::ExecEventKind::kEpoch) {
      ++epochs_dropped_;
    }
    retained_.pop_front();
  }
}

std::optional<EpochBreakdown> ExecTimeline::Analyze(
    std::uint64_t epoch) const {
  // The epoch's anchor is its kEpoch event on the control thread.
  const TaggedEvent* anchor = nullptr;
  for (const TaggedEvent& te : retained_) {
    if (te.ev.kind == util::ExecEventKind::kEpoch && te.ev.epoch == epoch) {
      anchor = &te;
      break;
    }
  }
  if (anchor == nullptr) return std::nullopt;

  EpochBreakdown b;
  b.epoch = epoch;
  const std::uint64_t span_start = anchor->ev.start_ns;
  const std::uint64_t span_end = span_start + anchor->ev.duration_ns;
  b.critical_path_ms =
      static_cast<double>(anchor->ev.duration_ns) / kNsPerMs;

  std::vector<const TaggedEvent*> stage_events;
  std::uint64_t pool_busy_ns = 0;
  std::uint64_t backpressure_ns = 0;
  for (const TaggedEvent& te : retained_) {
    if (te.ev.epoch != epoch) continue;
    switch (te.ev.kind) {
      case util::ExecEventKind::kStage:
        if (te.tid == anchor->tid) stage_events.push_back(&te);
        break;
      case util::ExecEventKind::kPoolTask:
        pool_busy_ns += te.ev.duration_ns;
        break;
      case util::ExecEventKind::kQueuePush:
      case util::ExecEventKind::kQueuePop:
        // Hand-off stalls on the control thread are backpressure: the
        // epoch loop waiting for the sink side to return a buffer or to
        // make queue room.
        if (te.tid == anchor->tid) backpressure_ns += te.ev.duration_ns;
        if (te.ev.arg == opts_.sink_queue_id) {
          b.sink_queue_depth_max =
              std::max(b.sink_queue_depth_max, te.ev.detail);
        }
        break;
      case util::ExecEventKind::kSinkDeliver: {
        b.sink_delivered = true;
        const std::uint64_t deliver_end = te.ev.start_ns + te.ev.duration_ns;
        const double lag = deliver_end > span_end
                               ? static_cast<double>(deliver_end - span_end) /
                                     kNsPerMs
                               : 0.0;
        b.sink_lag_ms = std::max(b.sink_lag_ms, lag);
        break;
      }
      default:
        break;
    }
  }

  std::sort(stage_events.begin(), stage_events.end(),
            [](const TaggedEvent* a, const TaggedEvent* c) {
              return a->ev.start_ns < c->ev.start_ns;
            });
  std::uint64_t prev_end = span_start;
  double best_self = -1.0;
  for (const TaggedEvent* te : stage_events) {
    StageBreakdown s;
    s.name = te->ev.arg < opts_.stage_names.size()
                 ? opts_.stage_names[te->ev.arg]
                 : "stage-" + std::to_string(te->ev.arg);
    s.self_ms = static_cast<double>(te->ev.duration_ns) / kNsPerMs;
    s.wait_ms = te->ev.start_ns > prev_end
                    ? static_cast<double>(te->ev.start_ns - prev_end) / kNsPerMs
                    : 0.0;
    if (b.critical_path_ms > 0.0) s.busy_ratio = s.self_ms / b.critical_path_ms;
    prev_end = te->ev.start_ns + te->ev.duration_ns;
    if (s.self_ms > best_self) {
      best_self = s.self_ms;
      b.bottleneck = s.name;
    }
    b.stages.push_back(std::move(s));
  }

  const std::uint64_t span_ns = span_end - span_start;
  if (span_ns > 0 && opts_.pool_threads > 0) {
    b.pool_busy_ratio =
        static_cast<double>(pool_busy_ns) /
        (static_cast<double>(span_ns) *
         static_cast<double>(opts_.pool_threads));
    if (b.pool_busy_ratio > 1.0) b.pool_busy_ratio = 1.0;
  }
  b.backpressure_ms = static_cast<double>(backpressure_ns) / kNsPerMs;
  return b;
}

std::vector<EpochBreakdown> ExecTimeline::Recent(std::size_t n) const {
  std::vector<std::uint64_t> epochs;
  for (const TaggedEvent& te : retained_) {
    if (te.ev.kind == util::ExecEventKind::kEpoch) {
      epochs.push_back(te.ev.epoch);
    }
  }
  std::sort(epochs.begin(), epochs.end());
  epochs.erase(std::unique(epochs.begin(), epochs.end()), epochs.end());
  std::vector<EpochBreakdown> out;
  for (auto it = epochs.rbegin(); it != epochs.rend() && out.size() < n;
       ++it) {
    if (std::optional<EpochBreakdown> b = Analyze(*it)) {
      out.push_back(*std::move(b));
    }
  }
  return out;
}

std::optional<EpochBreakdown> ExecTimeline::Latest() const {
  std::vector<EpochBreakdown> recent = Recent(1);
  if (recent.empty()) return std::nullopt;
  return std::move(recent.front());
}

std::string ExecTimeline::RecentJson(std::size_t n) const {
  const std::vector<EpochBreakdown> recent = Recent(n);
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < recent.size(); ++i) {
    if (i > 0) os << ',';
    os << recent[i].ToJson();
  }
  os << ']';
  return os.str();
}

void ExecTimeline::PublishGauges(MetricsRegistry* registry) {
  MetricsRegistry& reg = ResolveRegistry(registry);
  // The gauge handles are looked up once per registry and reused: this
  // runs every epoch, and the name/label churn of repeated GetGauge calls
  // is exactly the kind of per-epoch cost the tracer's ≤3% overhead gate
  // budgets against. Caveat: a Reset() of the bound registry invalidates
  // the handles — rebinding happens only when the registry *instance*
  // changes, which covers the engine's usage (one registry per pipeline).
  if (&reg != gauge_registry_) {
    gauge_registry_ = &reg;
    dropped_counter_ = &reg.GetCounter("hodor_trace_dropped_total", {},
                                       "Trace events lost to ring overwrite");
    epochs_dropped_counter_ = &reg.GetCounter(
        "hodor_timeline_epochs_dropped_total", {},
        "Epochs whose trace anchor the bounded timeline store evicted");
    critical_path_gauge_ =
        &reg.GetGauge("hodor_epoch_critical_path_ms", {},
                      "Control-thread wall time of the latest epoch");
    pool_busy_gauge_ =
        &reg.GetGauge("hodor_pool_busy_ratio", {},
                      "Pool task time / (epoch span x pool threads)");
    backpressure_gauge_ =
        &reg.GetGauge("hodor_epoch_backpressure_ms", {},
                      "Control-thread time blocked on sink hand-offs");
    bottleneck_gauge_ = &reg.GetGauge(
        "hodor_epoch_bottleneck", {},
        "Stage-graph index of the stage with the largest self time");
    stage_busy_gauges_.clear();
    stage_busy_gauges_.reserve(opts_.stage_names.size());
    for (const std::string& name : opts_.stage_names) {
      stage_busy_gauges_.push_back(
          &reg.GetGauge("hodor_stage_busy_ratio", {{"stage", name}},
                        "Stage self time / epoch wall time"));
    }
  }

  const std::uint64_t dropped = tracer_->dropped_total();
  if (dropped > published_dropped_) {
    dropped_counter_->Increment(
        static_cast<double>(dropped - published_dropped_));
    published_dropped_ = dropped;
  }
  if (epochs_dropped_ > published_epochs_dropped_) {
    epochs_dropped_counter_->Increment(
        static_cast<double>(epochs_dropped_ - published_epochs_dropped_));
    published_epochs_dropped_ = epochs_dropped_;
  }

  const std::optional<EpochBreakdown> latest = Latest();
  if (!latest) return;
  critical_path_gauge_->Set(latest->critical_path_ms);
  pool_busy_gauge_->Set(latest->pool_busy_ratio);
  backpressure_gauge_->Set(latest->backpressure_ms);
  for (const StageBreakdown& s : latest->stages) {
    for (std::size_t i = 0; i < opts_.stage_names.size(); ++i) {
      if (opts_.stage_names[i] == s.name) {
        stage_busy_gauges_[i]->Set(s.busy_ratio);
        if (s.name == latest->bottleneck) {
          bottleneck_gauge_->Set(static_cast<double>(i));
        }
        break;
      }
    }
  }
}

bool ExecTimeline::WritePerfetto(std::ostream& os) const {
  if (retained_.empty()) return false;
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  const auto comma = [&] {
    if (!first) os << ',';
    first = false;
  };
  // Track metadata: Perfetto shows these as the per-thread lane names.
  for (std::size_t tid = 0; tid < thread_names_.size(); ++tid) {
    if (thread_names_[tid].empty()) continue;
    comma();
    os << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << tid + 1
       << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
       << JsonEscape(thread_names_[tid]) << "\"}}";
  }
  char ts_buf[32];
  const auto us = [&](std::uint64_t ns) {
    std::snprintf(ts_buf, sizeof(ts_buf), "%.3f",
                  static_cast<double>(ns) / 1000.0);
    return ts_buf;
  };
  for (const TaggedEvent& te : retained_) {
    std::string name;
    const char* cat = "epoch";
    std::string args;
    switch (te.ev.kind) {
      case util::ExecEventKind::kEpoch:
        name = "epoch";
        break;
      case util::ExecEventKind::kStage:
        name = te.ev.arg < opts_.stage_names.size()
                   ? opts_.stage_names[te.ev.arg]
                   : "stage-" + std::to_string(te.ev.arg);
        cat = "stage";
        break;
      case util::ExecEventKind::kPoolTask:
        name = "shard";
        cat = "pool";
        args = ",\"args\":{\"index\":" + std::to_string(te.ev.arg) + '}';
        break;
      case util::ExecEventKind::kQueuePush:
      case util::ExecEventKind::kQueuePop:
        name = te.ev.kind == util::ExecEventKind::kQueuePush ? "queue-push"
                                                             : "queue-pop";
        cat = "queue";
        args = ",\"args\":{\"queue\":" + std::to_string(te.ev.arg) +
               ",\"depth\":" + std::to_string(te.ev.detail) + '}';
        break;
      case util::ExecEventKind::kSinkDeliver:
        name = "sink-deliver";
        cat = "sink";
        break;
      case util::ExecEventKind::kMark:
        name = "mark";
        cat = "mark";
        break;
      default:
        continue;
    }
    comma();
    os << "{\"ph\":\"X\",\"pid\":1,\"tid\":" << te.tid + 1 << ",\"ts\":"
       << us(te.ev.start_ns) << ",\"dur\":" << us(te.ev.duration_ns)
       << ",\"name\":\"" << JsonEscape(name) << "\",\"cat\":\"" << cat
       << '"' << args << '}';
    // Sink-queue depth doubles as a Perfetto counter track.
    if ((te.ev.kind == util::ExecEventKind::kQueuePush ||
         te.ev.kind == util::ExecEventKind::kQueuePop) &&
        te.ev.arg == opts_.sink_queue_id) {
      comma();
      os << "{\"ph\":\"C\",\"pid\":1,\"name\":\"sink_queue_depth\",\"ts\":"
         << us(te.ev.start_ns + te.ev.duration_ns)
         << ",\"args\":{\"depth\":" << te.ev.detail << "}}";
    }
  }
  os << "]}";
  return true;
}

bool ExecTimeline::WritePerfettoFile(const std::string& path) {
  Poll();
  std::ofstream out(path);
  if (!out) return false;
  if (!WritePerfetto(out)) return false;
  out.flush();
  return out.good();
}

}  // namespace hodor::obs
