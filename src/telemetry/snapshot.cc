#include "telemetry/snapshot.h"

namespace hodor::telemetry {

NetworkSnapshot::NetworkSnapshot(const net::Topology& topo,
                                 std::uint64_t epoch)
    : topo_(&topo), epoch_(epoch), routers_(topo.node_count()) {
  for (const net::Node& n : topo.nodes()) {
    routers_[n.id.value()].router = n.id;
  }
}

RouterSignals& NetworkSnapshot::router(net::NodeId id) {
  HODOR_CHECK(id.valid() && id.value() < routers_.size());
  return routers_[id.value()];
}

const RouterSignals& NetworkSnapshot::router(net::NodeId id) const {
  HODOR_CHECK(id.valid() && id.value() < routers_.size());
  return routers_[id.value()];
}

std::optional<double> NetworkSnapshot::TxRate(net::LinkId e) const {
  const net::Link& l = topo_->link(e);
  const RouterSignals& r = router(l.src);
  if (!r.responded) return std::nullopt;
  auto it = r.out_ifaces.find(e);
  if (it == r.out_ifaces.end()) return std::nullopt;
  return it->second.tx_rate;
}

std::optional<double> NetworkSnapshot::RxRate(net::LinkId e) const {
  const net::Link& l = topo_->link(e);
  const RouterSignals& r = router(l.dst);
  if (!r.responded) return std::nullopt;
  auto it = r.in_ifaces.find(e);
  if (it == r.in_ifaces.end()) return std::nullopt;
  return it->second.rx_rate;
}

std::optional<LinkStatus> NetworkSnapshot::StatusAtSrc(net::LinkId e) const {
  const net::Link& l = topo_->link(e);
  const RouterSignals& r = router(l.src);
  if (!r.responded) return std::nullopt;
  auto it = r.out_ifaces.find(e);
  if (it == r.out_ifaces.end()) return std::nullopt;
  return it->second.status;
}

std::optional<LinkStatus> NetworkSnapshot::StatusAtDst(net::LinkId e) const {
  // The dst end observes the same physical link through its own outgoing
  // interface, i.e. the reverse directed link.
  return StatusAtSrc(topo_->link(e).reverse);
}

std::optional<bool> NetworkSnapshot::LinkDrainAtSrc(net::LinkId e) const {
  const net::Link& l = topo_->link(e);
  const RouterSignals& r = router(l.src);
  if (!r.responded) return std::nullopt;
  auto it = r.out_ifaces.find(e);
  if (it == r.out_ifaces.end()) return std::nullopt;
  return it->second.link_drained;
}

std::optional<bool> NetworkSnapshot::LinkDrainAtDst(net::LinkId e) const {
  return LinkDrainAtSrc(topo_->link(e).reverse);
}

std::optional<bool> NetworkSnapshot::NodeDrained(net::NodeId v) const {
  const RouterSignals& r = router(v);
  if (!r.responded) return std::nullopt;
  return r.drained;
}

std::optional<double> NetworkSnapshot::DroppedRate(net::NodeId v) const {
  const RouterSignals& r = router(v);
  if (!r.responded) return std::nullopt;
  return r.dropped_rate;
}

std::optional<double> NetworkSnapshot::ExtInRate(net::NodeId v) const {
  const RouterSignals& r = router(v);
  if (!r.responded) return std::nullopt;
  return r.ext_in_rate;
}

std::optional<double> NetworkSnapshot::ExtOutRate(net::NodeId v) const {
  const RouterSignals& r = router(v);
  if (!r.responded) return std::nullopt;
  return r.ext_out_rate;
}

void NetworkSnapshot::SetProbeResults(std::vector<ProbeResult> results) {
  probes_ = std::move(results);
  probe_by_link_.assign(topo_->link_count(), std::nullopt);
  for (const ProbeResult& p : probes_) {
    HODOR_CHECK(p.link.valid() && p.link.value() < probe_by_link_.size());
    probe_by_link_[p.link.value()] = p.success;
  }
}

std::optional<bool> NetworkSnapshot::ProbeSucceeded(net::LinkId e) const {
  if (probe_by_link_.empty()) return std::nullopt;
  HODOR_CHECK(e.valid() && e.value() < probe_by_link_.size());
  return probe_by_link_[e.value()];
}

std::size_t NetworkSnapshot::PresentSignalCount() const {
  std::size_t n = 0;
  for (const RouterSignals& r : routers_) {
    if (!r.responded) continue;
    if (r.drained) ++n;
    if (r.dropped_rate) ++n;
    if (r.ext_in_rate) ++n;
    if (r.ext_out_rate) ++n;
    for (const auto& [lid, s] : r.out_ifaces) {
      if (s.status) ++n;
      if (s.tx_rate) ++n;
      if (s.link_drained) ++n;
    }
    for (const auto& [lid, s] : r.in_ifaces) {
      if (s.rx_rate) ++n;
    }
  }
  return n;
}

}  // namespace hodor::telemetry
