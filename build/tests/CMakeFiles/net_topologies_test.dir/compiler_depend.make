# Empty compiler generated dependencies file for net_topologies_test.
# This may be replaced when dependencies are built.
