// Shared machinery for the experiment harnesses in bench/.
//
// Each bench regenerates one table/figure of the paper (see DESIGN.md §4
// and EXPERIMENTS.md): it prints the experiment id, the fixed parameters
// (including every seed), and the measured rows via util::TablePrinter so
// outputs are uniform and diffable across runs.
#pragma once

#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>

#include "core/hardening.h"
#include "core/validator.h"
#include "flow/routing.h"
#include "flow/simulator.h"
#include "flow/tm_generators.h"
#include "net/state.h"
#include "net/topologies.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "telemetry/collector.h"
#include "util/clock.h"
#include "util/parallel.h"
#include "util/strings.h"
#include "util/table.h"

namespace hodor::bench {

// One ready-to-validate healthy trial: a seeded gravity TM (normalised to
// an uncongested operating point), shortest-path routing, the resulting
// true flows, and an honest snapshot.
struct Trial {
  net::Topology topo;
  net::GroundTruthState state;
  flow::DemandMatrix demand;
  flow::RoutingPlan plan;
  flow::SimulationResult sim;
  telemetry::NetworkSnapshot snapshot;

  Trial(net::Topology t, std::uint64_t seed, double max_util,
        const telemetry::CollectorOptions& copts)
      : topo(std::move(t)),
        state(topo),
        demand(MakeDemand(topo, seed, max_util)),
        plan(flow::ShortestPathRouting(topo, demand, net::AllLinks())),
        sim(flow::SimulateFlow(topo, state, demand, plan)),
        snapshot(Collect(topo, state, sim, seed, copts)) {}

 private:
  static flow::DemandMatrix MakeDemand(const net::Topology& topo,
                                       std::uint64_t seed, double max_util) {
    util::Rng rng(seed);
    flow::DemandMatrix d = flow::GravityDemand(topo, rng);
    flow::NormalizeToMaxUtilization(topo, max_util, d);
    return d;
  }

  static telemetry::NetworkSnapshot Collect(
      const net::Topology& topo, const net::GroundTruthState& state,
      const flow::SimulationResult& sim, std::uint64_t seed,
      const telemetry::CollectorOptions& copts) {
    util::Rng rng(seed ^ 0x9e3779b97f4a7c15ULL);
    telemetry::Collector collector(topo, copts);
    return collector.Collect(state, sim, /*epoch=*/0, rng);
  }
};

inline telemetry::CollectorOptions DefaultCollector() {
  telemetry::CollectorOptions copts;
  copts.probes.false_loss_rate = 0.0;  // deterministic experiments
  return copts;
}

inline void PrintHeader(const std::string& experiment_id,
                        const std::string& paper_artifact,
                        const std::string& parameters) {
  std::cout << "==============================================================\n"
            << experiment_id << " — " << paper_artifact << "\n"
            << "parameters: " << parameters << "\n"
            << "==============================================================\n";
}

// Writes the global metrics registry (per-stage latency histograms, check
// fire counters — everything src/obs/ accumulated during the bench) to
// BENCH_<experiment_id>.json next to the bench's stdout table.
// `report_json`, when non-empty, must be a JSON value (e.g. an
// AvailabilityReport::ToJson() or an array of them) and is embedded under
// "reports". Every snapshot records the host's hardware_threads and the
// effective HODOR_THREADS so cross-machine comparisons
// (scripts/bench_compare.sh) can flag apples-to-oranges baselines.
// Prints one stdout line naming the snapshot so transcripts show where it
// went.
inline void DumpObsSnapshot(const std::string& experiment_id,
                            const std::string& report_json = "") {
  const std::string path = "BENCH_" + experiment_id + ".json";
  std::ofstream out(path);
  if (!out.is_open()) {
    std::cout << "[obs] could not write " << path << "\n";
    return;
  }
  out << "{\"experiment\":\"" << obs::JsonEscape(experiment_id)
      << "\",\"generated_at\":\"" << obs::JsonEscape(util::UtcTimestampNow())
      << "\",\"hardware_threads\":" << std::thread::hardware_concurrency()
      << ",\"hodor_threads\":" << util::ThreadsFromEnv(1);
  if (!report_json.empty()) out << ",\"reports\":" << report_json;
  out << ",\"metrics\":" << obs::MetricsRegistry::Global().ExportJson()
      << "}\n";
  std::cout << "[obs] registry snapshot -> " << path << "\n";
}

// Prints the mean per-stage wall-clock accumulated in the global registry
// (span histograms), for benches/examples that end with a latency recap.
inline void PrintStageLatencySummary(std::ostream& os = std::cout) {
  const auto& reg = obs::MetricsRegistry::Global();
  util::TablePrinter table({"stage", "runs", "mean us", "total ms"});
  bool any = false;
  for (obs::Stage stage : obs::kAllStages) {
    const obs::Histogram* h = reg.FindHistogram(
        "hodor_stage_duration_us", {{"stage", obs::StageName(stage)}});
    if (!h || h->count() == 0) continue;
    any = true;
    table.AddRowValues(obs::StageName(stage), h->count(),
                       util::FormatDouble(
                           h->sum() / static_cast<double>(h->count()), 1),
                       util::FormatDouble(h->sum() / 1000.0, 2));
  }
  if (any) os << table.ToString();
}

}  // namespace hodor::bench
