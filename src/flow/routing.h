// Routing plans and the routing algorithms the SDN controller uses.
//
// A RoutingPlan maps each (ingress, egress) pair to a set of weighted
// paths; weights per pair sum to 1. Three algorithms are provided:
//   - shortest-path (all traffic on the single SPF path),
//   - ECMP (equal split over all equal-cost shortest paths),
//   - greedy TE (k-shortest candidate paths, iterative placement that
//     minimises maximum link utilisation — a stand-in for a production
//     TE optimiser, sufficient to show congestion when inputs are wrong).
#pragma once

#include <unordered_map>
#include <vector>

#include "flow/demand_matrix.h"
#include "net/graph_algorithms.h"
#include "net/topology.h"
#include "util/status.h"

namespace hodor::flow {

struct WeightedPath {
  net::Path path;
  double weight = 1.0;  // fraction of the pair's demand on this path
};

// Hashable ordered node pair.
struct NodePair {
  net::NodeId src;
  net::NodeId dst;
  friend bool operator==(const NodePair& a, const NodePair& b) {
    return a.src == b.src && a.dst == b.dst;
  }
};

struct NodePairHash {
  std::size_t operator()(const NodePair& p) const noexcept {
    return std::hash<net::NodeId>()(p.src) * 1000003u ^
           std::hash<net::NodeId>()(p.dst);
  }
};

class RoutingPlan {
 public:
  // Replaces the path set for a pair. Weights must be positive and sum to
  // ~1; each path must run src->dst.
  void SetPaths(net::NodeId src, net::NodeId dst,
                std::vector<WeightedPath> paths);

  // Paths for a pair; empty when the pair is unrouted.
  const std::vector<WeightedPath>& PathsFor(net::NodeId src,
                                            net::NodeId dst) const;

  bool HasRoute(net::NodeId src, net::NodeId dst) const;
  std::size_t pair_count() const { return paths_.size(); }

  // Every directed link used by any path in the plan.
  std::vector<net::LinkId> UsedLinks() const;

 private:
  std::unordered_map<NodePair, std::vector<WeightedPath>, NodePairHash> paths_;
  static const std::vector<WeightedPath> kEmpty;
};

struct TeOptions {
  // Candidate paths per pair for the greedy TE algorithm.
  std::size_t k_paths = 4;
  // Number of demand chunks each pair is split into during placement;
  // more chunks → finer splits and better balance.
  std::size_t chunks_per_pair = 10;
};

// All demand on the single shortest path. Pairs with no path under
// `filter` are left unrouted (their traffic will be dropped at ingress).
RoutingPlan ShortestPathRouting(const net::Topology& topo,
                                const DemandMatrix& demand,
                                const net::LinkFilter& filter);

// Equal split across all minimum-metric paths (up to k_max ties).
RoutingPlan EcmpRouting(const net::Topology& topo, const DemandMatrix& demand,
                        const net::LinkFilter& filter,
                        std::size_t k_max = 8);

// Greedy min-max-utilisation TE over k-shortest candidate paths.
// This is the algorithm the simulated SDN controller runs on its inputs.
RoutingPlan GreedyTeRouting(const net::Topology& topo,
                            const DemandMatrix& demand,
                            const net::LinkFilter& filter,
                            const TeOptions& opts = {});

}  // namespace hodor::flow
