#include "controlplane/trace.h"

#include <gtest/gtest.h>

#include "net/topologies.h"

namespace hodor::controlplane {
namespace {

EpochResult MakeResult(std::uint64_t epoch, double satisfaction,
                       bool validated, bool accept, bool fallback) {
  static const net::Topology topo = net::Line(2);
  EpochResult r{epoch,
                MakeEmptyInput(topo),
                validated,
                ValidationDecision{accept, ""},
                fallback,
                flow::NetworkMetrics{},
                flow::SimulationResult{},
                telemetry::NetworkSnapshot(topo, epoch)};
  r.metrics.demand_satisfaction = satisfaction;
  return r;
}

TEST(EpochTrace, EmptyTraceSummarizesCleanly) {
  EpochTrace trace;
  const auto report = trace.Summarize();
  EXPECT_EQ(report.epochs, 0u);
  EXPECT_DOUBLE_EQ(report.availability, 1.0);
}

TEST(EpochTrace, AllHealthyIsFullyAvailable) {
  EpochTrace trace;
  for (int e = 0; e < 10; ++e) {
    trace.Record(MakeResult(e, 1.0, true, true, false), false);
  }
  const auto report = trace.Summarize(0.999);
  EXPECT_EQ(report.epochs, 10u);
  EXPECT_DOUBLE_EQ(report.availability, 1.0);
  EXPECT_EQ(report.slo_violations, 0u);
  EXPECT_EQ(report.outage_episodes, 0u);
  EXPECT_DOUBLE_EQ(report.mean_satisfaction, 1.0);
}

TEST(EpochTrace, CountsViolationsAndEpisodes) {
  EpochTrace trace;
  // Pattern: ok ok BAD BAD ok BAD ok ok  -> 3 violations, 2 episodes,
  // longest run 2.
  const double sats[] = {1.0, 1.0, 0.5, 0.6, 1.0, 0.7, 1.0, 1.0};
  for (int e = 0; e < 8; ++e) {
    trace.Record(MakeResult(e, sats[e], false, true, false), false);
  }
  const auto report = trace.Summarize(0.999);
  EXPECT_EQ(report.slo_violations, 3u);
  EXPECT_EQ(report.outage_episodes, 2u);
  EXPECT_EQ(report.longest_outage_epochs, 2u);
  EXPECT_NEAR(report.availability, 5.0 / 8.0, 1e-12);
  EXPECT_DOUBLE_EQ(report.worst_satisfaction, 0.5);
}

TEST(EpochTrace, DetectionCoverageSplitByFaultTruth) {
  EpochTrace trace;
  // Faulty epoch rejected; faulty epoch missed; clean epoch rejected;
  // clean epoch accepted.
  trace.Record(MakeResult(0, 1.0, true, false, true), true);
  trace.Record(MakeResult(1, 0.9, true, true, false), true);
  trace.Record(MakeResult(2, 1.0, true, false, true), false);
  trace.Record(MakeResult(3, 1.0, true, true, false), false);
  const auto report = trace.Summarize();
  EXPECT_EQ(report.faulty_epochs, 2u);
  EXPECT_EQ(report.faulty_epochs_rejected, 1u);
  EXPECT_EQ(report.clean_epochs_rejected, 1u);
}

TEST(EpochTrace, UnvalidatedEpochsNeverCountAsRejected) {
  EpochTrace trace;
  trace.Record(MakeResult(0, 1.0, false, false, false), true);
  const auto report = trace.Summarize();
  EXPECT_EQ(report.faulty_epochs_rejected, 0u);
}

TEST(EpochTrace, SloBoundaryIsExclusive) {
  EpochTrace trace;
  trace.Record(MakeResult(0, 0.999, false, true, false), false);
  trace.Record(MakeResult(1, 0.9989, false, true, false), false);
  const auto report = trace.Summarize(0.999);
  EXPECT_EQ(report.slo_violations, 1u);  // exactly-at-SLO passes
}

TEST(AvailabilityReport, ToStringMentionsKeyNumbers) {
  EpochTrace trace;
  trace.Record(MakeResult(0, 0.5, true, false, true), true);
  trace.Record(MakeResult(1, 1.0, true, true, false), false);
  const std::string s = trace.Summarize().ToString();
  EXPECT_NE(s.find("availability=50.00%"), std::string::npos);
  EXPECT_NE(s.find("1/1 faulty epochs rejected"), std::string::npos);
}

}  // namespace
}  // namespace hodor::controlplane
