#include "net/graph_algorithms.h"

#include <gtest/gtest.h>

#include "net/topologies.h"
#include "util/rng.h"

namespace hodor::net {
namespace {

TEST(ShortestPath, DirectBeatsDetour) {
  // Triangle with a heavy direct edge: A-B metric 5, A-C-B metric 1+1.
  Topology topo;
  const NodeId a = topo.AddNode("a");
  const NodeId b = topo.AddNode("b");
  const NodeId c = topo.AddNode("c");
  topo.AddBidirectionalLink(a, b, 10.0, 5.0);
  topo.AddBidirectionalLink(a, c, 10.0, 1.0);
  topo.AddBidirectionalLink(c, b, 10.0, 1.0);
  const Path p = ShortestPath(topo, a, b).value();
  EXPECT_EQ(p.size(), 2u);
  EXPECT_DOUBLE_EQ(PathMetric(topo, p), 2.0);
  EXPECT_EQ(PathSource(topo, p), a);
  EXPECT_EQ(PathDestination(topo, p), b);
}

TEST(ShortestPath, LineEndToEnd) {
  Topology topo = Line(5);
  const Path p =
      ShortestPath(topo, NodeId(0), NodeId(4)).value();
  EXPECT_EQ(p.size(), 4u);
  EXPECT_TRUE(IsValidSimplePath(topo, p));
}

TEST(ShortestPath, SelfPathRejected) {
  Topology topo = Line(3);
  EXPECT_FALSE(ShortestPath(topo, NodeId(0), NodeId(0)).ok());
}

TEST(ShortestPath, UnreachableReturnsNotFound) {
  Topology topo;
  topo.AddNode("a");
  topo.AddNode("b");
  auto r = ShortestPath(topo, NodeId(0), NodeId(1));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), util::StatusCode::kNotFound);
}

TEST(ShortestPath, FilterExcludesLinks) {
  Topology topo = Ring(4);
  // Block the clockwise first hop; path must go the other way (3 hops).
  const LinkId blocked = topo.FindLink(NodeId(0), NodeId(1)).value();
  const Path p = ShortestPath(topo, NodeId(0), NodeId(1),
                              [blocked](LinkId e) { return e != blocked; })
                     .value();
  EXPECT_EQ(p.size(), 3u);
}

TEST(ShortestPathMetrics, DistancesOnLine) {
  Topology topo = Line(4);
  const auto dist = ShortestPathMetrics(topo, NodeId(0));
  EXPECT_DOUBLE_EQ(dist[0], 0.0);
  EXPECT_DOUBLE_EQ(dist[1], 1.0);
  EXPECT_DOUBLE_EQ(dist[3], 3.0);
}

TEST(ShortestPathMetrics, UnreachableIsInfinity) {
  Topology topo;
  topo.AddNode("a");
  topo.AddNode("b");
  const auto dist = ShortestPathMetrics(topo, NodeId(0));
  EXPECT_TRUE(std::isinf(dist[1]));
}

TEST(IsValidSimplePath, RejectsBrokenAndLoopyPaths) {
  Topology topo = Ring(4);
  EXPECT_FALSE(IsValidSimplePath(topo, {}));
  // Disconnected pair of links.
  const LinkId l01 = topo.FindLink(NodeId(0), NodeId(1)).value();
  const LinkId l23 = topo.FindLink(NodeId(2), NodeId(3)).value();
  EXPECT_FALSE(IsValidSimplePath(topo, {l01, l23}));
  // Full loop back to start repeats node 0.
  const LinkId l12 = topo.FindLink(NodeId(1), NodeId(2)).value();
  const LinkId l30 = topo.FindLink(NodeId(3), NodeId(0)).value();
  EXPECT_FALSE(IsValidSimplePath(topo, {l01, l12, l23, l30}));
  // Proper sub-path is fine.
  EXPECT_TRUE(IsValidSimplePath(topo, {l01, l12, l23}));
}

TEST(KShortestPaths, FindsBothRingDirections) {
  Topology topo = Ring(4);
  const auto paths = KShortestPaths(topo, NodeId(0), NodeId(2), 4);
  // Ring4: 0->1->2 and 0->3->2, both metric 2; no other loopless paths.
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_DOUBLE_EQ(PathMetric(topo, paths[0]), 2.0);
  EXPECT_DOUBLE_EQ(PathMetric(topo, paths[1]), 2.0);
  EXPECT_NE(paths[0], paths[1]);
}

TEST(KShortestPaths, SortedByMetric) {
  Topology topo = FullMesh(5);
  const auto paths = KShortestPaths(topo, NodeId(0), NodeId(1), 6);
  ASSERT_GE(paths.size(), 3u);
  for (std::size_t i = 1; i < paths.size(); ++i) {
    EXPECT_LE(PathMetric(topo, paths[i - 1]),
              PathMetric(topo, paths[i]) + 1e-12);
  }
  for (const Path& p : paths) EXPECT_TRUE(IsValidSimplePath(topo, p));
}

TEST(KShortestPaths, KZeroAndUnreachable) {
  Topology topo = Line(3);
  EXPECT_TRUE(KShortestPaths(topo, NodeId(0), NodeId(2), 0).empty());
  Topology disc;
  disc.AddNode("a");
  disc.AddNode("b");
  EXPECT_TRUE(KShortestPaths(disc, NodeId(0), NodeId(1), 3).empty());
}

TEST(KShortestPaths, LineHasExactlyOnePath) {
  Topology topo = Line(4);
  const auto paths = KShortestPaths(topo, NodeId(0), NodeId(3), 5);
  EXPECT_EQ(paths.size(), 1u);
}

TEST(KShortestPaths, PathsAreDistinct) {
  Topology topo = FullMesh(6);
  const auto paths = KShortestPaths(topo, NodeId(0), NodeId(5), 10);
  for (std::size_t i = 0; i < paths.size(); ++i) {
    for (std::size_t j = i + 1; j < paths.size(); ++j) {
      EXPECT_NE(paths[i], paths[j]);
    }
  }
}

TEST(ReachableFrom, CountsComponent) {
  Topology topo = Line(4);
  EXPECT_EQ(ReachableFrom(topo, NodeId(0)).size(), 4u);
  // Cutting the middle splits reachability.
  const LinkId mid = topo.FindLink(NodeId(1), NodeId(2)).value();
  const LinkId mid_rev = topo.link(mid).reverse;
  auto filter = [mid, mid_rev](LinkId e) { return e != mid && e != mid_rev; };
  EXPECT_EQ(ReachableFrom(topo, NodeId(0), filter).size(), 2u);
}

TEST(IsStronglyConnected, DetectsPartition) {
  Topology topo = Ring(5);
  EXPECT_TRUE(IsStronglyConnected(topo));
  const LinkId e = topo.LinkIds()[0];
  const LinkId r = topo.link(e).reverse;
  // A ring stays connected after losing one physical link...
  EXPECT_TRUE(IsStronglyConnected(
      topo, [e, r](LinkId x) { return x != e && x != r; }));
  // ...but a line does not.
  Topology line = Line(3);
  const LinkId le = line.LinkIds()[0];
  const LinkId lr = line.link(le).reverse;
  EXPECT_FALSE(IsStronglyConnected(
      line, [le, lr](LinkId x) { return x != le && x != lr; }));
}

TEST(IncidenceMatrix, ColumnsSumToZero) {
  Topology topo = Ring(5);
  const util::Matrix m = IncidenceMatrix(topo);
  EXPECT_EQ(m.rows(), topo.node_count());
  EXPECT_EQ(m.cols(), topo.link_count());
  for (std::size_t c = 0; c < m.cols(); ++c) {
    double sum = 0.0;
    for (std::size_t r = 0; r < m.rows(); ++r) sum += m.At(r, c);
    EXPECT_DOUBLE_EQ(sum, 0.0);  // each link leaves one node, enters one
  }
}

TEST(IncidenceMatrix, RankIsNodesMinusOneOnConnected) {
  // The paper's §4.1 claim: rank(M) = |V|−1 bounds repairable unknowns.
  for (auto topo : {Ring(6), Line(5), FullMesh(4), Abilene()}) {
    const util::Matrix m = IncidenceMatrix(topo);
    EXPECT_EQ(m.Rank(), topo.node_count() - 1) << topo.name();
  }
}

TEST(IncidenceMatrix, RankDropsPerComponent) {
  // Two disconnected edges: rank = |V| - #components = 4 - 2.
  Topology topo;
  const NodeId a = topo.AddNode("a");
  const NodeId b = topo.AddNode("b");
  const NodeId c = topo.AddNode("c");
  const NodeId d = topo.AddNode("d");
  topo.AddBidirectionalLink(a, b, 1.0);
  topo.AddBidirectionalLink(c, d, 1.0);
  EXPECT_EQ(IncidenceMatrix(topo).Rank(), 2u);
}

TEST(KShortestPaths, RandomTopologyPropertySweep) {
  // Property: on random connected graphs, every returned path is simple,
  // sorted by metric, and starts/ends correctly.
  util::Rng rng(4242);
  for (int trial = 0; trial < 10; ++trial) {
    Topology topo = ErdosRenyi(12, 0.25, rng);
    const NodeId src(0), dst(11);
    const auto paths = KShortestPaths(topo, src, dst, 5);
    ASSERT_FALSE(paths.empty());
    for (std::size_t i = 0; i < paths.size(); ++i) {
      EXPECT_TRUE(IsValidSimplePath(topo, paths[i]));
      EXPECT_EQ(PathSource(topo, paths[i]), src);
      EXPECT_EQ(PathDestination(topo, paths[i]), dst);
      if (i > 0) {
        EXPECT_LE(PathMetric(topo, paths[i - 1]),
                  PathMetric(topo, paths[i]) + 1e-12);
      }
    }
  }
}

}  // namespace
}  // namespace hodor::net
