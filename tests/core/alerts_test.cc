#include "core/alerts.h"

#include <gtest/gtest.h>

#include "faults/aggregation_faults.h"
#include "faults/snapshot_faults.h"
#include "test_util.h"

namespace hodor::core {
namespace {

using net::LinkId;
using net::NodeId;

struct AlertsFixture : ::testing::Test {
  AlertsFixture()
      : net(testing::MakeAbilene()),
        catalog(net.topo),
        validator(net.topo) {}

  ValidationReport Validate(
      const telemetry::SnapshotMutator& fault = nullptr,
      const controlplane::AggregationFaultHooks& hooks = {}) {
    telemetry::CollectorOptions copts;
    copts.probes.false_loss_rate = 0.0;
    const auto snap = net.Snapshot(1, fault, copts);
    return validator.Validate(net.Input(snap, 2, hooks), snap);
  }

  testing::HealthyNetwork net;
  telemetry::SignalCatalog catalog;
  Validator validator;
};

TEST_F(AlertsFixture, HealthyReportYieldsNoAlerts) {
  const auto alerts = BuildAlerts(net.topo, catalog, Validate());
  EXPECT_TRUE(alerts.empty());
}

TEST_F(AlertsFixture, RepairedCounterYieldsInfoWithPaths) {
  LinkId victim = LinkId::Invalid();
  for (LinkId e : net.topo.LinkIds()) {
    if (net.sim.carried[e.value()] > 5.0) {
      victim = e;
      break;
    }
  }
  ASSERT_TRUE(victim.valid());
  const auto report = Validate(faults::CorruptLinkCounter(
      victim, faults::CounterSide::kTx, faults::CounterCorruption::kScale,
      1.5));
  const auto alerts = BuildAlerts(net.topo, catalog, report);
  ASSERT_FALSE(alerts.empty());
  bool found = false;
  for (const Alert& a : alerts) {
    if (a.source == "hardening" && a.entity == net.topo.LinkName(victim)) {
      found = true;
      EXPECT_EQ(a.severity, AlertSeverity::kInfo);
      EXPECT_EQ(a.signal_paths.size(), 2u);  // TX and RX paths
      EXPECT_NE(a.message.find("rejected reading"), std::string::npos);
      EXPECT_NE(a.Render().find("[INFO] hardening"), std::string::npos);
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(AlertsFixture, RepairsCanBeSuppressed) {
  LinkId victim = net.topo.LinkIds()[2];
  const auto report = Validate(faults::CorruptLinkCounter(
      victim, faults::CounterSide::kTx, faults::CounterCorruption::kScale,
      2.0));
  AlertOptions opts;
  opts.report_repairs = false;
  const auto alerts = BuildAlerts(net.topo, catalog, report, opts);
  for (const Alert& a : alerts) {
    EXPECT_NE(a.severity, AlertSeverity::kInfo);
  }
}

TEST_F(AlertsFixture, DemandViolationIsCriticalWithExternalPaths) {
  controlplane::AggregationFaultHooks hooks;
  const NodeId victim = net.topo.ExternalNodes()[0];
  hooks.demand = faults::DemandRowsDropped(net.topo, {victim});
  const auto report = Validate(nullptr, hooks);
  const auto alerts = BuildAlerts(net.topo, catalog, report);
  bool found = false;
  for (const Alert& a : alerts) {
    if (a.source == "demand-check" &&
        a.entity == net.topo.node(victim).name) {
      found = true;
      EXPECT_EQ(a.severity, AlertSeverity::kCritical);
      ASSERT_EQ(a.signal_paths.size(), 1u);
      EXPECT_NE(a.signal_paths[0].find("in-octets"), std::string::npos);
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(AlertsFixture, SortedBySeverityDescending) {
  // Mix: a repaired counter (info) + a demand violation (critical).
  controlplane::AggregationFaultHooks hooks;
  hooks.demand = faults::DemandScaled(2.0);
  LinkId victim = net.topo.LinkIds()[2];
  const auto report = Validate(
      faults::CorruptLinkCounter(victim, faults::CounterSide::kTx,
                                 faults::CounterCorruption::kScale, 2.0),
      hooks);
  const auto alerts = BuildAlerts(net.topo, catalog, report);
  ASSERT_GE(alerts.size(), 2u);
  for (std::size_t i = 1; i < alerts.size(); ++i) {
    EXPECT_GE(static_cast<int>(alerts[i - 1].severity),
              static_cast<int>(alerts[i].severity));
  }
  EXPECT_EQ(alerts.front().severity, AlertSeverity::kCritical);
}

TEST_F(AlertsFixture, DrainWarningIsWarningSeverity) {
  const NodeId victim = net.topo.NodeIds()[1];
  const auto report = Validate(faults::WrongDrainSignal(victim, true));
  const auto alerts = BuildAlerts(net.topo, catalog, report);
  bool found = false;
  for (const Alert& a : alerts) {
    if (a.source == "drain-check") {
      found = true;
      EXPECT_EQ(a.severity, AlertSeverity::kWarning);
      EXPECT_NE(a.message.find("case 2"), std::string::npos);
    }
  }
  EXPECT_TRUE(found);
}

TEST(AlertSeverityName, AllNamed) {
  EXPECT_STREQ(AlertSeverityName(AlertSeverity::kInfo), "INFO");
  EXPECT_STREQ(AlertSeverityName(AlertSeverity::kWarning), "WARNING");
  EXPECT_STREQ(AlertSeverityName(AlertSeverity::kCritical), "CRITICAL");
}

}  // namespace
}  // namespace hodor::core
