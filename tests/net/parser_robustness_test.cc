// Robustness of the topology parser: random garbage and adversarial edge
// cases must produce error Statuses, never crashes or invalid topologies.
#include <gtest/gtest.h>

#include "net/serialization.h"
#include "util/rng.h"

namespace hodor::net {
namespace {

TEST(ParserRobustness, RandomGarbageNeverCrashes) {
  util::Rng rng(12345);
  const std::string alphabet =
      "abcdefgh 0123456789\n\t#.-<>[]{}()!@$%^&*topologynodelinkext metric";
  for (int trial = 0; trial < 500; ++trial) {
    std::string input;
    const std::size_t len = rng.Index(200);
    for (std::size_t i = 0; i < len; ++i) {
      input += alphabet[rng.Index(alphabet.size())];
    }
    const auto result = ParseTopology(input);  // must not throw
    if (result.ok()) {
      // Whatever parsed must be structurally valid.
      EXPECT_TRUE(result.value().Validate().ok());
    }
  }
}

TEST(ParserRobustness, MutatedValidInputNeverCrashes) {
  const std::string valid = WriteTopology(
      []() {
        Topology t("mut");
        const NodeId a = t.AddNode("alpha");
        const NodeId b = t.AddNode("beta");
        const NodeId c = t.AddNode("gamma");
        t.AddExternalPort(a, 100);
        t.AddExternalPort(b, 100);
        t.AddBidirectionalLink(a, b, 10, 2);
        t.AddBidirectionalLink(b, c, 20);
        return t;
      }());
  util::Rng rng(999);
  for (int trial = 0; trial < 500; ++trial) {
    std::string mutated = valid;
    // Apply 1-4 random single-character mutations.
    const int edits = 1 + static_cast<int>(rng.Index(4));
    for (int e = 0; e < edits; ++e) {
      const std::size_t pos = rng.Index(mutated.size());
      switch (rng.Index(3)) {
        case 0: mutated[pos] = static_cast<char>('!' + rng.Index(90)); break;
        case 1: mutated.erase(pos, 1); break;
        default: mutated.insert(pos, 1, ' '); break;
      }
    }
    const auto result = ParseTopology(mutated);
    if (result.ok()) {
      EXPECT_TRUE(result.value().Validate().ok());
    } else {
      EXPECT_FALSE(result.status().message().empty());
    }
  }
}

TEST(ParserRobustness, HugeNumbersHandled) {
  EXPECT_TRUE(ParseTopology("node a ext 1e300\n").ok());
  // Overflows to inf — accepted as "positive"; structural validity holds.
  const auto r = ParseTopology("node a\nnode b\nlink a b 1e400\n");
  if (r.ok()) {
    EXPECT_TRUE(r.value().Validate().ok());
  }
}

TEST(ParserRobustness, DeepButValidInputScales) {
  std::string big;
  big.reserve(1 << 16);
  for (int i = 0; i < 300; ++i) {
    big += "node n" + std::to_string(i) + " ext 100\n";
  }
  for (int i = 1; i < 300; ++i) {
    big += "link n0 n" + std::to_string(i) + " 10\n";
  }
  const auto r = ParseTopology(big);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().node_count(), 300u);
  EXPECT_EQ(r.value().physical_link_count(), 299u);
}

}  // namespace
}  // namespace hodor::net
