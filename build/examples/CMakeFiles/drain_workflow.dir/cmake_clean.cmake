file(REMOVE_RECURSE
  "CMakeFiles/drain_workflow.dir/drain_workflow.cpp.o"
  "CMakeFiles/drain_workflow.dir/drain_workflow.cpp.o.d"
  "drain_workflow"
  "drain_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drain_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
