// Drain workflow: operating the §4.3 reason-annotated drain protocol.
//
// Walks a maintenance workflow on the GÉANT-like WAN:
//   1. an operator drains a router for maintenance (node drain = all its
//      links, announced symmetrically with reasons) — validates cleanly
//      even though the router still carries zero faults;
//   2. automation drains a link claiming a faulty neighbor — Hodor checks
//      the supposedly affected connection and refutes it (the link is
//      demonstrably healthy);
//   3. a buggy drain rollup announces a drain from only one end — the
//      protocol's symmetry requirement flags it;
//   4. alerts are rendered the way a management system would receive them.
//
//   ./build/examples/drain_workflow
#include <iostream>

#include "core/alerts.h"
#include "core/drain_protocol.h"
#include "core/hardening.h"
#include "flow/simulator.h"
#include "flow/tm_generators.h"
#include "net/topologies.h"
#include "telemetry/collector.h"
#include "telemetry/signal_catalog.h"

int main() {
  using namespace hodor;

  const net::Topology topo = net::GeantLike();
  const net::GroundTruthState state(topo);
  util::Rng rng(31);
  flow::DemandMatrix demand = flow::GravityDemand(topo, rng);
  flow::NormalizeToMaxUtilization(topo, 0.5, demand);
  const auto plan = flow::ShortestPathRouting(topo, demand, net::AllLinks());
  const auto sim = flow::SimulateFlow(topo, state, demand, plan);
  telemetry::CollectorOptions copts;
  copts.probes.false_loss_rate = 0.0;
  telemetry::Collector collector(topo, copts);
  const auto snapshot = collector.Collect(state, sim, 0, rng);
  const core::HardenedState hardened =
      core::HardeningEngine().Harden(snapshot);

  core::DrainLedger ledger(topo);

  // 1. Planned maintenance on the 'de' router.
  const net::NodeId de = topo.FindNode("de").value();
  ledger.AnnounceNodeDrain(de);
  std::cout << "step 1: node drain of 'de' announced on "
            << topo.OutLinks(de).size() << " links (both ends)\n";

  // 2. Automation claims the fr<->uk link's neighbor is faulty.
  const net::LinkId fr_uk = topo.FindLink(topo.FindNode("fr").value(),
                                          topo.FindNode("uk").value())
                                .value();
  ledger.AnnounceBoth(fr_uk, core::DrainReason::kFaultyNeighbor);
  std::cout << "step 2: automation drains fr<->uk claiming a faulty "
               "neighbor\n";

  // 3. A one-sided announcement from a buggy rollup on at->ch.
  const net::LinkId at_ch = topo.FindLink(topo.FindNode("at").value(),
                                          topo.FindNode("ch").value())
                                .value();
  ledger.Announce(at_ch, core::DrainReason::kMaintenance);
  std::cout << "step 3: buggy rollup announces at->ch drain from one end "
               "only\n\n";

  const core::DrainProtocolResult result =
      core::ValidateDrainLedger(topo, ledger, hardened);
  std::cout << "validated " << result.validated_announcements
            << " drained links; " << result.violations.size()
            << " violations:\n";
  for (const auto& v : result.violations) {
    std::cout << "  - " << v.ToString(topo) << "\n";
  }

  // 4. The same findings as routed alerts (drain-protocol violations are
  //    folded into a validation report's drain section here by hand, to
  //    show the rendering path).
  const telemetry::SignalCatalog catalog(topo);
  core::ValidationReport report;
  report.hardened = hardened;
  for (const auto& v : result.violations) {
    report.drain.violations.push_back(core::DrainViolation{
        net::NodeId::Invalid(), v.link,
        v.kind == core::DrainProtocolViolationKind::kAsymmetricAnnouncement
            ? core::DrainViolationKind::kDrainAsymmetry
            : core::DrainViolationKind::kInputInventsDrain});
  }
  std::cout << "\nas alerts:\n";
  for (const core::Alert& a :
       core::BuildAlerts(topo, catalog, report)) {
    std::cout << "  " << a.Render() << "\n";
  }
  std::cout << "\nThe maintenance drain of 'de' produced no findings: with "
               "reasons attached, planned drains are distinguishable from "
               "the erroneous ones (§4.3's proposal, working).\n";
  return result.violations.size() == 2 ? 0 : 1;
}
