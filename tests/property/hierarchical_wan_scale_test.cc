// Slow tier: the 10k-node hierarchical WAN preset generates, validates,
// and stays connected — the fleet-scale ceiling the generator advertises.
#include <gtest/gtest.h>

#include "net/graph_algorithms.h"
#include "net/hierarchical_wan.h"
#include "util/rng.h"
#include "util/strings.h"

namespace hodor::net {
namespace {

TEST(HierarchicalWanScale, TenThousandNodesConnectedAndDeterministic) {
  util::Rng rng(42);
  const Topology topo = HierarchicalWan(HierarchicalWanPreset(10000), rng);
  ASSERT_EQ(topo.node_count(), 10000u);
  EXPECT_TRUE(topo.Validate().ok());
  EXPECT_TRUE(IsStronglyConnected(topo));

  // External ports live only at the edge tier: 16 cores x 8 aggs x 77.
  EXPECT_EQ(topo.ExternalNodes().size(), 16u * 8u * 77u);

  // Regenerating with the same seed is bit-identical even at this size.
  util::Rng rng_again(42);
  const Topology again =
      HierarchicalWan(HierarchicalWanPreset(10000), rng_again);
  EXPECT_EQ(StructuralDigest(topo), StructuralDigest(again));
}

}  // namespace
}  // namespace hodor::net
