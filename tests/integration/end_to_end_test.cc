// End-to-end: healthy network → honest inputs accepted; corrupted inputs
// rejected; pipeline fallback averts the outage.
#include <gtest/gtest.h>

#include "core/validator.h"
#include "faults/aggregation_faults.h"
#include "faults/scenario_catalog.h"
#include "obs/json.h"
#include "obs/provenance.h"
#include "test_util.h"

namespace hodor {
namespace {

TEST(EndToEnd, HealthyInputsAreAccepted) {
  testing::HealthyNetwork net = testing::MakeAbilene();
  const auto snapshot = net.Snapshot();
  const auto input = net.Input(snapshot);

  core::Validator validator(net.topo);
  const auto report = validator.Validate(input, snapshot);
  EXPECT_TRUE(report.ok()) << report.Describe(net.topo);
  EXPECT_EQ(report.hardened.flagged_rate_count, 0u);
}

TEST(EndToEnd, PartialDemandIsRejected) {
  testing::HealthyNetwork net = testing::MakeAbilene();
  const auto snapshot = net.Snapshot();

  controlplane::AggregationFaultHooks hooks;
  const net::NodeId victim = net.topo.NodeIds()[0];
  hooks.demand = faults::DemandRowsDropped(net.topo, {victim});
  const auto input = net.Input(snapshot, /*seed=*/2, hooks);

  core::Validator validator(net.topo);
  const auto report = validator.Validate(input, snapshot);
  EXPECT_FALSE(report.demand.ok());

  // The decision provenance names the invariant that fired, with the
  // residual that breached the effective threshold. The recorded threshold
  // is τ_eff = τ_e·(1 + α·(1 − c)): at least τ_e, and only slightly wider
  // here since honest telemetry keeps scalar confidence near 1.
  const obs::DecisionRecord& prov = report.provenance;
  EXPECT_FALSE(prov.accept);
  EXPECT_GT(prov.failed_count(), 0u);
  const obs::InvariantRecord* first = prov.FirstFailure();
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->check, "demand");
  EXPECT_GE(first->threshold, 0.02);
  EXPECT_LT(first->threshold, 0.04);
  EXPECT_GT(first->residual, first->threshold);
  EXPECT_TRUE(obs::IsValidJson(prov.ToJson()));
}

TEST(EndToEnd, PipelineFallbackAvertsDemandOutage) {
  net::Topology topo = net::Abilene();
  net::GroundTruthState state(topo);
  util::Rng rng(11);
  flow::DemandMatrix demand = flow::GravityDemand(topo, rng);
  flow::NormalizeToMaxUtilization(topo, 0.6, demand);

  controlplane::PipelineOptions opts;
  controlplane::Pipeline pipeline(topo, opts, util::Rng(12));
  pipeline.Bootstrap(state, demand);
  core::Validator validator(topo);
  pipeline.SetValidator(validator.AsPipelineValidator());

  // Healthy epoch: accepted.
  auto healthy = pipeline.RunEpoch(state, demand);
  ASSERT_TRUE(healthy.decision.accept) << healthy.decision.reason;

  // Corrupted epoch: demand for the two busiest sources vanishes.
  controlplane::AggregationFaultHooks hooks;
  hooks.demand = faults::DemandRowsDropped(
      topo, {topo.NodeIds()[0], topo.NodeIds()[1]});
  auto bad = pipeline.RunEpoch(state, demand, nullptr, hooks);
  EXPECT_FALSE(bad.decision.accept);
  EXPECT_TRUE(bad.used_fallback);
  // Fallback reused the last good input, so the outcome stays healthy.
  EXPECT_GT(bad.metrics.demand_satisfaction, 0.999);
}

TEST(EndToEnd, ScenarioCatalogBuildsForAbilene) {
  net::Topology topo = net::Abilene();
  faults::ScenarioCatalog catalog(topo);
  EXPECT_GE(catalog.scenarios().size(), 12u);
  EXPECT_TRUE(catalog.Find("partial-demand").ok());
  EXPECT_FALSE(catalog.Find("nonexistent").ok());
}

}  // namespace
}  // namespace hodor
