file(REMOVE_RECURSE
  "CMakeFiles/bench_hardening.dir/bench_hardening.cc.o"
  "CMakeFiles/bench_hardening.dir/bench_hardening.cc.o.d"
  "bench_hardening"
  "bench_hardening.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hardening.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
