file(REMOVE_RECURSE
  "CMakeFiles/integration_scenario_detection_test.dir/integration/scenario_detection_test.cc.o"
  "CMakeFiles/integration_scenario_detection_test.dir/integration/scenario_detection_test.cc.o.d"
  "integration_scenario_detection_test"
  "integration_scenario_detection_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_scenario_detection_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
