// Embedded telemetry HTTP server: the always-on serving surface that turns
// the obs layer's in-process state into something an operator (or a
// Prometheus scraper) can query while the pipeline runs.
//
// Endpoints (all GET, Connection: close):
//   /              tiny JSON index of the endpoints below
//   /metrics       Prometheus text exposition of the published registry
//   /metrics.json  the same registry as one JSON object
//   /healthz       liveness + serving statistics
//   /decisions     recent DecisionRecord provenance, newest first
//                  (?last=N trims to the N most recent)
//   /trace         recent per-epoch execution breakdowns (critical path,
//                  per-stage self/wait, sink health), newest first
//                  (?last=N trims to the N most recent)
//   /health/signals  the SignalHealthBoard trust scoreboard
//   /alerts        the AlertEngine lifecycle state (published upstream)
//   /query         retained time series (?series=<glob>&last=N&res=raw|10|100)
//   /slo           detection-latency / false-positive budget scorecard
//   /fleet         fleet scoreboard (per-instance rates, trust, laggards)
//   /buildz        build + host identity (git describe, uptime, threads)
//   /dashboard     embedded single-file HTML dashboard (no external assets)
//
// Endpoints live in one route table that drives both dispatch and the "/"
// index, so adding a route automatically lists it on the index page.
//
// Every response carries Cache-Control: no-store — each endpoint reports
// live state, and a cached scrape is worse than a slow one.
//
// Threading model. The rest of the obs layer is deliberately
// single-threaded (see obs/metrics.h), so the server never touches a live
// MetricsRegistry or SignalHealthBoard from its serving thread. Instead
// the owner — the thread running the pipeline — *publishes* snapshots
// after each epoch (PublishMetrics / PublishSignals / PublishDecision /
// PublishAlerts); each call renders outside the lock and atomically swaps
// the served string. The serving thread only ever reads those strings
// under the same mutex. Scrapes are therefore epoch-consistent: an
// operator never sees a half-updated registry.
//
// Dependency-free by design: plain POSIX sockets, one blocking accept
// loop, HTTP/1.1 with Connection: close. This is an exporter, not a web
// framework.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/serve/http.h"

namespace hodor::obs {

class MetricsRegistry;
class SignalHealthBoard;
class TimeSeriesStore;
struct DecisionRecord;

struct TelemetryServerOptions {
  // 0 → kernel-assigned ephemeral port (read it back via port()).
  std::uint16_t port = 0;
  // Loopback by default: this is an operator surface, not a public one.
  std::string bind_address = "127.0.0.1";
  // Ring of recent decisions held for GET /decisions.
  std::size_t max_decisions = 64;
  // Ring of recent per-epoch execution breakdowns held for GET /trace.
  std::size_t max_trace_epochs = 64;
  // Per-connection receive timeout; a stalled client cannot wedge the
  // single serving thread for longer than this.
  int request_timeout_ms = 2000;
};

class TelemetryServer {
 public:
  explicit TelemetryServer(TelemetryServerOptions opts = {});
  ~TelemetryServer();

  TelemetryServer(const TelemetryServer&) = delete;
  TelemetryServer& operator=(const TelemetryServer&) = delete;

  // Binds, listens, and starts the serving thread. False when the socket
  // cannot be set up (port busy, no loopback); safe to call once.
  bool Start();
  // Stops the serving thread and closes the socket. Idempotent; also run
  // by the destructor.
  void Stop();

  bool running() const { return running_; }
  // The bound port (resolves option port 0); 0 before Start().
  std::uint16_t port() const { return port_; }
  // "http://127.0.0.1:8080" — for log lines and examples.
  std::string url() const;

  // --- publication (owner thread) ----------------------------------------
  // Renders the registry (nullptr → the process-global one) and swaps it
  // into /metrics and /metrics.json.
  void PublishMetrics(const MetricsRegistry* registry = nullptr);
  // Swaps the scoreboard snapshot into /health/signals.
  void PublishSignals(const SignalHealthBoard& board);
  // Appends one epoch's provenance to the /decisions ring.
  void PublishDecision(const DecisionRecord& record);
  // Swaps a pre-rendered JSON value (the AlertEngine's ToJson(); rendered
  // upstream because core/ sits above obs/) into /alerts.
  void PublishAlerts(std::string alerts_json);
  // Appends one epoch's execution breakdown (an EpochBreakdown::ToJson()
  // value, rendered by the owner thread) to the /trace ring.
  void PublishTrace(std::uint64_t epoch, std::string breakdown_json);
  // Swaps a pre-rendered SLO scorecard (DetectionLatencyTracker::SloJson())
  // into /slo.
  void PublishSlo(std::string slo_json);
  // Swaps a pre-rendered fleet scoreboard (fleet::FleetManager's
  // ScoreboardJson()) into /fleet.
  void PublishFleet(std::string fleet_json);
  // Hands /query the time-series store. The store is internally
  // synchronized (see obs/timeseries.h), so the owner keeps sampling the
  // same instance; only the pointer swap happens under the server lock.
  // Republishing the same pointer every epoch is free.
  void PublishTimeSeries(std::shared_ptr<const TimeSeriesStore> store);

  std::uint64_t requests_served() const;

  // Routing, exposed for tests: maps one parsed request to a full HTTP
  // response using the currently published snapshots.
  std::string HandleRequest(const HttpRequest& request);

 private:
  // One routed endpoint: the path plus the member handler that renders the
  // full HTTP response. HandleRequest dispatches over this table and
  // RenderIndex enumerates it, so registering a route here is the single
  // step needed for it to both serve and appear on "/".
  struct Route {
    const char* path;
    std::string (TelemetryServer::*handler)(const HttpRequest&);
  };
  static const std::vector<Route>& Routes();

  void Serve();
  void HandleConnection(int client_fd);
  std::string HandleMetrics(const HttpRequest& request);
  std::string HandleMetricsJson(const HttpRequest& request);
  std::string RenderHealthz(const HttpRequest& request);
  std::string RenderDecisions(const HttpRequest& request);
  std::string RenderTrace(const HttpRequest& request);
  std::string HandleSignals(const HttpRequest& request);
  std::string HandleAlerts(const HttpRequest& request);
  std::string RenderQuery(const HttpRequest& request);
  std::string HandleSlo(const HttpRequest& request);
  std::string HandleFleet(const HttpRequest& request);
  std::string RenderBuildz(const HttpRequest& request);
  std::string HandleDashboard(const HttpRequest& request);
  std::string RenderIndex(const HttpRequest& request);

  TelemetryServerOptions opts_;
  std::uint16_t port_ = 0;
  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};  // Stop() wakes the poll loop through this
  bool running_ = false;
  std::thread thread_;

  mutable std::mutex mu_;
  std::string metrics_text_;   // Prometheus exposition
  std::string metrics_json_;
  std::string signals_json_ = "{\"epochs\":0,\"sources\":[]}";
  std::string alerts_json_ = "{\"active\":[],\"resolved\":[]}";
  // Schema-complete empty scorecard so /slo (and the dashboard) work
  // before the first publication.
  std::string slo_json_ =
      "{\"detection_latency\":{\"samples\":0,\"p50\":null,\"p99\":null,"
      "\"p50_target\":1,\"p99_target\":5,\"p50_ok\":true,\"p99_ok\":true},"
      "\"false_positives\":{\"flag_epochs\":0,\"clean_epochs\":0,\"rate\":0,"
      "\"budget\":0.01,\"ok\":true},\"ok\":true,\"fault_epochs\":0,"
      "\"fault_classes\":[]}";
  // Schema-complete empty scoreboard so /fleet probes work before (or
  // without) a fleet publishing.
  std::string fleet_json_ =
      "{\"summary\":{\"instances\":0,\"threads\":0,\"rounds\":0,"
      "\"epochs_total\":0,\"aggregate_epochs_per_sec\":0},\"instances\":[]}";
  std::shared_ptr<const TimeSeriesStore> timeseries_;
  std::chrono::steady_clock::time_point start_time_{};
  std::deque<std::string> decisions_;  // newest at the front
  std::deque<std::string> traces_;     // newest at the front
  std::uint64_t last_published_epoch_ = 0;
  std::uint64_t published_epochs_ = 0;
  std::uint64_t requests_served_ = 0;
};

}  // namespace hodor::obs
