// Decision provenance: the operator-facing audit record behind every
// accept/reject.
//
// CrossCheck (PAPERS.md) argues a deployable validator must *explain* its
// verdicts: which invariant fired, with what residual, against what
// threshold. A DecisionRecord captures exactly that for one validated
// epoch — one InvariantRecord per invariant evaluated (the R1–R4 hardening
// repairs, the 2·|V| demand conservation invariants, per-link topology
// comparisons, and drain consistency checks) — and serializes to JSON for
// audit pipelines.
//
// This lives in obs/ (below core/ and controlplane/) so the pipeline can
// carry a DecisionRecord inside each EpochResult without depending on the
// validator that produced it.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace hodor::obs {

// FNV-1a 64-bit over a byte string: the digest primitive behind
// DecisionRecord::CanonicalDigest (and the flight recorder's recorded
// verdict fingerprints).
std::uint64_t Fnv1a64(std::string_view bytes);

enum class InvariantVerdict {
  kPass = 0,  // evaluated, within threshold
  kFail,      // evaluated, fired (residual beyond threshold)
  kSkipped,   // could not be evaluated (signal unknown / suppressed)
};

const char* InvariantVerdictName(InvariantVerdict verdict);

// One invariant evaluation. `residual` and `threshold` share a unit per
// check family (relative difference for demand, evidence confidence for
// topology, 0/1 mismatch indicators for drain).
struct InvariantRecord {
  std::string check;      // "hardening" | "demand" | "topology" | "drain"
  std::string invariant;  // e.g. "ingress(SEAT)", "link-state(A->B)"
  double residual = 0.0;
  double threshold = 0.0;
  InvariantVerdict verdict = InvariantVerdict::kPass;
  std::string detail;  // optional operator-facing elaboration
  // Repair provenance: which redundancy source justified the record
  // (core::RepairSourceName for hardening repairs, "r4-probes" for drain
  // liveness; empty when no repair was involved), and the confidence of
  // the input the verdict rests on, in [0,1]. Both are part of the
  // canonical digest text and the v2 flight-recorder verdict record.
  std::string source;
  double confidence = 0.0;

  std::string ToJson() const;
};

struct DecisionRecord {
  std::uint64_t epoch = 0;
  bool accept = true;
  std::string summary;  // e.g. the report's one-line verdict

  // A shared immutable run of invariant records. Incremental validation
  // (DESIGN §12) replays a check's cached verdict by splicing the cached
  // records into the epoch's DecisionRecord; with tens of thousands of
  // records per epoch at WAN scale, that splice must not copy. Blocks make
  // it an O(1) refcount bump: the validator's cache and every decision
  // that replayed from it share one frozen vector.
  using RecordBlock = std::shared_ptr<const std::vector<InvariantRecord>>;

  std::size_t evaluated_count() const;  // pass + fail
  std::size_t failed_count() const;
  std::size_t skipped_count() const;
  // First firing invariant, nullptr when everything passed. This is the
  // record an alert should lead with. The pointer is stable until the next
  // Add (which may grow the owned tail chunk).
  const InvariantRecord* FirstFailure() const;

  // Appends one record. The logical invariant sequence is the append order
  // of Add and AddBlock calls, exactly as a flat vector would hold it.
  void Add(InvariantRecord record);
  // Allocation hint: pre-sizes the owned tail for `n` upcoming Add calls
  // (opening a fresh owned chunk if the tail is frozen), so a caller that
  // knows its record count — e.g. a check emitting one line per entity —
  // skips the growth reallocations.
  void Reserve(std::size_t n);
  // Appends a shared immutable chunk in O(1). nullptr is a no-op.
  void AddBlock(RecordBlock block);
  // Moves the full logical sequence out as one flat vector (records from
  // shared blocks are copied — they stay frozen). Leaves this record with
  // no invariants.
  std::vector<InvariantRecord> TakeRecords();

 private:
  struct Chunk {
    std::vector<InvariantRecord> owned;  // used when `shared` is null
    RecordBlock shared;
    const std::vector<InvariantRecord>& records() const {
      return shared ? *shared : owned;
    }
  };
  std::vector<Chunk> chunks_;

 public:
  // Forward iteration over the logical record sequence, chunk by chunk.
  class const_iterator {
   public:
    using value_type = InvariantRecord;
    using reference = const InvariantRecord&;
    using pointer = const InvariantRecord*;
    using difference_type = std::ptrdiff_t;
    using iterator_category = std::forward_iterator_tag;

    reference operator*() const { return (*chunks_)[chunk_].records()[i_]; }
    pointer operator->() const { return &**this; }
    const_iterator& operator++() {
      ++i_;
      SkipEmpty();
      return *this;
    }
    const_iterator operator++(int) {
      const_iterator prev = *this;
      ++*this;
      return prev;
    }
    friend bool operator==(const const_iterator& a, const const_iterator& b) {
      return a.chunk_ == b.chunk_ && a.i_ == b.i_;
    }
    friend bool operator!=(const const_iterator& a, const const_iterator& b) {
      return !(a == b);
    }

   private:
    friend struct DecisionRecord;
    const_iterator(const std::vector<Chunk>* chunks, std::size_t chunk)
        : chunks_(chunks), chunk_(chunk) {
      SkipEmpty();
    }
    void SkipEmpty() {
      while (chunk_ < chunks_->size() &&
             i_ >= (*chunks_)[chunk_].records().size()) {
        ++chunk_;
        i_ = 0;
      }
    }
    const std::vector<Chunk>* chunks_;
    std::size_t chunk_ = 0;
    std::size_t i_ = 0;
  };

  // View of the logical record sequence, for range-for and counting:
  //   for (const obs::InvariantRecord& rec : record.Invariants()) ...
  class InvariantView {
   public:
    const_iterator begin() const { return {chunks_, 0}; }
    const_iterator end() const { return {chunks_, chunks_->size()}; }
    std::size_t size() const;
    bool empty() const;

   private:
    friend struct DecisionRecord;
    explicit InvariantView(const std::vector<Chunk>* chunks)
        : chunks_(chunks) {}
    const std::vector<Chunk>* chunks_;
  };

  InvariantView Invariants() const { return InvariantView(&chunks_); }

  // Schema (see README "Observability"):
  //   {"epoch":N,"accept":bool,"summary":"...","evaluated":N,"failed":N,
  //    "skipped":N,"invariants":[{"check":"demand","invariant":"...",
  //    "residual":x,"threshold":y,"verdict":"fail","detail":"...",
  //    "source":"r2-pairwise","confidence":c}]}
  std::string ToJson() const;

  // Canonical text: every field of every invariant, doubles rendered
  // round-trip exact (%.17g), one line per invariant. Two records have the
  // same canonical text iff they are bit-identical, which is what makes
  // the digest below usable as a replay-divergence fingerprint.
  void AppendCanonicalText(std::string& out) const;

  // Fnv1a64 over the canonical text. The flight recorder stores this per
  // epoch; replay recomputes it from fresh validation and any mismatch
  // pins the exact epoch whose decision changed.
  std::uint64_t CanonicalDigest() const;
};

}  // namespace hodor::obs
