file(REMOVE_RECURSE
  "CMakeFiles/bench_generalization.dir/bench_generalization.cc.o"
  "CMakeFiles/bench_generalization.dir/bench_generalization.cc.o.d"
  "bench_generalization"
  "bench_generalization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_generalization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
