#include "faults/snapshot_faults.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace hodor::faults {
namespace {

using net::LinkId;
using net::NodeId;
using telemetry::LinkStatus;

struct FaultFixture : ::testing::Test {
  FaultFixture() : net(testing::MakeAbilene()) {
    victim = net.topo.FindNode("IPLSng").value();
    link = net.topo.OutLinks(victim)[0];
  }

  testing::HealthyNetwork net;
  NodeId victim;
  LinkId link;
};

TEST_F(FaultFixture, ZeroedCountersZeroSomeSignals) {
  const auto snap = net.Snapshot(1, ZeroedCountersFault(victim, 1.0, 3));
  for (LinkId e : net.topo.OutLinks(victim)) {
    EXPECT_DOUBLE_EQ(snap.TxRate(e).value(), 0.0);
  }
  for (LinkId e : net.topo.InLinks(victim)) {
    EXPECT_DOUBLE_EQ(snap.RxRate(e).value(), 0.0);
  }
  EXPECT_DOUBLE_EQ(snap.ExtInRate(victim).value(), 0.0);
}

TEST_F(FaultFixture, ZeroedCountersProbabilityZeroIsNoOp) {
  const auto clean = net.Snapshot(1);
  const auto faulted = net.Snapshot(1, ZeroedCountersFault(victim, 0.0, 3));
  for (LinkId e : net.topo.OutLinks(victim)) {
    EXPECT_DOUBLE_EQ(faulted.TxRate(e).value(), clean.TxRate(e).value());
  }
}

TEST_F(FaultFixture, ZeroedCountersDeterministicPerSeed) {
  const auto a = net.Snapshot(1, ZeroedCountersFault(victim, 0.5, 3));
  const auto b = net.Snapshot(1, ZeroedCountersFault(victim, 0.5, 3));
  for (LinkId e : net.topo.OutLinks(victim)) {
    EXPECT_DOUBLE_EQ(a.TxRate(e).value(), b.TxRate(e).value());
  }
}

TEST_F(FaultFixture, CorruptLinkCounterVariants) {
  const auto zeroed =
      net.Snapshot(1, CorruptLinkCounter(link, CounterSide::kTx,
                                         CounterCorruption::kZero));
  EXPECT_DOUBLE_EQ(zeroed.TxRate(link).value(), 0.0);
  EXPECT_GT(zeroed.RxRate(link).value(), 0.0);  // RX untouched

  const auto scaled =
      net.Snapshot(1, CorruptLinkCounter(link, CounterSide::kRx,
                                         CounterCorruption::kScale, 2.0));
  const auto clean = net.Snapshot(1);
  EXPECT_NEAR(scaled.RxRate(link).value(), 2.0 * clean.RxRate(link).value(),
              1e-9);

  const auto absolute =
      net.Snapshot(1, CorruptLinkCounter(link, CounterSide::kBoth,
                                         CounterCorruption::kAbsolute, 7.5));
  EXPECT_DOUBLE_EQ(absolute.TxRate(link).value(), 7.5);
  EXPECT_DOUBLE_EQ(absolute.RxRate(link).value(), 7.5);

  const auto dropped =
      net.Snapshot(1, CorruptLinkCounter(link, CounterSide::kBoth,
                                         CounterCorruption::kDrop));
  EXPECT_FALSE(dropped.TxRate(link).has_value());
  EXPECT_FALSE(dropped.RxRate(link).has_value());
}

TEST_F(FaultFixture, UnresponsiveRouterClearsEverything) {
  const auto snap = net.Snapshot(1, UnresponsiveRouter(victim));
  EXPECT_FALSE(snap.Responded(victim));
  EXPECT_FALSE(snap.NodeDrained(victim).has_value());
  EXPECT_FALSE(snap.ExtInRate(victim).has_value());
  for (LinkId e : net.topo.OutLinks(victim)) {
    EXPECT_FALSE(snap.TxRate(e).has_value());
    EXPECT_FALSE(snap.StatusAtSrc(e).has_value());
  }
  // Other routers unaffected.
  const NodeId other = net.topo.FindNode("NYCMng").value();
  EXPECT_TRUE(snap.NodeDrained(other).has_value());
}

TEST_F(FaultFixture, MalformedTelemetryDropsSubset) {
  const auto snap = net.Snapshot(1, MalformedTelemetry(victim, 0.5, 17));
  std::size_t present = 0, missing = 0;
  for (LinkId e : net.topo.OutLinks(victim)) {
    snap.TxRate(e).has_value() ? ++present : ++missing;
    snap.StatusAtSrc(e).has_value() ? ++present : ++missing;
  }
  for (LinkId e : net.topo.InLinks(victim)) {
    snap.RxRate(e).has_value() ? ++present : ++missing;
  }
  EXPECT_GT(missing, 0u);
  EXPECT_GT(present, 0u);  // p=0.5: some survive (IPLS has degree 3)
  EXPECT_TRUE(snap.Responded(victim));
}

TEST_F(FaultFixture, WrongDrainSignalOverrides) {
  const auto snap = net.Snapshot(1, WrongDrainSignal(victim, true));
  EXPECT_TRUE(snap.NodeDrained(victim).value());
}

TEST_F(FaultFixture, AsymmetricLinkDrainSplitsEnds) {
  const auto snap = net.Snapshot(1, AsymmetricLinkDrain(link));
  EXPECT_TRUE(snap.LinkDrainAtSrc(link).value());
  EXPECT_FALSE(snap.LinkDrainAtDst(link).value());
}

TEST_F(FaultFixture, FalseLinkStatusOneSide) {
  const auto snap =
      net.Snapshot(1, FalseLinkStatus(link, /*at_src=*/false,
                                      LinkStatus::kDown));
  EXPECT_EQ(snap.StatusAtSrc(link).value(), LinkStatus::kUp);
  EXPECT_EQ(snap.StatusAtDst(link).value(), LinkStatus::kDown);
}

TEST_F(FaultFixture, ScaledRouterCountersScaleAll) {
  const auto clean = net.Snapshot(1);
  const auto snap = net.Snapshot(1, ScaledRouterCounters(victim, 0.5));
  for (LinkId e : net.topo.OutLinks(victim)) {
    EXPECT_NEAR(snap.TxRate(e).value(), 0.5 * clean.TxRate(e).value(), 1e-9);
  }
  EXPECT_NEAR(snap.ExtInRate(victim).value(),
              0.5 * clean.ExtInRate(victim).value(), 1e-9);
}

TEST_F(FaultFixture, ComposeAppliesInOrder) {
  auto composed = ComposeFaults(
      {WrongDrainSignal(victim, true), WrongDrainSignal(victim, false)});
  const auto snap = net.Snapshot(1, composed);
  EXPECT_FALSE(snap.NodeDrained(victim).value());  // last write wins
}

TEST_F(FaultFixture, ComposeToleratesNullEntries) {
  auto composed = ComposeFaults({nullptr, WrongDrainSignal(victim, true)});
  const auto snap = net.Snapshot(1, composed);
  EXPECT_TRUE(snap.NodeDrained(victim).value());
}


TEST_F(FaultFixture, VendorCounterBugConsistentInsideFleet) {
  // Two adjacent routers on the buggy vendor: their shared link's TX and
  // RX are scaled identically and still agree — R1 is blind inside the
  // fleet (the §3 correlated-failure case).
  const NodeId a = net.topo.FindNode("CHINng").value();
  const NodeId b = net.topo.FindNode("NYCMng").value();
  const LinkId shared = net.topo.FindLink(a, b).value();
  const auto clean = net.Snapshot(1);
  const auto snap = net.Snapshot(1, VendorCounterBug({a, b}, 0.5));
  EXPECT_NEAR(snap.TxRate(shared).value(),
              0.5 * clean.TxRate(shared).value(), 1e-9);
  EXPECT_NEAR(snap.RxRate(shared).value(),
              0.5 * clean.RxRate(shared).value(), 1e-9);
  // Boundary link (a to a healthy neighbour): only one side scaled.
  for (LinkId e : net.topo.OutLinks(a)) {
    const net::Link& l = net.topo.link(e);
    if (l.dst == b) continue;
    EXPECT_NEAR(snap.TxRate(e).value(), 0.5 * clean.TxRate(e).value(), 1e-9);
    EXPECT_NEAR(snap.RxRate(e).value(), clean.RxRate(e).value(), 1e-9);
  }
}

TEST_F(FaultFixture, VendorCounterBugEmptyFleetIsNoOp) {
  const auto clean = net.Snapshot(1);
  const auto snap = net.Snapshot(1, VendorCounterBug({}, 0.5));
  for (LinkId e : net.topo.LinkIds()) {
    EXPECT_DOUBLE_EQ(snap.TxRate(e).value(), clean.TxRate(e).value());
  }
}

}  // namespace
}  // namespace hodor::faults
