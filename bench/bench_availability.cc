// E10 — availability over time (the paper's §1 motivation, quantified).
//
// Simulates a long run of control epochs on the B4-like WAN. Faults arrive
// randomly (each epoch one of the catalog's *input* faults fires with
// probability p and persists for a geometric number of epochs — a buggy
// rollout that eventually gets reverted). Three deployments share the same
// fault schedule:
//   unprotected, Hodor/alert-only (detects, uses input anyway), and
//   Hodor/fallback.
// Reported per deployment: availability against a 99.9%-satisfaction SLO,
// outage episodes, detection coverage, and false rejections.
#include <iostream>

#include "bench_common.h"
#include "controlplane/trace.h"
#include "core/validator.h"
#include "faults/aggregation_faults.h"
#include "faults/scenario_catalog.h"
#include "util/logging.h"
#include "util/strings.h"

namespace {

using namespace hodor;

// The per-epoch fault schedule, precomputed so all arms replay it exactly.
struct ScheduledFault {
  bool active = false;
  std::size_t scenario_index = 0;  // into the input-fault subset
};

}  // namespace

int main() {
  using namespace hodor;
  util::Logger::Instance().SetMinLevel(util::LogLevel::kError);
  constexpr int kEpochs = 300;
  constexpr double kFaultArrivalP = 0.06;
  constexpr double kFaultRepairP = 0.35;  // chance an active fault is fixed
  constexpr double kSlo = 0.999;

  bench::PrintHeader(
      "E10", "availability under randomly arriving input faults (§1)",
      "b4like WAN, 300 epochs, fault arrival p=0.06/epoch, repair p=0.35, "
      "SLO: satisfaction >= 99.9%, schedule seed 505");

  const net::Topology topo = net::B4Like();
  const faults::ScenarioCatalog catalog(topo);
  // Only aggregation/external-input faults: the network itself stays
  // healthy, isolating the input-validation effect.
  std::vector<const faults::OutageScenario*> pool;
  for (const auto& s : catalog.scenarios()) {
    if (s.input_fault && !s.setup &&
        s.fault_class != faults::FaultClass::kRouterSignal) {
      pool.push_back(&s);
    }
  }

  util::Rng schedule_rng(505);
  std::vector<ScheduledFault> schedule(kEpochs);
  bool active = false;
  std::size_t which = 0;
  for (int e = 0; e < kEpochs; ++e) {
    if (active && schedule_rng.Bernoulli(kFaultRepairP)) active = false;
    if (!active && schedule_rng.Bernoulli(kFaultArrivalP)) {
      active = true;
      which = schedule_rng.Index(pool.size());
    }
    schedule[e] = ScheduledFault{active, which};
  }

  util::Rng demand_rng(77);
  flow::DemandMatrix base = flow::GravityDemand(topo, demand_rng);
  flow::NormalizeToMaxUtilization(topo, 0.4, base);

  struct Arm {
    std::string name;
    bool validate;
    controlplane::RejectionPolicy policy;
  };
  const std::vector<Arm> arms = {
      {"unprotected", false, controlplane::RejectionPolicy::kAlertOnly},
      {"hodor, alert-only", true, controlplane::RejectionPolicy::kAlertOnly},
      {"hodor, fallback", true,
       controlplane::RejectionPolicy::kFallbackToLastGood},
  };

  util::TablePrinter table({"deployment", "availability", "episodes",
                            "longest", "worst sat", "detected",
                            "false rejects"});
  std::string reports_json = "[";
  for (const Arm& arm : arms) {
    controlplane::PipelineOptions popts;
    popts.policy = arm.policy;
    popts.collector.probes.false_loss_rate = 0.0;
    controlplane::Pipeline pipeline(topo, popts, util::Rng(9));
    const net::GroundTruthState state(topo);
    pipeline.Bootstrap(state, base);
    core::Validator validator(topo);
    if (arm.validate) pipeline.SetValidator(validator.AsPipelineValidator());

    controlplane::EpochTrace trace;
    for (int e = 0; e < kEpochs; ++e) {
      // Mild diurnal drift, shared across arms.
      util::Rng drift(7000 + e);
      flow::DemandMatrix demand = base;
      for (const auto& [i, j] : base.Pairs()) {
        demand.Set(i, j, base.At(i, j) * (1.0 + drift.Uniform(-0.03, 0.03)));
      }
      const ScheduledFault& f = schedule[e];
      const auto result = pipeline.RunEpoch(
          state, demand,
          f.active ? pool[f.scenario_index]->snapshot_fault : nullptr,
          f.active ? pool[f.scenario_index]->aggregation
                   : controlplane::AggregationFaultHooks{});
      trace.Record(result, f.active);
    }
    const auto report = trace.Summarize(kSlo);
    if (reports_json.size() > 1) reports_json += ",";
    reports_json += "{\"deployment\":\"" + obs::JsonEscape(arm.name) +
                    "\",\"report\":" + report.ToJson() + "}";
    table.AddRowValues(
        arm.name, util::FormatPercent(report.availability, 2),
        report.outage_episodes, report.longest_outage_epochs,
        util::FormatPercent(report.worst_satisfaction, 1),
        arm.validate ? std::to_string(report.faulty_epochs_rejected) + "/" +
                           std::to_string(report.faulty_epochs)
                     : "-",
        arm.validate ? std::to_string(report.clean_epochs_rejected) : "-");
  }
  std::cout << table.ToString();
  std::cout << "\nFault epochs in schedule: ";
  std::size_t fault_epochs = 0;
  for (const auto& f : schedule) {
    if (f.active) ++fault_epochs;
  }
  std::cout << fault_epochs << "/" << kEpochs
            << ". Alert-only detects but cannot protect; the fallback "
               "policy converts detections into availability.\n";
  reports_json += "]";
  std::cout << "\nPer-stage wall-clock (all arms pooled):\n";
  bench::PrintStageLatencySummary();
  bench::DumpObsSnapshot("E10", reports_json);
  return 0;
}
