// String helpers shared across the repo (formatting, joining, splitting).
#pragma once

#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace hodor::util {

// Joins elements with a separator using operator<< for rendering.
template <typename Range>
std::string Join(const Range& range, std::string_view sep) {
  std::ostringstream os;
  bool first = true;
  for (const auto& item : range) {
    if (!first) os << sep;
    os << item;
    first = false;
  }
  return os.str();
}

// Splits on a single-character delimiter; keeps empty fields.
std::vector<std::string> Split(std::string_view s, char delim);

// Trims ASCII whitespace from both ends.
std::string Trim(std::string_view s);

// Renders a double with fixed precision (default 2 decimal places).
std::string FormatDouble(double x, int precision = 2);

// Renders a fraction as a percentage string, e.g. 0.992 -> "99.2%".
std::string FormatPercent(double fraction, int precision = 1);

// Renders a 64-bit value as 16 lowercase hex digits (canonical digest form).
std::string FormatHex64(std::uint64_t value);

// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

}  // namespace hodor::util
