file(REMOVE_RECURSE
  "CMakeFiles/hodor_flow.dir/demand_matrix.cc.o"
  "CMakeFiles/hodor_flow.dir/demand_matrix.cc.o.d"
  "CMakeFiles/hodor_flow.dir/metrics.cc.o"
  "CMakeFiles/hodor_flow.dir/metrics.cc.o.d"
  "CMakeFiles/hodor_flow.dir/routing.cc.o"
  "CMakeFiles/hodor_flow.dir/routing.cc.o.d"
  "CMakeFiles/hodor_flow.dir/simulator.cc.o"
  "CMakeFiles/hodor_flow.dir/simulator.cc.o.d"
  "CMakeFiles/hodor_flow.dir/tm_generators.cc.o"
  "CMakeFiles/hodor_flow.dir/tm_generators.cc.o.d"
  "libhodor_flow.a"
  "libhodor_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hodor_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
