// E7 — always-on feasibility (§3: Hodor is envisioned as a continuously
// running validator): microbenchmarks of hardening and full validation
// latency as the network scales, via google-benchmark.
//
// The claim to support: one validation round costs far less than a
// telemetry collection interval (seconds), even at hundreds of routers.
#include <benchmark/benchmark.h>

#include <map>
#include <memory>

#include "bench_common.h"
#include "controlplane/services.h"
#include "core/validator.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/timeseries.h"
#include "util/parallel.h"

namespace {

using namespace hodor;

// Builds a trial network of the requested size (12/22 use the canned WANs;
// larger sizes use seeded Waxman graphs).
const bench::Trial& TrialForSize(int n) {
  static std::map<int, std::unique_ptr<bench::Trial>> cache;
  auto it = cache.find(n);
  if (it == cache.end()) {
    net::Topology topo = [&]() {
      if (n == 12) return net::Abilene();
      if (n == 22) return net::GeantLike();
      util::Rng rng(99 + n);
      return net::Waxman(static_cast<std::size_t>(n), rng);
    }();
    it = cache
             .emplace(n, std::make_unique<bench::Trial>(
                             std::move(topo), 500 + n, 0.5,
                             bench::DefaultCollector()))
             .first;
  }
  return *it->second;
}

void BM_Harden(benchmark::State& state) {
  const bench::Trial& t = TrialForSize(static_cast<int>(state.range(0)));
  const core::HardeningEngine engine;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Harden(t.snapshot));
  }
  state.SetLabel(t.topo.name() + " links=" +
                 std::to_string(t.topo.link_count()));
}
BENCHMARK(BM_Harden)->Arg(12)->Arg(22)->Arg(50)->Arg(100)->Arg(200)->Arg(400);

void BM_HardenWithFlaggedCounters(benchmark::State& state) {
  // Worst-ish case: repairs actually run (10% of TX counters zeroed).
  const bench::Trial& t = TrialForSize(static_cast<int>(state.range(0)));
  telemetry::NetworkSnapshot snap = t.snapshot;
  util::Rng rng(4);
  for (net::LinkId e : t.topo.LinkIds()) {
    if (!rng.Bernoulli(0.1)) continue;
    if (snap.TxRate(e)) snap.frame().SetTxRate(e, 0.0);
  }
  const core::HardeningEngine engine;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Harden(snap));
  }
}
BENCHMARK(BM_HardenWithFlaggedCounters)->Arg(12)->Arg(50)->Arg(200);

void BM_HardenThreaded(benchmark::State& state) {
  // Sharded hardening: threads come from HODOR_THREADS (default 4 here) so
  // operators can sweep thread counts without recompiling.
  const bench::Trial& t = TrialForSize(static_cast<int>(state.range(0)));
  core::HardeningOptions opts;
  opts.num_threads = util::ThreadsFromEnv(4);
  const core::HardeningEngine engine(opts);
  core::HardenedState out;
  for (auto _ : state) {
    engine.HardenInto(t.snapshot, out);
    benchmark::DoNotOptimize(out);
  }
  state.SetLabel("threads=" + std::to_string(opts.num_threads));
}
BENCHMARK(BM_HardenThreaded)->Arg(100)->Arg(200)->Arg(400);

void BM_FullValidation(benchmark::State& state) {
  const bench::Trial& t = TrialForSize(static_cast<int>(state.range(0)));
  util::Rng rng(7);
  const auto input = controlplane::AggregateInputs(
      t.topo, t.snapshot, t.demand, 0, rng, {}, {});
  const core::Validator validator(t.topo);
  for (auto _ : state) {
    benchmark::DoNotOptimize(validator.Validate(input, t.snapshot));
  }
}
BENCHMARK(BM_FullValidation)->Arg(12)->Arg(22)->Arg(50)->Arg(100)->Arg(200)
    ->Arg(400);

void BM_FullValidationNoProvenance(benchmark::State& state) {
  // Same round with the audit trail off: the gap to BM_FullValidation is
  // the price of recording per-invariant provenance.
  const bench::Trial& t = TrialForSize(static_cast<int>(state.range(0)));
  util::Rng rng(7);
  const auto input = controlplane::AggregateInputs(
      t.topo, t.snapshot, t.demand, 0, rng, {}, {});
  core::ValidatorOptions opts;
  opts.record_provenance = false;
  const core::Validator validator(t.topo, opts);
  for (auto _ : state) {
    benchmark::DoNotOptimize(validator.Validate(input, t.snapshot));
  }
}
BENCHMARK(BM_FullValidationNoProvenance)->Arg(200)->Arg(400);

void BM_TimeseriesSample(benchmark::State& state) {
  // One observatory sampling pass: fold every sample of a registry sized
  // like a live run (per-entity trust gauges for the three checks, the
  // epoch counters, a stage histogram) into the /query store's rings.
  // This is the per-epoch cost the --timeseries-overhead gate budgets;
  // the stage span makes it a "timeseries-sample" column in the obs
  // snapshot, so scripts/bench_compare.sh tracks it like any stage.
  const bench::Trial& t = TrialForSize(static_cast<int>(state.range(0)));
  obs::MetricsRegistry reg;
  for (const char* check : {"demand", "topology", "drain"}) {
    for (std::size_t i = 0; i < t.topo.node_count(); ++i) {
      reg.GetGauge("hodor_signal_trust",
                   {{"check", check}, {"entity", std::to_string(i)}},
                   "bench trust gauge")
          .Set(static_cast<double>((i * 7) % 101));
    }
  }
  reg.GetCounter("hodor_epochs_total", {}, "bench counter").Increment();
  auto& hist = reg.GetHistogram("hodor_stage_duration_us",
                                {{"stage", "validate"}});
  for (int i = 0; i < 64; ++i) hist.Observe(100.0 + i);
  obs::TimeSeriesStore store;
  std::uint64_t epoch = 0;
  for (auto _ : state) {
    obs::StageSpan span(obs::Stage::kTimeseriesSample, epoch);
    store.Sample(epoch++, reg);
    benchmark::DoNotOptimize(store.epochs_sampled());
  }
  state.SetLabel("series=" + std::to_string(store.series_count()));
}
BENCHMARK(BM_TimeseriesSample)->Arg(12)->Arg(100)->Arg(400);

void BM_ConfidenceScore(benchmark::State& state) {
  // The confidence scoring kernels (core/confidence.h) in isolation: one
  // RateConfidence per directed link plus one ScalarConfidence per node —
  // exactly the extra per-epoch work confidence calibration added to
  // hardening. The stage span makes it a "confidence-score" column in the
  // obs snapshot for scripts/bench_compare.sh.
  const bench::Trial& t = TrialForSize(static_cast<int>(state.range(0)));
  const core::HardeningOptions opts;
  const core::HardeningEngine engine(opts);
  const core::HardenedState hardened = engine.Harden(t.snapshot);
  std::uint64_t epoch = 0;
  for (auto _ : state) {
    obs::StageSpan span(obs::Stage::kConfidenceScore, epoch++);
    double acc = 0.0;
    for (net::LinkId e : t.topo.LinkIds()) {
      acc += core::RateConfidence(opts.confidence, opts.activity_floor,
                                  opts.conservation_tau, t.snapshot, e,
                                  hardened.rates[e.value()]);
    }
    for (std::size_t i = 0; i < t.topo.node_count(); ++i) {
      acc += core::ScalarConfidence(
          opts.confidence, opts.conservation_tau, t.topo, hardened,
          net::NodeId(static_cast<std::uint32_t>(i)));
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetLabel(t.topo.name() + " links=" +
                 std::to_string(t.topo.link_count()));
}
BENCHMARK(BM_ConfidenceScore)->Arg(12)->Arg(100)->Arg(400);

void BM_CollectSnapshot(benchmark::State& state) {
  const bench::Trial& t = TrialForSize(static_cast<int>(state.range(0)));
  telemetry::Collector collector(t.topo, bench::DefaultCollector());
  util::Rng rng(9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(collector.Collect(t.state, t.sim, 0, rng));
  }
}
BENCHMARK(BM_CollectSnapshot)->Arg(12)->Arg(50)->Arg(200);

void BM_ControllerTe(benchmark::State& state) {
  // For scale: the TE computation Hodor guards is itself much more
  // expensive than validation.
  const bench::Trial& t = TrialForSize(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        flow::GreedyTeRouting(t.topo, t.demand, net::AllLinks()));
  }
}
BENCHMARK(BM_ControllerTe)->Arg(12)->Arg(22)->Arg(50);

}  // namespace

int main(int argc, char** argv) {
  hodor::bench::PrintHeader(
      "E7", "always-on validation overhead (§3)",
      "google-benchmark; topologies: abilene/geantlike/waxman-N; times per "
      "full hardening or validation round");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  // Every Harden()/Validate() iteration above fed the global registry, so
  // the snapshot holds the per-stage latency histograms this machine
  // produced — the perf baseline scripts/bench_snapshot.sh refreshes.
  hodor::bench::DumpObsSnapshot("overhead");
  return 0;
}
