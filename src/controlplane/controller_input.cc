#include "controlplane/controller_input.h"

namespace hodor::controlplane {

ControllerInput MakeEmptyInput(const net::Topology& topo) {
  ControllerInput input;
  input.link_available.assign(topo.link_count(), true);
  input.demand = flow::DemandMatrix(topo.node_count());
  input.node_drained.assign(topo.node_count(), false);
  input.link_drained.assign(topo.link_count(), false);
  return input;
}

}  // namespace hodor::controlplane
