#include "controlplane/trace.h"

#include <gtest/gtest.h>

#include "net/topologies.h"
#include "obs/json.h"
#include "obs/provenance.h"
#include "obs/span.h"

namespace hodor::controlplane {
namespace {

EpochResult MakeResult(std::uint64_t epoch, double satisfaction,
                       bool validated, bool accept, bool fallback) {
  static const net::Topology topo = net::Line(2);
  EpochResult r{epoch,
                MakeEmptyInput(topo),
                validated,
                ValidationDecision{accept, ""},
                fallback,
                flow::NetworkMetrics{},
                flow::SimulationResult{},
                telemetry::NetworkSnapshot(topo, epoch)};
  r.metrics.demand_satisfaction = satisfaction;
  return r;
}

TEST(EpochTrace, EmptyTraceSummarizesCleanly) {
  EpochTrace trace;
  const auto report = trace.Summarize();
  EXPECT_EQ(report.epochs, 0u);
  EXPECT_DOUBLE_EQ(report.availability, 1.0);
}

TEST(EpochTrace, AllHealthyIsFullyAvailable) {
  EpochTrace trace;
  for (int e = 0; e < 10; ++e) {
    trace.Record(MakeResult(e, 1.0, true, true, false), false);
  }
  const auto report = trace.Summarize(0.999);
  EXPECT_EQ(report.epochs, 10u);
  EXPECT_DOUBLE_EQ(report.availability, 1.0);
  EXPECT_EQ(report.slo_violations, 0u);
  EXPECT_EQ(report.outage_episodes, 0u);
  EXPECT_DOUBLE_EQ(report.mean_satisfaction, 1.0);
}

TEST(EpochTrace, CountsViolationsAndEpisodes) {
  EpochTrace trace;
  // Pattern: ok ok BAD BAD ok BAD ok ok  -> 3 violations, 2 episodes,
  // longest run 2.
  const double sats[] = {1.0, 1.0, 0.5, 0.6, 1.0, 0.7, 1.0, 1.0};
  for (int e = 0; e < 8; ++e) {
    trace.Record(MakeResult(e, sats[e], false, true, false), false);
  }
  const auto report = trace.Summarize(0.999);
  EXPECT_EQ(report.slo_violations, 3u);
  EXPECT_EQ(report.outage_episodes, 2u);
  EXPECT_EQ(report.longest_outage_epochs, 2u);
  EXPECT_NEAR(report.availability, 5.0 / 8.0, 1e-12);
  EXPECT_DOUBLE_EQ(report.worst_satisfaction, 0.5);
}

TEST(EpochTrace, DetectionCoverageSplitByFaultTruth) {
  EpochTrace trace;
  // Faulty epoch rejected; faulty epoch missed; clean epoch rejected;
  // clean epoch accepted.
  trace.Record(MakeResult(0, 1.0, true, false, true), true);
  trace.Record(MakeResult(1, 0.9, true, true, false), true);
  trace.Record(MakeResult(2, 1.0, true, false, true), false);
  trace.Record(MakeResult(3, 1.0, true, true, false), false);
  const auto report = trace.Summarize();
  EXPECT_EQ(report.faulty_epochs, 2u);
  EXPECT_EQ(report.faulty_epochs_rejected, 1u);
  EXPECT_EQ(report.clean_epochs_rejected, 1u);
}

TEST(EpochTrace, UnvalidatedEpochsNeverCountAsRejected) {
  EpochTrace trace;
  trace.Record(MakeResult(0, 1.0, false, false, false), true);
  const auto report = trace.Summarize();
  EXPECT_EQ(report.faulty_epochs_rejected, 0u);
}

TEST(EpochTrace, SloBoundaryIsExclusive) {
  EpochTrace trace;
  trace.Record(MakeResult(0, 0.999, false, true, false), false);
  trace.Record(MakeResult(1, 0.9989, false, true, false), false);
  const auto report = trace.Summarize(0.999);
  EXPECT_EQ(report.slo_violations, 1u);  // exactly-at-SLO passes
}

TEST(EpochTrace, AllViolatingTraceIsOneEpisode) {
  EpochTrace trace;
  for (int e = 0; e < 5; ++e) {
    trace.Record(MakeResult(e, 0.2, false, true, false), false);
  }
  const auto report = trace.Summarize(0.999);
  EXPECT_EQ(report.slo_violations, 5u);
  EXPECT_DOUBLE_EQ(report.availability, 0.0);
  EXPECT_EQ(report.outage_episodes, 1u);
  EXPECT_EQ(report.longest_outage_epochs, 5u);
  EXPECT_DOUBLE_EQ(report.worst_satisfaction, 0.2);
}

TEST(EpochTrace, TrailingViolationRunStillCounts) {
  EpochTrace trace;
  // ok BAD ok BAD BAD — the trace *ends* mid-outage; both episodes and the
  // final run length must still be counted.
  const double sats[] = {1.0, 0.5, 1.0, 0.6, 0.4};
  for (int e = 0; e < 5; ++e) {
    trace.Record(MakeResult(e, sats[e], false, true, false), false);
  }
  const auto report = trace.Summarize(0.999);
  EXPECT_EQ(report.outage_episodes, 2u);
  EXPECT_EQ(report.longest_outage_epochs, 2u);
  EXPECT_EQ(report.slo_violations, 3u);
}

TEST(EpochTrace, MeanInvariantsFailedCountsValidatedEpochsOnly) {
  EpochTrace trace;
  // Validated epoch with 3 failures, validated epoch with 1, and an
  // unvalidated epoch that must not dilute the mean.
  auto with_failures = [](std::uint64_t epoch, std::size_t n, bool validated) {
    EpochResult r = MakeResult(epoch, 1.0, validated, n == 0, false);
    for (std::size_t i = 0; i < n; ++i) {
      obs::InvariantRecord rec;
      rec.check = "demand";
      rec.verdict = obs::InvariantVerdict::kFail;
      r.decision.provenance.Add(rec);
    }
    return r;
  };
  trace.Record(with_failures(0, 3, true), true);
  trace.Record(with_failures(1, 1, true), true);
  trace.Record(with_failures(2, 5, false), true);
  const auto report = trace.Summarize();
  EXPECT_DOUBLE_EQ(report.mean_invariants_failed, 2.0);
}

TEST(EpochTrace, StageMeansComeFromSpansInTaxonomyOrder) {
  EpochTrace trace;
  auto with_spans = [](std::uint64_t epoch, double collect_us,
                       double program_us) {
    EpochResult r = MakeResult(epoch, 1.0, false, true, false);
    r.spans.push_back({obs::Stage::kProgram, epoch, program_us, {}});
    r.spans.push_back({obs::Stage::kCollect, epoch, collect_us, {}});
    return r;
  };
  trace.Record(with_spans(0, 10.0, 100.0), false);
  trace.Record(with_spans(1, 30.0, 300.0), false);
  const auto report = trace.Summarize();
  ASSERT_EQ(report.mean_stage_us.size(), 2u);
  // kAllStages order: collect before program, regardless of span order.
  EXPECT_EQ(report.mean_stage_us[0].first, "collect");
  EXPECT_DOUBLE_EQ(report.mean_stage_us[0].second, 20.0);
  EXPECT_EQ(report.mean_stage_us[1].first, "program");
  EXPECT_DOUBLE_EQ(report.mean_stage_us[1].second, 200.0);
  EXPECT_NE(report.ToString().find("mean stage us:"), std::string::npos);
}

TEST(AvailabilityReport, ToJsonParsesAndCarriesStageMeans) {
  EpochTrace trace;
  EpochResult r = MakeResult(0, 0.5, true, false, true);
  r.spans.push_back({obs::Stage::kEpoch, 0, 12.5, {}});
  trace.Record(r, true);
  const std::string json = trace.Summarize().ToJson();
  EXPECT_TRUE(obs::IsValidJson(json)) << json;
  EXPECT_NE(json.find("\"epochs\":1"), std::string::npos);
  EXPECT_NE(json.find("\"mean_stage_us\":{\"epoch\":12.5}"),
            std::string::npos);
}

TEST(AvailabilityReport, ToStringMentionsKeyNumbers) {
  EpochTrace trace;
  trace.Record(MakeResult(0, 0.5, true, false, true), true);
  trace.Record(MakeResult(1, 1.0, true, true, false), false);
  const std::string s = trace.Summarize().ToString();
  EXPECT_NE(s.find("availability=50.00%"), std::string::npos);
  EXPECT_NE(s.find("1/1 faulty epochs rejected"), std::string::npos);
}

}  // namespace
}  // namespace hodor::controlplane
