#include "core/hardening.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <unordered_map>

#include "obs/metrics.h"
#include "obs/span.h"
#include "util/linear_solver.h"
#include "util/stats.h"

namespace hodor::core {

namespace {

using net::LinkId;
using net::NodeId;
using net::Topology;
using telemetry::NetworkSnapshot;

// Flow-conservation bookkeeping at one router:
//   (Σ_in rates + ext_in)  vs  (Σ_out rates + dropped + ext_out).
// Computable only when the node's own scalar signals and all incident link
// rates are known (an override supplies the candidate value under test).
struct ConservationCheck {
  bool computable = false;
  double relative_residual = 0.0;
};

ConservationCheck CheckConservation(const Topology& topo,
                                    const HardenedState& hs, NodeId v,
                                    LinkId override_link,
                                    double override_value) {
  ConservationCheck out;
  const auto& ei = hs.ext_in[v.value()];
  const auto& eo = hs.ext_out[v.value()];
  const auto& dr = hs.dropped[v.value()];
  const bool is_external = topo.node(v).has_external_port;
  if ((is_external && (!ei || !eo)) || !dr) return out;

  double in_sum = is_external ? *ei : 0.0;
  for (LinkId e : topo.InLinks(v)) {
    if (e == override_link) {
      in_sum += override_value;
      continue;
    }
    const auto& r = hs.rates[e.value()];
    if (!r.value) return out;
    in_sum += *r.value;
  }
  double out_sum = *dr + (is_external ? *eo : 0.0);
  for (LinkId e : topo.OutLinks(v)) {
    if (e == override_link) {
      out_sum += override_value;
      continue;
    }
    const auto& r = hs.rates[e.value()];
    if (!r.value) return out;
    out_sum += *r.value;
  }
  out.computable = true;
  out.relative_residual = util::RelativeDifference(in_sum, out_sum);
  return out;
}

}  // namespace

std::string HardenedState::Summary() const {
  std::ostringstream os;
  os << "hardening: flagged=" << flagged_rate_count
     << " repaired=" << repaired_rate_count
     << " unknown=" << unknown_rate_count
     << " status_disagreements=" << status_disagreement_count;
  return os.str();
}

HardenedState HardeningEngine::Harden(const NetworkSnapshot& snapshot) const {
  obs::StageSpan span(obs::Stage::kHarden, snapshot.epoch(), opts_.metrics,
                      opts_.trace);
  const Topology& topo = snapshot.topology();
  HardenedState out;
  out.rates.resize(topo.link_count());
  out.links.resize(topo.link_count());
  out.link_drained.resize(topo.link_count());
  out.link_drain_disagreement.assign(topo.link_count(), false);
  out.ext_in.resize(topo.node_count());
  out.ext_out.resize(topo.node_count());
  out.dropped.resize(topo.node_count());
  out.drains.resize(topo.node_count());

  // Node-scalar signals are single-sourced; hardened value == reported value
  // (when the router answered). Their trustworthiness comes from being used
  // *jointly* in conservation equations: a corrupt scalar surfaces as an
  // unresolvable inconsistency rather than silently poisoning repairs.
  for (const net::Node& n : topo.nodes()) {
    out.ext_in[n.id.value()] = snapshot.ExtInRate(n.id);
    out.ext_out[n.id.value()] = snapshot.ExtOutRate(n.id);
    out.dropped[n.id.value()] = snapshot.DroppedRate(n.id);
  }

  HardenRates(snapshot, out);
  HardenLinkStates(snapshot, out);
  HardenDrains(snapshot, out);

  // Confidence scoring (R3/R4's role in the repair process): agreeing
  // pairs are fully trusted; inferred values start lower and gain from
  // each independent corroborating signal.
  for (LinkId e : topo.LinkIds()) {
    HardenedRate& r = out.rates[e.value()];
    switch (r.origin) {
      case RateOrigin::kAgreeing:
        r.confidence = 1.0;
        break;
      case RateOrigin::kRepaired:
      case RateOrigin::kSingleWitness: {
        double c = r.origin == RateOrigin::kRepaired ? 0.7 : 0.5;
        const bool active = r.value && *r.value > opts_.activity_floor;
        const auto probe = snapshot.ProbeSucceeded(e);
        // A successful probe corroborates a positive inferred rate; a
        // failed probe corroborates an inferred-idle link.
        if (probe && *probe == active) c += 0.15;
        const auto status = snapshot.StatusAtSrc(e);
        if (status &&
            (*status == telemetry::LinkStatus::kUp) == active) {
          c += 0.1;
        }
        r.confidence = std::min(1.0, c);
        break;
      }
      case RateOrigin::kUnknown:
        r.confidence = 0.0;
        break;
    }
  }

  for (const HardenedRate& r : out.rates) {
    if (r.flagged) ++out.flagged_rate_count;
    if (r.origin == RateOrigin::kRepaired) ++out.repaired_rate_count;
    if (!r.value) ++out.unknown_rate_count;
  }
  for (std::size_t e = 0; e < out.links.size(); ++e) {
    if (out.links[e].status_disagreement && e < topo.link(LinkId(static_cast<std::uint32_t>(e))).reverse.value()) {
      ++out.status_disagreement_count;  // count each physical link once
    }
  }

  obs::MetricsRegistry& reg = obs::ResolveRegistry(opts_.metrics);
  reg.GetCounter("hodor_hardening_runs_total", {}, "Snapshots hardened")
      .Increment();
  reg.GetCounter("hodor_hardening_flagged_rates_total", {},
                 "Rate pairs flagged by R1 link symmetry")
      .Increment(static_cast<double>(out.flagged_rate_count));
  reg.GetCounter("hodor_hardening_repaired_rates_total", {},
                 "Rates recovered via R2 flow conservation")
      .Increment(static_cast<double>(out.repaired_rate_count));
  reg.GetCounter("hodor_hardening_unknown_rates_total", {},
                 "Rates left unrecoverable after R1-R4")
      .Increment(static_cast<double>(out.unknown_rate_count));
  reg.GetCounter("hodor_hardening_status_disagreements_total", {},
                 "Physical links whose two status reports disagreed")
      .Increment(static_cast<double>(out.status_disagreement_count));
  return out;
}

void HardeningEngine::HardenRates(const NetworkSnapshot& snapshot,
                                  HardenedState& out) const {
  const Topology& topo = snapshot.topology();

  // --- R1: detection via link symmetry -----------------------------------
  struct Candidates {
    std::optional<double> tx, rx;
  };
  std::vector<Candidates> candidates(topo.link_count());
  for (LinkId e : topo.LinkIds()) {
    const auto tx = snapshot.TxRate(e);
    const auto rx = snapshot.RxRate(e);
    candidates[e.value()] = Candidates{tx, rx};
    HardenedRate& r = out.rates[e.value()];
    if (tx && rx && util::WithinRelativeTolerance(*tx, *rx, opts_.tau_h)) {
      r.value = (*tx + *rx) / 2.0;
      r.origin = RateOrigin::kAgreeing;
    } else {
      // Mismatch or missing side: the pair is spurious; the true rate
      // becomes an unknown variable (paper §4.1).
      r.flagged = true;
      r.origin = RateOrigin::kUnknown;
    }
  }

  // --- repair (a): pairwise disambiguation --------------------------------
  // Decide from the pre-repair state, then apply, so ordering cannot let
  // one repaired guess justify another within the same pass.
  if (opts_.pairwise_disambiguation) {
    struct Decision {
      LinkId link;
      double value;
      std::optional<double> rejected;
    };
    std::vector<Decision> decisions;
    for (LinkId e : topo.LinkIds()) {
      const HardenedRate& r = out.rates[e.value()];
      if (!r.flagged || r.value) continue;
      const Candidates& c = candidates[e.value()];
      const net::Link& l = topo.link(e);

      std::optional<double> tx_resid, rx_resid;
      if (c.tx) {
        const auto chk = CheckConservation(topo, out, l.src, e, *c.tx);
        if (chk.computable) tx_resid = chk.relative_residual;
      }
      if (c.rx) {
        const auto chk = CheckConservation(topo, out, l.dst, e, *c.rx);
        if (chk.computable) rx_resid = chk.relative_residual;
      }
      const bool tx_fits = tx_resid && *tx_resid <= opts_.conservation_tau;
      const bool rx_fits = rx_resid && *rx_resid <= opts_.conservation_tau;
      if (tx_fits && rx_fits) {
        // Both candidates satisfy conservation at their own routers; keep
        // the one that fits more tightly.
        if (*tx_resid <= *rx_resid) {
          decisions.push_back({e, *c.tx, c.rx});
        } else {
          decisions.push_back({e, *c.rx, c.tx});
        }
      } else if (tx_fits) {
        decisions.push_back({e, *c.tx, c.rx});
      } else if (rx_fits) {
        decisions.push_back({e, *c.rx, c.tx});
      }
    }
    for (const Decision& d : decisions) {
      HardenedRate& r = out.rates[d.link.value()];
      r.value = d.value;
      r.origin = RateOrigin::kRepaired;
      r.rejected_value = d.rejected;
    }
  }

  // --- repair (b): constraint propagation ---------------------------------
  // A node equation with exactly one unknown incident rate determines it
  // (the paper's worked example: flow conservation at B gives x = 76).
  if (opts_.propagation_repair) {
    bool changed = true;
    while (changed) {
      changed = false;
      // One synchronous round: collect every single-unknown node equation's
      // solution, then assign. An unknown adjacent to two solvable routers
      // gets two (slightly differing, per footnote 3) solutions — averaged
      // or first-picked per the option.
      std::unordered_map<std::uint32_t, std::vector<double>> solutions;
      for (const net::Node& n : topo.nodes()) {
        const bool is_external = n.has_external_port;
        if (!out.dropped[n.id.value()]) continue;
        if (is_external &&
            (!out.ext_in[n.id.value()] || !out.ext_out[n.id.value()])) {
          continue;
        }
        LinkId unknown = LinkId::Invalid();
        bool unknown_is_in = false;
        int unknown_count = 0;
        double in_sum = is_external ? *out.ext_in[n.id.value()] : 0.0;
        double out_sum = *out.dropped[n.id.value()] +
                         (is_external ? *out.ext_out[n.id.value()] : 0.0);
        for (LinkId e : topo.InLinks(n.id)) {
          const auto& r = out.rates[e.value()];
          if (r.value) {
            in_sum += *r.value;
          } else {
            ++unknown_count;
            unknown = e;
            unknown_is_in = true;
          }
        }
        for (LinkId e : topo.OutLinks(n.id)) {
          const auto& r = out.rates[e.value()];
          if (r.value) {
            out_sum += *r.value;
          } else {
            ++unknown_count;
            unknown = e;
            unknown_is_in = false;
          }
        }
        if (unknown_count != 1) continue;
        const double solved =
            unknown_is_in ? out_sum - in_sum : in_sum - out_sum;
        solutions[unknown.value()].push_back(solved);
      }
      for (const auto& [lid, vals] : solutions) {
        double v = vals.front();
        if (opts_.average_adjacent_solutions) {
          double acc = 0.0;
          for (double x : vals) acc += x;
          v = acc / static_cast<double>(vals.size());
        }
        HardenedRate& r = out.rates[lid];
        r.value = std::max(0.0, v);  // jitter can push tiny negatives
        r.origin = RateOrigin::kRepaired;
        changed = true;
      }
    }
  }

  // --- repair (c): global least-squares over remaining unknowns -----------
  if (opts_.global_least_squares) {
    std::vector<LinkId> unknowns;
    std::unordered_map<std::uint32_t, std::size_t> column_of;
    for (LinkId e : topo.LinkIds()) {
      if (!out.rates[e.value()].value) {
        column_of[e.value()] = unknowns.size();
        unknowns.push_back(e);
      }
    }
    if (!unknowns.empty()) {
      std::vector<std::vector<double>> rows;
      std::vector<double> rhs;
      for (const net::Node& n : topo.nodes()) {
        const bool is_external = n.has_external_port;
        if (!out.dropped[n.id.value()]) continue;
        if (is_external &&
            (!out.ext_in[n.id.value()] || !out.ext_out[n.id.value()])) {
          continue;
        }
        std::vector<double> row(unknowns.size(), 0.0);
        bool any_unknown = false;
        // Σ_in(unknown) − Σ_out(unknown) = known_out − known_in.
        double b = *out.dropped[n.id.value()] +
                   (is_external ? *out.ext_out[n.id.value()] -
                                      *out.ext_in[n.id.value()]
                                : 0.0);
        for (LinkId e : topo.InLinks(n.id)) {
          const auto& r = out.rates[e.value()];
          if (r.value) {
            b -= *r.value;
          } else {
            row[column_of[e.value()]] += 1.0;
            any_unknown = true;
          }
        }
        for (LinkId e : topo.OutLinks(n.id)) {
          const auto& r = out.rates[e.value()];
          if (r.value) {
            b += *r.value;
          } else {
            row[column_of[e.value()]] -= 1.0;
            any_unknown = true;
          }
        }
        if (!any_unknown) continue;
        rows.push_back(std::move(row));
        rhs.push_back(-b);  // move knowns to rhs with matching sign
      }
      if (!rows.empty()) {
        util::Matrix m(rows.size(), unknowns.size());
        for (std::size_t r = 0; r < rows.size(); ++r) {
          for (std::size_t c = 0; c < unknowns.size(); ++c) {
            m.At(r, c) = rows[r][c];
          }
        }
        auto solved = util::SolveLeastSquares(m, rhs);
        if (solved.ok() &&
            solved.value().outcome == util::SolveOutcome::kUnique) {
          const auto& x = solved.value().solution;
          for (std::size_t c = 0; c < unknowns.size(); ++c) {
            HardenedRate& r = out.rates[unknowns[c].value()];
            r.value = std::max(0.0, x[c]);
            r.origin = RateOrigin::kRepaired;
          }
        }
      }
    }
  }

  // --- repair (d): single-witness acceptance -------------------------------
  if (opts_.accept_single_witness) {
    for (LinkId e : topo.LinkIds()) {
      HardenedRate& r = out.rates[e.value()];
      if (r.value) continue;
      const Candidates& c = candidates[e.value()];
      if (c.tx.has_value() == c.rx.has_value()) continue;  // 0 or 2 witnesses
      r.value = c.tx.has_value() ? *c.tx : *c.rx;
      r.origin = RateOrigin::kSingleWitness;
    }
  }
}

void HardeningEngine::HardenLinkStates(const NetworkSnapshot& snapshot,
                                       HardenedState& out) const {
  const Topology& topo = snapshot.topology();
  for (LinkId e : topo.LinkIds()) {
    const net::Link& l = topo.link(e);
    if (l.reverse.value() < e.value()) continue;  // one pass per physical link

    double up_evidence = 0.0;
    double down_evidence = 0.0;

    // R1: the two ends' status reports.
    const auto s_src = snapshot.StatusAtSrc(e);
    const auto s_dst = snapshot.StatusAtDst(e);
    for (const auto& s : {s_src, s_dst}) {
      if (!s) continue;
      (*s == telemetry::LinkStatus::kUp ? up_evidence : down_evidence) +=
          opts_.status_weight;
    }
    const bool disagreement = s_src && s_dst && *s_src != *s_dst;

    // R3: alternative signals — hardened rates. Traffic flowing is strong
    // evidence the link is up; both directions idle is weak down-evidence
    // (an up link may simply be unused).
    if (opts_.use_alternative_signals) {
      bool any_active = false;
      bool all_known_idle = true;
      for (LinkId dir : {e, l.reverse}) {
        const auto& r = out.rates[dir.value()];
        if (!r.value) {
          all_known_idle = false;
          continue;
        }
        if (*r.value > opts_.activity_floor) {
          any_active = true;
          all_known_idle = false;
        }
      }
      if (any_active) up_evidence += opts_.rate_weight;
      else if (all_known_idle) down_evidence += 0.5 * opts_.rate_weight;
    }

    // R4: manufactured signals — active probes exercise the dataplane.
    if (opts_.use_probes) {
      for (LinkId dir : {e, l.reverse}) {
        const auto p = snapshot.ProbeSucceeded(dir);
        if (!p) continue;
        (*p ? up_evidence : down_evidence) += opts_.probe_weight;
      }
    }

    HardenedLinkState verdict;
    verdict.status_disagreement = disagreement;
    const double total = up_evidence + down_evidence;
    if (total <= 0.0 || up_evidence == down_evidence) {
      verdict.verdict = LinkVerdict::kUnknown;
      verdict.confidence = 0.0;
    } else if (up_evidence > down_evidence) {
      verdict.verdict = LinkVerdict::kUp;
      verdict.confidence = up_evidence / total;
    } else {
      verdict.verdict = LinkVerdict::kDown;
      verdict.confidence = down_evidence / total;
    }
    out.links[e.value()] = verdict;
    out.links[l.reverse.value()] = verdict;
  }
}

void HardeningEngine::HardenDrains(const NetworkSnapshot& snapshot,
                                   HardenedState& out) const {
  const Topology& topo = snapshot.topology();

  for (const net::Node& n : topo.nodes()) {
    HardenedDrain d;
    d.node_drained = snapshot.NodeDrained(n.id);

    bool carrying = false;
    bool any_up_status = false;
    bool any_probe = false;
    bool any_probe_ok = false;
    auto consider = [&](LinkId e) {
      const auto& r = out.rates[e.value()];
      if (r.value && *r.value > opts_.activity_floor) carrying = true;
      const auto s = snapshot.StatusAtSrc(e);
      if (s && *s == telemetry::LinkStatus::kUp) any_up_status = true;
      const auto p = snapshot.ProbeSucceeded(e);
      if (p) {
        any_probe = true;
        if (*p) any_probe_ok = true;
      }
    };
    for (LinkId e : topo.OutLinks(n.id)) consider(e);
    for (LinkId e : topo.InLinks(n.id)) consider(e);

    // §4.3 case 1: not marked drained, yet nothing gets through — statuses
    // are up while every probe fails and no counter moves.
    d.undrained_but_dead = !d.node_drained.value_or(false) && !carrying &&
                           any_up_status && any_probe && !any_probe_ok;
    // §4.3 case 2: marked drained but traffic is clearly flowing.
    d.drained_but_active = d.node_drained.value_or(false) && carrying;
    out.drains[n.id.value()] = d;
  }

  for (LinkId e : topo.LinkIds()) {
    const auto d1 = snapshot.LinkDrainAtSrc(e);
    const auto d2 = snapshot.LinkDrainAtDst(e);
    if (!d1 && !d2) {
      out.link_drained[e.value()] = std::nullopt;
      continue;
    }
    out.link_drained[e.value()] = d1.value_or(false) || d2.value_or(false);
    // Link drains carry natural symmetry (§4.3): both ends must agree.
    out.link_drain_disagreement[e.value()] = d1 && d2 && *d1 != *d2;
  }
}

}  // namespace hodor::core
