// Execution timeline: the analysis and export side of the execution
// tracer (util/exec_trace.h; DESIGN §10).
//
// ExecTimeline drains a util::ExecTracer into a bounded in-memory store of
// raw events and answers the questions the stage-span histograms cannot:
//
//   - Critical-path analysis. Per epoch it decomposes the control thread's
//     wall time into per-stage self time and dependency wait time, scores
//     each stage's busy ratio, and names the bottleneck stage — the
//     instrumentation ROADMAP open item 2 asks for before the staged
//     engine's concurrency payoff can be proven or fixed.
//   - Pool occupancy: the fraction of (epoch span × pool threads) spent
//     actually executing ThreadPool tasks.
//   - Sink health: peak sink-queue depth inside the epoch, the control
//     thread's backpressure stalls (blocked queue hand-offs), and sink
//     delivery lag behind the epoch's end.
//
// Results surface three ways, all fed by the owner thread (the thread
// that runs the epochs — registry discipline is unchanged):
//   - PublishGauges → hodor_epoch_critical_path_ms, per-stage
//     hodor_stage_busy_ratio, hodor_pool_busy_ratio,
//     hodor_epoch_backpressure_ms, hodor_epoch_bottleneck (the bottleneck
//     stage's graph index), and the hodor_trace_dropped_total counter
//     (per-stage wait times stay in the JSON breakdowns — the gauge
//     surface is kept small because it is re-rendered every scrape);
//   - ToJson breakdowns → the TelemetryServer's /trace endpoint and the
//     BENCH_epoch_engine.json per-stage block;
//   - WritePerfetto → Chrome trace_event JSON loadable in ui.perfetto.dev.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "util/exec_trace.h"

namespace hodor::obs {

class Counter;
class Gauge;
class MetricsRegistry;

struct ExecTimelineOptions {
  // Stage names indexed by the kStage events' `arg` (the epoch engine
  // passes its stage-graph names in graph order).
  std::vector<std::string> stage_names;
  // Occupancy denominator: how many threads the traced pool can run.
  std::size_t pool_threads = 1;
  // Queue id whose depth counts as "the sink queue" (the engine's ready
  // queue).
  std::uint16_t sink_queue_id = 0;
  // Cap on retained raw events; oldest are discarded beyond it. At ~10-60
  // events per epoch the default retains thousands of epochs.
  std::size_t retain_events = 1 << 16;
};

// One stage's share of one epoch.
struct StageBreakdown {
  std::string name;
  double self_ms = 0.0;   // stage execution time
  double wait_ms = 0.0;   // gap since the previous stage ended
  double busy_ratio = 0.0;  // self / epoch total
};

// One epoch, decomposed. critical_path_ms is the control thread's wall
// time for the epoch (the kEpoch event); stage self+wait times partition
// it up to scheduling gaps.
struct EpochBreakdown {
  std::uint64_t epoch = 0;
  double critical_path_ms = 0.0;
  std::string bottleneck;  // stage with the largest self time
  std::vector<StageBreakdown> stages;
  double pool_busy_ratio = 0.0;     // task time / (span × pool threads)
  double backpressure_ms = 0.0;     // control thread blocked on hand-offs
  std::uint32_t sink_queue_depth_max = 0;
  bool sink_delivered = false;      // sink thread finished this epoch
  double sink_lag_ms = 0.0;         // delivery end − epoch end (≥ 0)

  std::string ToJson() const;
};

// Aggregate over several epochs (the bench's per-stage breakdown block).
struct ExecSummary {
  std::size_t epochs = 0;
  double mean_critical_path_ms = 0.0;
  std::string bottleneck;  // modal per-epoch bottleneck
  std::vector<StageBreakdown> stages;  // mean self/wait/busy per stage
  double mean_pool_busy_ratio = 0.0;
  double mean_backpressure_ms = 0.0;
  std::uint32_t sink_queue_depth_max = 0;
  double mean_sink_lag_ms = 0.0;

  std::string ToJson() const;
};

ExecSummary Summarize(const std::vector<EpochBreakdown>& breakdowns);

class ExecTimeline {
 public:
  // `tracer` must outlive this timeline.
  ExecTimeline(util::ExecTracer* tracer, ExecTimelineOptions opts);

  ExecTimeline(const ExecTimeline&) = delete;
  ExecTimeline& operator=(const ExecTimeline&) = delete;

  // Drains the tracer into the retained store. Call from one thread only
  // (the epoch engine polls at every epoch boundary); safe against
  // concurrent emitters.
  void Poll();

  // Analyzes one epoch from the retained events; nullopt when the epoch's
  // kEpoch event is not (or no longer) retained.
  std::optional<EpochBreakdown> Analyze(std::uint64_t epoch) const;

  // The `n` most recent analyzable epochs, newest first.
  std::vector<EpochBreakdown> Recent(std::size_t n) const;
  std::optional<EpochBreakdown> Latest() const;

  // JSON array of Recent(n), newest first — the /trace payload shape.
  std::string RecentJson(std::size_t n) const;

  // Publishes the latest breakdown's gauges and the dropped-events
  // counter into `registry` (nullptr → global). Owner-thread only, like
  // every registry mutation.
  void PublishGauges(MetricsRegistry* registry);

  // Chrome trace_event JSON ("traceEvents" array with per-thread tracks,
  // complete events, and a sink-queue-depth counter track) from every
  // retained event. Open the output in ui.perfetto.dev or
  // chrome://tracing. Returns false when nothing has been retained.
  bool WritePerfetto(std::ostream& os) const;
  // Convenience: Poll, then write to `path`; false on IO error or when
  // nothing was retained.
  bool WritePerfettoFile(const std::string& path);

  std::uint64_t dropped_total() const { return tracer_->dropped_total(); }
  std::size_t retained_events() const { return retained_.size(); }
  // Epochs whose kEpoch anchor the bounded store has evicted — once an
  // anchor is gone the epoch is unanalyzable, so eviction is surfaced via
  // hodor_timeline_epochs_dropped_total rather than silently.
  std::uint64_t epochs_dropped() const { return epochs_dropped_; }

 private:
  struct TaggedEvent {
    std::uint16_t tid = 0;
    util::ExecEvent ev;
  };

  util::ExecTracer* tracer_;
  ExecTimelineOptions opts_;
  std::deque<TaggedEvent> retained_;      // drain order
  std::vector<std::string> thread_names_;  // by tid
  std::uint64_t published_dropped_ = 0;    // counter delta bookkeeping
  std::uint64_t epochs_dropped_ = 0;       // kEpoch anchors evicted by trim
  std::uint64_t published_epochs_dropped_ = 0;

  // Gauge handles cached per bound registry (PublishGauges runs every
  // epoch; repeated name/label lookups are measurable at that cadence).
  MetricsRegistry* gauge_registry_ = nullptr;
  Counter* dropped_counter_ = nullptr;
  Counter* epochs_dropped_counter_ = nullptr;
  Gauge* critical_path_gauge_ = nullptr;
  Gauge* pool_busy_gauge_ = nullptr;
  Gauge* backpressure_gauge_ = nullptr;
  Gauge* bottleneck_gauge_ = nullptr;
  std::vector<Gauge*> stage_busy_gauges_;  // by stage-graph index
};

}  // namespace hodor::obs
