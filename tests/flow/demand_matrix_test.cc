#include "flow/demand_matrix.h"

#include <gtest/gtest.h>

#include "net/topologies.h"

namespace hodor::flow {
namespace {

using net::NodeId;

TEST(DemandMatrix, StartsZero) {
  DemandMatrix d(4);
  EXPECT_EQ(d.node_count(), 4u);
  EXPECT_EQ(d.entry_count(), 16u);
  EXPECT_DOUBLE_EQ(d.Total(), 0.0);
  EXPECT_EQ(d.PositiveEntryCount(), 0u);
}

TEST(DemandMatrix, SetGetRoundTrip) {
  DemandMatrix d(3);
  d.Set(NodeId(0), NodeId(1), 5.5);
  EXPECT_DOUBLE_EQ(d.At(NodeId(0), NodeId(1)), 5.5);
  EXPECT_DOUBLE_EQ(d.At(NodeId(1), NodeId(0)), 0.0);
}

TEST(DemandMatrix, RowAndColSums) {
  DemandMatrix d(3);
  d.Set(NodeId(0), NodeId(1), 1.0);
  d.Set(NodeId(0), NodeId(2), 2.0);
  d.Set(NodeId(1), NodeId(2), 4.0);
  EXPECT_DOUBLE_EQ(d.RowSum(NodeId(0)), 3.0);
  EXPECT_DOUBLE_EQ(d.RowSum(NodeId(2)), 0.0);
  EXPECT_DOUBLE_EQ(d.ColSum(NodeId(2)), 6.0);
  EXPECT_DOUBLE_EQ(d.ColSum(NodeId(0)), 0.0);
  EXPECT_DOUBLE_EQ(d.Total(), 7.0);
}

TEST(DemandMatrix, DiagonalMustBeZero) {
  DemandMatrix d(2);
  EXPECT_THROW(d.Set(NodeId(1), NodeId(1), 1.0), std::logic_error);
  EXPECT_NO_THROW(d.Set(NodeId(1), NodeId(1), 0.0));
}

TEST(DemandMatrix, NegativeRejected) {
  DemandMatrix d(2);
  EXPECT_THROW(d.Set(NodeId(0), NodeId(1), -1.0), std::logic_error);
}

TEST(DemandMatrix, OutOfRangeRejected) {
  DemandMatrix d(2);
  EXPECT_THROW(d.At(NodeId(2), NodeId(0)), std::logic_error);
  EXPECT_THROW(d.At(NodeId::Invalid(), NodeId(0)), std::logic_error);
}

TEST(DemandMatrix, ScaleMultipliesEverything) {
  DemandMatrix d(2);
  d.Set(NodeId(0), NodeId(1), 3.0);
  d.Scale(2.0);
  EXPECT_DOUBLE_EQ(d.At(NodeId(0), NodeId(1)), 6.0);
  d.Scale(0.0);
  EXPECT_DOUBLE_EQ(d.Total(), 0.0);
}

TEST(DemandMatrix, PairsListsPositiveOffDiagonal) {
  DemandMatrix d(3);
  d.Set(NodeId(0), NodeId(2), 1.0);
  d.Set(NodeId(2), NodeId(1), 2.0);
  const auto pairs = d.Pairs();
  ASSERT_EQ(pairs.size(), 2u);
  EXPECT_EQ(pairs[0].first, NodeId(0));
  EXPECT_EQ(pairs[0].second, NodeId(2));
}

TEST(DemandMatrix, MaxAbsDifference) {
  DemandMatrix a(2), b(2);
  a.Set(NodeId(0), NodeId(1), 10.0);
  b.Set(NodeId(0), NodeId(1), 7.5);
  EXPECT_DOUBLE_EQ(a.MaxAbsDifference(b), 2.5);
  EXPECT_DOUBLE_EQ(a.MaxAbsDifference(a), 0.0);
}

TEST(DemandMatrix, MaxAbsDifferenceShapeChecked) {
  DemandMatrix a(2), b(3);
  EXPECT_FALSE(a.SameShape(b));
  EXPECT_THROW(a.MaxAbsDifference(b), std::logic_error);
}

TEST(DemandMatrix, ToStringContainsNames) {
  const net::Topology topo = net::Figure3Triangle();
  DemandMatrix d(topo.node_count());
  d.Set(NodeId(0), NodeId(1), 12.0);
  const std::string s = d.ToString(topo);
  EXPECT_NE(s.find("A"), std::string::npos);
  EXPECT_NE(s.find("12.0"), std::string::npos);
}

}  // namespace
}  // namespace hodor::flow
