#include "telemetry/snapshot.h"

namespace hodor::telemetry {

NetworkSnapshot::NetworkSnapshot(const net::Topology& topo,
                                 std::uint64_t epoch)
    : topo_(&topo), epoch_(epoch), frame_(topo) {}

void NetworkSnapshot::Reset(std::uint64_t epoch) {
  epoch_ = epoch;
  frame_.Clear();
  probes_.clear();
  probe_by_link_.clear();
}

void NetworkSnapshot::SetProbeResults(std::vector<ProbeResult> results) {
  probes_ = std::move(results);
  IndexProbeResults();
}

void NetworkSnapshot::IndexProbeResults() {
  probe_by_link_.assign(topo_->link_count(), std::nullopt);
  for (const ProbeResult& p : probes_) {
    HODOR_CHECK(p.link.valid() && p.link.value() < probe_by_link_.size());
    probe_by_link_[p.link.value()] = p.success;
  }
}

void NetworkSnapshot::DiffAgainst(const NetworkSnapshot& prev,
                                  FrameDelta& delta) const {
  if (topo_ != prev.topo_) {
    delta.full = true;
    return;
  }
  frame_.DiffAgainst(prev.frame_, delta);
  delta.base_epoch = prev.epoch_;
  delta.target_epoch = epoch_;
  // Probe outcomes are tri-state (success / failure / not probed) and live
  // beside the frame; any transition counts as a change. An empty index
  // means probing did not run, i.e. every link is "not probed".
  const std::size_t links = topo_->link_count();
  for (std::size_t i = 0; i < links; ++i) {
    const std::optional<bool> cur =
        i < probe_by_link_.size() ? probe_by_link_[i] : std::nullopt;
    const std::optional<bool> was =
        i < prev.probe_by_link_.size() ? prev.probe_by_link_[i] : std::nullopt;
    if (cur != was) delta.probe.Set(i);
  }
}

std::optional<bool> NetworkSnapshot::ProbeSucceeded(net::LinkId e) const {
  if (probe_by_link_.empty()) return std::nullopt;
  HODOR_CHECK(e.valid() && e.value() < probe_by_link_.size());
  return probe_by_link_[e.value()];
}

}  // namespace hodor::telemetry
