// Shared fixtures and helpers for the Hodor test suite.
#pragma once

#include <cstdint>

#include "controlplane/pipeline.h"
#include "controlplane/services.h"
#include "flow/simulator.h"
#include "flow/tm_generators.h"
#include "net/state.h"
#include "net/topologies.h"
#include "telemetry/collector.h"
#include "util/rng.h"

namespace hodor::testing {

// A ready-to-use healthy network: topology, ground truth, demand routed on
// shortest paths, simulated flows, and an honest snapshot.
struct HealthyNetwork {
  net::Topology topo;
  net::GroundTruthState state;
  flow::DemandMatrix demand;
  flow::RoutingPlan plan;
  flow::SimulationResult sim;

  // `max_util`: demand is scaled so healthy shortest-path routing peaks at
  // this link utilisation (uncongested by default — drops would legitimately
  // violate the demand invariants).
  HealthyNetwork(net::Topology t, std::uint64_t seed, double max_util = 0.6)
      : topo(std::move(t)), state(topo) {
    util::Rng rng(seed);
    demand = flow::GravityDemand(topo, rng);
    flow::NormalizeToMaxUtilization(topo, max_util, demand);
    plan = flow::ShortestPathRouting(
        topo, demand, [this](net::LinkId e) { return state.LinkUsable(e); });
    sim = flow::SimulateFlow(topo, state, demand, plan);
  }

  // Collects an honest snapshot (optionally with a fault mutator).
  telemetry::NetworkSnapshot Snapshot(
      std::uint64_t seed = 1,
      const telemetry::SnapshotMutator& fault = nullptr,
      telemetry::CollectorOptions opts = {}) const {
    util::Rng rng(seed);
    telemetry::Collector collector(topo, opts);
    return collector.Collect(state, sim, /*epoch=*/0, rng, fault);
  }

  // Aggregates honest controller inputs from an honest snapshot.
  controlplane::ControllerInput Input(
      const telemetry::NetworkSnapshot& snapshot,
      std::uint64_t seed = 2,
      const controlplane::AggregationFaultHooks& hooks = {}) const {
    util::Rng rng(seed);
    return controlplane::AggregateInputs(topo, snapshot, demand, /*epoch=*/0,
                                         rng, {}, hooks);
  }
};

inline HealthyNetwork MakeAbilene(std::uint64_t seed = 7,
                                  double max_util = 0.6) {
  return HealthyNetwork(net::Abilene(), seed, max_util);
}

}  // namespace hodor::testing
