#!/bin/sh
# Regenerates the committed BENCH_overhead.json perf baseline at the repo
# root (run from anywhere).
#
# bench_overhead (E7, google-benchmark) exercises hardening / validation /
# collection across topology sizes; every iteration feeds the global
# metrics registry, and the bench dumps that registry — per-stage latency
# histograms included — as BENCH_overhead.json on exit. Committing the
# snapshot seeds the perf trajectory: future PRs rerun this script and
# diff the histograms.
#
#   HODOR_BENCH_MIN_TIME=0.5 ./scripts/bench_snapshot.sh   # steadier stats
set -e
cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j --target bench_overhead

# Short per-benchmark time by default: the snapshot's value is the shape of
# the histograms, not publication-grade means.
MIN_TIME="${HODOR_BENCH_MIN_TIME:-0.05}"
./build/bench/bench_overhead "--benchmark_min_time=${MIN_TIME}"

python3 -m json.tool BENCH_overhead.json > /dev/null
echo "bench_snapshot: BENCH_overhead.json refreshed"
