// Decision provenance: verdict accounting, first-failure lookup, JSON
// serialization.
#include <gtest/gtest.h>

#include "obs/json.h"
#include "obs/provenance.h"

namespace hodor::obs {
namespace {

InvariantRecord Make(const std::string& check, const std::string& invariant,
                     double residual, double threshold,
                     InvariantVerdict verdict, const std::string& detail = "") {
  InvariantRecord r;
  r.check = check;
  r.invariant = invariant;
  r.residual = residual;
  r.threshold = threshold;
  r.verdict = verdict;
  r.detail = detail;
  return r;
}

TEST(InvariantVerdict, Names) {
  EXPECT_EQ(InvariantVerdictName(InvariantVerdict::kPass), std::string("pass"));
  EXPECT_EQ(InvariantVerdictName(InvariantVerdict::kFail), std::string("fail"));
  EXPECT_EQ(InvariantVerdictName(InvariantVerdict::kSkipped),
            std::string("skipped"));
}

TEST(DecisionRecord, CountsByVerdict) {
  DecisionRecord d;
  d.Add(Make("demand", "ingress(a)", 0.01, 0.02, InvariantVerdict::kPass));
  d.Add(Make("demand", "egress(a)", 0.30, 0.02, InvariantVerdict::kFail));
  d.Add(Make("demand", "ingress(b)", 0.0, 0.02, InvariantVerdict::kSkipped,
             "counter unknown"));
  EXPECT_EQ(d.evaluated_count(), 2u);  // pass + fail; skipped not evaluated
  EXPECT_EQ(d.failed_count(), 1u);
  EXPECT_EQ(d.skipped_count(), 1u);
}

TEST(DecisionRecord, FirstFailureIsTheLeadRecord) {
  DecisionRecord d;
  EXPECT_EQ(d.FirstFailure(), nullptr);
  d.Add(Make("demand", "ingress(a)", 0.01, 0.02, InvariantVerdict::kPass));
  EXPECT_EQ(d.FirstFailure(), nullptr);
  d.Add(Make("topology", "link-state(a->b)", 0.9, 0.5,
             InvariantVerdict::kFail));
  d.Add(Make("drain", "drain-intent(c)", 1.0, 0.0, InvariantVerdict::kFail));
  const InvariantRecord* first = d.FirstFailure();
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->check, "topology");
  EXPECT_EQ(first->invariant, "link-state(a->b)");
}

TEST(InvariantRecord, ToJsonOmitsEmptyDetail) {
  const InvariantRecord bare =
      Make("demand", "ingress(a)", 0.5, 0.02, InvariantVerdict::kFail);
  const std::string json = bare.ToJson();
  EXPECT_TRUE(IsValidJson(json)) << json;
  EXPECT_EQ(json.find("\"detail\""), std::string::npos);

  const InvariantRecord detailed =
      Make("demand", "ingress(a)", 0.5, 0.02, InvariantVerdict::kFail,
           "rel_diff=50%");
  EXPECT_NE(detailed.ToJson().find("\"detail\":\"rel_diff=50%\""),
            std::string::npos);
}

TEST(DecisionRecord, ToJsonMatchesSchema) {
  DecisionRecord d;
  d.epoch = 9;
  d.accept = false;
  d.summary = "REJECT: 1 violations (demand:1)";
  d.Add(Make("demand", "egress(a)", 0.30, 0.02, InvariantVerdict::kFail,
             "rel_diff=30%"));
  d.Add(Make("drain", "drain-intent(b)", 0.0, 0.0, InvariantVerdict::kPass));

  const std::string json = d.ToJson();
  EXPECT_TRUE(IsValidJson(json)) << json;
  EXPECT_NE(json.find("\"epoch\":9"), std::string::npos);
  EXPECT_NE(json.find("\"accept\":false"), std::string::npos);
  EXPECT_NE(json.find("\"evaluated\":2"), std::string::npos);
  EXPECT_NE(json.find("\"failed\":1"), std::string::npos);
  EXPECT_NE(json.find("\"skipped\":0"), std::string::npos);
  EXPECT_NE(json.find("\"verdict\":\"fail\""), std::string::npos);
  EXPECT_NE(json.find("\"threshold\":0.02"), std::string::npos);
}

TEST(DecisionRecord, ToJsonEscapesSummary) {
  DecisionRecord d;
  d.summary = "quote \" and backslash \\";
  const std::string json = d.ToJson();
  EXPECT_TRUE(IsValidJson(json)) << json;
}

}  // namespace
}  // namespace hodor::obs
