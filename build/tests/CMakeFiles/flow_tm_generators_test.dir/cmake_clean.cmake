file(REMOVE_RECURSE
  "CMakeFiles/flow_tm_generators_test.dir/flow/tm_generators_test.cc.o"
  "CMakeFiles/flow_tm_generators_test.dir/flow/tm_generators_test.cc.o.d"
  "flow_tm_generators_test"
  "flow_tm_generators_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flow_tm_generators_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
