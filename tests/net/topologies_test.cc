#include "net/topologies.h"

#include <gtest/gtest.h>

#include "net/graph_algorithms.h"

namespace hodor::net {
namespace {

TEST(Abilene, MatchesSndlibShape) {
  const Topology topo = Abilene();
  EXPECT_EQ(topo.node_count(), 12u);       // 144-entry demand matrix (§4.1)
  EXPECT_EQ(topo.physical_link_count(), 15u);
  EXPECT_TRUE(topo.Validate().ok());
  EXPECT_TRUE(IsStronglyConnected(topo));
  EXPECT_EQ(topo.ExternalNodes().size(), 12u);
  EXPECT_TRUE(topo.FindNode("NYCMng").ok());
  EXPECT_TRUE(topo.FindNode("SNVAng").ok());
  // Spot-check a known link and a known non-link.
  const NodeId nyc = topo.FindNode("NYCMng").value();
  const NodeId wash = topo.FindNode("WASHng").value();
  const NodeId losa = topo.FindNode("LOSAng").value();
  EXPECT_TRUE(topo.FindLink(nyc, wash).ok());
  EXPECT_FALSE(topo.FindLink(nyc, losa).ok());
}

TEST(B4Like, ShapeAndConnectivity) {
  const Topology topo = B4Like();
  EXPECT_EQ(topo.node_count(), 12u);
  EXPECT_EQ(topo.physical_link_count(), 19u);
  EXPECT_TRUE(topo.Validate().ok());
  EXPECT_TRUE(IsStronglyConnected(topo));
}

TEST(GeantLike, ShapeAndConnectivity) {
  const Topology topo = GeantLike();
  EXPECT_EQ(topo.node_count(), 22u);
  EXPECT_EQ(topo.physical_link_count(), 37u);
  EXPECT_TRUE(topo.Validate().ok());
  EXPECT_TRUE(IsStronglyConnected(topo));
}

TEST(Figure3Triangle, ThreeNodesThreeLinks) {
  const Topology topo = Figure3Triangle();
  EXPECT_EQ(topo.node_count(), 3u);
  EXPECT_EQ(topo.physical_link_count(), 3u);
  EXPECT_EQ(topo.ExternalNodes().size(), 3u);
  EXPECT_TRUE(topo.FindLink(topo.FindNode("A").value(),
                            topo.FindNode("B").value())
                  .ok());
}

TEST(RegularShapes, LinkCounts) {
  EXPECT_EQ(Line(5).physical_link_count(), 4u);
  EXPECT_EQ(Ring(5).physical_link_count(), 5u);
  EXPECT_EQ(Star(5).physical_link_count(), 4u);
  EXPECT_EQ(FullMesh(5).physical_link_count(), 10u);
  EXPECT_EQ(Grid(2, 3).physical_link_count(), 7u);
}

TEST(RegularShapes, AllConnectedAndValid) {
  for (const Topology& topo :
       {Line(2), Ring(3), Star(4), FullMesh(3), Grid(3, 3)}) {
    EXPECT_TRUE(topo.Validate().ok()) << topo.name();
    EXPECT_TRUE(IsStronglyConnected(topo)) << topo.name();
  }
}

TEST(RegularShapes, PreconditionsEnforced) {
  EXPECT_THROW(Line(1), std::logic_error);
  EXPECT_THROW(Ring(2), std::logic_error);
  EXPECT_THROW(Star(1), std::logic_error);
  EXPECT_THROW(Grid(1, 1), std::logic_error);
}

TEST(RegularShapes, CustomDefaultsApplied) {
  TopologyDefaults d;
  d.link_capacity = 42.0;
  d.external_capacity = 17.0;
  const Topology topo = Ring(3, d);
  EXPECT_DOUBLE_EQ(topo.link(LinkId(0)).capacity, 42.0);
  EXPECT_DOUBLE_EQ(topo.node(NodeId(0)).external_capacity, 17.0);
}

TEST(Waxman, AlwaysConnectedAndDeterministic) {
  util::Rng rng1(5);
  util::Rng rng2(5);
  const Topology a = Waxman(20, rng1);
  const Topology b = Waxman(20, rng2);
  EXPECT_EQ(a.node_count(), 20u);
  EXPECT_TRUE(IsStronglyConnected(a));
  EXPECT_EQ(a.link_count(), b.link_count());  // same seed, same graph
  EXPECT_GE(a.physical_link_count(), 19u);    // at least the spanning tree
}

TEST(Waxman, HigherAlphaMeansMoreLinks) {
  util::Rng rng1(9);
  util::Rng rng2(9);
  const Topology sparse = Waxman(25, rng1, 0.1, 0.1);
  const Topology dense = Waxman(25, rng2, 0.9, 0.9);
  EXPECT_GT(dense.physical_link_count(), sparse.physical_link_count());
}

TEST(ErdosRenyi, ConnectedAtAnyP) {
  util::Rng rng(13);
  const Topology topo = ErdosRenyi(15, 0.0, rng);
  EXPECT_TRUE(IsStronglyConnected(topo));  // spanning tree guarantees it
  EXPECT_EQ(topo.physical_link_count(), 14u);
}

TEST(ErdosRenyi, FullProbabilityGivesCompleteGraph) {
  util::Rng rng(13);
  const Topology topo = ErdosRenyi(6, 1.0, rng);
  EXPECT_EQ(topo.physical_link_count(), 15u);  // C(6,2)
}

}  // namespace
}  // namespace hodor::net
