// The standardized drain protocol the paper proposes in §4.3:
//
//   "the right approach might be to standardize the drain process for
//    greater transparency through a mechanism that enables redundancy. One
//    approach may be to attach reasons to drain labels ... We could require
//    all drains to be link drains, as link drains contain natural
//    symmetry—both sides must agree that the link is drained. A node drain
//    would then simply drain all links. An announced link drain can be
//    validated by checking that the neighbor also announced a drain of
//    that link."
//
// This module implements that proposal end to end:
//   - every drain is a *link* drain carrying a DrainReason;
//   - a node drain is expressed as draining all of the node's links with
//     reason kNodeMaintenance;
//   - validation rules per reason:
//       kFaultyNeighbor    — Hodor checks the supposedly faulty link really
//                            is unhealthy (probe fails / statuses down);
//                            a healthy link refutes the drain;
//       kMaintenance /
//       kNodeMaintenance   — inherently operator intent; only symmetry is
//                            checked;
//       kAutomation        — must be corroborated by *some* evidence of
//                            trouble on the link (it was raised by a fault
//                            detector, so the fault should be observable);
//   - symmetry: both ends must announce the drain with a compatible reason.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/hardened_state.h"
#include "net/topology.h"
#include "telemetry/snapshot.h"

namespace hodor::core {

enum class DrainReason {
  kMaintenance,      // planned work on the link
  kNodeMaintenance,  // planned work on an endpoint router (node drain)
  kFaultyNeighbor,   // automation reacted to a misbehaving far end
  kAutomation,       // automation reacted to link-local trouble
};

constexpr const char* DrainReasonName(DrainReason r) {
  switch (r) {
    case DrainReason::kMaintenance: return "maintenance";
    case DrainReason::kNodeMaintenance: return "node-maintenance";
    case DrainReason::kFaultyNeighbor: return "faulty-neighbor";
    case DrainReason::kAutomation: return "automation";
  }
  return "?";
}

// One end's announcement that a directed link's physical link is drained.
struct DrainAnnouncement {
  net::LinkId link;       // the announcing end's outgoing direction
  DrainReason reason = DrainReason::kMaintenance;
};

// The full reason-annotated drain state of the network, as collected from
// routers (one announcement list per router; the snapshot carries the
// plain boolean signals, this carries the protocol's richer labels).
class DrainLedger {
 public:
  explicit DrainLedger(const net::Topology& topo);

  // Announces a drain from the src end of `link`.
  void Announce(net::LinkId link, DrainReason reason);

  // Announces a symmetric drain of the physical link (both ends).
  void AnnounceBoth(net::LinkId link, DrainReason reason);

  // Drains every link of `node` at both ends (the paper's "a node drain
  // would then simply drain all links").
  void AnnounceNodeDrain(net::NodeId node);

  std::optional<DrainReason> AnnouncementAt(net::LinkId link) const;

  // True when either end announced a drain of the physical link.
  bool PhysicalLinkDrained(net::LinkId link) const;

  // True when every link of the node is drained at both ends.
  bool NodeFullyDrained(const net::Topology& topo, net::NodeId node) const;

  std::size_t announcement_count() const;

 private:
  const net::Topology* topo_;
  std::vector<std::optional<DrainReason>> by_link_;
};

enum class DrainProtocolViolationKind {
  kAsymmetricAnnouncement,  // one end announced, the other did not
  kReasonMismatch,          // both announced, incompatible reasons
  kUnsubstantiatedFault,    // faulty-neighbor/automation but link healthy
};

struct DrainProtocolViolation {
  net::LinkId link;
  DrainProtocolViolationKind kind;
  std::string detail;

  std::string ToString(const net::Topology& topo) const;
};

struct DrainProtocolResult {
  std::vector<DrainProtocolViolation> violations;
  std::size_t validated_announcements = 0;
  bool ok() const { return violations.empty(); }
};

struct DrainProtocolOptions {
  // Confidence the hardened link verdict needs before it can refute a
  // faulty-neighbor/automation drain.
  double refute_confidence = 0.7;
};

// Validates a reason-annotated drain ledger against the hardened state.
DrainProtocolResult ValidateDrainLedger(const net::Topology& topo,
                                        const DrainLedger& ledger,
                                        const HardenedState& hardened,
                                        const DrainProtocolOptions& opts = {});

}  // namespace hodor::core
