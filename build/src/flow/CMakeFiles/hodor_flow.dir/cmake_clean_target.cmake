file(REMOVE_RECURSE
  "libhodor_flow.a"
)
