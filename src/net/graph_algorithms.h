// Graph algorithms over Topology: shortest paths (Dijkstra), K-shortest
// loopless paths (Yen), reachability, and the node-link incidence matrix
// used by the flow-conservation hardening step.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "net/ids.h"
#include "net/topology.h"
#include "util/matrix.h"
#include "util/status.h"

namespace hodor::net {

// A path is an ordered sequence of directed links; Path[i].dst ==
// Path[i+1].src. Empty paths are invalid (we never route a node to itself).
using Path = std::vector<LinkId>;

// Predicate selecting which directed links an algorithm may traverse.
// Algorithms treat filtered-out links as absent.
using LinkFilter = std::function<bool(LinkId)>;

// A filter admitting every link.
LinkFilter AllLinks();

// Total metric of a path.
double PathMetric(const Topology& topo, const Path& path);

// Source node of a path (precondition: non-empty, coherent path).
NodeId PathSource(const Topology& topo, const Path& path);
// Destination node of a path.
NodeId PathDestination(const Topology& topo, const Path& path);

// Checks that consecutive links share endpoints and no node repeats.
bool IsValidSimplePath(const Topology& topo, const Path& path);

// Dijkstra over link metrics. Returns NotFound when dst is unreachable
// through links admitted by `filter`.
util::StatusOr<Path> ShortestPath(const Topology& topo, NodeId src, NodeId dst,
                                  const LinkFilter& filter = AllLinks());

// Shortest-path metric from src to every node (unreachable -> +inf).
std::vector<double> ShortestPathMetrics(const Topology& topo, NodeId src,
                                        const LinkFilter& filter = AllLinks());

// Yen's algorithm: up to k loopless shortest paths, sorted by metric.
// Returns fewer than k when the graph does not contain that many.
std::vector<Path> KShortestPaths(const Topology& topo, NodeId src, NodeId dst,
                                 std::size_t k,
                                 const LinkFilter& filter = AllLinks());

// Nodes reachable from src over admitted links (BFS), including src.
std::vector<NodeId> ReachableFrom(const Topology& topo, NodeId src,
                                  const LinkFilter& filter = AllLinks());

// True when every node can reach every other over admitted links.
bool IsStronglyConnected(const Topology& topo,
                         const LinkFilter& filter = AllLinks());

// Node-link incidence matrix M: rows are nodes, columns are directed links;
// M[v][e] = +1 when e enters v, -1 when e leaves v, 0 otherwise. For a
// connected topology rank(M) == |V| - 1, which bounds how many unknown
// counters flow-conservation repair can recover (paper §4.1).
util::Matrix IncidenceMatrix(const Topology& topo);

}  // namespace hodor::net
