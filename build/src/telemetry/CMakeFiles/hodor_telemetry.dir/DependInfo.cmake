
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/telemetry/collector.cc" "src/telemetry/CMakeFiles/hodor_telemetry.dir/collector.cc.o" "gcc" "src/telemetry/CMakeFiles/hodor_telemetry.dir/collector.cc.o.d"
  "/root/repo/src/telemetry/probes.cc" "src/telemetry/CMakeFiles/hodor_telemetry.dir/probes.cc.o" "gcc" "src/telemetry/CMakeFiles/hodor_telemetry.dir/probes.cc.o.d"
  "/root/repo/src/telemetry/router_agent.cc" "src/telemetry/CMakeFiles/hodor_telemetry.dir/router_agent.cc.o" "gcc" "src/telemetry/CMakeFiles/hodor_telemetry.dir/router_agent.cc.o.d"
  "/root/repo/src/telemetry/self_correction.cc" "src/telemetry/CMakeFiles/hodor_telemetry.dir/self_correction.cc.o" "gcc" "src/telemetry/CMakeFiles/hodor_telemetry.dir/self_correction.cc.o.d"
  "/root/repo/src/telemetry/signal_catalog.cc" "src/telemetry/CMakeFiles/hodor_telemetry.dir/signal_catalog.cc.o" "gcc" "src/telemetry/CMakeFiles/hodor_telemetry.dir/signal_catalog.cc.o.d"
  "/root/repo/src/telemetry/snapshot.cc" "src/telemetry/CMakeFiles/hodor_telemetry.dir/snapshot.cc.o" "gcc" "src/telemetry/CMakeFiles/hodor_telemetry.dir/snapshot.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/flow/CMakeFiles/hodor_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/hodor_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hodor_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
