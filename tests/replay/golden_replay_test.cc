// Golden replay regression: a tiny recorded Abilene run (5 epochs, one
// injected demand-aggregation fault at epoch 2) is checked in under
// tests/data/. Replaying it must reproduce every recorded verdict
// fingerprint bit-for-bit — any validator change that moves a residual,
// threshold, or verdict on this log fails here first, with a precise diff.
//
// Regenerate (only when the wire format or validator intentionally
// changes):
//   ./build/examples/hodor_replay record tests/data/golden_abilene.hlog
//       --topo=abilene --epochs=5 --seed=7 --fault-epoch=2
//   (one command line; flags continue the record subcommand)
#include <gtest/gtest.h>

#include "replay/epoch_log.h"
#include "replay/replayer.h"

namespace hodor {
namespace {

std::string GoldenPath() {
  return std::string(HODOR_SOURCE_DIR) + "/tests/data/golden_abilene.hlog";
}

TEST(GoldenReplay, LogStructureMatchesTheRecordedRun) {
  replay::EpochLogReader reader;
  const util::Status opened = reader.Open(GoldenPath());
  ASSERT_TRUE(opened.ok()) << opened.ToString();
  EXPECT_EQ(reader.format_version(), replay::kFormatVersion);
  EXPECT_TRUE(reader.had_index());
  EXPECT_FALSE(reader.tail_truncated());
  ASSERT_EQ(reader.epoch_count(), 5u);
  EXPECT_EQ(reader.topology().name(), "abilene");

  // The injected fault epoch is the one rejected (and replaced by
  // fallback); every other epoch was accepted.
  for (std::size_t i = 0; i < 5; ++i) {
    auto rec = reader.Read(i);
    ASSERT_TRUE(rec.ok()) << rec.status().ToString();
    EXPECT_TRUE(rec.value().verdict.validated);
    EXPECT_EQ(rec.value().verdict.accept, i != 2) << "epoch " << i;
    EXPECT_EQ(rec.value().verdict.used_fallback, i == 2) << "epoch " << i;
    EXPECT_NE(rec.value().verdict.decision_digest, 0u);
  }
  auto faulty = reader.Seek(2);
  ASSERT_TRUE(faulty.ok());
  EXPECT_GT(faulty.value().verdict.failed, 0u);
}

TEST(GoldenReplay, VerdictFingerprintsReproduceBitForBit) {
  const replay::Replayer replayer;
  auto report_or = replayer.ReplayFile(GoldenPath());
  ASSERT_TRUE(report_or.ok()) << report_or.status().ToString();
  const replay::ReplayReport& report = report_or.value();
  EXPECT_EQ(report.epochs_replayed, 5u);
  EXPECT_TRUE(report.clean())
      << report.Summary()
      << " — the validator's decisions changed on the golden log; if the "
         "change is intentional, regenerate tests/data/golden_abilene.hlog "
         "(see the header of this file)";
  EXPECT_EQ(report.verdict_flips, 0u);
}

}  // namespace
}  // namespace hodor
