// E15 — fleet mode: aggregate validation throughput as the instance count
// grows over one shared pool (DESIGN §13).
//
// A fleet of N independent validation instances (rotating through the
// mixed acceptance topologies: abilene, waxman100, hier400) runs to
// completion in rounds over one util::ThreadPool, at N = 1, 2, 4, 8 and
// pool widths 1 and min(4, hardware). Reported per cell: aggregate
// epochs/sec (total epochs / wall-clock of all rounds), per-round
// scheduling overhead, and — the contract that makes the numbers
// trustworthy — whether every instance's digest stream matched a
// standalone run of the same spec bit for bit.
//
// The shared pool parallelises ACROSS instances (one task per instance
// per round; intra-instance stages stay serial), so threads > 1 can only
// help when the host has more than one core. On a single-CPU host the
// bench reports both widths and enforces only digest parity, which holds
// at any width by construction.
//
// Pass: zero digest divergence anywhere. Throughput rows are recorded to
// BENCH_fleet.json (hardware_threads stamped) for bench_compare.sh.
#include <cstddef>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "fleet/fleet.h"
#include "util/logging.h"

namespace {

using namespace hodor;

constexpr std::uint64_t kEpochsPerInstance = 6;
const char* kMix[] = {"abilene", "waxman100", "hier400"};
const char* kScenarioRotation[] = {"phantom-links", "", ""};

std::vector<fleet::InstanceSpec> MakeSpecs(std::size_t count) {
  std::vector<fleet::InstanceSpec> specs;
  constexpr std::size_t kMixSize = sizeof(kMix) / sizeof(kMix[0]);
  constexpr std::size_t kRotation =
      sizeof(kScenarioRotation) / sizeof(kScenarioRotation[0]);
  for (std::size_t i = 0; i < count; ++i) {
    fleet::InstanceSpec spec;
    spec.topology = kMix[i % kMixSize];
    spec.name = std::string(spec.topology) + "-" + std::to_string(i);
    spec.seed = 100 + i;
    spec.epochs = kEpochsPerInstance;
    spec.scenario = kScenarioRotation[i % kRotation];
    specs.push_back(std::move(spec));
  }
  return specs;
}

struct Cell {
  std::size_t instances = 0;
  std::size_t threads = 0;
  std::size_t rounds = 0;
  std::uint64_t epochs = 0;
  double eps = 0.0;  // aggregate epochs/sec
  bool digests_match = true;
};

Cell RunCell(std::size_t instance_count, std::size_t threads) {
  fleet::FleetOptions opts;
  opts.threads = threads;
  fleet::FleetManager manager(opts);
  const std::vector<fleet::InstanceSpec> specs = MakeSpecs(instance_count);
  for (const auto& spec : specs) manager.AddInstance(spec);
  manager.RunAll();

  Cell cell;
  cell.instances = instance_count;
  cell.threads = manager.threads();
  cell.rounds = manager.rounds();
  cell.epochs = manager.epochs_total();
  cell.eps = manager.aggregate_epochs_per_sec();
  for (const auto& instance : manager.instances()) {
    if (fleet::StandaloneDigests(instance->spec()) != instance->digests()) {
      cell.digests_match = false;
    }
  }
  return cell;
}

}  // namespace

int main() {
  using namespace hodor;
  util::Logger::Instance().SetMinLevel(util::LogLevel::kError);

  const unsigned hardware_threads = std::thread::hardware_concurrency();
  const std::size_t wide = hardware_threads >= 4
                               ? 4
                               : (hardware_threads >= 2 ? hardware_threads : 1);
  bench::PrintHeader(
      "fleet",
      "aggregate fleet throughput vs instance count (DESIGN §13, E15)",
      "mix abilene/waxman100/hier400 seeds 100+i, " +
          std::to_string(kEpochsPerInstance) +
          " epochs per instance, pool width" +
          (wide > 1 ? "s 1 and " + std::to_string(wide) : std::string(" 1")) +
          "; pass: every instance digest-identical to its standalone run");

  std::vector<std::size_t> widths = {1};
  if (wide > 1) widths.push_back(wide);

  util::TablePrinter table({"instances", "threads", "rounds", "epochs",
                            "agg epochs/s", "digests"});
  std::ostringstream reports;
  reports << "[";
  bool all_match = true;
  bool first = true;
  for (std::size_t width : widths) {
    for (std::size_t count : {1, 2, 4, 8}) {
      const Cell cell = RunCell(count, width);
      all_match = all_match && cell.digests_match;
      table.AddRowValues(cell.instances, cell.threads, cell.rounds,
                         cell.epochs, util::FormatDouble(cell.eps, 2),
                         cell.digests_match ? "match" : "DIVERGED");
      reports << (first ? "" : ",") << "{\"instances\":" << cell.instances
              << ",\"threads\":" << cell.threads
              << ",\"rounds\":" << cell.rounds
              << ",\"epochs\":" << cell.epochs
              << ",\"aggregate_epochs_per_sec\":" << obs::JsonNumber(cell.eps)
              << ",\"digests_match\":"
              << (cell.digests_match ? "true" : "false") << "}";
      first = false;
    }
  }
  reports << "]";
  std::cout << table.ToString();
  std::cout << "fleet digests "
            << (all_match ? "bit-identical to standalone runs everywhere"
                          : "DIVERGED from standalone runs")
            << "\n";
  if (hardware_threads < 2) {
    std::cout << "single hardware thread: inter-instance overlap cannot "
                 "speed up wall-clock here; digest parity remains the hard "
                 "gate\n";
  }
  bench::DumpObsSnapshot("fleet", reports.str());
  return all_match ? 0 : 1;
}
