// Traffic-matrix generators.
//
// The paper's §4.1 experiment uses demand matrices for the Abilene network
// (SNDlib). The SNDlib measurement archive is not redistributable here, so
// we synthesise matrices with the standard gravity model (the canonical
// generative model for WAN TMs — Tune & Roughan 2013) plus uniform,
// bimodal, and hotspot variants, all seeded and reproducible. Detection
// accuracy in the paper's experiment depends on the invariant structure
// (matrix shape and which entries are non-zero), not the exact values, so
// gravity-model matrices preserve the experiment's behaviour (DESIGN.md §2).
#pragma once

#include "flow/demand_matrix.h"
#include "net/topology.h"
#include "util/rng.h"

namespace hodor::flow {

struct GravityOptions {
  // Total network demand as a fraction of the sum of external capacities.
  double load_fraction = 0.25;
  // Node "masses" are drawn Pareto(1, alpha): heavy-tailed like real PoPs.
  double mass_alpha = 1.2;
};

// Gravity model: D(i,j) ∝ mass(i)·mass(j) for i≠j over external nodes,
// scaled so the total equals load_fraction · Σ external capacities / 2.
DemandMatrix GravityDemand(const net::Topology& topo, util::Rng& rng,
                           const GravityOptions& opts = {});

// Every external ordered pair gets the same rate `gbps_per_pair`.
DemandMatrix UniformDemand(const net::Topology& topo, double gbps_per_pair);

// Each external pair is "small" with rate lo or, with probability p_hi,
// "large" with rate hi. Models mouse/elephant mixes.
DemandMatrix BimodalDemand(const net::Topology& topo, util::Rng& rng,
                           double lo, double hi, double p_hi = 0.2);

// Uniform background plus `hotspot_count` random pairs carrying
// `hotspot_gbps` each. Models flash events.
DemandMatrix HotspotDemand(const net::Topology& topo, util::Rng& rng,
                           double background_gbps, std::size_t hotspot_count,
                           double hotspot_gbps);

// Scales `d` so that the maximum ingress row-sum equals
// `fraction` of that node's external capacity (keeps admission feasible).
void NormalizeToExternalCapacity(const net::Topology& topo, double fraction,
                                 DemandMatrix& d);

// Scales `d` so that routing it on shortest paths over the full (healthy)
// topology produces a maximum link utilisation of `target_max_util`.
// Healthy-network fixtures use this so that "no fault" also means "no
// congestion" — drops would legitimately break the demand invariants.
void NormalizeToMaxUtilization(const net::Topology& topo,
                               double target_max_util, DemandMatrix& d);

}  // namespace hodor::flow
