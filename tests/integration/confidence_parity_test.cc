// Confidence-column parity (DESIGN.md §12 + §14): the incremental
// hardening path must leave every confidence output — per-rate confidence
// with its repair provenance, link-state confidence, drain liveness
// confidence, and per-node scalar confidence — bit-identical to a full
// recompute, across the §2 outage scenario catalog, at serial and
// parallel thread counts. Digest equality (delta_equivalence_test)
// already covers what reaches provenance records; this test compares the
// HardenedState columns themselves, including ones no check happened to
// read this epoch.
#include <bit>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "core/hardening.h"
#include "faults/scenario_catalog.h"
#include "flow/routing.h"
#include "flow/simulator.h"
#include "flow/tm_generators.h"
#include "net/topologies.h"
#include "obs/metrics.h"
#include "telemetry/collector.h"

namespace hodor {
namespace {

constexpr std::uint64_t kEpochs = 6;
constexpr std::uint64_t kFaultStart = 2;  // window [kFaultStart, kFaultEnd)
constexpr std::uint64_t kFaultEnd = 4;

bool SameBits(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

// The per-epoch snapshot sequence one scenario produces: honest epochs,
// fault onset (ground-truth setup + router-signal corruption), recovery.
// Shared verbatim by both arms so any divergence is the engine's doing.
std::vector<telemetry::NetworkSnapshot> CollectScenario(
    const net::Topology& topo, const faults::OutageScenario& scenario,
    const flow::DemandMatrix& demand) {
  telemetry::CollectorOptions copts;
  copts.probes.false_loss_rate = 0.0;
  const telemetry::Collector collector(topo, copts);

  net::GroundTruthState state(topo);
  const flow::RoutingPlan plan =
      flow::ShortestPathRouting(topo, demand, net::AllLinks());
  std::vector<telemetry::NetworkSnapshot> snaps;
  for (std::uint64_t epoch = 0; epoch < kEpochs; ++epoch) {
    const bool faulted = epoch >= kFaultStart && epoch < kFaultEnd;
    if (epoch == kFaultStart && scenario.setup) scenario.setup(state);
    const flow::SimulationResult sim =
        flow::SimulateFlow(topo, state, demand, plan);
    util::Rng rng(9000 + 37 * epoch);
    snaps.push_back(collector.Collect(
        state, sim, epoch, rng, faulted ? scenario.snapshot_fault : nullptr));
  }
  return snaps;
}

void ExpectConfidenceColumnsIdentical(const core::HardenedState& inc,
                                      const core::HardenedState& full,
                                      const std::string& context) {
  ASSERT_EQ(inc.rates.size(), full.rates.size()) << context;
  for (std::size_t e = 0; e < inc.rates.size(); ++e) {
    const auto& a = inc.rates[e];
    const auto& b = full.rates[e];
    EXPECT_TRUE(SameBits(a.confidence, b.confidence))
        << context << " link " << e << ": rate confidence " << a.confidence
        << " vs " << b.confidence;
    EXPECT_EQ(a.repair_source, b.repair_source) << context << " link " << e;
    EXPECT_TRUE(SameBits(a.repair_residual, b.repair_residual))
        << context << " link " << e << ": repair residual";
  }
  ASSERT_EQ(inc.links.size(), full.links.size()) << context;
  for (std::size_t e = 0; e < inc.links.size(); ++e) {
    EXPECT_TRUE(
        SameBits(inc.links[e].confidence, full.links[e].confidence))
        << context << " link " << e << ": link-state confidence";
  }
  ASSERT_EQ(inc.drains.size(), full.drains.size()) << context;
  for (std::size_t v = 0; v < inc.drains.size(); ++v) {
    EXPECT_TRUE(SameBits(inc.drains[v].liveness_confidence,
                         full.drains[v].liveness_confidence))
        << context << " node " << v << ": liveness confidence";
  }
  ASSERT_EQ(inc.scalar_confidence.size(), full.scalar_confidence.size())
      << context;
  for (std::size_t v = 0; v < inc.scalar_confidence.size(); ++v) {
    EXPECT_TRUE(
        SameBits(inc.scalar_confidence[v], full.scalar_confidence[v]))
        << context << " node " << v << ": scalar confidence "
        << inc.scalar_confidence[v] << " vs " << full.scalar_confidence[v];
  }
}

TEST(ConfidenceParity, DeltaPathMatchesFullAcrossScenarioCatalog) {
  const net::Topology topo = net::Abilene();
  const faults::ScenarioCatalog catalog(topo);

  util::Rng rng(77);
  flow::DemandMatrix demand = flow::GravityDemand(topo, rng);
  flow::NormalizeToMaxUtilization(topo, 0.35, demand);

  double incremental_runs = 0.0;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    for (const auto& scenario : catalog.scenarios()) {
      const auto snaps = CollectScenario(topo, scenario, demand);

      obs::MetricsRegistry metrics;
      core::HardeningOptions iopts;
      iopts.num_threads = threads;
      iopts.metrics = &metrics;
      const core::HardeningEngine inc_engine(iopts);
      core::HardeningOptions fopts;
      fopts.num_threads = threads;
      const core::HardeningEngine full_engine(fopts);

      core::HardenedState inc;
      telemetry::FrameDelta delta;
      for (std::uint64_t epoch = 0; epoch < kEpochs; ++epoch) {
        const telemetry::FrameDelta* dp = nullptr;
        if (epoch > 0) {
          delta.Reset(topo.link_count(), topo.node_count());
          snaps[epoch].DiffAgainst(snaps[epoch - 1], delta);
          dp = &delta;
        }
        inc_engine.HardenInto(snaps[epoch], inc, dp);
        const core::HardenedState full = full_engine.Harden(snaps[epoch]);
        ExpectConfidenceColumnsIdentical(
            inc, full,
            scenario.id + " t" + std::to_string(threads) + " epoch " +
                std::to_string(epoch));
      }
      const obs::Counter* c =
          metrics.FindCounter("hodor_hardening_incremental_runs_total", {});
      incremental_runs += c ? c->value() : 0.0;
    }
  }
  // The parity above is vacuous if every epoch fell back to full.
  EXPECT_GT(incremental_runs, 0.0);
}

}  // namespace
}  // namespace hodor
