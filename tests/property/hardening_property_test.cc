// Property sweeps for the hardening engine across topologies, seeds, and
// corruption patterns (parameterized gtest).
//
// Invariants enforced:
//   P1  soundness: honest jittered snapshots never get flagged;
//   P2  idempotence-ish: hardening never *invents* disagreement — every
//       agreeing pair's hardened value lies between the two measurements;
//   P3  detection: any single-sided corruption beyond τ_h on a loaded link
//       is flagged;
//   P4  repair correctness: with isolated corruption on distinct routers
//       (k small), repaired values match ground truth within tolerance;
//   P5  repairs never produce negative rates;
//   P6  link verdicts match physical truth on honest snapshots.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/hardening.h"
#include "faults/snapshot_faults.h"
#include "test_util.h"
#include "util/stats.h"

namespace hodor::core {
namespace {

using net::LinkId;
using net::NodeId;

struct TopologyCase {
  std::string name;
  std::function<net::Topology(std::uint64_t)> make;
};

std::vector<TopologyCase> Topologies() {
  return {
      {"abilene", [](std::uint64_t) { return net::Abilene(); }},
      {"b4like", [](std::uint64_t) { return net::B4Like(); }},
      {"geantlike", [](std::uint64_t) { return net::GeantLike(); }},
      {"waxman20",
       [](std::uint64_t seed) {
         util::Rng rng(seed);
         return net::Waxman(20, rng);
       }},
      {"grid4x4",
       [](std::uint64_t) { return net::Grid(4, 4); }},
  };
}

struct Case {
  std::string topo_name;
  std::uint64_t seed;
};

class HardeningProperties : public ::testing::TestWithParam<Case> {
 protected:
  testing::HealthyNetwork MakeNet() const {
    const Case& c = GetParam();
    for (const TopologyCase& t : Topologies()) {
      if (t.name == c.topo_name) {
        return testing::HealthyNetwork(t.make(c.seed), c.seed);
      }
    }
    throw std::logic_error("unknown topology " + c.topo_name);
  }

  static telemetry::CollectorOptions Copts() {
    telemetry::CollectorOptions copts;
    copts.probes.false_loss_rate = 0.0;
    return copts;
  }
};

TEST_P(HardeningProperties, P1SoundnessNoFalseFlags) {
  auto net = MakeNet();
  const auto snap = net.Snapshot(GetParam().seed, nullptr, Copts());
  const HardenedState hs = HardeningEngine().Harden(snap);
  EXPECT_EQ(hs.flagged_rate_count, 0u);
  EXPECT_EQ(hs.unknown_rate_count, 0u);
  EXPECT_EQ(hs.status_disagreement_count, 0u);
}

TEST_P(HardeningProperties, P2AgreeingValuesBracketedByMeasurements) {
  auto net = MakeNet();
  const auto snap = net.Snapshot(GetParam().seed, nullptr, Copts());
  const HardenedState hs = HardeningEngine().Harden(snap);
  for (LinkId e : net.topo.LinkIds()) {
    const HardenedRate& r = hs.rates[e.value()];
    ASSERT_EQ(r.origin, RateOrigin::kAgreeing);
    const double lo = std::min(*snap.TxRate(e), *snap.RxRate(e));
    const double hi = std::max(*snap.TxRate(e), *snap.RxRate(e));
    EXPECT_GE(*r.value, lo - 1e-12);
    EXPECT_LE(*r.value, hi + 1e-12);
  }
}

TEST_P(HardeningProperties, P3SingleCorruptionAlwaysFlagged) {
  auto net = MakeNet();
  util::Rng rng(GetParam().seed ^ 0xfeed);
  // Pick a loaded link; corrupt one side by 30%.
  std::vector<LinkId> busy;
  for (LinkId e : net.topo.LinkIds()) {
    if (net.sim.carried[e.value()] > 1.0) busy.push_back(e);
  }
  ASSERT_FALSE(busy.empty());
  const LinkId victim = busy[rng.Index(busy.size())];
  const auto side =
      rng.Bernoulli(0.5) ? faults::CounterSide::kTx : faults::CounterSide::kRx;
  const auto snap = net.Snapshot(
      GetParam().seed,
      faults::CorruptLinkCounter(victim, side,
                                 faults::CounterCorruption::kScale, 1.3),
      Copts());
  const HardenedState hs = HardeningEngine().Harden(snap);
  EXPECT_TRUE(hs.rates[victim.value()].flagged);
}

TEST_P(HardeningProperties, P4IsolatedCorruptionRepairedAccurately) {
  auto net = MakeNet();
  util::Rng rng(GetParam().seed ^ 0xbeef);
  // Two corrupted TX counters on links not sharing any endpoint: the
  // isolated-incorrect-counter assumption of the paper's repair argument.
  std::vector<LinkId> busy;
  for (LinkId e : net.topo.LinkIds()) {
    if (net.sim.carried[e.value()] > 1.0) busy.push_back(e);
  }
  std::vector<LinkId> victims;
  for (LinkId e : busy) {
    const net::Link& l = net.topo.link(e);
    const bool disjoint = std::all_of(
        victims.begin(), victims.end(), [&](LinkId v) {
          const net::Link& lv = net.topo.link(v);
          return lv.src != l.src && lv.src != l.dst && lv.dst != l.src &&
                 lv.dst != l.dst;
        });
    if (disjoint) victims.push_back(e);
    if (victims.size() == 2) break;
  }
  ASSERT_GE(victims.size(), 1u);
  std::vector<telemetry::SnapshotMutator> muts;
  for (LinkId v : victims) {
    muts.push_back(faults::CorruptLinkCounter(
        v, faults::CounterSide::kTx, faults::CounterCorruption::kZero));
  }
  const auto snap = net.Snapshot(GetParam().seed,
                                 faults::ComposeFaults(std::move(muts)),
                                 Copts());
  const HardenedState hs = HardeningEngine().Harden(snap);
  for (LinkId v : victims) {
    const HardenedRate& r = hs.rates[v.value()];
    ASSERT_TRUE(r.value.has_value()) << net.topo.LinkName(v);
    EXPECT_TRUE(util::WithinRelativeTolerance(
        *r.value, net.sim.carried[v.value()], 0.05))
        << net.topo.LinkName(v) << ": " << *r.value << " vs "
        << net.sim.carried[v.value()];
  }
}

TEST_P(HardeningProperties, P5RepairsNeverNegative) {
  auto net = MakeNet();
  util::Rng rng(GetParam().seed ^ 0xabc);
  // Heavy random corruption; whatever comes back must be >= 0.
  std::vector<telemetry::SnapshotMutator> muts;
  for (LinkId e : net.topo.LinkIds()) {
    if (!rng.Bernoulli(0.3)) continue;
    muts.push_back(faults::CorruptLinkCounter(
        e, faults::CounterSide::kTx, faults::CounterCorruption::kAbsolute,
        rng.Uniform(0.0, 200.0)));
  }
  const auto snap = net.Snapshot(GetParam().seed,
                                 faults::ComposeFaults(std::move(muts)),
                                 Copts());
  const HardenedState hs = HardeningEngine().Harden(snap);
  for (const HardenedRate& r : hs.rates) {
    if (r.value) {
      EXPECT_GE(*r.value, 0.0);
    }
  }
}

TEST_P(HardeningProperties, P6HonestVerdictsMatchPhysicalTruth) {
  auto net = MakeNet();
  util::Rng rng(GetParam().seed ^ 0x123);
  // Take down a few links (honestly reported).
  for (LinkId e : net.topo.LinkIds()) {
    if (net.topo.link(e).reverse.value() < e.value()) continue;
    if (rng.Bernoulli(0.15)) net.state.SetLinkUp(e, false);
  }
  net.sim = flow::SimulateFlow(net.topo, net.state, net.demand, net.plan);
  const auto snap = net.Snapshot(GetParam().seed, nullptr, Copts());
  const HardenedState hs = HardeningEngine().Harden(snap);
  for (LinkId e : net.topo.LinkIds()) {
    const bool truly_up = net.state.LinkPhysicallyUsable(e);
    EXPECT_EQ(hs.links[e.value()].verdict,
              truly_up ? LinkVerdict::kUp : LinkVerdict::kDown)
        << net.topo.LinkName(e);
  }
}

std::vector<Case> AllCases() {
  std::vector<Case> cases;
  for (const TopologyCase& t : Topologies()) {
    for (std::uint64_t seed : {101u, 202u, 303u}) {
      cases.push_back(Case{t.name, seed});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, HardeningProperties,
                         ::testing::ValuesIn(AllCases()),
                         [](const auto& info) {
                           return info.param.topo_name + "_s" +
                                  std::to_string(info.param.seed);
                         });

}  // namespace
}  // namespace hodor::core
