// The /dashboard page: one embedded HTML file, zero external assets.
//
// Everything the page needs ships inline — styles, SVG sparkline
// rendering, and fetch-based auto-refresh against the sibling JSON
// endpoints (/query, /slo, /trace, /alerts, /healthz, /buildz). No
// external src=/href= URLs by contract: check_build.sh --dashboard-gate
// and the integration tests fail the build if one appears.
//
// Visual conventions (see DESIGN §11): single-series sparklines in the
// categorical slot-1 blue with the card title naming the series (no
// legend needed for one series); SLO stat tiles pair a status color with
// a glyph + text so state is never color-alone; the detection scoreboard
// is a plain table (the accessible fallback view); the critical-path
// bars use one hue because they encode one measure. Light and dark
// palettes are both explicit steps validated against their surfaces.
#pragma once

namespace hodor::obs {

inline constexpr const char kDashboardHtml[] = R"dash(<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>Hodor validation observatory</title>
<style>
:root {
  color-scheme: light;
  --surface: #fcfcfb;
  --page: #f9f9f7;
  --ink: #0b0b0b;
  --ink-2: #52514e;
  --muted: #898781;
  --grid: #e1e0d9;
  --baseline: #c3c2b7;
  --border: rgba(11,11,11,0.10);
  --series-1: #2a78d6;
  --status-good: #0ca30c;
  --status-warning: #fab219;
  --status-serious: #ec835a;
  --status-critical: #d03b3b;
}
@media (prefers-color-scheme: dark) {
  :root {
    color-scheme: dark;
    --surface: #1a1a19;
    --page: #0d0d0d;
    --ink: #ffffff;
    --ink-2: #c3c2b7;
    --muted: #898781;
    --grid: #2c2c2a;
    --baseline: #383835;
    --border: rgba(255,255,255,0.10);
    --series-1: #3987e5;
  }
}
* { box-sizing: border-box; }
body {
  margin: 0; padding: 16px 20px; background: var(--page); color: var(--ink);
  font: 13px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif;
}
h1 { font-size: 16px; font-weight: 600; margin: 0; }
h2 { font-size: 12px; font-weight: 600; color: var(--ink-2);
     text-transform: uppercase; letter-spacing: .04em; margin: 22px 0 8px; }
header { display: flex; align-items: baseline; gap: 14px; flex-wrap: wrap; }
#build { color: var(--muted); font-size: 12px; }
#status { color: var(--muted); font-size: 12px; margin-left: auto; }
.tiles { display: flex; gap: 10px; flex-wrap: wrap; }
.tile {
  background: var(--surface); border: 1px solid var(--border);
  border-radius: 8px; padding: 10px 14px; min-width: 150px;
}
.tile .label { color: var(--ink-2); font-size: 11px; }
.tile .value { font-size: 22px; font-weight: 600; margin: 2px 0; }
.tile .target { color: var(--muted); font-size: 11px; }
.tile .state { font-size: 11px; font-weight: 600; }
.state.ok { color: var(--status-good); }
.state.breach { color: var(--status-critical); }
.cards { display: grid; gap: 10px;
         grid-template-columns: repeat(auto-fill, minmax(250px, 1fr)); }
.card {
  background: var(--surface); border: 1px solid var(--border);
  border-radius: 8px; padding: 8px 12px 10px;
}
.card .name { color: var(--ink-2); font-size: 11px; overflow: hidden;
              text-overflow: ellipsis; white-space: nowrap; }
.card .reading { font-size: 13px; font-weight: 600;
                 font-variant-numeric: tabular-nums; }
.card svg { display: block; width: 100%; height: 48px; margin-top: 4px; }
.spark-line { fill: none; stroke: var(--series-1); stroke-width: 2;
              stroke-linejoin: round; stroke-linecap: round; }
.spark-band { fill: var(--series-1); opacity: .14; }
.spark-base { stroke: var(--grid); stroke-width: 1; }
.spark-dot { fill: var(--series-1); }
.spark-hover { stroke: var(--baseline); stroke-width: 1; }
.res { display: inline-flex; gap: 0; margin-left: 10px; border: 1px solid
       var(--border); border-radius: 6px; overflow: hidden; }
.res button {
  border: 0; background: var(--surface); color: var(--ink-2);
  font: inherit; font-size: 11px; padding: 2px 10px; cursor: pointer;
}
.res button.on { background: var(--series-1); color: #fff; }
table { border-collapse: collapse; background: var(--surface);
        border: 1px solid var(--border); border-radius: 8px; }
th, td { padding: 5px 12px; text-align: right; font-size: 12px;
         font-variant-numeric: tabular-nums; border-top: 1px solid var(--grid); }
th { color: var(--ink-2); font-weight: 600; border-top: 0; }
th:first-child, td:first-child,
th:nth-child(2), td:nth-child(2) { text-align: left; }
.bars .row { display: flex; align-items: center; gap: 8px; margin: 3px 0; }
.bars .stage { width: 130px; color: var(--ink-2); font-size: 12px;
               text-align: right; }
.bars .track { flex: 1; }
.bars svg { display: block; width: 100%; height: 14px; }
.bars rect { fill: var(--series-1); }
.bars .ms { width: 90px; font-variant-numeric: tabular-nums; font-size: 12px; }
.chips { display: flex; gap: 6px; flex-wrap: wrap; }
.chip { border: 1px solid var(--border); background: var(--surface);
        border-radius: 10px; padding: 2px 10px; font-size: 12px; }
.chip .glyph { font-weight: 700; }
.sev-critical .glyph { color: var(--status-critical); }
.sev-warning .glyph { color: var(--status-warning); }
.sev-info .glyph { color: var(--series-1); }
.empty { color: var(--muted); font-size: 12px; }
</style>
</head>
<body>
<header>
  <h1>Hodor validation observatory</h1>
  <span id="build">…</span>
  <span id="status">connecting…</span>
</header>

<h2>Detection SLOs</h2>
<div class="tiles" id="slo-tiles"><span class="empty">no data yet</span></div>

<h2>Active faults</h2>
<div class="chips" id="faults"><span class="empty">none</span></div>

<h2>Signal trust — worst sources
  <span class="res" id="res-toggle"></span></h2>
<div class="cards" id="trust"><span class="empty">no series yet</span></div>

<h2>Hardened-input confidence</h2>
<div class="cards" id="confidence"><span class="empty">no series yet</span></div>

<h2>Detection scoreboard</h2>
<div id="scoreboard"><span class="empty">no fault episodes yet</span></div>

<h2>Incremental validation</h2>
<div class="cards" id="delta"><span class="empty">no incremental epochs yet</span></div>

<h2>Epoch critical path (latest epoch)</h2>
<div class="bars" id="critpath"><span class="empty">no trace yet</span></div>

<h2>Alerts</h2>
<div class="chips" id="alerts"><span class="empty">none</span></div>

<h2>Fleet</h2>
<div id="fleet"><span class="empty">not running in fleet mode</span></div>

<script>
"use strict";
const RESOLUTIONS = ["raw", "10", "100"];
let resolution = "raw";
let timer = null;

function el(id) { return document.getElementById(id); }
function esc(s) {
  return String(s).replace(/[&<>"]/g, c => ({
    "&": "&amp;", "<": "&lt;", ">": "&gt;", '"': "&quot;" }[c]));
}
async function getJson(path) {
  const r = await fetch(path, { cache: "no-store" });
  if (!r.ok) throw new Error(path + " -> " + r.status);
  return r.json();
}
function fmt(v, digits) {
  if (v === null || v === undefined || Number.isNaN(v)) return "–";
  return Number(v).toFixed(digits === undefined ? 2 : digits)
      .replace(/\.?0+$/, s => s.includes(".") || s === "0" ? "" : s) || "0";
}

// points: [{epoch, value, lo, hi}] oldest first. Returns an inline SVG
// sparkline: optional min/max band (aggregate resolutions), 2px line,
// baseline hairline, a dot + crosshair readout on hover.
function spark(points, readoutEl) {
  const W = 240, H = 48, PAD = 3;
  if (!points.length) return document.createElementNS(
      "http://www.w3.org/2000/svg", "svg");
  let lo = Infinity, hi = -Infinity;
  for (const p of points) {
    lo = Math.min(lo, p.lo === undefined ? p.value : p.lo);
    hi = Math.max(hi, p.hi === undefined ? p.value : p.hi);
  }
  if (hi - lo < 1e-9) { hi += 1; lo -= 1; }
  const x = i => points.length === 1 ? W / 2 :
      PAD + (W - 2 * PAD) * i / (points.length - 1);
  const y = v => H - PAD - (H - 2 * PAD) * (v - lo) / (hi - lo);
  const svg = document.createElementNS("http://www.w3.org/2000/svg", "svg");
  svg.setAttribute("viewBox", `0 0 ${W} ${H}`);
  svg.setAttribute("preserveAspectRatio", "none");
  let inner = `<line class="spark-base" x1="0" y1="${H - 0.5}"` +
              ` x2="${W}" y2="${H - 0.5}"></line>`;
  if (points.some(p => p.lo !== undefined)) {
    const up = points.map((p, i) => `${x(i)},${y(p.hi)}`).join(" ");
    const down = points.map((p, i) => `${x(i)},${y(p.lo)}`).reverse().join(" ");
    inner += `<polygon class="spark-band" points="${up} ${down}"></polygon>`;
  }
  const line = points.map((p, i) => `${x(i)},${y(p.value)}`).join(" ");
  inner += `<polyline class="spark-line" points="${line}"></polyline>`;
  const last = points[points.length - 1];
  inner += `<circle class="spark-dot" r="2.5"` +
           ` cx="${x(points.length - 1)}" cy="${y(last.value)}"></circle>`;
  inner += `<line class="spark-hover" y1="0" y2="${H}" x1="-9" x2="-9"></line>` +
           `<circle class="spark-dot hover-dot" r="3" cx="-9" cy="-9"></circle>`;
  svg.innerHTML = inner;
  const base = `epoch ${last.epoch} · ${fmt(last.value)}`;
  readoutEl.textContent = base;
  svg.addEventListener("mousemove", ev => {
    const box = svg.getBoundingClientRect();
    const fx = (ev.clientX - box.left) / box.width * W;
    let best = 0;
    for (let i = 1; i < points.length; ++i) {
      if (Math.abs(x(i) - fx) < Math.abs(x(best) - fx)) best = i;
    }
    const p = points[best];
    svg.querySelector(".spark-hover").setAttribute("x1", x(best));
    svg.querySelector(".spark-hover").setAttribute("x2", x(best));
    const dot = svg.querySelector(".hover-dot");
    dot.setAttribute("cx", x(best));
    dot.setAttribute("cy", y(p.value));
    readoutEl.textContent = p.lo !== undefined
        ? `epoch ${p.epoch} · mean ${fmt(p.value)} [${fmt(p.lo)}–${fmt(p.hi)}]`
        : `epoch ${p.epoch} · ${fmt(p.value)}`;
  });
  svg.addEventListener("mouseleave", () => {
    svg.querySelector(".spark-hover").setAttribute("x1", -9);
    svg.querySelector(".spark-hover").setAttribute("x2", -9);
    readoutEl.textContent = base;
  });
  return svg;
}

// /query points -> [{epoch, value, lo, hi}]: raw rows are [epoch, value],
// aggregate rows are [first_epoch, min, max, mean, last, count].
function toPoints(rows) {
  return rows.map(r => r.length === 2
      ? { epoch: r[0], value: r[1] }
      : { epoch: r[0], value: r[3], lo: r[1], hi: r[2] });
}

function tile(label, value, target, ok) {
  const cls = ok ? "ok" : "breach";
  const glyph = ok ? "✓ within target" : "✗ breached";
  return `<div class="tile"><div class="label">${esc(label)}</div>` +
         `<div class="value">${esc(value)}</div>` +
         `<div class="target">${esc(target)}</div>` +
         `<div class="state ${cls}">${glyph}</div></div>`;
}

function renderSlo(slo) {
  const L = slo.detection_latency, F = slo.false_positives;
  el("slo-tiles").innerHTML =
      tile("detection p50 (epochs)", fmt(L.p50), `target ≤ ${L.p50_target}`,
           L.p50_ok) +
      tile("detection p99 (epochs)", fmt(L.p99), `target ≤ ${L.p99_target}`,
           L.p99_ok) +
      tile("false-positive rate", fmt(F.rate, 4),
           `budget ≤ ${F.budget} over ${F.clean_epochs} clean epochs`, F.ok) +
      tile("latency samples", String(L.samples),
           `${slo.fault_epochs} faulted epochs observed`, true);
}

function renderScoreboard(slo) {
  if (!slo.fault_classes.length) {
    el("scoreboard").innerHTML = '<span class="empty">no fault episodes yet</span>';
    return;
  }
  let html = "<table><tr><th>fault class</th><th>detector</th><th>flags</th>" +
             "<th>repairs</th><th>p50</th><th>p99</th><th>episodes</th>" +
             "<th>misses</th></tr>";
  for (const fc of slo.fault_classes) {
    if (!fc.detectors.length) {
      html += `<tr><td>${esc(fc.fault_class)}</td><td>–</td><td>0</td>` +
              `<td>0</td><td>–</td><td>–</td><td>${fc.episodes}</td>` +
              `<td>${fc.misses}</td></tr>`;
    }
    fc.detectors.forEach((d, i) => {
      html += `<tr><td>${i ? "" : esc(fc.fault_class)}</td>` +
              `<td>${esc(d.detector)}</td><td>${d.flags}</td>` +
              `<td>${d.repairs}</td><td>${fmt(d.latency_p50)}</td>` +
              `<td>${fmt(d.latency_p99)}</td>` +
              `<td>${i ? "" : fc.episodes}</td>` +
              `<td>${i ? "" : fc.misses}</td></tr>`;
    });
  }
  el("scoreboard").innerHTML = html + "</table>";
}

function renderTrust(query) {
  const root = el("trust");
  const series = query.series
      .filter(s => s.points.length)
      .map(s => ({ name: s.name, points: toPoints(s.points) }))
      .sort((a, b) => a.points[a.points.length - 1].value -
                      b.points[b.points.length - 1].value)
      .slice(0, 8);
  if (!series.length) {
    root.innerHTML = '<span class="empty">no series yet</span>';
    return;
  }
  root.innerHTML = "";
  for (const s of series) {
    const card = document.createElement("div");
    card.className = "card";
    const m = s.name.match(/check="([^"]*)",entity="([^"]*)"/);
    const short = m ? `${m[2]} · ${m[1]}` : s.name;
    card.innerHTML = `<div class="name" title="${esc(s.name)}">` +
                     `${esc(short)}</div><div class="reading"></div>`;
    card.appendChild(spark(s.points, card.querySelector(".reading")));
    root.appendChild(card);
  }
}

// Mean per-family confidence of the hardened inputs (rate / link /
// scalar), the quantity the checks scale their tolerances by.
function renderConfidence(query) {
  const root = el("confidence");
  const series = query.series
      .filter(s => s.points.length)
      .map(s => ({ name: s.name, points: toPoints(s.points) }));
  if (!series.length) {
    root.innerHTML = '<span class="empty">no series yet</span>';
    return;
  }
  root.innerHTML = "";
  for (const s of series) {
    const card = document.createElement("div");
    card.className = "card";
    const m = s.name.match(/signal="([^"]*)"/);
    const short = m ? `${m[1]} confidence (mean)` : s.name;
    card.innerHTML = `<div class="name" title="${esc(s.name)}">` +
                     `${esc(short)}</div><div class="reading"></div>`;
    card.appendChild(spark(s.points, card.querySelector(".reading")));
    root.appendChild(card);
  }
}

// Cumulative per-stage hodor_incremental_skips_total counters -> per-epoch
// replay fraction: of the validation stages that could have replayed a
// cached verdict this epoch, how many did. 1.0 = steady state (everything
// replayed), 0.0 = full recompute.
function deltaHitRate(skips) {
  const byEpoch = new Map();
  let stages = 0;
  for (const s of skips.series) {
    if (s.points.length < 2) continue;  // diffing needs a predecessor
    ++stages;
    for (let i = 1; i < s.points.length; ++i) {
      const e = s.points[i][0];
      const d = Math.max(0, Math.min(1, s.points[i][1] - s.points[i - 1][1]));
      byEpoch.set(e, (byEpoch.get(e) || 0) + d);
    }
  }
  if (!stages) return [];
  return [...byEpoch.entries()].sort((a, b) => a[0] - b[0])
      .map(([e, d]) => ({ epoch: e, value: d / stages }));
}

function renderDelta(dirty, skips) {
  const root = el("delta");
  const cards = [];
  const ds = dirty.series.find(s => s.points.length);
  if (ds) {
    cards.push({ title: "dirty signals per epoch",
                 points: toPoints(ds.points) });
  }
  const rate = deltaHitRate(skips);
  if (rate.length) {
    cards.push({ title: "incremental hit rate (stages replayed / eligible)",
                 points: rate });
  }
  if (!cards.length) {
    root.innerHTML = '<span class="empty">no incremental epochs yet</span>';
    return;
  }
  root.innerHTML = "";
  for (const c of cards) {
    const card = document.createElement("div");
    card.className = "card";
    card.innerHTML = `<div class="name" title="${esc(c.title)}">` +
                     `${esc(c.title)}</div><div class="reading"></div>`;
    card.appendChild(spark(c.points, card.querySelector(".reading")));
    root.appendChild(card);
  }
}

function renderFaults(query) {
  const chips = [];
  for (const s of query.series) {
    if (!s.points.length) continue;
    const last = s.points[s.points.length - 1];
    const m = s.name.match(/class="([^"]*)"/);
    if (last[1] > 0) {
      chips.push(`<span class="chip sev-critical">` +
                 `<span class="glyph">●</span> ${esc(m ? m[1] : s.name)}</span>`);
    }
  }
  el("faults").innerHTML = chips.length ? chips.join("")
      : '<span class="empty">none</span>';
}

function renderCritPath(traces) {
  if (!traces.length) return;
  const t = traces[0];
  const stages = (t.stages || []).filter(s => s.self_ms > 0)
      .sort((a, b) => b.self_ms - a.self_ms);
  if (!stages.length) return;
  const max = stages[0].self_ms;
  let html = "";
  for (const s of stages) {
    const w = Math.max(1, 100 * s.self_ms / max);
    html += `<div class="row"><span class="stage">${esc(s.stage)}</span>` +
            `<span class="track"><svg viewBox="0 0 100 14"` +
            ` preserveAspectRatio="none"><rect x="0" y="1" height="12"` +
            ` rx="1" width="${w}"><title>${esc(s.stage)}: self ` +
            `${fmt(s.self_ms, 3)} ms, wait ${fmt(s.wait_ms, 3)} ms</title>` +
            `</rect></svg></span>` +
            `<span class="ms">${fmt(s.self_ms, 3)} ms</span></div>`;
  }
  html += `<div class="row"><span class="stage">critical path</span>` +
          `<span class="track"></span><span class="ms">` +
          `${fmt(t.critical_path_ms, 3)} ms</span></div>` +
          `<div class="row"><span class="stage">bottleneck</span>` +
          `<span class="track"></span><span class="ms">` +
          `${esc(t.bottleneck)}</span></div>`;
  el("critpath").innerHTML = html;
}

function renderAlerts(alerts) {
  const chips = alerts.active.map(a => {
    const sev = a.severity === "critical" ? "sev-critical"
        : a.severity === "warning" ? "sev-warning" : "sev-info";
    return `<span class="chip ${sev}"><span class="glyph">▲</span> ` +
           `${esc(a.severity)} ${esc(a.source)} ${esc(a.entity)} ` +
           `(${esc(a.state)})</span>`;
  });
  el("alerts").innerHTML = chips.length ? chips.join("")
      : '<span class="empty">none</span>';
}

function renderFleet(fleet) {
  // An empty scoreboard (instances: 0) is the pre-publication default —
  // this process is not a FleetManager, so leave the placeholder.
  if (!fleet.summary || !fleet.summary.instances) return;
  const s = fleet.summary;
  let html = `<p class="empty">${s.instances} instances · ` +
             `${s.threads} pool thread(s) · ${s.rounds} rounds · ` +
             `${s.epochs_total} epochs · ` +
             `${fmt(s.aggregate_epochs_per_sec)} epochs/s aggregate</p>`;
  html += "<table><tr><th>instance</th><th>topology</th><th>nodes</th>" +
          "<th>epochs</th><th>epochs/s</th><th>accept</th><th>reject</th>" +
          "<th>min trust</th><th>faults</th><th>SLO</th><th>rank</th></tr>";
  for (const inst of fleet.instances) {
    const prog = `${inst.epochs_done}/${inst.epochs_target}` +
                 (inst.done ? "" : " …");
    const faults = inst.active_faults.length
        ? esc(inst.active_faults.join(", ")) : "–";
    const slo = inst.slo && "ok" in inst.slo
        ? (inst.slo.ok ? "ok" : "MISS") : "–";
    html += `<tr><td>${esc(inst.name)}</td><td>${esc(inst.topology)}</td>` +
            `<td>${inst.nodes}</td><td>${prog}</td>` +
            `<td>${fmt(inst.epochs_per_sec)}</td><td>${inst.accepts}</td>` +
            `<td>${inst.rejects}</td><td>${fmt(inst.min_trust)}</td>` +
            `<td>${faults}</td><td>${slo}</td>` +
            `<td>${inst.laggard_rank}</td></tr>`;
  }
  html += "</table>";
  el("fleet").innerHTML = html;
}

function renderResToggle() {
  el("res-toggle").innerHTML = RESOLUTIONS.map(r =>
      `<button class="${r === resolution ? "on" : ""}"` +
      ` data-res="${r}">${r === "raw" ? "raw" : r + "×"}</button>`).join("");
  for (const b of el("res-toggle").querySelectorAll("button")) {
    b.onclick = () => { resolution = b.dataset.res; refresh(); };
  }
}

async function refresh() {
  clearTimeout(timer);
  try {
    const [build, healthz, slo, trust, conf, faults, traces, alerts, dirty,
           skips, fleet] =
        await Promise.all([
          getJson("/buildz"), getJson("/healthz"), getJson("/slo"),
          getJson(`/query?series=hodor_signal_trust*&res=${resolution}&last=120`),
          getJson(`/query?series=hodor_confidence_mean*&res=${resolution}&last=120`),
          getJson("/query?series=hodor_fault_active*&res=raw&last=1"),
          getJson("/trace?last=1"), getJson("/alerts"),
          getJson("/query?series=hodor_dirty_signals*&res=raw&last=120"),
          getJson("/query?series=hodor_incremental_skips_total*&res=raw&last=121"),
          getJson("/fleet"),
        ]);
    el("build").textContent = `${build.git} · up ${build.uptime_seconds}s · ` +
        `${build.hodor_threads}/${build.hardware_threads} threads`;
    el("status").textContent =
        `epoch ${healthz.last_epoch} · auto-refresh 2s`;
    renderSlo(slo);
    renderScoreboard(slo);
    renderTrust(trust);
    renderConfidence(conf);
    renderFaults(faults);
    renderCritPath(traces);
    renderAlerts(alerts);
    renderDelta(dirty, skips);
    renderFleet(fleet);
  } catch (err) {
    el("status").textContent = "disconnected (" + err.message + ")";
  }
  timer = setTimeout(refresh, 2000);
}

renderResToggle();
refresh();
</script>
</body>
</html>
)dash";

}  // namespace hodor::obs
