#include "telemetry/collector.h"

#include "obs/metrics.h"

namespace hodor::telemetry {

NetworkSnapshot Collector::Collect(const net::GroundTruthState& state,
                                   const flow::SimulationResult& sim,
                                   std::uint64_t epoch, util::Rng& rng,
                                   const SnapshotMutator& mutator) const {
  NetworkSnapshot snapshot(*topo_, epoch);
  for (const net::Node& node : topo_->nodes()) {
    ReportRouterSignals(*topo_, state, sim, node.id, opts_.agent, rng,
                        snapshot);
  }
  if (mutator) mutator(snapshot);
  if (opts_.run_probes) {
    snapshot.SetProbeResults(ProbeAllLinks(*topo_, state, opts_.probes, rng));
  }

  obs::MetricsRegistry& reg = obs::ResolveRegistry(opts_.metrics);
  reg.GetCounter("hodor_snapshots_total", {}, "Telemetry snapshots collected")
      .Increment();
  if (opts_.run_probes) {
    reg.GetCounter("hodor_probe_rounds_total", {},
                   "Active probe rounds (R4 manufactured signals)")
        .Increment();
  }
  reg.GetGauge("hodor_snapshot_signals_present", {},
               "Signal values present in the latest snapshot")
      .Set(static_cast<double>(snapshot.PresentSignalCount()));
  return snapshot;
}

}  // namespace hodor::telemetry
