#include "controlplane/pipeline.h"

#include "obs/metrics.h"
#include "util/logging.h"

namespace hodor::controlplane {

namespace {

// "nullptr means global" composes: a pipeline-level registry/trace reaches
// the collector unless its options name their own.
PipelineOptions PropagateObs(PipelineOptions opts) {
  if (!opts.collector.metrics) opts.collector.metrics = opts.metrics;
  return opts;
}

}  // namespace

Pipeline::Pipeline(const net::Topology& topo, PipelineOptions opts,
                   util::Rng rng)
    : topo_(&topo),
      opts_(PropagateObs(std::move(opts))),
      rng_(rng),
      collector_(topo, opts_.collector),
      controller_(topo, opts_.controller),
      scratch_snapshot_(topo, 0) {}

void Pipeline::Bootstrap(const net::GroundTruthState& state,
                         const flow::DemandMatrix& true_demand) {
  installed_plan_ = flow::ShortestPathRouting(
      *topo_, true_demand, [&](net::LinkId e) { return state.LinkUsable(e); });
}

EpochResult Pipeline::RunEpoch(const net::GroundTruthState& state,
                               const flow::DemandMatrix& true_demand,
                               const telemetry::SnapshotMutator& snapshot_fault,
                               const AggregationFaultHooks& aggregation_faults) {
  const std::uint64_t epoch = next_epoch_++;
  obs::MetricsRegistry* reg = opts_.metrics;
  obs::TraceWriter* trace = opts_.trace;
  std::vector<obs::SpanRecord> spans;
  spans.reserve(7);
  obs::StageSpan epoch_span(obs::Stage::kEpoch, epoch, reg, trace);

  // 1. Traffic under the currently installed plan: this is what telemetry
  //    measures.
  obs::StageSpan measure_span(obs::Stage::kSimulate, epoch, reg, trace);
  flow::SimulationResult measured =
      flow::SimulateFlow(*topo_, state, true_demand, installed_plan_);
  spans.push_back(measure_span.End());

  // 2-3. Collect and aggregate, with fault hooks.
  obs::StageSpan collect_span(obs::Stage::kCollect, epoch, reg, trace);
  telemetry::NetworkSnapshot& snapshot = scratch_snapshot_;
  collector_.CollectInto(state, measured, epoch, rng_, snapshot,
                         snapshot_fault);
  spans.push_back(collect_span.End());

  obs::StageSpan aggregate_span(obs::Stage::kAggregate, epoch, reg, trace);
  ControllerInput input = AggregateInputs(*topo_, snapshot, true_demand,
                                          epoch, rng_, opts_.infra,
                                          aggregation_faults);
  spans.push_back(aggregate_span.End());

  // 4. Validate + policy.
  EpochResult result{epoch,
                     input,
                     /*validated=*/false,
                     ValidationDecision{},
                     /*used_fallback=*/false,
                     flow::NetworkMetrics{},
                     flow::SimulationResult{},
                     snapshot,
                     /*spans=*/{}};
  const ControllerInput* chosen = &input;
  if (validator_) {
    obs::StageSpan validate_span(obs::Stage::kValidate, epoch, reg, trace);
    result.validated = true;
    result.decision = validator_(input, snapshot);
    spans.push_back(validate_span.End());
    if (!result.decision.accept) {
      HODOR_LOG(kWarning) << "epoch " << epoch
                          << ": input rejected: " << result.decision.reason;
      if (opts_.policy == RejectionPolicy::kFallbackToLastGood &&
          last_good_input_.has_value()) {
        chosen = &*last_good_input_;
        result.used_fallback = true;
      }
    }
  }

  // 5. Program routing from the chosen input.
  obs::StageSpan program_span(obs::Stage::kProgram, epoch, reg, trace);
  installed_plan_ = controller_.ComputeRouting(*chosen);
  spans.push_back(program_span.End());

  // 6. Outcome under the new plan.
  obs::StageSpan outcome_span(obs::Stage::kSimulate, epoch, reg, trace);
  result.outcome = flow::SimulateFlow(*topo_, state, true_demand,
                                      installed_plan_);
  result.metrics = flow::ComputeMetrics(*topo_, true_demand, result.outcome);
  spans.push_back(outcome_span.End());

  if (!result.validated || result.decision.accept) {
    last_good_input_ = input;
  }

  obs::MetricsRegistry& registry = obs::ResolveRegistry(reg);
  registry.GetCounter("hodor_epochs_total", {}, "Control epochs run")
      .Increment();
  if (result.validated && !result.decision.accept) {
    registry
        .GetCounter("hodor_epoch_rejects_total", {},
                    "Epochs whose input the validator rejected")
        .Increment();
  }
  if (result.used_fallback) {
    registry
        .GetCounter("hodor_epoch_fallbacks_total", {},
                    "Epochs served from the last accepted input")
        .Increment();
  }
  spans.push_back(epoch_span.End());
  result.spans = std::move(spans);
  if (epoch_observer_) epoch_observer_(result);
  if (epoch_recorder_) epoch_recorder_(result);
  return result;
}

}  // namespace hodor::controlplane
