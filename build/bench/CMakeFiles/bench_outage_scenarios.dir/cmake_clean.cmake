file(REMOVE_RECURSE
  "CMakeFiles/bench_outage_scenarios.dir/bench_outage_scenarios.cc.o"
  "CMakeFiles/bench_outage_scenarios.dir/bench_outage_scenarios.cc.o.d"
  "bench_outage_scenarios"
  "bench_outage_scenarios.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_outage_scenarios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
