// Hardening playground: watch R1-R4 work on a small custom network.
//
// Builds a 5-node ring-with-chord WAN, injects three different router
// telemetry bugs at once (a lying TX counter, a silent router, and a
// one-sided down status), and prints the hardened view next to the raw
// signals and the ground truth.
//
//   ./build/examples/hardening_playground
#include <iostream>

#include "core/hardening.h"
#include "faults/snapshot_faults.h"
#include "flow/simulator.h"
#include "flow/tm_generators.h"
#include "net/topologies.h"
#include "telemetry/collector.h"
#include "util/strings.h"
#include "util/table.h"

int main() {
  using namespace hodor;

  // A 5-node ring plus one chord.
  net::Topology topo("playground");
  std::vector<net::NodeId> n;
  for (const char* name : {"r0", "r1", "r2", "r3", "r4"}) {
    n.push_back(topo.AddNode(name));
    topo.AddExternalPort(n.back(), 400.0);
  }
  for (std::size_t i = 0; i < 5; ++i) {
    topo.AddBidirectionalLink(n[i], n[(i + 1) % 5], 100.0);
  }
  const net::LinkId chord = topo.AddBidirectionalLink(n[0], n[2], 100.0);

  const net::GroundTruthState state(topo);
  util::Rng rng(7);
  flow::DemandMatrix demand = flow::GravityDemand(topo, rng);
  flow::NormalizeToMaxUtilization(topo, 0.6, demand);
  const flow::RoutingPlan plan =
      flow::ShortestPathRouting(topo, demand, net::AllLinks());
  const flow::SimulationResult sim =
      flow::SimulateFlow(topo, state, demand, plan);

  // Three simultaneous §2.1 bugs.
  const net::LinkId lying_link = topo.FindLink(n[1], n[2]).value();
  auto bugs = faults::ComposeFaults({
      faults::CorruptLinkCounter(lying_link, faults::CounterSide::kTx,
                                 faults::CounterCorruption::kScale, 1.4),
      faults::UnresponsiveRouter(n[4]),
      faults::FalseLinkStatus(chord, /*at_src=*/true,
                              telemetry::LinkStatus::kDown),
  });

  telemetry::CollectorOptions copts;
  copts.probes.false_loss_rate = 0.0;
  telemetry::Collector collector(topo, copts);
  const auto snapshot = collector.Collect(state, sim, 0, rng, bugs);

  const core::HardenedState hs = core::HardeningEngine().Harden(snapshot);
  std::cout << hs.Summary() << "\n\n";

  auto opt = [](const std::optional<double>& v) {
    return v ? util::FormatDouble(*v, 1) : std::string("-");
  };
  util::TablePrinter rates({"link", "truth", "raw TX", "raw RX", "hardened",
                            "origin"});
  for (net::LinkId e : topo.LinkIds()) {
    const auto& r = hs.rates[e.value()];
    const char* origin = "";
    switch (r.origin) {
      case core::RateOrigin::kAgreeing: origin = "agreeing"; break;
      case core::RateOrigin::kRepaired: origin = "REPAIRED"; break;
      case core::RateOrigin::kSingleWitness: origin = "single-witness"; break;
      case core::RateOrigin::kUnknown: origin = "UNKNOWN"; break;
    }
    rates.AddRowValues(topo.LinkName(e),
                       util::FormatDouble(sim.carried[e.value()], 1),
                       opt(snapshot.TxRate(e)), opt(snapshot.RxRate(e)),
                       opt(r.value), origin);
  }
  std::cout << rates.ToString();

  std::cout << "\nlink-state verdicts (one per physical link):\n";
  util::TablePrinter links({"link", "status src", "status dst", "probe",
                            "verdict", "confidence"});
  for (net::LinkId e : topo.LinkIds()) {
    if (topo.link(e).reverse.value() < e.value()) continue;
    auto status = [&](const std::optional<telemetry::LinkStatus>& s) {
      return s ? telemetry::LinkStatusName(*s) : "-";
    };
    const auto p = snapshot.ProbeSucceeded(e);
    links.AddRowValues(topo.LinkName(e), status(snapshot.StatusAtSrc(e)),
                       status(snapshot.StatusAtDst(e)),
                       p ? (*p ? "ok" : "fail") : "-",
                       core::LinkVerdictName(hs.links[e.value()].verdict),
                       util::FormatPercent(hs.links[e.value()].confidence, 0));
  }
  std::cout << links.ToString();
  std::cout << "\nNote r4's counters: the router is silent, yet every rate "
               "is recovered from the far ends and flow conservation, and "
               "its links stay 'up' thanks to probes (R4) and neighbour "
               "statuses.\n";
  return 0;
}
