# Empty compiler generated dependencies file for hodor_util.
# This may be replaced when dependencies are built.
