// Detection-latency tracking: how fast does the validator notice a fault?
//
// The paper's headline operational number (§4.1) is not "did an invariant
// fire" but "how many epochs after the bad input appeared did it fire" —
// the calibration signal CrossCheck builds its confidence scoring on.
// DetectionLatencyTracker correlates fault-injection *episodes* (the
// engine stamps active fault classes into every EpochResult, see
// controlplane/pipeline.h) with the first flagging verdict per detector:
//
//   - an episode opens when a fault class first appears in the active set
//     and closes when it leaves it;
//   - the first epoch each detector (invariant check family: "hardening",
//     "demand", "topology", "drain") fires inside an episode yields one
//     latency sample `fire_epoch - episode_start` for that
//     (fault class, detector) pair, observed into
//     `hodor_detection_latency_epochs{fault_class,detector}`;
//   - an episode that closes with no detector having fired counts as a
//     miss (`hodor_detection_miss_total{fault_class}`);
//   - hardening records with a pass verdict are repairs
//     (`hodor_detection_repair_total{fault_class,detector="hardening"}`,
//     same convention as obs/health/signal_health);
//   - epochs with NO active fault class are the clean-run control: any
//     detector firing there is a false positive
//     (`hodor_detection_false_positive_total{detector}`), and the
//     fraction of clean epochs with at least one false flag is the
//     false-positive rate budgeted by the /slo endpoint.
//
// When several fault classes are active simultaneously a firing detector
// cannot be attributed uniquely; the sample is credited to every active
// class (documented in EXPERIMENTS.md "Measuring detection latency").
//
// Single-threaded like the rest of obs/: lives on the epoch sink thread
// next to SignalHealthBoard; the server sees only rendered SloJson().
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/provenance.h"

namespace hodor::obs {

// /slo pass/fail targets; all epochs-valued latencies.
struct DetectionSloTargets {
  double latency_p50_epochs = 1.0;
  double latency_p99_epochs = 5.0;
  // Max tolerated fraction of clean (fault-free) epochs that raise at
  // least one false flag.
  double false_positive_budget = 0.01;
};

struct DetectionOptions {
  DetectionSloTargets slo;
  // Latency samples retained per (fault class, detector) for percentile
  // computation; oldest are discarded beyond this.
  std::size_t max_latency_samples = 4096;
  // Epoch-valued histogram buckets for hodor_detection_latency_epochs.
  std::vector<double> latency_buckets = {0, 1, 2, 3, 5, 8, 13, 21, 34, 55};
};

class DetectionLatencyTracker {
 public:
  explicit DetectionLatencyTracker(DetectionOptions opts = {});

  // Folds one epoch: `fault_classes` is the engine-stamped active set
  // (EpochResult::fault_classes, typically from
  // faults::ActiveFaultClasses), `decision` the epoch's provenance.
  // Metrics are written into `registry` (nullptr → none); pass the same
  // registry every epoch.
  void ObserveEpoch(std::uint64_t epoch,
                    const std::vector<std::string>& fault_classes,
                    const DecisionRecord& decision,
                    MetricsRegistry* registry);

  // /slo payload:
  //   {"detection_latency":{"samples":N,"p50":x,"p99":y,
  //      "p50_target":a,"p99_target":b,"p50_ok":bool,"p99_ok":bool},
  //    "false_positives":{"flag_epochs":n,"clean_epochs":m,"rate":r,
  //      "budget":b,"ok":bool},
  //    "ok":bool,
  //    "fault_classes":[{"fault_class":"...","episodes":n,"misses":n,
  //      "detectors":[{"detector":"...","flags":n,"repairs":n,
  //        "latency_p50":x,"latency_p99":y}]}]}
  // Percentiles are nearest-rank over the retained samples; with zero
  // samples they render as null and count as passing (nothing measured).
  std::string SloJson() const;

  // Test accessors.
  std::uint64_t clean_epochs() const { return clean_epochs_; }
  std::uint64_t fault_epochs() const { return fault_epochs_; }
  std::uint64_t false_positive_epochs() const { return fp_epochs_; }
  std::uint64_t episodes(const std::string& fault_class) const;
  std::uint64_t misses(const std::string& fault_class) const;
  // Latency samples (epochs) for one (fault class, detector) pair.
  std::vector<double> Latencies(const std::string& fault_class,
                                const std::string& detector) const;

  const DetectionOptions& options() const { return opts_; }

 private:
  struct Episode {
    std::uint64_t start_epoch = 0;
    std::set<std::string> flagged;  // detectors that already fired
  };
  struct PairStats {
    std::vector<double> latencies;  // capped at max_latency_samples
    std::uint64_t flags = 0;
    std::uint64_t repairs = 0;
  };
  struct ClassStats {
    std::uint64_t episodes = 0;
    std::uint64_t misses = 0;
  };

  void RecordLatency(const std::string& fault_class,
                     const std::string& detector, double latency,
                     MetricsRegistry* registry);

  DetectionOptions opts_;
  std::map<std::string, Episode> active_;
  std::map<std::pair<std::string, std::string>, PairStats> pairs_;
  std::map<std::string, ClassStats> classes_;
  std::map<std::string, std::uint64_t> false_flags_;  // per detector
  std::uint64_t clean_epochs_ = 0;
  std::uint64_t fault_epochs_ = 0;
  std::uint64_t fp_epochs_ = 0;
};

}  // namespace hodor::obs
