#include "replay/epoch_log.h"

#include <cerrno>
#include <cstring>
#include <fstream>

#include "net/serialization.h"

namespace hodor::replay {

namespace {

constexpr char kMagic[8] = {'H', 'O', 'D', 'O', 'R', 'L', 'O', 'G'};
constexpr char kIndexMagic[8] = {'H', 'O', 'D', 'O', 'R', 'I', 'D', 'X'};
constexpr std::uint32_t kEndianTag = 0x01020304u;
constexpr std::size_t kHeaderSize = 16;   // magic + version + endian tag
constexpr std::size_t kTrailerSize = 16;  // footer offset + index magic
constexpr std::size_t kFrameHeader = 8;   // payload_len + crc32c

util::Status IoError(const std::string& what) {
  return util::UnavailableError(what + ": " + std::strerror(errno));
}

}  // namespace

// --- writer -----------------------------------------------------------------

EpochLogWriter::~EpochLogWriter() {
  Close().ok();  // best effort; errors surface only through explicit Close
}

util::Status EpochLogWriter::Open(const std::string& path,
                                  const net::Topology& topo,
                                  EpochLogWriterOptions opts) {
  if (file_ != nullptr) {
    return util::FailedPreconditionError("writer already open on " + path_);
  }
  if (opts.format_version < kMinFormatVersion ||
      opts.format_version > kFormatVersion) {
    return util::InvalidArgumentError(
        "cannot write epoch log format version " +
        std::to_string(opts.format_version) + " (this build encodes " +
        std::to_string(kMinFormatVersion) + ".." +
        std::to_string(kFormatVersion) + ")");
  }
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return IoError("cannot create " + path);
  file_ = f;
  path_ = path;
  opts_ = opts;
  offset_ = 0;
  index_.clear();

  std::string header;
  ByteWriter w(header);
  w.Bytes(kMagic, sizeof(kMagic));
  w.U32(opts.format_version);
  w.U32(kEndianTag);
  if (std::fwrite(header.data(), 1, header.size(), file_) != header.size()) {
    const util::Status s = IoError("cannot write header to " + path);
    std::fclose(file_);
    file_ = nullptr;
    return s;
  }
  offset_ = header.size();

  scratch_.clear();
  ByteWriter p(scratch_);
  p.U8(static_cast<std::uint8_t>(RecordKind::kTopology));
  p.Str(net::WriteTopology(topo));
  return WriteRecord(scratch_);
}

util::Status EpochLogWriter::Append(std::uint64_t epoch,
                                    const telemetry::NetworkSnapshot& snapshot,
                                    const controlplane::ControllerInput& input,
                                    const EpochVerdict& verdict) {
  if (file_ == nullptr) {
    return util::FailedPreconditionError("Append on a closed epoch log");
  }
  const std::uint64_t record_offset = offset_;
  scratch_.clear();
  ByteWriter w(scratch_);
  w.U8(static_cast<std::uint8_t>(RecordKind::kEpoch));
  EncodeEpochRecord(epoch, snapshot, input, verdict, w, opts_.format_version);
  HODOR_RETURN_IF_ERROR(WriteRecord(scratch_));
  index_.emplace_back(epoch, record_offset);
  return util::Status::Ok();
}

util::Status EpochLogWriter::Close() {
  if (file_ == nullptr) return util::Status::Ok();
  util::Status result = util::Status::Ok();
  if (opts_.write_index) {
    const std::uint64_t footer_offset = offset_;
    scratch_.clear();
    ByteWriter w(scratch_);
    w.U8(static_cast<std::uint8_t>(RecordKind::kIndex));
    w.U32(static_cast<std::uint32_t>(index_.size()));
    for (const auto& [epoch, off] : index_) {
      w.U64(epoch);
      w.U64(off);
    }
    result = WriteRecord(scratch_);
    if (result.ok()) {
      std::string trailer;
      ByteWriter t(trailer);
      t.U64(footer_offset);
      t.Bytes(kIndexMagic, sizeof(kIndexMagic));
      if (std::fwrite(trailer.data(), 1, trailer.size(), file_) !=
          trailer.size()) {
        result = IoError("cannot write index trailer to " + path_);
      }
    }
  }
  if (std::fclose(file_) != 0 && result.ok()) {
    result = IoError("close failed on " + path_);
  }
  file_ = nullptr;
  return result;
}

util::Status EpochLogWriter::WriteRecord(const std::string& payload) {
  std::string frame;
  ByteWriter w(frame);
  w.U32(static_cast<std::uint32_t>(payload.size()));
  w.U32(Crc32c(payload));
  if (std::fwrite(frame.data(), 1, frame.size(), file_) != frame.size() ||
      std::fwrite(payload.data(), 1, payload.size(), file_) !=
          payload.size()) {
    return IoError("write failed on " + path_);
  }
  offset_ += frame.size() + payload.size();
  return util::Status::Ok();
}

// --- reader -----------------------------------------------------------------

util::Status EpochLogReader::Open(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return util::NotFoundError("cannot open " + path);
  }
  buffer_.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  if (in.bad()) return util::UnavailableError("read failed on " + path);

  topo_.reset();
  offsets_.clear();
  epochs_.clear();
  by_epoch_.clear();
  had_index_ = false;
  tail_truncated_ = false;
  tail_message_.clear();

  if (buffer_.size() < kHeaderSize) {
    return util::InvalidArgumentError(path +
                                      " is too short to be a hodor epoch log");
  }
  if (std::memcmp(buffer_.data(), kMagic, sizeof(kMagic)) != 0) {
    return util::InvalidArgumentError(path + " is not a hodor epoch log "
                                             "(bad magic)");
  }
  ByteReader header(buffer_.data() + sizeof(kMagic), kHeaderSize -
                                                         sizeof(kMagic));
  std::uint32_t endian_tag = 0;
  HODOR_RETURN_IF_ERROR(header.U32(version_));
  HODOR_RETURN_IF_ERROR(header.U32(endian_tag));
  if (version_ < kMinFormatVersion || version_ > kFormatVersion) {
    return util::FailedPreconditionError(
        "unsupported epoch log format version " + std::to_string(version_) +
        " (this build reads versions " + std::to_string(kMinFormatVersion) +
        ".." + std::to_string(kFormatVersion) + ")");
  }
  if (endian_tag != kEndianTag) {
    return util::InvalidArgumentError(
        "endianness guard mismatch: log written on an incompatible platform");
  }

  // Topology prologue: without it nothing else can decode, so damage here
  // is fatal rather than a skippable tail.
  auto prologue = PayloadAt(kHeaderSize);
  if (!prologue.ok()) {
    return util::InvalidArgumentError("topology prologue unreadable: " +
                                      prologue.status().message());
  }
  const std::string_view payload = prologue.value();
  if (payload.empty() ||
      payload[0] != static_cast<char>(RecordKind::kTopology)) {
    return util::InvalidArgumentError(
        "first record is not the topology prologue");
  }
  ByteReader topo_reader(payload.data() + 1, payload.size() - 1);
  std::string topo_text;
  HODOR_RETURN_IF_ERROR(topo_reader.Str(topo_text));
  auto parsed = net::ParseTopology(topo_text);
  if (!parsed.ok()) {
    return util::InvalidArgumentError("topology prologue does not parse: " +
                                      parsed.status().message());
  }
  topo_ = std::make_unique<net::Topology>(std::move(parsed).value());

  const std::size_t first_record_end =
      kHeaderSize + kFrameHeader + payload.size();
  if (IndexFromFooter().ok() && had_index_) {
    return util::Status::Ok();
  }
  IndexByScan(first_record_end);
  return util::Status::Ok();
}

util::Status EpochLogReader::IndexFromFooter() {
  if (buffer_.size() < kHeaderSize + kTrailerSize) {
    return util::NotFoundError("no trailer");
  }
  const char* tail = buffer_.data() + buffer_.size() - sizeof(kIndexMagic);
  if (std::memcmp(tail, kIndexMagic, sizeof(kIndexMagic)) != 0) {
    return util::NotFoundError("no trailer");
  }
  ByteReader t(buffer_.data() + buffer_.size() - kTrailerSize, 8);
  std::uint64_t footer_offset = 0;
  HODOR_RETURN_IF_ERROR(t.U64(footer_offset));
  if (footer_offset < kHeaderSize ||
      footer_offset + kFrameHeader > buffer_.size() - kTrailerSize) {
    return util::InvalidArgumentError("footer offset out of bounds");
  }
  auto payload_or = PayloadAt(footer_offset);
  if (!payload_or.ok()) return payload_or.status();
  const std::string_view payload = payload_or.value();
  if (payload.empty() || payload[0] != static_cast<char>(RecordKind::kIndex)) {
    return util::InvalidArgumentError("footer record is not an index");
  }
  ByteReader r(payload.data() + 1, payload.size() - 1);
  std::uint32_t count = 0;
  HODOR_RETURN_IF_ERROR(r.U32(count));
  if (count > r.remaining() / 16) {
    return util::InvalidArgumentError("index entry count exceeds its record");
  }
  std::vector<std::uint64_t> offsets, epochs;
  offsets.reserve(count);
  epochs.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    std::uint64_t epoch = 0, off = 0;
    HODOR_RETURN_IF_ERROR(r.U64(epoch));
    HODOR_RETURN_IF_ERROR(r.U64(off));
    if (off < kHeaderSize || off + kFrameHeader > footer_offset) {
      return util::InvalidArgumentError("index entry offset out of bounds");
    }
    epochs.push_back(epoch);
    offsets.push_back(off);
  }
  offsets_ = std::move(offsets);
  epochs_ = std::move(epochs);
  for (std::size_t i = 0; i < epochs_.size(); ++i) {
    by_epoch_.emplace(epochs_[i], i);
  }
  had_index_ = true;
  return util::Status::Ok();
}

void EpochLogReader::IndexByScan(std::size_t first_record_end) {
  std::size_t pos = first_record_end;
  const std::size_t size = buffer_.size();
  auto torn = [&](const std::string& why) {
    tail_truncated_ = true;
    tail_message_ = why + " at offset " + std::to_string(pos) + " (" +
                    std::to_string(size - pos) + " trailing bytes skipped)";
  };

  while (pos < size) {
    const std::size_t remaining = size - pos;
    // A trailer left behind by a damaged index record: recognized, not torn.
    if (remaining == kTrailerSize &&
        std::memcmp(buffer_.data() + size - sizeof(kIndexMagic), kIndexMagic,
                    sizeof(kIndexMagic)) == 0) {
      break;
    }
    if (remaining < kFrameHeader) {
      torn("torn final record (incomplete frame header)");
      break;
    }
    ByteReader frame(buffer_.data() + pos, kFrameHeader);
    std::uint32_t len = 0, crc = 0;
    frame.U32(len).ok();
    frame.U32(crc).ok();
    if (len == 0 || len > remaining - kFrameHeader) {
      torn("torn final record (length " + std::to_string(len) +
           " runs past end of file)");
      break;
    }
    const char* payload = buffer_.data() + pos + kFrameHeader;
    const auto kind = static_cast<std::uint8_t>(payload[0]);
    if (kind == static_cast<std::uint8_t>(RecordKind::kEpoch)) {
      if (len < 9) {
        torn("epoch record too short to carry an epoch id");
        break;
      }
      ByteReader id(payload + 1, 8);
      std::uint64_t epoch = 0;
      id.U64(epoch).ok();
      epochs_.push_back(epoch);
      offsets_.push_back(pos);
    } else if (kind != static_cast<std::uint8_t>(RecordKind::kTopology) &&
               kind != static_cast<std::uint8_t>(RecordKind::kIndex)) {
      torn("unrecognized record kind " + std::to_string(kind));
      break;
    }
    pos += kFrameHeader + len;
  }

  // A structurally complete final record can still be torn mid-payload
  // (buffered write flushed a prefix); its CRC is the witness. Earlier
  // records keep lazy CRC checking — a bad one surfaces from Read().
  if (!tail_truncated_ && !offsets_.empty()) {
    const std::uint64_t last = offsets_.back();
    if (!PayloadAt(last).ok()) {
      pos = last;
      torn("final record failed CRC32C");
      offsets_.pop_back();
      epochs_.pop_back();
    }
  }
  for (std::size_t i = 0; i < epochs_.size(); ++i) {
    by_epoch_.emplace(epochs_[i], i);
  }
}

util::StatusOr<std::string_view> EpochLogReader::PayloadAt(
    std::uint64_t offset) const {
  if (offset + kFrameHeader > buffer_.size()) {
    return util::OutOfRangeError("record frame at offset " +
                                 std::to_string(offset) +
                                 " runs past end of file");
  }
  ByteReader frame(buffer_.data() + offset, kFrameHeader);
  std::uint32_t len = 0, crc = 0;
  HODOR_RETURN_IF_ERROR(frame.U32(len));
  HODOR_RETURN_IF_ERROR(frame.U32(crc));
  if (len == 0 || offset + kFrameHeader + len > buffer_.size()) {
    return util::OutOfRangeError("record payload at offset " +
                                 std::to_string(offset) +
                                 " runs past end of file");
  }
  const std::string_view payload(buffer_.data() + offset + kFrameHeader, len);
  const std::uint32_t computed = Crc32c(payload);
  if (computed != crc) {
    return util::InvalidArgumentError(
        "record at offset " + std::to_string(offset) +
        " failed CRC32C (stored " + std::to_string(crc) + ", computed " +
        std::to_string(computed) + ")");
  }
  return payload;
}

util::StatusOr<EpochRecord> EpochLogReader::Read(std::size_t i) const {
  if (topo_ == nullptr) {
    return util::FailedPreconditionError("reader is not open");
  }
  if (i >= offsets_.size()) {
    return util::OutOfRangeError("record index " + std::to_string(i) +
                                 " out of range (log holds " +
                                 std::to_string(offsets_.size()) + ")");
  }
  auto payload_or = PayloadAt(offsets_[i]);
  if (!payload_or.ok()) return payload_or.status();
  const std::string_view payload = payload_or.value();
  if (payload[0] != static_cast<char>(RecordKind::kEpoch)) {
    return util::InvalidArgumentError("record " + std::to_string(i) +
                                      " is not an epoch record");
  }
  EpochRecord record(*topo_);
  ByteReader r(payload.data() + 1, payload.size() - 1);
  HODOR_RETURN_IF_ERROR(DecodeEpochRecord(r, record, version_));
  return record;
}

util::StatusOr<EpochRecord> EpochLogReader::Seek(std::uint64_t epoch) const {
  const auto it = by_epoch_.find(epoch);
  if (it == by_epoch_.end()) {
    return util::NotFoundError("epoch " + std::to_string(epoch) +
                               " is not in the log");
  }
  return Read(it->second);
}

}  // namespace hodor::replay
