#include <gtest/gtest.h>

#include "faults/aggregation_faults.h"
#include "faults/demand_perturbations.h"
#include "test_util.h"

namespace hodor::faults {
namespace {

using net::LinkId;
using net::NodeId;

struct AggFixture : ::testing::Test {
  AggFixture() : net(testing::MakeAbilene()) {
    input = net.Input(net.Snapshot());
  }
  testing::HealthyNetwork net;
  controlplane::ControllerInput input;
};

TEST_F(AggFixture, PartialStitchRemovesIncidentLinks) {
  const NodeId v = net.topo.FindNode("KSCYng").value();
  PartialTopologyStitch(net.topo, {v})(input.link_available);
  for (LinkId e : net.topo.OutLinks(v)) {
    EXPECT_FALSE(input.link_available[e.value()]);
    EXPECT_FALSE(input.link_available[net.topo.link(e).reverse.value()]);
  }
  // A far-away link survives.
  const LinkId far = net.topo
                         .FindLink(net.topo.FindNode("NYCMng").value(),
                                   net.topo.FindNode("WASHng").value())
                         .value();
  EXPECT_TRUE(input.link_available[far.value()]);
}

TEST_F(AggFixture, LinksMarkedDownAndUp) {
  const LinkId e = net.topo.LinkIds()[0];
  LinksMarkedDown(net.topo, {e})(input.link_available);
  EXPECT_FALSE(input.link_available[e.value()]);
  EXPECT_FALSE(input.link_available[net.topo.link(e).reverse.value()]);
  LinksMarkedUp(net.topo, {e})(input.link_available);
  EXPECT_TRUE(input.link_available[e.value()]);
}

TEST_F(AggFixture, DrainHooks) {
  input.node_drained[3] = true;
  input.link_drained[5] = true;
  DrainsDropped()(input.node_drained, input.link_drained);
  for (bool b : input.node_drained) EXPECT_FALSE(b);
  for (bool b : input.link_drained) EXPECT_FALSE(b);
  DrainsInvented({NodeId(7)})(input.node_drained, input.link_drained);
  EXPECT_TRUE(input.node_drained[7]);
}

TEST_F(AggFixture, DemandRowsDropped) {
  const NodeId v = net.topo.ExternalNodes()[2];
  ASSERT_GT(input.demand.RowSum(v), 0.0);
  DemandRowsDropped(net.topo, {v})(input.demand);
  EXPECT_DOUBLE_EQ(input.demand.RowSum(v), 0.0);
  EXPECT_GT(input.demand.Total(), 0.0);  // other rows intact
}

TEST_F(AggFixture, DemandEntriesDroppedFraction) {
  const std::size_t before = input.demand.PositiveEntryCount();
  DemandEntriesDropped(0.5, 11)(input.demand);
  const std::size_t after = input.demand.PositiveEntryCount();
  EXPECT_LT(after, before);
  EXPECT_GT(after, 0u);
}

TEST_F(AggFixture, DemandScaledAndFrozen) {
  const double before = input.demand.Total();
  DemandScaled(1.7)(input.demand);
  EXPECT_NEAR(input.demand.Total(), 1.7 * before, 1e-6);

  flow::DemandMatrix stale(net.topo.node_count());
  stale.Set(NodeId(0), NodeId(1), 123.0);
  DemandFrozen(stale)(input.demand);
  EXPECT_DOUBLE_EQ(input.demand.Total(), 123.0);
}


TEST_F(AggFixture, DemandRowsRotatedPreservesTotalAndMovesRows) {
  const double total_before = input.demand.Total();
  const auto ext = net.topo.ExternalNodes();
  const net::NodeId first = ext[0];
  const net::NodeId second = ext[1];
  const double first_row = input.demand.RowSum(first);
  DemandRowsRotated(net.topo)(input.demand);
  EXPECT_NEAR(input.demand.Total(), total_before, 1e-9);
  // First row's demand moved (mostly) to the next external node.
  EXPECT_NEAR(input.demand.RowSum(second), first_row,
              first_row * 0.25 + 1e-9);
}

// ---------- demand perturbations continued -----------------------------------

// ---------- demand perturbations (§4.1 experiment machinery) -----------------

struct PerturbFixture : ::testing::Test {
  PerturbFixture() : net(testing::MakeAbilene()), rng(5) {}
  testing::HealthyNetwork net;
  util::Rng rng;
};

TEST_F(PerturbFixture, ZeroEntriesZerosExactlyK) {
  const auto p = ZeroEntries(net.demand, 4, rng);
  EXPECT_EQ(p.touched.size(), 4u);
  for (const auto& [i, j] : p.touched) {
    EXPECT_DOUBLE_EQ(p.matrix.At(i, j), 0.0);
    EXPECT_GT(net.demand.At(i, j), 0.0);  // original untouched
  }
  EXPECT_EQ(p.matrix.PositiveEntryCount(),
            net.demand.PositiveEntryCount() - 4);
}

TEST_F(PerturbFixture, ZeroEntriesDistinct) {
  const auto p = ZeroEntries(net.demand, 100, rng);
  std::set<std::pair<std::uint32_t, std::uint32_t>> seen;
  for (const auto& [i, j] : p.touched) {
    EXPECT_TRUE(seen.insert({i.value(), j.value()}).second);
  }
}

TEST_F(PerturbFixture, ZeroEntriesRejectsOversizedK) {
  EXPECT_THROW(ZeroEntries(net.demand, 1000, rng), std::logic_error);
}

TEST_F(PerturbFixture, ScaleEntriesMultiplies) {
  const auto p = ScaleEntries(net.demand, 3, 0.5, rng);
  for (const auto& [i, j] : p.touched) {
    EXPECT_NEAR(p.matrix.At(i, j), 0.5 * net.demand.At(i, j), 1e-9);
  }
}

TEST_F(PerturbFixture, NoiseTouchesAllPositiveEntries) {
  const auto p = NoiseAllEntries(net.demand, 0.1, rng);
  EXPECT_EQ(p.touched.size(), net.demand.PositiveEntryCount());
  EXPECT_GT(p.matrix.MaxAbsDifference(net.demand), 0.0);
}

TEST_F(PerturbFixture, NoiseZeroSigmaIsIdentity) {
  const auto p = NoiseAllEntries(net.demand, 0.0, rng);
  EXPECT_DOUBLE_EQ(p.matrix.MaxAbsDifference(net.demand), 0.0);
}

TEST_F(PerturbFixture, SwapEntriesPreservesTotal) {
  const auto p = SwapEntries(net.demand, 5, rng);
  EXPECT_NEAR(p.matrix.Total(), net.demand.Total(), 1e-9);
  EXPECT_GT(p.matrix.MaxAbsDifference(net.demand), 0.0);
}

}  // namespace
}  // namespace hodor::faults
