// E9 — the paper's proposed future directions, implemented and measured.
//
// Part A (§4.3): the standardized reason-annotated link-drain protocol —
//         how each drain situation validates once reasons exist, including
//         the case-2 ambiguity that becomes decidable.
// Part B (§6): router self-correction via neighbour counter exchange —
//         fraction of corrupted counters fixed at the source before the
//         control plane ever sees them, vs corruption breadth.
// Part C (§3.1): the general unsupervised approach vs Hodor's specialized
//         one — invariants mined from history rediscover R1, but drained-
//         in-history POPs plant spurious invariants that false-positive
//         after undrain, exactly as the paper predicts.
#include <iostream>

#include "bench_common.h"
#include "core/baselines/invariant_miner.h"
#include "core/drain_protocol.h"
#include "faults/snapshot_faults.h"
#include "flow/tm_generators.h"
#include "telemetry/self_correction.h"
#include "util/stats.h"
#include "util/strings.h"

namespace {

using namespace hodor;

void PartA() {
  std::cout << "\n--- Part A (§4.3): reason-annotated link drains ---\n";
  bench::Trial t(net::Abilene(), 61, 0.5, bench::DefaultCollector());
  const core::HardenedState hs = core::HardeningEngine().Harden(t.snapshot);
  const net::LinkId link = t.topo.LinkIds()[0];

  struct Case {
    std::string situation;
    std::function<void(core::DrainLedger&)> announce;
  };
  const std::vector<Case> cases = {
      {"maintenance drain, both ends announce",
       [&](core::DrainLedger& l) {
         l.AnnounceBoth(link, core::DrainReason::kMaintenance);
       }},
      {"node drain = all links drained",
       [&](core::DrainLedger& l) {
         l.AnnounceNodeDrain(t.topo.FindNode("IPLSng").value());
       }},
      {"drain announced by one end only",
       [&](core::DrainLedger& l) {
         l.Announce(link, core::DrainReason::kMaintenance);
       }},
      {"ends disagree on the reason",
       [&](core::DrainLedger& l) {
         l.Announce(link, core::DrainReason::kFaultyNeighbor);
         l.Announce(t.topo.link(link).reverse,
                    core::DrainReason::kMaintenance);
       }},
      {"automation drains a healthy link (§4.3 case 2, now decidable)",
       [&](core::DrainLedger& l) {
         l.AnnounceBoth(link, core::DrainReason::kAutomation);
       }},
      {"pre-emptive maintenance of a healthy link (legitimate case 2)",
       [&](core::DrainLedger& l) {
         l.AnnounceBoth(link, core::DrainReason::kMaintenance);
       }},
  };
  util::TablePrinter table({"situation", "verdict"});
  for (const Case& c : cases) {
    core::DrainLedger ledger(t.topo);
    c.announce(ledger);
    const auto r = core::ValidateDrainLedger(t.topo, ledger, hs);
    table.AddRowValues(
        c.situation,
        r.ok() ? "valid"
               : r.violations[0].ToString(t.topo));
  }
  std::cout << table.ToString();
}

void PartB() {
  std::cout << "\n--- Part B (§6): router self-correction at the source ---\n";
  constexpr int kTrials = 100;
  util::TablePrinter table({"corruption", "mismatched pairs", "fixed at source",
                            "left for hodor"});
  struct Workload {
    std::string name;
    std::function<telemetry::SnapshotMutator(const net::Topology&,
                                             std::uint64_t)> make;
  };
  const std::vector<Workload> workloads = {
      {"1 scaled TX counter",
       [](const net::Topology& topo, std::uint64_t seed) {
         util::Rng rng(seed);
         return faults::CorruptLinkCounter(
             topo.LinkIds()[rng.Index(topo.link_count())],
             faults::CounterSide::kTx, faults::CounterCorruption::kScale,
             1.6);
       }},
      {"3 zeroed TX counters",
       [](const net::Topology& topo, std::uint64_t seed) {
         util::Rng rng(seed);
         std::vector<telemetry::SnapshotMutator> muts;
         for (std::size_t i : rng.SampleWithoutReplacement(
                  topo.link_count(), 3)) {
           muts.push_back(faults::CorruptLinkCounter(
               net::LinkId(static_cast<std::uint32_t>(i)),
               faults::CounterSide::kTx, faults::CounterCorruption::kZero));
         }
         return faults::ComposeFaults(std::move(muts));
       }},
      {"whole router zeroed (self-consistent lie)",
       [](const net::Topology& topo, std::uint64_t seed) {
         util::Rng rng(seed);
         return faults::ZeroedCountersFault(
             net::NodeId(static_cast<std::uint32_t>(
                 rng.Index(topo.node_count()))),
             1.0, seed);
       }},
  };
  for (const Workload& w : workloads) {
    std::size_t mismatched = 0, corrected = 0, unresolved = 0;
    for (int i = 0; i < kTrials; ++i) {
      bench::Trial t(net::Abilene(), 20000 + i, 0.5,
                     bench::DefaultCollector());
      telemetry::NetworkSnapshot snap = t.snapshot;
      w.make(t.topo, 20000 + i)(snap);
      const auto stats = telemetry::SelfCorrectSnapshot(snap);
      mismatched += stats.mismatched_pairs;
      corrected += stats.corrected;
      unresolved += stats.unresolved;
    }
    table.AddRowValues(
        w.name, mismatched,
        util::FormatPercent(util::SafeRate(corrected, mismatched), 1),
        util::FormatPercent(util::SafeRate(unresolved, mismatched), 1));
  }
  std::cout << table.ToString();
  std::cout << "Self-correction removes most isolated counter lies before "
               "export; the remainder (and all single-sourced external "
               "counters) still need central hardening.\n";
}

void PartC() {
  std::cout << "\n--- Part C (§3.1): unsupervised invariant mining vs "
               "Hodor ---\n";
  // Regime 1: train on a fully busy network.
  constexpr std::size_t kHistory = 8;
  const auto copts = bench::DefaultCollector();

  auto make_busy = [&](std::uint64_t seed) {
    return bench::Trial(net::Abilene(), seed, 0.5, copts);
  };
  // Regime 2: same network, but one POP (ATLAM5) carries zero demand
  // during training — the drained-in-history case.
  auto make_drained = [&](std::uint64_t seed) {
    bench::Trial t = make_busy(seed);
    const net::NodeId pop = t.topo.FindNode("ATLAM5").value();
    for (net::NodeId j : t.topo.NodeIds()) {
      if (j != pop) {
        t.demand.Set(pop, j, 0.0);
        t.demand.Set(j, pop, 0.0);
      }
    }
    t.plan = flow::ShortestPathRouting(t.topo, t.demand, net::AllLinks());
    t.sim = flow::SimulateFlow(t.topo, t.state, t.demand, t.plan);
    util::Rng rng(seed ^ 0x9e37);
    telemetry::Collector collector(t.topo, copts);
    t.snapshot = collector.Collect(t.state, t.sim, 0, rng);
    return t;
  };

  const net::Topology topo = net::Abilene();
  core::baselines::InvariantMiner busy_miner(topo);
  core::baselines::InvariantMiner drained_miner(topo);
  for (std::size_t i = 0; i < kHistory; ++i) {
    busy_miner.Observe(make_busy(30000 + i).snapshot);
    drained_miner.Observe(make_drained(30000 + i).snapshot);
  }
  busy_miner.Mine();
  drained_miner.Mine();

  util::TablePrinter mined({"training regime", "mined invariants",
                            "honest busy snapshot", "corrupted snapshot"});
  auto evaluate = [&](const core::baselines::InvariantMiner& miner)
      -> std::pair<std::string, std::string> {
    const bench::Trial honest = make_busy(31000);
    const auto honest_result = miner.Check(honest.snapshot);
    bench::Trial corrupted = make_busy(31001);
    telemetry::NetworkSnapshot snap = corrupted.snapshot;
    faults::CorruptLinkCounter(corrupted.topo.LinkIds()[2],
                               faults::CounterSide::kTx,
                               faults::CounterCorruption::kScale, 2.0)(snap);
    const auto corrupt_result = miner.Check(snap);
    auto show = [](const core::baselines::MinerCheckResult& r) {
      return r.ok() ? std::string("accepts")
                    : "flags (" + std::to_string(r.violations.size()) +
                          " violations)";
    };
    return {show(honest_result), show(corrupt_result)};
  };
  const auto busy_eval = evaluate(busy_miner);
  const auto drained_eval = evaluate(drained_miner);
  mined.AddRowValues("all POPs busy", busy_miner.invariants().size(),
                     busy_eval.first, busy_eval.second);
  mined.AddRowValues("one POP drained in history",
                     drained_miner.invariants().size(), drained_eval.first,
                     drained_eval.second);
  std::cout << mined.ToString();
  std::cout << "The drained-history miner learned spurious zero-equalities "
               "and rejects a healthy network once the POP is undrained — "
               "the §3.1 failure mode that motivates Hodor's specialized, "
               "design-informed invariants (which accept both; see E2/E5).\n";
}

}  // namespace

int main() {
  bench::PrintHeader("E9",
                     "future directions implemented (§3.1, §4.3, §6)",
                     "abilene; drain-protocol cases; self-correction over "
                     "100 trials; miner trained on 8 epochs");
  PartA();
  PartB();
  PartC();
  return 0;
}
