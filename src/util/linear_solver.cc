#include "util/linear_solver.h"

#include <cmath>

namespace hodor::util {

namespace {

double ResidualNorm(const Matrix& m, const std::vector<double>& x,
                    const std::vector<double>& b) {
  std::vector<double> mx = m.Apply(x);
  double acc = 0.0;
  for (std::size_t i = 0; i < b.size(); ++i) {
    const double d = mx[i] - b[i];
    acc += d * d;
  }
  return std::sqrt(acc);
}

}  // namespace

StatusOr<SolveResult> SolveLinearSystem(const Matrix& m,
                                        const std::vector<double>& b,
                                        double tol) {
  if (b.size() != m.rows()) {
    return InvalidArgumentError("rhs size does not match row count");
  }
  if (m.cols() == 0) {
    return InvalidArgumentError("system has no unknowns");
  }
  const std::size_t rows = m.rows();
  const std::size_t cols = m.cols();

  // Augmented matrix [M | b].
  Matrix aug(rows, cols + 1);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) aug.At(r, c) = m.At(r, c);
    aug.At(r, cols) = b[r];
  }

  // Forward elimination with partial pivoting; record pivot column per row.
  std::vector<std::size_t> pivot_col_of_row;
  std::size_t pivot_row = 0;
  for (std::size_t col = 0; col < cols && pivot_row < rows; ++col) {
    std::size_t best = pivot_row;
    for (std::size_t r = pivot_row + 1; r < rows; ++r) {
      if (std::fabs(aug.At(r, col)) > std::fabs(aug.At(best, col))) best = r;
    }
    if (std::fabs(aug.At(best, col)) <= tol) continue;
    if (best != pivot_row) {
      for (std::size_t c = 0; c <= cols; ++c) {
        std::swap(aug.At(best, c), aug.At(pivot_row, c));
      }
    }
    const double pivot = aug.At(pivot_row, col);
    for (std::size_t r = pivot_row + 1; r < rows; ++r) {
      const double factor = aug.At(r, col) / pivot;
      if (factor == 0.0) continue;
      for (std::size_t c = col; c <= cols; ++c) {
        aug.At(r, c) -= factor * aug.At(pivot_row, c);
      }
    }
    pivot_col_of_row.push_back(col);
    ++pivot_row;
  }
  const std::size_t rank = pivot_row;

  // Inconsistency: a zero row of M with a nonzero rhs entry.
  for (std::size_t r = rank; r < rows; ++r) {
    if (std::fabs(aug.At(r, cols)) > tol) {
      SolveResult res;
      res.outcome = SolveOutcome::kInconsistent;
      return res;
    }
  }
  if (rank < cols) {
    SolveResult res;
    res.outcome = SolveOutcome::kUnderdetermined;
    return res;
  }

  // Back substitution. rank == cols here; pivot_col_of_row is strictly
  // increasing so pivot_col_of_row[i] identifies unknown i's row.
  std::vector<double> x(cols, 0.0);
  for (std::size_t ri = rank; ri-- > 0;) {
    const std::size_t pc = pivot_col_of_row[ri];
    double acc = aug.At(ri, cols);
    for (std::size_t c = pc + 1; c < cols; ++c) acc -= aug.At(ri, c) * x[c];
    x[pc] = acc / aug.At(ri, pc);
  }

  SolveResult res;
  res.outcome = SolveOutcome::kUnique;
  res.solution = std::move(x);
  res.residual = ResidualNorm(m, res.solution, b);
  return res;
}

StatusOr<SolveResult> SolveLeastSquares(const Matrix& m,
                                        const std::vector<double>& b,
                                        double tol) {
  if (b.size() != m.rows()) {
    return InvalidArgumentError("rhs size does not match row count");
  }
  if (m.cols() == 0) {
    return InvalidArgumentError("system has no unknowns");
  }
  const Matrix mt = m.Transpose();
  const Matrix mtm = mt.Multiply(m);
  const std::vector<double> mtb = mt.Apply(b);
  auto inner = SolveLinearSystem(mtm, mtb, tol);
  if (!inner.ok()) return inner.status();
  SolveResult res = std::move(inner).value();
  if (res.outcome == SolveOutcome::kUnique) {
    res.residual = ResidualNorm(m, res.solution, b);
  }
  return res;
}

}  // namespace hodor::util
