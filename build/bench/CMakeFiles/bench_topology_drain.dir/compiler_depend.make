# Empty compiler generated dependencies file for bench_topology_drain.
# This may be replaced when dependencies are built.
