file(REMOVE_RECURSE
  "CMakeFiles/net_graph_algorithms_test.dir/net/graph_algorithms_test.cc.o"
  "CMakeFiles/net_graph_algorithms_test.dir/net/graph_algorithms_test.cc.o.d"
  "net_graph_algorithms_test"
  "net_graph_algorithms_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_graph_algorithms_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
