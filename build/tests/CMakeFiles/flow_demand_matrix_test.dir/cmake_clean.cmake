file(REMOVE_RECURSE
  "CMakeFiles/flow_demand_matrix_test.dir/flow/demand_matrix_test.cc.o"
  "CMakeFiles/flow_demand_matrix_test.dir/flow/demand_matrix_test.cc.o.d"
  "flow_demand_matrix_test"
  "flow_demand_matrix_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flow_demand_matrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
