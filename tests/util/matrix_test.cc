#include "util/matrix.h"

#include <gtest/gtest.h>

namespace hodor::util {
namespace {

TEST(Matrix, ConstructionAndFill) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_FALSE(m.empty());
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(m.At(r, c), 1.5);
  }
}

TEST(Matrix, DefaultIsEmpty) {
  Matrix m;
  EXPECT_TRUE(m.empty());
}

TEST(Matrix, AtBoundsChecked) {
  Matrix m(2, 2);
  EXPECT_THROW(m.At(2, 0), std::logic_error);
  EXPECT_THROW(m.At(0, 2), std::logic_error);
}

TEST(Matrix, IdentityDiagonal) {
  Matrix id = Matrix::Identity(3);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_DOUBLE_EQ(id.At(r, c), r == c ? 1.0 : 0.0);
    }
  }
}

TEST(Matrix, Transpose) {
  Matrix m(2, 3);
  m.At(0, 0) = 1;
  m.At(0, 1) = 2;
  m.At(0, 2) = 3;
  m.At(1, 0) = 4;
  m.At(1, 1) = 5;
  m.At(1, 2) = 6;
  Matrix t = m.Transpose();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t.At(0, 1), 4.0);
  EXPECT_DOUBLE_EQ(t.At(2, 0), 3.0);
}

TEST(Matrix, TransposeTwiceIsIdentity) {
  Matrix m(3, 2, 0.0);
  m.At(1, 0) = 7.0;
  m.At(2, 1) = -2.0;
  EXPECT_TRUE(m.Transpose().Transpose().AlmostEqual(m));
}

TEST(Matrix, MultiplyByIdentity) {
  Matrix m(2, 2);
  m.At(0, 0) = 3;
  m.At(0, 1) = -1;
  m.At(1, 0) = 2;
  m.At(1, 1) = 5;
  EXPECT_TRUE(m.Multiply(Matrix::Identity(2)).AlmostEqual(m));
  EXPECT_TRUE(Matrix::Identity(2).Multiply(m).AlmostEqual(m));
}

TEST(Matrix, MultiplyKnownProduct) {
  Matrix a(2, 3);
  // [1 2 3; 4 5 6]
  a.At(0, 0) = 1; a.At(0, 1) = 2; a.At(0, 2) = 3;
  a.At(1, 0) = 4; a.At(1, 1) = 5; a.At(1, 2) = 6;
  Matrix b(3, 1);
  b.At(0, 0) = 1; b.At(1, 0) = 0; b.At(2, 0) = -1;
  Matrix p = a.Multiply(b);
  EXPECT_DOUBLE_EQ(p.At(0, 0), -2.0);
  EXPECT_DOUBLE_EQ(p.At(1, 0), -2.0);
}

TEST(Matrix, MultiplyDimensionMismatchThrows) {
  Matrix a(2, 3), b(2, 3);
  EXPECT_THROW(a.Multiply(b), std::logic_error);
}

TEST(Matrix, ApplyVector) {
  Matrix m(2, 2);
  m.At(0, 0) = 2; m.At(0, 1) = 0;
  m.At(1, 0) = 1; m.At(1, 1) = 3;
  const auto y = m.Apply({1.0, 2.0});
  EXPECT_DOUBLE_EQ(y[0], 2.0);
  EXPECT_DOUBLE_EQ(y[1], 7.0);
}

TEST(Matrix, ApplySizeMismatchThrows) {
  Matrix m(2, 2);
  EXPECT_THROW(m.Apply({1.0}), std::logic_error);
}

TEST(Matrix, RankFullAndDeficient) {
  EXPECT_EQ(Matrix::Identity(4).Rank(), 4u);
  Matrix zero(3, 3, 0.0);
  EXPECT_EQ(zero.Rank(), 0u);
  // Two identical rows -> rank 1.
  Matrix dup(2, 3, 0.0);
  dup.At(0, 0) = 1; dup.At(0, 1) = 2; dup.At(0, 2) = 3;
  dup.At(1, 0) = 1; dup.At(1, 1) = 2; dup.At(1, 2) = 3;
  EXPECT_EQ(dup.Rank(), 1u);
}

TEST(Matrix, RankOfLinearlyDependentColumns) {
  // Third column = first + second.
  Matrix m(3, 3, 0.0);
  m.At(0, 0) = 1; m.At(0, 1) = 0; m.At(0, 2) = 1;
  m.At(1, 0) = 0; m.At(1, 1) = 1; m.At(1, 2) = 1;
  m.At(2, 0) = 2; m.At(2, 1) = 3; m.At(2, 2) = 5;
  EXPECT_EQ(m.Rank(), 2u);
}

TEST(Matrix, FrobeniusNorm) {
  Matrix m(1, 2);
  m.At(0, 0) = 3;
  m.At(0, 1) = 4;
  EXPECT_DOUBLE_EQ(m.FrobeniusNorm(), 5.0);
}

TEST(Matrix, AlmostEqualToleratesSmallDiffs) {
  Matrix a(1, 1, 1.0);
  Matrix b(1, 1, 1.0 + 1e-12);
  EXPECT_TRUE(a.AlmostEqual(b));
  Matrix c(1, 1, 1.1);
  EXPECT_FALSE(a.AlmostEqual(c));
  Matrix d(2, 1, 1.0);
  EXPECT_FALSE(a.AlmostEqual(d));  // shape mismatch
}

TEST(Matrix, ToStringRendersRows) {
  Matrix m(1, 2);
  m.At(0, 0) = 1.0;
  m.At(0, 1) = 2.5;
  EXPECT_EQ(m.ToString(1), "[1.0, 2.5]\n");
}

}  // namespace
}  // namespace hodor::util
