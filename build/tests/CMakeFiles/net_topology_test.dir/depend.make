# Empty dependencies file for net_topology_test.
# This may be replaced when dependencies are built.
