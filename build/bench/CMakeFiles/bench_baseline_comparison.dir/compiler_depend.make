# Empty compiler generated dependencies file for bench_baseline_comparison.
# This may be replaced when dependencies are built.
