// Minimal JSON utilities for the observability layer.
//
// The obs exports (metrics registry snapshots, span trace lines, decision
// provenance) are hand-rendered JSON: the repo deliberately takes no
// third-party serialization dependency. This header centralises the two
// things hand-rendering needs to get right — string escaping and a
// syntax-only validator used by the obs_export smoke test and by operators'
// ingestion pre-checks.
#pragma once

#include <string>
#include <string_view>

namespace hodor::obs {

// Escapes `s` for placement inside a JSON string literal (quotes are NOT
// added). Handles quote, backslash, and control characters (\uXXXX).
std::string JsonEscape(std::string_view s);

// Renders a double as a JSON number. JSON has no NaN/Inf, so those become
// null (callers embed the result bare, not quoted).
std::string JsonNumber(double v);

// Syntax-only RFC 8259 check: true iff `s` is one complete JSON value.
// No DOM is built; this exists so tests and export smoke runs can assert
// "this parses as JSON" without a parser dependency.
bool IsValidJson(std::string_view s);

}  // namespace hodor::obs
