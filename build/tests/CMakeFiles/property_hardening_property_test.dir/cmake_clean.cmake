file(REMOVE_RECURSE
  "CMakeFiles/property_hardening_property_test.dir/property/hardening_property_test.cc.o"
  "CMakeFiles/property_hardening_property_test.dir/property/hardening_property_test.cc.o.d"
  "property_hardening_property_test"
  "property_hardening_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_hardening_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
