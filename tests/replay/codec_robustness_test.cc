// Fuzz-lite for the decode path: a recorded log is hostile input. Every
// truncation of a valid payload, bit flips sprayed across the payload, and
// header damage must come back as a clean util::Status — never UB, never
// an abort, never an uncaught exception. Runs under ASan/UBSan via
// scripts/check_build.sh --sanitize=address|undefined.
#include <gtest/gtest.h>

#include <fstream>

#include "replay/epoch_log.h"
#include "replay/frame_codec.h"
#include "test_util.h"
#include "util/rng.h"

namespace hodor {
namespace {

// One valid encoded epoch-record payload (without the container framing).
std::string ValidPayload(const testing::HealthyNetwork& net) {
  const telemetry::NetworkSnapshot snapshot = net.Snapshot();
  const controlplane::ControllerInput input = net.Input(snapshot);
  replay::EpochVerdict verdict;
  verdict.validated = true;
  verdict.accept = false;
  verdict.reason = "REJECT: demo";
  verdict.summary = "demo";
  verdict.invariants.push_back(
      {"demand", "ingress(X)", 0.3, 0.02, obs::InvariantVerdict::kFail});
  std::string out;
  replay::ByteWriter w(out);
  replay::EncodeEpochRecord(3, snapshot, input, verdict, w);
  return out;
}

// Decoding must return a Status (ok or not) without crashing; on success
// the decoder must have consumed the exact payload length.
void MustDecodeCleanly(const testing::HealthyNetwork& net,
                       const std::string& payload, const char* what) {
  replay::EpochRecord record(net.topo);
  replay::ByteReader r(payload);
  const util::Status status = replay::DecodeEpochRecord(r, record);
  if (status.ok()) {
    EXPECT_EQ(r.remaining(), 0u) << what;
  }
}

TEST(CodecRobustness, EveryTruncationFailsCleanly) {
  const testing::HealthyNetwork net = testing::MakeAbilene();
  const std::string payload = ValidPayload(net);

  // Dense sweep over the header-ish prefix, then strided through the bulk
  // columns (every byte would be ~30k decodes of a multi-KB payload).
  for (std::size_t len = 0; len < payload.size();
       len += len < 256 ? 1 : 61) {
    const std::string cut = payload.substr(0, len);
    replay::EpochRecord record(net.topo);
    replay::ByteReader r(cut);
    const util::Status status = replay::DecodeEpochRecord(r, record);
    EXPECT_FALSE(status.ok()) << "truncation to " << len
                              << " bytes decoded successfully";
  }
}

TEST(CodecRobustness, BitFlipsNeverCrashTheDecoder) {
  const testing::HealthyNetwork net = testing::MakeAbilene();
  const std::string payload = ValidPayload(net);
  util::Rng rng(2024);

  // Single bit flips at random positions. CRC normally screens these out
  // before the codec runs; this asserts the codec alone survives them.
  for (int trial = 0; trial < 400; ++trial) {
    std::string mutated = payload;
    const std::size_t pos = static_cast<std::size_t>(
        rng.UniformInt(0, static_cast<int>(payload.size()) - 1));
    mutated[pos] ^= static_cast<char>(1 << rng.UniformInt(0, 7));
    MustDecodeCleanly(net, mutated, "single bit flip");
  }

  // Burst damage: a 16-byte window overwritten with random bytes.
  for (int trial = 0; trial < 200; ++trial) {
    std::string mutated = payload;
    const std::size_t start = static_cast<std::size_t>(
        rng.UniformInt(0, static_cast<int>(payload.size()) - 17));
    for (std::size_t i = 0; i < 16; ++i) {
      mutated[start + i] = static_cast<char>(rng.UniformInt(0, 255));
    }
    MustDecodeCleanly(net, mutated, "burst corruption");
  }
}

TEST(CodecRobustness, HostileCountsAreRejected) {
  const testing::HealthyNetwork net = testing::MakeAbilene();
  const std::string payload = ValidPayload(net);

  // Saturate every u32 that could be a count/length prefix: a decoder that
  // trusts any of them would reserve gigabytes or read far out of bounds.
  for (std::size_t pos = 0; pos + 4 <= payload.size();
       pos += pos < 64 ? 1 : 53) {
    std::string mutated = payload;
    mutated[pos] = '\xff';
    mutated[pos + 1] = '\xff';
    mutated[pos + 2] = '\xff';
    mutated[pos + 3] = '\xff';
    MustDecodeCleanly(net, mutated, "saturated count");
  }
}

TEST(CodecRobustness, ReaderSurvivesRandomFileDamage) {
  // Whole-file damage through the EpochLogReader front door: flips inside
  // the header, the topology prologue, records, index, and trailer.
  const testing::HealthyNetwork net = testing::MakeAbilene();
  const std::string path = ::testing::TempDir() + "/robust.hlog";
  {
    replay::EpochLogWriter writer;
    ASSERT_TRUE(writer.Open(path, net.topo).ok());
    const telemetry::NetworkSnapshot snapshot = net.Snapshot();
    const controlplane::ControllerInput input = net.Input(snapshot);
    ASSERT_TRUE(
        writer.Append(1, snapshot, input, replay::EpochVerdict{}).ok());
    ASSERT_TRUE(writer.Close().ok());
  }
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }

  util::Rng rng(7);
  const std::string mutated_path = ::testing::TempDir() + "/robust_cut.hlog";
  for (int trial = 0; trial < 300; ++trial) {
    std::string mutated = bytes;
    const int flips = rng.UniformInt(1, 8);
    for (int i = 0; i < flips; ++i) {
      const std::size_t pos = static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<int>(bytes.size()) - 1));
      mutated[pos] ^= static_cast<char>(1 << rng.UniformInt(0, 7));
    }
    {
      std::ofstream out(mutated_path, std::ios::binary | std::ios::trunc);
      out.write(mutated.data(), static_cast<std::streamsize>(mutated.size()));
    }
    replay::EpochLogReader reader;
    if (!reader.Open(mutated_path).ok()) continue;
    for (std::size_t i = 0; i < reader.epoch_count(); ++i) {
      reader.Read(i).ok();  // any status is fine; crashing is not
    }
  }
}

}  // namespace
}  // namespace hodor
