// Wall-clock helpers for operator-facing timestamps.
//
// Everything simulated in this repo is deterministic and seeded; wall time
// appears only in operator surfaces (log lines, JSONL trace records, bench
// snapshots) so external telemetry can be correlated with Hodor's own.
// Timestamps are UTC ISO-8601 with millisecond precision, e.g.
//   2024-11-05T17:03:21.042Z
#pragma once

#include <chrono>
#include <string>

namespace hodor::util {

// Renders `tp` as UTC ISO-8601 with millisecond precision.
std::string FormatUtcTimestamp(std::chrono::system_clock::time_point tp);

// FormatUtcTimestamp(now).
std::string UtcTimestampNow();

}  // namespace hodor::util
