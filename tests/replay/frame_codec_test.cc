// Round-trip property of the flight-recorder payload codec: for any frame,
// snapshot, input, or verdict, encode -> decode -> encode must be
// byte-identical. Byte identity is a stronger check than field-by-field
// equality — it proves the decoder recovered every column and bitset word
// exactly, with no canonicalization drift that would break the replay
// digest diff.
#include "replay/frame_codec.h"

#include <gtest/gtest.h>

#include "faults/snapshot_faults.h"
#include "test_util.h"

namespace hodor {
namespace {

std::string EncodeFrameBytes(const telemetry::SignalFrame& frame) {
  std::string out;
  replay::ByteWriter w(out);
  replay::EncodeFrame(frame, w);
  return out;
}

std::string EncodeSnapshotBytes(const telemetry::NetworkSnapshot& snapshot) {
  std::string out;
  replay::ByteWriter w(out);
  replay::EncodeSnapshot(snapshot, w);
  return out;
}

TEST(FrameCodec, FrameRoundTripIsByteIdentical) {
  const testing::HealthyNetwork net = testing::MakeAbilene();
  const telemetry::NetworkSnapshot snapshot = net.Snapshot();
  const std::string encoded = EncodeFrameBytes(snapshot.frame());

  telemetry::NetworkSnapshot decoded(net.topo, 0);
  replay::ByteReader r(encoded);
  ASSERT_TRUE(replay::DecodeFrame(r, decoded.frame()).ok());
  EXPECT_EQ(r.remaining(), 0u);
  EXPECT_EQ(EncodeFrameBytes(decoded.frame()), encoded);

  // Spot-check through the public API too.
  for (net::LinkId e : net.topo.LinkIds()) {
    EXPECT_EQ(decoded.TxRate(e), snapshot.TxRate(e));
    EXPECT_EQ(decoded.RxRate(e), snapshot.RxRate(e));
  }
  for (net::NodeId v : net.topo.NodeIds()) {
    EXPECT_EQ(decoded.Responded(v), snapshot.Responded(v));
    EXPECT_EQ(decoded.ExtInRate(v), snapshot.ExtInRate(v));
  }
}

TEST(FrameCodec, DecodeMarksEveryColumnDirtyAndDirtyBitsStayOffDisk) {
  // Dirty bits are transient working state (DESIGN.md §12): the codec must
  // neither store nor restore them, and a decoded frame — whose mutation
  // history is unknown — must come back conservatively all-dirty so a
  // later DiffAgainst degrades to an exact full value compare.
  const testing::HealthyNetwork net = testing::MakeAbilene();
  const telemetry::NetworkSnapshot snapshot = net.Snapshot();
  const std::string encoded = EncodeFrameBytes(snapshot.frame());

  telemetry::NetworkSnapshot decoded(net.topo, 0);
  replay::ByteReader r(encoded);
  ASSERT_TRUE(replay::DecodeFrame(r, decoded.frame()).ok());
  const std::size_t links = net.topo.link_count();
  const std::size_t nodes = net.topo.node_count();
  EXPECT_EQ(decoded.frame().DirtySignalCount(), 4 * links + 4 * nodes);

  // And the dirty state is invisible to the encoder: the all-dirty decoded
  // frame re-encodes byte-identically to the original, whose dirty set was
  // only the honest collection pattern.
  EXPECT_EQ(EncodeFrameBytes(decoded.frame()), encoded);
}

TEST(FrameCodec, RoundTripSurvivesMissingAndCorruptSignals) {
  // Unresponsive and malformed routers punch holes in the presence
  // bitsets; the codec must reproduce those holes bit-for-bit.
  const testing::HealthyNetwork net = testing::MakeAbilene();
  const auto fault = faults::ComposeFaults(
      {faults::UnresponsiveRouter(net::NodeId(2)),
       faults::MalformedTelemetry(net::NodeId(5), 0.5, 77),
       faults::ZeroedCountersFault(net::NodeId(8), 0.4, 78)});
  const telemetry::NetworkSnapshot snapshot = net.Snapshot(3, fault);
  const std::string encoded = EncodeFrameBytes(snapshot.frame());

  telemetry::NetworkSnapshot decoded(net.topo, 0);
  replay::ByteReader r(encoded);
  ASSERT_TRUE(replay::DecodeFrame(r, decoded.frame()).ok());
  EXPECT_EQ(EncodeFrameBytes(decoded.frame()), encoded);
  EXPECT_FALSE(decoded.Responded(net::NodeId(2)));
  EXPECT_EQ(decoded.frame().PresentSignalCount(),
            snapshot.frame().PresentSignalCount());
}

TEST(FrameCodec, RandomTopologiesRoundTrip) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    util::Rng topo_rng(seed);
    const testing::HealthyNetwork net(net::Waxman(20 + 7 * seed, topo_rng),
                                      seed);
    const telemetry::NetworkSnapshot snapshot = net.Snapshot(seed);
    const std::string encoded = EncodeSnapshotBytes(snapshot);

    telemetry::NetworkSnapshot decoded(net.topo, 0);
    replay::ByteReader r(encoded);
    ASSERT_TRUE(replay::DecodeSnapshot(r, decoded).ok()) << "seed " << seed;
    EXPECT_EQ(EncodeSnapshotBytes(decoded), encoded) << "seed " << seed;
  }
}

TEST(FrameCodec, InputRoundTripIsByteIdentical) {
  const testing::HealthyNetwork net = testing::MakeAbilene();
  const controlplane::ControllerInput input = net.Input(net.Snapshot());

  std::string encoded;
  replay::ByteWriter w(encoded);
  replay::EncodeInput(input, w);

  controlplane::ControllerInput decoded;
  replay::ByteReader r(encoded);
  ASSERT_TRUE(replay::DecodeInput(r, net.topo, decoded).ok());
  EXPECT_EQ(r.remaining(), 0u);

  std::string reencoded;
  replay::ByteWriter w2(reencoded);
  replay::EncodeInput(decoded, w2);
  EXPECT_EQ(reencoded, encoded);
  EXPECT_EQ(decoded.epoch, input.epoch);
  EXPECT_EQ(decoded.link_available, input.link_available);
  EXPECT_EQ(decoded.node_drained, input.node_drained);
}

TEST(FrameCodec, VerdictRoundTripIsByteIdentical) {
  replay::EpochVerdict verdict;
  verdict.validated = true;
  verdict.accept = false;
  verdict.used_fallback = true;
  verdict.reason = "REJECT: 3 violations";
  verdict.summary = "demand:2 topology:1";
  verdict.decision_digest = 0xdeadbeefcafef00dull;
  verdict.evaluated = 42;
  verdict.failed = 3;
  verdict.skipped = 1;
  verdict.invariants.push_back(
      {"demand", "ingress(SEAT)", 0.31, 0.02, obs::InvariantVerdict::kFail});
  verdict.invariants.push_back(
      {"topology", "link(A->B)", 0.9, 0.5, obs::InvariantVerdict::kPass});

  std::string encoded;
  replay::ByteWriter w(encoded);
  replay::EncodeVerdict(verdict, w);

  replay::EpochVerdict decoded;
  replay::ByteReader r(encoded);
  ASSERT_TRUE(replay::DecodeVerdict(r, decoded).ok());
  EXPECT_EQ(r.remaining(), 0u);

  std::string reencoded;
  replay::ByteWriter w2(reencoded);
  replay::EncodeVerdict(decoded, w2);
  EXPECT_EQ(reencoded, encoded);
  EXPECT_EQ(decoded.reason, verdict.reason);
  EXPECT_EQ(decoded.decision_digest, verdict.decision_digest);
  ASSERT_EQ(decoded.invariants.size(), 2u);
  EXPECT_EQ(decoded.invariants[0].invariant, "ingress(SEAT)");
  EXPECT_EQ(decoded.invariants[0].verdict, obs::InvariantVerdict::kFail);
}

TEST(FrameCodec, EpochRecordRoundTripIsByteIdentical) {
  const testing::HealthyNetwork net = testing::MakeAbilene();
  const telemetry::NetworkSnapshot snapshot = net.Snapshot();
  const controlplane::ControllerInput input = net.Input(snapshot);
  replay::EpochVerdict verdict;
  verdict.validated = true;
  verdict.decision_digest = 17;

  std::string encoded;
  replay::ByteWriter w(encoded);
  replay::EncodeEpochRecord(9, snapshot, input, verdict, w);

  replay::EpochRecord decoded(net.topo);
  replay::ByteReader r(encoded);
  ASSERT_TRUE(replay::DecodeEpochRecord(r, decoded).ok());
  EXPECT_EQ(decoded.epoch, 9u);

  std::string reencoded;
  replay::ByteWriter w2(reencoded);
  replay::EncodeEpochRecord(decoded.epoch, decoded.snapshot, decoded.input,
                            decoded.verdict, w2);
  EXPECT_EQ(reencoded, encoded);
}

TEST(FrameCodec, TrailingBytesAreAnError) {
  const testing::HealthyNetwork net = testing::MakeAbilene();
  const telemetry::NetworkSnapshot snapshot = net.Snapshot();
  const controlplane::ControllerInput input = net.Input(snapshot);
  std::string encoded;
  replay::ByteWriter w(encoded);
  replay::EncodeEpochRecord(1, snapshot, input, replay::EpochVerdict{}, w);
  encoded.push_back('\0');

  replay::EpochRecord decoded(net.topo);
  replay::ByteReader r(encoded);
  const util::Status status = replay::DecodeEpochRecord(r, decoded);
  EXPECT_FALSE(status.ok());
}

}  // namespace
}  // namespace hodor
