# Empty compiler generated dependencies file for core_figure3_and_experiment_test.
# This may be replaced when dependencies are built.
