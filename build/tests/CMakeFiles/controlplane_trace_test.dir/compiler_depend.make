# Empty compiler generated dependencies file for controlplane_trace_test.
# This may be replaced when dependencies are built.
