#include "net/topology.h"

#include <cstdint>
#include <sstream>

namespace hodor::net {

NodeId Topology::AddNode(const std::string& name) {
  HODOR_CHECK_MSG(!name.empty(), "node name must be non-empty");
  HODOR_CHECK_MSG(name_index_.find(name) == name_index_.end(),
                  "duplicate node name: " + name);
  const NodeId id(static_cast<NodeId::underlying_type>(nodes_.size()));
  nodes_.push_back(Node{id, name, /*has_external_port=*/false,
                        /*external_capacity=*/0.0});
  out_links_.emplace_back();
  in_links_.emplace_back();
  name_index_.emplace(name, id);
  return id;
}

void Topology::AddExternalPort(NodeId node, double capacity) {
  HODOR_CHECK(node.valid() && node.value() < nodes_.size());
  HODOR_CHECK_MSG(capacity > 0.0, "external capacity must be positive");
  nodes_[node.value()].has_external_port = true;
  nodes_[node.value()].external_capacity = capacity;
}

LinkId Topology::AddBidirectionalLink(NodeId a, NodeId b, double capacity,
                                      double metric) {
  HODOR_CHECK(a.valid() && a.value() < nodes_.size());
  HODOR_CHECK(b.valid() && b.value() < nodes_.size());
  HODOR_CHECK_MSG(a != b, "self-loop links are not allowed");
  HODOR_CHECK_MSG(capacity > 0.0, "link capacity must be positive");
  HODOR_CHECK_MSG(metric >= 1.0, "link metric must be >= 1");

  const LinkId fwd(static_cast<LinkId::underlying_type>(links_.size()));
  const LinkId rev(static_cast<LinkId::underlying_type>(links_.size() + 1));
  links_.push_back(Link{fwd, a, b, capacity, metric, rev});
  links_.push_back(Link{rev, b, a, capacity, metric, fwd});
  link_name_cache_.push_back(nodes_[a.value()].name + "->" +
                             nodes_[b.value()].name);
  link_name_cache_.push_back(nodes_[b.value()].name + "->" +
                             nodes_[a.value()].name);
  out_links_[a.value()].push_back(fwd);
  in_links_[b.value()].push_back(fwd);
  out_links_[b.value()].push_back(rev);
  in_links_[a.value()].push_back(rev);
  return fwd;
}

const Node& Topology::node(NodeId id) const {
  HODOR_CHECK(id.valid() && id.value() < nodes_.size());
  return nodes_[id.value()];
}

const Link& Topology::link(LinkId id) const {
  HODOR_CHECK(id.valid() && id.value() < links_.size());
  return links_[id.value()];
}

util::StatusOr<NodeId> Topology::FindNode(const std::string& name) const {
  auto it = name_index_.find(name);
  if (it == name_index_.end()) {
    return util::NotFoundError("no node named '" + name + "'");
  }
  return it->second;
}

util::StatusOr<LinkId> Topology::FindLink(NodeId src, NodeId dst) const {
  HODOR_CHECK(src.valid() && src.value() < nodes_.size());
  for (LinkId lid : out_links_[src.value()]) {
    if (links_[lid.value()].dst == dst) return lid;
  }
  std::ostringstream os;
  os << "no link " << node(src).name << "->";
  if (dst.valid() && dst.value() < nodes_.size()) os << node(dst).name;
  else os << "<invalid>";
  return util::NotFoundError(os.str());
}

const std::vector<LinkId>& Topology::OutLinks(NodeId node) const {
  HODOR_CHECK(node.valid() && node.value() < nodes_.size());
  return out_links_[node.value()];
}

const std::vector<LinkId>& Topology::InLinks(NodeId node) const {
  HODOR_CHECK(node.valid() && node.value() < nodes_.size());
  return in_links_[node.value()];
}

std::vector<NodeId> Topology::NodeIds() const {
  std::vector<NodeId> ids;
  ids.reserve(nodes_.size());
  for (const Node& n : nodes_) ids.push_back(n.id);
  return ids;
}

std::vector<LinkId> Topology::LinkIds() const {
  std::vector<LinkId> ids;
  ids.reserve(links_.size());
  for (const Link& l : links_) ids.push_back(l.id);
  return ids;
}

std::vector<NodeId> Topology::ExternalNodes() const {
  std::vector<NodeId> ids;
  for (const Node& n : nodes_) {
    if (n.has_external_port) ids.push_back(n.id);
  }
  return ids;
}

const std::string& Topology::LinkNameRef(LinkId id) const {
  return link_name_cache_[link(id).id.value()];
}

namespace {

// Local FNV-1a 64: net links only hodor_util, and the digest must stay
// stable independent of any hashing changes elsewhere in the tree.
constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void HashBytes(std::uint64_t* h, const void* data, std::size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    *h ^= p[i];
    *h *= kFnvPrime;
  }
}

void HashString(std::uint64_t* h, const std::string& s) {
  HashBytes(h, s.data(), s.size());
  const unsigned char sep = 0xff;  // length-prefix-free field separator
  HashBytes(h, &sep, 1);
}

void HashU64(std::uint64_t* h, std::uint64_t v) { HashBytes(h, &v, sizeof v); }

void HashDouble(std::uint64_t* h, double v) { HashBytes(h, &v, sizeof v); }

}  // namespace

std::uint64_t StructuralDigest(const Topology& topo) {
  std::uint64_t h = kFnvOffset;
  HashString(&h, topo.name());
  HashU64(&h, topo.node_count());
  for (const Node& n : topo.nodes()) {
    HashString(&h, n.name);
    HashU64(&h, n.has_external_port ? 1 : 0);
    if (n.has_external_port) HashDouble(&h, n.external_capacity);
  }
  HashU64(&h, topo.link_count());
  for (const Link& l : topo.links()) {
    HashU64(&h, l.src.value());
    HashU64(&h, l.dst.value());
    HashDouble(&h, l.capacity);
    HashDouble(&h, l.metric);
  }
  return h;
}

util::Status Topology::Validate() const {
  for (const Link& l : links_) {
    if (!l.src.valid() || l.src.value() >= nodes_.size() ||
        !l.dst.valid() || l.dst.value() >= nodes_.size()) {
      return util::InternalError("link with invalid endpoint");
    }
    if (!l.reverse.valid() || l.reverse.value() >= links_.size()) {
      return util::InternalError("link with invalid reverse pointer");
    }
    const Link& r = links_[l.reverse.value()];
    if (r.reverse != l.id || r.src != l.dst || r.dst != l.src) {
      return util::InternalError("inconsistent reverse link for " +
                                 LinkName(l.id));
    }
  }
  return util::Status::Ok();
}

}  // namespace hodor::net
