# Empty dependencies file for core_hardening_test.
# This may be replaced when dependencies are built.
