#include "obs/serve/telemetry_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>
#include <utility>

#include "obs/health/signal_health.h"
#include "obs/metrics.h"
#include "obs/provenance.h"
#include "obs/serve/dashboard_html.h"
#include "obs/timeseries.h"
#include "util/logging.h"
#include "util/parallel.h"

// Stamped by CMake from `git describe --always --dirty`; the fallback
// covers out-of-tree compiles (e.g. the strict-warning syntax pass).
#ifndef HODOR_GIT_DESCRIBE
#define HODOR_GIT_DESCRIBE "unknown"
#endif

namespace hodor::obs {

namespace {

constexpr const char* kJsonType = "application/json";
constexpr const char* kHtmlType = "text/html; charset=utf-8";
// The Prometheus text exposition content type scrapers expect.
constexpr const char* kPrometheusType =
    "text/plain; version=0.0.4; charset=utf-8";
// Request heads beyond this are rejected; every legitimate scrape fits in
// a fraction of it.
constexpr std::size_t kMaxRequestBytes = 8192;
// /query series globs beyond this are hostile, not queries.
constexpr std::size_t kMaxSeriesGlobBytes = 512;

// Every endpoint reports live state: a cached response is a stale lie, so
// all responses (errors included) carry Cache-Control: no-store.
std::string Respond(int status, const char* content_type,
                    std::string_view body) {
  return BuildHttpResponse(status, content_type, body,
                           "Cache-Control: no-store\r\n");
}

void CloseFd(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

bool SendAll(int fd, std::string_view data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

TelemetryServer::TelemetryServer(TelemetryServerOptions opts)
    : opts_(std::move(opts)) {}

TelemetryServer::~TelemetryServer() { Stop(); }

bool TelemetryServer::Start() {
  if (running_) return true;

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return false;
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(opts_.port);
  if (::inet_pton(AF_INET, opts_.bind_address.c_str(), &addr.sin_addr) != 1) {
    CloseFd(listen_fd_);
    return false;
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(listen_fd_, 16) < 0) {
    HODOR_LOG(kWarning) << "telemetry server: cannot bind "
                        << opts_.bind_address << ":" << opts_.port << ": "
                        << std::strerror(errno);
    CloseFd(listen_fd_);
    return false;
  }

  // Resolve an ephemeral port request.
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
      0) {
    port_ = ntohs(bound.sin_port);
  }

  if (::pipe(wake_pipe_) != 0) {
    CloseFd(listen_fd_);
    return false;
  }

  running_ = true;
  start_time_ = std::chrono::steady_clock::now();
  thread_ = std::thread(&TelemetryServer::Serve, this);
  return true;
}

void TelemetryServer::Stop() {
  if (!running_) return;
  running_ = false;
  // Wake the poll loop so the thread notices the flag.
  const char byte = 'q';
  [[maybe_unused]] ssize_t n = ::write(wake_pipe_[1], &byte, 1);
  if (thread_.joinable()) thread_.join();
  CloseFd(listen_fd_);
  CloseFd(wake_pipe_[0]);
  CloseFd(wake_pipe_[1]);
  port_ = 0;
}

std::string TelemetryServer::url() const {
  return "http://" + opts_.bind_address + ":" + std::to_string(port_);
}

void TelemetryServer::Serve() {
  while (running_) {
    pollfd fds[2];
    fds[0] = {listen_fd_, POLLIN, 0};
    fds[1] = {wake_pipe_[0], POLLIN, 0};
    const int ready = ::poll(fds, 2, /*timeout_ms=*/500);
    if (!running_) break;
    if (ready <= 0) continue;  // timeout or EINTR: re-check the flag
    if (!(fds[0].revents & POLLIN)) continue;
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;
    HandleConnection(client);
    ::close(client);
  }
}

void TelemetryServer::HandleConnection(int client_fd) {
  timeval tv{};
  tv.tv_sec = opts_.request_timeout_ms / 1000;
  tv.tv_usec = (opts_.request_timeout_ms % 1000) * 1000;
  ::setsockopt(client_fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));

  // Read until the end of the header block (we never accept bodies).
  std::string head;
  char buf[2048];
  while (head.find("\r\n\r\n") == std::string::npos &&
         head.find("\n\n") == std::string::npos) {
    const ssize_t n = ::recv(client_fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    head.append(buf, static_cast<std::size_t>(n));
    if (head.size() > kMaxRequestBytes) {
      SendAll(client_fd,
              Respond(400, kJsonType,
                                "{\"error\":\"request too large\"}"));
      return;
    }
  }
  if (head.empty()) return;  // client went away

  const std::optional<HttpRequest> request = ParseHttpRequest(head);
  std::string response;
  if (!request) {
    response = Respond(400, kJsonType,
                                 "{\"error\":\"malformed request\"}");
  } else {
    response = HandleRequest(*request);
  }
  SendAll(client_fd, response);
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++requests_served_;
  }
}

const std::vector<TelemetryServer::Route>& TelemetryServer::Routes() {
  // Declaration order is presentation order on "/". "/" itself routes like
  // any other entry but is filtered out of the index it renders.
  static const std::vector<Route> routes = {
      {"/metrics", &TelemetryServer::HandleMetrics},
      {"/metrics.json", &TelemetryServer::HandleMetricsJson},
      {"/healthz", &TelemetryServer::RenderHealthz},
      {"/decisions", &TelemetryServer::RenderDecisions},
      {"/trace", &TelemetryServer::RenderTrace},
      {"/health/signals", &TelemetryServer::HandleSignals},
      {"/alerts", &TelemetryServer::HandleAlerts},
      {"/query", &TelemetryServer::RenderQuery},
      {"/slo", &TelemetryServer::HandleSlo},
      {"/fleet", &TelemetryServer::HandleFleet},
      {"/buildz", &TelemetryServer::RenderBuildz},
      {"/dashboard", &TelemetryServer::HandleDashboard},
      {"/", &TelemetryServer::RenderIndex},
  };
  return routes;
}

std::string TelemetryServer::HandleRequest(const HttpRequest& request) {
  if (request.method != "GET") {
    return Respond(405, kJsonType,
                             "{\"error\":\"only GET is supported\"}");
  }
  for (const Route& route : Routes()) {
    if (request.path == route.path) return (this->*route.handler)(request);
  }
  return Respond(404, kJsonType, "{\"error\":\"unknown path\"}");
}

std::string TelemetryServer::HandleMetrics(const HttpRequest&) {
  std::lock_guard<std::mutex> lock(mu_);
  return Respond(200, kPrometheusType, metrics_text_);
}

std::string TelemetryServer::HandleMetricsJson(const HttpRequest&) {
  std::lock_guard<std::mutex> lock(mu_);
  return Respond(200, kJsonType,
                 metrics_json_.empty() ? "{}" : metrics_json_);
}

std::string TelemetryServer::HandleSignals(const HttpRequest&) {
  std::lock_guard<std::mutex> lock(mu_);
  return Respond(200, kJsonType, signals_json_);
}

std::string TelemetryServer::HandleAlerts(const HttpRequest&) {
  std::lock_guard<std::mutex> lock(mu_);
  return Respond(200, kJsonType, alerts_json_);
}

std::string TelemetryServer::HandleSlo(const HttpRequest&) {
  std::lock_guard<std::mutex> lock(mu_);
  return Respond(200, kJsonType, slo_json_);
}

std::string TelemetryServer::HandleFleet(const HttpRequest&) {
  std::lock_guard<std::mutex> lock(mu_);
  return Respond(200, kJsonType, fleet_json_);
}

std::string TelemetryServer::HandleDashboard(const HttpRequest&) {
  return Respond(200, kHtmlType, kDashboardHtml);
}

std::string TelemetryServer::RenderQuery(const HttpRequest& request) {
  TimeSeriesQuery query;
  auto it = request.query.find("series");
  if (it != request.query.end()) {
    if (it->second.size() > kMaxSeriesGlobBytes) {
      return Respond(400, kJsonType, "{\"error\":\"series glob too long\"}");
    }
    query.series = it->second;
  }
  it = request.query.find("last");
  if (it != request.query.end()) {
    try {
      query.last = static_cast<std::size_t>(std::stoul(it->second));
    } catch (...) {
      return Respond(400, kJsonType, "{\"error\":\"last must be a number\"}");
    }
  }
  it = request.query.find("res");
  if (it != request.query.end()) query.resolution = it->second;

  // Grab the published pointer under the lock, render outside it: the
  // store has its own internal synchronization against the sampler.
  std::shared_ptr<const TimeSeriesStore> store;
  {
    std::lock_guard<std::mutex> lock(mu_);
    store = timeseries_;
  }
  if (store == nullptr) {
    if (query.resolution != "raw" && query.resolution != "10" &&
        query.resolution != "100") {
      return Respond(400, kJsonType, "{\"error\":\"unknown resolution\"}");
    }
    return Respond(200, kJsonType,
                   "{\"resolution\":\"" + query.resolution +
                       "\",\"stride\":0,\"last\":" +
                       std::to_string(query.last) +
                       ",\"epochs_sampled\":0,\"series_total\":0,"
                       "\"dropped_series\":0,\"series\":[]}");
  }
  if (!store->HasResolution(query.resolution)) {
    return Respond(400, kJsonType, "{\"error\":\"unknown resolution\"}");
  }
  return Respond(200, kJsonType, store->QueryJson(query));
}

std::string TelemetryServer::RenderBuildz(const HttpRequest&) {
  const auto uptime =
      start_time_.time_since_epoch().count() == 0
          ? std::chrono::steady_clock::duration::zero()
          : std::chrono::steady_clock::now() - start_time_;
  std::ostringstream os;
  os << "{\"status\":\"ok\",\"git\":\"" << HODOR_GIT_DESCRIBE
     << "\",\"uptime_seconds\":"
     << std::chrono::duration_cast<std::chrono::seconds>(uptime).count()
     << ",\"hardware_threads\":" << std::thread::hardware_concurrency()
     << ",\"hodor_threads\":" << util::ThreadsFromEnv(1) << "}";
  return Respond(200, kJsonType, os.str());
}

std::string TelemetryServer::RenderHealthz(const HttpRequest&) {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  os << "{\"status\":\"ok\",\"last_epoch\":" << last_published_epoch_
     << ",\"published_epochs\":" << published_epochs_
     << ",\"decisions_held\":" << decisions_.size()
     << ",\"requests_served\":" << requests_served_ << "}";
  return Respond(200, kJsonType, os.str());
}

std::string TelemetryServer::RenderDecisions(const HttpRequest& request) {
  std::size_t limit = opts_.max_decisions;
  const auto it = request.query.find("last");
  if (it != request.query.end()) {
    try {
      limit = static_cast<std::size_t>(std::stoul(it->second));
    } catch (...) {
      return Respond(400, kJsonType,
                               "{\"error\":\"last must be a number\"}");
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  os << "[";
  std::size_t emitted = 0;
  for (const std::string& d : decisions_) {  // newest first
    if (emitted >= limit) break;
    if (emitted) os << ",";
    os << d;
    ++emitted;
  }
  os << "]";
  return Respond(200, kJsonType, os.str());
}

std::string TelemetryServer::RenderTrace(const HttpRequest& request) {
  std::size_t limit = opts_.max_trace_epochs;
  const auto it = request.query.find("last");
  if (it != request.query.end()) {
    try {
      limit = static_cast<std::size_t>(std::stoul(it->second));
    } catch (...) {
      return Respond(400, kJsonType,
                               "{\"error\":\"last must be a number\"}");
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  os << "[";
  std::size_t emitted = 0;
  for (const std::string& t : traces_) {  // newest first
    if (emitted >= limit) break;
    if (emitted) os << ",";
    os << t;
    ++emitted;
  }
  os << "]";
  return Respond(200, kJsonType, os.str());
}

std::string TelemetryServer::RenderIndex(const HttpRequest&) {
  // Enumerates the route table so new endpoints list themselves; "/" is
  // the page being rendered and is omitted.
  std::ostringstream os;
  os << "{\"endpoints\":[";
  bool first = true;
  for (const Route& route : Routes()) {
    if (std::string_view(route.path) == "/") continue;
    if (!first) os << ",";
    os << "\"" << route.path << "\"";
    first = false;
  }
  os << "]}";
  return Respond(200, kJsonType, os.str());
}

void TelemetryServer::PublishMetrics(const MetricsRegistry* registry) {
  const MetricsRegistry& reg =
      ResolveRegistry(const_cast<MetricsRegistry*>(registry));
  // Render outside the lock: export cost must not block in-flight scrapes.
  std::string text = reg.ExportPrometheus();
  std::string json = reg.ExportJson();
  std::lock_guard<std::mutex> lock(mu_);
  metrics_text_ = std::move(text);
  metrics_json_ = std::move(json);
}

void TelemetryServer::PublishSignals(const SignalHealthBoard& board) {
  std::string json = board.ToJson();
  std::lock_guard<std::mutex> lock(mu_);
  signals_json_ = std::move(json);
}

void TelemetryServer::PublishDecision(const DecisionRecord& record) {
  std::string json = record.ToJson();
  std::lock_guard<std::mutex> lock(mu_);
  decisions_.push_front(std::move(json));
  while (decisions_.size() > opts_.max_decisions) decisions_.pop_back();
  last_published_epoch_ = record.epoch;
  ++published_epochs_;
}

void TelemetryServer::PublishAlerts(std::string alerts_json) {
  std::lock_guard<std::mutex> lock(mu_);
  alerts_json_ = std::move(alerts_json);
}

void TelemetryServer::PublishTrace(std::uint64_t epoch,
                                   std::string breakdown_json) {
  (void)epoch;  // identity lives inside the JSON; kept for future filters
  std::lock_guard<std::mutex> lock(mu_);
  traces_.push_front(std::move(breakdown_json));
  while (traces_.size() > opts_.max_trace_epochs) traces_.pop_back();
}

void TelemetryServer::PublishSlo(std::string slo_json) {
  std::lock_guard<std::mutex> lock(mu_);
  slo_json_ = std::move(slo_json);
}

void TelemetryServer::PublishFleet(std::string fleet_json) {
  std::lock_guard<std::mutex> lock(mu_);
  fleet_json_ = std::move(fleet_json);
}

void TelemetryServer::PublishTimeSeries(
    std::shared_ptr<const TimeSeriesStore> store) {
  std::lock_guard<std::mutex> lock(mu_);
  timeseries_ = std::move(store);
}

std::uint64_t TelemetryServer::requests_served() const {
  std::lock_guard<std::mutex> lock(mu_);
  return requests_served_;
}

}  // namespace hodor::obs
