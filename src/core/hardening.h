// Hodor step 2: hardening router signals (paper §3.2, §4.1-§4.2).
//
// Detection uses link symmetry (R1): the TX counter at one end of a link and
// the RX counter at the other end measure the same traffic and must agree
// within τ_h; link statuses at the two ends must match. Pairs that disagree
// or are missing become unknowns.
//
// Repair uses flow conservation (R2): at every router,
//     Σ_in rates + ext_in = Σ_out rates + dropped + ext_out,
// a linear system over the unknowns whose rank is bounded by |V|−1. Three
// repair mechanisms run in order:
//   (a) pairwise disambiguation — when TX≠RX, test each candidate against
//       conservation at its own router; if exactly one fits, it wins
//       (the paper's running example: solving at B finds x = 76);
//   (b) constraint propagation — any node equation with exactly one
//       remaining unknown determines it; iterate to fixpoint;
//   (c) a global least-squares solve over whatever unknowns remain.
//
// Link-state fusion adds alternative signals (R3: hardened rates — traffic
// flowing implies up) and manufactured signals (R4: active probes), with a
// weighted-evidence truth table that can be tuned to operator risk
// tolerance.
//
// The engine reads the snapshot's columnar SignalFrame (O(1) per signal)
// and, with num_threads > 1, shards the per-link R1 scan and the per-router
// R2 solves across a util::ThreadPool. Shards are contiguous and merged in
// shard order, so results are bit-identical at any thread count.
#pragma once

#include <memory>

#include "core/confidence.h"
#include "core/hardened_state.h"
#include "telemetry/snapshot.h"

namespace hodor::obs {
class MetricsRegistry;
class TraceWriter;
}  // namespace hodor::obs

namespace hodor::util {
class ThreadPool;
}  // namespace hodor::util

namespace hodor::core {

struct HardeningOptions {
  // τ_h: relative tolerance for R1 counter symmetry (paper: 2% from
  // production logs).
  double tau_h = 0.02;
  // Relative tolerance when testing a candidate counter against flow
  // conservation at a router; accounts for jitter accumulated across all
  // of the router's interfaces.
  double conservation_tau = 0.02;
  // Rates below this (Gbps) count as "no traffic" for R3 evidence.
  double activity_floor = 1e-6;

  // Feature switches (ablations in bench_hardening / bench_topology_drain).
  bool pairwise_disambiguation = true;  // repair (a)
  bool propagation_repair = true;       // repair (b)
  bool global_least_squares = true;     // repair (c)
  // Last resort (d): a pair with exactly one raw measurement left
  // unresolved by (a)-(c) adopts that measurement at reduced confidence —
  // e.g. the links of a silent degree-1 router, where conservation offers
  // no second opinion.
  bool accept_single_witness = true;

  // Paper footnote 3: a missing link rate can be solved at either adjacent
  // router, and the two solutions differ slightly under rolling-window
  // jitter ("We could average solutions from all adjacent routers, or
  // simply pick one"). When true, constraint propagation averages the two
  // endpoint solutions whenever both are available; when false it keeps
  // the first one found (the paper's "simply pick one").
  bool average_adjacent_solutions = true;
  bool use_alternative_signals = true;  // R3 in link-state fusion
  bool use_probes = true;               // R4 in link-state fusion

  // Evidence weights for link-state fusion.
  double status_weight = 1.0;
  double probe_weight = 1.5;
  double rate_weight = 1.0;

  // Scoring parameters for the confidence columns (rates + node scalars).
  // Both hardening paths run the same core::RateConfidence /
  // core::ScalarConfidence kernels with these parameters.
  ConfidenceModel confidence;

  // Worker threads for the sharded stages (R1 scan, per-router R2 solves,
  // link-state fusion, drains, confidence). 1 = fully serial; any value
  // produces bit-identical results (deterministic shard merge order).
  std::size_t num_threads = 1;

  // Observability (src/obs/): each Harden() call emits a "harden" stage
  // span and R1/R2 repair counters here. nullptr → the process-global
  // registry; `trace` optionally receives the span as a JSONL line.
  obs::MetricsRegistry* metrics = nullptr;
  obs::TraceWriter* trace = nullptr;
};

class HardeningEngine {
 public:
  explicit HardeningEngine(HardeningOptions opts = {});
  ~HardeningEngine();

  // Copying shares the options but not the scratch workspace or pool.
  HardeningEngine(const HardeningEngine& other);
  HardeningEngine& operator=(const HardeningEngine& other);
  HardeningEngine(HardeningEngine&&) noexcept;
  HardeningEngine& operator=(HardeningEngine&&) noexcept;

  const HardeningOptions& options() const { return opts_; }

  // Hardens one snapshot. Deterministic; does not modify the snapshot.
  // Reuses an internal scratch workspace across calls, so a given engine
  // must not run two Harden calls concurrently (distinct engines may).
  HardenedState Harden(const telemetry::NetworkSnapshot& snapshot) const;

  // Zero steady-state-allocation variant: `out` is cleared and refilled in
  // place, reusing its buffers (the pipeline's per-epoch workspace path).
  void HardenInto(const telemetry::NetworkSnapshot& snapshot,
                  HardenedState& out) const;

  // Incremental variant (DESIGN.md §12). When `delta` is non-null, not
  // `full`, and continues the epoch this engine hardened last
  // (delta->base_epoch matches, same topology), only the work reachable
  // from the changed signals is redone: the R1 scan runs over changed link
  // pairs only, repairs are skipped entirely when nothing in the repair
  // working set's neighbourhood moved (re-run globally from the maintained
  // candidate columns otherwise), and link-state/drain fusion re-fuses
  // only touched entities. The result is bit-identical to the full
  // recompute by construction. Any precondition failure silently falls
  // back to the full path and re-primes the cache. `harden_delta`, when
  // given, receives the exact changed-facet summary the checks consult.
  void HardenInto(const telemetry::NetworkSnapshot& snapshot,
                  HardenedState& out, const telemetry::FrameDelta* delta,
                  HardenDelta* harden_delta = nullptr) const;

  // The pool backing the sharded stages; null while num_threads <= 1.
  // Exposed so the Validator can run its three post-hardening checks as
  // sibling stages on the same workers instead of spawning a second pool.
  util::ThreadPool* pool() const;

 private:
  struct Workspace;

  // The full recompute (everything below the stage span / counts / metrics
  // epilogue shared by both paths).
  void HardenFull(const telemetry::NetworkSnapshot& snapshot,
                  HardenedState& out) const;
  // The incremental path; preconditions checked by the caller.
  void HardenIncremental(const telemetry::NetworkSnapshot& snapshot,
                         const telemetry::FrameDelta& delta,
                         HardenedState& out, HardenDelta& hd) const;

  void HardenRates(const telemetry::NetworkSnapshot& snapshot,
                   HardenedState& out) const;
  // Repairs (a)-(d) over the post-R1 state in `out` (split out so the
  // incremental path can re-run them verbatim when its skip condition
  // fails).
  void RunRateRepairs(const telemetry::NetworkSnapshot& snapshot,
                      HardenedState& out) const;
  void ScoreRateConfidence(const telemetry::NetworkSnapshot& snapshot,
                           HardenedState& out) const;
  void ScoreScalarConfidence(const telemetry::NetworkSnapshot& snapshot,
                             HardenedState& out) const;
  void HardenLinkStates(const telemetry::NetworkSnapshot& snapshot,
                        HardenedState& out) const;
  void HardenDrains(const telemetry::NetworkSnapshot& snapshot,
                    HardenedState& out) const;

  HardeningOptions opts_;
  mutable std::unique_ptr<util::ThreadPool> pool_;
  mutable std::unique_ptr<Workspace> ws_;
};

}  // namespace hodor::core
