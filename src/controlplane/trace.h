// Epoch traces and availability accounting.
//
// The paper's motivation is *availability*: operators count outage minutes,
// not validator verdicts. EpochTrace accumulates per-epoch outcomes from a
// Pipeline run and reduces them to the numbers an operator would report —
// availability against an SLO, outage episodes, time-to-detect, and the
// cost of rejections (fallback epochs).
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "controlplane/pipeline.h"

namespace hodor::controlplane {

// One epoch's outcome, reduced to what availability accounting needs.
struct EpochRecord {
  std::uint64_t epoch = 0;
  double demand_satisfaction = 1.0;
  double max_link_utilization = 0.0;
  bool fault_active = false;     // harness-side truth: a fault was injected
  bool validated = false;
  bool rejected = false;
  bool used_fallback = false;
  // Observability carried over from the EpochResult: how many invariants
  // fired, and the pipeline-level stage timings.
  std::size_t invariants_failed = 0;
  std::vector<obs::SpanRecord> spans;
};

struct AvailabilityReport {
  std::size_t epochs = 0;
  std::size_t slo_violations = 0;     // epochs below the satisfaction SLO
  double availability = 1.0;          // 1 - violations/epochs
  double worst_satisfaction = 1.0;
  double mean_satisfaction = 1.0;

  // Outage episodes: maximal runs of consecutive SLO-violating epochs.
  std::size_t outage_episodes = 0;
  std::size_t longest_outage_epochs = 0;

  // Of the epochs with an active fault, how many were rejected by the
  // validator (detection coverage over time).
  std::size_t faulty_epochs = 0;
  std::size_t faulty_epochs_rejected = 0;

  // Rejections on fault-free epochs (false-positive cost).
  std::size_t clean_epochs_rejected = 0;

  // Check fire rate: mean invariants fired per validated epoch.
  double mean_invariants_failed = 0.0;

  // Mean wall-clock per pipeline stage across the trace, in stage
  // taxonomy order (obs::kAllStages); stages that never ran are absent.
  std::vector<std::pair<std::string, double>> mean_stage_us;

  std::string ToString() const;
  // Operator/ingest form of this report (see README "Observability"), e.g.
  // dumped next to a bench's registry snapshot.
  std::string ToJson() const;
};

class EpochTrace {
 public:
  // Records one epoch. `fault_active` is ground truth from the harness
  // (whether any fault was injected this epoch).
  void Record(const EpochResult& result, bool fault_active);

  std::size_t size() const { return records_.size(); }
  const std::vector<EpochRecord>& records() const { return records_; }

  // Reduces the trace against a satisfaction SLO (e.g. 0.999).
  AvailabilityReport Summarize(double satisfaction_slo = 0.999) const;

 private:
  std::vector<EpochRecord> records_;
};

}  // namespace hodor::controlplane
