#include "obs/observatory.h"

#include "obs/span.h"

namespace hodor::obs {

Observatory::Observatory(ObservatoryOptions opts)
    : board_(opts.health),
      detection_(std::move(opts.detection)),
      timeseries_(std::make_shared<TimeSeriesStore>(std::move(opts.timeseries))) {}

void Observatory::ObserveEpoch(std::uint64_t epoch,
                               const MetricsRegistry* metrics_mirror,
                               const DecisionRecord& decision,
                               const std::vector<std::string>& fault_classes) {
  serving_.CopyFrom(metrics_mirror != nullptr ? *metrics_mirror
                                               : MetricsRegistry::Global());
  board_.ObserveEpoch(decision);
  board_.PublishGauges(&serving_);
  detection_.ObserveEpoch(epoch, fault_classes, decision, &serving_);
  ++epochs_observed_;
}

void Observatory::SampleTimeseries(std::uint64_t epoch) {
  // The span's own histogram lands in serving_ after the sample, so the
  // measured cost shows up in the store one epoch later — acceptable lag
  // for a per-epoch gauge of sink-side work.
  StageSpan span(Stage::kTimeseriesSample, epoch, &serving_);
  timeseries_->Sample(epoch, serving_);
}

void Observatory::PublishTo(TelemetryServer& server,
                            const DecisionRecord* decision) {
  server.PublishMetrics(&serving_);
  server.PublishSignals(board_);
  server.PublishSlo(detection_.SloJson());
  server.PublishTimeSeries(timeseries_);
  if (decision != nullptr) server.PublishDecision(*decision);
}

void Observatory::ObserveAndPublish(std::uint64_t epoch,
                                    const MetricsRegistry* metrics_mirror,
                                    const DecisionRecord& decision,
                                    const std::vector<std::string>& fault_classes,
                                    TelemetryServer* server) {
  ObserveEpoch(epoch, metrics_mirror, decision, fault_classes);
  SampleTimeseries(epoch);
  if (server != nullptr) PublishTo(*server, &decision);
}

}  // namespace hodor::obs
