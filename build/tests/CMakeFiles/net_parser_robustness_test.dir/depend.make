# Empty dependencies file for net_parser_robustness_test.
# This may be replaced when dependencies are built.
