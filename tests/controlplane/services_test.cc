#include "controlplane/services.h"

#include <gtest/gtest.h>

#include "faults/snapshot_faults.h"
#include "util/stats.h"
#include "test_util.h"

namespace hodor::controlplane {
namespace {

using net::LinkId;
using net::NodeId;

TEST(TopologyService, HealthyLinksAllAvailable) {
  testing::HealthyNetwork net(net::Figure3Triangle(), 3);
  const auto snap = net.Snapshot();
  TopologyService service;
  const auto available = service.Aggregate(snap);
  for (LinkId e : net.topo.LinkIds()) EXPECT_TRUE(available[e.value()]);
}

TEST(TopologyService, DownLinkExcluded) {
  net::Topology topo = net::Figure3Triangle();
  testing::HealthyNetwork net(std::move(topo), 3);
  const LinkId dead = net.topo.LinkIds()[0];
  net.state.SetLinkUp(dead, false);
  net.sim = flow::SimulateFlow(net.topo, net.state, net.demand, net.plan);
  const auto snap = net.Snapshot();
  const auto available = TopologyService().Aggregate(snap);
  EXPECT_FALSE(available[dead.value()]);
  EXPECT_FALSE(available[net.topo.link(dead).reverse.value()]);
}

TEST(TopologyService, MissingStatusConservativelyDown) {
  testing::HealthyNetwork net(net::Figure3Triangle(), 3);
  const NodeId a = net.topo.FindNode("A").value();
  const auto snap =
      net.Snapshot(1, faults::UnresponsiveRouter(a));
  const auto available = TopologyService().Aggregate(snap);
  for (LinkId e : net.topo.OutLinks(a)) {
    EXPECT_FALSE(available[e.value()]);
  }
  // The B<->C link is unaffected.
  const LinkId bc = net.topo
                        .FindLink(net.topo.FindNode("B").value(),
                                  net.topo.FindNode("C").value())
                        .value();
  EXPECT_TRUE(available[bc.value()]);
}

TEST(TopologyService, MissingStatusPolicyCanBePermissive) {
  testing::HealthyNetwork net(net::Figure3Triangle(), 3);
  const NodeId a = net.topo.FindNode("A").value();
  const auto snap = net.Snapshot(1, faults::UnresponsiveRouter(a));
  TopologyServiceOptions opts;
  opts.missing_status_means_down = false;
  const auto available = TopologyService(opts).Aggregate(snap);
  for (LinkId e : net.topo.LinkIds()) EXPECT_TRUE(available[e.value()]);
}

TEST(TopologyService, OneSideDownExcludesLink) {
  testing::HealthyNetwork net(net::Figure3Triangle(), 3);
  const LinkId e = net.topo.LinkIds()[0];
  const auto snap = net.Snapshot(
      1, faults::FalseLinkStatus(e, /*at_src=*/true,
                                 telemetry::LinkStatus::kDown));
  const auto available = TopologyService().Aggregate(snap);
  EXPECT_FALSE(available[e.value()]);
}

TEST(DemandService, MeasuresTrueDemandWithinNoise) {
  testing::HealthyNetwork net = testing::MakeAbilene();
  util::Rng rng(5);
  DemandServiceOptions opts;
  opts.measurement_noise = 0.002;
  const auto measured =
      DemandService(opts).Measure(net.topo, net.demand, rng);
  for (const auto& [i, j] : net.demand.Pairs()) {
    EXPECT_TRUE(util::WithinRelativeTolerance(measured.At(i, j),
                                              net.demand.At(i, j), 0.0021));
  }
}

TEST(DemandService, ZeroNoiseIsExact) {
  testing::HealthyNetwork net = testing::MakeAbilene();
  util::Rng rng(5);
  DemandServiceOptions opts;
  opts.measurement_noise = 0.0;
  const auto measured =
      DemandService(opts).Measure(net.topo, net.demand, rng);
  EXPECT_DOUBLE_EQ(measured.MaxAbsDifference(net.demand), 0.0);
}

TEST(DrainService, CollectsNodeAndLinkDrains) {
  net::Topology topo = net::Figure3Triangle();
  testing::HealthyNetwork net(std::move(topo), 3);
  const NodeId a = net.topo.FindNode("A").value();
  const LinkId bc = net.topo
                        .FindLink(net.topo.FindNode("B").value(),
                                  net.topo.FindNode("C").value())
                        .value();
  net.state.SetNodeDrained(a, true);
  net.state.SetLinkDrained(bc, true);
  net.sim = flow::SimulateFlow(net.topo, net.state, net.demand, net.plan);
  const auto snap = net.Snapshot();

  std::vector<bool> node_drained, link_drained;
  DrainService().Aggregate(snap, node_drained, link_drained);
  EXPECT_TRUE(node_drained[a.value()]);
  EXPECT_TRUE(link_drained[bc.value()]);
  EXPECT_TRUE(link_drained[net.topo.link(bc).reverse.value()]);
  EXPECT_FALSE(node_drained[net.topo.FindNode("B").value().value()]);
}

TEST(DrainService, MissingSignalsDefaultUndrained) {
  testing::HealthyNetwork net(net::Figure3Triangle(), 3);
  const NodeId a = net.topo.FindNode("A").value();
  const auto snap = net.Snapshot(1, faults::UnresponsiveRouter(a));
  std::vector<bool> node_drained, link_drained;
  DrainService().Aggregate(snap, node_drained, link_drained);
  EXPECT_FALSE(node_drained[a.value()]);
}

TEST(AggregateInputs, AssemblesAllThreeInputs) {
  testing::HealthyNetwork net = testing::MakeAbilene();
  const auto snap = net.Snapshot();
  const auto input = net.Input(snap);
  EXPECT_EQ(input.link_available.size(), net.topo.link_count());
  EXPECT_EQ(input.AvailableLinkCount(), net.topo.link_count());
  EXPECT_EQ(input.demand.node_count(), net.topo.node_count());
  EXPECT_GT(input.demand.Total(), 0.0);
  EXPECT_EQ(input.node_drained.size(), net.topo.node_count());
}

TEST(AggregateInputs, HooksMutateOutputs) {
  testing::HealthyNetwork net = testing::MakeAbilene();
  const auto snap = net.Snapshot();
  AggregationFaultHooks hooks;
  hooks.topology = [](std::vector<bool>& links) {
    links.assign(links.size(), false);
  };
  hooks.demand = [](flow::DemandMatrix& d) { d.Scale(0.0); };
  hooks.drain = [](std::vector<bool>& nodes, std::vector<bool>&) {
    nodes[0] = true;
  };
  const auto input = net.Input(snap, 2, hooks);
  EXPECT_EQ(input.AvailableLinkCount(), 0u);
  EXPECT_DOUBLE_EQ(input.demand.Total(), 0.0);
  EXPECT_TRUE(input.node_drained[0]);
}

TEST(ControllerInput, UsableFilterCombinesAvailabilityAndDrains) {
  net::Topology topo = net::Figure3Triangle();
  ControllerInput input = MakeEmptyInput(topo);
  const LinkId e = topo.LinkIds()[0];
  EXPECT_TRUE(input.LinkUsable(topo, e));
  input.link_drained[e.value()] = true;
  EXPECT_FALSE(input.LinkUsable(topo, e));
  input.link_drained[e.value()] = false;
  input.node_drained[topo.link(e).dst.value()] = true;
  EXPECT_FALSE(input.LinkUsable(topo, e));
  input.node_drained[topo.link(e).dst.value()] = false;
  input.link_available[e.value()] = false;
  EXPECT_FALSE(input.LinkUsable(topo, e));
  const auto filter = input.UsableFilter(topo);
  EXPECT_FALSE(filter(e));
}

}  // namespace
}  // namespace hodor::controlplane
