#include "net/graph_algorithms.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <set>
#include <unordered_set>

namespace hodor::net {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

LinkFilter AllLinks() {
  return [](LinkId) { return true; };
}

double PathMetric(const Topology& topo, const Path& path) {
  double total = 0.0;
  for (LinkId lid : path) total += topo.link(lid).metric;
  return total;
}

NodeId PathSource(const Topology& topo, const Path& path) {
  HODOR_CHECK(!path.empty());
  return topo.link(path.front()).src;
}

NodeId PathDestination(const Topology& topo, const Path& path) {
  HODOR_CHECK(!path.empty());
  return topo.link(path.back()).dst;
}

bool IsValidSimplePath(const Topology& topo, const Path& path) {
  if (path.empty()) return false;
  std::unordered_set<NodeId> seen;
  seen.insert(topo.link(path.front()).src);
  for (std::size_t i = 0; i < path.size(); ++i) {
    const Link& l = topo.link(path[i]);
    if (i + 1 < path.size() && l.dst != topo.link(path[i + 1]).src) {
      return false;
    }
    if (!seen.insert(l.dst).second) return false;  // repeated node
  }
  return true;
}

namespace {

// Dijkstra returning per-node (distance, incoming link) from src.
struct DijkstraResult {
  std::vector<double> dist;
  std::vector<LinkId> prev_link;
};

DijkstraResult RunDijkstra(const Topology& topo, NodeId src,
                           const LinkFilter& filter) {
  const std::size_t n = topo.node_count();
  DijkstraResult res;
  res.dist.assign(n, kInf);
  res.prev_link.assign(n, LinkId::Invalid());
  res.dist[src.value()] = 0.0;

  using Entry = std::pair<double, std::uint32_t>;  // (dist, node index)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> pq;
  pq.emplace(0.0, src.value());
  while (!pq.empty()) {
    auto [d, u] = pq.top();
    pq.pop();
    if (d > res.dist[u]) continue;  // stale entry
    for (LinkId lid : topo.OutLinks(NodeId(u))) {
      if (!filter(lid)) continue;
      const Link& l = topo.link(lid);
      const double nd = d + l.metric;
      if (nd < res.dist[l.dst.value()]) {
        res.dist[l.dst.value()] = nd;
        res.prev_link[l.dst.value()] = lid;
        pq.emplace(nd, l.dst.value());
      }
    }
  }
  return res;
}

Path ExtractPath(const Topology& topo, const DijkstraResult& res, NodeId src,
                 NodeId dst) {
  Path path;
  NodeId cur = dst;
  while (cur != src) {
    const LinkId lid = res.prev_link[cur.value()];
    HODOR_CHECK(lid.valid());
    path.push_back(lid);
    cur = topo.link(lid).src;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace

util::StatusOr<Path> ShortestPath(const Topology& topo, NodeId src, NodeId dst,
                                  const LinkFilter& filter) {
  HODOR_CHECK(src.valid() && dst.valid());
  if (src == dst) {
    return util::InvalidArgumentError("src == dst: no self-paths");
  }
  const DijkstraResult res = RunDijkstra(topo, src, filter);
  if (res.dist[dst.value()] == kInf) {
    return util::NotFoundError("no path " + topo.node(src).name + "->" +
                               topo.node(dst).name);
  }
  return ExtractPath(topo, res, src, dst);
}

std::vector<double> ShortestPathMetrics(const Topology& topo, NodeId src,
                                        const LinkFilter& filter) {
  return RunDijkstra(topo, src, filter).dist;
}

std::vector<Path> KShortestPaths(const Topology& topo, NodeId src, NodeId dst,
                                 std::size_t k, const LinkFilter& filter) {
  std::vector<Path> result;
  if (k == 0) return result;
  auto first = ShortestPath(topo, src, dst, filter);
  if (!first.ok()) return result;
  result.push_back(std::move(first).value());

  // Candidate paths ordered by (metric, path) for deterministic tie-breaks.
  auto cmp = [&](const Path& a, const Path& b) {
    const double ma = PathMetric(topo, a);
    const double mb = PathMetric(topo, b);
    if (ma != mb) return ma < mb;
    return a < b;
  };
  std::set<Path, decltype(cmp)> candidates(cmp);

  while (result.size() < k) {
    const Path& last = result.back();
    // Spur from each node along the previous shortest path.
    for (std::size_t i = 0; i < last.size(); ++i) {
      // Root: prefix of `last` up to (not including) link i.
      const Path root(last.begin(), last.begin() + static_cast<long>(i));
      const NodeId spur =
          root.empty() ? src : topo.link(root.back()).dst;

      // Links removed: any link that would continue a previously found path
      // sharing this root, plus links into root nodes (loopless constraint).
      std::unordered_set<LinkId> banned_links;
      for (const Path& p : result) {
        if (p.size() > i &&
            std::equal(root.begin(), root.end(), p.begin())) {
          banned_links.insert(p[i]);
        }
      }
      std::unordered_set<NodeId> banned_nodes;
      banned_nodes.insert(src);
      for (LinkId lid : root) banned_nodes.insert(topo.link(lid).dst);
      banned_nodes.erase(spur);

      LinkFilter spur_filter = [&](LinkId lid) {
        if (!filter(lid)) return false;
        if (banned_links.count(lid)) return false;
        const Link& l = topo.link(lid);
        if (banned_nodes.count(l.src) || banned_nodes.count(l.dst)) {
          return false;
        }
        return true;
      };
      auto spur_path = ShortestPath(topo, spur, dst, spur_filter);
      if (!spur_path.ok()) continue;
      Path total = root;
      const Path& sp = spur_path.value();
      total.insert(total.end(), sp.begin(), sp.end());
      if (IsValidSimplePath(topo, total)) candidates.insert(std::move(total));
    }
    if (candidates.empty()) break;
    result.push_back(*candidates.begin());
    candidates.erase(candidates.begin());
  }
  return result;
}

std::vector<NodeId> ReachableFrom(const Topology& topo, NodeId src,
                                  const LinkFilter& filter) {
  std::vector<bool> seen(topo.node_count(), false);
  std::queue<NodeId> q;
  q.push(src);
  seen[src.value()] = true;
  std::vector<NodeId> out;
  while (!q.empty()) {
    const NodeId u = q.front();
    q.pop();
    out.push_back(u);
    for (LinkId lid : topo.OutLinks(u)) {
      if (!filter(lid)) continue;
      const NodeId v = topo.link(lid).dst;
      if (!seen[v.value()]) {
        seen[v.value()] = true;
        q.push(v);
      }
    }
  }
  return out;
}

bool IsStronglyConnected(const Topology& topo, const LinkFilter& filter) {
  if (topo.node_count() == 0) return true;
  // Physical links are bidirectional, but filters may not be symmetric, so
  // check reachability from every node. Sizes here are control-plane scale.
  for (const Node& n : topo.nodes()) {
    if (ReachableFrom(topo, n.id, filter).size() != topo.node_count()) {
      return false;
    }
  }
  return true;
}

util::Matrix IncidenceMatrix(const Topology& topo) {
  util::Matrix m(topo.node_count(), topo.link_count(), 0.0);
  for (const Link& l : topo.links()) {
    m.At(l.dst.value(), l.id.value()) = 1.0;   // enters dst
    m.At(l.src.value(), l.id.value()) = -1.0;  // leaves src
  }
  return m;
}

}  // namespace hodor::net
