// Epoch time-series store: retained history for every registry sample.
//
// /metrics is a point-in-time scrape; the paper's operational claims
// (detection latency, trust decay, repair rates) are about *trajectories*.
// TimeSeriesStore samples a MetricsRegistry once per epoch — driven from
// the epoch sink thread, off the critical path — into fixed-capacity
// per-series ring buffers with multi-resolution downsampling:
//
//   raw ring:   the last `raw_capacity` (epoch, value) points, verbatim;
//   aggregates: for each configured stride S (default 10 and 100), a ring
//               of `agg_capacity` buckets folding S consecutive epochs
//               into {first_epoch, min, max, sum, last, count}.
//
// Aggregate buckets close when `count == stride`; queries additionally
// see the still-open partial bucket as their newest point (count < stride
// marks it), so every resolution answers from epoch 1 onward. Series
// identity is the rendered display name `family{label_key}` with a
// `_count`/`_sum` suffix for histogram samples — exactly the Prometheus
// selector an operator would grep for. Steady state allocates nothing:
// rings are preallocated at series creation and lookups are exact string
// finds on the registry's own rendered label keys.
//
// Threading: the store is internally synchronized — Sample() (sink
// thread) and QueryJson()/accessors (server thread) share one mutex — so
// the telemetry server publishes one stable shared_ptr<const
// TimeSeriesStore> and serves /query from it without copying history.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace hodor::obs {

// Returns true when `text` matches `pattern`, where `*` matches any run
// (including empty) and `?` matches exactly one character. Used by the
// /query series selector; exposed for tests.
bool MatchGlob(const std::string& pattern, const std::string& text);

struct TimeSeriesOptions {
  // Raw (epoch, value) points retained per series.
  std::size_t raw_capacity = 240;
  // Closed buckets retained per series per aggregate resolution.
  std::size_t agg_capacity = 120;
  // Downsampling strides, in epochs per bucket. Must be > 1, strictly
  // increasing. Each adds one aggregate ring per series.
  std::vector<std::size_t> strides = {10, 100};
  // Safety valve against label-cardinality explosions: once this many
  // series exist, new series are counted (dropped_series) and ignored.
  std::size_t max_series = 8192;
};

// One raw sample.
struct TimeSeriesPoint {
  std::uint64_t epoch = 0;
  double value = 0.0;
};

// One downsampled bucket covering `count` consecutive epochs starting at
// `first_epoch`. `count < stride` only for the open (partial) bucket.
struct TimeSeriesBucket {
  std::uint64_t first_epoch = 0;
  double min = 0.0;
  double max = 0.0;
  double sum = 0.0;
  double last = 0.0;
  std::uint32_t count = 0;

  double mean() const { return count ? sum / count : 0.0; }
};

// /query parameters, parsed by the telemetry server.
struct TimeSeriesQuery {
  std::string series = "*";     // glob over display names
  std::size_t last = 0;         // max points per series; 0 = all retained
  std::string resolution = "raw";  // "raw" or a stride rendered in decimal
};

class TimeSeriesStore {
 public:
  explicit TimeSeriesStore(TimeSeriesOptions opts = {});

  TimeSeriesStore(const TimeSeriesStore&) = delete;
  TimeSeriesStore& operator=(const TimeSeriesStore&) = delete;

  // Folds every sample the registry currently holds into the rings under
  // `epoch`. Call once per epoch with a non-decreasing epoch number.
  void Sample(std::uint64_t epoch, const MetricsRegistry& registry);

  // True when `res` names a resolution this store can answer ("raw" or a
  // configured stride in decimal). The server 400s anything else.
  bool HasResolution(const std::string& res) const;

  // Renders the query result as one JSON object:
  //   {"resolution":"raw","stride":1,"last":N,"epochs_sampled":E,
  //    "series_total":S,"dropped_series":D,"series":[
  //      {"name":"...","kind":"gauge","points":[[epoch,value],...]},...]}
  // Aggregate resolutions render points as
  //   [first_epoch,min,max,mean,last,count]
  // newest-last, with the open partial bucket (count < stride) included
  // as the final point. Callers must pass a resolution HasResolution()
  // accepts.
  std::string QueryJson(const TimeSeriesQuery& query) const;

  // Raw points currently retained for one display name (oldest first);
  // empty when the series does not exist. Test/bench convenience.
  std::vector<TimeSeriesPoint> RawPoints(const std::string& display_name) const;
  // Closed + open buckets for one display name at `stride`, oldest first.
  std::vector<TimeSeriesBucket> Buckets(const std::string& display_name,
                                        std::size_t stride) const;

  std::size_t series_count() const;
  std::uint64_t epochs_sampled() const;
  // Samples dropped because the max_series valve refused to create their
  // series (a refused series re-attempts — and re-counts — every epoch).
  std::uint64_t dropped_series() const;

  const TimeSeriesOptions& options() const { return opts_; }

 private:
  // Fixed-capacity overwrite-oldest ring. Storage is preallocated by
  // Reset(); Push never allocates.
  template <typename T>
  class FixedRing {
   public:
    void Reset(std::size_t capacity) {
      data_.assign(capacity ? capacity : 1, T{});
      head_ = size_ = 0;
    }
    void Push(const T& v) {
      data_[head_] = v;
      head_ = (head_ + 1) % data_.size();
      if (size_ < data_.size()) ++size_;
    }
    std::size_t size() const { return size_; }
    // i = 0 → oldest retained; i = size()-1 → newest.
    const T& At(std::size_t i) const {
      return data_[(head_ + data_.size() - size_ + i) % data_.size()];
    }

   private:
    std::vector<T> data_;
    std::size_t head_ = 0;
    std::size_t size_ = 0;
  };

  struct AggTrack {
    std::size_t stride = 0;
    FixedRing<TimeSeriesBucket> ring;
    TimeSeriesBucket open;  // open.count == 0 means "no partial bucket"
  };

  struct SeriesData {
    std::string display_name;
    SampleKind kind = SampleKind::kGauge;
    FixedRing<TimeSeriesPoint> raw;
    std::vector<AggTrack> aggs;
  };

  // Per (family, label-key) slot: one SeriesData per sample kind that has
  // actually appeared (a histogram occupies two slots, count and sum).
  struct LabelEntry {
    std::optional<SeriesData> slots[4];
  };

  SeriesData* FindOrCreateLocked(const std::string& name,
                                 const std::string& label_key,
                                 SampleKind kind);
  void FoldLocked(SeriesData& series, std::uint64_t epoch, double value);
  const SeriesData* FindByDisplayNameLocked(
      const std::string& display_name) const;

  TimeSeriesOptions opts_;
  mutable std::mutex mu_;
  std::map<std::string, std::map<std::string, LabelEntry>> families_;
  std::size_t series_count_ = 0;
  std::uint64_t epochs_sampled_ = 0;
  std::uint64_t dropped_series_ = 0;
};

}  // namespace hodor::obs
