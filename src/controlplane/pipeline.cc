#include "controlplane/pipeline.h"

#include "util/logging.h"

namespace hodor::controlplane {

Pipeline::Pipeline(const net::Topology& topo, PipelineOptions opts,
                   util::Rng rng)
    : topo_(&topo),
      opts_(std::move(opts)),
      rng_(rng),
      collector_(topo, opts_.collector),
      controller_(topo, opts_.controller) {}

void Pipeline::Bootstrap(const net::GroundTruthState& state,
                         const flow::DemandMatrix& true_demand) {
  installed_plan_ = flow::ShortestPathRouting(
      *topo_, true_demand, [&](net::LinkId e) { return state.LinkUsable(e); });
}

EpochResult Pipeline::RunEpoch(const net::GroundTruthState& state,
                               const flow::DemandMatrix& true_demand,
                               const telemetry::SnapshotMutator& snapshot_fault,
                               const AggregationFaultHooks& aggregation_faults) {
  const std::uint64_t epoch = next_epoch_++;

  // 1. Traffic under the currently installed plan: this is what telemetry
  //    measures.
  flow::SimulationResult measured =
      flow::SimulateFlow(*topo_, state, true_demand, installed_plan_);

  // 2-3. Collect and aggregate, with fault hooks.
  telemetry::NetworkSnapshot snapshot =
      collector_.Collect(state, measured, epoch, rng_, snapshot_fault);
  ControllerInput input = AggregateInputs(*topo_, snapshot, true_demand,
                                          epoch, rng_, opts_.infra,
                                          aggregation_faults);

  // 4. Validate + policy.
  EpochResult result{epoch,
                     input,
                     /*validated=*/false,
                     ValidationDecision{},
                     /*used_fallback=*/false,
                     flow::NetworkMetrics{},
                     flow::SimulationResult{},
                     snapshot};
  const ControllerInput* chosen = &input;
  if (validator_) {
    result.validated = true;
    result.decision = validator_(input, snapshot);
    if (!result.decision.accept) {
      HODOR_LOG(kWarning) << "epoch " << epoch
                          << ": input rejected: " << result.decision.reason;
      if (opts_.policy == RejectionPolicy::kFallbackToLastGood &&
          last_good_input_.has_value()) {
        chosen = &*last_good_input_;
        result.used_fallback = true;
      }
    }
  }

  // 5. Program routing from the chosen input.
  installed_plan_ = controller_.ComputeRouting(*chosen);

  // 6. Outcome under the new plan.
  result.outcome = flow::SimulateFlow(*topo_, state, true_demand,
                                      installed_plan_);
  result.metrics = flow::ComputeMetrics(*topo_, true_demand, result.outcome);

  if (!result.validated || result.decision.accept) {
    last_good_input_ = input;
  }
  return result;
}

}  // namespace hodor::controlplane
