#include "net/serialization.h"

#include <sstream>

#include "util/strings.h"

namespace hodor::net {

std::string WriteTopology(const Topology& topo) {
  std::ostringstream os;
  os << "# hodor topology v1\n";
  os << "topology " << topo.name() << "\n";
  for (const Node& n : topo.nodes()) {
    os << "node " << n.name;
    if (n.has_external_port) {
      os << " ext " << util::FormatDouble(n.external_capacity, 6);
    }
    os << "\n";
  }
  for (const Link& l : topo.links()) {
    if (l.reverse.value() < l.id.value()) continue;  // physical links once
    os << "link " << topo.node(l.src).name << " " << topo.node(l.dst).name
       << " " << util::FormatDouble(l.capacity, 6);
    if (l.metric != 1.0) os << " metric " << util::FormatDouble(l.metric, 6);
    os << "\n";
  }
  return os.str();
}

namespace {

util::Status ParseError(std::size_t line_no, const std::string& message) {
  return util::InvalidArgumentError("line " + std::to_string(line_no) + ": " +
                                    message);
}

util::StatusOr<double> ParsePositiveDouble(std::size_t line_no,
                                           const std::string& token,
                                           const char* what) {
  char* end = nullptr;
  const double value = std::strtod(token.c_str(), &end);
  if (end == token.c_str() || *end != '\0') {
    return ParseError(line_no, std::string("malformed ") + what + " '" +
                                   token + "'");
  }
  if (value <= 0.0) {
    return ParseError(line_no, std::string(what) + " must be positive");
  }
  return value;
}

}  // namespace

util::StatusOr<Topology> ParseTopology(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  std::size_t line_no = 0;

  std::string topo_name = "net";
  // First pass collects everything so `topology` may appear anywhere and
  // all nodes precede links naturally in one pass (we require definition
  // before use, as the writer emits).
  Topology topo(topo_name);
  bool named = false;
  bool any_node = false;

  while (std::getline(is, line)) {
    ++line_no;
    const std::string trimmed = util::Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    std::vector<std::string> raw = util::Split(trimmed, ' ');
    std::vector<std::string> tokens;
    for (std::string& t : raw) {
      if (!t.empty()) tokens.push_back(std::move(t));
    }
    const std::string& directive = tokens[0];

    if (directive == "topology") {
      if (tokens.size() != 2) return ParseError(line_no, "topology <name>");
      if (named) return ParseError(line_no, "duplicate topology directive");
      if (any_node) {
        return ParseError(line_no, "topology directive must precede nodes");
      }
      topo = Topology(tokens[1]);
      named = true;
    } else if (directive == "node") {
      if (tokens.size() != 2 && tokens.size() != 4) {
        return ParseError(line_no, "node <name> [ext <capacity>]");
      }
      if (topo.FindNode(tokens[1]).ok()) {
        return ParseError(line_no, "duplicate node '" + tokens[1] + "'");
      }
      const NodeId id = topo.AddNode(tokens[1]);
      any_node = true;
      if (tokens.size() == 4) {
        if (tokens[2] != "ext") {
          return ParseError(line_no, "expected 'ext', got '" + tokens[2] + "'");
        }
        auto cap = ParsePositiveDouble(line_no, tokens[3], "ext capacity");
        if (!cap.ok()) return cap.status();
        topo.AddExternalPort(id, cap.value());
      }
    } else if (directive == "link") {
      if (tokens.size() != 4 && tokens.size() != 6) {
        return ParseError(line_no,
                          "link <a> <b> <capacity> [metric <m>]");
      }
      const auto a = topo.FindNode(tokens[1]);
      if (!a.ok()) {
        return ParseError(line_no, "unknown node '" + tokens[1] + "'");
      }
      const auto b = topo.FindNode(tokens[2]);
      if (!b.ok()) {
        return ParseError(line_no, "unknown node '" + tokens[2] + "'");
      }
      if (a.value() == b.value()) {
        return ParseError(line_no, "self-loop link");
      }
      auto cap = ParsePositiveDouble(line_no, tokens[3], "capacity");
      if (!cap.ok()) return cap.status();
      double metric = 1.0;
      if (tokens.size() == 6) {
        if (tokens[4] != "metric") {
          return ParseError(line_no,
                            "expected 'metric', got '" + tokens[4] + "'");
        }
        auto m = ParsePositiveDouble(line_no, tokens[5], "metric");
        if (!m.ok()) return m.status();
        if (m.value() < 1.0) {
          return ParseError(line_no, "metric must be >= 1");
        }
        metric = m.value();
      }
      topo.AddBidirectionalLink(a.value(), b.value(), cap.value(), metric);
    } else {
      return ParseError(line_no, "unknown directive '" + directive + "'");
    }
  }
  HODOR_RETURN_IF_ERROR(topo.Validate());
  return topo;
}

}  // namespace hodor::net
