#include "util/stats.h"

#include <algorithm>
#include <cmath>

namespace hodor::util {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::mean() const {
  HODOR_CHECK(count_ > 0);
  return mean_;
}

double RunningStats::variance() const {
  HODOR_CHECK(count_ > 0);
  return m2_ / static_cast<double>(count_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const {
  HODOR_CHECK(count_ > 0);
  return min_;
}

double RunningStats::max() const {
  HODOR_CHECK(count_ > 0);
  return max_;
}

double Percentile(std::vector<double> sample, double p) {
  HODOR_CHECK(!sample.empty());
  HODOR_CHECK(p >= 0.0 && p <= 100.0);
  std::sort(sample.begin(), sample.end());
  if (sample.size() == 1) return sample[0];
  const double rank = p / 100.0 * static_cast<double>(sample.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sample.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sample[lo] + frac * (sample[hi] - sample[lo]);
}

Ewma::Ewma(double alpha) : alpha_(alpha) {
  HODOR_CHECK(alpha > 0.0 && alpha <= 1.0);
}

void Ewma::Add(double x) {
  if (count_ == 0) {
    mean_ = x;
    var_ = 0.0;
  } else {
    const double delta = x - mean_;
    mean_ += alpha_ * delta;
    // EWM variance (West 1979 incremental form).
    var_ = (1.0 - alpha_) * (var_ + alpha_ * delta * delta);
  }
  ++count_;
}

double Ewma::mean() const {
  HODOR_CHECK(count_ > 0);
  return mean_;
}

double Ewma::variance() const {
  HODOR_CHECK(count_ > 0);
  return var_;
}

double Ewma::stddev() const { return std::sqrt(variance()); }

double Ewma::ZScore(double x) const {
  HODOR_CHECK(count_ > 0);
  const double sd = stddev();
  if (sd < 1e-12) {
    return std::fabs(x - mean_) < 1e-12 ? 0.0 : 1e9;
  }
  return (x - mean_) / sd;
}

double RelativeDifference(double a, double b) {
  const double denom = std::max(std::fabs(a), std::fabs(b));
  if (denom < 1e-12) return 0.0;
  return std::fabs(a - b) / denom;
}

bool WithinRelativeTolerance(double a, double b, double tau) {
  HODOR_CHECK(tau >= 0.0);
  return RelativeDifference(a, b) <= tau;
}

}  // namespace hodor::util
