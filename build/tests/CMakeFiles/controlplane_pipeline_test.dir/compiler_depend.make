# Empty compiler generated dependencies file for controlplane_pipeline_test.
# This may be replaced when dependencies are built.
