// The columnar signal plane: one dense, structure-of-arrays frame holding
// every signal a collection round can produce, indexed by the compact
// NodeId/LinkId values the Topology assigns.
//
// This replaces the per-router hash maps the snapshot used to carry: each
// signal kind is one flat column (one slot per directed LinkId or per
// NodeId) plus a presence bitset standing in for the scattered
// std::optional state. Reads become O(1) array indexing; clearing a frame
// for the next epoch reuses every buffer; and PresentSignalCount is a sum
// of incrementally maintained popcounts.
//
// Ownership model (paper §2.1): every signal belongs to the router that
// reports it — tx/status/link-drain of directed link e to src(e), rx of e
// to dst(e), node scalars to the node itself. A router marked unresponsive
// loses all its signals, and setters on an unresponsive owner are no-ops,
// which keeps the invariant "present ⇒ owner responded" so accessors only
// test the presence bit.
//
// Change tracking (DESIGN.md §12): alongside each presence bitset the frame
// keeps a dirty bitset recording which slots any mutating path touched
// since the last Clear(). DiffAgainst() intersects the dirty set with a
// bitwise value compare to produce the exact changed-signal set between
// two frames — the unit of work the incremental validation path consumes.
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <cstring>
#include <optional>
#include <vector>

#include "net/topology.h"
#include "telemetry/signals.h"

namespace hodor::replay {
// The flight-recorder codec (src/replay/frame_codec.cc) serializes frames
// column-by-column; it is the one component allowed to bypass the
// owner-gated setters, because it restores a frame exactly as another
// frame once legitimately was.
class FrameCodecAccess;
}  // namespace hodor::replay

namespace hodor::telemetry {

// A fixed-size bitset that maintains its popcount incrementally, so
// "how many signals are present" is O(1) at any time.
class PresenceBitset {
 public:
  void Resize(std::size_t bits) {
    size_ = bits;
    words_.assign((bits + 63) / 64, 0);
    count_ = 0;
  }
  void Clear() {
    std::fill(words_.begin(), words_.end(), 0);
    count_ = 0;
  }
  bool Test(std::size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }
  void Set(std::size_t i) {
    std::uint64_t& w = words_[i >> 6];
    const std::uint64_t bit = 1ull << (i & 63);
    count_ += !(w & bit);
    w |= bit;
  }
  void Reset(std::size_t i) {
    std::uint64_t& w = words_[i >> 6];
    const std::uint64_t bit = 1ull << (i & 63);
    count_ -= !!(w & bit);
    w &= ~bit;
  }
  // Sets every bit (the parallel collector's bulk presence commit).
  void SetAll() {
    std::fill(words_.begin(), words_.end(), ~std::uint64_t{0});
    if (!words_.empty() && (size_ & 63) != 0) {
      words_.back() = (1ull << (size_ & 63)) - 1;
    }
    count_ = size_;
  }

  std::size_t count() const { return count_; }
  std::size_t size() const { return size_; }

  // Raw packed words, exactly as maintained — the replay codec writes them
  // to disk verbatim so a presence column round-trips bit-for-bit.
  const std::vector<std::uint64_t>& words() const { return words_; }

  // Restores packed bits from a decoded log (the codec's inverse of
  // words()). Bits beyond size() are cleared and the popcount is
  // recomputed, so count() stays consistent even for corrupted input.
  void AssignWords(const std::uint64_t* w, std::size_t n) {
    for (std::size_t i = 0; i < words_.size(); ++i) {
      words_[i] = i < n ? w[i] : 0;
    }
    if (!words_.empty() && (size_ & 63) != 0) {
      words_.back() &= (1ull << (size_ & 63)) - 1;
    }
    count_ = 0;
    for (std::uint64_t word : words_) count_ += std::popcount(word);
  }

 private:
  std::vector<std::uint64_t> words_;
  std::size_t size_ = 0;
  std::size_t count_ = 0;
};

// Calls fn(index) for every set bit, in ascending index order.
template <typename Fn>
void ForEachSetBit(const PresenceBitset& bits, Fn&& fn) {
  const std::vector<std::uint64_t>& words = bits.words();
  for (std::size_t wi = 0; wi < words.size(); ++wi) {
    std::uint64_t w = words[wi];
    while (w != 0) {
      const int b = std::countr_zero(w);
      fn((wi << 6) + static_cast<std::size_t>(b));
      w &= w - 1;
    }
  }
}

// The exact changed-signal set between two snapshots of the same topology,
// produced by SignalFrame::DiffAgainst / NetworkSnapshot::DiffAgainst. A
// bit is set when the slot's value or presence differs from the base
// frame; `probe` is filled at the snapshot level (probe outcomes live
// beside the frame, not in it).
//
// `full == true` means "assume everything changed": consumers must ignore
// the bitsets and run the full recompute. This is the constructed state,
// the state after a topology mismatch, and the state the epoch engine
// forces on the first epoch, on a fault stamp, and under HODOR_FORCE_FULL.
struct FrameDelta {
  bool full = true;
  std::uint64_t base_epoch = 0;
  std::uint64_t target_epoch = 0;

  // Per directed LinkId.
  PresenceBitset tx;
  PresenceBitset rx;
  PresenceBitset status;
  PresenceBitset link_drain;
  PresenceBitset probe;
  // Per NodeId.
  PresenceBitset node_drain;
  PresenceBitset dropped;
  PresenceBitset ext_in;
  PresenceBitset ext_out;

  // Clears every changed set (reusing buffers) and leaves the delta in the
  // "nothing changed yet" incremental state.
  void Reset(std::size_t links, std::size_t nodes) {
    full = false;
    base_epoch = 0;
    target_epoch = 0;
    tx.Resize(links);
    rx.Resize(links);
    status.Resize(links);
    link_drain.Resize(links);
    probe.Resize(links);
    node_drain.Resize(nodes);
    dropped.Resize(nodes);
    ext_in.Resize(nodes);
    ext_out.Resize(nodes);
  }

  std::size_t ChangedSignalCount() const {
    return tx.count() + rx.count() + status.count() + link_drain.count() +
           probe.count() + node_drain.count() + dropped.count() +
           ext_in.count() + ext_out.count();
  }

  // Any change to the per-node scalar columns (the demand check's hardened
  // inputs).
  bool AnyScalarChanges() const {
    return dropped.count() + ext_in.count() + ext_out.count() > 0;
  }
};

class SignalFrame {
 public:
  explicit SignalFrame(const net::Topology& topo);

  const net::Topology& topology() const { return *topo_; }

  // Forgets every signal and marks every router responsive again, without
  // releasing any buffer — the per-epoch reset of the pipeline workspace.
  void Clear();

  // --- responsiveness -------------------------------------------------------

  bool Responded(net::NodeId v) const { return responded_[v.value()] != 0; }
  std::size_t responded_count() const { return responded_count_; }
  // Drops the router's entire report: node scalars, every out-interface
  // signal, and every rx it would have reported.
  void MarkUnresponsive(net::NodeId v);

  // --- per-link columns (owner: src(e) except rx, owned by dst(e)) ----------

  std::optional<double> TxRate(net::LinkId e) const {
    if (!tx_present_.Test(e.value())) return std::nullopt;
    return tx_[e.value()];
  }
  void SetTxRate(net::LinkId e, double v) {
    if (!Responded(topo_->link(e).src)) return;
    tx_[e.value()] = v;
    tx_present_.Set(e.value());
    tx_dirty_.Set(e.value());
  }
  void ClearTxRate(net::LinkId e) {
    tx_present_.Reset(e.value());
    tx_dirty_.Set(e.value());
  }

  std::optional<double> RxRate(net::LinkId e) const {
    if (!rx_present_.Test(e.value())) return std::nullopt;
    return rx_[e.value()];
  }
  void SetRxRate(net::LinkId e, double v) {
    if (!Responded(topo_->link(e).dst)) return;
    rx_[e.value()] = v;
    rx_present_.Set(e.value());
    rx_dirty_.Set(e.value());
  }
  void ClearRxRate(net::LinkId e) {
    rx_present_.Reset(e.value());
    rx_dirty_.Set(e.value());
  }

  // Status of directed link e as seen from its src end (the dst end's view
  // lives in the reverse link's slot).
  std::optional<LinkStatus> Status(net::LinkId e) const {
    if (!status_present_.Test(e.value())) return std::nullopt;
    return static_cast<LinkStatus>(status_[e.value()]);
  }
  void SetStatus(net::LinkId e, LinkStatus s) {
    if (!Responded(topo_->link(e).src)) return;
    status_[e.value()] = static_cast<std::uint8_t>(s);
    status_present_.Set(e.value());
    status_dirty_.Set(e.value());
  }
  void ClearStatus(net::LinkId e) {
    status_present_.Reset(e.value());
    status_dirty_.Set(e.value());
  }

  std::optional<bool> LinkDrain(net::LinkId e) const {
    if (!link_drain_present_.Test(e.value())) return std::nullopt;
    return link_drain_[e.value()] != 0;
  }
  void SetLinkDrain(net::LinkId e, bool v) {
    if (!Responded(topo_->link(e).src)) return;
    link_drain_[e.value()] = v ? 1 : 0;
    link_drain_present_.Set(e.value());
    link_drain_dirty_.Set(e.value());
  }
  void ClearLinkDrain(net::LinkId e) {
    link_drain_present_.Reset(e.value());
    link_drain_dirty_.Set(e.value());
  }

  // --- per-node columns -----------------------------------------------------

  std::optional<bool> NodeDrained(net::NodeId v) const {
    if (!node_drain_present_.Test(v.value())) return std::nullopt;
    return node_drain_[v.value()] != 0;
  }
  void SetNodeDrained(net::NodeId v, bool d) {
    if (!Responded(v)) return;
    node_drain_[v.value()] = d ? 1 : 0;
    node_drain_present_.Set(v.value());
    node_drain_dirty_.Set(v.value());
  }
  void ClearNodeDrained(net::NodeId v) {
    node_drain_present_.Reset(v.value());
    node_drain_dirty_.Set(v.value());
  }

  std::optional<double> DroppedRate(net::NodeId v) const {
    if (!dropped_present_.Test(v.value())) return std::nullopt;
    return dropped_[v.value()];
  }
  void SetDroppedRate(net::NodeId v, double d) {
    if (!Responded(v)) return;
    dropped_[v.value()] = d;
    dropped_present_.Set(v.value());
    dropped_dirty_.Set(v.value());
  }
  void ClearDroppedRate(net::NodeId v) {
    dropped_present_.Reset(v.value());
    dropped_dirty_.Set(v.value());
  }

  std::optional<double> ExtInRate(net::NodeId v) const {
    if (!ext_in_present_.Test(v.value())) return std::nullopt;
    return ext_in_[v.value()];
  }
  void SetExtInRate(net::NodeId v, double d) {
    if (!Responded(v)) return;
    ext_in_[v.value()] = d;
    ext_in_present_.Set(v.value());
    ext_in_dirty_.Set(v.value());
  }
  void ClearExtInRate(net::NodeId v) {
    ext_in_present_.Reset(v.value());
    ext_in_dirty_.Set(v.value());
  }

  std::optional<double> ExtOutRate(net::NodeId v) const {
    if (!ext_out_present_.Test(v.value())) return std::nullopt;
    return ext_out_[v.value()];
  }
  void SetExtOutRate(net::NodeId v, double d) {
    if (!Responded(v)) return;
    ext_out_[v.value()] = d;
    ext_out_present_.Set(v.value());
    ext_out_dirty_.Set(v.value());
  }
  void ClearExtOutRate(net::NodeId v) {
    ext_out_present_.Reset(v.value());
    ext_out_dirty_.Set(v.value());
  }

  // --- deterministic parallel collection fast path --------------------------
  //
  // The Fill* setters write the column value only: no presence-bit update,
  // no owner gate, and — for the same reason — no dirty-bit update. They
  // exist so the collector can shard honest collection over contiguous node
  // ranges without two shards racing on a shared presence word (each value
  // slot has exactly one writer; the bitset words do not). They are only
  // valid on a freshly Clear()ed frame where every router responded; the
  // collector commits presence afterwards in one serial
  // MarkHonestPresence() call, which also carries their dirty marks.

  void FillTxRate(net::LinkId e, double v) { tx_[e.value()] = v; }
  void FillRxRate(net::LinkId e, double v) { rx_[e.value()] = v; }
  void FillStatus(net::LinkId e, LinkStatus s) {
    status_[e.value()] = static_cast<std::uint8_t>(s);
  }
  void FillLinkDrain(net::LinkId e, bool v) {
    link_drain_[e.value()] = v ? 1 : 0;
  }
  void FillNodeDrained(net::NodeId v, bool d) {
    node_drain_[v.value()] = d ? 1 : 0;
  }
  void FillDroppedRate(net::NodeId v, double d) { dropped_[v.value()] = d; }
  void FillExtInRate(net::NodeId v, double d) { ext_in_[v.value()] = d; }
  void FillExtOutRate(net::NodeId v, double d) { ext_out_[v.value()] = d; }

  // Commits the presence pattern of a complete honest collection round:
  // every link column and every node's drain/dropped slot is present, and
  // ext in/out only for routers with an external port. This is exactly the
  // pattern the serial owner-gated path produces when all routers respond
  // (zero-floored rates are still reported, hence still present), so the
  // parallel path is presence-identical to the serial one. The same
  // pattern is added to the dirty bitsets, so it is dirty-identical too.
  void MarkHonestPresence();

  // Signal values present across all columns — O(1) from the maintained
  // popcounts.
  std::size_t PresentSignalCount() const {
    return tx_present_.count() + rx_present_.count() +
           status_present_.count() + link_drain_present_.count() +
           node_drain_present_.count() + dropped_present_.count() +
           ext_in_present_.count() + ext_out_present_.count();
  }

  // --- change tracking ------------------------------------------------------
  //
  // Dirty bitsets record which slots any mutating path touched since the
  // last Clear(): Set*/Clear* mark individually, MarkUnresponsive marks
  // the report it drops, MarkHonestPresence marks the honest pattern. The
  // contract is one-sided: an untouched slot is never dirty (so DiffAgainst
  // may trust clean slots without looking at values), while a dirty slot
  // may still hold an unchanged value (DiffAgainst filters those with a
  // bitwise compare). Dirty bits are transient working state — the replay
  // codec neither stores nor restores them; decode calls MarkAllDirty().

  // Computes the exact changed set against `prev`, which must be a frame
  // over the same topology: a slot is reported when its presence flipped,
  // or when present in both frames with bitwise-different values (dirty
  // bits prune the compare to touched slots). Resets `delta` (link/node
  // sizes from the topology, probe set left empty) and leaves
  // full = false; epochs are the caller's to stamp.
  void DiffAgainst(const SignalFrame& prev, FrameDelta& delta) const;

  // Conservatively marks every slot dirty — the decoded-frame and
  // unknown-provenance fallback. Any subsequent DiffAgainst degrades to a
  // full value compare, which is still exact, just not pruned.
  void MarkAllDirty();

  std::size_t DirtySignalCount() const {
    return tx_dirty_.count() + rx_dirty_.count() + status_dirty_.count() +
           link_drain_dirty_.count() + node_drain_dirty_.count() +
           dropped_dirty_.count() + ext_in_dirty_.count() +
           ext_out_dirty_.count();
  }

  const PresenceBitset& tx_dirty() const { return tx_dirty_; }
  const PresenceBitset& rx_dirty() const { return rx_dirty_; }
  const PresenceBitset& status_dirty() const { return status_dirty_; }
  const PresenceBitset& link_drain_dirty() const { return link_drain_dirty_; }
  const PresenceBitset& node_drain_dirty() const { return node_drain_dirty_; }
  const PresenceBitset& dropped_dirty() const { return dropped_dirty_; }
  const PresenceBitset& ext_in_dirty() const { return ext_in_dirty_; }
  const PresenceBitset& ext_out_dirty() const { return ext_out_dirty_; }

 private:
  friend class ::hodor::replay::FrameCodecAccess;

  const net::Topology* topo_;

  // Link columns, one slot per directed LinkId.
  std::vector<double> tx_;
  std::vector<double> rx_;
  std::vector<std::uint8_t> status_;
  std::vector<std::uint8_t> link_drain_;
  PresenceBitset tx_present_;
  PresenceBitset rx_present_;
  PresenceBitset status_present_;
  PresenceBitset link_drain_present_;
  PresenceBitset tx_dirty_;
  PresenceBitset rx_dirty_;
  PresenceBitset status_dirty_;
  PresenceBitset link_drain_dirty_;

  // Node columns, one slot per NodeId.
  std::vector<std::uint8_t> responded_;
  std::vector<std::uint8_t> node_drain_;
  std::vector<double> dropped_;
  std::vector<double> ext_in_;
  std::vector<double> ext_out_;
  PresenceBitset node_drain_present_;
  PresenceBitset dropped_present_;
  PresenceBitset ext_in_present_;
  PresenceBitset ext_out_present_;
  PresenceBitset node_drain_dirty_;
  PresenceBitset dropped_dirty_;
  PresenceBitset ext_in_dirty_;
  PresenceBitset ext_out_dirty_;
  std::size_t responded_count_ = 0;
};

}  // namespace hodor::telemetry
