# Empty dependencies file for faults_aggregation_and_perturbation_test.
# This may be replaced when dependencies are built.
