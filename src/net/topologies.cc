#include "net/topologies.h"

#include <cmath>
#include <string>
#include <utility>
#include <vector>

namespace hodor::net {

namespace {

// Adds every node to the topology and gives each an external port.
std::vector<NodeId> AddNodes(Topology& topo,
                             const std::vector<std::string>& names,
                             const TopologyDefaults& d) {
  std::vector<NodeId> ids;
  ids.reserve(names.size());
  for (const std::string& name : names) {
    const NodeId id = topo.AddNode(name);
    topo.AddExternalPort(id, d.external_capacity);
    ids.push_back(id);
  }
  return ids;
}

std::vector<NodeId> AddNumberedNodes(Topology& topo, std::size_t n,
                                     const TopologyDefaults& d) {
  std::vector<std::string> names;
  names.reserve(n);
  for (std::size_t i = 0; i < n; ++i) names.push_back("n" + std::to_string(i));
  return AddNodes(topo, names, d);
}

}  // namespace

Topology Abilene(const TopologyDefaults& d) {
  Topology topo("abilene");
  // SNDlib node set for abilene (12 PoPs).
  const std::vector<std::string> names = {
      "ATLAM5", "ATLAng", "CHINng", "DNVRng", "HSTNng", "IPLSng",
      "KSCYng", "LOSAng", "NYCMng", "SNVAng", "STTLng", "WASHng"};
  const auto ids = AddNodes(topo, names, d);
  auto n = [&](const char* name) {
    return topo.FindNode(name).value();
  };
  // SNDlib link set (15 physical links).
  const std::vector<std::pair<const char*, const char*>> links = {
      {"ATLAM5", "ATLAng"}, {"ATLAng", "HSTNng"}, {"ATLAng", "IPLSng"},
      {"ATLAng", "WASHng"}, {"CHINng", "IPLSng"}, {"CHINng", "NYCMng"},
      {"DNVRng", "KSCYng"}, {"DNVRng", "SNVAng"}, {"DNVRng", "STTLng"},
      {"HSTNng", "KSCYng"}, {"HSTNng", "LOSAng"}, {"IPLSng", "KSCYng"},
      {"LOSAng", "SNVAng"}, {"NYCMng", "WASHng"}, {"SNVAng", "STTLng"}};
  for (const auto& [a, b] : links) {
    topo.AddBidirectionalLink(n(a), n(b), d.link_capacity);
  }
  (void)ids;
  return topo;
}

Topology B4Like(const TopologyDefaults& d) {
  Topology topo("b4like");
  // 12 sites roughly following the published B4 map (SIGCOMM'13 Fig. 1):
  // North America (6), Europe (3), Asia (3).
  const std::vector<std::string> names = {
      "us-west1", "us-west2", "us-central1", "us-central2", "us-east1",
      "us-east2", "eu-west1", "eu-west2", "eu-central1", "asia-east1",
      "asia-east2", "asia-south1"};
  AddNodes(topo, names, d);
  auto n = [&](const char* name) { return topo.FindNode(name).value(); };
  const std::vector<std::pair<const char*, const char*>> links = {
      {"us-west1", "us-west2"},     {"us-west1", "us-central1"},
      {"us-west2", "us-central2"},  {"us-west1", "asia-east1"},
      {"us-west2", "asia-east2"},   {"us-central1", "us-central2"},
      {"us-central1", "us-east1"},  {"us-central2", "us-east2"},
      {"us-east1", "us-east2"},     {"us-east1", "eu-west1"},
      {"us-east2", "eu-west2"},     {"eu-west1", "eu-west2"},
      {"eu-west1", "eu-central1"},  {"eu-west2", "eu-central1"},
      {"asia-east1", "asia-east2"}, {"asia-east1", "asia-south1"},
      {"asia-east2", "asia-south1"},{"us-central1", "us-west2"},
      {"us-central2", "us-east1"}};
  for (const auto& [a, b] : links) {
    topo.AddBidirectionalLink(n(a), n(b), d.link_capacity);
  }
  return topo;
}

Topology GeantLike(const TopologyDefaults& d) {
  Topology topo("geantlike");
  // 22 national PoPs with a link set approximating the GÉANT backbone
  // distributed with SNDlib (37 physical links).
  const std::vector<std::string> names = {
      "at", "be", "ch", "cz", "de", "es", "fr", "gr", "hr", "hu", "ie",
      "il", "it", "lu", "nl", "ny", "pl", "pt", "se", "si", "sk", "uk"};
  AddNodes(topo, names, d);
  auto n = [&](const char* name) { return topo.FindNode(name).value(); };
  const std::vector<std::pair<const char*, const char*>> links = {
      {"at", "ch"}, {"at", "cz"}, {"at", "de"}, {"at", "hu"}, {"at", "si"},
      {"at", "sk"}, {"be", "fr"}, {"be", "nl"}, {"ch", "fr"}, {"ch", "it"},
      {"cz", "de"}, {"cz", "pl"}, {"cz", "sk"}, {"de", "fr"}, {"de", "nl"},
      {"de", "se"}, {"de", "ny"}, {"es", "fr"}, {"es", "it"}, {"es", "pt"},
      {"fr", "lu"}, {"fr", "uk"}, {"gr", "it"}, {"gr", "at"}, {"hr", "hu"},
      {"hr", "si"}, {"hu", "sk"}, {"ie", "uk"}, {"il", "it"}, {"il", "ny"},
      {"it", "at"}, {"lu", "de"}, {"nl", "uk"}, {"ny", "uk"}, {"pl", "de"},
      {"pt", "uk"}, {"se", "ny"}};
  for (const auto& [a, b] : links) {
    topo.AddBidirectionalLink(n(a), n(b), d.link_capacity);
  }
  return topo;
}

Topology Figure3Triangle(const TopologyDefaults& d) {
  Topology topo("figure3");
  const NodeId a = topo.AddNode("A");
  const NodeId b = topo.AddNode("B");
  const NodeId c = topo.AddNode("C");
  for (NodeId id : {a, b, c}) topo.AddExternalPort(id, d.external_capacity);
  topo.AddBidirectionalLink(a, b, d.link_capacity);
  topo.AddBidirectionalLink(b, c, d.link_capacity);
  topo.AddBidirectionalLink(a, c, d.link_capacity);
  return topo;
}

Topology Line(std::size_t n, const TopologyDefaults& d) {
  HODOR_CHECK(n >= 2);
  Topology topo("line" + std::to_string(n));
  const auto ids = AddNumberedNodes(topo, n, d);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    topo.AddBidirectionalLink(ids[i], ids[i + 1], d.link_capacity);
  }
  return topo;
}

Topology Ring(std::size_t n, const TopologyDefaults& d) {
  HODOR_CHECK(n >= 3);
  Topology topo("ring" + std::to_string(n));
  const auto ids = AddNumberedNodes(topo, n, d);
  for (std::size_t i = 0; i < n; ++i) {
    topo.AddBidirectionalLink(ids[i], ids[(i + 1) % n], d.link_capacity);
  }
  return topo;
}

Topology Star(std::size_t n, const TopologyDefaults& d) {
  HODOR_CHECK(n >= 2);
  Topology topo("star" + std::to_string(n));
  const auto ids = AddNumberedNodes(topo, n, d);
  for (std::size_t i = 1; i < n; ++i) {
    topo.AddBidirectionalLink(ids[0], ids[i], d.link_capacity);
  }
  return topo;
}

Topology FullMesh(std::size_t n, const TopologyDefaults& d) {
  HODOR_CHECK(n >= 2);
  Topology topo("mesh" + std::to_string(n));
  const auto ids = AddNumberedNodes(topo, n, d);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      topo.AddBidirectionalLink(ids[i], ids[j], d.link_capacity);
    }
  }
  return topo;
}

Topology Grid(std::size_t rows, std::size_t cols, const TopologyDefaults& d) {
  HODOR_CHECK(rows >= 1 && cols >= 1 && rows * cols >= 2);
  Topology topo("grid" + std::to_string(rows) + "x" + std::to_string(cols));
  const auto ids = AddNumberedNodes(topo, rows * cols, d);
  auto at = [&](std::size_t r, std::size_t c) { return ids[r * cols + c]; };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) {
        topo.AddBidirectionalLink(at(r, c), at(r, c + 1), d.link_capacity);
      }
      if (r + 1 < rows) {
        topo.AddBidirectionalLink(at(r, c), at(r + 1, c), d.link_capacity);
      }
    }
  }
  return topo;
}

Topology LeafSpine(std::size_t leaves, std::size_t spines,
                   const TopologyDefaults& d) {
  HODOR_CHECK(leaves >= 2 && spines >= 1);
  Topology topo("leafspine" + std::to_string(leaves) + "x" +
                std::to_string(spines));
  std::vector<NodeId> leaf_ids, spine_ids;
  for (std::size_t i = 0; i < leaves; ++i) {
    const NodeId id = topo.AddNode("leaf" + std::to_string(i));
    topo.AddExternalPort(id, d.external_capacity);
    leaf_ids.push_back(id);
  }
  for (std::size_t i = 0; i < spines; ++i) {
    spine_ids.push_back(topo.AddNode("spine" + std::to_string(i)));
  }
  for (NodeId leaf : leaf_ids) {
    for (NodeId spine : spine_ids) {
      topo.AddBidirectionalLink(leaf, spine, d.link_capacity);
    }
  }
  return topo;
}

namespace {

// Adds a uniformly random spanning tree over `ids` so random graphs are
// always connected (random-walk/Aldous-Broder would be exact; incremental
// random attachment is sufficient here and simpler).
void AddRandomSpanningTree(Topology& topo, const std::vector<NodeId>& ids,
                           util::Rng& rng, double capacity) {
  for (std::size_t i = 1; i < ids.size(); ++i) {
    const std::size_t j = rng.Index(i);
    topo.AddBidirectionalLink(ids[i], ids[j], capacity);
  }
}

}  // namespace

Topology Waxman(std::size_t n, util::Rng& rng, double alpha, double beta,
                const TopologyDefaults& d) {
  HODOR_CHECK(n >= 2);
  HODOR_CHECK(alpha > 0.0 && alpha <= 1.0 && beta > 0.0);
  Topology topo("waxman" + std::to_string(n));
  const auto ids = AddNumberedNodes(topo, n, d);

  std::vector<std::pair<double, double>> pos(n);
  for (auto& p : pos) p = {rng.Uniform(0.0, 1.0), rng.Uniform(0.0, 1.0)};
  double max_dist = 0.0;
  auto dist = [&](std::size_t i, std::size_t j) {
    const double dx = pos[i].first - pos[j].first;
    const double dy = pos[i].second - pos[j].second;
    return std::sqrt(dx * dx + dy * dy);
  };
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      max_dist = std::max(max_dist, dist(i, j));
    }
  }
  AddRandomSpanningTree(topo, ids, rng, d.link_capacity);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (topo.FindLink(ids[i], ids[j]).ok()) continue;  // tree edge
      const double p = alpha * std::exp(-dist(i, j) / (beta * max_dist));
      if (rng.Bernoulli(std::min(1.0, p))) {
        topo.AddBidirectionalLink(ids[i], ids[j], d.link_capacity);
      }
    }
  }
  return topo;
}

Topology ErdosRenyi(std::size_t n, double p, util::Rng& rng,
                    const TopologyDefaults& d) {
  HODOR_CHECK(n >= 2);
  HODOR_CHECK(p >= 0.0 && p <= 1.0);
  Topology topo("er" + std::to_string(n));
  const auto ids = AddNumberedNodes(topo, n, d);
  AddRandomSpanningTree(topo, ids, rng, d.link_capacity);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (topo.FindLink(ids[i], ids[j]).ok()) continue;
      if (rng.Bernoulli(p)) {
        topo.AddBidirectionalLink(ids[i], ids[j], d.link_capacity);
      }
    }
  }
  return topo;
}

}  // namespace hodor::net
