#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace hodor::obs {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "null";
  std::ostringstream os;
  os.precision(15);
  os << v;
  return os.str();
}

namespace {

// Recursive-descent syntax checker. `pos` advances past the value parsed;
// every Parse* returns false on the first syntax error.
class Checker {
 public:
  explicit Checker(std::string_view s) : s_(s) {}

  bool CheckDocument() {
    SkipWs();
    if (!ParseValue(0)) return false;
    SkipWs();
    return pos_ == s_.size();
  }

 private:
  static constexpr int kMaxDepth = 64;

  void SkipWs() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Literal(std::string_view lit) {
    if (s_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  bool ParseValue(int depth) {
    if (depth > kMaxDepth || pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return ParseObject(depth);
      case '[': return ParseArray(depth);
      case '"': return ParseString();
      case 't': return Literal("true");
      case 'f': return Literal("false");
      case 'n': return Literal("null");
      default: return ParseNumber();
    }
  }

  bool ParseObject(int depth) {
    ++pos_;  // '{'
    SkipWs();
    if (pos_ < s_.size() && s_[pos_] == '}') { ++pos_; return true; }
    while (true) {
      SkipWs();
      if (pos_ >= s_.size() || s_[pos_] != '"' || !ParseString()) return false;
      SkipWs();
      if (pos_ >= s_.size() || s_[pos_] != ':') return false;
      ++pos_;
      SkipWs();
      if (!ParseValue(depth + 1)) return false;
      SkipWs();
      if (pos_ >= s_.size()) return false;
      if (s_[pos_] == ',') { ++pos_; continue; }
      if (s_[pos_] == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool ParseArray(int depth) {
    ++pos_;  // '['
    SkipWs();
    if (pos_ < s_.size() && s_[pos_] == ']') { ++pos_; return true; }
    while (true) {
      SkipWs();
      if (!ParseValue(depth + 1)) return false;
      SkipWs();
      if (pos_ >= s_.size()) return false;
      if (s_[pos_] == ',') { ++pos_; continue; }
      if (s_[pos_] == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool ParseString() {
    ++pos_;  // opening quote
    while (pos_ < s_.size()) {
      const unsigned char c = s_[pos_];
      if (c == '"') { ++pos_; return true; }
      if (c < 0x20) return false;  // raw control character
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        const char esc = s_[pos_];
        if (esc == 'u') {
          for (int i = 1; i <= 4; ++i) {
            if (pos_ + i >= s_.size() ||
                !std::isxdigit(static_cast<unsigned char>(s_[pos_ + i]))) {
              return false;
            }
          }
          pos_ += 4;
        } else if (esc != '"' && esc != '\\' && esc != '/' && esc != 'b' &&
                   esc != 'f' && esc != 'n' && esc != 'r' && esc != 't') {
          return false;
        }
      }
      ++pos_;
    }
    return false;  // unterminated
  }

  bool ParseNumber() {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    if (pos_ >= s_.size() || !std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
      return false;
    }
    if (s_[pos_] == '0') {
      ++pos_;
    } else {
      while (pos_ < s_.size() &&
             std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < s_.size() && s_[pos_] == '.') {
      ++pos_;
      if (pos_ >= s_.size() ||
          !std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        return false;
      }
      while (pos_ < s_.size() &&
             std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < s_.size() && (s_[pos_] == '+' || s_[pos_] == '-')) ++pos_;
      if (pos_ >= s_.size() ||
          !std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        return false;
      }
      while (pos_ < s_.size() &&
             std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        ++pos_;
      }
    }
    return pos_ > start;
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

}  // namespace

bool IsValidJson(std::string_view s) { return Checker(s).CheckDocument(); }

}  // namespace hodor::obs
