// Control-infrastructure fault injection (paper §2.2): factories producing
// the AggregationFaultHooks that corrupt service outputs between honest
// aggregation and the SDN controller.
#pragma once

#include <functional>
#include <vector>

#include "controlplane/services.h"
#include "net/topology.h"
#include "util/rng.h"

namespace hodor::faults {

using TopologyHook = std::function<void(std::vector<bool>&)>;
using DemandHook = std::function<void(flow::DemandMatrix&)>;
using DrainHook =
    std::function<void(std::vector<bool>&, std::vector<bool>&)>;

// §2.2 "did not wait for all routers before stitching": every link incident
// to one of `missing_routers` is dropped from the topology view.
TopologyHook PartialTopologyStitch(const net::Topology& topo,
                                   std::vector<net::NodeId> missing_routers);

// §2.2 liveness misreport: the listed (physical) links are marked down in
// the controller's view although they are fine.
TopologyHook LinksMarkedDown(const net::Topology& topo,
                             std::vector<net::LinkId> links);

// The inverse bug: dead links presented as available ("overload the links
// it believed to be operational", §1).
TopologyHook LinksMarkedUp(const net::Topology& topo,
                           std::vector<net::LinkId> links);

// §2.2 ignored drain: the drain view reaching the controller is cleared.
DrainHook DrainsDropped();

// Aggregation invents a drain for the given routers.
DrainHook DrainsInvented(std::vector<net::NodeId> routers);

// §2.2 partial demand aggregation: all demand sourced at the given ingress
// routers is missing from the matrix.
DemandHook DemandRowsDropped(const net::Topology& topo,
                             std::vector<net::NodeId> sources);

// A random fraction of demand entries is zeroed (lost aggregation shards).
DemandHook DemandEntriesDropped(double fraction, std::uint64_t seed);

// §2.2 end-host throttling mismatch: measured demand differs from the
// traffic actually admitted by `factor` (> 1: the controller plans for
// traffic that never arrives; < 1: it under-plans).
DemandHook DemandScaled(double factor);

// Stale demand: the input is replaced by a previously captured matrix.
DemandHook DemandFrozen(flow::DemandMatrix stale);

// Stale *pattern*: the measured matrix's entries are re-attributed to the
// wrong ingress routers (each external row moves to the next external
// node, cyclically). Totals and magnitudes stay plausible, so history-
// based validators are blind to it; per-node invariants are not.
DemandHook DemandRowsRotated(const net::Topology& topo);

}  // namespace hodor::faults
