// Canonical fingerprints for the frame-refactor equivalence goldens.
//
// These serialise every observable artefact of a validated epoch — the
// DecisionRecord stream, the hardened (repaired) state, and the trace-level
// verdict — into a canonical text digest, so the golden test can assert
// bit-identical behaviour across the columnar-frame refactor and across
// num_threads settings. Doubles are printed with %.17g: round-trip exact,
// so two fingerprints match iff every value is bit-identical.
#pragma once

#include <cinttypes>
#include <cstdio>
#include <string>

#include "controlplane/pipeline.h"
#include "core/hardened_state.h"
#include "obs/provenance.h"

namespace hodor::testing {

inline void AppendF64(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

inline void AppendOpt(std::string& out, const std::optional<double>& v) {
  if (v.has_value()) {
    AppendF64(out, *v);
  } else {
    out += "~";
  }
}

inline void AppendOpt(std::string& out, const std::optional<bool>& v) {
  out += v.has_value() ? (*v ? "T" : "F") : "~";
}

// The full DecisionRecord stream for one epoch, one line per invariant.
inline std::string DecisionText(const obs::DecisionRecord& rec) {
  std::string out;
  out += rec.accept ? "accept" : "reject";
  out += "|" + rec.summary + "\n";
  for (const obs::InvariantRecord& inv : rec.Invariants()) {
    out += inv.check + "|" + inv.invariant + "|";
    AppendF64(out, inv.residual);
    out += "|";
    AppendF64(out, inv.threshold);
    out += "|";
    out += obs::InvariantVerdictName(inv.verdict);
    out += "|" + inv.source + "|";
    AppendF64(out, inv.confidence);
    out += "|" + inv.detail + "\n";
  }
  return out;
}

// Every repaired value, origin, flag, and confidence in a HardenedState.
inline std::string HardenedText(const core::HardenedState& hs) {
  std::string out;
  for (std::size_t e = 0; e < hs.rates.size(); ++e) {
    const core::HardenedRate& r = hs.rates[e];
    out += "r" + std::to_string(e) + ":";
    AppendOpt(out, r.value);
    out += "|" + std::to_string(static_cast<int>(r.origin)) + "|";
    out += r.flagged ? "f" : ".";
    out += "|";
    AppendOpt(out, r.rejected_value);
    out += "|";
    AppendF64(out, r.confidence);
    out += "|" + std::string(core::RepairSourceName(r.repair_source)) + "|";
    AppendF64(out, r.repair_residual);
    out += "\n";
  }
  for (std::size_t e = 0; e < hs.links.size(); ++e) {
    out += "l" + std::to_string(e) + ":" +
           core::LinkVerdictName(hs.links[e].verdict) + "|";
    AppendF64(out, hs.links[e].confidence);
    out += hs.links[e].status_disagreement ? "|d" : "|.";
    out += "|";
    AppendOpt(out, hs.link_drained[e]);
    out += hs.link_drain_disagreement[e] ? "|d" : "|.";
    out += "\n";
  }
  for (std::size_t v = 0; v < hs.drains.size(); ++v) {
    out += "n" + std::to_string(v) + ":";
    AppendOpt(out, hs.ext_in[v]);
    out += "|";
    AppendOpt(out, hs.ext_out[v]);
    out += "|";
    AppendOpt(out, hs.dropped[v]);
    out += "|";
    AppendOpt(out, hs.drains[v].node_drained);
    out += hs.drains[v].undrained_but_dead ? "|D" : "|.";
    out += hs.drains[v].drained_but_active ? "|A" : "|.";
    out += "|";
    AppendF64(out, hs.drains[v].liveness_confidence);
    out += "|";
    AppendF64(out, hs.scalar_confidence[v]);
    out += "\n";
  }
  out += "counts:" + std::to_string(hs.flagged_rate_count) + "|" +
         std::to_string(hs.repaired_rate_count) + "|" +
         std::to_string(hs.unknown_rate_count) + "|" +
         std::to_string(hs.status_disagreement_count) + "\n";
  return out;
}

// Trace-level verdict for one epoch: what availability accounting sees.
inline std::string EpochVerdictText(const controlplane::EpochResult& r) {
  std::string out;
  out += r.decision.accept ? "A" : "R";
  out += r.used_fallback ? "F" : ".";
  out += "|" + std::to_string(r.decision.provenance.failed_count()) + "|";
  AppendF64(out, r.metrics.demand_satisfaction);
  out += "|";
  AppendF64(out, r.metrics.max_link_utilization);
  out += "\n";
  return out;
}

// FNV-1a 64-bit over the canonical text, rendered as fixed-width hex.
inline std::string Fingerprint(const std::string& text) {
  std::uint64_t h = 1469598103934665603ull;
  for (unsigned char c : text) {
    h ^= c;
    h *= 1099511628211ull;
  }
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, h);
  return std::string(buf) + ":" + std::to_string(text.size());
}

}  // namespace hodor::testing
