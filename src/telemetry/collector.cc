#include "telemetry/collector.h"

#include "obs/metrics.h"
#include "util/parallel.h"

namespace hodor::telemetry {

void Collector::CollectInto(const net::GroundTruthState& state,
                            const flow::SimulationResult& sim,
                            std::uint64_t epoch, util::Rng& rng,
                            NetworkSnapshot& snapshot,
                            const SnapshotMutator& mutator,
                            util::ThreadPool* pool) const {
  snapshot.Reset(epoch);
  const std::size_t nodes = topo_->node_count();
  if (util::ShardCount(pool, nodes) <= 1) {
    for (const net::Node& node : topo_->nodes()) {
      ReportRouterSignals(*topo_, state, sim, node.id, opts_.agent, rng,
                          snapshot);
    }
  } else {
    // Determinism contract (router_agent.h): pre-draw every jitter uniform
    // from the shared rng in serial report order, then shard the fill.
    draw_offsets_.resize(nodes + 1);
    draw_offsets_[0] = 0;
    for (std::size_t v = 0; v < nodes; ++v) {
      draw_offsets_[v + 1] =
          draw_offsets_[v] +
          CountJitterDraws(*topo_, sim, net::NodeId(static_cast<uint32_t>(v)),
                           opts_.agent);
    }
    jitter_scratch_.resize(draw_offsets_[nodes]);
    const double j = opts_.agent.rate_jitter;
    for (double& u : jitter_scratch_) u = rng.Uniform(-j, j);
    util::ParallelFor(pool, nodes,
                      [&](std::size_t begin, std::size_t end, std::size_t) {
                        for (std::size_t v = begin; v < end; ++v) {
                          ReportRouterSignalsPredrawn(
                              *topo_, state, sim,
                              net::NodeId(static_cast<uint32_t>(v)),
                              opts_.agent,
                              jitter_scratch_.data() + draw_offsets_[v],
                              snapshot);
                        }
                      });
    snapshot.frame().MarkHonestPresence();
  }
  if (mutator) mutator(snapshot);
  if (opts_.run_probes) {
    ProbeAllLinksInto(*topo_, state, opts_.probes, rng,
                      snapshot.probe_buffer());
    snapshot.IndexProbeResults();
  }

  obs::MetricsRegistry& reg = obs::ResolveRegistry(opts_.metrics);
  reg.GetCounter("hodor_snapshots_total", {}, "Telemetry snapshots collected")
      .Increment();
  if (opts_.run_probes) {
    reg.GetCounter("hodor_probe_rounds_total", {},
                   "Active probe rounds (R4 manufactured signals)")
        .Increment();
  }
  reg.GetGauge("hodor_snapshot_signals_present", {},
               "Signal values present in the latest snapshot")
      .Set(static_cast<double>(snapshot.PresentSignalCount()));
}

NetworkSnapshot Collector::Collect(const net::GroundTruthState& state,
                                   const flow::SimulationResult& sim,
                                   std::uint64_t epoch, util::Rng& rng,
                                   const SnapshotMutator& mutator) const {
  NetworkSnapshot snapshot(*topo_, epoch);
  CollectInto(state, sim, epoch, rng, snapshot, mutator);
  return snapshot;
}

}  // namespace hodor::telemetry
