// Live pipeline: Hodor as the always-on system §3 envisions.
//
// Runs 20 control epochs over the GÉANT-like WAN. Demand drifts epoch to
// epoch; between epochs 8 and 12 a buggy demand-instrumentation rollout
// loses a third of the demand entries (the §2.2 external-input outage),
// then the rollout is reverted. Two pipelines run side by side on the same
// fault schedule: one unprotected, one with the Hodor validator and the
// fallback-to-last-good policy.
//
// The protected pipeline also carries the full operability stack: an
// embedded TelemetryServer (GET /metrics, /metrics.json, /healthz,
// /decisions, /health/signals, /alerts), a SignalHealthBoard scoring every
// signal source 0-100, and an AlertEngine running the firing → active →
// resolved lifecycle — all fed from a single epoch observer hook.
//
//   ./build/examples/live_pipeline
//   ./build/examples/live_pipeline --topo=waxman400 --epochs=8
//       --trace-out=trace.json
//
// Flags:
//   --topo=geant|abilene|waxman100|waxman400   topology (default geant;
//       waxman sizes use seed 21 and sparse demand, like the bench)
//   --epochs=N        control epochs to run (default 20)
//   --trace-out=PATH  write the protected pipeline's execution trace as
//       Chrome/Perfetto trace JSON after the run (load in ui.perfetto.dev)
//
// Set HODOR_SERVE_SECONDS=60 to keep the HTTP endpoints up after the run
// (curl the printed URL); by default the binary exits immediately.
//
// Set HODOR_RECORD_PATH=run.hlog to flight-record the protected pipeline:
// every epoch's snapshot, raw input, and validation verdict goes to a
// binary epoch log that `hodor_replay inspect|replay|diff` can re-examine
// offline (see README "Recording and replaying runs").
//
// Set HODOR_THREADS=N to run the staged epoch engine: honest collection
// and the validator's checks shard over N workers, and all epoch sinks
// (recorder, health board, alert engine, HTTP snapshots) move to a
// dedicated sink thread — bit-identical results either way (DESIGN §9).
//
// SIGINT/SIGTERM interrupt the run cleanly: the epoch loop stops, sinks
// drain, and the epoch log is flushed and closed before exit.
#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <iostream>
#include <string>
#include <string_view>
#include <thread>

#include "controlplane/pipeline.h"
#include "core/alerts.h"
#include "core/validator.h"
#include "faults/aggregation_faults.h"
#include "flow/tm_generators.h"
#include "net/topologies.h"
#include "obs/exec_timeline.h"
#include "obs/health/signal_health.h"
#include "obs/metrics.h"
#include "obs/observatory.h"
#include "obs/provenance.h"
#include "obs/serve/telemetry_server.h"
#include "obs/span.h"
#include "replay/recorder.h"
#include "util/logging.h"
#include "util/parallel.h"
#include "util/strings.h"
#include "util/table.h"

namespace {

// Async-signal-safe stop flag: the epoch loop and the serve-wait both poll
// it, so Ctrl-C lands between epochs and the recorder still closes cleanly.
volatile std::sig_atomic_t g_stop_requested = 0;

void HandleStopSignal(int) { g_stop_requested = 1; }

hodor::net::Topology TopologyByName(const std::string& name, bool* sparse) {
  using namespace hodor;
  *sparse = false;
  if (name == "geant") return net::GeantLike();
  if (name == "abilene") return net::Abilene();
  if (name == "waxman100" || name == "waxman400") {
    // Same seed as bench/bench_epoch_engine so traces are comparable.
    util::Rng topo_rng(21);
    *sparse = true;
    return net::Waxman(name == "waxman100" ? 100 : 400, topo_rng);
  }
  std::cerr << "unknown --topo=" << name
            << " (expected geant|abilene|waxman100|waxman400)\n";
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hodor;
  util::Logger::Instance().SetMinLevel(util::LogLevel::kError);
  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleStopSignal);

  std::string topo_name = "geant";
  std::string trace_out;
  int total_epochs = 20;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind("--topo=", 0) == 0) {
      topo_name = std::string(arg.substr(7));
    } else if (arg.rfind("--epochs=", 0) == 0) {
      total_epochs = std::atoi(std::string(arg.substr(9)).c_str());
      if (total_epochs <= 0) {
        std::cerr << "--epochs must be a positive integer\n";
        return 2;
      }
    } else if (arg.rfind("--trace-out=", 0) == 0) {
      trace_out = std::string(arg.substr(12));
    } else {
      std::cerr << "unknown flag: " << arg
                << "\nusage: live_pipeline [--topo=geant|abilene|waxman100|"
                   "waxman400] [--epochs=N] [--trace-out=PATH]\n";
      return 2;
    }
  }

  bool sparse_demand = false;
  const net::Topology topo = TopologyByName(topo_name, &sparse_demand);
  const net::GroundTruthState state(topo);

  // Base demand plus per-epoch drift: the network's "diurnal" variation.
  // Waxman sizes sparsify to ~2 peers per site, like the bench (WAN
  // matrices are sparse; a dense 400-node matrix is not realistic).
  util::Rng demand_rng(99);
  flow::DemandMatrix base = flow::GravityDemand(topo, demand_rng);
  if (sparse_demand) {
    const auto pairs = base.Pairs();
    const double keep =
        std::min(1.0, 2.0 * static_cast<double>(topo.node_count()) /
                          static_cast<double>(pairs.size()));
    util::Rng sparsify_rng(29);
    for (const auto& [i, j] : pairs) {
      if (sparsify_rng.Uniform(0.0, 1.0) > keep) base.Set(i, j, 0.0);
    }
  }
  flow::NormalizeToMaxUtilization(topo, 0.45, base);

  // HODOR_THREADS > 1 engages the staged engine on the protected pipeline:
  // sharded collection + sibling validator checks, sinks on their own
  // thread. Results are bit-identical to the serial default.
  const std::size_t threads = util::ThreadsFromEnv(1);
  controlplane::PipelineOptions opts;
  controlplane::Pipeline unprotected(topo, opts, util::Rng(1));
  controlplane::PipelineOptions protected_opts = opts;
  protected_opts.num_threads = threads;
  protected_opts.threaded_sinks = threads > 1;
  controlplane::Pipeline protected_pipeline(topo, protected_opts,
                                            util::Rng(1));
  core::ValidatorOptions validator_opts;
  validator_opts.hardening.num_threads = threads;
  const core::Validator validator(topo, validator_opts);
  protected_pipeline.SetValidator(validator.AsPipelineValidator());
  unprotected.Bootstrap(state, base);
  protected_pipeline.Bootstrap(state, base);

  // The operability stack, fed by one epoch observer on the protected
  // pipeline and served live over HTTP. The Observatory bundles the
  // sink-side registry (with threaded sinks the hook below runs on the
  // engine's sink thread, so everything it renders goes through that
  // registry, refreshed from the per-epoch metrics mirror), the trust
  // board, the detection-latency tracker, and the time-series store behind
  // /query and /dashboard.
  obs::Observatory observatory;
  core::AlertEngineOptions engine_opts;
  engine_opts.min_hold_epochs = 2;
  engine_opts.escalation_threshold = 3;
  engine_opts.metrics = &observatory.serving_registry();
  core::AlertEngine engine(engine_opts);
  obs::TelemetryServer server;
  const bool serving = server.Start();
  std::vector<std::string> alert_log;

  // Optional flight recorder on the protected pipeline.
  replay::PipelineRecorder recorder;
  if (const char* record_path = std::getenv("HODOR_RECORD_PATH")) {
    const util::Status opened = recorder.Open(record_path, topo);
    if (opened.ok()) {
      protected_pipeline.AddEpochSink(recorder.Hook());
      std::cout << "recording epochs to " << record_path << "\n";
    } else {
      std::cerr << "HODOR_RECORD_PATH: " << opened.ToString() << "\n";
    }
  }

  protected_pipeline.AddEpochSink(
      [&](const controlplane::EpochResult& r) {
        // Step 1: mirror the epoch's metrics (live registry when sinks are
        // synchronous), fold trust + detection latency.
        observatory.ObserveEpoch(r.epoch, r.metrics_mirror,
                                 r.decision.provenance, r.fault_classes);
        // The alert engine writes its counters into the serving registry
        // between steps 1 and 2, so the time-series store retains them.
        const auto summary = engine.Observe(
            r.epoch, core::AlertsFromProvenance(r.decision.provenance));
        for (const core::AlertRecord& rec : engine.active()) {
          if (rec.state == core::AlertState::kFiring ||
              (rec.escalated && rec.last_seen_epoch == r.epoch &&
               rec.consecutive_epochs == engine_opts.escalation_threshold)) {
            alert_log.push_back(rec.Render());
          }
        }
        if (summary.resolved > 0) {
          for (const core::AlertRecord& rec : engine.resolved()) {
            if (rec.resolved_epoch == r.epoch) {
              alert_log.push_back(rec.Render());
            }
          }
        }
        // Step 2: retain this epoch's samples for /query and /dashboard.
        observatory.SampleTimeseries(r.epoch);
        if (serving) {
          observatory.PublishTo(server, &r.decision.provenance);
          server.PublishAlerts(engine.ToJson());
        }
      });

  if (serving) {
    std::cout << "telemetry: " << server.url()
              << "  (GET /metrics /metrics.json /healthz /decisions /trace "
                 "/health/signals /alerts /query /slo /buildz)\n"
              << "dashboard: " << server.url() << "/dashboard\n\n";
  }

  util::TablePrinter table({"epoch", "fault", "sat (unprotected)",
                            "sat (hodor)", "hodor verdict"});

  // First rejected epoch's provenance, kept for the post-run printout.
  obs::DecisionRecord sample_rejection;

  for (int epoch = 0; epoch < total_epochs && !g_stop_requested; ++epoch) {
    // Drift: each pair's demand wobbles a few percent per epoch.
    util::Rng drift_rng(1000 + epoch);
    flow::DemandMatrix demand = base;
    for (const auto& [i, j] : base.Pairs()) {
      demand.Set(i, j, base.At(i, j) * (1.0 + drift_rng.Uniform(-0.04, 0.04)));
    }

    const bool buggy_rollout = epoch >= 8 && epoch < 12;
    controlplane::AggregationFaultHooks hooks;
    if (buggy_rollout) {
      hooks.demand = faults::DemandEntriesDropped(
          0.33, 4242 + static_cast<std::uint64_t>(epoch));
    }

    const auto u = unprotected.RunEpoch(state, demand, nullptr, hooks);
    const auto p = protected_pipeline.RunEpoch(state, demand, nullptr, hooks);

    // The epoch's execution breakdown (critical path, per-stage self/wait,
    // sink health) goes to GET /trace, newest first.
    if (serving) {
      if (obs::ExecTimeline* tl = protected_pipeline.exec_timeline()) {
        if (const auto latest = tl->Latest()) {
          server.PublishTrace(latest->epoch, latest->ToJson());
        }
      }
    }

    std::string verdict = p.decision.accept ? "accept" : "REJECT";
    if (p.used_fallback) verdict += " -> fallback";
    if (!p.decision.accept && sample_rejection.Invariants().empty()) {
      sample_rejection = p.decision.provenance;
    }
    table.AddRowValues(epoch, buggy_rollout ? "demand rollout bug" : "-",
                       util::FormatPercent(u.metrics.demand_satisfaction, 2),
                       util::FormatPercent(p.metrics.demand_satisfaction, 2),
                       verdict);
  }
  // Every epoch reaches every sink before we read their state (health
  // board, alert log, serving registry) back on this thread — and before
  // an interrupted run closes the recorder below.
  protected_pipeline.DrainSinks();
  if (g_stop_requested) {
    std::cout << "\ninterrupted: stopping after the current epoch; sinks "
                 "drained, closing the epoch log.\n";
  }
  std::cout << table.ToString();
  std::cout << "\nDuring the buggy rollout the unprotected controller plans "
               "around a third of the real traffic;\nthe protected pipeline "
               "rejects each corrupted input and keeps serving on the last "
               "good one.\n";

  // Observability recap: what the obs layer recorded while the two
  // pipelines ran (both feed the process-global registry).
  std::cout << "\nPer-stage wall-clock (both pipelines pooled):\n";
  const auto& reg = obs::MetricsRegistry::Global();
  util::TablePrinter spans({"stage", "runs", "mean us"});
  for (obs::Stage stage : obs::kAllStages) {
    const obs::Histogram* h = reg.FindHistogram(
        "hodor_stage_duration_us", {{"stage", obs::StageName(stage)}});
    if (!h || h->count() == 0) continue;
    spans.AddRowValues(obs::StageName(stage), h->count(),
                       util::FormatDouble(
                           h->sum() / static_cast<double>(h->count()), 1));
  }
  std::cout << spans.ToString();

  // Critical-path recap: where the last epoch's wall time actually went
  // (protected pipeline's execution tracer; see README "Profiling Hodor").
  if (obs::ExecTimeline* tl = protected_pipeline.exec_timeline()) {
    if (const auto last = tl->Latest()) {
      std::cout << "\nCritical path, last epoch (" << last->epoch << "): "
                << util::FormatDouble(last->critical_path_ms, 2)
                << " ms, bottleneck stage: " << last->bottleneck << "\n";
      util::TablePrinter cp({"stage", "self ms", "wait ms", "busy"});
      for (const obs::StageBreakdown& s : last->stages) {
        cp.AddRowValues(s.name, util::FormatDouble(s.self_ms, 3),
                        util::FormatDouble(s.wait_ms, 3),
                        util::FormatPercent(s.busy_ratio, 1));
      }
      std::cout << cp.ToString();
      if (protected_opts.threaded_sinks || last->sink_queue_depth_max > 0) {
        std::cout << "sink queue depth max " << last->sink_queue_depth_max
                  << ", backpressure "
                  << util::FormatDouble(last->backpressure_ms, 3)
                  << " ms, sink lag "
                  << util::FormatDouble(last->sink_lag_ms, 3) << " ms\n";
      }
    }
  }
  if (!trace_out.empty()) {
    if (protected_pipeline.WriteExecTrace(trace_out)) {
      std::cout << "\nwrote execution trace to " << trace_out
                << " (load in ui.perfetto.dev or chrome://tracing)\n";
    } else {
      std::cerr << "\n--trace-out: could not write " << trace_out << "\n";
    }
  }

  // Signal-health scoreboard: the least-trusted sources after the run.
  obs::SignalHealthBoard& board = observatory.board();
  std::cout << "\nSignal-health scoreboard (" << board.source_count()
            << " sources, worst trust first; history oldest->newest, "
               "P=pass F=fail S=skipped R=repaired .=quiet):\n";
  util::TablePrinter health({"check", "entity", "trust", "fails",
                             "residual ewma", "history"});
  int shown = 0;
  for (const obs::SignalHealth* h : board.SourcesByTrust()) {
    if (++shown > 8) break;
    health.AddRowValues(h->check, h->entity, util::FormatDouble(h->trust, 0),
                        h->fail_epochs,
                        util::FormatDouble(h->residual_ewma, 3),
                        h->HistoryString());
  }
  std::cout << health.ToString();

  // Alert lifecycle: what a paging system would have seen.
  std::cout << "\nAlert lifecycle (" << alert_log.size()
            << " transitions, dedup by source|entity, min-hold "
            << engine_opts.min_hold_epochs << " epochs, escalation after "
            << engine_opts.escalation_threshold << "):\n";
  for (const std::string& line : alert_log) std::cout << "  " << line << "\n";

  if (!sample_rejection.Invariants().empty()) {
    std::cout << "\nSample decision provenance (first rejected epoch, "
              << sample_rejection.failed_count() << " of "
              << sample_rejection.evaluated_count()
              << " invariants failed):\n"
              << sample_rejection.ToJson() << "\n";
    if (const obs::InvariantRecord* first = sample_rejection.FirstFailure()) {
      std::cout << "First failure: " << first->check << "/"
                << first->invariant << " residual "
                << util::FormatDouble(first->residual, 4) << " > threshold "
                << util::FormatDouble(first->threshold, 4) << "\n";
    }
  }

  // Keep the HTTP surface up on request so operators can poke at it.
  if (serving) {
    if (const char* env = std::getenv("HODOR_SERVE_SECONDS")) {
      const int seconds = std::atoi(env);
      if (seconds > 0) {
        // Explicit flush: with stdout redirected to a file this line
        // would otherwise sit in the stdio buffer for the whole serve
        // window, and check_build.sh --dashboard-gate polls for it.
        std::cout << "\nServing telemetry at " << server.url() << " for "
                  << seconds << "s (HODOR_SERVE_SECONDS, Ctrl-C to stop)"
                  << "..." << std::endl;
        // Sleep in short slices so SIGINT/SIGTERM end the wait promptly.
        const auto deadline = std::chrono::steady_clock::now() +
                              std::chrono::seconds(seconds);
        while (!g_stop_requested &&
               std::chrono::steady_clock::now() < deadline) {
          std::this_thread::sleep_for(std::chrono::milliseconds(100));
        }
      }
    }
    server.Stop();
  }

  if (recorder.recorded_epochs() > 0 || !recorder.status().ok()) {
    const util::Status closed = recorder.Close();
    if (closed.ok()) {
      std::cout << "\nrecorded " << recorder.recorded_epochs()
                << " epochs to " << recorder.path()
                << " (inspect with: ./build/examples/hodor_replay inspect "
                << recorder.path() << ")\n";
    } else {
      std::cerr << "flight recorder: " << closed.ToString() << "\n";
    }
  }
  return 0;
}
