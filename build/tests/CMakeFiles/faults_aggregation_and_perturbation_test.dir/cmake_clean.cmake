file(REMOVE_RECURSE
  "CMakeFiles/faults_aggregation_and_perturbation_test.dir/faults/aggregation_and_perturbation_test.cc.o"
  "CMakeFiles/faults_aggregation_and_perturbation_test.dir/faults/aggregation_and_perturbation_test.cc.o.d"
  "faults_aggregation_and_perturbation_test"
  "faults_aggregation_and_perturbation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/faults_aggregation_and_perturbation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
