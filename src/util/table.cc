#include "util/table.h"

#include <algorithm>
#include <sstream>

#include "util/status.h"

namespace hodor::util {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  HODOR_CHECK(!headers_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  HODOR_CHECK_MSG(cells.size() == headers_.size(), "row arity mismatch");
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::ToString() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " ");
      os << row[c] << std::string(widths[c] - row[c].size(), ' ') << " |";
    }
    os << "\n";
  };
  emit_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << (c == 0 ? "|" : "") << std::string(widths[c] + 2, '-') << "|";
  }
  os << "\n";
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string CsvEscape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char ch : field) {
    if (ch == '"') out += "\"\"";
    else out += ch;
  }
  out += "\"";
  return out;
}

std::string TablePrinter::ToCsv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ",";
      os << CsvEscape(row[c]);
    }
    os << "\n";
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

}  // namespace hodor::util
