// Plain-text topology serialization, so downstream users can load their
// own networks instead of the canned ones. Format ("hodor topology v1"):
//
//   # comments and blank lines are ignored
//   topology <name>
//   node <name> [ext <capacity_gbps>]
//   link <node_a> <node_b> <capacity_gbps> [metric <m>]
//
// Links are physical (bidirectional). Round-trips exactly through
// WriteTopology / ParseTopology.
#pragma once

#include <string>

#include "net/topology.h"
#include "util/status.h"

namespace hodor::net {

// Renders `topo` in the v1 text format.
std::string WriteTopology(const Topology& topo);

// Parses the v1 text format. Returns InvalidArgument with a line number on
// malformed input (unknown directive, bad arity, unknown node, duplicate
// node, non-positive capacity).
util::StatusOr<Topology> ParseTopology(const std::string& text);

}  // namespace hodor::net
