#include "core/demand_check.h"

#include <gtest/gtest.h>

#include "core/hardening.h"
#include "faults/demand_perturbations.h"
#include "test_util.h"

namespace hodor::core {
namespace {

using net::NodeId;

struct DemandCheckFixture : ::testing::Test {
  DemandCheckFixture() : net(testing::MakeAbilene()) {
    hardened = HardeningEngine().Harden(net.Snapshot());
  }

  testing::HealthyNetwork net;
  HardenedState hardened;
};

TEST_F(DemandCheckFixture, TrueDemandPasses) {
  const DemandCheckResult r = CheckDemand(net.topo, hardened, net.demand);
  EXPECT_TRUE(r.ok());
  // 12 external nodes, ingress + egress each: 24 invariants (2·v, §4.1).
  EXPECT_EQ(r.checked_invariants, 24u);
  EXPECT_EQ(r.skipped_invariants, 0u);
}

TEST_F(DemandCheckFixture, ZeroedRowViolatesIngressAndEgress) {
  flow::DemandMatrix bad = net.demand;
  NodeId victim = net.topo.ExternalNodes()[0];
  for (NodeId j : net.topo.NodeIds()) {
    if (j != victim) bad.Set(victim, j, 0.0);
  }
  const DemandCheckResult r = CheckDemand(net.topo, hardened, bad);
  ASSERT_FALSE(r.ok());
  bool saw_ingress = false;
  for (const auto& v : r.violations) {
    if (v.node == victim && v.kind == DemandInvariantKind::kIngress) {
      saw_ingress = true;
      EXPECT_GT(v.relative_diff, 0.9);  // row sum went to ~0
      EXPECT_FALSE(v.ToString(net.topo).empty());
    }
  }
  EXPECT_TRUE(saw_ingress);
}

TEST_F(DemandCheckFixture, ScaledDemandViolatesEverywhere) {
  flow::DemandMatrix bad = net.demand;
  bad.Scale(1.5);
  const DemandCheckResult r = CheckDemand(net.topo, hardened, bad);
  // Every ingress and egress invariant breaks.
  EXPECT_EQ(r.violations.size(), 24u);
}

TEST_F(DemandCheckFixture, SmallPerturbationWithinTauPasses) {
  flow::DemandMatrix ok = net.demand;
  ok.Scale(1.005);  // 0.5% shift, under τ_e = 2%
  EXPECT_TRUE(CheckDemand(net.topo, hardened, ok).ok());
}

TEST_F(DemandCheckFixture, TauKnobControlsSensitivity) {
  flow::DemandMatrix bad = net.demand;
  bad.Scale(1.05);  // 5% off
  DemandCheckOptions strict;
  strict.tau_e = 0.02;
  EXPECT_FALSE(CheckDemand(net.topo, hardened, bad, strict).ok());
  DemandCheckOptions loose;
  loose.tau_e = 0.10;
  EXPECT_TRUE(CheckDemand(net.topo, hardened, bad, loose).ok());
}

TEST_F(DemandCheckFixture, MissingCountersAreSkippedNotViolated) {
  HardenedState crippled = hardened;
  const NodeId victim = net.topo.ExternalNodes()[3];
  crippled.ext_in[victim.value()].reset();
  crippled.ext_out[victim.value()].reset();
  const DemandCheckResult r = CheckDemand(net.topo, crippled, net.demand);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.checked_invariants, 22u);
  EXPECT_EQ(r.skipped_invariants, 2u);
}

TEST_F(DemandCheckFixture, SwappedEntriesAcrossRowsDetected) {
  // Swapping entries between different rows/cols changes four sums.
  util::Rng rng(5);
  // Pick two entries in different rows with very different values.
  auto pairs = net.demand.Pairs();
  std::pair<NodeId, NodeId> p1 = pairs[0], p2 = pairs[0];
  double best_gap = 0.0;
  for (const auto& a : pairs) {
    for (const auto& b : pairs) {
      if (a.first == b.first || a.second == b.second) continue;
      const double gap =
          std::abs(net.demand.At(a.first, a.second) -
                   net.demand.At(b.first, b.second));
      if (gap > best_gap) {
        best_gap = gap;
        p1 = a;
        p2 = b;
      }
    }
  }
  ASSERT_GT(best_gap, net.demand.Total() * 0.02);
  flow::DemandMatrix bad = net.demand;
  const double v1 = bad.At(p1.first, p1.second);
  const double v2 = bad.At(p2.first, p2.second);
  bad.Set(p1.first, p1.second, v2);
  bad.Set(p2.first, p2.second, v1);
  EXPECT_FALSE(CheckDemand(net.topo, hardened, bad).ok());
}

TEST_F(DemandCheckFixture, IdleNetworkWithZeroDemandPasses) {
  testing::HealthyNetwork idle(net::Abilene(), 31);
  idle.demand = flow::DemandMatrix(idle.topo.node_count());
  idle.plan = flow::RoutingPlan{};
  idle.sim = flow::SimulateFlow(idle.topo, idle.state, idle.demand, idle.plan);
  const HardenedState hs = HardeningEngine().Harden(idle.Snapshot());
  const DemandCheckResult r =
      CheckDemand(idle.topo, hs, flow::DemandMatrix(idle.topo.node_count()));
  EXPECT_TRUE(r.ok()) << "zero-vs-zero must not divide by zero";
}

TEST_F(DemandCheckFixture, PerturbationHelpersIntegrate) {
  util::Rng rng(7);
  const auto zeroed = faults::ZeroEntries(net.demand, 3, rng);
  EXPECT_EQ(zeroed.touched.size(), 3u);
  EXPECT_FALSE(CheckDemand(net.topo, hardened, zeroed.matrix).ok());
}

TEST(DemandCheck, WrongMatrixSizeRejected) {
  testing::HealthyNetwork net(net::Figure3Triangle(), 3);
  const HardenedState hs = HardeningEngine().Harden(net.Snapshot());
  flow::DemandMatrix wrong(net.topo.node_count() + 1);
  EXPECT_THROW(CheckDemand(net.topo, hs, wrong), std::logic_error);
}

}  // namespace
}  // namespace hodor::core
