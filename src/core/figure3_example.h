// The paper's Figure 3 as a reusable, exactly-reproducible object: the
// three-router triangle, its demand matrix, the honest jitter-free
// snapshot, and the faulty variant where the TX counter of A->B reports 98
// instead of the true 76. Flow conservation at B recovers x = 76.
//
// Demand (rows -> columns): A->B = 52, A->C = 24 (routed via B),
// C->B = 23, C->A = 5. True link rates: A->B = 76, C->B = 23, B->C = 24,
// C->A = 5, B->A = A->C = 0. External counters: ext_in A/B/C = 76/0/28,
// ext_out A/B/C = 5/75/24.
#pragma once

#include "flow/demand_matrix.h"
#include "net/topologies.h"
#include "telemetry/snapshot.h"

namespace hodor::core {

class Figure3Example {
 public:
  Figure3Example();

  const net::Topology& topology() const { return topo_; }
  net::NodeId a() const { return a_; }
  net::NodeId b() const { return b_; }
  net::NodeId c() const { return c_; }
  net::LinkId ab() const { return ab_; }
  net::LinkId ba() const { return ba_; }
  net::LinkId bc() const { return bc_; }
  net::LinkId cb() const { return cb_; }
  net::LinkId ac() const { return ac_; }
  net::LinkId ca() const { return ca_; }

  // True rate on a directed link, Gbps.
  double TrueRate(net::LinkId e) const;

  // Honest jitter-free snapshot of the scenario.
  telemetry::NetworkSnapshot HonestSnapshot() const;

  // The figure's faulty snapshot: TX(A->B) corrupted to `faulty_tx`.
  telemetry::NetworkSnapshot FaultySnapshot(double faulty_tx = 98.0) const;

  // The demand matrix the controller receives (correct in the figure).
  flow::DemandMatrix Demand() const;

  static constexpr double kTrueRateAB = 76.0;
  static constexpr double kFaultyTxAB = 98.0;

 private:
  net::Topology topo_;
  net::NodeId a_, b_, c_;
  net::LinkId ab_, ba_, bc_, cb_, ac_, ca_;
};

}  // namespace hodor::core
