#include "obs/detection.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "obs/json.h"

namespace hodor::obs {

namespace {

// Nearest-rank percentile over an unsorted sample set; NaN when empty.
double Percentile(std::vector<double> samples, double pct) {
  if (samples.empty()) return std::nan("");
  std::sort(samples.begin(), samples.end());
  const double rank = pct / 100.0 * static_cast<double>(samples.size());
  std::size_t index = static_cast<std::size_t>(std::ceil(rank));
  if (index > 0) --index;
  if (index >= samples.size()) index = samples.size() - 1;
  return samples[index];
}

void AppendNullableNumber(std::ostringstream& os, double v) {
  if (std::isnan(v)) {
    os << "null";
  } else {
    os << JsonNumber(v);
  }
}

}  // namespace

DetectionLatencyTracker::DetectionLatencyTracker(DetectionOptions opts)
    : opts_(std::move(opts)) {
  if (opts_.max_latency_samples == 0) opts_.max_latency_samples = 1;
}

void DetectionLatencyTracker::RecordLatency(const std::string& fault_class,
                                            const std::string& detector,
                                            double latency,
                                            MetricsRegistry* registry) {
  PairStats& stats = pairs_[{fault_class, detector}];
  ++stats.flags;
  if (stats.latencies.size() >= opts_.max_latency_samples) {
    stats.latencies.erase(stats.latencies.begin());
  }
  stats.latencies.push_back(latency);
  if (registry != nullptr) {
    registry
        ->GetHistogram(
            "hodor_detection_latency_epochs",
            {{"fault_class", fault_class}, {"detector", detector}},
            opts_.latency_buckets,
            "Epochs from fault-class injection to first flag per detector")
        .Observe(latency);
    registry
        ->GetCounter("hodor_detection_flag_total",
                     {{"fault_class", fault_class}, {"detector", detector}},
                     "First-flag events per (fault class, detector) episode")
        .Increment();
  }
}

void DetectionLatencyTracker::ObserveEpoch(
    std::uint64_t epoch, const std::vector<std::string>& fault_classes,
    const DecisionRecord& decision, MetricsRegistry* registry) {
  // Reduce the decision to the set of detectors that fired and the set
  // that repaired. Hardening emits records only for signals it flagged
  // (see obs/health/signal_health), so its mere presence is a detection;
  // dynamic checks detect on a fail verdict.
  std::set<std::string> fired;
  std::set<std::string> repaired;
  for (const InvariantRecord& rec : decision.Invariants()) {
    if (rec.check == "hardening") {
      if (rec.verdict != InvariantVerdict::kSkipped) fired.insert(rec.check);
      if (rec.verdict == InvariantVerdict::kPass) repaired.insert(rec.check);
    } else if (rec.verdict == InvariantVerdict::kFail) {
      fired.insert(rec.check);
    }
  }

  const bool faulted = !fault_classes.empty();
  if (faulted) {
    ++fault_epochs_;
  } else {
    ++clean_epochs_;
  }

  // Open episodes for classes that just became active; fire latency
  // samples for detectors newly flagging inside an episode.
  for (const std::string& fault_class : fault_classes) {
    auto [it, inserted] = active_.try_emplace(fault_class);
    Episode& episode = it->second;
    if (inserted) {
      episode.start_epoch = epoch;
      ++classes_[fault_class].episodes;
    }
    for (const std::string& detector : fired) {
      if (!episode.flagged.insert(detector).second) continue;
      RecordLatency(fault_class, detector,
                    static_cast<double>(epoch - episode.start_epoch),
                    registry);
    }
    for (const std::string& detector : repaired) {
      PairStats& stats = pairs_[{fault_class, detector}];
      ++stats.repairs;
      if (registry != nullptr) {
        registry
            ->GetCounter(
                "hodor_detection_repair_total",
                {{"fault_class", fault_class}, {"detector", detector}},
                "Repaired-signal epochs per (fault class, detector)")
            .Increment();
      }
    }
  }

  // Close episodes whose class left the active set; a close with no
  // detector having fired is a miss.
  for (auto it = active_.begin(); it != active_.end();) {
    const bool still_active =
        std::find(fault_classes.begin(), fault_classes.end(), it->first) !=
        fault_classes.end();
    if (still_active) {
      ++it;
      continue;
    }
    if (it->second.flagged.empty()) {
      ++classes_[it->first].misses;
      if (registry != nullptr) {
        registry
            ->GetCounter("hodor_detection_miss_total",
                         {{"fault_class", it->first}},
                         "Fault episodes that ended with no detector firing")
            .Increment();
      }
    }
    it = active_.erase(it);
  }

  // Clean-run control: every firing detector is a false positive.
  if (!faulted && !fired.empty()) {
    ++fp_epochs_;
    for (const std::string& detector : fired) {
      ++false_flags_[detector];
      if (registry != nullptr) {
        registry
            ->GetCounter("hodor_detection_false_positive_total",
                         {{"detector", detector}},
                         "Detector flags raised in fault-free epochs")
            .Increment();
      }
    }
  }
}

std::uint64_t DetectionLatencyTracker::episodes(
    const std::string& fault_class) const {
  const auto it = classes_.find(fault_class);
  return it == classes_.end() ? 0 : it->second.episodes;
}

std::uint64_t DetectionLatencyTracker::misses(
    const std::string& fault_class) const {
  const auto it = classes_.find(fault_class);
  return it == classes_.end() ? 0 : it->second.misses;
}

std::vector<double> DetectionLatencyTracker::Latencies(
    const std::string& fault_class, const std::string& detector) const {
  const auto it = pairs_.find({fault_class, detector});
  return it == pairs_.end() ? std::vector<double>{} : it->second.latencies;
}

std::string DetectionLatencyTracker::SloJson() const {
  std::vector<double> all;
  for (const auto& [key, stats] : pairs_) {
    all.insert(all.end(), stats.latencies.begin(), stats.latencies.end());
  }
  const double p50 = Percentile(all, 50.0);
  const double p99 = Percentile(all, 99.0);
  const bool p50_ok =
      std::isnan(p50) || p50 <= opts_.slo.latency_p50_epochs;
  const bool p99_ok =
      std::isnan(p99) || p99 <= opts_.slo.latency_p99_epochs;
  const double fp_rate =
      clean_epochs_ == 0
          ? 0.0
          : static_cast<double>(fp_epochs_) / static_cast<double>(clean_epochs_);
  const bool fp_ok = fp_rate <= opts_.slo.false_positive_budget;

  std::ostringstream os;
  os << "{\"detection_latency\":{\"samples\":" << all.size() << ",\"p50\":";
  AppendNullableNumber(os, p50);
  os << ",\"p99\":";
  AppendNullableNumber(os, p99);
  os << ",\"p50_target\":" << JsonNumber(opts_.slo.latency_p50_epochs)
     << ",\"p99_target\":" << JsonNumber(opts_.slo.latency_p99_epochs)
     << ",\"p50_ok\":" << (p50_ok ? "true" : "false")
     << ",\"p99_ok\":" << (p99_ok ? "true" : "false") << "}"
     << ",\"false_positives\":{\"flag_epochs\":" << fp_epochs_
     << ",\"clean_epochs\":" << clean_epochs_
     << ",\"rate\":" << JsonNumber(fp_rate)
     << ",\"budget\":" << JsonNumber(opts_.slo.false_positive_budget)
     << ",\"ok\":" << (fp_ok ? "true" : "false") << "}"
     << ",\"ok\":" << (p50_ok && p99_ok && fp_ok ? "true" : "false")
     << ",\"fault_epochs\":" << fault_epochs_ << ",\"fault_classes\":[";

  bool first_class = true;
  for (const auto& [fault_class, stats] : classes_) {
    if (!first_class) os << ",";
    first_class = false;
    os << "{\"fault_class\":\"" << JsonEscape(fault_class)
       << "\",\"episodes\":" << stats.episodes
       << ",\"misses\":" << stats.misses << ",\"detectors\":[";
    bool first_pair = true;
    for (const auto& [key, pair_stats] : pairs_) {
      if (key.first != fault_class) continue;
      if (!first_pair) os << ",";
      first_pair = false;
      os << "{\"detector\":\"" << JsonEscape(key.second)
         << "\",\"flags\":" << pair_stats.flags
         << ",\"repairs\":" << pair_stats.repairs << ",\"latency_p50\":";
      AppendNullableNumber(os, Percentile(pair_stats.latencies, 50.0));
      os << ",\"latency_p99\":";
      AppendNullableNumber(os, Percentile(pair_stats.latencies, 99.0));
      os << "}";
    }
    os << "]}";
  }
  os << "]}";
  return os.str();
}

}  // namespace hodor::obs
