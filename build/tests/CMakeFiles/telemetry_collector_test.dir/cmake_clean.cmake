file(REMOVE_RECURSE
  "CMakeFiles/telemetry_collector_test.dir/telemetry/collector_test.cc.o"
  "CMakeFiles/telemetry_collector_test.dir/telemetry/collector_test.cc.o.d"
  "telemetry_collector_test"
  "telemetry_collector_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/telemetry_collector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
