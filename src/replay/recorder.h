// PipelineRecorder: the glue between controlplane::Pipeline and the epoch
// log. The pipeline exposes AddEpochSink taking a plain std::function over
// EpochResult — it never sees replay types — and this
// adapter turns each completed epoch into one appended EpochRecord:
// the snapshot the validator saw, the raw aggregated input (before any
// fallback), and the validation verdict with its decision digest.
//
// Append errors (disk full, closed file) are sticky and do not throw into
// the control loop: recording is an observer, and a failing recorder must
// never take the pipeline down with it. Check status() after the run.
#pragma once

#include <cstdint>

#include "controlplane/pipeline.h"
#include "replay/epoch_log.h"
#include "util/status.h"

namespace hodor::replay {

// Builds the recorded verdict (flags, digest, compact invariant list) from
// a completed epoch. Exposed for tests and for callers recording epochs
// outside a Pipeline.
EpochVerdict VerdictFromEpochResult(const controlplane::EpochResult& result);

class PipelineRecorder {
 public:
  util::Status Open(const std::string& path, const net::Topology& topo,
                    EpochLogWriterOptions opts = {});

  // The hook to install: pipeline.AddEpochSink(recorder.Hook()).
  // The recorder must outlive the pipeline.
  controlplane::EpochSinkFn Hook();

  // Records one epoch directly (what Hook() calls).
  void Record(const controlplane::EpochResult& result);

  std::size_t recorded_epochs() const { return writer_.record_count(); }
  const std::string& path() const { return writer_.path(); }

  // First append error, if any: appends after a failure are dropped so a
  // sick disk cannot stall the control loop.
  const util::Status& status() const { return status_; }

  // Finishes the log (index footer) and returns the sticky status or the
  // close error.
  util::Status Close();

 private:
  EpochLogWriter writer_;
  util::Status status_;
};

}  // namespace hodor::replay
