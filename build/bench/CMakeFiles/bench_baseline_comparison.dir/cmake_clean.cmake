file(REMOVE_RECURSE
  "CMakeFiles/bench_baseline_comparison.dir/bench_baseline_comparison.cc.o"
  "CMakeFiles/bench_baseline_comparison.dir/bench_baseline_comparison.cc.o.d"
  "bench_baseline_comparison"
  "bench_baseline_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_baseline_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
