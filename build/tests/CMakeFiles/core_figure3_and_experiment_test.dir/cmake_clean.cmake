file(REMOVE_RECURSE
  "CMakeFiles/core_figure3_and_experiment_test.dir/core/figure3_and_experiment_test.cc.o"
  "CMakeFiles/core_figure3_and_experiment_test.dir/core/figure3_and_experiment_test.cc.o.d"
  "core_figure3_and_experiment_test"
  "core_figure3_and_experiment_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_figure3_and_experiment_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
