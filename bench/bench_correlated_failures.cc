// E11 — correlated failures (the open question in §3):
//
//   "a bug in the vendor OS that causes multiple routers to report
//    incorrect, but equal signal values. ... network operators already
//    take several steps to reduce their impact including employing
//    multiple vendors, and performing staged rollouts."
//
// We give every router a "vendor"; a vendor-OS bug scales all counters of
// that vendor's routers by the same factor. On links internal to the
// affected fleet, R1 sees two agreeing (wrong) values — detection must
// come from the fleet's boundary. We sweep:
//   Part A: vendor interleaving — what fraction of routers runs the buggy
//           vendor, assigned contiguously (worst case: one big island) vs
//           alternately (best case: maximum boundary);
//   Part B: staged rollout — the bug reaches 1, 2, ... routers of an
//           all-one-vendor network; early stages are highly visible,
//           full deployment goes dark.
#include <iostream>

#include "bench_common.h"
#include "faults/snapshot_faults.h"
#include "util/stats.h"
#include "util/strings.h"

namespace {

using namespace hodor;

struct Detection {
  bool hardening_flagged = false;
  bool demand_violated = false;
};

Detection Detect(const bench::Trial& t, const std::vector<net::NodeId>& fleet,
                 double factor) {
  telemetry::NetworkSnapshot snap = t.snapshot;
  faults::VendorCounterBug(fleet, factor)(snap);
  const core::HardenedState hs = core::HardeningEngine().Harden(snap);
  Detection d;
  d.hardening_flagged = hs.flagged_rate_count > 0;
  const auto demand_check = core::CheckDemand(t.topo, hs, t.demand);
  d.demand_violated = !demand_check.ok();
  return d;
}

// Contiguous fleet: BFS from node 0 until the target size (one island).
std::vector<net::NodeId> ContiguousFleet(const net::Topology& topo,
                                         std::size_t size) {
  std::vector<net::NodeId> order =
      net::ReachableFrom(topo, net::NodeId(0));
  order.resize(std::min(size, order.size()));
  return order;
}

// Interleaved fleet: every other node in id order.
std::vector<net::NodeId> InterleavedFleet(const net::Topology& topo,
                                          std::size_t size) {
  std::vector<net::NodeId> fleet;
  for (std::size_t i = 0; i < topo.node_count() && fleet.size() < size;
       i += 2) {
    fleet.push_back(net::NodeId(static_cast<std::uint32_t>(i)));
  }
  for (std::size_t i = 1; i < topo.node_count() && fleet.size() < size;
       i += 2) {
    fleet.push_back(net::NodeId(static_cast<std::uint32_t>(i)));
  }
  return fleet;
}

std::size_t BoundaryLinks(const net::Topology& topo,
                          const std::vector<net::NodeId>& fleet) {
  std::vector<bool> in(topo.node_count(), false);
  for (net::NodeId v : fleet) in[v.value()] = true;
  std::size_t boundary = 0;
  for (const net::Link& l : topo.links()) {
    if (l.id.value() < l.reverse.value() &&
        in[l.src.value()] != in[l.dst.value()]) {
      ++boundary;
    }
  }
  return boundary;
}

}  // namespace

int main() {
  using namespace hodor;
  constexpr int kTrials = 50;
  constexpr double kFactor = 0.8;  // all counters read 20% low

  bench::PrintHeader(
      "E11", "correlated vendor-bug failures (§3 open question)",
      "geantlike (22 nodes), counters scaled x0.8 across the affected "
      "fleet, 50 trials/row, seeds 40000+");

  const net::Topology topo = net::GeantLike();

  std::cout << "\n--- Part A: fleet size x placement ---\n";
  util::TablePrinter table({"fleet", "placement", "boundary links",
                            "hardening detects", "demand check detects",
                            "either"});
  for (double fraction : {0.25, 0.5, 0.75, 1.0}) {
    const std::size_t size =
        static_cast<std::size_t>(fraction * topo.node_count());
    for (const char* placement : {"contiguous", "interleaved"}) {
      const std::vector<net::NodeId> fleet =
          std::string(placement) == "contiguous"
              ? ContiguousFleet(topo, size)
              : InterleavedFleet(topo, size);
      int flagged = 0, demand = 0, either = 0;
      for (int i = 0; i < kTrials; ++i) {
        bench::Trial t(topo, 40000 + i, 0.5, bench::DefaultCollector());
        const Detection d = Detect(t, fleet, kFactor);
        if (d.hardening_flagged) ++flagged;
        if (d.demand_violated) ++demand;
        if (d.hardening_flagged || d.demand_violated) ++either;
      }
      table.AddRowValues(
          std::to_string(size) + "/" + std::to_string(topo.node_count()),
          placement, BoundaryLinks(topo, fleet),
          util::FormatPercent(util::SafeRate(flagged, kTrials), 0),
          util::FormatPercent(util::SafeRate(demand, kTrials), 0),
          util::FormatPercent(util::SafeRate(either, kTrials), 0));
    }
  }
  std::cout << table.ToString();

  std::cout << "\n--- Part B: staged rollout of the buggy OS ---\n";
  util::TablePrinter staged({"routers on buggy OS", "boundary links",
                             "hardening detects", "demand check detects"});
  for (std::size_t stage : {1u, 2u, 4u, 8u, 16u, 22u}) {
    const std::vector<net::NodeId> fleet = ContiguousFleet(topo, stage);
    int flagged = 0, demand = 0;
    for (int i = 0; i < kTrials; ++i) {
      bench::Trial t(topo, 41000 + i, 0.5, bench::DefaultCollector());
      const Detection d = Detect(t, fleet, kFactor);
      if (d.hardening_flagged) ++flagged;
      if (d.demand_violated) ++demand;
    }
    staged.AddRowValues(stage, BoundaryLinks(topo, fleet),
                        util::FormatPercent(util::SafeRate(flagged, kTrials), 0),
                        util::FormatPercent(util::SafeRate(demand, kTrials), 0));
  }
  std::cout << staged.ToString();
  std::cout
      << "\nreading: detection scales with the buggy fleet's boundary. "
         "Interleaved (multi-vendor) deployments keep many boundary links "
         "and stay detectable; a full single-vendor rollout has no boundary "
         "and R1 goes dark — but the demand check still fires, because the "
         "scaled external counters disagree with the (honest, externally "
         "measured) demand matrix. Staged rollouts are caught at the first "
         "stage, supporting the paper's mitigation argument.\n";
  return 0;
}
