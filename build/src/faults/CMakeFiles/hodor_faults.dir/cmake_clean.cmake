file(REMOVE_RECURSE
  "CMakeFiles/hodor_faults.dir/aggregation_faults.cc.o"
  "CMakeFiles/hodor_faults.dir/aggregation_faults.cc.o.d"
  "CMakeFiles/hodor_faults.dir/demand_perturbations.cc.o"
  "CMakeFiles/hodor_faults.dir/demand_perturbations.cc.o.d"
  "CMakeFiles/hodor_faults.dir/scenario_catalog.cc.o"
  "CMakeFiles/hodor_faults.dir/scenario_catalog.cc.o.d"
  "CMakeFiles/hodor_faults.dir/snapshot_faults.cc.o"
  "CMakeFiles/hodor_faults.dir/snapshot_faults.cc.o.d"
  "libhodor_faults.a"
  "libhodor_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hodor_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
