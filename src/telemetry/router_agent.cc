#include "telemetry/router_agent.h"

namespace hodor::telemetry {

namespace {

double Jitter(double true_rate, const AgentOptions& opts, util::Rng& rng) {
  if (true_rate < opts.zero_floor) return 0.0;
  return true_rate * (1.0 + rng.Uniform(-opts.rate_jitter, opts.rate_jitter));
}

}  // namespace

void ReportRouterSignals(const net::Topology& topo,
                         const net::GroundTruthState& state,
                         const flow::SimulationResult& sim,
                         net::NodeId node, const AgentOptions& opts,
                         util::Rng& rng, NetworkSnapshot& snapshot) {
  SignalFrame& frame = snapshot.frame();
  frame.SetNodeDrained(node, state.node_drained(node));
  if (topo.node(node).has_external_port) {
    frame.SetExtInRate(node, Jitter(sim.ext_in[node.value()], opts, rng));
    frame.SetExtOutRate(node, Jitter(sim.ext_out[node.value()], opts, rng));
  }

  // Dropped rate at this router: drops on its out-link egress queues.
  double dropped = 0.0;
  for (net::LinkId e : topo.OutLinks(node)) dropped += sim.dropped[e.value()];
  frame.SetDroppedRate(node, Jitter(dropped, opts, rng));

  for (net::LinkId e : topo.OutLinks(node)) {
    // Optical/admin status: light on unless the link is physically down.
    // A broken dataplane (§4.2) still shows kUp here.
    frame.SetStatus(e, state.link_up(e) ? LinkStatus::kUp : LinkStatus::kDown);
    frame.SetTxRate(e, Jitter(sim.carried[e.value()], opts, rng));
    frame.SetLinkDrain(e, state.link_drained(e));
  }
  for (net::LinkId e : topo.InLinks(node)) {
    frame.SetRxRate(e, Jitter(sim.carried[e.value()], opts, rng));
  }
}

std::size_t CountJitterDraws(const net::Topology& topo,
                             const flow::SimulationResult& sim,
                             net::NodeId node, const AgentOptions& opts) {
  // Mirrors ReportRouterSignals exactly: one draw per Jitter() call whose
  // rate clears the zero floor. The `!(rate < floor)` form matches
  // Jitter's branch literally.
  std::size_t draws = 0;
  if (topo.node(node).has_external_port) {
    draws += !(sim.ext_in[node.value()] < opts.zero_floor);
    draws += !(sim.ext_out[node.value()] < opts.zero_floor);
  }
  double dropped = 0.0;
  for (net::LinkId e : topo.OutLinks(node)) dropped += sim.dropped[e.value()];
  draws += !(dropped < opts.zero_floor);
  for (net::LinkId e : topo.OutLinks(node)) {
    draws += !(sim.carried[e.value()] < opts.zero_floor);
  }
  for (net::LinkId e : topo.InLinks(node)) {
    draws += !(sim.carried[e.value()] < opts.zero_floor);
  }
  return draws;
}

void ReportRouterSignalsPredrawn(const net::Topology& topo,
                                 const net::GroundTruthState& state,
                                 const flow::SimulationResult& sim,
                                 net::NodeId node, const AgentOptions& opts,
                                 const double* jitter,
                                 NetworkSnapshot& snapshot) {
  // Same statement order as ReportRouterSignals, with Jitter() inlined
  // against the pre-drawn uniforms and the frame's value-only Fill* path.
  const double* cur = jitter;
  auto jittered = [&](double true_rate) {
    if (true_rate < opts.zero_floor) return 0.0;
    return true_rate * (1.0 + *cur++);
  };
  SignalFrame& frame = snapshot.frame();
  frame.FillNodeDrained(node, state.node_drained(node));
  if (topo.node(node).has_external_port) {
    frame.FillExtInRate(node, jittered(sim.ext_in[node.value()]));
    frame.FillExtOutRate(node, jittered(sim.ext_out[node.value()]));
  }

  double dropped = 0.0;
  for (net::LinkId e : topo.OutLinks(node)) dropped += sim.dropped[e.value()];
  frame.FillDroppedRate(node, jittered(dropped));

  for (net::LinkId e : topo.OutLinks(node)) {
    frame.FillStatus(e,
                     state.link_up(e) ? LinkStatus::kUp : LinkStatus::kDown);
    frame.FillTxRate(e, jittered(sim.carried[e.value()]));
    frame.FillLinkDrain(e, state.link_drained(e));
  }
  for (net::LinkId e : topo.InLinks(node)) {
    frame.FillRxRate(e, jittered(sim.carried[e.value()]));
  }
}

}  // namespace hodor::telemetry
