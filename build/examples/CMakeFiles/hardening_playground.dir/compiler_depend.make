# Empty compiler generated dependencies file for hardening_playground.
# This may be replaced when dependencies are built.
