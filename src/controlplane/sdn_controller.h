// The SDN controller: computes a TE routing plan from its inputs.
//
// The controller itself is *correct* — the paper's whole premise is that
// outages happen while the controller faithfully optimises whatever view it
// was given. It routes the input demand over the input topology (minus
// drains) with greedy min-max-utilisation TE.
#pragma once

#include "controlplane/controller_input.h"
#include "flow/routing.h"
#include "net/topology.h"

namespace hodor::controlplane {

// Which routing algorithm the controller runs on its inputs.
enum class RoutingAlgorithm {
  kShortestPath,  // classic IGP behaviour
  kEcmp,          // equal split over equal-cost shortest paths
  kGreedyTe,      // min-max-utilisation TE (default; a production stand-in)
};

struct ControllerOptions {
  RoutingAlgorithm algorithm = RoutingAlgorithm::kGreedyTe;
  flow::TeOptions te;      // used by kGreedyTe
  std::size_t ecmp_width = 8;  // max equal-cost paths for kEcmp
};

class SdnController {
 public:
  explicit SdnController(const net::Topology& topo,
                         ControllerOptions opts = {})
      : topo_(&topo), opts_(opts) {}

  // Computes the routing plan for `input`. Deterministic in its inputs.
  flow::RoutingPlan ComputeRouting(const ControllerInput& input) const;

 private:
  const net::Topology* topo_;
  ControllerOptions opts_;
};

}  // namespace hodor::controlplane
