// The Hodor validator: the public entry point tying the three steps
// together. Collection is the caller's NetworkSnapshot; the validator
// hardens it and dynamically checks each controller input against the
// hardened state, returning a structured report plus an accept/reject
// decision suitable for the pipeline's rejection policy.
#pragma once

#include <string>

#include "controlplane/controller_input.h"
#include "controlplane/pipeline.h"
#include "core/demand_check.h"
#include "core/drain_check.h"
#include "core/hardening.h"
#include "core/topology_check.h"
#include "telemetry/snapshot.h"

namespace hodor::core {

struct ValidatorOptions {
  HardeningOptions hardening;
  DemandCheckOptions demand;
  TopologyCheckOptions topology;

  // Per-input switches (ablations / staged rollout).
  bool check_demand = true;
  bool check_topology = true;
  bool check_drain = true;
};

struct ValidationReport {
  HardenedState hardened;
  DemandCheckResult demand;
  TopologyCheckResult topology;
  DrainCheckResult drain;

  bool ok() const {
    return demand.ok() && topology.ok() && drain.ok();
  }
  std::size_t violation_count() const {
    return demand.violations.size() + topology.violations.size() +
           drain.violations.size();
  }

  // Operator-facing multi-line description of every violation.
  std::string Describe(const net::Topology& topo) const;
  // One-line summary, e.g. "REJECT: 3 violations (demand:2 topology:1)".
  std::string Summary() const;
};

class Validator {
 public:
  explicit Validator(const net::Topology& topo, ValidatorOptions opts = {})
      : topo_(&topo), opts_(opts), engine_(opts.hardening) {}

  const ValidatorOptions& options() const { return opts_; }

  ValidationReport Validate(const controlplane::ControllerInput& input,
                            const telemetry::NetworkSnapshot& snapshot) const;

  // Adapts this validator to the pipeline's callback interface.
  controlplane::InputValidatorFn AsPipelineValidator() const;

 private:
  const net::Topology* topo_;
  ValidatorOptions opts_;
  HardeningEngine engine_;
};

}  // namespace hodor::core
