file(REMOVE_RECURSE
  "CMakeFiles/telemetry_snapshot_test.dir/telemetry/snapshot_test.cc.o"
  "CMakeFiles/telemetry_snapshot_test.dir/telemetry/snapshot_test.cc.o.d"
  "telemetry_snapshot_test"
  "telemetry_snapshot_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/telemetry_snapshot_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
