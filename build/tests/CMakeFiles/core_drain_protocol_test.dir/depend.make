# Empty dependencies file for core_drain_protocol_test.
# This may be replaced when dependencies are built.
