// Router-level fault injection (paper §2.1): mutators that corrupt an
// honestly collected NetworkSnapshot the way buggy router hardware/software
// would. Each factory returns a telemetry::SnapshotMutator; compose several
// with ComposeFaults.
//
// Ground truth is never touched — these model a healthy network *reported
// wrongly*, which is the failure mode the paper is about.
#pragma once

#include <vector>

#include "net/topology.h"
#include "telemetry/collector.h"
#include "util/rng.h"

namespace hodor::faults {

// Applies each mutator in order.
telemetry::SnapshotMutator ComposeFaults(
    std::vector<telemetry::SnapshotMutator> faults);

// The router-OS duplication bug from §2.1: duplicated telemetry messages
// randomly report zero packets on a router's interfaces. Each of the
// router's counters independently drops to zero with `probability`.
telemetry::SnapshotMutator ZeroedCountersFault(net::NodeId router,
                                               double probability,
                                               std::uint64_t seed);

// Which of the two redundant measurements of a directed link to corrupt.
enum class CounterSide { kTx, kRx, kBoth };

// How to corrupt it.
enum class CounterCorruption { kZero, kScale, kAbsolute, kDrop };

// Corrupts one link-rate counter: zero it, scale it by `param`, set it to
// `param`, or remove it (kDrop ignores param).
telemetry::SnapshotMutator CorruptLinkCounter(net::LinkId link,
                                              CounterSide side,
                                              CounterCorruption how,
                                              double param = 0.0);

// The whole router stops answering telemetry (crash, QoS-starved export,
// unparseable format change at the aggregation boundary).
telemetry::SnapshotMutator UnresponsiveRouter(net::NodeId router);

// Malformed responses: each individual signal of this router is
// independently missing with `probability` (string/int format-change bugs
// make a random subset unparseable).
telemetry::SnapshotMutator MalformedTelemetry(net::NodeId router,
                                              double probability,
                                              std::uint64_t seed);

// Drain intent signal reported incorrectly (restart races, bad drain
// conditions): the router reports `reported` regardless of truth.
telemetry::SnapshotMutator WrongDrainSignal(net::NodeId router,
                                            bool reported);

// One end of a physical link announces a link drain, the other does not
// (violates the natural symmetry of link drains, §4.3).
telemetry::SnapshotMutator AsymmetricLinkDrain(net::LinkId link);

// One end reports the link down although it is up (faulty optics readout).
// `at_src` selects which end lies.
telemetry::SnapshotMutator FalseLinkStatus(net::LinkId link, bool at_src,
                                           telemetry::LinkStatus reported);

// Scales every rate counter the router reports (stale/delayed telemetry
// window: values from a different traffic regime).
telemetry::SnapshotMutator ScaledRouterCounters(net::NodeId router,
                                                double factor);

// The correlated failure of §3's open question: a vendor-OS bug makes an
// entire fleet of routers mis-report counters by the SAME factor. On links
// *between* two affected routers both measurements agree at the wrong
// value, so link symmetry (R1) is blind; only links crossing the fleet
// boundary (one affected end, one healthy end) expose the bug. Detection
// therefore depends on how the affected vendor's routers are interleaved
// with others — the multi-vendor argument the paper makes.
telemetry::SnapshotMutator VendorCounterBug(std::vector<net::NodeId> fleet,
                                            double factor);

}  // namespace hodor::faults
