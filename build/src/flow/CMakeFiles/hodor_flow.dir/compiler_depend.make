# Empty compiler generated dependencies file for hodor_flow.
# This may be replaced when dependencies are built.
