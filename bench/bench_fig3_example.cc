// E1 — Figure 3: the paper's worked demand-validation example.
//
// Reproduces every number in the figure: the spurious counter pair on
// A->B (TX=98 vs RX=76), the flow-conservation solve at B
// (x + 23 = 75 + 24 -> x = 76), and the 2·v demand invariants that tie the
// external counters to the demand matrix row/column sums.
#include <iostream>

#include "bench_common.h"
#include "core/demand_check.h"
#include "core/figure3_example.h"
#include "core/hardening.h"
#include "util/strings.h"

int main() {
  using namespace hodor;
  bench::PrintHeader("E1", "Figure 3 (worked example of demand validation)",
                     "triangle A,B,C; faulty TX(A->B)=98; true value 76; "
                     "tau_h=2%, tau_e=2%");

  const core::Figure3Example fig;
  const auto& topo = fig.topology();

  std::cout << "\nDemand matrix D (Gbps):\n"
            << fig.Demand().ToString(topo, 0) << "\n";

  auto snapshot = fig.FaultySnapshot();
  std::cout << "Raw counters for A->B: TX(at A)="
            << snapshot.TxRate(fig.ab()).value()
            << "  RX(at B)=" << snapshot.RxRate(fig.ab()).value()
            << "  (differ by more than tau_h -> spurious)\n";

  const core::HardeningEngine engine;
  const core::HardenedState hardened = engine.Harden(snapshot);
  const core::HardenedRate& repaired = hardened.rates[fig.ab().value()];

  std::cout << "\nStep 2 (hardening):\n"
            << "  flagged pairs: " << hardened.flagged_rate_count << "\n"
            << "  flow conservation at B:  x + 23 = 75 + 24  ->  x = "
            << util::FormatDouble(repaired.value.value(), 0) << "\n"
            << "  rejected counter value: "
            << util::FormatDouble(repaired.rejected_value.value(), 0)
            << " (the TX side at A)\n";

  const core::DemandCheckResult check =
      core::CheckDemand(topo, hardened, fig.Demand());
  std::cout << "\nStep 3 (dynamic checking, 2v = 6 invariants):\n";
  util::TablePrinter table({"invariant", "counter", "demand sum", "verdict"});
  for (net::NodeId v : topo.ExternalNodes()) {
    table.AddRowValues(
        "ingress(" + topo.node(v).name + ")",
        util::FormatDouble(hardened.ext_in[v.value()].value(), 0),
        util::FormatDouble(fig.Demand().RowSum(v), 0), "ok");
    table.AddRowValues(
        "egress(" + topo.node(v).name + ")",
        util::FormatDouble(hardened.ext_out[v.value()].value(), 0),
        util::FormatDouble(fig.Demand().ColSum(v), 0), "ok");
  }
  std::cout << table.ToString();
  std::cout << "\nresult: demand input "
            << (check.ok() ? "VALIDATES" : "REJECTED") << " ("
            << check.checked_invariants << " invariants checked, "
            << check.violations.size() << " violations)\n";

  // Now the counterfactual the figure motivates: had the *demand matrix*
  // been corrupted instead, the same invariants catch it.
  flow::DemandMatrix bad = fig.Demand();
  bad.Set(fig.a(), fig.b(), 0.0);  // the A->B demand goes missing
  const auto bad_check = core::CheckDemand(topo, hardened, bad);
  std::cout << "\ncounterfactual: zeroing D[A][B] -> "
            << bad_check.violations.size() << " violations, e.g. "
            << (bad_check.violations.empty()
                    ? std::string("none")
                    : bad_check.violations[0].ToString(topo))
            << "\n";
  return check.ok() && !bad_check.ok() ? 0 : 1;
}
