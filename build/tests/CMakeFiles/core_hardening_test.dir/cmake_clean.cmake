file(REMOVE_RECURSE
  "CMakeFiles/core_hardening_test.dir/core/hardening_test.cc.o"
  "CMakeFiles/core_hardening_test.dir/core/hardening_test.cc.o.d"
  "core_hardening_test"
  "core_hardening_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_hardening_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
