// Fixed-width table and CSV rendering for the benchmark harnesses.
//
// Every bench in bench/ reports through TablePrinter so the reproduced
// tables/figures have a uniform, diffable shape (see EXPERIMENTS.md).
#pragma once

#include <cstddef>
#include <sstream>
#include <string>
#include <type_traits>
#include <vector>

namespace hodor::util {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  // Appends a row; must match the header arity.
  void AddRow(std::vector<std::string> cells);

  // Convenience: formats each cell via operator<<.
  template <typename... Ts>
  void AddRowValues(const Ts&... values) {
    std::vector<std::string> cells;
    (cells.push_back(Render(values)), ...);
    AddRow(std::move(cells));
  }

  // Renders as an aligned ASCII table with a header separator.
  std::string ToString() const;

  // Renders as CSV (RFC-4180-ish quoting for commas/quotes/newlines).
  std::string ToCsv() const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  template <typename T>
  static std::string Render(const T& v) {
    if constexpr (std::is_convertible_v<T, std::string>) {
      return std::string(v);
    } else {
      std::ostringstream os;
      os << v;
      return os.str();
    }
  }

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Escapes one CSV field per RFC 4180.
std::string CsvEscape(const std::string& field);

}  // namespace hodor::util
