// E-replay — flight-recorder cost: what recording and replaying a run
// actually costs, so "always-on recording" is a defensible default.
//
// Part A: raw frame codec throughput on a 400-node Waxman WAN — the
//         columnar SignalFrame encodes/decodes as a handful of bulk column
//         copies, so both directions should run at memory speed (the
//         acceptance floor is 100 MB/s decode; typical results are far
//         above it).
// Part B: end-to-end epoch log cost on the GÉANT-like pipeline: record a
//         validated 20-epoch run (one buggy-rollout window), then replay
//         it — live epoch latency vs replay epoch latency side by side,
//         plus on-disk bytes per epoch.
#include <chrono>
#include <cstdio>
#include <iostream>
#include <sstream>

#include "bench_common.h"
#include "controlplane/pipeline.h"
#include "faults/aggregation_faults.h"
#include "replay/epoch_log.h"
#include "replay/frame_codec.h"
#include "replay/recorder.h"
#include "replay/replayer.h"
#include "util/logging.h"

namespace {

using namespace hodor;
using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct Throughput {
  double mbps = 0.0;
  std::size_t iters = 0;
};

// Runs `fn` until ~0.25s of wall clock has elapsed and reports MB/s for
// `bytes_per_iter` payload bytes per call.
template <typename Fn>
Throughput Measure(std::size_t bytes_per_iter, Fn&& fn) {
  // Warm-up (tables, caches, allocator).
  fn();
  Throughput result;
  const Clock::time_point t0 = Clock::now();
  double elapsed = 0.0;
  do {
    fn();
    ++result.iters;
    elapsed = SecondsSince(t0);
  } while (elapsed < 0.25);
  result.mbps = static_cast<double>(bytes_per_iter) *
                static_cast<double>(result.iters) / elapsed / 1e6;
  return result;
}

}  // namespace

int main() {
  util::Logger::Instance().SetMinLevel(util::LogLevel::kError);
  bench::PrintHeader(
      "replay", "flight-recorder codec throughput & replay latency",
      "frame: Waxman n=400 seed=11; pipeline: GeantLike, 20 epochs, "
      "demand fault epochs 8-11, seeds as in examples/live_pipeline");

  // --- Part A: frame codec throughput -----------------------------------
  util::Rng topo_rng(11);
  const net::Topology big = net::Waxman(400, topo_rng);
  bench::Trial trial(big, /*seed=*/11, /*max_util=*/0.5,
                     bench::DefaultCollector());

  std::string encoded;
  {
    replay::ByteWriter w(encoded);
    replay::EncodeFrame(trial.snapshot.frame(), w);
  }
  const std::size_t frame_bytes = encoded.size();

  std::string scratch;
  const Throughput enc = Measure(frame_bytes, [&] {
    scratch.clear();
    replay::ByteWriter w(scratch);
    replay::EncodeFrame(trial.snapshot.frame(), w);
  });

  telemetry::NetworkSnapshot decode_target(big, 0);
  bool decode_ok = true;
  const Throughput dec = Measure(frame_bytes, [&] {
    replay::ByteReader r(encoded);
    decode_ok = replay::DecodeFrame(r, decode_target.frame()).ok() && decode_ok;
  });

  util::TablePrinter codec({"direction", "frame bytes", "iters", "MB/s"});
  codec.AddRowValues("encode", frame_bytes, enc.iters,
                     util::FormatDouble(enc.mbps, 1));
  codec.AddRowValues("decode", frame_bytes, dec.iters,
                     util::FormatDouble(dec.mbps, 1));
  std::cout << codec.ToString();
  std::cout << "decode floor 100 MB/s: "
            << (decode_ok && dec.mbps >= 100.0 ? "PASS" : "FAIL") << " ("
            << big.node_count() << " nodes, " << big.link_count()
            << " directed links)\n\n";

  // --- Part B: record + replay a validated pipeline run ------------------
  const char* log_path = "bench_replay.tmp.hlog";
  const net::Topology topo = net::GeantLike();
  const net::GroundTruthState state(topo);
  util::Rng demand_rng(99);
  flow::DemandMatrix base = flow::GravityDemand(topo, demand_rng);
  flow::NormalizeToMaxUtilization(topo, 0.45, base);

  controlplane::Pipeline pipeline(topo, {}, util::Rng(1));
  const core::Validator validator(topo);
  pipeline.SetValidator(validator.AsPipelineValidator());
  pipeline.Bootstrap(state, base);

  replay::PipelineRecorder recorder;
  if (!recorder.Open(log_path, topo).ok()) {
    std::cerr << "cannot open " << log_path << "\n";
    return 1;
  }
  pipeline.AddEpochSink(recorder.Hook());

  constexpr int kEpochs = 20;
  const Clock::time_point live0 = Clock::now();
  for (int epoch = 0; epoch < kEpochs; ++epoch) {
    util::Rng drift_rng(1000 + epoch);
    flow::DemandMatrix demand = base;
    for (const auto& [i, j] : base.Pairs()) {
      demand.Set(i, j,
                 base.At(i, j) * (1.0 + drift_rng.Uniform(-0.04, 0.04)));
    }
    controlplane::AggregationFaultHooks hooks;
    if (epoch >= 8 && epoch < 12) {
      hooks.demand = faults::DemandEntriesDropped(
          0.33, 4242 + static_cast<std::uint64_t>(epoch));
    }
    pipeline.RunEpoch(state, demand, nullptr, hooks);
  }
  const double live_s = SecondsSince(live0);
  if (!recorder.Close().ok()) {
    std::cerr << "recorder close failed\n";
    return 1;
  }

  replay::EpochLogReader reader;
  if (!reader.Open(log_path).ok()) {
    std::cerr << "cannot reopen " << log_path << "\n";
    return 1;
  }
  std::size_t log_bytes = 0;
  if (std::FILE* f = std::fopen(log_path, "rb")) {
    std::fseek(f, 0, SEEK_END);
    log_bytes = static_cast<std::size_t>(std::ftell(f));
    std::fclose(f);
  }

  const replay::Replayer replayer;
  const Clock::time_point replay0 = Clock::now();
  auto report_or = replayer.Replay(reader);
  const double replay_s = SecondsSince(replay0);
  if (!report_or.ok()) {
    std::cerr << "replay failed: " << report_or.status().ToString() << "\n";
    return 1;
  }
  const replay::ReplayReport& report = report_or.value();

  const double live_us = live_s * 1e6 / kEpochs;
  const double replay_us = replay_s * 1e6 / kEpochs;
  util::TablePrinter run({"phase", "epochs", "us/epoch", "notes"});
  run.AddRowValues("live (record on)", kEpochs, util::FormatDouble(live_us, 1),
                   std::to_string(log_bytes / kEpochs) + " B/epoch on disk");
  run.AddRowValues("replay + diff", report.epochs_replayed,
                   util::FormatDouble(replay_us, 1), report.Summary());
  std::cout << run.ToString();
  std::cout << "replay divergence (same binary, stock options): "
            << (report.clean() ? "PASS (zero)" : "FAIL") << "\n";
  std::remove(log_path);

  std::ostringstream json;
  json << "{\"frame_bytes\":" << frame_bytes
       << ",\"frame_encode_mbps\":" << util::FormatDouble(enc.mbps, 1)
       << ",\"frame_decode_mbps\":" << util::FormatDouble(dec.mbps, 1)
       << ",\"decode_floor_mbps\":100"
       << ",\"log_bytes_per_epoch\":" << log_bytes / kEpochs
       << ",\"live_us_per_epoch\":" << util::FormatDouble(live_us, 1)
       << ",\"replay_us_per_epoch\":" << util::FormatDouble(replay_us, 1)
       << ",\"replay_divergent_epochs\":" << report.divergent_epochs << "}";
  bench::DumpObsSnapshot("replay", json.str());
  return report.clean() && decode_ok && dec.mbps >= 100.0 ? 0 : 1;
}
