file(REMOVE_RECURSE
  "libhodor_net.a"
)
