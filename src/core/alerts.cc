#include "core/alerts.h"

#include <algorithm>
#include <sstream>

namespace hodor::core {

std::string Alert::Render() const {
  std::ostringstream os;
  os << "[" << AlertSeverityName(severity) << "] " << source << " " << entity
     << ": " << message;
  if (!signal_paths.empty()) {
    os << " (inspect:";
    for (const std::string& p : signal_paths) os << " " << p;
    os << ")";
  }
  return os.str();
}

namespace {

// Paths of the counter pair measuring directed link e.
std::vector<std::string> CounterPairPaths(
    const net::Topology& topo, const telemetry::SignalCatalog& catalog,
    net::LinkId e) {
  std::vector<std::string> out;
  for (const telemetry::SignalDescriptor& d : catalog.signals()) {
    if (d.link == e && (d.kind == telemetry::SignalKind::kTxRate ||
                        d.kind == telemetry::SignalKind::kRxRate)) {
      out.push_back(d.path);
    }
  }
  (void)topo;
  return out;
}

std::vector<std::string> ExternalCounterPaths(
    const telemetry::SignalCatalog& catalog, net::NodeId v,
    telemetry::SignalKind kind) {
  std::vector<std::string> out;
  for (const telemetry::SignalDescriptor& d : catalog.signals()) {
    if (d.reporter == v && d.kind == kind) out.push_back(d.path);
  }
  return out;
}

}  // namespace

std::vector<Alert> BuildAlerts(const net::Topology& topo,
                               const telemetry::SignalCatalog& catalog,
                               const ValidationReport& report,
                               const AlertOptions& opts) {
  std::vector<Alert> alerts;

  // Hardening findings: repaired counters (info) and unrepairable ones
  // (warning — the validator is flying with a hole in its view).
  for (net::LinkId e : topo.LinkIds()) {
    const HardenedRate& r = report.hardened.rates[e.value()];
    if (r.origin == RateOrigin::kRepaired && opts.report_repairs) {
      std::ostringstream msg;
      msg << "counter pair flagged and repaired";
      if (r.rejected_value) {
        msg << " (rejected reading " << *r.rejected_value << ")";
      }
      alerts.push_back(Alert{AlertSeverity::kInfo, "hardening",
                             topo.LinkName(e), msg.str(),
                             CounterPairPaths(topo, catalog, e)});
    } else if (r.origin == RateOrigin::kUnknown && r.flagged) {
      alerts.push_back(Alert{AlertSeverity::kWarning, "hardening",
                             topo.LinkName(e),
                             "counter pair spurious and unrepairable",
                             CounterPairPaths(topo, catalog, e)});
    }
  }

  for (const DemandViolation& v : report.demand.violations) {
    alerts.push_back(Alert{
        AlertSeverity::kCritical, "demand-check", topo.node(v.node).name,
        v.ToString(topo),
        ExternalCounterPaths(catalog, v.node,
                             v.kind == DemandInvariantKind::kIngress
                                 ? telemetry::SignalKind::kExtInRate
                                 : telemetry::SignalKind::kExtOutRate)});
  }

  for (const TopologyViolation& v : report.topology.violations) {
    alerts.push_back(Alert{AlertSeverity::kCritical, "topology-check",
                           topo.LinkName(v.link), v.ToString(topo),
                           CounterPairPaths(topo, catalog, v.link)});
  }

  for (const DrainViolation& v : report.drain.violations) {
    const std::string entity =
        v.node.valid() ? topo.node(v.node).name : topo.LinkName(v.link);
    alerts.push_back(Alert{AlertSeverity::kCritical, "drain-check", entity,
                           v.ToString(topo), {}});
  }
  for (net::NodeId v : report.drain.warnings_drained_but_active) {
    alerts.push_back(Alert{AlertSeverity::kWarning, "drain-check",
                           topo.node(v).name,
                           "drained but carrying traffic (§4.3 case 2)",
                           {}});
  }

  std::stable_sort(alerts.begin(), alerts.end(),
                   [](const Alert& a, const Alert& b) {
                     if (a.severity != b.severity) {
                       return static_cast<int>(a.severity) >
                              static_cast<int>(b.severity);
                     }
                     return a.source < b.source;
                   });
  return alerts;
}

}  // namespace hodor::core
