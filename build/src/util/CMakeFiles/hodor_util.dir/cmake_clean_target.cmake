file(REMOVE_RECURSE
  "libhodor_util.a"
)
