#include "core/baselines/anomaly_detector.h"

#include <cmath>

#include "util/strings.h"

namespace hodor::core::baselines {

AnomalyDetector::AnomalyDetector(const net::Topology& topo,
                                 AnomalyDetectorOptions opts)
    : topo_(&topo), opts_(opts) {
  // Feature layout: ext row sums, ext col sums, total, links, drains.
  const std::size_t n = topo.ExternalNodes().size() * 2 + 3;
  trackers_.assign(n, util::Ewma(opts_.ewma_alpha));
}

std::vector<double> AnomalyDetector::Features(
    const controlplane::ControllerInput& input) const {
  std::vector<double> f;
  for (net::NodeId v : topo_->ExternalNodes()) {
    f.push_back(input.demand.RowSum(v));
  }
  for (net::NodeId v : topo_->ExternalNodes()) {
    f.push_back(input.demand.ColSum(v));
  }
  f.push_back(input.demand.Total());
  f.push_back(static_cast<double>(input.AvailableLinkCount()));
  double drained = 0.0;
  for (bool b : input.node_drained) {
    if (b) drained += 1.0;
  }
  f.push_back(drained);
  return f;
}

std::string AnomalyDetector::FeatureName(std::size_t i) const {
  const auto ext = topo_->ExternalNodes();
  if (i < ext.size()) return "row_sum(" + topo_->node(ext[i]).name + ")";
  if (i < 2 * ext.size()) {
    return "col_sum(" + topo_->node(ext[i - ext.size()]).name + ")";
  }
  if (i == 2 * ext.size()) return "total_demand";
  if (i == 2 * ext.size() + 1) return "available_links";
  return "drained_nodes";
}

void AnomalyDetector::Observe(const controlplane::ControllerInput& input) {
  const std::vector<double> f = Features(input);
  HODOR_CHECK(f.size() == trackers_.size());
  for (std::size_t i = 0; i < f.size(); ++i) trackers_[i].Add(f[i]);
  ++observed_;
}

AnomalyResult AnomalyDetector::Check(
    const controlplane::ControllerInput& input) const {
  AnomalyResult result;
  if (observed_ < opts_.min_history) return result;
  const std::vector<double> f = Features(input);
  for (std::size_t i = 0; i < f.size(); ++i) {
    const util::Ewma& t = trackers_[i];
    if (!t.initialized()) continue;
    bool flag;
    if (t.stddev() < 1e-9) {
      // Flat history: fall back to a relative-deviation test.
      flag = !util::WithinRelativeTolerance(f[i], t.mean(),
                                            opts_.flat_signal_rel_tolerance);
    } else {
      flag = std::fabs(t.ZScore(f[i])) > opts_.z_threshold;
    }
    if (flag) {
      result.anomalies.push_back(
          FeatureName(i) + "=" + util::FormatDouble(f[i]) +
          " deviates from history (mean=" + util::FormatDouble(t.mean()) +
          ", sd=" + util::FormatDouble(t.stddev()) + ")");
    }
  }
  return result;
}

}  // namespace hodor::core::baselines
