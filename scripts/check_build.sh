#!/bin/sh
# Tier-1 verification plus a strict-warning pass over the observability
# layer (run from anywhere).
#
#   1. Configure + build + ctest — the repo's tier-1 gate.
#   2. Re-compile src/obs/ with -Wall -Wextra -Werror: the obs layer is the
#      newest subsystem and must stay warning-clean even when the rest of
#      the tree only warns.
#   3. With --sanitize: an ASan+UBSan configure/build/ctest pass in
#      build-sanitize/. The telemetry server is the repo's first threaded
#      and socket-handling code, so the sanitizers cover lifetime and
#      data-race-adjacent bugs the plain build cannot see.
#   4. With --sanitize=thread: a TSan configure/build in build-tsan/
#      running just the genuinely threaded tests — the util parallel
#      runtime, the sink-queue SPSC stress test, the sharded hardening
#      path, the staged epoch engine, and the thread-count equivalence
#      fingerprints. TSan and ASan cannot share a build tree (or a
#      process), hence the separate mode and directory.
#   5. With --bench-smoke: a short bench_compare.sh run that fails on a
#      >25% median regression of the hardening/validation stage latencies
#      against the committed BENCH_overhead.json baseline.
#   6. With --replay-gate: replays tests/data/golden_abilene.hlog through
#      `hodor_replay replay` at 1 and 4 threads. Any decision-digest
#      divergence fails — the staged epoch engine's determinism contract
#      (DESIGN §9) enforced against a recorded log.
#   7. With --trace-gate: the execution tracer's cost and output gates
#      (DESIGN §10) — bench_epoch_engine --trace-overhead fails if tracing
#      regresses the fastest waxman100 epoch by more than 3% or perturbs a
#      digest, then a live_pipeline run must produce a Perfetto trace that
#      parses as JSON with a non-empty traceEvents array.
#   8. With --delta-gate: the incremental-validation equivalence gates
#      (DESIGN §12). delta_sweep runs every fault scenario at 1 and 4
#      threads twice — incremental and HODOR_FORCE_FULL=1 — and the two
#      digest streams must be byte-identical; then the golden Abilene log
#      replays through the incremental path (fresh digests vs the recorded
#      full-recompute digests) and again with --force-full. Any divergence
#      fails: the delta is a work-avoidance hint, never a correctness
#      input.
#   9. With --fleet-gate: the fleet-mode gates (DESIGN §13) — the mixed
#      acceptance fleet (abilene + waxman100 + waxman400 + hier1k, >= 4
#      instances) runs over one shared pool at HODOR_THREADS=1 and 4 with
#      --verify-standalone, so every instance's digest stream must be
#      bit-identical to a standalone run of the same spec; then /fleet
#      must serve the documented scoreboard schema and /metrics must carry
#      instance-labeled series.
#  10. With --confidence-gate: the confidence-calibration gates (DESIGN
#      §14) — bench_confidence_sweep --quick reproduces the §4.1
#      detection-vs-τ_e curve at 3 τ points and self-checks its shape
#      (detection non-increasing in τ_e, the scaled arm tracking fixed-τ
#      detection while strictly beating its false-positive rate under
#      degraded telemetry); then delta_sweep runs incremental vs
#      HODOR_FORCE_FULL=1 and the digest streams (which fold every
#      confidence column through the canonical provenance text) must be
#      byte-identical.
#  11. With --dashboard-gate: the validation-observatory gates (DESIGN
#      §11) — a headless live_pipeline run must serve /query JSON matching
#      the documented schema at all three resolutions, /slo and /buildz
#      must parse, and /dashboard must be one self-contained HTML page
#      (no external src=/href= URLs); any 5xx fails. Then
#      bench_epoch_engine --timeseries-overhead fails if observatory
#      sampling regresses the fastest waxman400 epoch by more than 3% or
#      perturbs a digest.
set -e
cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j
(cd build && ctest --output-on-failure -j)

echo "== strict-warning pass over src/obs/ and src/replay/ =="
for f in src/obs/*.cc src/obs/health/*.cc src/obs/serve/*.cc src/replay/*.cc; do
  echo "  g++ -Werror $f"
  g++ -std=c++20 -fsyntax-only -Wall -Wextra -Werror -I src "$f"
done

if [ "$1" = "--bench-smoke" ]; then
  echo "== bench smoke (quick latency regression gate) =="
  ./scripts/bench_compare.sh --quick
fi

if [ "$1" = "--sanitize" ]; then
  echo "== ASan+UBSan pass (build-sanitize/) =="
  cmake -B build-sanitize -S . -DCMAKE_BUILD_TYPE=Debug \
    -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all"
  cmake --build build-sanitize -j
  (cd build-sanitize && ctest --output-on-failure -j)
fi

if [ "$1" = "--sanitize=thread" ]; then
  echo "== TSan pass over the threaded tests (build-tsan/) =="
  cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=Debug \
    -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-sanitize-recover=all"
  cmake --build build-tsan -j --target \
    util_parallel_test util_spsc_queue_test util_exec_trace_test \
    core_hardening_test controlplane_epoch_engine_test \
    integration_frame_equivalence_test obs_telemetry_server_test \
    obs_timeseries_test
  (cd build-tsan && ctest --output-on-failure \
    -R "util_parallel_test|util_spsc_queue_test|util_exec_trace_test|core_hardening_test|controlplane_epoch_engine_test|integration_frame_equivalence_test|obs_telemetry_server_test|obs_timeseries_test" -j)
fi

if [ "$1" = "--trace-gate" ]; then
  echo "== execution tracer gates (overhead + Perfetto output) =="
  cmake --build build -j --target bench_epoch_engine live_pipeline
  ROOT=$(pwd)
  TMP=$(mktemp -d)
  trap 'rm -rf "$TMP"' EXIT
  # Overhead: tracer on vs off, min-epoch ratio <= 1.03, digest parity.
  (cd "$TMP" && "$ROOT/build/bench/bench_epoch_engine" --trace-overhead)
  # Output: the emitted trace must be a loadable, non-empty Perfetto JSON.
  ./build/examples/live_pipeline --topo=waxman100 --epochs=6 \
    --trace-out="$TMP/trace.json" >/dev/null
  python3 - "$TMP/trace.json" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    doc = json.load(f)
events = doc["traceEvents"]
assert events, "traceEvents is empty"
kinds = {e.get("ph") for e in events}
assert "X" in kinds, f"no complete events in trace (phases: {kinds})"
print(f"trace-gate: {len(events)} trace events parse cleanly")
EOF
fi

if [ "$1" = "--fleet-gate" ]; then
  echo "== fleet gates (standalone digest equivalence, /fleet schema) =="
  cmake --build build -j --target hodor_fleet_cli
  TMP=$(mktemp -d)
  trap 'rm -rf "$TMP"' EXIT
  # The equivalence oracle at pool width 1: every instance of the mixed
  # acceptance fleet must reproduce its standalone digest stream.
  echo "  hodor_fleet --verify-standalone, HODOR_THREADS=1"
  HODOR_THREADS=1 ./build/examples/hodor_fleet --epochs=6 --verify-standalone
  # Same fleet at width 4, kept alive afterwards so the scoreboard probes
  # see the finished run.
  echo "  hodor_fleet --verify-standalone + /fleet probes, HODOR_THREADS=4"
  HODOR_THREADS=4 HODOR_SERVE_SECONDS=60 ./build/examples/hodor_fleet \
    --epochs=6 --verify-standalone > "$TMP/fleet.out" 2>&1 &
  FLEET_PID=$!
  # The serve window only opens after the fleet run AND the standalone
  # oracle re-runs complete; instance bootstrap (the initial full-recompute
  # validation) costs minutes per large topology on a small host, so the
  # poll budget is generous — a wedged run is caught by the liveness check
  # on the PID, not the clock.
  URL=""
  i=0
  while [ $i -lt 2700 ]; do
    if grep -q "Serving telemetry" "$TMP/fleet.out" 2>/dev/null; then
      URL=$(sed -n 's/^telemetry: \(http:[^ ]*\).*/\1/p' "$TMP/fleet.out" | head -1)
      break
    fi
    if ! kill -0 "$FLEET_PID" 2>/dev/null; then break; fi
    i=$((i + 1))
    sleep 1
  done
  if [ -z "$URL" ]; then
    echo "fleet-gate: hodor_fleet never reached its serve window:"
    cat "$TMP/fleet.out"
    wait "$FLEET_PID" 2>/dev/null || true
    exit 1
  fi
  if python3 - "$URL" <<'EOF'
import json
import re
import sys
import urllib.request

base = sys.argv[1]


def get(path):
    with urllib.request.urlopen(base + path, timeout=10) as resp:
        assert resp.status == 200, f"{path}: HTTP {resp.status}"
        assert resp.headers.get("Cache-Control") == "no-store", \
            f"{path}: missing Cache-Control: no-store"
        return resp.read().decode()


doc = json.loads(get("/fleet"))
summary = doc["summary"]
for key in ("instances", "threads", "rounds", "epochs_total",
            "aggregate_epochs_per_sec"):
    assert key in summary, f"/fleet summary: missing key {key}"
assert summary["instances"] >= 4, summary
assert summary["threads"] == 4, summary
assert len(doc["instances"]) == summary["instances"]
assert summary["epochs_total"] == sum(
    inst["epochs_done"] for inst in doc["instances"])
topologies = set()
for inst in doc["instances"]:
    for key in ("name", "topology", "nodes", "seed", "scenario",
                "epochs_done", "epochs_target", "done", "epochs_per_sec",
                "accepts", "rejects", "min_trust", "active_faults",
                "laggard_rank", "last_digest", "slo"):
        assert key in inst, f"/fleet instance: missing key {key}"
    assert inst["done"] is True, inst["name"]
    assert inst["epochs_done"] == inst["epochs_target"], inst["name"]
    assert re.fullmatch(r"[0-9a-f]{16}", inst["last_digest"]), \
        f"{inst['name']}: bad digest {inst['last_digest']!r}"
    topologies.add(inst["topology"])
assert {"abilene", "waxman100", "waxman400", "hier1k"} <= topologies, \
    f"acceptance mix incomplete: {topologies}"
ranks = sorted(inst["laggard_rank"] for inst in doc["instances"])
assert ranks == list(range(1, len(ranks) + 1)), f"bad laggard ranks: {ranks}"

# The merged registry serves per-instance series under the instance label.
metrics = get("/metrics")
names = {inst["name"] for inst in doc["instances"]}
for name in names:
    assert f'instance="{name}"' in metrics, \
        f"/metrics: no series labeled instance=\"{name}\""

print(f"fleet-gate: /fleet schema ok ({summary['instances']} instances, "
      f"{summary['epochs_total']} epochs), /metrics instance-labeled")
EOF
  then
    :
  else
    kill "$FLEET_PID" 2>/dev/null || true
    wait "$FLEET_PID" 2>/dev/null || true
    exit 1
  fi
  # End the serve window; the CLI's exit code is the digest verdict.
  kill -TERM "$FLEET_PID" 2>/dev/null || true
  if wait "$FLEET_PID"; then
    :
  else
    echo "fleet-gate: digest verification failed at HODOR_THREADS=4:"
    cat "$TMP/fleet.out"
    exit 1
  fi
  grep -E "OK|match" "$TMP/fleet.out" | sed 's/^/  /' || true
fi

if [ "$1" = "--dashboard-gate" ]; then
  echo "== validation observatory gates (/query schema, /dashboard, overhead) =="
  cmake --build build -j --target live_pipeline bench_epoch_engine
  ROOT=$(pwd)
  TMP=$(mktemp -d)
  trap 'rm -rf "$TMP"' EXIT
  # Headless run: the serve window keeps the HTTP surface up after the
  # epochs finish, so every probe below sees a fully-populated store.
  HODOR_SERVE_SECONDS=60 ./build/examples/live_pipeline --epochs=12 \
    > "$TMP/lp.out" 2>&1 &
  LP_PID=$!
  URL=""
  i=0
  while [ $i -lt 300 ]; do
    if grep -q "Serving telemetry" "$TMP/lp.out" 2>/dev/null; then
      URL=$(sed -n 's/^telemetry: \(http:[^ ]*\).*/\1/p' "$TMP/lp.out" | head -1)
      break
    fi
    if ! kill -0 "$LP_PID" 2>/dev/null; then break; fi
    i=$((i + 1))
    sleep 0.2
  done
  if [ -z "$URL" ]; then
    echo "dashboard-gate: live_pipeline never reached its serve window:"
    cat "$TMP/lp.out"
    exit 1
  fi
  if python3 - "$URL" <<'EOF'
import json
import sys
import urllib.request

base = sys.argv[1]


def get(path):
    # urlopen raises on any 4xx/5xx, which is exactly the gate's contract.
    with urllib.request.urlopen(base + path, timeout=10) as resp:
        assert resp.status == 200, f"{path}: HTTP {resp.status}"
        assert resp.headers.get("Cache-Control") == "no-store", \
            f"{path}: missing Cache-Control: no-store"
        return resp.read().decode()


# /query must answer the documented schema at every resolution, with the
# trust series populated (acceptance: >= 3 resolutions for signal trust).
for res in ("raw", "10", "100"):
    doc = json.loads(get(f"/query?series=hodor_signal_trust*&res={res}&last=5"))
    for key in ("resolution", "stride", "last", "epochs_sampled",
                "series_total", "dropped_series", "series"):
        assert key in doc, f"/query res={res}: missing key {key}"
    assert doc["resolution"] == res
    assert doc["epochs_sampled"] > 0, f"/query res={res}: nothing sampled"
    assert doc["series"], f"/query res={res}: no trust series"
    for s in doc["series"]:
        assert s["name"].startswith("hodor_signal_trust"), s["name"]
        assert s["kind"] == "gauge"
        assert s["points"], f"{s['name']}: no points at res={res}"
        width = 2 if res == "raw" else 6
        assert all(len(p) == width for p in s["points"]), \
            f"{s['name']}: point width != {width} at res={res}"

slo = json.loads(get("/slo"))
for key in ("detection_latency", "false_positives", "ok", "fault_classes"):
    assert key in slo, f"/slo: missing key {key}"

buildz = json.loads(get("/buildz"))
assert buildz.get("status") == "ok", buildz
assert "git" in buildz and "uptime_seconds" in buildz, buildz

html = get("/dashboard")
assert "<html" in html, "/dashboard: not an HTML page"
for needle in ('src="http', "src='http", 'href="http', "href='http"):
    assert needle not in html, f"/dashboard references an external asset: {needle}"

print("dashboard-gate: /query schema, /slo, /buildz, and /dashboard "
      "self-containment all pass")
EOF
  then
    :
  else
    kill "$LP_PID" 2>/dev/null || true
    wait "$LP_PID" 2>/dev/null || true
    exit 1
  fi
  kill "$LP_PID" 2>/dev/null || true
  wait "$LP_PID" 2>/dev/null || true
  # Observatory sampling must fit the same <= 3% budget as the tracer.
  (cd "$TMP" && "$ROOT/build/bench/bench_epoch_engine" --timeseries-overhead)
fi

if [ "$1" = "--delta-gate" ]; then
  echo "== delta gate (incremental vs full-recompute digest equivalence) =="
  cmake --build build -j --target delta_sweep hodor_replay_cli
  TMP=$(mktemp -d)
  trap 'rm -rf "$TMP"' EXIT
  echo "  delta_sweep: scenario catalog x {1,4} threads, incremental arm"
  ./build/examples/delta_sweep > "$TMP/incremental.out"
  echo "  delta_sweep: same sweep, HODOR_FORCE_FULL=1 control arm"
  HODOR_FORCE_FULL=1 ./build/examples/delta_sweep > "$TMP/full.out"
  if ! diff -u "$TMP/full.out" "$TMP/incremental.out"; then
    echo "delta-gate: incremental digests diverged from full recompute"
    exit 1
  fi
  LINES=$(wc -l < "$TMP/incremental.out")
  echo "  delta_sweep: $LINES epoch digests identical"
  for extra in "" "--force-full"; do
    echo "  hodor_replay replay --threads=4 $extra"
    # shellcheck disable=SC2086  # $extra is intentionally word-split
    ./build/examples/hodor_replay replay tests/data/golden_abilene.hlog \
      --threads=4 $extra
  done
fi

if [ "$1" = "--confidence-gate" ]; then
  echo "== confidence gate (§4.1 curve shape + confidence-column digest parity) =="
  cmake --build build -j --target bench_confidence_sweep delta_sweep
  TMP=$(mktemp -d)
  trap 'rm -rf "$TMP"' EXIT
  echo "  bench_confidence_sweep --quick (self-gating curve-shape checks)"
  ./build/bench/bench_confidence_sweep --quick
  echo "  delta_sweep: incremental vs HODOR_FORCE_FULL=1 digest parity"
  ./build/examples/delta_sweep > "$TMP/incremental.out"
  HODOR_FORCE_FULL=1 ./build/examples/delta_sweep > "$TMP/full.out"
  if ! diff -u "$TMP/full.out" "$TMP/incremental.out"; then
    echo "confidence-gate: incremental digests diverged from full recompute"
    exit 1
  fi
  echo "  delta_sweep: $(wc -l < "$TMP/incremental.out") epoch digests identical"
fi

if [ "$1" = "--replay-gate" ]; then
  echo "== golden replay gate (digest determinism at 1 and 4 threads) =="
  cmake --build build -j --target hodor_replay_cli
  for n in 1 4; do
    echo "  hodor_replay replay --threads=$n"
    ./build/examples/hodor_replay replay tests/data/golden_abilene.hlog \
      --threads="$n"
  done
fi
echo "check_build: OK"
