# Empty compiler generated dependencies file for telemetry_snapshot_test.
# This may be replaced when dependencies are built.
