# Empty compiler generated dependencies file for util_matrix_test.
# This may be replaced when dependencies are built.
