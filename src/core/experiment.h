// Scenario experiment harness: replays a catalog outage scenario through
// the control pipeline under three arms and reports detection + impact.
//
//   no-validation — the §2 reality: the controller consumes whatever the
//                   (corrupted) aggregation produced;
//   hodor         — the Validator is installed with the fallback policy;
//   oracle        — the controller receives honest inputs for the true
//                   network state (the best any validator could enable).
//
// Impact is measured as flow metrics of the post-decision epoch. The
// detection verdict comes from validating the faulted epoch's raw input.
// Both the outage benches (E5, E6) and the integration tests drive this.
#pragma once

#include <string>

#include "controlplane/pipeline.h"
#include "core/validator.h"
#include "faults/scenario_catalog.h"
#include "flow/metrics.h"

namespace hodor::core {

struct ScenarioRunResult {
  std::string scenario_id;

  // Hodor's verdict on the faulted epoch's inputs.
  bool detected = false;  // >=1 violation
  bool warned = false;    // drained-but-active style warnings only
  std::size_t violation_count = 0;
  // Raw counter pairs the hardening step flagged (detection below the
  // input level, e.g. the Figure 3 single-counter corruption).
  std::size_t flagged_rates = 0;
  std::string detection_summary;

  flow::NetworkMetrics no_validation;
  flow::NetworkMetrics with_hodor;
  flow::NetworkMetrics oracle;

  // Fallback actually replaced the bad input in the hodor arm.
  bool fallback_used = false;
};

struct ScenarioRunOptions {
  std::uint64_t seed = 1;
  ValidatorOptions validator;
  controlplane::PipelineOptions pipeline;
};

// Replays `scenario` on `topo` with the given true demand. The demand
// should be light enough that the healthy network carries it without drops
// (see flow::NormalizeToMaxUtilization), so that detection verdicts are not
// confounded by congestion-induced counter drift.
ScenarioRunResult RunScenario(const net::Topology& topo,
                              const faults::OutageScenario& scenario,
                              const flow::DemandMatrix& demand,
                              const ScenarioRunOptions& opts = {});

}  // namespace hodor::core
