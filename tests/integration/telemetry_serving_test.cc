// Integration: the full operability stack around a validated pipeline —
// the ISSUE acceptance scenario. A TelemetryServer runs while the pipeline
// executes several epochs, one of which carries an injected router fault;
// the SignalHealthBoard's trust score for the faulted signal must drop,
// the AlertEngine must take the condition firing → resolved once the fault
// clears, and the HTTP surface must reflect all of it.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/alerts.h"
#include "core/validator.h"
#include "flow/tm_generators.h"
#include "net/topologies.h"
#include "obs/health/signal_health.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/serve/telemetry_server.h"
#include "test_util.h"
#include "util/logging.h"

namespace hodor {
namespace {

TEST(TelemetryServing, FaultDropsTrustFiresAndResolvesOverHttp) {
  util::Logger::Instance().SetMinLevel(util::LogLevel::kError);

  net::Topology topo = net::Abilene();
  net::GroundTruthState state(topo);
  util::Rng demand_rng(8);
  flow::DemandMatrix demand = flow::GravityDemand(topo, demand_rng);
  flow::NormalizeToMaxUtilization(topo, 0.5, demand);

  obs::MetricsRegistry registry;
  controlplane::PipelineOptions popts;
  popts.collector.probes.false_loss_rate = 0.0;
  popts.metrics = &registry;
  controlplane::Pipeline pipeline(topo, popts, util::Rng(3));
  pipeline.Bootstrap(state, demand);

  core::ValidatorOptions vopts;
  vopts.metrics = &registry;
  core::Validator validator(topo, vopts);
  pipeline.SetValidator(validator.AsPipelineValidator());

  // The operability stack under test.
  obs::SignalHealthBoard board;
  core::AlertEngineOptions aopts;
  aopts.min_hold_epochs = 2;
  aopts.metrics = &registry;
  core::AlertEngine engine(aopts);
  obs::TelemetryServer server;
  ASSERT_TRUE(server.Start());

  std::vector<std::string> transitions;
  pipeline.AddEpochSink([&](const controlplane::EpochResult& r) {
    board.ObserveEpoch(r.decision.provenance);
    board.PublishGauges(&registry);
    const auto summary = engine.Observe(
        r.epoch, core::AlertsFromProvenance(r.decision.provenance));
    if (summary.fired) transitions.push_back("fired");
    if (summary.resolved) transitions.push_back("resolved");
    server.PublishMetrics(&registry);
    server.PublishSignals(board);
    server.PublishDecision(r.decision.provenance);
    server.PublishAlerts(engine.ToJson());
  });

  // Zeroed external ingress counter: no neighbour measures it, so only the
  // demand check can catch it — the canonical §2.1 input fault.
  const net::NodeId victim = topo.FindNode("IPLSng").value();
  const std::string entity = topo.node(victim).name;
  auto fault = [victim](telemetry::NetworkSnapshot& snap) {
    snap.frame().SetExtInRate(victim, 0.0);
  };

  // Epoch 0: healthy. Epoch 1: faulted. Epochs 2-4: repaired (healthy).
  pipeline.RunEpoch(state, demand);
  const double trust_before = board.Find("demand", entity)
                                  ? board.Find("demand", entity)->trust
                                  : 100.0;
  EXPECT_DOUBLE_EQ(trust_before, 100.0);

  const auto faulted = pipeline.RunEpoch(state, demand, fault);
  EXPECT_FALSE(faulted.decision.accept);
  EXPECT_TRUE(faulted.used_fallback);

  // Trust for the faulted signal dropped.
  const obs::SignalHealth* health = board.Find("demand", entity);
  ASSERT_NE(health, nullptr);
  const double trust_after_fault = health->trust;
  EXPECT_LT(trust_after_fault, trust_before);
  EXPECT_GE(health->fail_epochs, 1u);

  // The alert is live while the fault is in effect.
  const std::string key = "demand-check|" + entity;
  ASSERT_NE(engine.FindActive(key), nullptr);
  EXPECT_EQ(engine.FindActive(key)->state, core::AlertState::kFiring);

  for (int i = 0; i < 3; ++i) pipeline.RunEpoch(state, demand);

  // After repair: the alert resolved and trust is recovering.
  EXPECT_EQ(engine.FindActive(key), nullptr);
  const core::AlertRecord* resolved = engine.FindResolved(key);
  ASSERT_NE(resolved, nullptr);
  EXPECT_EQ(resolved->state, core::AlertState::kResolved);
  EXPECT_EQ(resolved->first_epoch, 1u);
  EXPECT_GT(board.Find("demand", entity)->trust, trust_after_fault);
  ASSERT_GE(transitions.size(), 2u);
  EXPECT_EQ(transitions.front(), "fired");
  EXPECT_EQ(transitions.back(), "resolved");

  // --- the HTTP surface reflects the story ---------------------------------
  // /metrics carries the trust gauge and the alert lifecycle counters.
  const std::string metrics = testing::HttpGet(server.port(), "/metrics");
  EXPECT_NE(metrics.find("hodor_signal_trust{check=\"demand\",entity=\"" +
                         entity + "\"}"),
            std::string::npos);
  EXPECT_NE(metrics.find("hodor_alerts_fired_total"), std::string::npos);
  EXPECT_NE(metrics.find("hodor_alerts_resolved_total"), std::string::npos);

  // /healthz: live, with all five epochs published.
  const std::string healthz =
      testing::HttpBody(testing::HttpGet(server.port(), "/healthz"));
  EXPECT_TRUE(obs::IsValidJson(healthz)) << healthz;
  EXPECT_NE(healthz.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(healthz.find("\"published_epochs\":5"), std::string::npos);

  // /health/signals: the faulted entity appears with its fail history.
  const std::string signals =
      testing::HttpBody(testing::HttpGet(server.port(), "/health/signals"));
  EXPECT_TRUE(obs::IsValidJson(signals)) << signals;
  EXPECT_NE(signals.find("\"entity\":\"" + entity + "\""), std::string::npos);

  // /decisions: the faulted epoch's provenance is on the ring.
  const std::string decisions =
      testing::HttpBody(testing::HttpGet(server.port(), "/decisions?last=5"));
  EXPECT_TRUE(obs::IsValidJson(decisions)) << decisions;
  EXPECT_NE(decisions.find("\"accept\":false"), std::string::npos);
  EXPECT_NE(decisions.find("ingress(" + entity + ")"), std::string::npos);

  // /alerts: the incident is in the resolved history.
  const std::string alerts =
      testing::HttpBody(testing::HttpGet(server.port(), "/alerts"));
  EXPECT_TRUE(obs::IsValidJson(alerts)) << alerts;
  EXPECT_NE(alerts.find("\"state\":\"resolved\""), std::string::npos);
  EXPECT_NE(alerts.find("\"entity\":\"" + entity + "\""), std::string::npos);

  server.Stop();
  util::Logger::Instance().SetMinLevel(util::LogLevel::kInfo);
}

}  // namespace
}  // namespace hodor
