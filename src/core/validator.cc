#include "core/validator.h"

#include <array>
#include <sstream>

#include "obs/metrics.h"
#include "obs/span.h"
#include "util/parallel.h"
#include "util/stats.h"
#include "util/strings.h"

namespace hodor::core {

namespace {

// "nullptr means global" composes across layers: a validator-level
// registry/trace reaches the hardening engine and the checks unless those
// options name their own.
ValidatorOptions PropagateObs(ValidatorOptions opts) {
  if (!opts.hardening.metrics) opts.hardening.metrics = opts.metrics;
  if (!opts.hardening.trace) opts.hardening.trace = opts.trace;
  if (!opts.demand.metrics) opts.demand.metrics = opts.metrics;
  if (!opts.topology.metrics) opts.topology.metrics = opts.metrics;
  if (!opts.drain.metrics) opts.drain.metrics = opts.metrics;
  return opts;
}

// Re-emits the counter increments the cached run of a check produced, plus
// the incremental-skip counter — a replayed epoch is metric-identical to
// an evaluated one except for hodor_incremental_skips_total itself.
void EmitReplayedCheckMetrics(obs::MetricsRegistry& reg, const char* check,
                              const char* stage, std::size_t invariants,
                              std::size_t violations, std::size_t skipped,
                              const std::size_t* warnings) {
  const obs::Labels labels = {{"check", check}};
  reg.GetCounter("hodor_check_runs_total", labels, "Check invocations")
      .Increment();
  reg.GetCounter("hodor_check_invariants_total", labels,
                 "Invariants evaluated")
      .Increment(static_cast<double>(invariants));
  reg.GetCounter("hodor_check_violations_total", labels, "Invariants fired")
      .Increment(static_cast<double>(violations));
  reg.GetCounter("hodor_check_skipped_total", labels,
                 "Invariants skipped (signal unknown or suppressed)")
      .Increment(static_cast<double>(skipped));
  if (warnings != nullptr) {
    reg.GetCounter("hodor_check_warnings_total", labels,
                   "Drained-but-active warnings")
        .Increment(static_cast<double>(*warnings));
  }
  reg.GetCounter("hodor_incremental_skips_total", {{"stage", stage}},
                 "Stage evaluations replayed from the delta cache")
      .Increment();
}

}  // namespace

Validator::Validator(const net::Topology& topo, ValidatorOptions opts)
    : topo_(&topo), opts_(PropagateObs(opts)), engine_(opts_.hardening) {}

std::string ValidationReport::Describe(const net::Topology& topo) const {
  std::ostringstream os;
  os << hardened.Summary() << "\n";
  for (const auto& v : demand.violations) {
    os << "  [demand]   " << v.ToString(topo) << "\n";
  }
  for (const auto& v : topology.violations) {
    os << "  [topology] " << v.ToString(topo) << "\n";
  }
  for (const auto& v : drain.violations) {
    os << "  [drain]    " << v.ToString(topo) << "\n";
  }
  for (net::NodeId n : drain.warnings_drained_but_active) {
    os << "  [drain]    warning: " << topo.node(n).name
       << " drained but carrying traffic\n";
  }
  return os.str();
}

std::string ValidationReport::Summary() const {
  if (ok()) return "ACCEPT";
  std::ostringstream os;
  os << "REJECT: " << violation_count() << " violations (demand:"
     << demand.violations.size() << " topology:" << topology.violations.size()
     << " drain:" << drain.violations.size() << ")";
  return os.str();
}

ValidationReport Validator::Validate(
    const controlplane::ControllerInput& input,
    const telemetry::NetworkSnapshot& snapshot) const {
  return Validate(input, snapshot, nullptr);
}

ValidationReport Validator::Validate(
    const controlplane::ControllerInput& input,
    const telemetry::NetworkSnapshot& snapshot,
    const telemetry::FrameDelta* delta) const {
  const std::uint64_t epoch = snapshot.epoch();
  ValidationReport report;
  obs::DecisionRecord* prov =
      opts_.record_provenance ? &report.provenance : nullptr;
  // No pre-sizing needed: the bulk of the audit trail — one record per
  // directed link (topology), two per physical link plus four per node
  // (drain, demand) — arrives as frozen per-check blocks via AddBlock;
  // the owned tail only holds the (few) hardening repair records.

  HardenDelta hd;  // emits the "harden" span
  engine_.HardenInto(snapshot, report.hardened, delta, &hd);

  if (prov) AppendHardeningProvenance(report.hardened, *prov);

  // Replay plan, decided before any check runs: a check replays its cached
  // verdict only when the incremental chain is unbroken (the hardening ran
  // incrementally against the same base epoch the cache holds), its
  // declared hardened facets are clean, and its controller-input columns
  // compare equal to the previous epoch's. Anything else re-evaluates.
  ReplayPlan plan;
  const bool chain_ok = hd.incremental && cache_.valid && delta != nullptr &&
                        !delta->full && delta->base_epoch == cache_.epoch &&
                        (prov == nullptr || cache_.prov_cached);
  if (chain_ok) {
    plan.demand = cache_.has_demand && kDemandCheckFacets.CleanUnder(hd) &&
                  input.demand.BitwiseEqual(cache_.demand_input);
    plan.topology = cache_.has_topology &&
                    kTopologyCheckFacets.CleanUnder(hd) &&
                    input.link_available == cache_.link_available;
    plan.drain = cache_.has_drain && kDrainCheckFacets.CleanUnder(hd) &&
                 input.node_drained == cache_.node_drained &&
                 input.link_drained == cache_.link_drained;
  }

  util::ThreadPool* pool = engine_.pool();
  const int enabled_checks = static_cast<int>(opts_.check_demand) +
                             static_cast<int>(opts_.check_topology) +
                             static_cast<int>(opts_.check_drain);
  if (pool != nullptr && enabled_checks >= 2) {
    RunChecksParallel(input, epoch, *pool, plan, report, prov);
  } else {
    if (opts_.check_demand) {
      obs::StageSpan span(obs::Stage::kCheckDemand, epoch, opts_.metrics,
                          opts_.trace);
      EvalDemand(input, report.hardened, plan.demand, prov != nullptr,
                 opts_.demand.metrics);
      if (prov) prov->AddBlock(cache_.demand_records);
    }
    if (opts_.check_topology) {
      obs::StageSpan span(obs::Stage::kCheckTopology, epoch, opts_.metrics,
                          opts_.trace);
      EvalTopology(input, report.hardened, plan.topology, prov != nullptr,
                   opts_.topology.metrics);
      if (prov) prov->AddBlock(cache_.topology_records);
    }
    if (opts_.check_drain) {
      obs::StageSpan span(obs::Stage::kCheckDrain, epoch, opts_.metrics,
                          opts_.trace);
      EvalDrain(input, report.hardened, plan.drain, prov != nullptr,
                opts_.drain.metrics);
      if (prov) prov->AddBlock(cache_.drain_records);
    }
  }

  // Release the record blocks the fresh evaluations displaced, now that
  // every check span has closed (see CheckCache::*_retired).
  cache_.demand_retired = nullptr;
  cache_.topology_retired = nullptr;
  cache_.drain_retired = nullptr;

  // The report serves from the cache slots, which hold either this epoch's
  // fresh evaluation or the replayed (bit-identical) prior verdict.
  if (opts_.check_demand) report.demand = cache_.demand_result;
  if (opts_.check_topology) report.topology = cache_.topology_result;
  if (opts_.check_drain) report.drain = cache_.drain_result;

  // Refresh the cached input columns so the next epoch can compare.
  cache_.demand_input = input.demand;
  cache_.link_available = input.link_available;
  cache_.node_drained = input.node_drained;
  cache_.link_drained = input.link_drained;
  cache_.epoch = epoch;
  cache_.prov_cached = prov != nullptr;
  cache_.valid = true;

  report.provenance.epoch = epoch;
  report.provenance.accept = report.ok();
  report.provenance.summary = report.Summary();

  obs::MetricsRegistry& reg = obs::ResolveRegistry(opts_.metrics);
  reg.GetCounter("hodor_validations_total", {}, "Inputs validated")
      .Increment();
  if (!report.ok()) {
    reg.GetCounter("hodor_validation_rejects_total", {},
                   "Inputs rejected by validation")
        .Increment();
  }
  return report;
}

void Validator::EvalDemand(const controlplane::ControllerInput& input,
                           const HardenedState& hardened, bool replay,
                           bool want_prov,
                           obs::MetricsRegistry* metrics) const {
  if (replay) {
    EmitReplayedCheckMetrics(obs::ResolveRegistry(metrics), "demand",
                             "check-demand",
                             cache_.demand_result.checked_invariants,
                             cache_.demand_result.violations.size(),
                             cache_.demand_result.skipped_invariants,
                             nullptr);
    return;
  }
  DemandCheckOptions opts = opts_.demand;
  opts.metrics = metrics;
  obs::DecisionRecord sub;
  if (want_prov) sub.Reserve(2 * topo_->node_count());
  cache_.demand_result = CheckDemand(*topo_, hardened, input.demand, opts,
                                     want_prov ? &sub : nullptr);
  cache_.demand_retired = std::move(cache_.demand_records);
  cache_.demand_records =
      want_prov ? std::make_shared<const std::vector<obs::InvariantRecord>>(
                      sub.TakeRecords())
                : nullptr;
  cache_.has_demand = true;
}

void Validator::EvalTopology(const controlplane::ControllerInput& input,
                             const HardenedState& hardened, bool replay,
                             bool want_prov,
                             obs::MetricsRegistry* metrics) const {
  if (replay) {
    EmitReplayedCheckMetrics(obs::ResolveRegistry(metrics), "topology",
                             "check-topology",
                             cache_.topology_result.checked_links,
                             cache_.topology_result.violations.size(),
                             cache_.topology_result.unknown_links, nullptr);
    return;
  }
  TopologyCheckOptions opts = opts_.topology;
  opts.metrics = metrics;
  obs::DecisionRecord sub;
  if (want_prov) sub.Reserve(topo_->link_count());
  cache_.topology_result = CheckTopology(*topo_, hardened,
                                         input.link_available, opts,
                                         want_prov ? &sub : nullptr);
  cache_.topology_retired = std::move(cache_.topology_records);
  cache_.topology_records =
      want_prov ? std::make_shared<const std::vector<obs::InvariantRecord>>(
                      sub.TakeRecords())
                : nullptr;
  cache_.has_topology = true;
}

void Validator::EvalDrain(const controlplane::ControllerInput& input,
                          const HardenedState& hardened, bool replay,
                          bool want_prov, obs::MetricsRegistry* metrics) const {
  if (replay) {
    const std::size_t warnings =
        cache_.drain_result.warnings_drained_but_active.size();
    EmitReplayedCheckMetrics(obs::ResolveRegistry(metrics), "drain",
                             "check-drain",
                             cache_.drain_result.checked_signals,
                             cache_.drain_result.violations.size(),
                             cache_.drain_result.skipped_signals, &warnings);
    return;
  }
  DrainCheckOptions opts = opts_.drain;
  opts.metrics = metrics;
  obs::DecisionRecord sub;
  if (want_prov) sub.Reserve(topo_->link_count() + 2 * topo_->node_count());
  cache_.drain_result = CheckDrains(*topo_, hardened, input.node_drained,
                                    input.link_drained, opts,
                                    want_prov ? &sub : nullptr);
  cache_.drain_retired = std::move(cache_.drain_records);
  cache_.drain_records =
      want_prov ? std::make_shared<const std::vector<obs::InvariantRecord>>(
                      sub.TakeRecords())
                : nullptr;
  cache_.has_drain = true;
}

void Validator::RunChecksParallel(const controlplane::ControllerInput& input,
                                  std::uint64_t epoch, util::ThreadPool& pool,
                                  const ReplayPlan& plan,
                                  ValidationReport& report,
                                  obs::DecisionRecord* prov) const {
  // Shard registries inherit the main registry's options so histograms
  // merged back (stage spans, check counters) carry identical bounds.
  for (auto& shard : check_shards_) {
    if (!shard) {
      shard = std::make_unique<obs::MetricsRegistry>(
          obs::ResolveRegistry(opts_.metrics).options());
    }
  }

  // Check slots in the serial order the single-threaded path runs them.
  enum : int { kDemand = 0, kTopology = 1, kDrain = 2 };
  std::array<int, 3> tasks{};
  std::size_t task_count = 0;
  if (opts_.check_demand) tasks[task_count++] = kDemand;
  if (opts_.check_topology) tasks[task_count++] = kTopology;
  if (opts_.check_drain) tasks[task_count++] = kDrain;

  std::array<obs::SpanRecord, 3> span_records;
  // Dynamic task assignment is fine here: each check writes only its own
  // cache slot and shard; determinism comes from the fixed-order
  // integration below, not from which worker ran what. Replayed checks
  // run the same task slot — they just re-emit cached counters instead of
  // re-evaluating.
  pool.Run(task_count, [&](std::size_t i) {
    const int kind = tasks[i];
    obs::MetricsRegistry* shard = check_shards_[kind].get();
    const bool want_prov = prov != nullptr;
    switch (kind) {
      case kDemand: {
        obs::StageSpan span(obs::Stage::kCheckDemand, epoch, shard, nullptr);
        EvalDemand(input, report.hardened, plan.demand, want_prov, shard);
        span_records[kDemand] = span.End();
        break;
      }
      case kTopology: {
        obs::StageSpan span(obs::Stage::kCheckTopology, epoch, shard,
                            nullptr);
        EvalTopology(input, report.hardened, plan.topology, want_prov, shard);
        span_records[kTopology] = span.End();
        break;
      }
      case kDrain: {
        obs::StageSpan span(obs::Stage::kCheckDrain, epoch, shard, nullptr);
        EvalDrain(input, report.hardened, plan.drain, want_prov, shard);
        span_records[kDrain] = span.End();
        break;
      }
    }
  });

  // Deterministic integration, in the serial order: trace lines, metric
  // shard merges, and provenance splices all happen demand → topology →
  // drain on this thread, so every observable output matches the serial
  // path bit for bit.
  obs::MetricsRegistry& reg = obs::ResolveRegistry(opts_.metrics);
  for (std::size_t i = 0; i < task_count; ++i) {
    const int kind = tasks[i];
    if (opts_.trace) opts_.trace->Write(span_records[kind]);
    reg.MergeFrom(*check_shards_[kind]);
    // Hand the shard back for whichever worker picks it up next epoch
    // (Reset re-binds to this thread, then releases again).
    check_shards_[kind]->ReleaseOwnerThread();
    check_shards_[kind]->Reset();
    if (prov) {
      prov->AddBlock(kind == kDemand
                         ? cache_.demand_records
                         : kind == kTopology ? cache_.topology_records
                                             : cache_.drain_records);
    }
  }
}

void Validator::AppendHardeningProvenance(const HardenedState& hardened,
                                          obs::DecisionRecord& record) const {
  const double tau_h = engine_.options().tau_h;
  for (std::uint32_t i = 0; i < topo_->link_count(); ++i) {
    const net::LinkId e(i);
    const HardenedRate& r = hardened.rates[e.value()];
    if (!r.flagged && r.origin == RateOrigin::kAgreeing) continue;
    obs::InvariantRecord rec;
    rec.check = "hardening";
    rec.invariant = "r1-symmetry(" + topo_->LinkNameRef(e) + ")";
    rec.threshold = tau_h;
    if (r.rejected_value.has_value() && r.value.has_value()) {
      rec.residual = util::RelativeDifference(*r.rejected_value, *r.value);
    }
    switch (r.origin) {
      case RateOrigin::kAgreeing:
        continue;  // unflagged handled above; nothing to report
      case RateOrigin::kRepaired:
        rec.verdict = obs::InvariantVerdict::kPass;
        rec.detail = std::string("repaired via ") +
                     RepairSourceName(r.repair_source) + ", confidence " +
                     util::FormatDouble(r.confidence, 2);
        break;
      case RateOrigin::kSingleWitness:
        rec.verdict = obs::InvariantVerdict::kPass;
        rec.detail = "single witness accepted, confidence " +
                     util::FormatDouble(r.confidence, 2);
        break;
      case RateOrigin::kUnknown:
        rec.verdict = obs::InvariantVerdict::kSkipped;
        rec.detail = "rate unrecoverable after R1-R4";
        break;
    }
    // Structured repair provenance: the redundancy source that justified
    // the accepted value, and the confidence it was accepted at.
    if (r.repair_source != RepairSource::kNone) {
      rec.source = RepairSourceName(r.repair_source);
    }
    rec.confidence = r.confidence;
    record.Add(std::move(rec));
  }
  for (std::uint32_t i = 0; i < topo_->link_count(); ++i) {
    const net::LinkId e(i);
    // Status disagreements, once per physical link.
    if (topo_->link(e).reverse.value() < e.value()) continue;
    const HardenedLinkState& hl = hardened.links[e.value()];
    if (!hl.status_disagreement) continue;
    obs::InvariantRecord rec;
    rec.check = "hardening";
    rec.invariant = "r1-status(" + topo_->LinkNameRef(e) + ")";
    rec.residual = 1.0 - hl.confidence;
    rec.threshold = 0.0;
    rec.verdict = hl.verdict == LinkVerdict::kUnknown
                      ? obs::InvariantVerdict::kSkipped
                      : obs::InvariantVerdict::kPass;
    rec.detail = std::string("endpoint statuses disagree; fused verdict ") +
                 LinkVerdictName(hl.verdict) + " at confidence " +
                 util::FormatDouble(hl.confidence, 2);
    rec.source = "r3-fusion";
    rec.confidence = hl.confidence;
    record.Add(std::move(rec));
  }
}

controlplane::InputValidatorFn Validator::AsPipelineValidator() const {
  return [this](const controlplane::ControllerInput& input,
                const telemetry::NetworkSnapshot& snapshot) {
    ValidationReport report = Validate(input, snapshot);
    controlplane::ValidationDecision decision;
    decision.accept = report.ok();
    decision.reason = report.Summary();
    decision.provenance = std::move(report.provenance);
    return decision;
  };
}

controlplane::DeltaInputValidatorFn Validator::AsDeltaPipelineValidator()
    const {
  return [this](const controlplane::ControllerInput& input,
                const telemetry::NetworkSnapshot& snapshot,
                const telemetry::FrameDelta* delta) {
    ValidationReport report = Validate(input, snapshot, delta);
    controlplane::ValidationDecision decision;
    decision.accept = report.ok();
    decision.reason = report.Summary();
    decision.provenance = std::move(report.provenance);
    return decision;
  };
}

}  // namespace hodor::core
