// Replayer: turns any recorded run into a regression oracle.
//
// For every epoch in a log it re-runs core::Validator — including the full
// R1-R4 hardening path — over the *recorded* snapshot and input, then
// diffs the fresh decision against the recorded one:
//
//   - same binary, same options  =>  every decision digest matches
//     bit-for-bit and the report is clean;
//   - changed thresholds (or changed validator code)  =>  a precise
//     per-epoch list of exactly which invariants flipped verdict, with
//     recorded and fresh residuals side by side.
//
// The recorded verdict fingerprint is obs::DecisionRecord::CanonicalDigest
// over the full decision record (round-trip-exact doubles), so any numeric
// drift — not just accept/reject flips — registers as divergence.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/validator.h"
#include "obs/provenance.h"
#include "replay/epoch_log.h"
#include "util/status.h"

namespace hodor::replay {

struct ReplayOptions {
  // Validator configuration for the fresh run. Defaults reproduce the
  // stock validator; override thresholds (tau_e, tau_h, min_confidence,
  // per-check switches...) to ask "which recorded decisions would change?".
  // record_provenance is forced on — the digest diff needs it.
  core::ValidatorOptions validator;

  // When true the report keeps a per-epoch entry even for clean epochs
  // (inspect-style listings); by default only divergent epochs are kept.
  bool keep_clean_epochs = false;

  // By default the replayer feeds the validator the FrameDelta between
  // consecutive decoded snapshots, exercising the incremental path
  // (DESIGN.md §12) — recorded digests came from full-recompute epochs, so
  // a clean incremental replay directly proves incremental == full. Set to
  // run every epoch cold instead (the pre-delta behavior, and the control
  // arm of the --delta-gate).
  bool force_full = false;
};

// One invariant whose verdict changed between the recorded and fresh run.
struct InvariantFlip {
  std::string check;
  std::string invariant;
  bool recorded_present = false;  // evaluated at record time?
  bool fresh_present = false;     // evaluated by the fresh validator?
  obs::InvariantVerdict recorded = obs::InvariantVerdict::kPass;
  obs::InvariantVerdict fresh = obs::InvariantVerdict::kPass;
  double recorded_residual = 0.0;
  double fresh_residual = 0.0;
  double recorded_threshold = 0.0;
  double fresh_threshold = 0.0;

  std::string ToString() const;
};

struct EpochDiff {
  std::uint64_t epoch = 0;
  bool recorded_accept = true;
  bool fresh_accept = true;
  std::uint64_t recorded_digest = 0;
  std::uint64_t fresh_digest = 0;
  // Invariants whose verdict changed (or that exist on only one side).
  // Empty with differing digests means only residual values moved.
  std::vector<InvariantFlip> flips;

  bool diverged() const { return recorded_digest != fresh_digest; }
  bool verdict_flipped() const { return recorded_accept != fresh_accept; }
};

struct ReplayReport {
  std::size_t epochs_total = 0;        // records in the log
  std::size_t epochs_replayed = 0;     // decoded + re-validated
  std::size_t epochs_unvalidated = 0;  // recorded without a validator
  std::size_t divergent_epochs = 0;
  std::size_t verdict_flips = 0;       // accept/reject changed
  bool tail_truncated = false;         // log ended in a torn record
  std::vector<EpochDiff> epochs;       // divergent (and clean, if kept)

  // Zero divergent epochs (a torn tail does not spoil cleanliness; the
  // skipped record was never decodable evidence).
  bool clean() const { return divergent_epochs == 0; }
  std::string Summary() const;
};

class Replayer {
 public:
  explicit Replayer(ReplayOptions opts = {});

  // Replays every epoch of an opened log.
  util::StatusOr<ReplayReport> Replay(const EpochLogReader& reader) const;

  // Convenience: open + replay.
  util::StatusOr<ReplayReport> ReplayFile(const std::string& path) const;

 private:
  ReplayOptions opts_;
};

}  // namespace hodor::replay
