#include "net/hierarchical_wan.h"

#include <string>
#include <vector>

#include "util/status.h"

namespace hodor::net {

Topology HierarchicalWan(const HierarchicalWanParams& params, util::Rng& rng) {
  HODOR_CHECK_MSG(params.cores >= 3, "hierarchical WAN needs >= 3 cores");
  HODOR_CHECK_MSG(params.aggs_per_core >= 1, "need >= 1 agg per core");
  HODOR_CHECK_MSG(params.edges_per_agg >= 1, "need >= 1 edge per agg");

  const std::size_t total =
      params.cores * (1 + params.aggs_per_core * (1 + params.edges_per_agg));
  Topology topo("hier" + std::to_string(total));

  // Core ring. Metric 1 on ring links keeps shortest paths following the
  // physical backbone by default.
  std::vector<NodeId> cores;
  cores.reserve(params.cores);
  for (std::size_t c = 0; c < params.cores; ++c) {
    cores.push_back(topo.AddNode("core" + std::to_string(c)));
  }
  for (std::size_t c = 0; c < params.cores; ++c) {
    topo.AddBidirectionalLink(cores[c], cores[(c + 1) % params.cores],
                              params.core_capacity);
  }
  // Seeded express chords between non-adjacent cores. Iteration order is
  // fixed (lexicographic pairs), so the rng draw sequence — and therefore
  // the resulting graph — is a pure function of the seed.
  for (std::size_t a = 0; a < params.cores; ++a) {
    for (std::size_t b = a + 2; b < params.cores; ++b) {
      if (a == 0 && b == params.cores - 1) continue;  // already a ring link
      if (rng.Bernoulli(params.core_chord_prob)) {
        topo.AddBidirectionalLink(cores[a], cores[b], params.core_capacity,
                                  /*metric=*/2.0);
      }
    }
  }

  // Aggregation tier: dual-homed to parent core and the next core over.
  std::vector<std::vector<NodeId>> aggs(params.cores);
  for (std::size_t c = 0; c < params.cores; ++c) {
    aggs[c].reserve(params.aggs_per_core);
    for (std::size_t a = 0; a < params.aggs_per_core; ++a) {
      const NodeId agg = topo.AddNode("agg" + std::to_string(c) + "-" +
                                      std::to_string(a));
      aggs[c].push_back(agg);
      topo.AddBidirectionalLink(agg, cores[c], params.agg_capacity);
      topo.AddBidirectionalLink(agg, cores[(c + 1) % params.cores],
                                params.agg_capacity, /*metric=*/2.0);
    }
  }

  // Edge tier: homed to the parent agg plus a seeded-random second agg in
  // the same core region (falls back to a neighbouring region's agg when
  // the region has only one). External ports live here and only here.
  for (std::size_t c = 0; c < params.cores; ++c) {
    for (std::size_t a = 0; a < params.aggs_per_core; ++a) {
      for (std::size_t e = 0; e < params.edges_per_agg; ++e) {
        const NodeId edge = topo.AddNode(
            "edge" + std::to_string(c) + "-" + std::to_string(a) + "-" +
            std::to_string(e));
        topo.AddBidirectionalLink(edge, aggs[c][a], params.edge_capacity);
        NodeId second;
        if (params.aggs_per_core > 1) {
          // A random sibling agg other than the parent.
          std::size_t pick = rng.Index(params.aggs_per_core - 1);
          if (pick >= a) ++pick;
          second = aggs[c][pick];
        } else {
          second = aggs[(c + 1) % params.cores][0];
        }
        topo.AddBidirectionalLink(edge, second, params.edge_capacity,
                                  /*metric=*/2.0);
        topo.AddExternalPort(edge, params.external_capacity);
      }
    }
  }

  HODOR_CHECK(topo.node_count() == total);
  return topo;
}

HierarchicalWanParams HierarchicalWanPreset(std::size_t approx_nodes) {
  HierarchicalWanParams p;
  switch (approx_nodes) {
    case 400:
      p.cores = 4;
      p.aggs_per_core = 4;
      p.edges_per_agg = 24;  // 4 * (1 + 4 * 25) = 404
      return p;
    case 1000:
      p.cores = 8;
      p.aggs_per_core = 4;
      p.edges_per_agg = 30;  // 8 * (1 + 4 * 31) = 1000
      return p;
    case 10000:
      p.cores = 16;
      p.aggs_per_core = 8;
      p.edges_per_agg = 77;  // 16 * (1 + 8 * 78) = 10000
      return p;
    default:
      HODOR_CHECK_MSG(false, "no hierarchical WAN preset for " +
                                 std::to_string(approx_nodes) + " nodes");
  }
  return p;  // unreachable
}

}  // namespace hodor::net
