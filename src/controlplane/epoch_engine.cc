#include "controlplane/epoch_engine.h"

#include <algorithm>
#include <cstdlib>

#include "util/logging.h"
#include "util/status.h"

namespace hodor::controlplane {

namespace {

// "nullptr means global" composes: a pipeline-level registry/trace reaches
// the collector unless its options name their own.
PipelineOptions PropagateObs(PipelineOptions opts) {
  if (!opts.collector.metrics) opts.collector.metrics = opts.metrics;
  // HODOR_FORCE_FULL=1: operator escape hatch disabling the incremental
  // validation path without a rebuild (pipeline.h).
  const char* force = std::getenv("HODOR_FORCE_FULL");
  if (force != nullptr && force[0] == '1') opts.force_full = true;
  return opts;
}

constexpr std::uint32_t Bit(EpochStageId id) {
  return 1u << static_cast<std::uint32_t>(id);
}

// How many EpochState buffers the threaded-sink runtime ping-pongs: one
// being filled by the control thread, one being consumed by the sink
// thread (the classic double buffer).
constexpr std::size_t kSinkBuffers = 2;

// Trace queue ids: the ready queue's depth is what "sink queue depth"
// means in the analyzer and on /metrics.
constexpr std::uint16_t kReadyQueueId = 0;
constexpr std::uint16_t kFreeQueueId = 1;

}  // namespace

const std::array<EpochStageNode, kEpochStageCount>& EpochStageGraph() {
  static const std::array<EpochStageNode, kEpochStageCount> kGraph = {{
      {EpochStageId::kSimulate, "simulate", obs::Stage::kSimulate, 0u},
      {EpochStageId::kCollect, "collect", obs::Stage::kCollect,
       Bit(EpochStageId::kSimulate)},
      {EpochStageId::kAggregate, "aggregate", obs::Stage::kAggregate,
       Bit(EpochStageId::kCollect)},
      {EpochStageId::kValidate, "validate", obs::Stage::kValidate,
       Bit(EpochStageId::kCollect) | Bit(EpochStageId::kAggregate)},
      {EpochStageId::kProgram, "program", obs::Stage::kProgram,
       Bit(EpochStageId::kValidate)},
      {EpochStageId::kMeasure, "measure", obs::Stage::kSimulate,
       Bit(EpochStageId::kProgram)},
  }};
  return kGraph;
}

EpochEngine::EpochEngine(const net::Topology& topo, PipelineOptions opts,
                         util::Rng rng)
    : topo_(&topo),
      opts_(PropagateObs(std::move(opts))),
      rng_(rng),
      collector_(topo, opts_.collector),
      controller_(topo, opts_.controller),
      prev_snapshot_(topo, 0),
      free_(kSinkBuffers),
      ready_(kSinkBuffers) {
  if (opts_.num_threads > 1) {
    pool_ = std::make_unique<util::ThreadPool>(opts_.num_threads);
  }
  if (opts_.exec_trace) {
    tracer_ = std::make_unique<util::ExecTracer>(opts_.trace_ring_capacity);
    control_handle_ = tracer_->RegisterThread("control");
    if (pool_) pool_->SetTracer(tracer_.get());
    obs::ExecTimelineOptions tl;
    tl.stage_names.reserve(kEpochStageCount);
    for (const EpochStageNode& node : EpochStageGraph()) {
      tl.stage_names.emplace_back(node.name);
    }
    tl.pool_threads = pool_ ? pool_->thread_count() : 1;
    tl.sink_queue_id = kReadyQueueId;
    tl.retain_events = opts_.trace_retain_events;
    timeline_ = std::make_unique<obs::ExecTimeline>(tracer_.get(),
                                                    std::move(tl));
  }
  const std::size_t buffers = opts_.threaded_sinks ? kSinkBuffers : 1;
  states_.reserve(buffers);
  for (std::size_t i = 0; i < buffers; ++i) {
    states_.push_back(std::make_unique<EpochState>(topo));
  }
  if (opts_.threaded_sinks) {
    // Seed the free list before attaching the tracer: the initial fills
    // are setup, not epoch hand-offs, and must not be attributed to the
    // (sink-owned) producer stream.
    for (const auto& st : states_) free_.Push(st.get());
    if (tracer_) {
      sink_handle_ = tracer_->RegisterThread("sink");
      ready_.AttachTracer(tracer_.get(), kReadyQueueId, control_handle_,
                          sink_handle_);
      free_.AttachTracer(tracer_.get(), kFreeQueueId, sink_handle_,
                         control_handle_);
    }
    sink_thread_ = std::thread([this] { SinkLoop(); });
  }
}

EpochEngine::~EpochEngine() { StopSinkThread(); }

void EpochEngine::StopSinkThread() {
  if (!sink_thread_.joinable()) return;
  // Close drains: the sink loop keeps popping queued epochs until the
  // ready queue is empty, so no recorded epoch is ever dropped.
  ready_.Close();
  sink_thread_.join();
}

void EpochEngine::Bootstrap(const net::GroundTruthState& state,
                            const flow::DemandMatrix& true_demand) {
  installed_plan_ = flow::ShortestPathRouting(
      *topo_, true_demand, [&](net::LinkId e) { return state.LinkUsable(e); });
}

void EpochEngine::SetValidator(InputValidatorFn validator) {
  validator_ = std::move(validator);
  delta_validator_ = nullptr;
}

void EpochEngine::SetDeltaValidator(DeltaInputValidatorFn validator) {
  delta_validator_ = std::move(validator);
  validator_ = nullptr;
  have_prev_snapshot_ = false;
}

void EpochEngine::AddEpochSink(EpochSinkFn sink) {
  HODOR_CHECK_MSG(!opts_.threaded_sinks || next_epoch_ == 0,
                  "AddEpochSink after the first epoch with threaded sinks — "
                  "subscribe before RunEpoch");
  sinks_.push_back(std::move(sink));
}

void EpochEngine::SetFaultStamp(std::vector<std::string> classes) {
  fault_stamp_ = std::move(classes);
}

void EpochEngine::ClearFaultStamp() { fault_stamp_.reset(); }

void EpochEngine::InvokeSinks(const EpochResult& result) {
  for (const EpochSinkFn& sink : sinks_) {
    if (sink) sink(result);
  }
}

EpochState& EpochEngine::AcquireState() {
  if (!opts_.threaded_sinks) return *states_[0];
  // Backpressure: blocks while the sink thread still holds every buffer.
  EpochState* st = nullptr;
  HODOR_CHECK(free_.Pop(st));
  return *st;
}

EpochResult EpochEngine::RunEpoch(
    const net::GroundTruthState& state, const flow::DemandMatrix& true_demand,
    const telemetry::SnapshotMutator& snapshot_fault,
    const AggregationFaultHooks& aggregation_faults) {
  // Stamp the tracer's epoch before acquiring a buffer so the (possibly
  // blocking) free-queue pop is attributed to the epoch it stalls.
  const std::uint64_t trace_t0 = tracer_ ? tracer_->NowNs() : 0;
  if (tracer_) tracer_->SetCurrentEpoch(next_epoch_);
  EpochState& st = AcquireState();
  const std::uint64_t epoch = next_epoch_++;
  obs::MetricsRegistry* reg = opts_.metrics;
  obs::TraceWriter* trace = opts_.trace;

  // Reset the buffer in place: plain fields rewound, big buffers (the
  // snapshot's columns, the input's vectors) reused by the stages.
  st.result.epoch = epoch;
  st.result.validated = false;
  st.result.decision = ValidationDecision{};
  st.result.used_fallback = false;
  st.result.metrics = flow::NetworkMetrics{};
  st.result.metrics_mirror = nullptr;
  st.result.spans.clear();
  st.result.spans.reserve(7);
  st.chosen = nullptr;

  // Ground-truth fault stamp for this epoch: the caller's sticky stamp
  // wins; otherwise infer from which fault hooks are armed. Stamps never
  // reach the decision digest (pipeline.h).
  st.result.fault_classes.clear();
  if (fault_stamp_.has_value()) {
    st.result.fault_classes = *fault_stamp_;
  } else {
    if (snapshot_fault) st.result.fault_classes.push_back("router-signal");
    if (aggregation_faults.topology || aggregation_faults.drain) {
      st.result.fault_classes.push_back("aggregation");
    }
    if (aggregation_faults.demand) {
      st.result.fault_classes.push_back("external-input");
    }
  }

  StageContext ctx{&state,  &true_demand, &snapshot_fault,
                   &aggregation_faults, &st, epoch};

  obs::StageSpan epoch_span(obs::Stage::kEpoch, epoch, reg, trace);
  std::uint32_t done = 0;
  for (const EpochStageNode& node : EpochStageGraph()) {
    HODOR_CHECK_MSG((node.deps & ~done) == 0,
                    std::string("epoch stage graph violates dependencies at "
                                "stage ") +
                        node.name);
    RunStage(node.id, ctx);
    done |= Bit(node.id);
  }

  if (!st.result.validated || st.result.decision.accept) {
    last_good_input_ = st.result.raw_input;
  }

  obs::MetricsRegistry& registry = obs::ResolveRegistry(reg);
  registry.GetCounter("hodor_epochs_total", {}, "Control epochs run")
      .Increment();
  if (st.result.validated && !st.result.decision.accept) {
    registry
        .GetCounter("hodor_epoch_rejects_total", {},
                    "Epochs whose input the validator rejected")
        .Increment();
  }
  if (st.result.used_fallback) {
    registry
        .GetCounter("hodor_epoch_fallbacks_total", {},
                    "Epochs served from the last accepted input")
        .Increment();
  }
  // hodor_fault_active{class}: 1 while the class is injected, explicitly 0
  // once a previously-seen class goes quiet (stale 1s would read as a
  // never-ending outage on the dashboard).
  for (const std::string& cls : st.result.fault_classes) {
    if (std::find(seen_fault_classes_.begin(), seen_fault_classes_.end(),
                  cls) == seen_fault_classes_.end()) {
      seen_fault_classes_.push_back(cls);
    }
  }
  for (const std::string& cls : seen_fault_classes_) {
    const bool active =
        std::find(st.result.fault_classes.begin(),
                  st.result.fault_classes.end(),
                  cls) != st.result.fault_classes.end();
    registry
        .GetGauge("hodor_fault_active", {{"class", cls}},
                  "1 while a fault of this class is being injected")
        .Set(active ? 1.0 : 0.0);
  }
  st.result.spans.push_back(epoch_span.End());

  EpochResult out = FinishAndDispatch(st);
  if (tracer_) {
    // The kEpoch event closes over FinishAndDispatch so backpressure on
    // the ready queue lands inside the epoch's span.
    tracer_->Emit(control_handle_,
                  util::ExecEvent{trace_t0, tracer_->NowNs() - trace_t0,
                                  epoch, util::ExecEventKind::kEpoch, 0, 0});
    timeline_->Poll();
    timeline_->PublishGauges(reg);
    if (opts_.threaded_sinks) {
      registry
          .GetGauge("hodor_sink_queue_depth", {},
                    "Completed epochs queued for the sink thread")
          .Set(static_cast<double>(ready_.size()));
    }
  }
  return out;
}

EpochResult EpochEngine::FinishAndDispatch(EpochState& st) {
  if (!opts_.threaded_sinks) {
    // Synchronous mode, the historical behavior: sinks run here, on the
    // control thread, and may read the live registry directly.
    st.result.metrics_mirror = opts_.metrics;  // nullptr keeps meaning global
    InvokeSinks(st.result);
    EpochResult out = st.result;
    out.metrics_mirror = nullptr;
    return out;
  }
  // Threaded mode: snapshot the registry values for the sink thread (a
  // value copy is far cheaper than the string rendering it displaces),
  // copy the result for the caller, and hand the buffer over.
  st.metrics_mirror.CopyFrom(obs::ResolveRegistry(opts_.metrics));
  st.metrics_mirror.ReleaseOwnerThread();
  st.result.metrics_mirror = &st.metrics_mirror;
  EpochResult out = st.result;
  out.metrics_mirror = nullptr;
  ++submitted_;
  ready_.Push(&st);
  return out;
}

void EpochEngine::SinkLoop() {
  EpochState* st = nullptr;
  while (ready_.Pop(st)) {
    const std::uint64_t t0 = tracer_ ? tracer_->NowNs() : 0;
    InvokeSinks(st->result);
    if (tracer_) {
      tracer_->Emit(sink_handle_,
                    util::ExecEvent{t0, tracer_->NowNs() - t0,
                                    st->result.epoch,
                                    util::ExecEventKind::kSinkDeliver, 0, 0});
    }
    st->result.metrics_mirror = nullptr;
    // The mirror's next writer is the control thread (CopyFrom next time
    // this buffer cycles around); unbind it before handing the buffer back.
    st->metrics_mirror.ReleaseOwnerThread();
    free_.Push(st);
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++delivered_;
    }
    drained_cv_.notify_all();
  }
}

void EpochEngine::DrainSinks() {
  if (opts_.threaded_sinks) {
    std::unique_lock<std::mutex> lock(mu_);
    drained_cv_.wait(lock, [&] { return delivered_ == submitted_; });
  }
  if (timeline_ == nullptr) return;
  // Pick up the sink thread's deliveries (it is now idle) and reflect the
  // drained queue in the live gauge.
  timeline_->Poll();
  if (opts_.threaded_sinks) {
    obs::ResolveRegistry(opts_.metrics)
        .GetGauge("hodor_sink_queue_depth", {},
                  "Completed epochs queued for the sink thread")
        .Set(static_cast<double>(ready_.size()));
  }
}

void EpochEngine::RunStage(EpochStageId id, StageContext& ctx) {
  const std::uint64_t t0 = tracer_ ? tracer_->NowNs() : 0;
  DispatchStage(id, ctx);
  if (tracer_) {
    tracer_->Emit(control_handle_,
                  util::ExecEvent{t0, tracer_->NowNs() - t0, ctx.epoch,
                                  util::ExecEventKind::kStage,
                                  static_cast<std::uint16_t>(id), 0});
  }
}

void EpochEngine::DispatchStage(EpochStageId id, StageContext& ctx) {
  switch (id) {
    case EpochStageId::kSimulate:
      StageSimulate(ctx);
      return;
    case EpochStageId::kCollect:
      StageCollect(ctx);
      return;
    case EpochStageId::kAggregate:
      StageAggregate(ctx);
      return;
    case EpochStageId::kValidate:
      StageValidate(ctx);
      return;
    case EpochStageId::kProgram:
      StageProgram(ctx);
      return;
    case EpochStageId::kMeasure:
      StageMeasure(ctx);
      return;
  }
  HODOR_CHECK_MSG(false, "unknown epoch stage");
}

// 1. Traffic under the currently installed plan: this is what telemetry
//    measures.
void EpochEngine::StageSimulate(StageContext& ctx) {
  obs::StageSpan span(obs::Stage::kSimulate, ctx.epoch, opts_.metrics,
                      opts_.trace);
  ctx.st->measured =
      flow::SimulateFlow(*topo_, *ctx.state, *ctx.demand, installed_plan_);
  ctx.st->result.spans.push_back(span.End());
}

// 2. Collect router signals into the state's snapshot workspace, with the
//    fault hook applied. Sharded over router agents when a pool exists —
//    bit-identical to serial by the pre-drawn-jitter contract
//    (telemetry/router_agent.h).
void EpochEngine::StageCollect(StageContext& ctx) {
  obs::StageSpan span(obs::Stage::kCollect, ctx.epoch, opts_.metrics,
                      opts_.trace);
  collector_.CollectInto(*ctx.state, ctx.st->measured, ctx.epoch, rng_,
                         ctx.st->result.snapshot, *ctx.fault, pool_.get());
  if (delta_validator_) {
    // Delta epoch bookkeeping (DESIGN.md §12). Full-recompute triggers:
    // no previous epoch yet, a sticky fault stamp (ground truth says the
    // world shifted in ways telemetry may only partially reflect), or the
    // operator escape hatch. The per-epoch inferred fault hooks do NOT
    // force full: the diff is exact under injected faults, which is
    // precisely what the delta gate's fault sweep exercises.
    if (!have_prev_snapshot_ || fault_stamp_.has_value() ||
        opts_.force_full) {
      frame_delta_.full = true;
    } else {
      ctx.st->result.snapshot.DiffAgainst(prev_snapshot_, frame_delta_);
    }
    prev_snapshot_ = ctx.st->result.snapshot;  // copy reuses buffers
    have_prev_snapshot_ = true;
    obs::ResolveRegistry(opts_.metrics)
        .GetGauge("hodor_dirty_signals", {},
                  "Signals changed since the previous epoch's snapshot "
                  "(full recompute epochs report every present signal)")
        .Set(static_cast<double>(
            frame_delta_.full ? ctx.st->result.snapshot.PresentSignalCount()
                              : frame_delta_.ChangedSignalCount()));
  }
  ctx.st->result.spans.push_back(span.End());
}

// 3. The instrumentation services aggregate the controller's inputs.
void EpochEngine::StageAggregate(StageContext& ctx) {
  obs::StageSpan span(obs::Stage::kAggregate, ctx.epoch, opts_.metrics,
                      opts_.trace);
  ctx.st->result.raw_input =
      AggregateInputs(*topo_, ctx.st->result.snapshot, *ctx.demand, ctx.epoch,
                      rng_, opts_.infra, *ctx.hooks);
  ctx.st->result.spans.push_back(span.End());
}

// 4. Validate + rejection policy. Without a validator the raw input is
//    chosen as-is and no validate span is emitted (matching the
//    historical loop).
void EpochEngine::StageValidate(StageContext& ctx) {
  EpochResult& result = ctx.st->result;
  ctx.st->chosen = &result.raw_input;
  if (!validator_ && !delta_validator_) return;
  obs::StageSpan span(obs::Stage::kValidate, ctx.epoch, opts_.metrics,
                      opts_.trace);
  result.validated = true;
  result.decision =
      delta_validator_
          ? delta_validator_(result.raw_input, result.snapshot, &frame_delta_)
          : validator_(result.raw_input, result.snapshot);
  result.spans.push_back(span.End());
  if (!result.decision.accept) {
    HODOR_LOG(kWarning) << "epoch " << ctx.epoch
                        << ": input rejected: " << result.decision.reason;
    if (opts_.policy == RejectionPolicy::kFallbackToLastGood &&
        last_good_input_.has_value()) {
      ctx.st->chosen = &*last_good_input_;
      result.used_fallback = true;
    }
  }
}

// 5. Program routing from the chosen input.
void EpochEngine::StageProgram(StageContext& ctx) {
  obs::StageSpan span(obs::Stage::kProgram, ctx.epoch, opts_.metrics,
                      opts_.trace);
  installed_plan_ = controller_.ComputeRouting(*ctx.st->chosen);
  ctx.st->result.spans.push_back(span.End());
}

// 6. Outcome under the new plan.
void EpochEngine::StageMeasure(StageContext& ctx) {
  obs::StageSpan span(obs::Stage::kSimulate, ctx.epoch, opts_.metrics,
                      opts_.trace);
  ctx.st->result.outcome =
      flow::SimulateFlow(*topo_, *ctx.state, *ctx.demand, installed_plan_);
  ctx.st->result.metrics =
      flow::ComputeMetrics(*topo_, *ctx.demand, ctx.st->result.outcome);
  ctx.st->result.spans.push_back(span.End());
}

}  // namespace hodor::controlplane
