#include "obs/serve/http.h"

#include <cctype>
#include <sstream>

namespace hodor::obs {

namespace {

int HexValue(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

void ParseQueryInto(std::string_view qs,
                    std::map<std::string, std::string>& out) {
  std::size_t pos = 0;
  while (pos <= qs.size()) {
    const std::size_t amp = qs.find('&', pos);
    const std::string_view pair =
        qs.substr(pos, amp == std::string_view::npos ? qs.size() - pos
                                                     : amp - pos);
    if (!pair.empty()) {
      const std::size_t eq = pair.find('=');
      if (eq == std::string_view::npos) {
        out[UrlDecode(pair)] = "";
      } else {
        out[UrlDecode(pair.substr(0, eq))] = UrlDecode(pair.substr(eq + 1));
      }
    }
    if (amp == std::string_view::npos) break;
    pos = amp + 1;
  }
}

}  // namespace

std::string UrlDecode(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '+') {
      out += ' ';
    } else if (s[i] == '%' && i + 2 < s.size()) {
      const int hi = HexValue(s[i + 1]);
      const int lo = HexValue(s[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out += static_cast<char>(hi * 16 + lo);
        i += 2;
      } else {
        out += s[i];
      }
    } else {
      out += s[i];
    }
  }
  return out;
}

std::optional<HttpRequest> ParseHttpRequest(std::string_view head) {
  const std::size_t eol = head.find("\r\n");
  std::string_view line =
      eol == std::string_view::npos ? head : head.substr(0, eol);
  // Tolerate bare-LF clients (e.g. printf | nc).
  if (eol == std::string_view::npos) {
    const std::size_t lf = line.find('\n');
    if (lf != std::string_view::npos) line = line.substr(0, lf);
  }

  const std::size_t sp1 = line.find(' ');
  if (sp1 == std::string_view::npos || sp1 == 0) return std::nullopt;
  const std::size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string_view::npos || sp2 == sp1 + 1) return std::nullopt;

  const std::string_view version = line.substr(sp2 + 1);
  if (version.substr(0, 7) != "HTTP/1.") return std::nullopt;

  HttpRequest req;
  req.method = std::string(line.substr(0, sp1));
  for (char& c : req.method) {
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  req.target = std::string(line.substr(sp1 + 1, sp2 - sp1 - 1));
  if (req.target.empty() || req.target[0] != '/') return std::nullopt;

  const std::size_t qmark = req.target.find('?');
  if (qmark == std::string::npos) {
    req.path = req.target;
  } else {
    req.path = req.target.substr(0, qmark);
    ParseQueryInto(std::string_view(req.target).substr(qmark + 1), req.query);
  }
  return req;
}

const char* HttpStatusText(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 500: return "Internal Server Error";
  }
  return "Unknown";
}

std::string BuildHttpResponse(int status, std::string_view content_type,
                              std::string_view body,
                              std::string_view extra_headers) {
  std::ostringstream os;
  os << "HTTP/1.1 " << status << " " << HttpStatusText(status) << "\r\n"
     << "Content-Type: " << content_type << "\r\n"
     << "Content-Length: " << body.size() << "\r\n"
     << "Connection: close\r\n"
     << extra_headers << "\r\n"
     << body;
  return os.str();
}

}  // namespace hodor::obs
