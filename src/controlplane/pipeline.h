// The always-on control loop (paper §3: Hodor is envisioned as an always-on
// system validating inputs as the controller receives them).
//
// Each epoch:
//   1. traffic flows under the currently installed routing plan → the true
//      per-link rates that telemetry will report;
//   2. the Collector reads all router signals (router-level faults may
//      corrupt this snapshot);
//   3. the instrumentation services aggregate the controller's inputs
//      (aggregation-level faults may corrupt these);
//   4. an optional input validator inspects (input, snapshot) and a policy
//      decides: accept, or fall back to the last accepted input / alert;
//   5. the controller programs a new plan from the chosen input;
//   6. the true demand is simulated over the new plan → outcome metrics.
//
// The pipeline deliberately knows nothing about Hodor's internals: the
// validator is injected as a callback, so the same harness runs "no
// validation", "static checks", "anomaly detection", and "Hodor".
#pragma once

#include <functional>
#include <optional>
#include <string>

#include "controlplane/controller_input.h"
#include "controlplane/sdn_controller.h"
#include "controlplane/services.h"
#include "flow/metrics.h"
#include "flow/simulator.h"
#include "net/state.h"
#include "obs/provenance.h"
#include "obs/span.h"
#include "telemetry/collector.h"

namespace hodor::controlplane {

// What a validator decided about one epoch's inputs.
struct ValidationDecision {
  bool accept = true;
  std::string reason;  // operator-facing summary when rejected
  // Audit trail: which invariants were evaluated and which fired, with
  // residuals and thresholds. Filled by provenance-aware validators
  // (core::Validator::AsPipelineValidator); empty otherwise.
  obs::DecisionRecord provenance;
};

using InputValidatorFn = std::function<ValidationDecision(
    const ControllerInput&, const telemetry::NetworkSnapshot&)>;

struct EpochResult;

// Post-epoch hook: RunEpoch invokes it with the completed EpochResult just
// before returning. This is where the operability layer hangs off the
// pipeline — feeding a SignalHealthBoard, driving an AlertEngine,
// publishing snapshots to a TelemetryServer — without the pipeline
// depending on any of those types.
using EpochObserverFn = std::function<void(const EpochResult&)>;

// Flight-recorder hook: invoked with the completed EpochResult right after
// the epoch observer. Separate from EpochObserverFn so a run can both feed
// live telemetry and append to a replay::EpochLogWriter; the pipeline still
// sees only a plain std::function, never a replay type.
using EpochRecorderFn = std::function<void(const EpochResult&)>;

// What to do when the validator rejects an input (paper §3 step 3:
// "reject inputs that fail validation and fall back temporarily to the
// last input state, or trigger an alert").
enum class RejectionPolicy {
  kAlertOnly,           // log, but use the input anyway
  kFallbackToLastGood,  // reuse the last accepted input
};

struct PipelineOptions {
  telemetry::CollectorOptions collector;
  ControlInfraOptions infra;
  ControllerOptions controller;
  RejectionPolicy policy = RejectionPolicy::kFallbackToLastGood;

  // Observability. Stage spans (epoch, collect, aggregate, validate,
  // program, simulate) and epoch counters go to `metrics` (nullptr → the
  // process-global registry); `trace`, when given, receives every span as
  // a JSON-Lines record. Both propagate into the collector options unless
  // those already name a registry/trace.
  obs::MetricsRegistry* metrics = nullptr;
  obs::TraceWriter* trace = nullptr;
};

struct EpochResult {
  std::uint64_t epoch = 0;
  ControllerInput raw_input;           // as aggregated (possibly corrupted)
  bool validated = false;              // was a validator installed?
  ValidationDecision decision;
  bool used_fallback = false;          // rejected and replaced by last-good
  flow::NetworkMetrics metrics;        // outcome under the new plan
  flow::SimulationResult outcome;
  telemetry::NetworkSnapshot snapshot; // what the validator saw
  // Pipeline-level stage timings for this epoch (the validator's inner
  // harden/check-* spans go to the registry/trace only).
  std::vector<obs::SpanRecord> spans;
};

class Pipeline {
 public:
  Pipeline(const net::Topology& topo, PipelineOptions opts, util::Rng rng);

  // Installs an initial honest plan: SPF over the true usable topology for
  // the given demand. Call once before the first RunEpoch.
  void Bootstrap(const net::GroundTruthState& state,
                 const flow::DemandMatrix& true_demand);

  void SetValidator(InputValidatorFn validator) {
    validator_ = std::move(validator);
  }

  // Installs the post-epoch observability hook (see EpochObserverFn).
  void SetEpochObserver(EpochObserverFn observer) {
    epoch_observer_ = std::move(observer);
  }

  // Installs the flight-recorder hook (see EpochRecorderFn). Install an
  // empty function to detach a recorder that may be destroyed early.
  void SetEpochRecorder(EpochRecorderFn recorder) {
    epoch_recorder_ = std::move(recorder);
  }

  // Runs one epoch. `snapshot_fault` corrupts router telemetry (§2.1),
  // `aggregation_faults` corrupt service outputs (§2.2); both may be empty
  // for a healthy epoch.
  EpochResult RunEpoch(const net::GroundTruthState& state,
                       const flow::DemandMatrix& true_demand,
                       const telemetry::SnapshotMutator& snapshot_fault = nullptr,
                       const AggregationFaultHooks& aggregation_faults = {});

  const flow::RoutingPlan& installed_plan() const { return installed_plan_; }
  const std::optional<ControllerInput>& last_good_input() const {
    return last_good_input_;
  }

 private:
  const net::Topology* topo_;
  PipelineOptions opts_;
  util::Rng rng_;
  telemetry::Collector collector_;
  SdnController controller_;
  InputValidatorFn validator_;
  EpochObserverFn epoch_observer_;
  EpochRecorderFn epoch_recorder_;
  flow::RoutingPlan installed_plan_;
  std::optional<ControllerInput> last_good_input_;
  std::uint64_t next_epoch_ = 0;
  // Per-epoch telemetry workspace: CollectInto refills these columnar
  // buffers in place every epoch, so steady-state collection allocates
  // nothing. The EpochResult's snapshot is copied out of this scratch.
  telemetry::NetworkSnapshot scratch_snapshot_;
};

}  // namespace hodor::controlplane
