#include <gtest/gtest.h>

#include "core/drain_check.h"
#include "core/hardening.h"
#include "core/topology_check.h"
#include "faults/aggregation_faults.h"
#include "faults/snapshot_faults.h"
#include "test_util.h"

namespace hodor::core {
namespace {

using net::LinkId;
using net::NodeId;

struct CheckFixture : ::testing::Test {
  CheckFixture() : net(net::Abilene(), 33) {}

  HardenedState Harden() {
    telemetry::CollectorOptions copts;
    copts.probes.false_loss_rate = 0.0;
    return HardeningEngine().Harden(net.Snapshot(1, fault, copts));
  }

  controlplane::ControllerInput HonestInput() {
    telemetry::CollectorOptions copts;
    copts.probes.false_loss_rate = 0.0;
    return net.Input(net.Snapshot(1, fault, copts));
  }

  void Resimulate() {
    net.plan = flow::ShortestPathRouting(
        net.topo, net.demand,
        [this](LinkId e) { return net.state.LinkUsable(e); });
    net.sim = flow::SimulateFlow(net.topo, net.state, net.demand, net.plan);
  }

  testing::HealthyNetwork net;
  telemetry::SnapshotMutator fault;
};

// ---------- topology check -------------------------------------------------

TEST_F(CheckFixture, HonestTopologyInputPasses) {
  const auto input = HonestInput();
  const auto r = CheckTopology(net.topo, Harden(), input.link_available);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.checked_links, net.topo.link_count());
}

TEST_F(CheckFixture, MissingLinkViolation) {
  // Aggregation wrongly removes healthy links (liveness misreport).
  auto input = HonestInput();
  const LinkId victim = net.topo.LinkIds()[0];
  input.link_available[victim.value()] = false;
  input.link_available[net.topo.link(victim).reverse.value()] = false;
  const auto r = CheckTopology(net.topo, Harden(), input.link_available);
  ASSERT_EQ(r.violations.size(), 2u);  // both directions
  EXPECT_EQ(r.violations[0].kind, TopologyViolationKind::kMissingLink);
  EXPECT_NE(r.violations[0].ToString(net.topo).find("missing link"),
            std::string::npos);
}

TEST_F(CheckFixture, PhantomLinkViolation) {
  // A physically dead link presented as available.
  const LinkId victim = net.topo.LinkIds()[4];
  net.state.SetLinkUp(victim, false);
  Resimulate();
  auto input = HonestInput();  // honest service marks it down...
  controlplane::AggregationFaultHooks hooks;
  hooks.topology =
      faults::LinksMarkedUp(net.topo, {victim});  // ...the bug restores it
  hooks.topology(input.link_available);
  const auto r = CheckTopology(net.topo, Harden(), input.link_available);
  ASSERT_GE(r.violations.size(), 2u);
  for (const auto& v : r.violations) {
    EXPECT_EQ(v.kind, TopologyViolationKind::kPhantomLink);
  }
}

TEST_F(CheckFixture, LowConfidenceVerdictsSkipped) {
  auto input = HonestInput();
  HardenedState hs = Harden();
  hs.links[0].confidence = 0.1;  // force one verdict below threshold
  TopologyCheckOptions opts;
  opts.min_confidence = 0.5;
  const auto r = CheckTopology(net.topo, hs, input.link_available, opts);
  EXPECT_EQ(r.unknown_links, 1u);
  EXPECT_EQ(r.checked_links, net.topo.link_count() - 1);
}

TEST_F(CheckFixture, SizeMismatchRejected) {
  const HardenedState hs = Harden();
  std::vector<bool> wrong(3, true);
  EXPECT_THROW(CheckTopology(net.topo, hs, wrong), std::logic_error);
}

// ---------- drain check ------------------------------------------------------

TEST_F(CheckFixture, HonestDrainInputPasses) {
  const NodeId drained = net.topo.NodeIds()[2];
  net.state.SetNodeDrained(drained, true);
  Resimulate();
  const auto input = HonestInput();
  EXPECT_TRUE(input.node_drained[drained.value()]);
  const auto r = CheckDrains(net.topo, Harden(), input.node_drained,
                             input.link_drained);
  EXPECT_TRUE(r.ok());
}

TEST_F(CheckFixture, IgnoredDrainViolation) {
  // Router reports drained; the aggregation drops it (§2.2 outage).
  const NodeId drained = net.topo.NodeIds()[2];
  net.state.SetNodeDrained(drained, true);
  Resimulate();
  auto input = HonestInput();
  faults::DrainsDropped()(input.node_drained, input.link_drained);
  const auto r = CheckDrains(net.topo, Harden(), input.node_drained,
                             input.link_drained);
  ASSERT_EQ(r.violations.size(), 1u);
  EXPECT_EQ(r.violations[0].kind, DrainViolationKind::kInputIgnoresDrain);
  EXPECT_EQ(r.violations[0].node, drained);
}

TEST_F(CheckFixture, InventedDrainViolation) {
  auto input = HonestInput();
  const NodeId victim = net.topo.NodeIds()[5];
  faults::DrainsInvented({victim})(input.node_drained, input.link_drained);
  const auto r = CheckDrains(net.topo, Harden(), input.node_drained,
                             input.link_drained);
  ASSERT_EQ(r.violations.size(), 1u);
  EXPECT_EQ(r.violations[0].kind, DrainViolationKind::kInputInventsDrain);
}

TEST_F(CheckFixture, UndrainedDeadRouterDetectedViaProbes) {
  // §4.3 case 1 + wrong drain signal: the router is dead, statuses stay up,
  // the drain signal lies "undrained".
  const NodeId victim = net.topo.NodeIds()[3];
  net.state.SetNodeDrained(victim, true);       // operator intent
  net.state.SetNodeForwarding(victim, false);   // actually dead
  Resimulate();
  fault = faults::WrongDrainSignal(victim, false);  // the lying signal
  const auto input = HonestInput();
  EXPECT_FALSE(input.node_drained[victim.value()]);  // input ignores drain
  const auto r = CheckDrains(net.topo, Harden(), input.node_drained,
                             input.link_drained);
  bool found = false;
  for (const auto& v : r.violations) {
    if (v.kind == DrainViolationKind::kUndrainedDeadRouter &&
        v.node == victim) {
      found = true;
      EXPECT_NE(v.ToString(net.topo).find("cannot carry traffic"),
                std::string::npos);
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(CheckFixture, DrainedButActiveIsWarningNotViolation) {
  // §4.3 case 2: signal claims drained while traffic still flows — possibly
  // legitimate (pre-emptive drain), so only a warning.
  const NodeId victim = net.topo.NodeIds()[1];
  fault = faults::WrongDrainSignal(victim, true);
  const auto input = HonestInput();
  const auto r = CheckDrains(net.topo, Harden(), input.node_drained,
                             input.link_drained);
  // Input is consistent with the (lying) signal, so no violation, but the
  // router is visibly carrying traffic.
  EXPECT_TRUE(r.ok());
  ASSERT_EQ(r.warnings_drained_but_active.size(), 1u);
  EXPECT_EQ(r.warnings_drained_but_active[0], victim);
}

TEST_F(CheckFixture, LinkDrainAsymmetryViolation) {
  const LinkId victim = net.topo.LinkIds()[6];
  fault = faults::AsymmetricLinkDrain(victim);
  const auto input = HonestInput();
  const auto r = CheckDrains(net.topo, Harden(), input.node_drained,
                             input.link_drained);
  bool found = false;
  for (const auto& v : r.violations) {
    if (v.kind == DrainViolationKind::kDrainAsymmetry) {
      found = true;
      EXPECT_NE(v.ToString(net.topo).find("asymmetry"), std::string::npos);
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(CheckFixture, HonestLinkDrainPasses) {
  const LinkId drained = net.topo.LinkIds()[8];
  net.state.SetLinkDrained(drained, true);
  Resimulate();
  const auto input = HonestInput();
  EXPECT_TRUE(input.link_drained[drained.value()]);
  const auto r = CheckDrains(net.topo, Harden(), input.node_drained,
                             input.link_drained);
  EXPECT_TRUE(r.ok());
}

}  // namespace
}  // namespace hodor::core
