#include "flow/simulator.h"

#include <algorithm>
#include <cmath>

namespace hodor::flow {

SimulationResult SimulateFlow(const net::Topology& topo,
                              const net::GroundTruthState& state,
                              const DemandMatrix& true_demand,
                              const RoutingPlan& plan,
                              const SimulatorOptions& opts) {
  HODOR_CHECK(true_demand.node_count() == topo.node_count());
  const std::size_t num_links = topo.link_count();
  const std::size_t num_nodes = topo.node_count();

  SimulationResult res;
  res.delivered = DemandMatrix(num_nodes);

  // Admission at ingress: a pair's traffic is admitted only when the
  // ingress router forwards, is undrained, and the plan routes the pair.
  // Row demand beyond the external port capacity is shed proportionally.
  struct AdmittedFlow {
    net::NodeId src, dst;
    double rate;
  };
  std::vector<AdmittedFlow> flows;
  std::vector<double> row_admit_scale(num_nodes, 1.0);
  for (const net::Node& node : topo.nodes()) {
    if (!node.has_external_port) continue;
    const double row = true_demand.RowSum(node.id);
    if (row > node.external_capacity && row > 0.0) {
      row_admit_scale[node.id.value()] = node.external_capacity / row;
    }
  }
  for (const auto& [src, dst] : true_demand.Pairs()) {
    const double want = true_demand.At(src, dst);
    const bool ingress_ok = state.node_forwarding(src) &&
                            !state.node_drained(src);
    if (!ingress_ok || !plan.HasRoute(src, dst)) {
      res.unrouted_gbps += want;
      continue;
    }
    const double rate = want * row_admit_scale[src.value()];
    res.unrouted_gbps += want - rate;
    if (rate > 0.0) flows.push_back(AdmittedFlow{src, dst, rate});
  }

  // Fixed-point iteration on per-link pass-through factors.
  std::vector<double> factor(num_links, 1.0);
  for (net::LinkId lid : topo.LinkIds()) {
    if (!state.LinkPhysicallyUsable(lid)) factor[lid.value()] = 0.0;
  }

  std::vector<double> arriving(num_links, 0.0);
  std::vector<double> ext_out(num_nodes, 0.0);
  DemandMatrix delivered(num_nodes);

  for (std::size_t iter = 0; iter < opts.max_iterations; ++iter) {
    std::fill(arriving.begin(), arriving.end(), 0.0);
    std::fill(ext_out.begin(), ext_out.end(), 0.0);
    delivered = DemandMatrix(num_nodes);

    for (const AdmittedFlow& f : flows) {
      for (const WeightedPath& wp : plan.PathsFor(f.src, f.dst)) {
        double x = f.rate * wp.weight;
        for (net::LinkId lid : wp.path) {
          arriving[lid.value()] += x;
          x *= factor[lid.value()];
          if (x <= 0.0) break;
        }
        if (x > 0.0) {
          ext_out[f.dst.value()] += x;
          delivered.Set(f.src, f.dst, delivered.At(f.src, f.dst) + x);
        }
      }
    }

    double worst_change = 0.0;
    for (net::LinkId lid : topo.LinkIds()) {
      double nf;
      if (!state.LinkPhysicallyUsable(lid)) {
        nf = 0.0;
      } else if (arriving[lid.value()] <= topo.link(lid).capacity) {
        nf = 1.0;
      } else {
        nf = topo.link(lid).capacity / arriving[lid.value()];
      }
      worst_change = std::max(worst_change,
                              std::fabs(nf - factor[lid.value()]));
      factor[lid.value()] = nf;
    }
    if (worst_change < opts.convergence_eps) break;
  }

  // Final accounting pass with converged factors.
  std::fill(arriving.begin(), arriving.end(), 0.0);
  std::fill(ext_out.begin(), ext_out.end(), 0.0);
  delivered = DemandMatrix(num_nodes);
  std::vector<double> ext_in(num_nodes, 0.0);
  for (const AdmittedFlow& f : flows) {
    ext_in[f.src.value()] += f.rate;
    for (const WeightedPath& wp : plan.PathsFor(f.src, f.dst)) {
      double x = f.rate * wp.weight;
      for (net::LinkId lid : wp.path) {
        arriving[lid.value()] += x;
        x *= factor[lid.value()];
        if (x <= 0.0) break;
      }
      if (x > 0.0) {
        ext_out[f.dst.value()] += x;
        delivered.Set(f.src, f.dst, delivered.At(f.src, f.dst) + x);
      }
    }
  }

  res.arriving = arriving;
  res.carried.assign(num_links, 0.0);
  res.dropped.assign(num_links, 0.0);
  for (std::size_t e = 0; e < num_links; ++e) {
    res.carried[e] = arriving[e] * factor[e];
    res.dropped[e] = arriving[e] - res.carried[e];
    res.total_dropped_gbps += res.dropped[e];
  }
  res.ext_in = std::move(ext_in);
  res.ext_out = ext_out;
  res.delivered = std::move(delivered);
  for (double x : res.ext_in) res.total_admitted_gbps += x;
  for (double x : ext_out) res.total_delivered_gbps += x;
  return res;
}

}  // namespace hodor::flow
