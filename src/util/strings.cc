#include "util/strings.h"

#include <cctype>
#include <cstdio>
#include <iomanip>

namespace hodor::util {

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string Trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

std::string FormatDouble(double x, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << x;
  return os.str();
}

std::string FormatPercent(double fraction, int precision) {
  return FormatDouble(fraction * 100.0, precision) + "%";
}

std::string FormatHex64(std::uint64_t value) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(value));
  return std::string(buf);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

}  // namespace hodor::util
