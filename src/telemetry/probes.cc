#include "telemetry/probes.h"

namespace hodor::telemetry {

void ProbeAllLinksInto(const net::Topology& topo,
                       const net::GroundTruthState& state,
                       const ProbeOptions& opts, util::Rng& rng,
                       std::vector<ProbeResult>& out) {
  HODOR_CHECK(opts.attempts >= 1);
  HODOR_CHECK(opts.false_loss_rate >= 0.0 && opts.false_loss_rate < 1.0);
  out.clear();
  out.reserve(topo.link_count());
  for (std::uint32_t i = 0; i < topo.link_count(); ++i) {
    const net::LinkId e(i);
    ProbeResult res;
    res.link = e;
    if (state.LinkPhysicallyUsable(e)) {
      // Healthy link: succeeds unless every attempt is falsely lost.
      bool ok = false;
      for (int a = 0; a < opts.attempts && !ok; ++a) {
        ok = !rng.Bernoulli(opts.false_loss_rate);
      }
      res.success = ok;
    } else {
      res.success = false;
    }
    out.push_back(res);
  }
}

std::vector<ProbeResult> ProbeAllLinks(const net::Topology& topo,
                                       const net::GroundTruthState& state,
                                       const ProbeOptions& opts,
                                       util::Rng& rng) {
  std::vector<ProbeResult> out;
  ProbeAllLinksInto(topo, state, opts, rng, out);
  return out;
}

}  // namespace hodor::telemetry
