# Empty dependencies file for bench_hardening.
# This may be replaced when dependencies are built.
