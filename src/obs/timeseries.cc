#include "obs/timeseries.h"

#include <algorithm>
#include <sstream>

#include "obs/json.h"
#include "util/status.h"

namespace hodor::obs {

namespace {

const char* KindName(SampleKind kind) {
  switch (kind) {
    case SampleKind::kCounter: return "counter";
    case SampleKind::kGauge: return "gauge";
    case SampleKind::kHistogramCount: return "histogram_count";
    case SampleKind::kHistogramSum: return "histogram_sum";
  }
  return "?";
}

const char* KindSuffix(SampleKind kind) {
  switch (kind) {
    case SampleKind::kHistogramCount: return "_count";
    case SampleKind::kHistogramSum: return "_sum";
    default: return "";
  }
}

std::string DisplayName(const std::string& name, const std::string& label_key,
                        SampleKind kind) {
  std::string display = name;
  display += KindSuffix(kind);
  if (!label_key.empty()) {
    display += "{";
    display += label_key;
    display += "}";
  }
  return display;
}

}  // namespace

bool MatchGlob(const std::string& pattern, const std::string& text) {
  // Iterative wildcard match with one backtrack point (the last `*`).
  std::size_t p = 0, t = 0;
  std::size_t star = std::string::npos, mark = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '?' || pattern[p] == text[t])) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      mark = t;
    } else if (star != std::string::npos) {
      p = star + 1;
      t = ++mark;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

TimeSeriesStore::TimeSeriesStore(TimeSeriesOptions opts)
    : opts_(std::move(opts)) {
  HODOR_CHECK_MSG(opts_.raw_capacity > 0, "raw_capacity must be positive");
  HODOR_CHECK_MSG(opts_.agg_capacity > 0, "agg_capacity must be positive");
  std::size_t prev = 1;
  for (std::size_t stride : opts_.strides) {
    HODOR_CHECK_MSG(stride > prev,
                    "strides must be > 1 and strictly increasing");
    prev = stride;
  }
}

TimeSeriesStore::SeriesData* TimeSeriesStore::FindOrCreateLocked(
    const std::string& name, const std::string& label_key, SampleKind kind) {
  auto& by_label = families_[name];
  LabelEntry& entry = by_label[label_key];
  std::optional<SeriesData>& slot = entry.slots[static_cast<int>(kind)];
  if (!slot) {
    if (series_count_ >= opts_.max_series) {
      ++dropped_series_;
      return nullptr;
    }
    slot.emplace();
    slot->display_name = DisplayName(name, label_key, kind);
    slot->kind = kind;
    slot->raw.Reset(opts_.raw_capacity);
    slot->aggs.resize(opts_.strides.size());
    for (std::size_t i = 0; i < opts_.strides.size(); ++i) {
      slot->aggs[i].stride = opts_.strides[i];
      slot->aggs[i].ring.Reset(opts_.agg_capacity);
    }
    ++series_count_;
  }
  return &*slot;
}

void TimeSeriesStore::FoldLocked(SeriesData& series, std::uint64_t epoch,
                                 double value) {
  series.raw.Push({epoch, value});
  for (AggTrack& track : series.aggs) {
    TimeSeriesBucket& open = track.open;
    if (open.count == 0) {
      open.first_epoch = epoch;
      open.min = open.max = open.last = value;
      open.sum = value;
      open.count = 1;
    } else {
      open.min = std::min(open.min, value);
      open.max = std::max(open.max, value);
      open.sum += value;
      open.last = value;
      ++open.count;
    }
    if (open.count >= track.stride) {
      track.ring.Push(open);
      open = TimeSeriesBucket{};
    }
  }
}

void TimeSeriesStore::Sample(std::uint64_t epoch,
                             const MetricsRegistry& registry) {
  const std::lock_guard<std::mutex> lock(mu_);
  registry.VisitSamples([&](const std::string& name,
                            const std::string& label_key, SampleKind kind,
                            double value) {
    SeriesData* series = FindOrCreateLocked(name, label_key, kind);
    if (series != nullptr) FoldLocked(*series, epoch, value);
  });
  ++epochs_sampled_;
}

bool TimeSeriesStore::HasResolution(const std::string& res) const {
  if (res == "raw") return true;
  for (std::size_t stride : opts_.strides) {
    if (res == std::to_string(stride)) return true;
  }
  return false;
}

const TimeSeriesStore::SeriesData* TimeSeriesStore::FindByDisplayNameLocked(
    const std::string& display_name) const {
  for (const auto& [name, by_label] : families_) {
    for (const auto& [key, entry] : by_label) {
      for (const std::optional<SeriesData>& slot : entry.slots) {
        if (slot && slot->display_name == display_name) return &*slot;
      }
    }
  }
  return nullptr;
}

std::vector<TimeSeriesPoint> TimeSeriesStore::RawPoints(
    const std::string& display_name) const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<TimeSeriesPoint> out;
  const SeriesData* series = FindByDisplayNameLocked(display_name);
  if (series == nullptr) return out;
  out.reserve(series->raw.size());
  for (std::size_t i = 0; i < series->raw.size(); ++i) {
    out.push_back(series->raw.At(i));
  }
  return out;
}

std::vector<TimeSeriesBucket> TimeSeriesStore::Buckets(
    const std::string& display_name, std::size_t stride) const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<TimeSeriesBucket> out;
  const SeriesData* series = FindByDisplayNameLocked(display_name);
  if (series == nullptr) return out;
  for (const AggTrack& track : series->aggs) {
    if (track.stride != stride) continue;
    out.reserve(track.ring.size() + 1);
    for (std::size_t i = 0; i < track.ring.size(); ++i) {
      out.push_back(track.ring.At(i));
    }
    if (track.open.count > 0) out.push_back(track.open);
  }
  return out;
}

std::size_t TimeSeriesStore::series_count() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return series_count_;
}

std::uint64_t TimeSeriesStore::epochs_sampled() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return epochs_sampled_;
}

std::uint64_t TimeSeriesStore::dropped_series() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return dropped_series_;
}

std::string TimeSeriesStore::QueryJson(const TimeSeriesQuery& query) const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::size_t stride = 1;
  if (query.resolution != "raw") {
    stride = static_cast<std::size_t>(std::stoul(query.resolution));
  }
  std::ostringstream os;
  os << "{\"resolution\":\"" << JsonEscape(query.resolution)
     << "\",\"stride\":" << stride << ",\"last\":" << query.last
     << ",\"epochs_sampled\":" << epochs_sampled_
     << ",\"series_total\":" << series_count_
     << ",\"dropped_series\":" << dropped_series_ << ",\"series\":[";
  bool first_series = true;
  for (const auto& [name, by_label] : families_) {
    for (const auto& [key, entry] : by_label) {
      for (const std::optional<SeriesData>& slot : entry.slots) {
        if (!slot || !MatchGlob(query.series, slot->display_name)) continue;
        if (!first_series) os << ",";
        first_series = false;
        os << "{\"name\":\"" << JsonEscape(slot->display_name)
           << "\",\"kind\":\"" << KindName(slot->kind) << "\",\"points\":[";
        if (stride == 1) {
          const auto& ring = slot->raw;
          std::size_t begin = 0;
          if (query.last > 0 && query.last < ring.size()) {
            begin = ring.size() - query.last;
          }
          for (std::size_t i = begin; i < ring.size(); ++i) {
            const TimeSeriesPoint& p = ring.At(i);
            if (i != begin) os << ",";
            os << "[" << p.epoch << "," << JsonNumber(p.value) << "]";
          }
        } else {
          for (const AggTrack& track : slot->aggs) {
            if (track.stride != stride) continue;
            // Closed buckets plus the open partial one (count < stride
            // marks it), so short runs still answer at every resolution.
            const std::size_t open = track.open.count > 0 ? 1 : 0;
            const std::size_t total = track.ring.size() + open;
            std::size_t begin = 0;
            if (query.last > 0 && query.last < total) {
              begin = total - query.last;
            }
            bool first_point = true;
            for (std::size_t i = begin; i < total; ++i) {
              const TimeSeriesBucket& b =
                  i < track.ring.size() ? track.ring.At(i) : track.open;
              if (!first_point) os << ",";
              first_point = false;
              os << "[" << b.first_epoch << "," << JsonNumber(b.min) << ","
                 << JsonNumber(b.max) << "," << JsonNumber(b.mean()) << ","
                 << JsonNumber(b.last) << "," << b.count << "]";
            }
          }
        }
        os << "]}";
      }
    }
  }
  os << "]}";
  return os.str();
}

}  // namespace hodor::obs
