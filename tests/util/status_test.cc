#include "util/status.h"

#include <gtest/gtest.h>

namespace hodor::util {
namespace {

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "Ok");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status s = InvalidArgumentError("bad thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad thing");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad thing");
}

TEST(Status, FactoryFunctionsProduceMatchingCodes) {
  EXPECT_EQ(NotFoundError("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(FailedPreconditionError("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(OutOfRangeError("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(UnavailableError("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(InternalError("x").code(), StatusCode::kInternal);
}

TEST(Status, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(InvalidArgumentError("a"), InvalidArgumentError("a"));
  EXPECT_FALSE(InvalidArgumentError("a") == InvalidArgumentError("b"));
  EXPECT_FALSE(InvalidArgumentError("a") == NotFoundError("a"));
}

TEST(StatusCodeName, CoversAllCodes) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "Ok");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "Internal");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnavailable), "Unavailable");
}

TEST(StatusOr, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
}

TEST(StatusOr, HoldsError) {
  StatusOr<int> v = NotFoundError("missing");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOr, ValueOnErrorThrows) {
  StatusOr<int> v = NotFoundError("missing");
  EXPECT_THROW(v.value(), std::logic_error);
}

TEST(StatusOr, ConstructingFromOkStatusThrows) {
  EXPECT_THROW(StatusOr<int>{Status::Ok()}, std::logic_error);
}

TEST(StatusOr, ValueOrFallsBack) {
  StatusOr<int> err = NotFoundError("missing");
  EXPECT_EQ(err.value_or(7), 7);
  StatusOr<int> ok = 3;
  EXPECT_EQ(ok.value_or(7), 3);
}

TEST(StatusOr, MoveOutValue) {
  StatusOr<std::string> v = std::string("hello");
  std::string s = std::move(v).value();
  EXPECT_EQ(s, "hello");
}

TEST(Check, ThrowsOnFailure) {
  EXPECT_THROW(HODOR_CHECK(false), std::logic_error);
  EXPECT_NO_THROW(HODOR_CHECK(true));
}

TEST(Check, MessageIncludesExpressionAndExtra) {
  try {
    HODOR_CHECK_MSG(1 == 2, "math broke");
    FAIL() << "expected throw";
  } catch (const std::logic_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("math broke"), std::string::npos);
  }
}

Status FailsThenPropagates() {
  HODOR_RETURN_IF_ERROR(InvalidArgumentError("inner"));
  return Status::Ok();
}

TEST(ReturnIfError, PropagatesError) {
  Status s = FailsThenPropagates();
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.message(), "inner");
}

}  // namespace
}  // namespace hodor::util
