#include "core/topology_check.h"

#include <sstream>

#include "util/status.h"
#include "util/strings.h"

namespace hodor::core {

std::string TopologyViolation::ToString(const net::Topology& topo) const {
  std::ostringstream os;
  os << (kind == TopologyViolationKind::kPhantomLink ? "phantom link "
                                                     : "missing link ")
     << topo.LinkName(link) << " (verdict confidence "
     << util::FormatPercent(confidence, 0) << ")";
  return os.str();
}

TopologyCheckResult CheckTopology(const net::Topology& topo,
                                  const HardenedState& hardened,
                                  const std::vector<bool>& link_available,
                                  const TopologyCheckOptions& opts) {
  HODOR_CHECK(link_available.size() == topo.link_count());
  TopologyCheckResult result;
  for (net::LinkId e : topo.LinkIds()) {
    const HardenedLinkState& hl = hardened.links[e.value()];
    if (hl.verdict == LinkVerdict::kUnknown ||
        hl.confidence < opts.min_confidence) {
      ++result.unknown_links;
      continue;
    }
    ++result.checked_links;
    const bool input_up = link_available[e.value()];
    const bool hardened_up = hl.verdict == LinkVerdict::kUp;
    if (input_up && !hardened_up) {
      result.violations.push_back(TopologyViolation{
          e, TopologyViolationKind::kPhantomLink, hl.confidence});
    } else if (!input_up && hardened_up) {
      result.violations.push_back(TopologyViolation{
          e, TopologyViolationKind::kMissingLink, hl.confidence});
    }
  }
  return result;
}

}  // namespace hodor::core
