// Router-side self-correction — the §6 future direction implemented:
//
//   "a router may exchange interface counters with its neighboring
//    routers, in order to detect and self-correct anomalies in its
//    reported data."
//
// Each router compares every interface counter with the neighbour's
// counterpart measurement of the same link. On a mismatch it arbitrates
// with its *local* flow-conservation equation (it knows its own other
// counters, external rates, and drops): if its own value breaks local
// conservation while the neighbour's fits, it adopts the neighbour's value
// before exporting telemetry. This pushes a slice of Hodor's hardening
// into the routers themselves, so the control plane receives cleaner
// signals in the first place.
//
// Applied as a snapshot transform after fault injection: the "exchange"
// happens between the routers' (possibly corrupted) reported values.
#pragma once

#include <cstddef>

#include "telemetry/collector.h"
#include "telemetry/snapshot.h"

namespace hodor::telemetry {

struct SelfCorrectionOptions {
  // Mismatch threshold between the two ends' measurements (same role as
  // the hardener's τ_h).
  double mismatch_tau = 0.02;
  // A candidate fits local conservation when the relative residual is
  // below this.
  double conservation_tau = 0.02;
};

struct SelfCorrectionStats {
  std::size_t mismatched_pairs = 0;  // counter pairs that disagreed
  std::size_t corrected = 0;         // values overwritten at the source
  std::size_t unresolved = 0;        // mismatch left for downstream hardening
};

// Runs one round of neighbour counter exchange across the whole network,
// mutating `snapshot` in place. Returns what was fixed.
SelfCorrectionStats SelfCorrectSnapshot(NetworkSnapshot& snapshot,
                                        const SelfCorrectionOptions& opts = {});

// Wraps SelfCorrectSnapshot as a collector mutator stage; compose it after
// the fault mutator to model routers that self-correct before export.
SnapshotMutator SelfCorrectionStage(const SelfCorrectionOptions& opts = {});

}  // namespace hodor::telemetry
