// Dense row-major matrix of doubles, sized for control-plane scale
// (hundreds of routers, not millions), plus the small set of operations the
// hardening math needs: products, transpose, rank, and row reduction.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "util/status.h"

namespace hodor::util {

class Matrix {
 public:
  Matrix() = default;
  // Creates a rows x cols matrix filled with `fill`.
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  static Matrix Identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  double& At(std::size_t r, std::size_t c);
  double At(std::size_t r, std::size_t c) const;

  double& operator()(std::size_t r, std::size_t c) { return At(r, c); }
  double operator()(std::size_t r, std::size_t c) const { return At(r, c); }

  Matrix Transpose() const;

  // Matrix product; preconditions checked.
  Matrix Multiply(const Matrix& other) const;

  // Matrix-vector product. Precondition: v.size() == cols().
  std::vector<double> Apply(const std::vector<double>& v) const;

  // Numerical rank via Gaussian elimination with partial pivoting.
  // Entries with magnitude below `tol` after elimination count as zero.
  std::size_t Rank(double tol = 1e-9) const;

  // Frobenius norm.
  double FrobeniusNorm() const;

  // Element-wise near-equality within absolute tolerance.
  bool AlmostEqual(const Matrix& other, double tol = 1e-9) const;

  // Multi-line human-readable rendering (debugging and examples).
  std::string ToString(int precision = 3) const;

  const std::vector<double>& data() const { return data_; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace hodor::util
