// E16 — confidence-calibrated τ sweep (§4.1 curve with confidence bands).
//
// Reproduces the §4.1 detection-rate-vs-τ_e curve twice — once with the
// fixed tolerance the paper sweeps, once with CrossCheck-style
// confidence-scaled tolerances τ_eff(v) = τ_e·(1 + α·(1 − c(v))) — and
// adds a telemetry-degradation arm that measures false positives on an
// HONEST demand matrix when a few routers report drifted external
// counters with their drop counters missing. Low scalar confidence at
// exactly those routers widens τ_eff and absorbs the drift; the fixed
// threshold fires on it.
//
// Claims gated (exit 1 on violation, making this the --confidence-gate
// smoke in scripts/check_build.sh):
//   1. detection falls (weakly) as τ_e widens — the §4.1 shape;
//   2. confidence scaling keeps detection within a band of fixed-τ
//      detection (tight at the paper's τ_e <= 2% operating range, where
//      clean telemetry → c ≈ 1 → τ_eff ≈ τ; coarse on the wide-τ tail);
//   3. at equal detection, the scaled arm's false-positive rate under
//      degraded telemetry is no worse everywhere and strictly lower at
//      the paper's τ_e = 2% operating point.
//
// `--quick` shrinks to 3 τ points and fewer trials for the CI gate.
#include <cmath>
#include <cstring>
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "core/demand_check.h"
#include "faults/demand_perturbations.h"
#include "util/strings.h"

int main(int argc, char** argv) {
  using namespace hodor;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  const int kTrials = quick ? 120 : 400;
  constexpr std::uint64_t kBaseSeed = 16000;
  // The scaled arm's α. The default DemandCheckOptions::confidence_scaling
  // is a conservative 1.0; the sweep uses a wider α so the separation
  // between the arms is visible at every τ point.
  constexpr double kAlpha = 4.0;
  constexpr int kDriftRouters = 3;

  const std::vector<double> taus =
      quick ? std::vector<double>{0.01, 0.02, 0.05}
            : std::vector<double>{0.005, 0.01, 0.02, 0.05, 0.10};

  bench::PrintHeader(
      "E16", "§4.1 τ-sweep with confidence-scaled tolerances",
      "abilene, gravity TMs, trials=" + std::to_string(kTrials) +
          "/cell, base_seed=" + std::to_string(kBaseSeed) +
          ", alpha=" + util::FormatDouble(kAlpha, 1) +
          ", fault: halve 3 TM entries; degradation: ext drift "
          "2.5-5% + dropped counter lost at " +
          std::to_string(kDriftRouters) + " routers");

  // Per-trial fixtures, computed once and reused across every (τ, arm)
  // cell: a clean hardened state, the perturbed demand it should reject,
  // and a hardened state over degraded telemetry whose honest demand it
  // should still accept.
  const auto copts = bench::DefaultCollector();
  std::vector<bench::Trial> trials;
  std::vector<core::HardenedState> clean;     // honest telemetry
  std::vector<core::HardenedState> degraded;  // drifted ext counters
  std::vector<flow::DemandMatrix> perturbed;  // corrupted controller input
  trials.reserve(kTrials);
  const core::HardeningEngine engine;
  for (int i = 0; i < kTrials; ++i) {
    trials.emplace_back(net::Abilene(), kBaseSeed + i, 0.5, copts);
    const bench::Trial& t = trials.back();
    clean.push_back(engine.Harden(t.snapshot));

    util::Rng prng(kBaseSeed + 31 * i + 7);
    perturbed.push_back(faults::ScaleEntries(t.demand, 3, 0.5, prng).matrix);

    // Degrade telemetry at kDriftRouters external routers: external
    // counters drift by a factor (1 ± δ), δ ∈ [2.5%, 5%], and the drop
    // counter goes missing — so ScalarConfidence at those routers is 0
    // (required scalar absent) while the honest demand now misses the
    // drifted counter by ~δ.
    telemetry::NetworkSnapshot snap = t.snapshot;
    util::Rng drng(kBaseSeed + 113 * i + 3);
    const auto externals = t.topo.ExternalNodes();
    for (int k = 0; k < kDriftRouters; ++k) {
      const net::NodeId v = externals[static_cast<std::size_t>(
          drng.UniformInt(0, static_cast<std::int64_t>(externals.size()) - 1))];
      const double delta = drng.Uniform(0.025, 0.05);
      const double factor = drng.Bernoulli(0.5) ? 1.0 + delta : 1.0 - delta;
      if (const auto ei = snap.frame().ExtInRate(v)) {
        snap.frame().SetExtInRate(v, *ei * factor);
      }
      if (const auto eo = snap.frame().ExtOutRate(v)) {
        snap.frame().SetExtOutRate(v, *eo * factor);
      }
      snap.frame().ClearDroppedRate(v);
    }
    degraded.push_back(engine.Harden(snap));
  }

  struct Cell {
    double det_fixed = 0.0, det_scaled = 0.0;
    double fp_fixed = 0.0, fp_scaled = 0.0;
  };
  auto rate = [&](double tau, double alpha,
                  const std::vector<core::HardenedState>& hs,
                  const std::vector<flow::DemandMatrix>* inputs) {
    core::DemandCheckOptions opts;
    opts.tau_e = tau;
    opts.confidence_scaling = alpha;
    int fired = 0;
    for (int i = 0; i < kTrials; ++i) {
      const flow::DemandMatrix& input =
          inputs ? (*inputs)[i] : trials[i].demand;
      if (!core::CheckDemand(trials[i].topo, hs[i], input, opts).ok()) {
        ++fired;
      }
    }
    return static_cast<double>(fired) / kTrials;
  };
  // Normal-approximation 95% band over kTrials Bernoulli trials.
  auto band = [&](double p) {
    return 1.96 * std::sqrt(p * (1.0 - p) / kTrials);
  };
  auto cell = [&](double p) {
    return util::FormatPercent(p, 1) + " ±" + util::FormatPercent(band(p), 1);
  };

  std::vector<Cell> cells;
  util::TablePrinter table({"tau_e", "detect fixed", "detect scaled",
                            "fp fixed", "fp scaled"});
  for (double tau : taus) {
    Cell c;
    c.det_fixed = rate(tau, 0.0, clean, &perturbed);
    c.det_scaled = rate(tau, kAlpha, clean, &perturbed);
    c.fp_fixed = rate(tau, 0.0, degraded, nullptr);
    c.fp_scaled = rate(tau, kAlpha, degraded, nullptr);
    cells.push_back(c);
    table.AddRow({util::FormatPercent(tau, 1), cell(c.det_fixed),
                  cell(c.det_scaled), cell(c.fp_fixed), cell(c.fp_scaled)});
  }
  std::cout << table.ToString();
  std::cout << "\nreading: detection falls as tau_e widens (§4.1 shape); "
               "the scaled arm tracks fixed-τ detection on clean telemetry\n"
               "but suppresses the drifted-counter false positives that "
               "fixed tau_e fires on degraded telemetry.\n";

  // --- self-gate --------------------------------------------------------
  int violations = 0;
  auto check = [&](bool ok, const std::string& what) {
    if (ok) return;
    ++violations;
    std::cout << "GATE VIOLATION: " << what << "\n";
  };
  for (std::size_t i = 0; i + 1 < cells.size(); ++i) {
    check(cells[i + 1].det_fixed <= cells[i].det_fixed + 0.02,
          "detection rose from tau_e=" + util::FormatPercent(taus[i], 1) +
              " to " + util::FormatPercent(taus[i + 1], 1));
  }
  bool strictly_lower_somewhere = false;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const std::string at = " at tau_e=" + util::FormatPercent(taus[i], 1);
    // Tracking band: tight inside the paper's operating range (τ_e <= 2%,
    // where clean-telemetry confidence ≈ 1 keeps τ_eff ≈ τ_e), coarse on
    // the wide-τ tail where the detection curve is steep and the residual
    // jitter-driven confidence shortfall is amplified.
    const double track_tol = taus[i] <= 0.02 ? 0.03 : 0.10;
    check(std::abs(cells[i].det_scaled - cells[i].det_fixed) <= track_tol,
          "scaled-arm detection diverged from fixed" + at);
    check(cells[i].fp_scaled <= cells[i].fp_fixed,
          "scaled-arm false positives exceed fixed" + at);
    if (taus[i] == 0.02) {
      check(cells[i].fp_scaled < cells[i].fp_fixed,
            "no false-positive win at the paper's tau_e=2% point");
    }
    if (cells[i].fp_scaled < cells[i].fp_fixed) {
      strictly_lower_somewhere = true;
    }
  }
  check(strictly_lower_somewhere,
        "confidence scaling never beat the fixed threshold");

  if (violations > 0) {
    std::cout << violations << " gate violation(s)\n";
    return 1;
  }
  std::cout << "confidence gate: all curve-shape checks passed\n";
  return 0;
}
