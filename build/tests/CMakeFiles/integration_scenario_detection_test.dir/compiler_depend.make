# Empty compiler generated dependencies file for integration_scenario_detection_test.
# This may be replaced when dependencies are built.
