file(REMOVE_RECURSE
  "CMakeFiles/core_topology_drain_check_test.dir/core/topology_drain_check_test.cc.o"
  "CMakeFiles/core_topology_drain_check_test.dir/core/topology_drain_check_test.cc.o.d"
  "core_topology_drain_check_test"
  "core_topology_drain_check_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_topology_drain_check_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
