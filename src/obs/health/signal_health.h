// Signal-health scoreboard: per-signal-source trust tracked over epochs.
//
// The paper's premise is that operators must know which low-level signals
// are trustworthy *before* the controller acts on them; CrossCheck
// (PAPERS.md) argues the same for production WAN control as continuous
// per-signal confidence. The validator already explains each epoch through
// a DecisionRecord (obs/provenance.h); this board folds those records over
// time into one operator-facing number per signal source — a 0–100 trust
// score — plus the evidence behind it (recent verdict history, repair
// count, residual EWMA).
//
// A *source* is (check, entity): the entity a verdict speaks about, parsed
// from the invariant name — "ingress(SEAT)" is entity SEAT under the
// demand check, "r1-symmetry(A->B)" is link A->B under hardening. The
// board is check-agnostic: it never looks at core/ types, only at the
// DecisionRecords the pipeline already carries, so it lives in obs/ and
// any layer can feed it.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "obs/provenance.h"

namespace hodor::obs {

class MetricsRegistry;

struct SignalHealthOptions {
  // Verdict-history ring capacity (epochs kept per source).
  std::size_t window = 32;
  // Smoothing factor for the normalised-residual EWMA (weight of the
  // newest observation).
  double ewma_alpha = 0.3;
  // Trust-score deltas per epoch, applied on the source's worst verdict
  // that epoch and clamped to [0, 100]:
  double fail_penalty = 40.0;     // an invariant fired
  double skip_penalty = 15.0;     // signal unavailable / unrecoverable
  double repair_penalty = 10.0;   // hardening flagged-and-repaired it
  double recovery_credit = 10.0;  // clean (or quiet) epoch
};

// What one epoch contributed to a source, for the history ring.
enum class EpochVerdict : char {
  kClean = 'P',     // evaluated, all invariants passed
  kFailed = 'F',    // at least one invariant fired
  kSkipped = 'S',   // could not be evaluated
  kRepaired = 'R',  // hardening flagged the signal but recovered it
  kQuiet = '.',     // no record mentioned the source this epoch
};

struct SignalHealth {
  std::string check;   // "hardening" | "demand" | "topology" | "drain"
  std::string entity;  // router or link name, e.g. "SEAT", "A->B"

  double trust = 100.0;         // 0 (untrusted) .. 100 (clean record)
  double residual_ewma = 0.0;   // EWMA of residual/threshold (1.0 = at τ)
  double last_residual = 0.0;   // normalised, from the latest observation

  std::uint64_t first_epoch = 0;
  std::uint64_t last_epoch = 0;
  std::uint64_t observed_epochs = 0;  // epochs with at least one record
  std::uint64_t fail_epochs = 0;
  std::uint64_t skipped_epochs = 0;
  std::uint64_t repair_events = 0;
  std::uint64_t consecutive_failures = 0;  // current failing run length

  // Oldest → newest, capped at SignalHealthOptions::window.
  std::deque<EpochVerdict> history;

  // History as a compact string, e.g. "PPFRP.P" (oldest first).
  std::string HistoryString() const;
  // {"check":"demand","entity":"SEAT","trust":62.0,...,"history":"PPF"}
  std::string ToJson() const;
};

// Folds epoch DecisionRecords into per-source trust. Single-threaded like
// the rest of the obs layer; serve it over HTTP by publishing ToJson()
// snapshots (see obs/serve/telemetry_server.h).
class SignalHealthBoard {
 public:
  explicit SignalHealthBoard(SignalHealthOptions opts = {});

  const SignalHealthOptions& options() const { return opts_; }

  // Consumes one epoch's verdicts. Every invariant record is attributed to
  // its (check, entity) source; sources known to the board but absent from
  // the record count as quiet and regain trust.
  void ObserveEpoch(const DecisionRecord& record);

  std::size_t source_count() const { return sources_.size(); }
  std::uint64_t epochs_observed() const { return epochs_observed_; }

  // nullptr when the source has never been observed.
  const SignalHealth* Find(const std::string& check,
                           const std::string& entity) const;

  // All sources ordered by ascending trust (worst first), ties by
  // (check, entity) for deterministic output.
  std::vector<const SignalHealth*> SourcesByTrust() const;

  // Lowest trust across sources; 100 when the board is empty.
  double MinTrust() const;

  // Writes one gauge per source into `registry` (nullptr → global):
  //   hodor_signal_trust{check="demand",entity="SEAT"} 62
  // so trust rides the ordinary /metrics export.
  void PublishGauges(MetricsRegistry* registry) const;

  // {"epochs":N,"sources":[ ...worst trust first... ]} — the
  // GET /health/signals payload.
  std::string ToJson() const;

 private:
  SignalHealthOptions opts_;
  std::map<std::pair<std::string, std::string>, SignalHealth> sources_;
  std::uint64_t epochs_observed_ = 0;
};

// Extracts the entity a provenance invariant speaks about: the content of
// the trailing "(...)" — "ingress(SEAT)" → "SEAT", "r1-symmetry(A->B)" →
// "A->B" — or the whole name when there are no parentheses.
std::string ExtractInvariantEntity(const std::string& invariant);

}  // namespace hodor::obs
