// E-epoch-engine — staged epoch engine: what moving the epoch sinks off
// the critical path and sharding the intra-epoch stages buys.
//
// Two configurations of the identical pipeline run side by side at three
// network sizes (Abilene n=12, Waxman n=100, Waxman n=400), both with the
// full operability load attached — flight recorder plus serving sinks
// (signal-health board rendering trust gauges, telemetry-server snapshot
// rendering):
//
//   serial — the historical loop: one thread, sinks inline in RunEpoch.
//   staged — the DESIGN §9 engine: worker threads for collection + the
//            validator's sibling checks, sinks on the dedicated sink
//            thread fed by the double-buffered EpochState queue.
//
// The controller is IGP-style shortest-path routing over a sparse WAN
// demand (each site talks to a handful of peers). That keeps the program
// stage proportionate to the operability load this bench measures: the
// default GreedyTe controller on a *dense* n=400 gravity matrix spends
// ~90 s/epoch in k-shortest-paths, which would drown the sink and
// collection cost in the thing the engine cannot displace.
//
// Reported per size: median RunEpoch wall time (the epoch critical path —
// in staged mode sink cost overlaps the next epoch instead of adding to
// it), the speedup, and — the determinism contract — whether every
// epoch's decision digest matched bit for bit across the two
// configurations. Acceptance floor: >= 20% critical-path improvement at
// n=400 with both sink kinds enabled, zero digest divergence anywhere.
// The floor needs a second hardware thread to be physically expressible
// (displaced work must overlap on another core); on a single-CPU host the
// bench reports the measurement and enforces only the digest contract.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <sstream>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "controlplane/pipeline.h"
#include "obs/health/signal_health.h"
#include "obs/provenance.h"
#include "obs/serve/telemetry_server.h"
#include "replay/recorder.h"
#include "util/logging.h"

namespace {

using namespace hodor;
using Clock = std::chrono::steady_clock;

constexpr std::size_t kThreads = 4;
constexpr int kWarmupEpochs = 2;
constexpr int kMeasuredEpochs = 10;

// Staged-mode worker threads, bounded by what the host can actually run
// concurrently. Digests are thread-count-invariant by design, so the
// serial/staged comparison stays valid at any value.
std::size_t StagedThreads() {
  const unsigned hc = std::thread::hardware_concurrency();
  if (hc >= kThreads) return kThreads;
  return hc >= 2 ? hc : 1;
}

// Gravity demand, sparsified to ~2 peers-per-site rows beyond Abilene
// scale (WAN matrices are sparse; a dense 400-node matrix is neither
// realistic nor measurable), re-normalised to 50% peak utilisation.
flow::DemandMatrix BenchDemand(const net::Topology& topo) {
  util::Rng demand_rng(11);
  flow::DemandMatrix base = flow::GravityDemand(topo, demand_rng);
  const std::size_t n = topo.node_count();
  if (n > 12) {
    const auto pairs = base.Pairs();
    const double keep = std::min(
        1.0, 2.0 * static_cast<double>(n) / static_cast<double>(pairs.size()));
    util::Rng sparsify_rng(29);
    for (const auto& [i, j] : pairs) {
      if (sparsify_rng.Uniform(0.0, 1.0) > keep) base.Set(i, j, 0.0);
    }
  }
  flow::NormalizeToMaxUtilization(topo, 0.5, base);
  return base;
}

struct RunResult {
  double median_ms = 0.0;
  std::vector<std::uint64_t> digests;
};

double MedianMs(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  const std::size_t n = samples.size();
  return n % 2 ? samples[n / 2]
               : 0.5 * (samples[n / 2 - 1] + samples[n / 2]);
}

// One full run: validator + flight recorder + serving sinks attached,
// kWarmupEpochs discarded, kMeasuredEpochs timed around RunEpoch only.
RunResult RunConfig(const net::Topology& topo, bool staged,
                    const char* log_tag) {
  const net::GroundTruthState state(topo);
  const flow::DemandMatrix base = BenchDemand(topo);

  controlplane::PipelineOptions opts;
  opts.collector = bench::DefaultCollector();
  opts.controller.algorithm = controlplane::RoutingAlgorithm::kShortestPath;
  opts.num_threads = staged ? StagedThreads() : 1;
  opts.threaded_sinks = staged;
  controlplane::Pipeline pipeline(topo, opts, util::Rng(13));
  core::ValidatorOptions vopts;
  vopts.hardening.num_threads = opts.num_threads;
  const core::Validator validator(topo, vopts);
  pipeline.SetValidator(validator.AsPipelineValidator());
  pipeline.Bootstrap(state, base);

  // The operability load: flight recorder + health board + HTTP snapshot
  // rendering, all as epoch sinks (the cost the staged engine displaces).
  std::string log_path = std::string("bench_epoch_engine_") + log_tag +
                         (staged ? "_staged" : "_serial") + ".hlog";
  replay::PipelineRecorder recorder;
  if (recorder.Open(log_path, topo).ok()) {
    pipeline.AddEpochSink(recorder.Hook());
  }
  obs::SignalHealthBoard board;
  obs::MetricsRegistry serving_registry;
  obs::TelemetryServer server;  // not Started: pure snapshot rendering
  RunResult result;
  pipeline.AddEpochSink([&](const controlplane::EpochResult& r) {
    serving_registry.CopyFrom(r.metrics_mirror
                                  ? *r.metrics_mirror
                                  : obs::MetricsRegistry::Global());
    board.ObserveEpoch(r.decision.provenance);
    board.PublishGauges(&serving_registry);
    server.PublishMetrics(&serving_registry);
    server.PublishSignals(board);
    server.PublishDecision(r.decision.provenance);
  });

  std::vector<double> samples;
  samples.reserve(kMeasuredEpochs);
  for (int epoch = 0; epoch < kWarmupEpochs + kMeasuredEpochs; ++epoch) {
    util::Rng drift_rng(1000 + epoch);
    flow::DemandMatrix demand = base;
    for (const auto& [i, j] : base.Pairs()) {
      demand.Set(i, j,
                 base.At(i, j) * (1.0 + drift_rng.Uniform(-0.04, 0.04)));
    }
    const Clock::time_point t0 = Clock::now();
    const auto r = pipeline.RunEpoch(state, demand);
    const double ms =
        std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
    if (epoch >= kWarmupEpochs) samples.push_back(ms);
    result.digests.push_back(r.decision.provenance.CanonicalDigest());
  }
  pipeline.DrainSinks();
  (void)recorder.Close();
  std::remove(log_path.c_str());
  result.median_ms = MedianMs(std::move(samples));
  return result;
}

}  // namespace

int main() {
  util::Logger::Instance().SetMinLevel(util::LogLevel::kError);
  const unsigned hardware_threads = std::thread::hardware_concurrency();
  const bool can_overlap = hardware_threads >= 2;
  bench::PrintHeader(
      "epoch_engine",
      "staged epoch engine: critical-path latency vs the serial loop",
      "sizes: Abilene n=12, Waxman n=100/400 seed=21 (sparse demand, SPF "
      "controller); staged threads=" + std::to_string(StagedThreads()) +
      "; sinks: flight recorder + health board + server rendering; "
      "10 measured epochs after 2 warm-up; demand drift as live_pipeline");

  struct Size {
    const char* tag;
    net::Topology topo;
  };
  util::Rng topo_rng(21);
  std::vector<Size> sizes;
  sizes.push_back({"abilene12", net::Abilene()});
  sizes.push_back({"waxman100", net::Waxman(100, topo_rng)});
  sizes.push_back({"waxman400", net::Waxman(400, topo_rng)});

  util::TablePrinter table({"topology", "nodes", "serial ms/epoch",
                            "staged ms/epoch", "speedup", "digests"});
  std::ostringstream reports;
  reports << "[";
  bool all_match = true;
  double improvement_400 = 0.0;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const Size& s = sizes[i];
    const RunResult serial = RunConfig(s.topo, /*staged=*/false, s.tag);
    const RunResult staged = RunConfig(s.topo, /*staged=*/true, s.tag);
    const bool match = serial.digests == staged.digests;
    all_match = all_match && match;
    const double speedup = serial.median_ms / staged.median_ms;
    if (s.topo.node_count() == 400) {
      improvement_400 = 1.0 - staged.median_ms / serial.median_ms;
    }
    table.AddRowValues(s.tag, s.topo.node_count(),
                       util::FormatDouble(serial.median_ms, 3),
                       util::FormatDouble(staged.median_ms, 3),
                       util::FormatDouble(speedup, 2) + "x",
                       match ? "match" : "DIVERGED");
    reports << (i ? "," : "") << "{\"topology\":\"" << s.tag
            << "\",\"nodes\":" << s.topo.node_count()
            << ",\"serial_ms_per_epoch\":" << obs::JsonNumber(serial.median_ms)
            << ",\"staged_ms_per_epoch\":" << obs::JsonNumber(staged.median_ms)
            << ",\"speedup\":" << obs::JsonNumber(speedup)
            << ",\"digests_match\":" << (match ? "true" : "false") << "}";
  }
  reports << ",{\"staged_threads\":" << StagedThreads()
          << ",\"hardware_threads\":" << hardware_threads << "}]";
  std::cout << table.ToString();
  std::cout << "\ncritical-path improvement at n=400: "
            << util::FormatPercent(improvement_400, 1)
            << " (acceptance floor 20%)\n"
            << "decision digests " << (all_match ? "bit-identical" : "DIVERGED")
            << " across serial/staged at every size\n";
  if (!can_overlap) {
    std::cout << "single hardware thread: displaced sink work cannot overlap "
                 "on another core, so the floor is reported but not "
                 "enforced; digest parity remains the hard gate\n";
  }
  bench::DumpObsSnapshot("epoch_engine", reports.str());
  const bool floor_ok = improvement_400 >= 0.20 || !can_overlap;
  return all_match && floor_ok ? 0 : 1;
}
