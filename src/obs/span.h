// Stage spans: RAII wall-clock timers over the pipeline's stage taxonomy.
//
// Every epoch passes through a fixed set of stages (paper §3's control
// loop): collect → aggregate → [harden → check-demand → check-topology →
// check-drain] → program → simulate, with "epoch" spanning the whole loop
// and "validate" spanning whatever validator the pipeline was given.
// A StageSpan measures one stage execution and, on End()/destruction:
//   - observes the duration into the registry histogram
//         hodor_stage_duration_us{stage="<name>"}
//   - optionally appends a JSON-Lines record to a TraceWriter, giving
//     operators a per-epoch timeline they can grep or load into any
//     trace viewer.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <memory>
#include <ostream>
#include <string>

#include "obs/metrics.h"

namespace hodor::obs {

enum class Stage {
  kEpoch = 0,
  kCollect,
  kAggregate,
  kValidate,
  kHarden,
  kCheckDemand,
  kCheckTopology,
  kCheckDrain,
  kProgram,
  kSimulate,
  // Off-critical-path sink work: the observatory sampling the per-epoch
  // metrics mirror into the time-series store (obs/timeseries.h).
  kTimeseriesSample,
  // The confidence scoring kernels (core/confidence.h), benchmarked in
  // isolation: hardening runs them inline, so this stage only appears in
  // bench_overhead's BM_ConfidenceScore.
  kConfidenceScore,
};

constexpr std::array<Stage, 12> kAllStages = {
    Stage::kEpoch,         Stage::kCollect,
    Stage::kAggregate,     Stage::kValidate,
    Stage::kHarden,        Stage::kCheckDemand,
    Stage::kCheckTopology, Stage::kCheckDrain,
    Stage::kProgram,       Stage::kSimulate,
    Stage::kTimeseriesSample, Stage::kConfidenceScore,
};

const char* StageName(Stage stage);

// One finished span, as recorded into traces and EpochResult.
struct SpanRecord {
  Stage stage = Stage::kEpoch;
  std::uint64_t epoch = 0;
  double duration_us = 0.0;
  // UTC ISO-8601 wall-clock at span start (StageSpan fills it), so JSONL
  // traces can be correlated with external telemetry. Omitted from the
  // JSON when empty (hand-built records stay compact).
  std::string wall_time;

  // One JSON object (no trailing newline), the JSONL trace line format:
  //   {"stage":"collect","epoch":3,"duration_us":42.7,
  //    "ts":"2024-11-05T17:03:21.042Z"}
  std::string ToJson() const;
};

// Appends SpanRecords as JSON Lines to a stream it may or may not own.
class TraceWriter {
 public:
  // Writes to a caller-owned stream (kept by pointer; must outlive this).
  explicit TraceWriter(std::ostream& out) : out_(&out) {}

  // Opens `path` for appending; nullptr if the file cannot be opened.
  static std::unique_ptr<TraceWriter> OpenFile(const std::string& path);

  void Write(const SpanRecord& record);
  std::size_t written() const { return written_; }

 private:
  TraceWriter() = default;

  std::unique_ptr<std::ofstream> owned_;
  std::ostream* out_ = nullptr;
  std::size_t written_ = 0;
};

// RAII stage timer. Records into `registry` (nullptr → global) and, when
// given, into `trace` exactly once — at End() or destruction, whichever
// comes first.
class StageSpan {
 public:
  explicit StageSpan(Stage stage, std::uint64_t epoch = 0,
                     MetricsRegistry* registry = nullptr,
                     TraceWriter* trace = nullptr);
  ~StageSpan();

  StageSpan(const StageSpan&) = delete;
  StageSpan& operator=(const StageSpan&) = delete;

  // Stops the clock and records; idempotent. Returns the finished record.
  SpanRecord End();

  // Microseconds elapsed so far (or final duration once ended).
  double elapsed_us() const;

 private:
  SpanRecord record_;
  MetricsRegistry* registry_;
  TraceWriter* trace_;
  std::chrono::steady_clock::time_point start_;
  bool ended_ = false;
};

}  // namespace hodor::obs
