# Empty dependencies file for outage_replay.
# This may be replaced when dependencies are built.
