# Empty dependencies file for flow_demand_matrix_test.
# This may be replaced when dependencies are built.
