// Fluid-model flow simulator.
//
// Given the ground-truth network condition, the *true* demand, and the
// routing plan the controller programmed (possibly computed from incorrect
// inputs — that mismatch is the whole point), the simulator computes what
// actually happens on the wire: per-link arriving/carried/dropped rates and
// per-node external ingress/egress. These true rates are what the telemetry
// layer turns into interface counters.
//
// Drop model: traffic walks its path; at each directed link it is scaled by
// a pass-through factor f = min(1, capacity / arriving) (f = 0 on links that
// are not physically usable — routed-over-dead-link traffic blackholes
// there). Factors are computed by fixed-point iteration, so flow
// conservation holds exactly at every router:
//   ext_in(v) + Σ_in carried = ext_out(v) + Σ_out (carried + dropped).
#pragma once

#include <vector>

#include "flow/demand_matrix.h"
#include "flow/routing.h"
#include "net/state.h"
#include "net/topology.h"

namespace hodor::flow {

struct SimulationResult {
  // Per directed link (indexed by LinkId), Gbps.
  std::vector<double> arriving;  // offered at the link's egress queue
  std::vector<double> carried;   // actually transmitted
  std::vector<double> dropped;   // arriving - carried

  // Per node (indexed by NodeId), Gbps.
  std::vector<double> ext_in;    // admitted external ingress
  std::vector<double> ext_out;   // delivered external egress

  // Demand that had no route (or an ingress unable to admit it); it never
  // enters the network.
  double unrouted_gbps = 0.0;

  double total_admitted_gbps = 0.0;
  double total_delivered_gbps = 0.0;
  double total_dropped_gbps = 0.0;

  // Per-pair delivered rate, same indexing as DemandMatrix.
  DemandMatrix delivered;
};

struct SimulatorOptions {
  std::size_t max_iterations = 30;
  double convergence_eps = 1e-12;
};

// Runs the fluid simulation. The routing plan may reference links that are
// unusable in `state`; traffic on them is dropped there.
SimulationResult SimulateFlow(const net::Topology& topo,
                              const net::GroundTruthState& state,
                              const DemandMatrix& true_demand,
                              const RoutingPlan& plan,
                              const SimulatorOptions& opts = {});

}  // namespace hodor::flow
