#include "obs/provenance.h"

#include <sstream>

#include "obs/json.h"

namespace hodor::obs {

const char* InvariantVerdictName(InvariantVerdict verdict) {
  switch (verdict) {
    case InvariantVerdict::kPass: return "pass";
    case InvariantVerdict::kFail: return "fail";
    case InvariantVerdict::kSkipped: return "skipped";
  }
  return "?";
}

std::string InvariantRecord::ToJson() const {
  std::ostringstream os;
  os << "{\"check\":\"" << JsonEscape(check) << "\",\"invariant\":\""
     << JsonEscape(invariant) << "\",\"residual\":" << JsonNumber(residual)
     << ",\"threshold\":" << JsonNumber(threshold) << ",\"verdict\":\""
     << InvariantVerdictName(verdict) << "\"";
  if (!detail.empty()) os << ",\"detail\":\"" << JsonEscape(detail) << "\"";
  os << "}";
  return os.str();
}

std::size_t DecisionRecord::evaluated_count() const {
  std::size_t n = 0;
  for (const auto& r : invariants) {
    if (r.verdict != InvariantVerdict::kSkipped) ++n;
  }
  return n;
}

std::size_t DecisionRecord::failed_count() const {
  std::size_t n = 0;
  for (const auto& r : invariants) {
    if (r.verdict == InvariantVerdict::kFail) ++n;
  }
  return n;
}

std::size_t DecisionRecord::skipped_count() const {
  return invariants.size() - evaluated_count();
}

const InvariantRecord* DecisionRecord::FirstFailure() const {
  for (const auto& r : invariants) {
    if (r.verdict == InvariantVerdict::kFail) return &r;
  }
  return nullptr;
}

std::string DecisionRecord::ToJson() const {
  std::ostringstream os;
  os << "{\"epoch\":" << epoch << ",\"accept\":" << (accept ? "true" : "false")
     << ",\"summary\":\"" << JsonEscape(summary)
     << "\",\"evaluated\":" << evaluated_count()
     << ",\"failed\":" << failed_count()
     << ",\"skipped\":" << skipped_count() << ",\"invariants\":[";
  bool first = true;
  for (const auto& r : invariants) {
    if (!first) os << ",";
    os << r.ToJson();
    first = false;
  }
  os << "]}";
  return os.str();
}

}  // namespace hodor::obs
