// Minimal leveled logger. Sinks to stderr by default; the validation
// pipeline's alerting policy also routes operator-facing alerts through it.
#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace hodor::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

const char* LogLevelName(LogLevel level);

// Global log configuration. Not thread-safe by design: the simulator is
// single-threaded and benches configure logging once at startup.
class Logger {
 public:
  using Sink = std::function<void(LogLevel, const std::string&)>;

  static Logger& Instance();

  void SetMinLevel(LogLevel level) { min_level_ = level; }
  LogLevel min_level() const { return min_level_; }

  // Replaces the output sink (tests capture logs this way). Passing nullptr
  // restores the default stderr sink.
  void SetSink(Sink sink);

  void Log(LogLevel level, const std::string& message);

 private:
  Logger();
  LogLevel min_level_ = LogLevel::kInfo;
  Sink sink_;
};

namespace internal {
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { Logger::Instance().Log(level_, os_.str()); }
  template <typename T>
  LogMessage& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace internal

}  // namespace hodor::util

#define HODOR_LOG(level) \
  ::hodor::util::internal::LogMessage(::hodor::util::LogLevel::level)
