// Baseline 3: the "most general approach" of §3.1 — unsupervised discovery
// of signal relationships from historical data.
//
//   "Unsupervised learning techniques can be applied to discover this
//    structure by analyzing historical system data, bundling all available
//    data ... and using methods like masked autoencoders and symbolic
//    regression to identify relationships within these bundles that
//    persist over time."
//
// We implement the tabular core of that idea: mine, from a window of
// historical snapshots, every pairwise relationship `signal_a ≈ signal_b`
// that persisted across the window, then flag new snapshots that break a
// mined relationship. This captures the real R1 symmetries without being
// told about them — and also captures the paper's predicted failure mode:
//
//   "if the routers in a particular POP remain drained ... during the
//    historically observed period, unsupervised methods might infer that
//    all interface counters in that POP should always be equal, which
//    would no longer be accurate once the routers ... are undrained."
//
// The miner deliberately does NOT filter such spurious invariants; the
// comparison bench (E6b) measures exactly how much they cost.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "telemetry/snapshot.h"

namespace hodor::core::baselines {

struct InvariantMinerOptions {
  // Hysteresis between mining and checking: an invariant is mined only
  // when the pair stayed within the strict tolerance in every observation,
  // but flagged only when it leaves the looser one. This keeps signal
  // pairs that are merely *coincidentally* close (gap just above the
  // mining bar) from flapping at check time.
  double mine_tau = 0.02;
  double check_tau = 0.04;
  // Both-below-this values count as equal (zeros — including the §3.1
  // spurious drained-POP zeros, which we deliberately keep).
  double zero_floor = 1e-3;
  // An invariant must hold in every one of at least this many observations
  // to be mined.
  std::size_t min_history = 5;

  // Also mine per-router sum relationships (§3.1's "which should sum to
  // others"): for each router whose local signals were all present and
  // balanced (Σin + ext_in ≈ Σout + dropped + ext_out) throughout the
  // window, record a conservation invariant. This rediscovers R2 from
  // data alone.
  bool mine_conservation = true;
};

struct MinedInvariant {
  std::size_t signal_a = 0;  // indexes into the flattened signal vector
  std::size_t signal_b = 0;
  std::string name;          // human-readable "tx(A->B) ~= rx(A->B)"
};

// A mined per-router balance relation (sum form).
struct MinedConservation {
  net::NodeId node;
  std::string name;  // "conservation(NYCMng)"
};

struct MinerCheckResult {
  std::vector<std::string> violations;  // broken mined invariants
  std::size_t checked = 0;
  bool ok() const { return violations.empty(); }
};

class InvariantMiner {
 public:
  InvariantMiner(const net::Topology& topo, InvariantMinerOptions opts = {});

  // Adds one historical snapshot to the training window.
  void Observe(const telemetry::NetworkSnapshot& snapshot);

  // Mines the persistent pairwise equalities from the window. Must be
  // called after at least min_history observations; may be re-run as the
  // window grows.
  void Mine();

  std::size_t observation_count() const { return history_.size(); }
  const std::vector<MinedInvariant>& invariants() const { return mined_; }
  const std::vector<MinedConservation>& conservation_invariants() const {
    return mined_conservation_;
  }

  // Checks a snapshot against the mined invariants.
  MinerCheckResult Check(const telemetry::NetworkSnapshot& snapshot) const;

 private:
  // Flattens a snapshot into the signal vector (NaN for missing signals).
  std::vector<double> Flatten(
      const telemetry::NetworkSnapshot& snapshot) const;
  std::string SignalName(std::size_t index) const;
  bool Equalish(double a, double b, double tau) const;
  // Per-router (in-sum, out-sum); NaN pair when any local signal missing.
  std::pair<double, double> NodeBalance(const std::vector<double>& row,
                                        net::NodeId v) const;

  const net::Topology* topo_;
  InvariantMinerOptions opts_;
  std::vector<std::vector<double>> history_;
  std::vector<MinedInvariant> mined_;
  std::vector<MinedConservation> mined_conservation_;
};

}  // namespace hodor::core::baselines
