#include "net/topology.h"

#include <gtest/gtest.h>

namespace hodor::net {
namespace {

TEST(Ids, InvalidByDefault) {
  NodeId n;
  EXPECT_FALSE(n.valid());
  LinkId l;
  EXPECT_FALSE(l.valid());
  EXPECT_EQ(n, NodeId::Invalid());
}

TEST(Ids, ValueRoundTrip) {
  NodeId n(3);
  EXPECT_TRUE(n.valid());
  EXPECT_EQ(n.value(), 3u);
}

TEST(Ids, Ordering) {
  EXPECT_LT(NodeId(1), NodeId(2));
  EXPECT_NE(NodeId(1), NodeId(2));
}

TEST(Topology, AddNodesAndLookup) {
  Topology topo("t");
  const NodeId a = topo.AddNode("a");
  const NodeId b = topo.AddNode("b");
  EXPECT_EQ(topo.node_count(), 2u);
  EXPECT_EQ(topo.node(a).name, "a");
  EXPECT_EQ(topo.FindNode("b").value(), b);
  EXPECT_FALSE(topo.FindNode("zz").ok());
}

TEST(Topology, DuplicateNodeNameRejected) {
  Topology topo;
  topo.AddNode("a");
  EXPECT_THROW(topo.AddNode("a"), std::logic_error);
}

TEST(Topology, EmptyNodeNameRejected) {
  Topology topo;
  EXPECT_THROW(topo.AddNode(""), std::logic_error);
}

TEST(Topology, BidirectionalLinkCreatesReversePair) {
  Topology topo;
  const NodeId a = topo.AddNode("a");
  const NodeId b = topo.AddNode("b");
  const LinkId fwd = topo.AddBidirectionalLink(a, b, 100.0, 2.0);
  EXPECT_EQ(topo.link_count(), 2u);
  EXPECT_EQ(topo.physical_link_count(), 1u);
  const Link& f = topo.link(fwd);
  const Link& r = topo.link(f.reverse);
  EXPECT_EQ(f.src, a);
  EXPECT_EQ(f.dst, b);
  EXPECT_EQ(r.src, b);
  EXPECT_EQ(r.dst, a);
  EXPECT_EQ(r.reverse, fwd);
  EXPECT_DOUBLE_EQ(f.capacity, 100.0);
  EXPECT_DOUBLE_EQ(r.capacity, 100.0);
  EXPECT_DOUBLE_EQ(f.metric, 2.0);
}

TEST(Topology, SelfLoopRejected) {
  Topology topo;
  const NodeId a = topo.AddNode("a");
  EXPECT_THROW(topo.AddBidirectionalLink(a, a, 1.0), std::logic_error);
}

TEST(Topology, NonPositiveCapacityRejected) {
  Topology topo;
  const NodeId a = topo.AddNode("a");
  const NodeId b = topo.AddNode("b");
  EXPECT_THROW(topo.AddBidirectionalLink(a, b, 0.0), std::logic_error);
  EXPECT_THROW(topo.AddBidirectionalLink(a, b, 10.0, 0.5), std::logic_error);
}

TEST(Topology, InOutLinksIndexed) {
  Topology topo;
  const NodeId a = topo.AddNode("a");
  const NodeId b = topo.AddNode("b");
  const NodeId c = topo.AddNode("c");
  topo.AddBidirectionalLink(a, b, 10.0);
  topo.AddBidirectionalLink(a, c, 10.0);
  EXPECT_EQ(topo.OutLinks(a).size(), 2u);
  EXPECT_EQ(topo.InLinks(a).size(), 2u);
  EXPECT_EQ(topo.OutLinks(b).size(), 1u);
  for (LinkId e : topo.OutLinks(a)) EXPECT_EQ(topo.link(e).src, a);
  for (LinkId e : topo.InLinks(a)) EXPECT_EQ(topo.link(e).dst, a);
}

TEST(Topology, FindLinkDirected) {
  Topology topo;
  const NodeId a = topo.AddNode("a");
  const NodeId b = topo.AddNode("b");
  const NodeId c = topo.AddNode("c");
  const LinkId ab = topo.AddBidirectionalLink(a, b, 10.0);
  EXPECT_EQ(topo.FindLink(a, b).value(), ab);
  EXPECT_EQ(topo.FindLink(b, a).value(), topo.link(ab).reverse);
  EXPECT_FALSE(topo.FindLink(a, c).ok());
}

TEST(Topology, ExternalPorts) {
  Topology topo;
  const NodeId a = topo.AddNode("a");
  const NodeId b = topo.AddNode("b");
  topo.AddExternalPort(a, 400.0);
  EXPECT_TRUE(topo.node(a).has_external_port);
  EXPECT_DOUBLE_EQ(topo.node(a).external_capacity, 400.0);
  EXPECT_FALSE(topo.node(b).has_external_port);
  const auto ext = topo.ExternalNodes();
  ASSERT_EQ(ext.size(), 1u);
  EXPECT_EQ(ext[0], a);
}

TEST(Topology, LinkNameRendering) {
  Topology topo;
  const NodeId a = topo.AddNode("A");
  const NodeId b = topo.AddNode("B");
  const LinkId ab = topo.AddBidirectionalLink(a, b, 10.0);
  EXPECT_EQ(topo.LinkName(ab), "A->B");
  EXPECT_EQ(topo.LinkName(topo.link(ab).reverse), "B->A");
}

TEST(Topology, NodeIdsAndLinkIdsDense) {
  Topology topo;
  topo.AddNode("a");
  topo.AddNode("b");
  topo.AddBidirectionalLink(NodeId(0), NodeId(1), 1.0);
  const auto nodes = topo.NodeIds();
  ASSERT_EQ(nodes.size(), 2u);
  EXPECT_EQ(nodes[0].value(), 0u);
  EXPECT_EQ(nodes[1].value(), 1u);
  const auto links = topo.LinkIds();
  ASSERT_EQ(links.size(), 2u);
  EXPECT_EQ(links[0].value(), 0u);
}

TEST(Topology, ValidatePassesOnWellFormed) {
  Topology topo;
  const NodeId a = topo.AddNode("a");
  const NodeId b = topo.AddNode("b");
  topo.AddBidirectionalLink(a, b, 1.0);
  EXPECT_TRUE(topo.Validate().ok());
}

TEST(Topology, AccessorsBoundsChecked) {
  Topology topo;
  topo.AddNode("a");
  EXPECT_THROW(topo.node(NodeId(5)), std::logic_error);
  EXPECT_THROW(topo.link(LinkId(0)), std::logic_error);
  EXPECT_THROW(topo.OutLinks(NodeId::Invalid()), std::logic_error);
}

}  // namespace
}  // namespace hodor::net
