#include "controlplane/trace.h"

#include <algorithm>
#include <sstream>

#include "obs/json.h"
#include "util/strings.h"

namespace hodor::controlplane {

void EpochTrace::Record(const EpochResult& result, bool fault_active) {
  EpochRecord r;
  r.epoch = result.epoch;
  r.demand_satisfaction = result.metrics.demand_satisfaction;
  r.max_link_utilization = result.metrics.max_link_utilization;
  r.fault_active = fault_active;
  r.validated = result.validated;
  r.rejected = result.validated && !result.decision.accept;
  r.used_fallback = result.used_fallback;
  r.invariants_failed = result.decision.provenance.failed_count();
  r.spans = result.spans;
  records_.push_back(std::move(r));
}

AvailabilityReport EpochTrace::Summarize(double satisfaction_slo) const {
  AvailabilityReport report;
  report.epochs = records_.size();
  if (records_.empty()) return report;

  double sum = 0.0;
  std::size_t current_run = 0;
  for (const EpochRecord& r : records_) {
    sum += r.demand_satisfaction;
    report.worst_satisfaction =
        std::min(report.worst_satisfaction, r.demand_satisfaction);
    const bool violating = r.demand_satisfaction < satisfaction_slo;
    if (violating) {
      ++report.slo_violations;
      ++current_run;
      if (current_run == 1) ++report.outage_episodes;
      report.longest_outage_epochs =
          std::max(report.longest_outage_epochs, current_run);
    } else {
      current_run = 0;
    }
    if (r.fault_active) {
      ++report.faulty_epochs;
      if (r.rejected) ++report.faulty_epochs_rejected;
    } else if (r.rejected) {
      ++report.clean_epochs_rejected;
    }
  }
  report.mean_satisfaction = sum / static_cast<double>(records_.size());
  report.availability =
      1.0 - static_cast<double>(report.slo_violations) /
                static_cast<double>(report.epochs);

  std::size_t validated_epochs = 0;
  std::size_t invariants_failed = 0;
  for (const EpochRecord& r : records_) {
    if (r.validated) {
      ++validated_epochs;
      invariants_failed += r.invariants_failed;
    }
  }
  if (validated_epochs > 0) {
    report.mean_invariants_failed =
        static_cast<double>(invariants_failed) /
        static_cast<double>(validated_epochs);
  }

  // Mean duration per stage, in taxonomy order.
  for (obs::Stage stage : obs::kAllStages) {
    double total_us = 0.0;
    std::size_t runs = 0;
    for (const EpochRecord& r : records_) {
      for (const obs::SpanRecord& span : r.spans) {
        if (span.stage == stage) {
          total_us += span.duration_us;
          ++runs;
        }
      }
    }
    if (runs > 0) {
      report.mean_stage_us.emplace_back(obs::StageName(stage),
                                        total_us / static_cast<double>(runs));
    }
  }
  return report;
}

std::string AvailabilityReport::ToString() const {
  std::ostringstream os;
  os << "availability=" << util::FormatPercent(availability, 2) << " ("
     << slo_violations << "/" << epochs << " epochs below SLO, "
     << outage_episodes << " episodes, longest " << longest_outage_epochs
     << ")  mean_sat=" << util::FormatPercent(mean_satisfaction, 2)
     << " worst=" << util::FormatPercent(worst_satisfaction, 2)
     << "  detection=" << faulty_epochs_rejected << "/" << faulty_epochs
     << " faulty epochs rejected, " << clean_epochs_rejected
     << " clean rejections";
  if (!mean_stage_us.empty()) {
    os << "\n  mean stage us:";
    for (const auto& [stage, us] : mean_stage_us) {
      os << " " << stage << "=" << util::FormatDouble(us, 1);
    }
  }
  return os.str();
}

std::string AvailabilityReport::ToJson() const {
  std::ostringstream os;
  os << "{\"epochs\":" << epochs << ",\"slo_violations\":" << slo_violations
     << ",\"availability\":" << obs::JsonNumber(availability)
     << ",\"worst_satisfaction\":" << obs::JsonNumber(worst_satisfaction)
     << ",\"mean_satisfaction\":" << obs::JsonNumber(mean_satisfaction)
     << ",\"outage_episodes\":" << outage_episodes
     << ",\"longest_outage_epochs\":" << longest_outage_epochs
     << ",\"faulty_epochs\":" << faulty_epochs
     << ",\"faulty_epochs_rejected\":" << faulty_epochs_rejected
     << ",\"clean_epochs_rejected\":" << clean_epochs_rejected
     << ",\"mean_invariants_failed\":"
     << obs::JsonNumber(mean_invariants_failed) << ",\"mean_stage_us\":{";
  bool first = true;
  for (const auto& [stage, us] : mean_stage_us) {
    if (!first) os << ",";
    os << "\"" << obs::JsonEscape(stage) << "\":" << obs::JsonNumber(us);
    first = false;
  }
  os << "}}";
  return os.str();
}

}  // namespace hodor::controlplane
