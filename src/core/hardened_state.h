// HardenedState: the output of Hodor step 2 — a corrected, confidence-
// annotated view of current network state assembled purely from router
// signals (never from the control infrastructure's aggregates).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/topology.h"

namespace hodor::core {

// How a hardened rate value was obtained.
enum class RateOrigin {
  kAgreeing,      // both ends measured and matched within τ_h (averaged)
  kRepaired,      // flagged/missing, recovered via flow conservation (R2)
  kSingleWitness, // only one end reported and nothing could corroborate or
                  // contradict it; accepted at reduced confidence
  kUnknown,       // could not be recovered
};

// Which redundancy mechanism produced a repaired value — the repair
// provenance that flows through DecisionRecord and the flight recorder.
enum class RepairSource {
  kNone = 0,          // not repaired (agreeing or unknown)
  kPairwise,          // repair (a): conservation disambiguated TX vs RX
  kPropagation,       // repair (b): single-unknown node equation solved it
  kLeastSquares,      // repair (c): global least-squares over unknowns
  kSingleWitness,     // repair (d): lone counter accepted uncorroborated
};

constexpr const char* RepairSourceName(RepairSource s) {
  switch (s) {
    case RepairSource::kNone: return "none";
    case RepairSource::kPairwise: return "r2-pairwise";
    case RepairSource::kPropagation: return "r2-propagation";
    case RepairSource::kLeastSquares: return "r2-least-squares";
    case RepairSource::kSingleWitness: return "single-witness";
  }
  return "?";
}

struct HardenedRate {
  std::optional<double> value;  // Gbps; empty iff origin == kUnknown
  RateOrigin origin = RateOrigin::kUnknown;
  // R1 flagged the raw TX/RX pair as spurious (mismatch or missing side).
  bool flagged = false;
  // When the repair disambiguated which end's counter was wrong, the
  // faulty side's reported value (for operator alerts).
  std::optional<double> rejected_value;
  // Which mechanism repaired the value (kNone unless origin is kRepaired
  // or kSingleWitness), and how well the justifying conservation equation
  // closed: the relative residual of the accepted candidate at its router
  // (0.0 for exact solves and for repairs without a residual notion).
  RepairSource repair_source = RepairSource::kNone;
  double repair_residual = 0.0;
  // Confidence in `value`, in [0, 1], scored by core::ConfidenceModel.
  // Agreeing pairs score highest; repairs start lower, pay for a loose
  // conservation fit, and gain from each independent corroborating signal
  // (the paper's R3/R4 role: "the greater the number of signals, the
  // higher the confidence that Hodor's inference is correct").
  double confidence = 0.0;
};

// Fused link-state verdict (paper §4.2).
enum class LinkVerdict { kDown = 0, kUp = 1, kUnknown = 2 };

constexpr const char* LinkVerdictName(LinkVerdict v) {
  switch (v) {
    case LinkVerdict::kDown: return "down";
    case LinkVerdict::kUp: return "up";
    case LinkVerdict::kUnknown: return "unknown";
  }
  return "?";
}

struct HardenedLinkState {
  LinkVerdict verdict = LinkVerdict::kUnknown;
  // In [0,1]: fraction of evidence weight agreeing with the verdict.
  double confidence = 0.0;
  // The two ends' status reports disagreed (R1 violation).
  bool status_disagreement = false;
};

struct HardenedDrain {
  std::optional<bool> node_drained;  // the router's own intent signal
  // Evidence says this router cannot forward although it is not marked
  // drained (§4.3 case 1).
  bool undrained_but_dead = false;
  // Marked drained yet clearly carrying traffic (§4.3 case 2 — possibly
  // legitimate, reported as a warning, not an error).
  bool drained_but_active = false;
  // Probe coverage behind the liveness verdict, in [0,1]: the fraction of
  // the router's directed links that returned a probe result this epoch.
  // More corroborating probes ⇒ higher confidence that "every probe
  // failed" actually means the router is dead rather than unobserved.
  double liveness_confidence = 0.0;
};

struct HardenedState {
  // Indexed by directed LinkId.
  std::vector<HardenedRate> rates;
  std::vector<HardenedLinkState> links;
  // Agreed link-drain status (both ends must announce; disagreement noted).
  // The disagreement flags are written by parallel hardening shards, one
  // link apiece, so they must be byte-addressable — vector<bool> packs
  // neighbouring links into one shared word and the writes would race.
  std::vector<std::optional<bool>> link_drained;
  std::vector<std::uint8_t> link_drain_disagreement;

  // Indexed by NodeId.
  std::vector<std::optional<double>> ext_in;
  std::vector<std::optional<double>> ext_out;
  std::vector<std::optional<double>> dropped;
  std::vector<HardenedDrain> drains;
  // Confidence in the node's single-sourced scalars (ext_in/ext_out/
  // dropped), in [0,1]: corroboration comes from the node's flow-
  // conservation equation closing over the final hardened rates
  // (core::ScalarConfidence). The demand check widens its effective τ_e
  // for low-confidence nodes. Covered by HardenDelta::scalars_changed.
  std::vector<double> scalar_confidence;

  // --- hardening summary ----------------------------------------------------
  std::size_t flagged_rate_count = 0;
  std::size_t repaired_rate_count = 0;
  std::size_t unknown_rate_count = 0;
  std::size_t status_disagreement_count = 0;

  std::string Summary() const;
};

// Which facets of the hardened state changed between two consecutive
// epochs, as computed by the incremental hardening path (DESIGN.md §12).
// The flags are exact: a facet reads clean only when every one of its
// entries is bit-identical to the prior epoch's. `incremental == false` is
// the full-recompute state — nothing is known about what moved, so every
// facet conservatively reads as changed (the default).
struct HardenDelta {
  bool incremental = false;
  bool rates_changed = true;    // any HardenedRate entry differs
  bool links_changed = true;    // any fused HardenedLinkState differs
  bool drains_changed = true;   // node drains, link drains, or disagreements
  bool scalars_changed = true;  // ext_in / ext_out / dropped
};

// A check's declared hardened-input facets: each of demand/topology/drain
// names the slices of HardenedState it reads, and the incremental
// validator replays the check's prior verdict when all of them are clean
// (and the check's controller-input slice is bit-identical).
struct HardenedFacets {
  bool rates = false;
  bool links = false;
  bool drains = false;
  bool scalars = false;

  bool CleanUnder(const HardenDelta& d) const {
    if (!d.incremental) return false;
    return !(rates && d.rates_changed) && !(links && d.links_changed) &&
           !(drains && d.drains_changed) && !(scalars && d.scalars_changed);
  }
};

}  // namespace hodor::core
