// The replay contract: a log recorded by this binary replays with zero
// divergence under the same validator options, and changed thresholds
// produce a precise list of flipped invariants instead of a vague "digest
// mismatch".
#include "replay/replayer.h"

#include <gtest/gtest.h>

#include "core/validator.h"
#include "faults/aggregation_faults.h"
#include "replay/recorder.h"
#include "test_util.h"

namespace hodor {
namespace {

// Records `epochs` pipeline epochs (with a demand-aggregation fault in the
// middle) and returns the log path.
std::string RecordRun(const std::string& name, int epochs,
                      bool with_validator) {
  const net::Topology topo = net::Abilene();
  const net::GroundTruthState state(topo);
  util::Rng demand_rng(7);
  flow::DemandMatrix base = flow::GravityDemand(topo, demand_rng);
  flow::NormalizeToMaxUtilization(topo, 0.45, base);

  controlplane::Pipeline pipeline(topo, {}, util::Rng(8));
  const core::Validator validator(topo);
  if (with_validator) {
    pipeline.SetValidator(validator.AsPipelineValidator());
  }
  pipeline.Bootstrap(state, base);

  const std::string path = ::testing::TempDir() + "/" + name;
  replay::PipelineRecorder recorder;
  EXPECT_TRUE(recorder.Open(path, topo).ok());
  pipeline.AddEpochSink(recorder.Hook());

  for (int epoch = 0; epoch < epochs; ++epoch) {
    controlplane::AggregationFaultHooks hooks;
    if (epoch == epochs / 2) {
      hooks.demand = faults::DemandEntriesDropped(0.33, 4242);
    }
    pipeline.RunEpoch(state, base, nullptr, hooks);
  }
  EXPECT_TRUE(recorder.status().ok());
  EXPECT_TRUE(recorder.Close().ok());
  EXPECT_EQ(recorder.recorded_epochs(), static_cast<std::size_t>(epochs));
  return path;
}

TEST(Replayer, FreshRecordingReplaysWithZeroDivergence) {
  const std::string path = RecordRun("clean.hlog", 5, /*with_validator=*/true);
  const replay::Replayer replayer;
  auto report = replayer.ReplayFile(path);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report.value().epochs_total, 5u);
  EXPECT_EQ(report.value().epochs_replayed, 5u);
  EXPECT_TRUE(report.value().clean()) << report.value().Summary();
  EXPECT_EQ(report.value().verdict_flips, 0u);
  EXPECT_FALSE(report.value().tail_truncated);
}

TEST(Replayer, ChangedThresholdListsFlippedInvariants) {
  const std::string path = RecordRun("tau.hlog", 5, /*with_validator=*/true);

  // A far looser τ_e lets every recorded demand violation pass: the faulty
  // epoch must diverge with named demand-invariant flips (fail -> pass).
  replay::ReplayOptions opts;
  opts.validator.demand.tau_e = 10.0;
  const replay::Replayer replayer(opts);
  auto report_or = replayer.ReplayFile(path);
  ASSERT_TRUE(report_or.ok());
  const replay::ReplayReport& report = report_or.value();
  EXPECT_FALSE(report.clean());
  EXPECT_GE(report.verdict_flips, 1u);

  bool saw_demand_flip = false;
  for (const replay::EpochDiff& diff : report.epochs) {
    for (const replay::InvariantFlip& flip : diff.flips) {
      if (flip.check == "demand" &&
          flip.recorded == obs::InvariantVerdict::kFail &&
          flip.fresh == obs::InvariantVerdict::kPass) {
        saw_demand_flip = true;
        EXPECT_TRUE(flip.recorded_present);
        EXPECT_TRUE(flip.fresh_present);
        // The recorded threshold is the confidence-scaled τ_eff >= τ_e.
        EXPECT_GE(flip.fresh_threshold, 10.0);
        EXPECT_LT(flip.fresh_threshold, 20.0);
        EXPECT_FALSE(flip.ToString().empty());
      }
    }
  }
  EXPECT_TRUE(saw_demand_flip);
}

TEST(Replayer, UnvalidatedEpochsAreCountedNotReplayed) {
  const std::string path =
      RecordRun("noval.hlog", 3, /*with_validator=*/false);
  const replay::Replayer replayer;
  auto report = replayer.ReplayFile(path);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().epochs_total, 3u);
  EXPECT_EQ(report.value().epochs_replayed, 0u);
  EXPECT_EQ(report.value().epochs_unvalidated, 3u);
  EXPECT_TRUE(report.value().clean());
}

TEST(Replayer, MissingFileIsAStatusNotACrash) {
  const replay::Replayer replayer;
  const auto report = replayer.ReplayFile("/nonexistent/nowhere.hlog");
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), util::StatusCode::kNotFound);
}

TEST(Replayer, VerdictFromEpochResultCarriesTheDigest) {
  const testing::HealthyNetwork net = testing::MakeAbilene();
  const core::Validator validator(net.topo);
  const telemetry::NetworkSnapshot snapshot = net.Snapshot();
  const controlplane::ControllerInput input = net.Input(snapshot);
  const core::ValidationReport report = validator.Validate(input, snapshot);

  controlplane::EpochResult result{
      .epoch = 4, .validated = true, .snapshot = snapshot};
  result.decision.accept = report.ok();
  result.decision.provenance = report.provenance;

  const replay::EpochVerdict verdict =
      replay::VerdictFromEpochResult(result);
  EXPECT_TRUE(verdict.validated);
  EXPECT_EQ(verdict.decision_digest, report.provenance.CanonicalDigest());
  EXPECT_EQ(verdict.invariants.size(), report.provenance.Invariants().size());
  EXPECT_EQ(verdict.evaluated,
            static_cast<std::uint32_t>(report.provenance.evaluated_count()));
}

}  // namespace
}  // namespace hodor
