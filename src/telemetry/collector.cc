#include "telemetry/collector.h"

#include "obs/metrics.h"

namespace hodor::telemetry {

void Collector::CollectInto(const net::GroundTruthState& state,
                            const flow::SimulationResult& sim,
                            std::uint64_t epoch, util::Rng& rng,
                            NetworkSnapshot& snapshot,
                            const SnapshotMutator& mutator) const {
  snapshot.Reset(epoch);
  for (const net::Node& node : topo_->nodes()) {
    ReportRouterSignals(*topo_, state, sim, node.id, opts_.agent, rng,
                        snapshot);
  }
  if (mutator) mutator(snapshot);
  if (opts_.run_probes) {
    ProbeAllLinksInto(*topo_, state, opts_.probes, rng,
                      snapshot.probe_buffer());
    snapshot.IndexProbeResults();
  }

  obs::MetricsRegistry& reg = obs::ResolveRegistry(opts_.metrics);
  reg.GetCounter("hodor_snapshots_total", {}, "Telemetry snapshots collected")
      .Increment();
  if (opts_.run_probes) {
    reg.GetCounter("hodor_probe_rounds_total", {},
                   "Active probe rounds (R4 manufactured signals)")
        .Increment();
  }
  reg.GetGauge("hodor_snapshot_signals_present", {},
               "Signal values present in the latest snapshot")
      .Set(static_cast<double>(snapshot.PresentSignalCount()));
}

NetworkSnapshot Collector::Collect(const net::GroundTruthState& state,
                                   const flow::SimulationResult& sim,
                                   std::uint64_t epoch, util::Rng& rng,
                                   const SnapshotMutator& mutator) const {
  NetworkSnapshot snapshot(*topo_, epoch);
  CollectInto(state, sim, epoch, rng, snapshot, mutator);
  return snapshot;
}

}  // namespace hodor::telemetry
