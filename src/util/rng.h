// Deterministic, seedable random number generation.
//
// All stochastic components in this repo (traffic-matrix generators, jitter
// models, fault injectors, topology generators) draw from a Rng handed to
// them explicitly. Nothing reads global entropy: every experiment is exactly
// reproducible from its seed, which the benches print alongside results.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <random>
#include <vector>

#include "util/status.h"

namespace hodor::util {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed), seed_(seed) {}

  std::uint64_t seed() const { return seed_; }

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    HODOR_CHECK(lo <= hi);
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  // Uniform integer in [lo, hi] (inclusive).
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi) {
    HODOR_CHECK(lo <= hi);
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  // Index in [0, n). Precondition: n > 0.
  std::size_t Index(std::size_t n) {
    HODOR_CHECK(n > 0);
    return static_cast<std::size_t>(
        std::uniform_int_distribution<std::size_t>(0, n - 1)(engine_));
  }

  // Bernoulli trial with probability p of true.
  bool Bernoulli(double p) {
    HODOR_CHECK(p >= 0.0 && p <= 1.0);
    return std::bernoulli_distribution(p)(engine_);
  }

  // Normal with given mean and standard deviation.
  double Gaussian(double mean, double stddev) {
    HODOR_CHECK(stddev >= 0.0);
    if (stddev == 0.0) return mean;
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  // Exponential with given rate lambda (> 0).
  double Exponential(double lambda) {
    HODOR_CHECK(lambda > 0.0);
    return std::exponential_distribution<double>(lambda)(engine_);
  }

  // Pareto-distributed value with given scale (minimum) and shape alpha.
  // Heavy-tailed demand entries use this.
  double Pareto(double scale, double alpha) {
    HODOR_CHECK(scale > 0.0 && alpha > 0.0);
    double u = Uniform(std::numeric_limits<double>::min(), 1.0);
    return scale / std::pow(u, 1.0 / alpha);
  }

  // Choose k distinct indices from [0, n) uniformly at random.
  // Precondition: k <= n.
  std::vector<std::size_t> SampleWithoutReplacement(std::size_t n, std::size_t k) {
    HODOR_CHECK(k <= n);
    // Floyd's algorithm would be O(k) but for our sizes a partial
    // Fisher-Yates over an index vector is simple and fast enough.
    std::vector<std::size_t> idx(n);
    for (std::size_t i = 0; i < n; ++i) idx[i] = i;
    for (std::size_t i = 0; i < k; ++i) {
      std::size_t j = i + Index(n - i);
      std::swap(idx[i], idx[j]);
    }
    idx.resize(k);
    return idx;
  }

  // Shuffle a vector in place.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    std::shuffle(v.begin(), v.end(), engine_);
  }

  // Derive an independent child generator; useful for giving each router
  // agent or trial its own stream so per-component behaviour is stable even
  // when other components change how much randomness they consume.
  Rng Fork() { return Rng(engine_() ^ 0x9e3779b97f4a7c15ULL); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uint64_t seed_;
};

}  // namespace hodor::util
