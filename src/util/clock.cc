#include "util/clock.h"

#include <cstdio>
#include <ctime>

namespace hodor::util {

std::string FormatUtcTimestamp(std::chrono::system_clock::time_point tp) {
  using namespace std::chrono;
  const auto since_epoch = tp.time_since_epoch();
  const auto secs = duration_cast<seconds>(since_epoch);
  auto millis = duration_cast<milliseconds>(since_epoch - secs).count();
  std::time_t t = static_cast<std::time_t>(secs.count());
  if (millis < 0) {  // pre-epoch points still render with millis in [0,999]
    millis += 1000;
    t -= 1;
  }
  std::tm utc{};
  gmtime_r(&t, &utc);
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                utc.tm_year + 1900, utc.tm_mon + 1, utc.tm_mday, utc.tm_hour,
                utc.tm_min, utc.tm_sec, static_cast<int>(millis));
  return buf;
}

std::string UtcTimestampNow() {
  return FormatUtcTimestamp(std::chrono::system_clock::now());
}

}  // namespace hodor::util
