#include "controlplane/services.h"

namespace hodor::controlplane {

std::vector<bool> TopologyService::Aggregate(
    const telemetry::NetworkSnapshot& snapshot) const {
  const net::Topology& topo = snapshot.topology();
  std::vector<bool> available(topo.link_count(), false);
  for (std::uint32_t i = 0; i < topo.link_count(); ++i) {
    const net::LinkId e(i);
    const auto src_status = snapshot.StatusAtSrc(e);
    const auto dst_status = snapshot.StatusAtDst(e);
    auto up = [&](const std::optional<telemetry::LinkStatus>& s) {
      if (!s.has_value()) return !opts_.missing_status_means_down;
      return *s == telemetry::LinkStatus::kUp;
    };
    available[e.value()] = up(src_status) && up(dst_status);
  }
  return available;
}

flow::DemandMatrix DemandService::Measure(const net::Topology& topo,
                                          const flow::DemandMatrix& true_demand,
                                          util::Rng& rng) const {
  flow::DemandMatrix measured(true_demand.node_count());
  for (net::NodeId i : topo.ExternalNodes()) {
    for (net::NodeId j : topo.ExternalNodes()) {
      if (i == j) continue;
      const double d = true_demand.At(i, j);
      if (d <= 0.0) continue;
      const double noise =
          1.0 + rng.Uniform(-opts_.measurement_noise, opts_.measurement_noise);
      measured.Set(i, j, d * noise);
    }
  }
  return measured;
}

void DrainService::Aggregate(const telemetry::NetworkSnapshot& snapshot,
                             std::vector<bool>& node_drained,
                             std::vector<bool>& link_drained) const {
  const net::Topology& topo = snapshot.topology();
  node_drained.assign(topo.node_count(), false);
  link_drained.assign(topo.link_count(), false);
  for (const net::Node& n : topo.nodes()) {
    node_drained[n.id.value()] = snapshot.NodeDrained(n.id).value_or(false);
  }
  for (std::uint32_t i = 0; i < topo.link_count(); ++i) {
    const net::LinkId e(i);
    // A link counts as drained when either end announces a drain.
    link_drained[e.value()] = snapshot.LinkDrainAtSrc(e).value_or(false) ||
                              snapshot.LinkDrainAtDst(e).value_or(false);
  }
}

ControllerInput AggregateInputs(const net::Topology& topo,
                                const telemetry::NetworkSnapshot& snapshot,
                                const flow::DemandMatrix& true_demand,
                                std::uint64_t epoch, util::Rng& rng,
                                const ControlInfraOptions& opts,
                                const AggregationFaultHooks& hooks) {
  ControllerInput input;
  input.epoch = epoch;

  TopologyService topology_service(opts.topology);
  input.link_available = topology_service.Aggregate(snapshot);
  if (hooks.topology) hooks.topology(input.link_available);

  DemandService demand_service(opts.demand);
  input.demand = demand_service.Measure(topo, true_demand, rng);
  if (hooks.demand) hooks.demand(input.demand);

  DrainService drain_service;
  drain_service.Aggregate(snapshot, input.node_drained, input.link_drained);
  if (hooks.drain) hooks.drain(input.node_drained, input.link_drained);

  return input;
}

}  // namespace hodor::controlplane
