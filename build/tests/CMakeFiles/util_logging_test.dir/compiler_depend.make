# Empty compiler generated dependencies file for util_logging_test.
# This may be replaced when dependencies are built.
