file(REMOVE_RECURSE
  "CMakeFiles/core_drain_protocol_test.dir/core/drain_protocol_test.cc.o"
  "CMakeFiles/core_drain_protocol_test.dir/core/drain_protocol_test.cc.o.d"
  "core_drain_protocol_test"
  "core_drain_protocol_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_drain_protocol_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
