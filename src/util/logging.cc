#include "util/logging.h"

#include <iostream>

namespace hodor::util {

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarning: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

Logger& Logger::Instance() {
  static Logger logger;
  return logger;
}

Logger::Logger() {
  sink_ = [](LogLevel level, const std::string& msg) {
    std::cerr << "[" << LogLevelName(level) << "] " << msg << "\n";
  };
}

void Logger::SetSink(Sink sink) {
  if (sink) {
    sink_ = std::move(sink);
  } else {
    sink_ = [](LogLevel level, const std::string& msg) {
      std::cerr << "[" << LogLevelName(level) << "] " << msg << "\n";
    };
  }
}

void Logger::Log(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(min_level_)) return;
  sink_(level, message);
}

}  // namespace hodor::util
