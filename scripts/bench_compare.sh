#!/bin/sh
# Latency regression gate over the committed BENCH_overhead.json.
#
# Re-runs bench_overhead the same way bench_snapshot.sh does (the full
# suite, so the benchmark mix matches the committed baseline), recomputes
# the per-stage latency medians from the hodor_stage_duration_us span
# histograms the run dumps, and fails (exit 1) if the median of any
# hardening/validation stage regressed more than 25% against the
# baseline committed at the repo root. Afterwards it runs the absolute
# steady-state gate (bench_epoch_engine --steady-state): incremental
# validation must stay >= 3x faster than full recompute with bit-identical
# digests, baseline or no baseline. Finally bench_fleet runs (digest
# parity self-gated) and, when BENCH_fleet.json is committed and was
# recorded on a host with the same hardware_threads, its aggregate
# epochs/sec cells are compared against the baseline.
#
#   scripts/bench_compare.sh            # full-length benchmark run
#   scripts/bench_compare.sh --quick    # short run, for check_build --bench-smoke
#
# The gate is deliberately coarse (histogram-bucket medians, generous
# threshold): it exists to catch order-of-magnitude mistakes — an
# accidentally quadratic loop, provenance in a hot path — not single-digit
# percentage noise from a busy machine. On shared hosts even the committed
# baseline binary blows the threshold during a noisy window (CPU steal,
# a sibling build), so a regression only fails the gate when it reproduces
# on every one of HODOR_BENCH_ATTEMPTS (default 3) fresh runs; a real
# regression is just as slow on the quiet runs.
set -e
cd "$(dirname "$0")/.."
ROOT=$(pwd)

# No baseline is not a failure: a fresh clone (or a branch that predates
# the baseline) has nothing to regress against. Tell the operator how to
# create one and succeed, so check_build --bench-smoke stays usable
# everywhere.
BASELINE="$ROOT/BENCH_overhead.json"
if [ ! -f "$BASELINE" ]; then
  echo "bench_compare: no baseline at $BASELINE — nothing to compare against."
  echo "bench_compare: run scripts/bench_snapshot.sh first to record one, then re-run."
  exit 0
fi
if ! python3 -c "import json,sys; json.load(open(sys.argv[1]))['metrics']['histograms']" "$BASELINE" 2>/dev/null; then
  echo "bench_compare: baseline $BASELINE is unparsable (truncated or hand-edited?)."
  echo "bench_compare: regenerate it with scripts/bench_snapshot.sh, then re-run."
  exit 0
fi

# Same default as bench_snapshot.sh: iteration counts scale uniformly with
# min-time, so the per-stage sample mix — and hence the medians — stay
# comparable across the quick and full settings.
MIN_TIME="${HODOR_BENCH_MIN_TIME:-0.5}"
if [ "$1" = "--quick" ]; then
  MIN_TIME=0.05
fi

cmake -B build -S . >/dev/null
cmake --build build -j --target bench_overhead >/dev/null

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

# The bench binary dumps the observability registry (including the stage
# span histograms) to BENCH_overhead.json in its working directory at
# exit; run it from a scratch dir so the committed baseline stays intact.
# A failing comparison re-runs the whole benchmark (fresh samples, not a
# re-read of the same noisy ones) up to ATTEMPTS times before the gate
# fails for real.
ATTEMPTS="${HODOR_BENCH_ATTEMPTS:-3}"
attempt=1
while :; do
  (cd "$TMP" && "$ROOT/build/bench/bench_overhead" \
      --benchmark_min_time="$MIN_TIME" >/dev/null)

  if python3 - "$BASELINE" "$TMP/BENCH_overhead.json" <<'EOF'
import json
import sys

THRESHOLD = 1.25  # fail when candidate median > 1.25x baseline median
STAGES = ("harden", "check-demand", "check-topology", "check-drain",
          "timeseries-sample", "confidence-score")


def hardware_threads(path):
    # Snapshots record the host's hardware_threads (bench_common.h);
    # baselines from before that field return None.
    with open(path) as f:
        return json.load(f).get("hardware_threads")


def warn_on_host_mismatch(base_path, cand_path):
    # A baseline recorded on different hardware makes the ratios
    # apples-to-oranges; that is an operator problem (regenerate the
    # baseline on this host), not a code regression, so warn — don't fail.
    base_ht = hardware_threads(base_path)
    cand_ht = hardware_threads(cand_path)
    if base_ht is None:
        print("bench_compare: WARNING baseline predates the "
              "hardware_threads field; regenerate it with "
              "scripts/bench_snapshot.sh for host-comparability checks")
        return
    if cand_ht is not None and base_ht != cand_ht:
        print(f"bench_compare: WARNING baseline recorded with "
              f"hardware_threads={base_ht} but this host has {cand_ht}; "
              f"ratios below compare different machines — regenerate the "
              f"baseline here before trusting a failure")


def stage_median(path, stage):
    with open(path) as f:
        doc = json.load(f)
    for h in doc["metrics"]["histograms"]:
        if (h["name"] == "hodor_stage_duration_us"
                and h["labels"].get("stage") == stage):
            total = h["count"]
            if total == 0:
                return None
            target = total / 2.0
            seen = 0
            lo = 0.0
            for b in h["buckets"]:
                if seen + b["count"] >= target:
                    # Linear interpolation inside the bucket; the +inf
                    # bucket has no upper bound, so fall back to its floor.
                    hi = b["le"]
                    if hi is None or hi == "inf":
                        return lo
                    frac = (target - seen) / b["count"]
                    return lo + (hi - lo) * frac
                seen += b["count"]
                if b["le"] not in (None, "inf"):
                    lo = b["le"]
            return lo
    return None


base_path, cand_path = sys.argv[1], sys.argv[2]
warn_on_host_mismatch(base_path, cand_path)
regressed = []  # (stage, ratio), so the failure line names the culprits
print(f"{'stage':<16} {'baseline us':>12} {'candidate us':>13} {'ratio':>7}")
for stage in STAGES:
    base = stage_median(base_path, stage)
    cand = stage_median(cand_path, stage)
    if base is None or cand is None or base <= 0:
        print(f"{stage:<16} {'n/a':>12} {'n/a':>13}   (skipped: missing data)")
        continue
    ratio = cand / base
    mark = ""
    if ratio > THRESHOLD:
        regressed.append((stage, ratio))
        mark = "  <-- REGRESSION"
    print(f"{stage:<16} {base:>12.1f} {cand:>13.1f} {ratio:>6.2f}x{mark}")
if regressed:
    names = ", ".join(f"{stage} ({ratio:.2f}x)" for stage, ratio in regressed)
    print(f"bench_compare: FAIL (median regressed beyond {THRESHOLD}x): {names}")
    sys.exit(1)
print("bench_compare: OK")
EOF
  then
    break
  fi
  if [ "$attempt" -ge "$ATTEMPTS" ]; then
    echo "bench_compare: FAIL — regression reproduced on all $ATTEMPTS runs."
    exit 1
  fi
  attempt=$((attempt + 1))
  echo "bench_compare: retrying with fresh samples ($attempt/$ATTEMPTS) —" \
       "a real regression reproduces; host noise should not"
  sleep 5
done
# --steady-state self-gates, exiting 1 when the steady-state speedup falls
# below its 3x floor or the incremental digests diverge from the forced
# full recompute. Unlike the stage medians above this needs no committed
# baseline — the floor is absolute — so it runs in --quick mode too.
cmake --build build -j --target bench_epoch_engine >/dev/null
(cd "$TMP" && "$ROOT/build/bench/bench_epoch_engine" --steady-state)

# Fleet throughput gate over the committed BENCH_fleet.json. bench_fleet
# self-gates digest parity (exit 1 on any fleet/standalone divergence);
# the comparison below additionally flags an aggregate epochs/sec collapse
# against the committed baseline, same philosophy as the stage medians:
# generous threshold, warn-don't-fail on a hardware mismatch.
FLEET_BASELINE="$ROOT/BENCH_fleet.json"
cmake --build build -j --target bench_fleet >/dev/null
(cd "$TMP" && "$ROOT/build/bench/bench_fleet")
if [ -f "$FLEET_BASELINE" ]; then
  python3 - "$FLEET_BASELINE" "$TMP/BENCH_fleet.json" <<'EOF'
import json
import sys

THRESHOLD = 1.5  # fail when aggregate epochs/sec drops below baseline/1.5


def load(path):
    with open(path) as f:
        return json.load(f)


base_doc, cand_doc = load(sys.argv[1]), load(sys.argv[2])
base_ht = base_doc.get("hardware_threads")
cand_ht = cand_doc.get("hardware_threads")
compare = True
if base_ht != cand_ht:
    print(f"bench_compare: WARNING fleet baseline recorded with "
          f"hardware_threads={base_ht} but this host has {cand_ht}; "
          f"skipping the throughput comparison (digest parity already "
          f"gated by bench_fleet itself) — regenerate the baseline here")
    compare = False


def cells(doc):
    return {(r["instances"], r["threads"]): r["aggregate_epochs_per_sec"]
            for r in doc.get("reports", [])}


if compare:
    base_cells, cand_cells = cells(base_doc), cells(cand_doc)
    regressed = []
    print(f"{'instances':>9} {'threads':>7} {'baseline eps':>13} "
          f"{'candidate eps':>14} {'ratio':>7}")
    for key in sorted(base_cells):
        if key not in cand_cells or base_cells[key] <= 0:
            continue
        ratio = base_cells[key] / max(cand_cells[key], 1e-9)
        mark = ""
        if ratio > THRESHOLD:
            regressed.append((key, ratio))
            mark = "  <-- REGRESSION"
        print(f"{key[0]:>9} {key[1]:>7} {base_cells[key]:>13.2f} "
              f"{cand_cells[key]:>14.2f} {ratio:>6.2f}x{mark}")
    if regressed:
        names = ", ".join(f"{k[0]}x{k[1]}t ({r:.2f}x)" for k, r in regressed)
        print(f"bench_compare: FAIL (fleet throughput collapsed beyond "
              f"{THRESHOLD}x): {names}")
        sys.exit(1)
    print("bench_compare: fleet throughput OK")
EOF
else
  echo "bench_compare: no fleet baseline at $FLEET_BASELINE — digest parity"
  echo "bench_compare: gated by bench_fleet above; commit BENCH_fleet.json"
  echo "bench_compare: (scripts/bench_snapshot.sh or a bench_fleet run at"
  echo "bench_compare: the repo root) to enable the throughput comparison."
fi
