// Export smoke test (the ISSUE's acceptance scenario): one pipeline epoch
// through the validator on a hermetic registry must yield a registry export
// with per-stage histograms and check counters — valid Prometheus text and
// valid JSON — and, for an injected fault, a DecisionRecord naming the
// failed invariant with its residual and threshold.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/validator.h"
#include "faults/aggregation_faults.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "test_util.h"

namespace hodor {
namespace {

TEST(ObsExport, OneValidatedEpochPopulatesRegistry) {
  net::Topology topo = net::Abilene();
  net::GroundTruthState state(topo);
  util::Rng rng(11);
  flow::DemandMatrix demand = flow::GravityDemand(topo, rng);
  flow::NormalizeToMaxUtilization(topo, 0.6, demand);

  obs::MetricsRegistry reg;
  std::ostringstream trace_out;
  obs::TraceWriter trace(trace_out);

  controlplane::PipelineOptions popts;
  popts.metrics = &reg;
  popts.trace = &trace;
  controlplane::Pipeline pipeline(topo, popts, util::Rng(12));
  pipeline.Bootstrap(state, demand);
  core::ValidatorOptions vopts;
  vopts.metrics = &reg;
  vopts.trace = &trace;
  core::Validator validator(topo, vopts);
  pipeline.SetValidator(validator.AsPipelineValidator());

  const auto result = pipeline.RunEpoch(state, demand);
  ASSERT_TRUE(result.validated);
  ASSERT_TRUE(result.decision.accept) << result.decision.reason;

  // Per-stage histograms: every pipeline stage of the taxonomy ran exactly
  // once except simulate (measure + outcome = 2). timeseries-sample is
  // sink-side work (obs::Observatory), not a pipeline stage, so a bare
  // epoch never observes it.
  for (obs::Stage stage : obs::kAllStages) {
    if (stage == obs::Stage::kTimeseriesSample) continue;
    const obs::Histogram* h = reg.FindHistogram(
        "hodor_stage_duration_us", {{"stage", obs::StageName(stage)}});
    ASSERT_NE(h, nullptr) << obs::StageName(stage);
    const std::uint64_t expected = stage == obs::Stage::kSimulate ? 2u : 1u;
    EXPECT_EQ(h->count(), expected) << obs::StageName(stage);
  }
  // The EpochResult carries the same spans for per-epoch reporting.
  EXPECT_EQ(result.spans.size(), 7u);
  // And the JSONL trace saw every span (pipeline's 7 + validator's 4).
  EXPECT_EQ(trace.written(), 11u);

  // Check counters: every check ran once and nothing fired.
  for (const std::string check : {"demand", "topology", "drain"}) {
    const obs::Counter* runs =
        reg.FindCounter("hodor_check_runs_total", {{"check", check}});
    ASSERT_NE(runs, nullptr) << check;
    EXPECT_DOUBLE_EQ(runs->value(), 1.0) << check;
    const obs::Counter* invariants =
        reg.FindCounter("hodor_check_invariants_total", {{"check", check}});
    ASSERT_NE(invariants, nullptr) << check;
    EXPECT_GT(invariants->value(), 0.0) << check;
    const obs::Counter* violations =
        reg.FindCounter("hodor_check_violations_total", {{"check", check}});
    ASSERT_NE(violations, nullptr) << check;
    EXPECT_DOUBLE_EQ(violations->value(), 0.0) << check;
  }
  const obs::Counter* epochs = reg.FindCounter("hodor_epochs_total");
  ASSERT_NE(epochs, nullptr);
  EXPECT_DOUBLE_EQ(epochs->value(), 1.0);
  const obs::Counter* validations =
      reg.FindCounter("hodor_validations_total");
  ASSERT_NE(validations, nullptr);
  EXPECT_DOUBLE_EQ(validations->value(), 1.0);

  // Prometheus text exposition: families typed, stage series present.
  const std::string prom = reg.ExportPrometheus();
  EXPECT_NE(prom.find("# TYPE hodor_stage_duration_us histogram"),
            std::string::npos);
  EXPECT_NE(prom.find("hodor_stage_duration_us_bucket{stage=\"harden\""),
            std::string::npos);
  EXPECT_NE(prom.find("hodor_stage_duration_us_count{stage=\"check-demand\"} 1"),
            std::string::npos);
  EXPECT_NE(prom.find("hodor_check_runs_total{check=\"demand\"} 1"),
            std::string::npos);
  EXPECT_NE(prom.find("# TYPE hodor_epochs_total counter"),
            std::string::npos);

  // JSON export parses.
  const std::string json = reg.ExportJson();
  EXPECT_TRUE(obs::IsValidJson(json)) << json.substr(0, 200);
  EXPECT_NE(json.find("\"hodor_stage_duration_us\""), std::string::npos);

  // Every trace line is one valid JSON object.
  std::istringstream lines(trace_out.str());
  std::string line;
  while (std::getline(lines, line)) {
    EXPECT_TRUE(obs::IsValidJson(line)) << line;
  }
}

TEST(ObsExport, InjectedFaultYieldsNamedProvenance) {
  net::Topology topo = net::Abilene();
  net::GroundTruthState state(topo);
  util::Rng rng(21);
  flow::DemandMatrix demand = flow::GravityDemand(topo, rng);
  flow::NormalizeToMaxUtilization(topo, 0.6, demand);

  obs::MetricsRegistry reg;
  controlplane::PipelineOptions popts;
  popts.metrics = &reg;
  controlplane::Pipeline pipeline(topo, popts, util::Rng(22));
  pipeline.Bootstrap(state, demand);
  core::ValidatorOptions vopts;
  vopts.metrics = &reg;
  core::Validator validator(topo, vopts);
  pipeline.SetValidator(validator.AsPipelineValidator());

  // Epoch 0 healthy, epoch 1 loses the busiest node's demand rows.
  ASSERT_TRUE(pipeline.RunEpoch(state, demand).decision.accept);
  controlplane::AggregationFaultHooks hooks;
  hooks.demand = faults::DemandRowsDropped(topo, {topo.NodeIds()[0]});
  const auto bad = pipeline.RunEpoch(state, demand, nullptr, hooks);
  ASSERT_FALSE(bad.decision.accept);

  const obs::DecisionRecord& prov = bad.decision.provenance;
  EXPECT_EQ(prov.epoch, 1u);
  EXPECT_FALSE(prov.accept);
  EXPECT_GT(prov.failed_count(), 0u);
  EXPECT_GT(prov.evaluated_count(), prov.failed_count());
  const obs::InvariantRecord* first = prov.FirstFailure();
  ASSERT_NE(first, nullptr);
  // The fault is a demand-input fault; the record names the invariant and
  // quantifies the breach.
  EXPECT_EQ(first->check, "demand");
  EXPECT_NE(first->invariant.find("("), std::string::npos);
  EXPECT_GT(first->residual, first->threshold);
  EXPECT_EQ(first->verdict, obs::InvariantVerdict::kFail);
  EXPECT_TRUE(obs::IsValidJson(prov.ToJson()));

  // Rejection surfaced in the counters too.
  const obs::Counter* rejects =
      reg.FindCounter("hodor_validation_rejects_total");
  ASSERT_NE(rejects, nullptr);
  EXPECT_DOUBLE_EQ(rejects->value(), 1.0);
  const obs::Counter* violations =
      reg.FindCounter("hodor_check_violations_total", {{"check", "demand"}});
  ASSERT_NE(violations, nullptr);
  EXPECT_GT(violations->value(), 0.0);
}

}  // namespace
}  // namespace hodor
