#!/bin/sh
# Tier-1 verification plus a strict-warning pass over the observability
# layer (run from anywhere).
#
#   1. Configure + build + ctest — the repo's tier-1 gate.
#   2. Re-compile src/obs/ with -Wall -Wextra -Werror: the obs layer is the
#      newest subsystem and must stay warning-clean even when the rest of
#      the tree only warns.
#   3. With --sanitize: an ASan+UBSan configure/build/ctest pass in
#      build-sanitize/. The telemetry server is the repo's first threaded
#      and socket-handling code, so the sanitizers cover lifetime and
#      data-race-adjacent bugs the plain build cannot see.
#   4. With --sanitize=thread: a TSan configure/build in build-tsan/
#      running just the genuinely threaded tests — the util parallel
#      runtime, the sink-queue SPSC stress test, the sharded hardening
#      path, the staged epoch engine, and the thread-count equivalence
#      fingerprints. TSan and ASan cannot share a build tree (or a
#      process), hence the separate mode and directory.
#   5. With --bench-smoke: a short bench_compare.sh run that fails on a
#      >25% median regression of the hardening/validation stage latencies
#      against the committed BENCH_overhead.json baseline.
#   6. With --replay-gate: replays tests/data/golden_abilene.hlog through
#      `hodor_replay replay` at 1 and 4 threads. Any decision-digest
#      divergence fails — the staged epoch engine's determinism contract
#      (DESIGN §9) enforced against a recorded log.
#   7. With --trace-gate: the execution tracer's cost and output gates
#      (DESIGN §10) — bench_epoch_engine --trace-overhead fails if tracing
#      regresses the fastest waxman100 epoch by more than 3% or perturbs a
#      digest, then a live_pipeline run must produce a Perfetto trace that
#      parses as JSON with a non-empty traceEvents array.
set -e
cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j
(cd build && ctest --output-on-failure -j)

echo "== strict-warning pass over src/obs/ and src/replay/ =="
for f in src/obs/*.cc src/obs/health/*.cc src/obs/serve/*.cc src/replay/*.cc; do
  echo "  g++ -Werror $f"
  g++ -std=c++20 -fsyntax-only -Wall -Wextra -Werror -I src "$f"
done

if [ "$1" = "--bench-smoke" ]; then
  echo "== bench smoke (quick latency regression gate) =="
  ./scripts/bench_compare.sh --quick
fi

if [ "$1" = "--sanitize" ]; then
  echo "== ASan+UBSan pass (build-sanitize/) =="
  cmake -B build-sanitize -S . -DCMAKE_BUILD_TYPE=Debug \
    -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all"
  cmake --build build-sanitize -j
  (cd build-sanitize && ctest --output-on-failure -j)
fi

if [ "$1" = "--sanitize=thread" ]; then
  echo "== TSan pass over the threaded tests (build-tsan/) =="
  cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=Debug \
    -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-sanitize-recover=all"
  cmake --build build-tsan -j --target \
    util_parallel_test util_spsc_queue_test util_exec_trace_test \
    core_hardening_test controlplane_epoch_engine_test \
    integration_frame_equivalence_test
  (cd build-tsan && ctest --output-on-failure \
    -R "util_parallel_test|util_spsc_queue_test|util_exec_trace_test|core_hardening_test|controlplane_epoch_engine_test|integration_frame_equivalence_test" -j)
fi

if [ "$1" = "--trace-gate" ]; then
  echo "== execution tracer gates (overhead + Perfetto output) =="
  cmake --build build -j --target bench_epoch_engine live_pipeline
  ROOT=$(pwd)
  TMP=$(mktemp -d)
  trap 'rm -rf "$TMP"' EXIT
  # Overhead: tracer on vs off, min-epoch ratio <= 1.03, digest parity.
  (cd "$TMP" && "$ROOT/build/bench/bench_epoch_engine" --trace-overhead)
  # Output: the emitted trace must be a loadable, non-empty Perfetto JSON.
  ./build/examples/live_pipeline --topo=waxman100 --epochs=6 \
    --trace-out="$TMP/trace.json" >/dev/null
  python3 - "$TMP/trace.json" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    doc = json.load(f)
events = doc["traceEvents"]
assert events, "traceEvents is empty"
kinds = {e.get("ph") for e in events}
assert "X" in kinds, f"no complete events in trace (phases: {kinds})"
print(f"trace-gate: {len(events)} trace events parse cleanly")
EOF
fi

if [ "$1" = "--replay-gate" ]; then
  echo "== golden replay gate (digest determinism at 1 and 4 threads) =="
  cmake --build build -j --target hodor_replay_cli
  for n in 1 4; do
    echo "  hodor_replay replay --threads=$n"
    ./build/examples/hodor_replay replay tests/data/golden_abilene.hlog \
      --threads="$n"
  done
fi
echo "check_build: OK"
