#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace hodor::util {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(0, 1), b.Uniform(0, 1));
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 16; ++i) {
    if (a.Uniform(0, 1) != b.Uniform(0, 1)) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Rng, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.Uniform(2.0, 5.0);
    EXPECT_GE(x, 2.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(Rng, UniformIntInclusiveRange) {
  Rng rng(7);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto x = rng.UniformInt(-2, 2);
    EXPECT_GE(x, -2);
    EXPECT_LE(x, 2);
    seen.insert(x);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit over 1000 draws
}

TEST(Rng, IndexCoversRange) {
  Rng rng(9);
  std::set<std::size_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.Index(4));
  EXPECT_EQ(seen.size(), 4u);
}

TEST(Rng, IndexRequiresPositiveN) {
  Rng rng(1);
  EXPECT_THROW(rng.Index(0), std::logic_error);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(Rng, BernoulliRoughlyFair) {
  Rng rng(11);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.Bernoulli(0.5)) ++heads;
  }
  EXPECT_NEAR(heads, 5000, 300);
}

TEST(Rng, GaussianMoments) {
  Rng rng(13);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Gaussian(10.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(Rng, GaussianZeroStddevIsDeterministic) {
  Rng rng(1);
  EXPECT_DOUBLE_EQ(rng.Gaussian(3.5, 0.0), 3.5);
}

TEST(Rng, ParetoRespectsScale) {
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(rng.Pareto(2.0, 1.5), 2.0);
  }
}

TEST(Rng, ExponentialIsPositive) {
  Rng rng(19);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GT(rng.Exponential(0.5), 0.0);
  }
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(23);
  const auto sample = rng.SampleWithoutReplacement(10, 7);
  EXPECT_EQ(sample.size(), 7u);
  std::set<std::size_t> distinct(sample.begin(), sample.end());
  EXPECT_EQ(distinct.size(), 7u);
  for (std::size_t s : sample) EXPECT_LT(s, 10u);
}

TEST(Rng, SampleWholePopulation) {
  Rng rng(29);
  auto sample = rng.SampleWithoutReplacement(5, 5);
  std::sort(sample.begin(), sample.end());
  EXPECT_EQ(sample, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(Rng, SampleRejectsOversizedRequest) {
  Rng rng(1);
  EXPECT_THROW(rng.SampleWithoutReplacement(3, 4), std::logic_error);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(31);
  Rng child = parent.Fork();
  // The child must not replay the parent's stream.
  Rng parent_copy(31);
  (void)parent_copy.Fork();
  bool differs = false;
  for (int i = 0; i < 8; ++i) {
    if (child.Uniform(0, 1) != parent.Uniform(0, 1)) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(37);
  std::vector<int> v{1, 2, 3, 4, 5, 6};
  auto sorted = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

}  // namespace
}  // namespace hodor::util
