#include "controlplane/pipeline.h"

#include <gtest/gtest.h>

#include "controlplane/sdn_controller.h"
#include "faults/aggregation_faults.h"
#include "flow/tm_generators.h"
#include "net/topologies.h"
#include "util/logging.h"

namespace hodor::controlplane {
namespace {

using net::LinkId;
using net::NodeId;

struct PipelineFixture : ::testing::Test {
  PipelineFixture()
      : topo(net::Abilene()),
        state(topo),
        pipeline(topo, PipelineOptions{}, util::Rng(2)) {
    util::Rng rng(1);
    demand = flow::GravityDemand(topo, rng);
    flow::NormalizeToMaxUtilization(topo, 0.6, demand);
    pipeline.Bootstrap(state, demand);
    util::Logger::Instance().SetMinLevel(util::LogLevel::kError);
  }
  ~PipelineFixture() override {
    util::Logger::Instance().SetMinLevel(util::LogLevel::kInfo);
  }

  net::Topology topo;
  net::GroundTruthState state;
  flow::DemandMatrix demand;
  Pipeline pipeline;
};

TEST_F(PipelineFixture, HealthyEpochDeliversEverything) {
  const EpochResult r = pipeline.RunEpoch(state, demand);
  EXPECT_EQ(r.epoch, 0u);
  EXPECT_FALSE(r.validated);  // no validator installed
  EXPECT_GT(r.metrics.demand_satisfaction, 0.999);
  EXPECT_EQ(r.metrics.congested_link_count, 0u);
  EXPECT_TRUE(pipeline.last_good_input().has_value());
}

TEST_F(PipelineFixture, EpochNumbersIncrease) {
  EXPECT_EQ(pipeline.RunEpoch(state, demand).epoch, 0u);
  EXPECT_EQ(pipeline.RunEpoch(state, demand).epoch, 1u);
  EXPECT_EQ(pipeline.RunEpoch(state, demand).epoch, 2u);
}

TEST_F(PipelineFixture, UnvalidatedBadDemandCausesOutage) {
  // Without a validator, dropping the two biggest sources' demand makes the
  // controller under-provision paths: the real traffic then congests links.
  NodeId biggest = NodeId(0);
  double best = 0.0;
  for (NodeId v : topo.ExternalNodes()) {
    if (demand.RowSum(v) > best) {
      best = demand.RowSum(v);
      biggest = v;
    }
  }
  AggregationFaultHooks hooks;
  hooks.demand = faults::DemandRowsDropped(topo, {biggest});
  const EpochResult r = pipeline.RunEpoch(state, demand, nullptr, hooks);
  EXPECT_FALSE(r.validated);
  // The controller never saw the demand, so its plan has no paths for that
  // ingress: its traffic is unrouted (the §2.2 partial-demand outage).
  EXPECT_LT(r.metrics.demand_satisfaction, 0.95);
}

TEST_F(PipelineFixture, RejectingValidatorTriggersFallback) {
  int calls = 0;
  pipeline.SetValidator(
      [&](const ControllerInput&, const telemetry::NetworkSnapshot&) {
        ++calls;
        ValidationDecision d;
        d.accept = calls == 1;  // accept the first epoch, reject after
        d.reason = "synthetic rejection";
        return d;
      });
  const EpochResult first = pipeline.RunEpoch(state, demand);
  EXPECT_TRUE(first.decision.accept);
  EXPECT_FALSE(first.used_fallback);

  const EpochResult second = pipeline.RunEpoch(state, demand);
  EXPECT_TRUE(second.validated);
  EXPECT_FALSE(second.decision.accept);
  EXPECT_TRUE(second.used_fallback);
  EXPECT_EQ(second.decision.reason, "synthetic rejection");
  // Fallback reuses epoch 0's (good) input: traffic still flows.
  EXPECT_GT(second.metrics.demand_satisfaction, 0.999);
}

TEST_F(PipelineFixture, AlertOnlyPolicyUsesBadInputAnyway) {
  PipelineOptions opts;
  opts.policy = RejectionPolicy::kAlertOnly;
  Pipeline alert_pipeline(topo, opts, util::Rng(3));
  alert_pipeline.Bootstrap(state, demand);
  alert_pipeline.SetValidator(
      [](const ControllerInput&, const telemetry::NetworkSnapshot&) {
        return ValidationDecision{false, "always reject"};
      });
  const EpochResult r = alert_pipeline.RunEpoch(state, demand);
  EXPECT_FALSE(r.decision.accept);
  EXPECT_FALSE(r.used_fallback);  // alert-only: no fallback
}

TEST_F(PipelineFixture, RejectionWithoutHistoryUsesRawInput) {
  // First-ever epoch rejected: no last-good exists, so the raw input is
  // used despite the fallback policy.
  pipeline.SetValidator(
      [](const ControllerInput&, const telemetry::NetworkSnapshot&) {
        return ValidationDecision{false, "reject from the start"};
      });
  const EpochResult r = pipeline.RunEpoch(state, demand);
  EXPECT_FALSE(r.decision.accept);
  EXPECT_FALSE(r.used_fallback);
  EXPECT_FALSE(pipeline.last_good_input().has_value());
}

TEST_F(PipelineFixture, RejectedInputNotRecordedAsLastGood) {
  pipeline.SetValidator(
      [](const ControllerInput&, const telemetry::NetworkSnapshot&) {
        return ValidationDecision{true, ""};
      });
  (void)pipeline.RunEpoch(state, demand);
  const auto& good = pipeline.last_good_input();
  ASSERT_TRUE(good.has_value());
  const double good_total = good->demand.Total();

  pipeline.SetValidator(
      [](const ControllerInput&, const telemetry::NetworkSnapshot&) {
        return ValidationDecision{false, "bad"};
      });
  AggregationFaultHooks hooks;
  hooks.demand = faults::DemandScaled(100.0);
  (void)pipeline.RunEpoch(state, demand, nullptr, hooks);
  // last-good still holds the accepted epoch's demand.
  EXPECT_NEAR(pipeline.last_good_input()->demand.Total(), good_total, 1e-9);
}

TEST(SdnController, RoutesOnlyOverUsableLinks) {
  net::Topology topo = net::Ring(4);
  SdnController controller(topo);
  ControllerInput input = MakeEmptyInput(topo);
  input.demand = flow::DemandMatrix(topo.node_count());
  input.demand.Set(NodeId(0), NodeId(2), 10.0);
  const LinkId banned = topo.FindLink(NodeId(0), NodeId(1)).value();
  input.link_available[banned.value()] = false;
  input.link_available[topo.link(banned).reverse.value()] = false;
  const flow::RoutingPlan plan = controller.ComputeRouting(input);
  for (const auto& wp : plan.PathsFor(NodeId(0), NodeId(2))) {
    for (LinkId e : wp.path) {
      EXPECT_NE(e, banned);
      EXPECT_NE(e, topo.link(banned).reverse);
    }
  }
}

TEST(SdnController, DrainedNodeAvoided) {
  net::Topology topo = net::Ring(4);
  SdnController controller(topo);
  ControllerInput input = MakeEmptyInput(topo);
  input.demand = flow::DemandMatrix(topo.node_count());
  input.demand.Set(NodeId(0), NodeId(2), 10.0);
  input.node_drained[1] = true;
  const flow::RoutingPlan plan = controller.ComputeRouting(input);
  const auto& paths = plan.PathsFor(NodeId(0), NodeId(2));
  ASSERT_FALSE(paths.empty());
  for (const auto& wp : paths) {
    for (LinkId e : wp.path) {
      EXPECT_NE(topo.link(e).src, NodeId(1));
      EXPECT_NE(topo.link(e).dst, NodeId(1));
    }
  }
}


TEST(SdnController, AlgorithmOptionSelectsRouting) {
  net::Topology topo = net::Ring(4);
  ControllerInput input = MakeEmptyInput(topo);
  input.demand = flow::DemandMatrix(topo.node_count());
  input.demand.Set(NodeId(0), NodeId(2), 10.0);  // two equal-cost paths

  ControllerOptions spf;
  spf.algorithm = RoutingAlgorithm::kShortestPath;
  const auto spf_paths = SdnController(topo, spf)
                             .ComputeRouting(input)
                             .PathsFor(NodeId(0), NodeId(2));
  ASSERT_EQ(spf_paths.size(), 1u);
  EXPECT_DOUBLE_EQ(spf_paths[0].weight, 1.0);

  ControllerOptions ecmp;
  ecmp.algorithm = RoutingAlgorithm::kEcmp;
  const auto ecmp_paths = SdnController(topo, ecmp)
                              .ComputeRouting(input)
                              .PathsFor(NodeId(0), NodeId(2));
  ASSERT_EQ(ecmp_paths.size(), 2u);
  EXPECT_DOUBLE_EQ(ecmp_paths[0].weight, 0.5);

  ControllerOptions te;
  te.algorithm = RoutingAlgorithm::kGreedyTe;
  const auto te_paths = SdnController(topo, te)
                            .ComputeRouting(input)
                            .PathsFor(NodeId(0), NodeId(2));
  EXPECT_FALSE(te_paths.empty());
}

TEST(SdnController, EcmpSpreadsLeafSpineTraffic) {
  // The datacenter configuration: ECMP over a 4-spine fabric splits each
  // leaf pair's traffic four ways.
  net::Topology topo = net::LeafSpine(4, 4);
  ControllerInput input = MakeEmptyInput(topo);
  input.demand = flow::DemandMatrix(topo.node_count());
  const NodeId l0 = topo.FindNode("leaf0").value();
  const NodeId l1 = topo.FindNode("leaf1").value();
  input.demand.Set(l0, l1, 8.0);
  ControllerOptions ecmp;
  ecmp.algorithm = RoutingAlgorithm::kEcmp;
  const auto paths =
      SdnController(topo, ecmp).ComputeRouting(input).PathsFor(l0, l1);
  ASSERT_EQ(paths.size(), 4u);
  for (const auto& wp : paths) EXPECT_DOUBLE_EQ(wp.weight, 0.25);
}

}  // namespace
}  // namespace hodor::controlplane
