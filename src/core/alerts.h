// Operator alerting — the integration surface §3 step 3 describes:
//
//   "We anticipate Hodor's validation checks to be integrated in a similar
//    process to how existing checks are integrated today into alerting and
//    management tools: for instance, Hodor can reject inputs that fail
//    validation and fall back temporarily to the last input state, or
//    trigger an alert for a reliability engineer to intervene."
//
// AlertBuilder turns a ValidationReport into structured Alert records a
// management system can route: severity, the affected entity, a
// human-readable message, the paper mechanism that fired, and — where the
// finding concerns concrete router signals — the OpenConfig-style paths an
// engineer would query first (via the SignalCatalog).
#pragma once

#include <string>
#include <vector>

#include "core/validator.h"
#include "telemetry/signal_catalog.h"

namespace hodor::core {

enum class AlertSeverity {
  kInfo,      // noteworthy, no action needed (e.g. repaired counters)
  kWarning,   // needs eyes (drained-but-active, low-confidence verdicts)
  kCritical,  // controller input does not reflect the network: intervene
};

constexpr const char* AlertSeverityName(AlertSeverity s) {
  switch (s) {
    case AlertSeverity::kInfo: return "INFO";
    case AlertSeverity::kWarning: return "WARNING";
    case AlertSeverity::kCritical: return "CRITICAL";
  }
  return "?";
}

struct Alert {
  AlertSeverity severity = AlertSeverity::kInfo;
  // Which validation mechanism raised it: "hardening", "demand-check",
  // "topology-check", "drain-check".
  std::string source;
  // The affected router or link, by name ("NYCMng", "NYCMng->WASHng").
  std::string entity;
  std::string message;
  // Signal paths an engineer should inspect first (may be empty).
  std::vector<std::string> signal_paths;

  // "[CRITICAL] demand-check NYCMng: ingress invariant ... (paths: ...)".
  std::string Render() const;
};

struct AlertOptions {
  // Repaired counters are reported as kInfo when true; silently dropped
  // otherwise (production systems usually want the paper trail).
  bool report_repairs = true;
};

// Builds the alert list for one validation report. Deterministic; ordering
// is severity-descending, then source.
std::vector<Alert> BuildAlerts(const net::Topology& topo,
                               const telemetry::SignalCatalog& catalog,
                               const ValidationReport& report,
                               const AlertOptions& opts = {});

}  // namespace hodor::core
