#!/bin/sh
# Regenerates every checked-in golden after an INTENTIONAL change to the
# validator's observable outputs (canonical provenance text, fingerprint
# columns, or the flight-recorder wire format):
#
#   1. tests/data/golden_abilene.hlog — the recorded Abilene run the
#      golden-replay test and the --replay-gate / --delta-gate replay
#      against, re-recorded at the current wire format.
#   2. The frame-equivalence fingerprint table in
#      tests/integration/frame_equivalence_test.cc — recomputed via the
#      test's HODOR_PRINT_GOLDENS=1 mode and patched in place between the
#      REGEN-BEGIN/REGEN-END markers.
#
# Then re-runs the affected tests and gates to prove the refreshed goldens
# are self-consistent. Commit the resulting diffs together with the change
# that motivated them — never to paper over an unexplained divergence.
set -e
cd "$(dirname "$0")/.."

cmake -B build -S . >/dev/null
cmake --build build -j --target hodor_replay_cli \
  integration_frame_equivalence_test replay_golden_replay_test

echo "== 1/2: re-record tests/data/golden_abilene.hlog =="
./build/examples/hodor_replay record tests/data/golden_abilene.hlog \
  --topo=abilene --epochs=5 --seed=7 --fault-epoch=2

echo "== 2/2: recompute frame-equivalence fingerprints =="
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT
HODOR_PRINT_GOLDENS=1 ./build/tests/integration_frame_equivalence_test \
  --gtest_filter='FrameEquivalence.MatchesPreRefactorGoldens' \
  > "$TMP/goldens.out"
grep '^GOLDEN ' "$TMP/goldens.out" | sed 's/^GOLDEN //' > "$TMP/table"
LINES=$(wc -l < "$TMP/table")
if [ "$LINES" -eq 0 ]; then
  echo "regen_goldens: fingerprint print mode produced no rows" >&2
  exit 1
fi
python3 - "$TMP/table" tests/integration/frame_equivalence_test.cc <<'EOF'
import sys

with open(sys.argv[1]) as f:
    rows = f.read()
path = sys.argv[2]
with open(path) as f:
    src = f.read()

begin = "// REGEN-BEGIN golden-fingerprints\n"
end = "// REGEN-END golden-fingerprints"
i = src.index(begin) + len(begin)
j = src.index(end)
body = "constexpr GoldenEpoch kGolden[] = {\n" + rows + "};\n"
with open(path, "w") as f:
    f.write(src[:i] + body + src[j:])
print(f"patched {rows.count(chr(10))} fingerprints into {path}")
EOF

echo "== verify: rebuild + replay the refreshed goldens =="
cmake --build build -j --target integration_frame_equivalence_test
./build/tests/integration_frame_equivalence_test
./build/tests/replay_golden_replay_test
for n in 1 4; do
  ./build/examples/hodor_replay replay tests/data/golden_abilene.hlog \
    --threads="$n"
done
echo "regen_goldens: OK ($LINES fingerprints, golden log re-recorded)"
