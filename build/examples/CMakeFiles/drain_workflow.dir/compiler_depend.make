# Empty compiler generated dependencies file for drain_workflow.
# This may be replaced when dependencies are built.
