// Tests for the link-state fusion truth table (paper §4.2): combining the
// two status reports (R1), counter activity (R3), and probes (R4).
#include <gtest/gtest.h>

#include "core/hardening.h"
#include "faults/snapshot_faults.h"
#include "net/topologies.h"
#include "test_util.h"

namespace hodor::core {
namespace {

using net::LinkId;
using net::NodeId;
using telemetry::LinkStatus;

struct FusionFixture : ::testing::Test {
  FusionFixture() : net(net::Figure3Triangle(), 21) {
    e = net.topo.LinkIds()[0];
  }

  HardenedState Harden(const telemetry::SnapshotMutator& fault = nullptr,
                       HardeningOptions opts = {}) {
    telemetry::CollectorOptions copts;
    copts.probes.false_loss_rate = 0.0;
    auto snap = net.Snapshot(1, fault, copts);
    return HardeningEngine(opts).Harden(snap);
  }

  testing::HealthyNetwork net;
  LinkId e;
};

TEST_F(FusionFixture, HealthyLinkIsConfidentlyUp) {
  const HardenedState hs = Harden();
  const HardenedLinkState& l = hs.links[e.value()];
  EXPECT_EQ(l.verdict, LinkVerdict::kUp);
  EXPECT_GT(l.confidence, 0.9);
  EXPECT_FALSE(l.status_disagreement);
  // Verdict is shared with the reverse direction (physical link).
  EXPECT_EQ(hs.links[net.topo.link(e).reverse.value()].verdict,
            LinkVerdict::kUp);
}

TEST_F(FusionFixture, DeadLinkIsConfidentlyDown) {
  net.state.SetLinkUp(e, false);
  net.sim = flow::SimulateFlow(net.topo, net.state, net.demand, net.plan);
  const HardenedState hs = Harden();
  EXPECT_EQ(hs.links[e.value()].verdict, LinkVerdict::kDown);
  EXPECT_GT(hs.links[e.value()].confidence, 0.7);
}

TEST_F(FusionFixture, OneLyingStatusOutvotedByProbesAndCounters) {
  // The paper's example: one side reports down, the other up; counters are
  // large and probes succeed -> the link is likely up.
  const HardenedState hs =
      Harden(faults::FalseLinkStatus(e, /*at_src=*/true, LinkStatus::kDown));
  const HardenedLinkState& l = hs.links[e.value()];
  EXPECT_TRUE(l.status_disagreement);
  EXPECT_EQ(l.verdict, LinkVerdict::kUp);
  EXPECT_EQ(hs.status_disagreement_count, 1u);
}

TEST_F(FusionFixture, WithoutAltAndProbesLyingStatusIsAmbiguous) {
  HardeningOptions opts;
  opts.use_alternative_signals = false;
  opts.use_probes = false;
  const HardenedState hs = Harden(
      faults::FalseLinkStatus(e, /*at_src=*/true, LinkStatus::kDown), opts);
  // One vote up, one vote down: no verdict possible from statuses alone.
  EXPECT_EQ(hs.links[e.value()].verdict, LinkVerdict::kUnknown);
  EXPECT_DOUBLE_EQ(hs.links[e.value()].confidence, 0.0);
}

TEST_F(FusionFixture, BrokenDataplaneDetectedOnlyWithProbes) {
  // §4.2 semantic bug: statuses read up, but nothing can flow. Probes are
  // the only signal that exercises the dataplane on an idle link.
  net.state.SetLinkDataplaneOk(e, false);
  net.sim = flow::SimulateFlow(net.topo, net.state, net.demand, net.plan);

  const HardenedState with_probes = Harden();
  // Two up-statuses (weight 2) vs two failed probes (weight 3) + idle
  // counters: down wins.
  EXPECT_EQ(with_probes.links[e.value()].verdict, LinkVerdict::kDown);

  HardeningOptions no_probes;
  no_probes.use_probes = false;
  const HardenedState without = Harden(nullptr, no_probes);
  EXPECT_EQ(without.links[e.value()].verdict, LinkVerdict::kUp)
      << "without probes the lie is invisible";
}

TEST_F(FusionFixture, MissingStatusesFallBackToProbesAndCounters) {
  const NodeId a = net.topo.FindNode("A").value();
  const NodeId b = net.topo.FindNode("B").value();
  // Both endpoint routers silent: no statuses, no counters from them.
  auto fault = faults::ComposeFaults(
      {faults::UnresponsiveRouter(a), faults::UnresponsiveRouter(b)});
  const HardenedState hs = Harden(fault);
  // The A<->B link still gets an up verdict purely from probes.
  const LinkId ab = net.topo.FindLink(a, b).value();
  EXPECT_EQ(hs.links[ab.value()].verdict, LinkVerdict::kUp);
}

TEST_F(FusionFixture, NoSignalsAtAllYieldsUnknown) {
  net::Topology topo = net::Figure3Triangle();
  telemetry::NetworkSnapshot empty(topo, 0);
  for (const net::Node& n : empty.topology().nodes()) {
    empty.frame().MarkUnresponsive(n.id);
  }
  const HardenedState hs = HardeningEngine().Harden(empty);
  for (LinkId lid : topo.LinkIds()) {
    EXPECT_EQ(hs.links[lid.value()].verdict, LinkVerdict::kUnknown);
  }
}

TEST_F(FusionFixture, IdleHealthyLinkStillUpFromStatusAndProbes) {
  // Zero demand: counters are all zero (weak down evidence) but statuses
  // and probes dominate.
  testing::HealthyNetwork idle(net::Figure3Triangle(), 22);
  idle.demand = flow::DemandMatrix(idle.topo.node_count());
  idle.sim = flow::SimulateFlow(idle.topo, idle.state, idle.demand, idle.plan);
  telemetry::CollectorOptions copts;
  copts.probes.false_loss_rate = 0.0;
  const auto snap = idle.Snapshot(1, nullptr, copts);
  const HardenedState hs = HardeningEngine().Harden(snap);
  for (LinkId lid : idle.topo.LinkIds()) {
    EXPECT_EQ(hs.links[lid.value()].verdict, LinkVerdict::kUp);
  }
}

TEST_F(FusionFixture, ProbeWeightTunesRiskTolerance) {
  // With probes weighted to zero, failed probes cannot pull a link down —
  // the operator knob the paper mentions for the fusion table.
  net.state.SetLinkDataplaneOk(e, false);
  net.sim = flow::SimulateFlow(net.topo, net.state, net.demand, net.plan);
  HardeningOptions opts;
  opts.probe_weight = 0.0;
  const HardenedState hs = Harden(nullptr, opts);
  EXPECT_EQ(hs.links[e.value()].verdict, LinkVerdict::kUp);
}

TEST(LinkVerdictName, AllNamed) {
  EXPECT_STREQ(LinkVerdictName(LinkVerdict::kUp), "up");
  EXPECT_STREQ(LinkVerdictName(LinkVerdict::kDown), "down");
  EXPECT_STREQ(LinkVerdictName(LinkVerdict::kUnknown), "unknown");
}

}  // namespace
}  // namespace hodor::core
