# Empty compiler generated dependencies file for bench_tau_sensitivity.
# This may be replaced when dependencies are built.
