#include "replay/frame_codec.h"

#include <cmath>

#include "telemetry/signal_frame.h"

namespace hodor::replay {

// Private-member bridge declared as a friend by telemetry::SignalFrame:
// the codec reads and restores raw columns (values, presence words,
// responded bytes) without going through the owner-gated setters.
class FrameCodecAccess {
 public:
  using Frame = telemetry::SignalFrame;
  using Bits = telemetry::PresenceBitset;

  static const std::vector<std::uint8_t>& responded(const Frame& f) {
    return f.responded_;
  }
  static void RestoreResponded(Frame& f, const std::vector<std::uint8_t>& v) {
    f.responded_ = v;
    f.responded_count_ = 0;
    for (std::uint8_t b : v) f.responded_count_ += b;
  }

  // Column accessors, mutable (decode) and const (encode).
  static std::vector<double>& tx(Frame& f) { return f.tx_; }
  static std::vector<double>& rx(Frame& f) { return f.rx_; }
  static std::vector<std::uint8_t>& status(Frame& f) { return f.status_; }
  static std::vector<std::uint8_t>& link_drain(Frame& f) {
    return f.link_drain_;
  }
  static std::vector<std::uint8_t>& node_drain(Frame& f) {
    return f.node_drain_;
  }
  static std::vector<double>& dropped(Frame& f) { return f.dropped_; }
  static std::vector<double>& ext_in(Frame& f) { return f.ext_in_; }
  static std::vector<double>& ext_out(Frame& f) { return f.ext_out_; }

  static Bits& tx_present(Frame& f) { return f.tx_present_; }
  static Bits& rx_present(Frame& f) { return f.rx_present_; }
  static Bits& status_present(Frame& f) { return f.status_present_; }
  static Bits& link_drain_present(Frame& f) { return f.link_drain_present_; }
  static Bits& node_drain_present(Frame& f) { return f.node_drain_present_; }
  static Bits& dropped_present(Frame& f) { return f.dropped_present_; }
  static Bits& ext_in_present(Frame& f) { return f.ext_in_present_; }
  static Bits& ext_out_present(Frame& f) { return f.ext_out_present_; }

  static const std::vector<double>& tx(const Frame& f) { return f.tx_; }
  static const std::vector<double>& rx(const Frame& f) { return f.rx_; }
  static const std::vector<std::uint8_t>& status(const Frame& f) {
    return f.status_;
  }
  static const std::vector<std::uint8_t>& link_drain(const Frame& f) {
    return f.link_drain_;
  }
  static const std::vector<std::uint8_t>& node_drain(const Frame& f) {
    return f.node_drain_;
  }
  static const std::vector<double>& dropped(const Frame& f) {
    return f.dropped_;
  }
  static const std::vector<double>& ext_in(const Frame& f) {
    return f.ext_in_;
  }
  static const std::vector<double>& ext_out(const Frame& f) {
    return f.ext_out_;
  }

  static const Bits& tx_present(const Frame& f) { return f.tx_present_; }
  static const Bits& rx_present(const Frame& f) { return f.rx_present_; }
  static const Bits& status_present(const Frame& f) {
    return f.status_present_;
  }
  static const Bits& link_drain_present(const Frame& f) {
    return f.link_drain_present_;
  }
  static const Bits& node_drain_present(const Frame& f) {
    return f.node_drain_present_;
  }
  static const Bits& dropped_present(const Frame& f) {
    return f.dropped_present_;
  }
  static const Bits& ext_in_present(const Frame& f) {
    return f.ext_in_present_;
  }
  static const Bits& ext_out_present(const Frame& f) {
    return f.ext_out_present_;
  }
};

namespace {

using Access = FrameCodecAccess;

void EncodePresence(const telemetry::PresenceBitset& bits, ByteWriter& w) {
  w.U64Array(bits.words().data(), bits.words().size());
}

util::Status DecodePresence(ByteReader& r, telemetry::PresenceBitset& bits,
                            std::vector<std::uint64_t>& scratch) {
  scratch.resize(bits.words().size());
  HODOR_RETURN_IF_ERROR(r.U64Array(scratch.data(), scratch.size()));
  bits.AssignWords(scratch.data(), scratch.size());
  return util::Status::Ok();
}

util::Status DecodeBoolBytes(ByteReader& r, std::vector<std::uint8_t>& out,
                             const char* what) {
  HODOR_RETURN_IF_ERROR(r.Bytes(out.data(), out.size()));
  for (std::uint8_t b : out) {
    if (b > 1) {
      return util::InvalidArgumentError(
          std::string(what) + " column holds a byte that is neither 0 nor 1");
    }
  }
  return util::Status::Ok();
}

util::Status DecodeBoolVector(ByteReader& r, std::size_t n,
                              std::vector<bool>& out, const char* what) {
  // vector<bool> has no contiguous storage; go byte by byte.
  out.assign(n, false);
  for (std::size_t i = 0; i < n; ++i) {
    std::uint8_t b = 0;
    HODOR_RETURN_IF_ERROR(r.U8(b));
    if (b > 1) {
      return util::InvalidArgumentError(
          std::string(what) + " holds a byte that is neither 0 nor 1");
    }
    out[i] = b != 0;
  }
  return util::Status::Ok();
}

void EncodeBoolVector(const std::vector<bool>& v, ByteWriter& w) {
  w.U32(static_cast<std::uint32_t>(v.size()));
  for (bool b : v) w.U8(b ? 1 : 0);
}

}  // namespace

void EncodeFrame(const telemetry::SignalFrame& frame, ByteWriter& w) {
  const net::Topology& topo = frame.topology();
  const std::size_t nodes = topo.node_count();
  const std::size_t links = topo.link_count();
  w.U32(static_cast<std::uint32_t>(nodes));
  w.U32(static_cast<std::uint32_t>(links));

  w.Bytes(Access::responded(frame).data(), nodes);

  EncodePresence(Access::tx_present(frame), w);
  w.F64Array(Access::tx(frame).data(), links);
  EncodePresence(Access::rx_present(frame), w);
  w.F64Array(Access::rx(frame).data(), links);
  EncodePresence(Access::status_present(frame), w);
  w.Bytes(Access::status(frame).data(), links);
  EncodePresence(Access::link_drain_present(frame), w);
  w.Bytes(Access::link_drain(frame).data(), links);

  EncodePresence(Access::node_drain_present(frame), w);
  w.Bytes(Access::node_drain(frame).data(), nodes);
  EncodePresence(Access::dropped_present(frame), w);
  w.F64Array(Access::dropped(frame).data(), nodes);
  EncodePresence(Access::ext_in_present(frame), w);
  w.F64Array(Access::ext_in(frame).data(), nodes);
  EncodePresence(Access::ext_out_present(frame), w);
  w.F64Array(Access::ext_out(frame).data(), nodes);
}

util::Status DecodeFrame(ByteReader& r, telemetry::SignalFrame& frame) {
  const net::Topology& topo = frame.topology();
  std::uint32_t nodes = 0, links = 0;
  HODOR_RETURN_IF_ERROR(r.U32(nodes));
  HODOR_RETURN_IF_ERROR(r.U32(links));
  if (nodes != topo.node_count() || links != topo.link_count()) {
    return util::InvalidArgumentError(
        "frame shape " + std::to_string(nodes) + "x" + std::to_string(links) +
        " does not match topology " + std::to_string(topo.node_count()) + "x" +
        std::to_string(topo.link_count()));
  }

  std::vector<std::uint64_t> scratch;
  std::vector<std::uint8_t> responded(nodes);
  HODOR_RETURN_IF_ERROR(DecodeBoolBytes(r, responded, "responded"));
  Access::RestoreResponded(frame, responded);

  HODOR_RETURN_IF_ERROR(DecodePresence(r, Access::tx_present(frame), scratch));
  HODOR_RETURN_IF_ERROR(r.F64Array(Access::tx(frame).data(), links));
  HODOR_RETURN_IF_ERROR(DecodePresence(r, Access::rx_present(frame), scratch));
  HODOR_RETURN_IF_ERROR(r.F64Array(Access::rx(frame).data(), links));
  HODOR_RETURN_IF_ERROR(
      DecodePresence(r, Access::status_present(frame), scratch));
  HODOR_RETURN_IF_ERROR(DecodeBoolBytes(r, Access::status(frame), "status"));
  HODOR_RETURN_IF_ERROR(
      DecodePresence(r, Access::link_drain_present(frame), scratch));
  HODOR_RETURN_IF_ERROR(
      DecodeBoolBytes(r, Access::link_drain(frame), "link-drain"));

  HODOR_RETURN_IF_ERROR(
      DecodePresence(r, Access::node_drain_present(frame), scratch));
  HODOR_RETURN_IF_ERROR(
      DecodeBoolBytes(r, Access::node_drain(frame), "node-drain"));
  HODOR_RETURN_IF_ERROR(
      DecodePresence(r, Access::dropped_present(frame), scratch));
  HODOR_RETURN_IF_ERROR(r.F64Array(Access::dropped(frame).data(), nodes));
  HODOR_RETURN_IF_ERROR(
      DecodePresence(r, Access::ext_in_present(frame), scratch));
  HODOR_RETURN_IF_ERROR(r.F64Array(Access::ext_in(frame).data(), nodes));
  HODOR_RETURN_IF_ERROR(
      DecodePresence(r, Access::ext_out_present(frame), scratch));
  HODOR_RETURN_IF_ERROR(r.F64Array(Access::ext_out(frame).data(), nodes));
  // Dirty bitsets are transient working state and deliberately not on the
  // wire (the format predates them and stays byte-identical). A decoded
  // frame's slots were all "touched" as far as change tracking is
  // concerned, so mark everything dirty: DiffAgainst then degrades to a
  // full bitwise value compare, which is exact, just unpruned.
  frame.MarkAllDirty();
  return util::Status::Ok();
}

void EncodeSnapshot(const telemetry::NetworkSnapshot& snapshot,
                    ByteWriter& w) {
  EncodeFrame(snapshot.frame(), w);
  const auto& probes = snapshot.probe_results();
  w.U32(static_cast<std::uint32_t>(probes.size()));
  for (const telemetry::ProbeResult& p : probes) {
    w.U32(p.link.value());
    w.U8(p.success ? 1 : 0);
  }
}

util::Status DecodeSnapshot(ByteReader& r,
                            telemetry::NetworkSnapshot& snapshot) {
  HODOR_RETURN_IF_ERROR(DecodeFrame(r, snapshot.frame()));
  std::uint32_t count = 0;
  HODOR_RETURN_IF_ERROR(r.U32(count));
  // Each probe is 5 bytes on the wire; a count promising more than the
  // remaining payload is corruption, caught before any reserve.
  if (count > r.remaining() / 5) {
    return util::InvalidArgumentError("probe count exceeds payload size");
  }
  const std::uint32_t links =
      static_cast<std::uint32_t>(snapshot.topology().link_count());
  std::vector<telemetry::ProbeResult>& buf = snapshot.probe_buffer();
  buf.clear();
  buf.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    std::uint32_t link = 0;
    std::uint8_t success = 0;
    HODOR_RETURN_IF_ERROR(r.U32(link));
    HODOR_RETURN_IF_ERROR(r.U8(success));
    if (link >= links) {
      return util::InvalidArgumentError("probe names link " +
                                        std::to_string(link) +
                                        " outside the topology");
    }
    if (success > 1) {
      return util::InvalidArgumentError("probe success byte is not 0/1");
    }
    buf.push_back({net::LinkId(link), success != 0});
  }
  snapshot.IndexProbeResults();
  return util::Status::Ok();
}

void EncodeInput(const controlplane::ControllerInput& input, ByteWriter& w) {
  w.U64(input.epoch);
  EncodeBoolVector(input.link_available, w);
  EncodeBoolVector(input.node_drained, w);
  EncodeBoolVector(input.link_drained, w);
  const std::size_t n = input.demand.node_count();
  w.U32(static_cast<std::uint32_t>(n));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      w.F64(input.demand.At(net::NodeId(static_cast<std::uint32_t>(i)),
                            net::NodeId(static_cast<std::uint32_t>(j))));
    }
  }
}

util::Status DecodeInput(ByteReader& r, const net::Topology& topo,
                         controlplane::ControllerInput& input) {
  HODOR_RETURN_IF_ERROR(r.U64(input.epoch));
  auto sized = [&r](std::size_t expect, std::vector<bool>& out,
                    const char* what) -> util::Status {
    std::uint32_t n = 0;
    HODOR_RETURN_IF_ERROR(r.U32(n));
    if (n != expect) {
      return util::InvalidArgumentError(
          std::string(what) + " length " + std::to_string(n) +
          " does not match topology (" + std::to_string(expect) + ")");
    }
    return DecodeBoolVector(r, n, out, what);
  };
  HODOR_RETURN_IF_ERROR(
      sized(topo.link_count(), input.link_available, "link-available"));
  HODOR_RETURN_IF_ERROR(
      sized(topo.node_count(), input.node_drained, "node-drained"));
  HODOR_RETURN_IF_ERROR(
      sized(topo.link_count(), input.link_drained, "link-drained"));

  std::uint32_t n = 0;
  HODOR_RETURN_IF_ERROR(r.U32(n));
  if (n != topo.node_count()) {
    return util::InvalidArgumentError(
        "demand matrix is " + std::to_string(n) + "x" + std::to_string(n) +
        " but the topology has " + std::to_string(topo.node_count()) +
        " nodes");
  }
  input.demand = flow::DemandMatrix(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t j = 0; j < n; ++j) {
      double v = 0.0;
      HODOR_RETURN_IF_ERROR(r.F64(v));
      // DemandMatrix::Set treats these as programmer errors (throws); a
      // decoded log must fail them as data errors instead.
      if (!(v >= 0.0)) {
        return util::InvalidArgumentError(
            "demand entry (" + std::to_string(i) + "," + std::to_string(j) +
            ") is negative or NaN");
      }
      if (i == j && v != 0.0) {
        return util::InvalidArgumentError("demand diagonal entry (" +
                                          std::to_string(i) + ") is nonzero");
      }
      input.demand.Set(net::NodeId(i), net::NodeId(j), v);
    }
  }
  return util::Status::Ok();
}

void EncodeVerdict(const EpochVerdict& verdict, ByteWriter& w,
                   std::uint32_t version) {
  std::uint8_t flags = 0;
  if (verdict.validated) flags |= 1;
  if (verdict.accept) flags |= 2;
  if (verdict.used_fallback) flags |= 4;
  w.U8(flags);
  w.Str(verdict.reason);
  w.Str(verdict.summary);
  w.U64(verdict.decision_digest);
  w.U32(verdict.evaluated);
  w.U32(verdict.failed);
  w.U32(verdict.skipped);
  w.U32(static_cast<std::uint32_t>(verdict.invariants.size()));
  for (const RecordedInvariant& inv : verdict.invariants) {
    w.Str(inv.check);
    w.Str(inv.invariant);
    w.F64(inv.residual);
    w.F64(inv.threshold);
    w.U8(static_cast<std::uint8_t>(inv.verdict));
    if (version >= 2) {
      w.Str(inv.source);
      w.F64(inv.confidence);
    }
  }
}

util::Status DecodeVerdict(ByteReader& r, EpochVerdict& verdict,
                           std::uint32_t version) {
  std::uint8_t flags = 0;
  HODOR_RETURN_IF_ERROR(r.U8(flags));
  if (flags & ~7u) {
    return util::InvalidArgumentError("verdict flags byte has unknown bits");
  }
  verdict.validated = flags & 1;
  verdict.accept = flags & 2;
  verdict.used_fallback = flags & 4;
  HODOR_RETURN_IF_ERROR(r.Str(verdict.reason));
  HODOR_RETURN_IF_ERROR(r.Str(verdict.summary));
  HODOR_RETURN_IF_ERROR(r.U64(verdict.decision_digest));
  HODOR_RETURN_IF_ERROR(r.U32(verdict.evaluated));
  HODOR_RETURN_IF_ERROR(r.U32(verdict.failed));
  HODOR_RETURN_IF_ERROR(r.U32(verdict.skipped));
  std::uint32_t count = 0;
  HODOR_RETURN_IF_ERROR(r.U32(count));
  // Minimum wire size of one invariant — 25 bytes on the v1 wire (two
  // empty strings), 37 on v2 (plus an empty source and a confidence) —
  // bounds the count; reject impossible counts before reserving.
  const std::size_t min_invariant_bytes = version >= 2 ? 37 : 25;
  if (count > r.remaining() / min_invariant_bytes) {
    return util::InvalidArgumentError("invariant count exceeds payload size");
  }
  verdict.invariants.clear();
  verdict.invariants.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    RecordedInvariant inv;
    HODOR_RETURN_IF_ERROR(r.Str(inv.check));
    HODOR_RETURN_IF_ERROR(r.Str(inv.invariant));
    HODOR_RETURN_IF_ERROR(r.F64(inv.residual));
    HODOR_RETURN_IF_ERROR(r.F64(inv.threshold));
    std::uint8_t v = 0;
    HODOR_RETURN_IF_ERROR(r.U8(v));
    if (v > static_cast<std::uint8_t>(obs::InvariantVerdict::kSkipped)) {
      return util::InvalidArgumentError("invariant verdict byte out of range");
    }
    inv.verdict = static_cast<obs::InvariantVerdict>(v);
    if (version >= 2) {
      HODOR_RETURN_IF_ERROR(r.Str(inv.source));
      HODOR_RETURN_IF_ERROR(r.F64(inv.confidence));
      if (!(inv.confidence >= 0.0 && inv.confidence <= 1.0)) {
        return util::InvalidArgumentError(
            "invariant confidence is outside [0,1]");
      }
    }
    verdict.invariants.push_back(std::move(inv));
  }
  return util::Status::Ok();
}

void EncodeEpochRecord(std::uint64_t epoch,
                       const telemetry::NetworkSnapshot& snapshot,
                       const controlplane::ControllerInput& input,
                       const EpochVerdict& verdict, ByteWriter& w,
                       std::uint32_t version) {
  w.U64(epoch);
  EncodeVerdict(verdict, w, version);
  EncodeInput(input, w);
  EncodeSnapshot(snapshot, w);
}

util::Status DecodeEpochRecord(ByteReader& r, EpochRecord& record,
                               std::uint32_t version) {
  HODOR_RETURN_IF_ERROR(r.U64(record.epoch));
  record.snapshot.Reset(record.epoch);
  HODOR_RETURN_IF_ERROR(DecodeVerdict(r, record.verdict, version));
  HODOR_RETURN_IF_ERROR(
      DecodeInput(r, record.snapshot.topology(), record.input));
  HODOR_RETURN_IF_ERROR(DecodeSnapshot(r, record.snapshot));
  if (r.remaining() != 0) {
    return util::InvalidArgumentError(
        std::to_string(r.remaining()) +
        " trailing bytes after a complete epoch record");
  }
  return util::Status::Ok();
}

}  // namespace hodor::replay
