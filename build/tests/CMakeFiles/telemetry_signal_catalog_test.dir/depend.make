# Empty dependencies file for telemetry_signal_catalog_test.
# This may be replaced when dependencies are built.
