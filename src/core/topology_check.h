// Hodor step 3 for the topology input (paper §4.2).
//
// Once link state has been hardened (status symmetry + alternative signals
// + probes), checking is direct: compare the controller's topology view
// with the hardened per-link verdicts. Two violation directions:
//   - phantom link: the input offers capacity the network doesn't have
//     (the controller will overload what remains of reality);
//   - missing link: real capacity absent from the input (sub-optimal
//     placement and local congestion — the §2.2 liveness-misreport and
//     partial-stitch outages).
#pragma once

#include <string>
#include <vector>

#include "core/hardened_state.h"
#include "net/topology.h"

namespace hodor::obs {
class MetricsRegistry;
struct DecisionRecord;
}  // namespace hodor::obs

namespace hodor::core {

enum class TopologyViolationKind {
  kPhantomLink,  // input: available, hardened verdict: down
  kMissingLink,  // input: unavailable, hardened verdict: up
};

struct TopologyViolation {
  net::LinkId link;
  TopologyViolationKind kind;
  double confidence = 0.0;  // confidence of the hardened verdict

  std::string ToString(const net::Topology& topo) const;
};

struct TopologyCheckResult {
  std::vector<TopologyViolation> violations;
  std::size_t checked_links = 0;
  // Links whose hardened verdict was kUnknown (cannot be checked).
  std::size_t unknown_links = 0;

  bool ok() const { return violations.empty(); }
};

struct TopologyCheckOptions {
  // Ignore hardened verdicts below this confidence (risk-tolerance knob —
  // the paper leaves the fusion truth table adjustable per operator).
  double min_confidence = 0.5;

  // Observability: invariant/violation counters are emitted here
  // (nullptr → the process-global registry).
  obs::MetricsRegistry* metrics = nullptr;
};

// Declared input columns (DESIGN.md §12): the check reads only the fused
// per-link verdicts on the hardened side and `link_available` on the
// controller-input side. Clean on both → the incremental validator
// replays the prior verdict.
inline constexpr HardenedFacets kTopologyCheckFacets{.links = true};

// When `provenance` is given, one InvariantRecord per directed link is
// appended (residual = fused verdict confidence, threshold =
// min_confidence; unknown/low-confidence links record as skipped).
TopologyCheckResult CheckTopology(const net::Topology& topo,
                                  const HardenedState& hardened,
                                  const std::vector<bool>& link_available,
                                  const TopologyCheckOptions& opts = {},
                                  obs::DecisionRecord* provenance = nullptr);

}  // namespace hodor::core
