#include "util/parallel.h"

#include <cerrno>
#include <cstdlib>
#include <string>

#include "util/logging.h"

namespace hodor::util {

namespace {

// The sharded stages are microseconds long and come in quick bursts (several
// ParallelFor calls per Harden), so a worker that sleeps on the condition
// variable between stages pays a futex wake-up per stage — enough to cancel
// the parallel speedup outright. Workers therefore spin briefly polling the
// generation counter before falling back to the cv.
constexpr int kSpinIterations = 20000;

inline void CpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield");
#endif
}

}  // namespace

ThreadPool::ThreadPool(std::size_t threads)
    : threads_(threads == 0 ? 1 : threads) {
  // Spinning only pays when every thread can actually run: an oversubscribed
  // pool (more threads than cores, e.g. a 4-thread pool in a 1-CPU
  // container) must yield the core instead of pausing on it, or the spinners
  // starve the thread doing real work.
  const std::size_t hw = std::thread::hardware_concurrency();
  spin_ok_ = hw == 0 || threads_ <= hw;
  workers_.reserve(threads_ > 0 ? threads_ - 1 : 0);
  for (std::size_t i = 1; i < threads_; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

void ThreadPool::SetTracer(ExecTracer* tracer) {
  tracer_ = tracer;
  trace_handles_.clear();
  if (tracer == nullptr) return;
  trace_handles_.reserve(threads_);
  for (std::size_t i = 0; i < threads_; ++i) {
    trace_handles_.push_back(tracer->RegisterThread(
        "pool-" + std::to_string(i)));
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_.store(true, std::memory_order_relaxed);
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::WorkerLoop(std::size_t worker) {
  std::uint64_t seen_generation = 0;
  for (;;) {
    // Wait for a new generation: spin first, sleep only if work stays away.
    int spins = 0;
    while (generation_.load(std::memory_order_acquire) == seen_generation &&
           !shutdown_.load(std::memory_order_relaxed)) {
      if (!spin_ok_ || ++spins >= kSpinIterations) {
        std::unique_lock<std::mutex> lock(mu_);
        work_cv_.wait(lock, [&] {
          return shutdown_.load(std::memory_order_relaxed) ||
                 generation_.load(std::memory_order_relaxed) !=
                     seen_generation;
        });
        break;
      }
      CpuRelax();
    }
    if (shutdown_.load(std::memory_order_relaxed)) return;
    const std::function<void(std::size_t)>* task;
    {
      std::lock_guard<std::mutex> lock(mu_);
      seen_generation = generation_.load(std::memory_order_relaxed);
      task = task_;
    }
    if (task == nullptr) continue;
    for (;;) {
      std::size_t i;
      {
        std::lock_guard<std::mutex> lock(mu_);
        // The generation check fences off a worker that raced past the end
        // of the previous run: once Run() moved on, its task pointer is
        // dead and must not be re-entered.
        if (generation_.load(std::memory_order_relaxed) != seen_generation ||
            next_index_ >= task_count_) {
          break;
        }
        i = next_index_++;
      }
      RunTask(*task, i, worker);
      pending_.fetch_sub(1, std::memory_order_acq_rel);
    }
  }
}

void ThreadPool::Run(std::size_t count,
                     const std::function<void(std::size_t)>& task) {
  if (count == 0) return;
  if (workers_.empty()) {
    for (std::size_t i = 0; i < count; ++i) RunTask(task, i, 0);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    task_ = &task;
    task_count_ = count;
    next_index_ = 0;
    pending_.store(count, std::memory_order_relaxed);
    generation_.fetch_add(1, std::memory_order_release);
  }
  work_cv_.notify_all();
  // The calling thread chips in instead of idling.
  for (;;) {
    std::size_t i;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (next_index_ >= task_count_) break;
      i = next_index_++;
    }
    RunTask(task, i, 0);
    pending_.fetch_sub(1, std::memory_order_acq_rel);
  }
  // Completion wait mirrors the workers' strategy: spin (the straggler is
  // typically microseconds away) or, when oversubscribed, hand the core to
  // whichever worker still holds a task.
  while (pending_.load(std::memory_order_acquire) != 0) {
    if (spin_ok_) {
      CpuRelax();
    } else {
      std::this_thread::yield();
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  task_ = nullptr;
}

std::size_t ShardCount(const ThreadPool* pool, std::size_t total) {
  if (total == 0) return 0;
  if (pool == nullptr || pool->thread_count() <= 1) return 1;
  // No point sharding a handful of items across threads.
  if (total < 2 * pool->thread_count()) return 1;
  return pool->thread_count();
}

std::size_t ThreadsFromEnv(std::size_t fallback) {
  const char* raw = std::getenv("HODOR_THREADS");
  if (raw == nullptr || *raw == '\0') return fallback;
  // One warning per distinct malformed/clamped value: callers invoke this
  // freely (every bench snapshot, every /buildz render — possibly from the
  // serving thread) and a hot loop must not turn one operator typo into a
  // log flood. The mutex only guards the dedup state, never the parse.
  static std::mutex warn_mu;
  static std::string warned_value;
  const auto warn_once = [&](const std::string& message) {
    std::lock_guard<std::mutex> lock(warn_mu);
    if (warned_value == raw) return;
    warned_value = raw;
    HODOR_LOG(kWarning) << message;
  };
  char* end = nullptr;
  errno = 0;
  const long parsed = std::strtol(raw, &end, 10);
  const bool overflowed = errno == ERANGE;
  if (end == raw || *end != '\0' || (parsed <= 0 && !overflowed)) {
    warn_once("HODOR_THREADS=\"" + std::string(raw) +
              "\" is not a positive integer; using " +
              std::to_string(fallback));
    return fallback;
  }
  if (overflowed || static_cast<std::size_t>(parsed) > kMaxThreadsFromEnv) {
    warn_once("HODOR_THREADS=\"" + std::string(raw) + "\" exceeds the " +
              std::to_string(kMaxThreadsFromEnv) +
              "-thread cap; clamping");
    return kMaxThreadsFromEnv;
  }
  return static_cast<std::size_t>(parsed);
}

}  // namespace hodor::util
