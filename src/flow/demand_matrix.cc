#include "flow/demand_matrix.h"

#include <cmath>
#include <cstring>
#include <iomanip>
#include <sstream>

#include "util/status.h"

namespace hodor::flow {

DemandMatrix::DemandMatrix(std::size_t node_count)
    : n_(node_count), data_(node_count * node_count, 0.0) {}

std::size_t DemandMatrix::Index(net::NodeId src, net::NodeId dst) const {
  HODOR_CHECK(src.valid() && src.value() < n_);
  HODOR_CHECK(dst.valid() && dst.value() < n_);
  return static_cast<std::size_t>(src.value()) * n_ + dst.value();
}

double DemandMatrix::At(net::NodeId src, net::NodeId dst) const {
  return data_[Index(src, dst)];
}

void DemandMatrix::Set(net::NodeId src, net::NodeId dst, double gbps) {
  HODOR_CHECK_MSG(gbps >= 0.0, "demand must be non-negative");
  HODOR_CHECK_MSG(src != dst || gbps == 0.0, "diagonal demand must be zero");
  data_[Index(src, dst)] = gbps;
}

double DemandMatrix::Total() const {
  double acc = 0.0;
  for (double x : data_) acc += x;
  return acc;
}

double DemandMatrix::RowSum(net::NodeId i) const {
  double acc = 0.0;
  for (std::size_t j = 0; j < n_; ++j) {
    acc += data_[static_cast<std::size_t>(i.value()) * n_ + j];
  }
  return acc;
}

void DemandMatrix::Marginals(std::vector<double>& row_sums,
                             std::vector<double>& col_sums) const {
  row_sums.assign(n_, 0.0);
  col_sums.assign(n_, 0.0);
  for (std::size_t i = 0; i < n_; ++i) {
    const double* row = data_.data() + i * n_;
    double acc = 0.0;
    for (std::size_t j = 0; j < n_; ++j) {
      acc += row[j];
      col_sums[j] += row[j];
    }
    row_sums[i] = acc;
  }
}

double DemandMatrix::ColSum(net::NodeId j) const {
  double acc = 0.0;
  for (std::size_t i = 0; i < n_; ++i) {
    acc += data_[i * n_ + j.value()];
  }
  return acc;
}

void DemandMatrix::Scale(double factor) {
  HODOR_CHECK(factor >= 0.0);
  for (double& x : data_) x *= factor;
}

std::size_t DemandMatrix::PositiveEntryCount() const {
  std::size_t n = 0;
  for (double x : data_) {
    if (x > 0.0) ++n;
  }
  return n;
}

std::vector<std::pair<net::NodeId, net::NodeId>> DemandMatrix::Pairs() const {
  std::vector<std::pair<net::NodeId, net::NodeId>> out;
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t j = 0; j < n_; ++j) {
      if (i != j && data_[i * n_ + j] > 0.0) {
        out.emplace_back(net::NodeId(static_cast<std::uint32_t>(i)),
                         net::NodeId(static_cast<std::uint32_t>(j)));
      }
    }
  }
  return out;
}

double DemandMatrix::MaxAbsDifference(const DemandMatrix& other) const {
  HODOR_CHECK(SameShape(other));
  double worst = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    worst = std::max(worst, std::fabs(data_[i] - other.data_[i]));
  }
  return worst;
}

bool DemandMatrix::BitwiseEqual(const DemandMatrix& other) const {
  if (n_ != other.n_) return false;
  if (data_.empty()) return true;
  return std::memcmp(data_.data(), other.data_.data(),
                     data_.size() * sizeof(double)) == 0;
}

std::string DemandMatrix::ToString(const net::Topology& topo,
                                   int precision) const {
  HODOR_CHECK(topo.node_count() == n_);
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision);
  os << std::setw(10) << "";
  for (std::size_t j = 0; j < n_; ++j) {
    os << std::setw(10) << topo.node(net::NodeId(static_cast<std::uint32_t>(j))).name;
  }
  os << "\n";
  for (std::size_t i = 0; i < n_; ++i) {
    os << std::setw(10) << topo.node(net::NodeId(static_cast<std::uint32_t>(i))).name;
    for (std::size_t j = 0; j < n_; ++j) {
      os << std::setw(10) << data_[i * n_ + j];
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace hodor::flow
