file(REMOVE_RECURSE
  "CMakeFiles/core_alerts_test.dir/core/alerts_test.cc.o"
  "CMakeFiles/core_alerts_test.dir/core/alerts_test.cc.o.d"
  "core_alerts_test"
  "core_alerts_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_alerts_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
