#include "core/validator.h"

#include <sstream>

namespace hodor::core {

std::string ValidationReport::Describe(const net::Topology& topo) const {
  std::ostringstream os;
  os << hardened.Summary() << "\n";
  for (const auto& v : demand.violations) {
    os << "  [demand]   " << v.ToString(topo) << "\n";
  }
  for (const auto& v : topology.violations) {
    os << "  [topology] " << v.ToString(topo) << "\n";
  }
  for (const auto& v : drain.violations) {
    os << "  [drain]    " << v.ToString(topo) << "\n";
  }
  for (net::NodeId n : drain.warnings_drained_but_active) {
    os << "  [drain]    warning: " << topo.node(n).name
       << " drained but carrying traffic\n";
  }
  return os.str();
}

std::string ValidationReport::Summary() const {
  if (ok()) return "ACCEPT";
  std::ostringstream os;
  os << "REJECT: " << violation_count() << " violations (demand:"
     << demand.violations.size() << " topology:" << topology.violations.size()
     << " drain:" << drain.violations.size() << ")";
  return os.str();
}

ValidationReport Validator::Validate(
    const controlplane::ControllerInput& input,
    const telemetry::NetworkSnapshot& snapshot) const {
  ValidationReport report;
  report.hardened = engine_.Harden(snapshot);
  if (opts_.check_demand) {
    report.demand =
        CheckDemand(*topo_, report.hardened, input.demand, opts_.demand);
  }
  if (opts_.check_topology) {
    report.topology = CheckTopology(*topo_, report.hardened,
                                    input.link_available, opts_.topology);
  }
  if (opts_.check_drain) {
    report.drain = CheckDrains(*topo_, report.hardened, input.node_drained,
                               input.link_drained);
  }
  return report;
}

controlplane::InputValidatorFn Validator::AsPipelineValidator() const {
  return [this](const controlplane::ControllerInput& input,
                const telemetry::NetworkSnapshot& snapshot) {
    const ValidationReport report = Validate(input, snapshot);
    controlplane::ValidationDecision decision;
    decision.accept = report.ok();
    decision.reason = report.Summary();
    return decision;
  };
}

}  // namespace hodor::core
