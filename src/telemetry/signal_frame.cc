#include "telemetry/signal_frame.h"

namespace hodor::telemetry {

namespace {

// Bitwise value identity. Doubles are compared as their bit patterns on
// purpose: the canonical digest renders values with %.17g, under which
// -0.0 and +0.0 (or two NaN payloads) format differently, so anything
// short of bit identity could let the incremental path diverge from the
// full recompute.
inline bool BitIdentical(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}
inline bool BitIdentical(std::uint8_t a, std::uint8_t b) { return a == b; }

// Reports into `out` every slot of one column that differs between the
// current and base frames. Candidates per 64-bit word are the presence
// flips plus the slots present in both where the current frame's dirty
// bit allows a change; within candidates a bitwise value compare decides.
template <typename T>
void DiffColumn(const PresenceBitset& cur_present, const std::vector<T>& cur,
                const PresenceBitset& prev_present, const std::vector<T>& prev,
                const PresenceBitset& cur_dirty, PresenceBitset& out) {
  const std::vector<std::uint64_t>& cw = cur_present.words();
  const std::vector<std::uint64_t>& pw = prev_present.words();
  const std::vector<std::uint64_t>& dw = cur_dirty.words();
  for (std::size_t wi = 0; wi < cw.size(); ++wi) {
    std::uint64_t candidates = (cw[wi] ^ pw[wi]) | (cw[wi] & pw[wi] & dw[wi]);
    const std::uint64_t both = cw[wi] & pw[wi];
    while (candidates != 0) {
      const int b = std::countr_zero(candidates);
      candidates &= candidates - 1;
      const std::size_t i = (wi << 6) + static_cast<std::size_t>(b);
      if (((both >> b) & 1u) && BitIdentical(cur[i], prev[i])) continue;
      out.Set(i);
    }
  }
}

}  // namespace

SignalFrame::SignalFrame(const net::Topology& topo) : topo_(&topo) {
  const std::size_t links = topo.link_count();
  const std::size_t nodes = topo.node_count();
  tx_.resize(links);
  rx_.resize(links);
  status_.resize(links);
  link_drain_.resize(links);
  tx_present_.Resize(links);
  rx_present_.Resize(links);
  status_present_.Resize(links);
  link_drain_present_.Resize(links);
  tx_dirty_.Resize(links);
  rx_dirty_.Resize(links);
  status_dirty_.Resize(links);
  link_drain_dirty_.Resize(links);

  responded_.assign(nodes, 1);
  node_drain_.resize(nodes);
  dropped_.resize(nodes);
  ext_in_.resize(nodes);
  ext_out_.resize(nodes);
  node_drain_present_.Resize(nodes);
  dropped_present_.Resize(nodes);
  ext_in_present_.Resize(nodes);
  ext_out_present_.Resize(nodes);
  node_drain_dirty_.Resize(nodes);
  dropped_dirty_.Resize(nodes);
  ext_in_dirty_.Resize(nodes);
  ext_out_dirty_.Resize(nodes);
  responded_count_ = nodes;
}

void SignalFrame::Clear() {
  tx_present_.Clear();
  rx_present_.Clear();
  status_present_.Clear();
  link_drain_present_.Clear();
  node_drain_present_.Clear();
  dropped_present_.Clear();
  ext_in_present_.Clear();
  ext_out_present_.Clear();
  tx_dirty_.Clear();
  rx_dirty_.Clear();
  status_dirty_.Clear();
  link_drain_dirty_.Clear();
  node_drain_dirty_.Clear();
  dropped_dirty_.Clear();
  ext_in_dirty_.Clear();
  ext_out_dirty_.Clear();
  std::fill(responded_.begin(), responded_.end(), 1);
  responded_count_ = responded_.size();
}

void SignalFrame::MarkHonestPresence() {
  tx_present_.SetAll();
  rx_present_.SetAll();
  status_present_.SetAll();
  link_drain_present_.SetAll();
  node_drain_present_.SetAll();
  dropped_present_.SetAll();
  ext_in_present_.Clear();
  ext_out_present_.Clear();
  // The dirty marks are additive (an earlier mutation must stay dirty), so
  // only the Set side of the pattern is mirrored — exactly the marks the
  // serial owner-gated path leaves when every router reports honestly.
  tx_dirty_.SetAll();
  rx_dirty_.SetAll();
  status_dirty_.SetAll();
  link_drain_dirty_.SetAll();
  node_drain_dirty_.SetAll();
  dropped_dirty_.SetAll();
  for (const net::Node& node : topo_->nodes()) {
    if (!node.has_external_port) continue;
    ext_in_present_.Set(node.id.value());
    ext_out_present_.Set(node.id.value());
    ext_in_dirty_.Set(node.id.value());
    ext_out_dirty_.Set(node.id.value());
  }
}

void SignalFrame::MarkUnresponsive(net::NodeId v) {
  if (responded_[v.value()] == 0) return;
  responded_[v.value()] = 0;
  --responded_count_;
  node_drain_present_.Reset(v.value());
  dropped_present_.Reset(v.value());
  ext_in_present_.Reset(v.value());
  ext_out_present_.Reset(v.value());
  node_drain_dirty_.Set(v.value());
  dropped_dirty_.Set(v.value());
  ext_in_dirty_.Set(v.value());
  ext_out_dirty_.Set(v.value());
  for (net::LinkId e : topo_->OutLinks(v)) {
    tx_present_.Reset(e.value());
    status_present_.Reset(e.value());
    link_drain_present_.Reset(e.value());
    tx_dirty_.Set(e.value());
    status_dirty_.Set(e.value());
    link_drain_dirty_.Set(e.value());
  }
  for (net::LinkId e : topo_->InLinks(v)) {
    rx_present_.Reset(e.value());
    rx_dirty_.Set(e.value());
  }
}

void SignalFrame::MarkAllDirty() {
  tx_dirty_.SetAll();
  rx_dirty_.SetAll();
  status_dirty_.SetAll();
  link_drain_dirty_.SetAll();
  node_drain_dirty_.SetAll();
  dropped_dirty_.SetAll();
  ext_in_dirty_.SetAll();
  ext_out_dirty_.SetAll();
}

void SignalFrame::DiffAgainst(const SignalFrame& prev, FrameDelta& delta) const {
  delta.Reset(topo_->link_count(), topo_->node_count());
  DiffColumn(tx_present_, tx_, prev.tx_present_, prev.tx_, tx_dirty_, delta.tx);
  DiffColumn(rx_present_, rx_, prev.rx_present_, prev.rx_, rx_dirty_, delta.rx);
  DiffColumn(status_present_, status_, prev.status_present_, prev.status_,
             status_dirty_, delta.status);
  DiffColumn(link_drain_present_, link_drain_, prev.link_drain_present_,
             prev.link_drain_, link_drain_dirty_, delta.link_drain);
  DiffColumn(node_drain_present_, node_drain_, prev.node_drain_present_,
             prev.node_drain_, node_drain_dirty_, delta.node_drain);
  DiffColumn(dropped_present_, dropped_, prev.dropped_present_, prev.dropped_,
             dropped_dirty_, delta.dropped);
  DiffColumn(ext_in_present_, ext_in_, prev.ext_in_present_, prev.ext_in_,
             ext_in_dirty_, delta.ext_in);
  DiffColumn(ext_out_present_, ext_out_, prev.ext_out_present_, prev.ext_out_,
             ext_out_dirty_, delta.ext_out);
}

}  // namespace hodor::telemetry
