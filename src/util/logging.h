// Minimal leveled logger. Sinks to stderr by default; the validation
// pipeline's alerting policy also routes operator-facing alerts through it.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>

namespace hodor::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

const char* LogLevelName(LogLevel level);

// Parses "debug", "info", "warning"/"warn", "error" (case-insensitive,
// surrounding whitespace ignored); empty when the name is unknown.
std::optional<LogLevel> LogLevelFromString(std::string_view name);

// Global log configuration. Not thread-safe by design: the simulator is
// single-threaded and benches configure logging once at startup. The min
// level initialises from the HODOR_LOG_LEVEL environment variable when set
// (benches/examples raise verbosity without code edits), defaulting to
// kInfo.
class Logger {
 public:
  using Sink = std::function<void(LogLevel, const std::string&)>;

  static Logger& Instance();

  void SetMinLevel(LogLevel level) { min_level_ = level; }
  LogLevel min_level() const { return min_level_; }

  // Replaces the output sink (tests capture logs this way). Passing nullptr
  // restores the default stderr sink. Safe to call from inside a running
  // sink: the replaced sink stays alive until its in-flight call returns.
  void SetSink(Sink sink);

  void Log(LogLevel level, const std::string& message);

 private:
  Logger();
  LogLevel min_level_ = LogLevel::kInfo;
  // Held by shared_ptr so Log() can pin the sink it invokes while SetSink
  // swaps in a replacement (reentrant sink replacement).
  std::shared_ptr<const Sink> sink_;
};

namespace internal {
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { Logger::Instance().Log(level_, os_.str()); }
  template <typename T>
  LogMessage& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace internal

}  // namespace hodor::util

#define HODOR_LOG(level) \
  ::hodor::util::internal::LogMessage(::hodor::util::LogLevel::level)
