# Empty dependencies file for bench_outage_scenarios.
# This may be replaced when dependencies are built.
