// Container-level behavior of the epoch log: append/read/seek, the index
// footer vs the full-scan fallback, and the crash-tolerance contract — a
// torn tail is reported and skipped, never fatal, while mid-file damage
// surfaces as a structured error from Read().
#include "replay/epoch_log.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "test_util.h"

namespace hodor {
namespace {

std::string TempLogPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// Writes a small log of `epochs` records and returns its path.
std::string WriteLog(const testing::HealthyNetwork& net,
                     const std::string& name, std::size_t epochs,
                     replay::EpochLogWriterOptions opts = {}) {
  const std::string path = TempLogPath(name);
  replay::EpochLogWriter writer;
  EXPECT_TRUE(writer.Open(path, net.topo, opts).ok());
  for (std::size_t i = 0; i < epochs; ++i) {
    const telemetry::NetworkSnapshot snapshot = net.Snapshot(i + 1);
    const controlplane::ControllerInput input = net.Input(snapshot, i + 2);
    replay::EpochVerdict verdict;
    verdict.validated = true;
    verdict.decision_digest = 1000 + i;
    EXPECT_TRUE(writer.Append(10 + i, snapshot, input, verdict).ok());
  }
  EXPECT_TRUE(writer.Close().ok());
  return path;
}

TEST(EpochLog, WriteReadSeekWithIndex) {
  const testing::HealthyNetwork net = testing::MakeAbilene();
  const std::string path = WriteLog(net, "indexed.hlog", 4);

  replay::EpochLogReader reader;
  ASSERT_TRUE(reader.Open(path).ok());
  EXPECT_TRUE(reader.had_index());
  EXPECT_FALSE(reader.tail_truncated());
  ASSERT_EQ(reader.epoch_count(), 4u);
  EXPECT_EQ(reader.topology().node_count(), net.topo.node_count());

  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(reader.epoch_at(i), 10 + i);
    auto rec = reader.Read(i);
    ASSERT_TRUE(rec.ok()) << rec.status().ToString();
    EXPECT_EQ(rec.value().epoch, 10 + i);
    EXPECT_EQ(rec.value().verdict.decision_digest, 1000 + i);
  }

  auto sought = reader.Seek(12);
  ASSERT_TRUE(sought.ok());
  EXPECT_EQ(sought.value().verdict.decision_digest, 1002u);
  EXPECT_EQ(reader.Seek(999).status().code(), util::StatusCode::kNotFound);
}

TEST(EpochLog, ScanFallbackWithoutIndex) {
  const testing::HealthyNetwork net = testing::MakeAbilene();
  replay::EpochLogWriterOptions opts;
  opts.write_index = false;
  const std::string path = WriteLog(net, "unindexed.hlog", 3, opts);

  replay::EpochLogReader reader;
  ASSERT_TRUE(reader.Open(path).ok());
  EXPECT_FALSE(reader.had_index());
  EXPECT_FALSE(reader.tail_truncated());
  ASSERT_EQ(reader.epoch_count(), 3u);
  auto rec = reader.Seek(11);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec.value().verdict.decision_digest, 1001u);
}

TEST(EpochLog, TornTailIsSkippedAndReported) {
  const testing::HealthyNetwork net = testing::MakeAbilene();
  const std::string path = WriteLog(net, "torn.hlog", 3);
  const std::string full = ReadFileBytes(path);

  // Cut into the middle of the last epoch record (the index footer and
  // trailer vanish with it): the reader must fall back to a scan, recover
  // the intact prefix, and report the torn tail.
  replay::EpochLogReader probe;
  ASSERT_TRUE(probe.Open(path).ok());
  // Offset of the last record is unknown from outside; chop 60% of the
  // file instead, which lands mid-records for any realistic sizes.
  const std::string torn_path = TempLogPath("torn_cut.hlog");
  WriteFileBytes(torn_path, full.substr(0, full.size() * 6 / 10));

  replay::EpochLogReader reader;
  ASSERT_TRUE(reader.Open(torn_path).ok());
  EXPECT_FALSE(reader.had_index());
  EXPECT_TRUE(reader.tail_truncated());
  EXPECT_FALSE(reader.tail_message().empty());
  EXPECT_LT(reader.epoch_count(), 3u);
  for (std::size_t i = 0; i < reader.epoch_count(); ++i) {
    EXPECT_TRUE(reader.Read(i).ok());
  }
}

TEST(EpochLog, EveryTruncationOpensOrFailsCleanly) {
  // Sweep a band of truncation lengths: Open() must either succeed (with
  // the torn tail reported when records were lost) or fail with a
  // structured status — and surviving records must read back.
  const testing::HealthyNetwork net = testing::MakeAbilene();
  const std::string path = WriteLog(net, "sweep.hlog", 2);
  const std::string full = ReadFileBytes(path);
  const std::string cut_path = TempLogPath("sweep_cut.hlog");

  for (std::size_t keep = 0; keep <= full.size();
       keep += keep < 64 ? 1 : 97) {
    WriteFileBytes(cut_path, full.substr(0, keep));
    replay::EpochLogReader reader;
    const util::Status opened = reader.Open(cut_path);
    if (!opened.ok()) continue;
    for (std::size_t i = 0; i < reader.epoch_count(); ++i) {
      const auto rec = reader.Read(i);
      EXPECT_TRUE(rec.ok()) << "keep=" << keep << ": "
                            << rec.status().ToString();
    }
  }
  std::remove(cut_path.c_str());
}

TEST(EpochLog, MidFileCorruptionSurfacesFromRead) {
  const testing::HealthyNetwork net = testing::MakeAbilene();
  const std::string path = WriteLog(net, "midflip.hlog", 3);
  std::string bytes = ReadFileBytes(path);

  // Flip one byte in the middle of the file. The index footer still
  // resolves, so Open() succeeds; the damaged record must fail its CRC
  // check at Read() time with a structured error.
  bytes[bytes.size() / 2] ^= 0x40;
  const std::string flip_path = TempLogPath("midflip_cut.hlog");
  WriteFileBytes(flip_path, bytes);

  replay::EpochLogReader reader;
  ASSERT_TRUE(reader.Open(flip_path).ok());
  bool any_failed = false;
  for (std::size_t i = 0; i < reader.epoch_count(); ++i) {
    if (!reader.Read(i).ok()) any_failed = true;
  }
  EXPECT_TRUE(any_failed);
}

TEST(EpochLog, RejectsForeignAndFutureFiles) {
  const std::string path = TempLogPath("foreign.hlog");
  WriteFileBytes(path, "definitely not an epoch log, far too short? no:"
                       " this is long enough to pass the size check.");
  replay::EpochLogReader reader;
  EXPECT_EQ(reader.Open(path).code(), util::StatusCode::kInvalidArgument);

  // A version bump must be refused with a clear message, not misparsed.
  const testing::HealthyNetwork net = testing::MakeAbilene();
  const std::string good = WriteLog(net, "future.hlog", 1);
  std::string bytes = ReadFileBytes(good);
  bytes[8] = 99;  // format version field follows the 8-byte magic
  const std::string future_path = TempLogPath("future_cut.hlog");
  WriteFileBytes(future_path, bytes);
  const util::Status opened = reader.Open(future_path);
  EXPECT_EQ(opened.code(), util::StatusCode::kFailedPrecondition);
  EXPECT_NE(opened.message().find("version"), std::string::npos);
}

TEST(EpochLog, AppendAfterCloseFails) {
  const testing::HealthyNetwork net = testing::MakeAbilene();
  replay::EpochLogWriter writer;
  const telemetry::NetworkSnapshot snapshot = net.Snapshot();
  const controlplane::ControllerInput input = net.Input(snapshot);
  EXPECT_FALSE(
      writer.Append(0, snapshot, input, replay::EpochVerdict{}).ok());
}

}  // namespace
}  // namespace hodor
