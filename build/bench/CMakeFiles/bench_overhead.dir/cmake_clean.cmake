file(REMOVE_RECURSE
  "CMakeFiles/bench_overhead.dir/bench_overhead.cc.o"
  "CMakeFiles/bench_overhead.dir/bench_overhead.cc.o.d"
  "bench_overhead"
  "bench_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
