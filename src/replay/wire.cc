#include "replay/wire.h"

#include <array>

namespace hodor::replay {

namespace {

// Slicing-by-8 CRC32C tables, generated once. Table 0 is the classic
// reflected-polynomial byte table; table k folds k extra zero bytes.
struct Crc32cTables {
  std::array<std::array<std::uint32_t, 256>, 8> t;

  Crc32cTables() {
    constexpr std::uint32_t kPoly = 0x82F63B78u;  // 0x1EDC6F41 reflected
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc & 1u) ? (crc >> 1) ^ kPoly : crc >> 1;
      }
      t[0][i] = crc;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = t[0][i];
      for (std::size_t k = 1; k < 8; ++k) {
        crc = t[0][crc & 0xFFu] ^ (crc >> 8);
        t[k][i] = crc;
      }
    }
  }
};

const Crc32cTables& Tables() {
  static const Crc32cTables tables;
  return tables;
}

}  // namespace

std::uint32_t Crc32c(const void* data, std::size_t size) {
  const auto& t = Tables().t;
  const unsigned char* p = static_cast<const unsigned char*>(data);
  std::uint32_t crc = 0xFFFFFFFFu;

  // Byte-at-a-time until 8-byte alignment, then 8 bytes per step.
  while (size > 0 && (reinterpret_cast<std::uintptr_t>(p) & 7u) != 0) {
    crc = t[0][(crc ^ *p++) & 0xFFu] ^ (crc >> 8);
    --size;
  }
  while (size >= 8) {
    std::uint64_t word;
    std::memcpy(&word, p, 8);
    if constexpr (std::endian::native == std::endian::big) {
      // The slicing tables assume little-endian byte order within the word.
      word = ((word & 0x00000000000000FFull) << 56) |
             ((word & 0x000000000000FF00ull) << 40) |
             ((word & 0x0000000000FF0000ull) << 24) |
             ((word & 0x00000000FF000000ull) << 8) |
             ((word & 0x000000FF00000000ull) >> 8) |
             ((word & 0x0000FF0000000000ull) >> 24) |
             ((word & 0x00FF000000000000ull) >> 40) |
             ((word & 0xFF00000000000000ull) >> 56);
    }
    word ^= crc;
    crc = t[7][word & 0xFFu] ^ t[6][(word >> 8) & 0xFFu] ^
          t[5][(word >> 16) & 0xFFu] ^ t[4][(word >> 24) & 0xFFu] ^
          t[3][(word >> 32) & 0xFFu] ^ t[2][(word >> 40) & 0xFFu] ^
          t[1][(word >> 48) & 0xFFu] ^ t[0][(word >> 56) & 0xFFu];
    p += 8;
    size -= 8;
  }
  while (size > 0) {
    crc = t[0][(crc ^ *p++) & 0xFFu] ^ (crc >> 8);
    --size;
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace hodor::replay
