#include "telemetry/signal_catalog.h"

#include <sstream>

namespace hodor::telemetry {

namespace {

std::string DevicePrefix(const net::Topology& topo, net::NodeId reporter) {
  return "/devices/device[name=" + topo.node(reporter).name + "]";
}

std::string InterfacePath(const net::Topology& topo, net::NodeId reporter,
                          net::LinkId link, const char* leaf) {
  return DevicePrefix(topo, reporter) + "/interfaces/interface[name=" +
         topo.LinkName(link) + "]/state/" + leaf;
}

}  // namespace

SignalCatalog::SignalCatalog(const net::Topology& topo) : topo_(&topo) {
  for (const net::Node& node : topo.nodes()) {
    // Node-level signals.
    signals_.push_back(SignalDescriptor{
        SignalKind::kNodeDrain, node.id, net::LinkId::Invalid(),
        DevicePrefix(topo, node.id) + "/system/state/drained",
        // Drain is intent: only link-drain symmetry-style redundancy via
        // the standardized protocol, plus probes for case-1 liveness.
        RedundancySources{false, false, true, true}});
    signals_.push_back(SignalDescriptor{
        SignalKind::kDroppedRate, node.id, net::LinkId::Invalid(),
        DevicePrefix(topo, node.id) + "/qos/state/dropped-octets",
        RedundancySources{false, true, false, false}});
    if (node.has_external_port) {
      signals_.push_back(SignalDescriptor{
          SignalKind::kExtInRate, node.id, net::LinkId::Invalid(),
          DevicePrefix(topo, node.id) +
              "/interfaces/interface[name=external]/state/counters/in-octets",
          RedundancySources{false, true, false, false}});
      signals_.push_back(SignalDescriptor{
          SignalKind::kExtOutRate, node.id, net::LinkId::Invalid(),
          DevicePrefix(topo, node.id) +
              "/interfaces/interface[name=external]/state/counters/out-octets",
          RedundancySources{false, true, false, false}});
    }
    // Per-interface signals.
    for (net::LinkId e : topo.OutLinks(node.id)) {
      signals_.push_back(SignalDescriptor{
          SignalKind::kTxRate, node.id, e,
          InterfacePath(topo, node.id, e, "counters/out-octets"),
          RedundancySources{true, true, true, false}});
      signals_.push_back(SignalDescriptor{
          SignalKind::kLinkStatus, node.id, e,
          InterfacePath(topo, node.id, e, "oper-status"),
          RedundancySources{true, false, true, true}});
      signals_.push_back(SignalDescriptor{
          SignalKind::kLinkDrain, node.id, e,
          InterfacePath(topo, node.id, e, "drained"),
          RedundancySources{true, false, false, false}});
    }
    for (net::LinkId e : topo.InLinks(node.id)) {
      signals_.push_back(SignalDescriptor{
          SignalKind::kRxRate, node.id, e,
          InterfacePath(topo, node.id, e, "counters/in-octets"),
          RedundancySources{true, true, true, false}});
    }
  }
}

std::size_t SignalCatalog::CorroboratedCount() const {
  std::size_t n = 0;
  for (const SignalDescriptor& d : signals_) {
    if (d.redundancy.link_symmetry || d.redundancy.flow_conservation ||
        d.redundancy.alternative_signals ||
        d.redundancy.manufactured_signals) {
      ++n;
    }
  }
  return n;
}

util::StatusOr<const SignalDescriptor*> SignalCatalog::FindByPath(
    const std::string& path) const {
  for (const SignalDescriptor& d : signals_) {
    if (d.path == path) return &d;
  }
  return util::NotFoundError("no signal with path '" + path + "'");
}

std::optional<double> SignalCatalog::Resolve(
    const SignalDescriptor& d, const NetworkSnapshot& snapshot) const {
  auto as_double = [](std::optional<bool> b) -> std::optional<double> {
    if (!b) return std::nullopt;
    return *b ? 1.0 : 0.0;
  };
  switch (d.kind) {
    case SignalKind::kTxRate: return snapshot.TxRate(d.link);
    case SignalKind::kRxRate: return snapshot.RxRate(d.link);
    case SignalKind::kLinkStatus: {
      const auto s = snapshot.StatusAtSrc(d.link);
      if (!s) return std::nullopt;
      return *s == LinkStatus::kUp ? 1.0 : 0.0;
    }
    case SignalKind::kLinkDrain:
      return as_double(snapshot.LinkDrainAtSrc(d.link));
    case SignalKind::kNodeDrain:
      return as_double(snapshot.NodeDrained(d.reporter));
    case SignalKind::kDroppedRate: return snapshot.DroppedRate(d.reporter);
    case SignalKind::kExtInRate: return snapshot.ExtInRate(d.reporter);
    case SignalKind::kExtOutRate: return snapshot.ExtOutRate(d.reporter);
  }
  return std::nullopt;
}

std::size_t SignalCatalog::PresentCount(
    const NetworkSnapshot& snapshot) const {
  std::size_t n = 0;
  for (const SignalDescriptor& d : signals_) {
    if (Resolve(d, snapshot).has_value()) ++n;
  }
  return n;
}

}  // namespace hodor::telemetry
