#include "util/logging.h"

#include <cctype>
#include <cstdlib>
#include <iostream>

#include "util/clock.h"

namespace hodor::util {

namespace {

// Default stderr sink. Lines carry a UTC ISO-8601 wall-clock prefix so
// operator logs can be correlated with external telemetry:
//   2024-11-05T17:03:21.042Z [WARN] epoch 9: input rejected: ...
std::shared_ptr<const Logger::Sink> DefaultSink() {
  return std::make_shared<const Logger::Sink>(
      [](LogLevel level, const std::string& msg) {
        std::cerr << UtcTimestampNow() << " [" << LogLevelName(level) << "] "
                  << msg << "\n";
      });
}

}  // namespace

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarning: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

std::optional<LogLevel> LogLevelFromString(std::string_view name) {
  std::string lower;
  lower.reserve(name.size());
  for (char c : name) {
    if (std::isspace(static_cast<unsigned char>(c))) continue;
    lower += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warning" || lower == "warn") return LogLevel::kWarning;
  if (lower == "error") return LogLevel::kError;
  return std::nullopt;
}

Logger& Logger::Instance() {
  static Logger logger;
  return logger;
}

Logger::Logger() : sink_(DefaultSink()) {
  if (const char* env = std::getenv("HODOR_LOG_LEVEL")) {
    if (const auto level = LogLevelFromString(env)) min_level_ = *level;
  }
}

void Logger::SetSink(Sink sink) {
  if (sink) {
    sink_ = std::make_shared<const Sink>(std::move(sink));
  } else {
    sink_ = DefaultSink();
  }
}

void Logger::Log(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(min_level_)) return;
  // Pin the current sink: if it replaces itself via SetSink mid-call, the
  // std::function being executed must outlive the call.
  const std::shared_ptr<const Sink> sink = sink_;
  (*sink)(level, message);
}

}  // namespace hodor::util
