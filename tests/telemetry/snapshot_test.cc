#include "telemetry/snapshot.h"

#include <gtest/gtest.h>

#include "net/topologies.h"

namespace hodor::telemetry {
namespace {

using net::LinkId;
using net::NodeId;

class SnapshotTest : public ::testing::Test {
 protected:
  SnapshotTest() : topo_(net::Figure3Triangle()), snap_(topo_, 7) {}
  net::Topology topo_;
  NetworkSnapshot snap_;
};

TEST_F(SnapshotTest, EpochAndTopologyWiredThrough) {
  EXPECT_EQ(snap_.epoch(), 7u);
  EXPECT_EQ(&snap_.topology(), &topo_);
  for (const net::Node& n : topo_.nodes()) {
    EXPECT_TRUE(snap_.Responded(n.id));
  }
}

TEST_F(SnapshotTest, FreshSnapshotHasNoSignals) {
  EXPECT_EQ(snap_.PresentSignalCount(), 0u);
  for (LinkId e : topo_.LinkIds()) {
    EXPECT_FALSE(snap_.TxRate(e).has_value());
    EXPECT_FALSE(snap_.RxRate(e).has_value());
    EXPECT_FALSE(snap_.StatusAtSrc(e).has_value());
  }
}

TEST_F(SnapshotTest, TxRateReportedBySrc) {
  const LinkId ab = topo_.FindLink(topo_.FindNode("A").value(),
                                   topo_.FindNode("B").value())
                        .value();
  snap_.frame().SetTxRate(ab, 42.0);
  EXPECT_DOUBLE_EQ(snap_.TxRate(ab).value(), 42.0);
  EXPECT_FALSE(snap_.RxRate(ab).has_value());
}

TEST_F(SnapshotTest, RxRateReportedByDst) {
  const LinkId ab = topo_.FindLink(topo_.FindNode("A").value(),
                                   topo_.FindNode("B").value())
                        .value();
  snap_.frame().SetRxRate(ab, 41.5);
  EXPECT_DOUBLE_EQ(snap_.RxRate(ab).value(), 41.5);
  EXPECT_FALSE(snap_.TxRate(ab).has_value());
}

TEST_F(SnapshotTest, StatusAtDstReadsReverseDirection) {
  const LinkId ab = topo_.FindLink(topo_.FindNode("A").value(),
                                   topo_.FindNode("B").value())
                        .value();
  const LinkId ba = topo_.link(ab).reverse;
  // dst's view of a↔b travels on dst's own out-interface: the reverse link.
  snap_.frame().SetStatus(ba, LinkStatus::kDown);
  EXPECT_EQ(snap_.StatusAtDst(ab).value(), LinkStatus::kDown);
  EXPECT_FALSE(snap_.StatusAtSrc(ab).has_value());
}

TEST_F(SnapshotTest, UnresponsiveRouterHidesItsSignals) {
  const NodeId a = topo_.FindNode("A").value();
  SignalFrame& frame = snap_.frame();
  frame.SetNodeDrained(a, false);
  frame.SetExtInRate(a, 10.0);
  const LinkId out = topo_.OutLinks(a)[0];
  frame.SetTxRate(out, 5.0);
  EXPECT_TRUE(snap_.NodeDrained(a).has_value());
  frame.MarkUnresponsive(a);
  EXPECT_FALSE(snap_.Responded(a));
  EXPECT_FALSE(snap_.NodeDrained(a).has_value());
  EXPECT_FALSE(snap_.ExtInRate(a).has_value());
  EXPECT_FALSE(snap_.TxRate(out).has_value());
  EXPECT_EQ(snap_.PresentSignalCount(), 0u);
}

TEST_F(SnapshotTest, SettersNoOpOnUnresponsiveRouter) {
  const NodeId a = topo_.FindNode("A").value();
  SignalFrame& frame = snap_.frame();
  frame.MarkUnresponsive(a);
  const LinkId out = topo_.OutLinks(a)[0];
  const LinkId in = topo_.InLinks(a)[0];
  frame.SetTxRate(out, 5.0);
  frame.SetStatus(out, LinkStatus::kUp);
  frame.SetLinkDrain(out, true);
  frame.SetRxRate(in, 2.0);
  frame.SetDroppedRate(a, 0.1);
  frame.SetExtInRate(a, 1.0);
  frame.SetExtOutRate(a, 1.0);
  frame.SetNodeDrained(a, true);
  EXPECT_EQ(snap_.PresentSignalCount(), 0u);
  EXPECT_FALSE(snap_.TxRate(out).has_value());
  EXPECT_FALSE(snap_.RxRate(in).has_value());
}

TEST_F(SnapshotTest, ResetClearsSignalsAndBumpsEpoch) {
  const NodeId a = topo_.FindNode("A").value();
  snap_.frame().SetExtInRate(a, 10.0);
  snap_.SetProbeResults({ProbeResult{LinkId(0), true}});
  snap_.Reset(11);
  EXPECT_EQ(snap_.epoch(), 11u);
  EXPECT_EQ(snap_.PresentSignalCount(), 0u);
  EXPECT_TRUE(snap_.Responded(a));
  EXPECT_FALSE(snap_.ProbeSucceeded(LinkId(0)).has_value());
}

TEST_F(SnapshotTest, ProbeResultsIndexedByLink) {
  EXPECT_FALSE(snap_.ProbeSucceeded(LinkId(0)).has_value());
  std::vector<ProbeResult> probes;
  probes.push_back(ProbeResult{LinkId(0), true});
  probes.push_back(ProbeResult{LinkId(3), false});
  snap_.SetProbeResults(probes);
  EXPECT_TRUE(snap_.ProbeSucceeded(LinkId(0)).value());
  EXPECT_FALSE(snap_.ProbeSucceeded(LinkId(3)).value());
  EXPECT_FALSE(snap_.ProbeSucceeded(LinkId(1)).has_value());
  EXPECT_EQ(snap_.probe_results().size(), 2u);
}

TEST_F(SnapshotTest, PresentSignalCountCounts) {
  const NodeId a = topo_.FindNode("A").value();
  SignalFrame& frame = snap_.frame();
  frame.SetNodeDrained(a, true);
  frame.SetDroppedRate(a, 0.0);
  const LinkId out = topo_.OutLinks(a)[0];
  frame.SetStatus(out, LinkStatus::kUp);
  frame.SetTxRate(out, 1.0);
  EXPECT_EQ(snap_.PresentSignalCount(), 4u);
  // Overwriting a present signal does not double-count.
  frame.SetTxRate(out, 2.0);
  EXPECT_EQ(snap_.PresentSignalCount(), 4u);
  frame.ClearTxRate(out);
  EXPECT_EQ(snap_.PresentSignalCount(), 3u);
}

TEST_F(SnapshotTest, LinkDrainAccessors) {
  const LinkId ab = topo_.LinkIds()[0];
  snap_.frame().SetLinkDrain(ab, true);
  EXPECT_TRUE(snap_.LinkDrainAtSrc(ab).value());
  EXPECT_FALSE(snap_.LinkDrainAtDst(ab).has_value());
}

}  // namespace
}  // namespace hodor::telemetry
