file(REMOVE_RECURSE
  "CMakeFiles/controlplane_services_test.dir/controlplane/services_test.cc.o"
  "CMakeFiles/controlplane_services_test.dir/controlplane/services_test.cc.o.d"
  "controlplane_services_test"
  "controlplane_services_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/controlplane_services_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
