// The router-signal vocabulary (paper §2.1, §3 step 1).
//
// Every quantity a router can report is a first-class signal whose absence
// (delayed, malformed, dropped telemetry) is distinct from any value. The
// two ends of a physical link observe overlapping quantities, which is
// precisely the redundancy (R1) the hardening step exploits:
//   - the rate on directed link e is reported twice: by src as a TX counter
//     and by dst as an RX counter;
//   - the status of a physical link is reported by both ends.
// The signals themselves live in the columnar SignalFrame
// (telemetry/signal_frame.h); this header keeps the shared vocabulary
// types.
#pragma once

#include "net/ids.h"

namespace hodor::telemetry {

// Link status as reported at one end (optical / admin view — a link whose
// dataplane is broken can still honestly report kUp; see §4.2).
enum class LinkStatus { kDown = 0, kUp = 1 };

constexpr const char* LinkStatusName(LinkStatus s) {
  return s == LinkStatus::kUp ? "up" : "down";
}

// Result of one active neighbor probe over a physical link (R4).
struct ProbeResult {
  net::LinkId link;  // the probed direction
  bool success = false;
};

}  // namespace hodor::telemetry
