#include "util/linear_solver.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace hodor::util {
namespace {

Matrix FromRows(std::vector<std::vector<double>> rows) {
  Matrix m(rows.size(), rows[0].size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    for (std::size_t c = 0; c < rows[r].size(); ++c) m.At(r, c) = rows[r][c];
  }
  return m;
}

TEST(SolveLinearSystem, Solves2x2) {
  // x + y = 3; x - y = 1  => x=2, y=1.
  const auto m = FromRows({{1, 1}, {1, -1}});
  auto res = SolveLinearSystem(m, {3, 1});
  ASSERT_TRUE(res.ok());
  ASSERT_EQ(res.value().outcome, SolveOutcome::kUnique);
  EXPECT_NEAR(res.value().solution[0], 2.0, 1e-9);
  EXPECT_NEAR(res.value().solution[1], 1.0, 1e-9);
  EXPECT_NEAR(res.value().residual, 0.0, 1e-9);
}

TEST(SolveLinearSystem, SolvesSingleUnknown) {
  // The paper's Figure 3 equation: x + 23 = 75 + 24.
  const auto m = FromRows({{1.0}});
  auto res = SolveLinearSystem(m, {75.0 + 24.0 - 23.0});
  ASSERT_TRUE(res.ok());
  EXPECT_NEAR(res.value().solution[0], 76.0, 1e-12);
}

TEST(SolveLinearSystem, DetectsUnderdetermined) {
  const auto m = FromRows({{1, 1}});
  auto res = SolveLinearSystem(m, {3});
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res.value().outcome, SolveOutcome::kUnderdetermined);
}

TEST(SolveLinearSystem, DetectsInconsistent) {
  // x + y = 3 and x + y = 4 cannot both hold.
  const auto m = FromRows({{1, 1}, {1, 1}});
  auto res = SolveLinearSystem(m, {3, 4});
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res.value().outcome, SolveOutcome::kInconsistent);
}

TEST(SolveLinearSystem, RedundantConsistentRowsStillUnique) {
  const auto m = FromRows({{1, 0}, {0, 1}, {1, 1}});
  auto res = SolveLinearSystem(m, {2, 3, 5});
  ASSERT_TRUE(res.ok());
  ASSERT_EQ(res.value().outcome, SolveOutcome::kUnique);
  EXPECT_NEAR(res.value().solution[0], 2.0, 1e-9);
  EXPECT_NEAR(res.value().solution[1], 3.0, 1e-9);
}

TEST(SolveLinearSystem, RejectsMismatchedRhs) {
  const auto m = FromRows({{1, 1}});
  EXPECT_FALSE(SolveLinearSystem(m, {1, 2}).ok());
}

TEST(SolveLinearSystem, RejectsZeroUnknowns) {
  Matrix m(2, 0);
  EXPECT_FALSE(SolveLinearSystem(m, {1, 2}).ok());
}

TEST(SolveLinearSystem, PivotingHandlesZeroLeadingEntry) {
  // First pivot position is zero; partial pivoting must swap.
  const auto m = FromRows({{0, 1}, {1, 0}});
  auto res = SolveLinearSystem(m, {5, 7});
  ASSERT_TRUE(res.ok());
  ASSERT_EQ(res.value().outcome, SolveOutcome::kUnique);
  EXPECT_NEAR(res.value().solution[0], 7.0, 1e-9);
  EXPECT_NEAR(res.value().solution[1], 5.0, 1e-9);
}

TEST(SolveLeastSquares, ExactSystemMatchesDirectSolve) {
  const auto m = FromRows({{2, 0}, {0, 4}});
  auto res = SolveLeastSquares(m, {2, 8});
  ASSERT_TRUE(res.ok());
  ASSERT_EQ(res.value().outcome, SolveOutcome::kUnique);
  EXPECT_NEAR(res.value().solution[0], 1.0, 1e-9);
  EXPECT_NEAR(res.value().solution[1], 2.0, 1e-9);
}

TEST(SolveLeastSquares, OverdeterminedNoisyAveraging) {
  // Three noisy measurements of x: least squares returns their mean.
  const auto m = FromRows({{1.0}, {1.0}, {1.0}});
  auto res = SolveLeastSquares(m, {9.0, 10.0, 11.0});
  ASSERT_TRUE(res.ok());
  ASSERT_EQ(res.value().outcome, SolveOutcome::kUnique);
  EXPECT_NEAR(res.value().solution[0], 10.0, 1e-9);
  EXPECT_GT(res.value().residual, 0.0);
}

TEST(SolveLeastSquares, UnderdeterminedReported) {
  // One equation, two unknowns: normal equations are singular.
  const auto m = FromRows({{1, 1}});
  auto res = SolveLeastSquares(m, {3});
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res.value().outcome, SolveOutcome::kUnderdetermined);
}

TEST(SolveLinearSystem, RandomizedRoundTrip) {
  // Property: for random well-conditioned systems, solving M x = M x0
  // recovers x0.
  Rng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t n = 2 + rng.Index(6);
    Matrix m(n, n);
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t c = 0; c < n; ++c) m.At(r, c) = rng.Uniform(-5, 5);
      m.At(r, r) += 10.0;  // diagonal dominance: well-conditioned
    }
    std::vector<double> x0(n);
    for (double& x : x0) x = rng.Uniform(-100, 100);
    auto res = SolveLinearSystem(m, m.Apply(x0));
    ASSERT_TRUE(res.ok());
    ASSERT_EQ(res.value().outcome, SolveOutcome::kUnique);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(res.value().solution[i], x0[i], 1e-6);
    }
  }
}

}  // namespace
}  // namespace hodor::util
