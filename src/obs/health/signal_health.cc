#include "obs/health/signal_health.h"

#include <algorithm>
#include <sstream>

#include "obs/json.h"
#include "obs/metrics.h"

namespace hodor::obs {

namespace {

double Clamp01To100(double v) { return std::min(100.0, std::max(0.0, v)); }

// Residual normalised by its threshold so different check families share a
// scale (1.0 = exactly at tolerance). Thresholds of zero (boolean drain
// invariants) pass the residual through unchanged — it is already a 0/1
// mismatch indicator.
double NormalisedResidual(const InvariantRecord& rec) {
  return rec.threshold > 0.0 ? rec.residual / rec.threshold : rec.residual;
}

// Per-source reduction of one epoch: worst verdict wins.
struct EpochObservation {
  bool failed = false;
  bool skipped = false;
  bool evaluated = false;
  bool repaired = false;  // hardening pass = flagged-but-recovered signal
  double residual = 0.0;  // max normalised residual seen this epoch
};

}  // namespace

std::string SignalHealth::HistoryString() const {
  std::string s;
  s.reserve(history.size());
  for (EpochVerdict v : history) s += static_cast<char>(v);
  return s;
}

std::string SignalHealth::ToJson() const {
  std::ostringstream os;
  os << "{\"check\":\"" << JsonEscape(check) << "\",\"entity\":\""
     << JsonEscape(entity) << "\",\"trust\":" << JsonNumber(trust)
     << ",\"residual_ewma\":" << JsonNumber(residual_ewma)
     << ",\"last_residual\":" << JsonNumber(last_residual)
     << ",\"first_epoch\":" << first_epoch << ",\"last_epoch\":" << last_epoch
     << ",\"observed_epochs\":" << observed_epochs
     << ",\"fail_epochs\":" << fail_epochs
     << ",\"skipped_epochs\":" << skipped_epochs
     << ",\"repair_events\":" << repair_events
     << ",\"consecutive_failures\":" << consecutive_failures
     << ",\"history\":\"" << JsonEscape(HistoryString()) << "\"}";
  return os.str();
}

SignalHealthBoard::SignalHealthBoard(SignalHealthOptions opts)
    : opts_(opts) {
  if (opts_.window == 0) opts_.window = 1;
}

void SignalHealthBoard::ObserveEpoch(const DecisionRecord& record) {
  ++epochs_observed_;

  // Reduce the record to one observation per source.
  std::map<std::pair<std::string, std::string>, EpochObservation> seen;
  for (const InvariantRecord& rec : record.Invariants()) {
    EpochObservation& obs =
        seen[{rec.check, ExtractInvariantEntity(rec.invariant)}];
    obs.residual = std::max(obs.residual, NormalisedResidual(rec));
    switch (rec.verdict) {
      case InvariantVerdict::kFail:
        obs.failed = true;
        obs.evaluated = true;
        break;
      case InvariantVerdict::kSkipped:
        obs.skipped = true;
        break;
      case InvariantVerdict::kPass:
        obs.evaluated = true;
        // Hardening emits a record only for signals it flagged: a pass
        // there means the signal misbehaved but was recovered (R2-R4).
        if (rec.check == "hardening") obs.repaired = true;
        break;
    }
  }

  auto push_history = [this](SignalHealth& h, EpochVerdict v) {
    h.history.push_back(v);
    while (h.history.size() > opts_.window) h.history.pop_front();
  };

  // Apply observations (creating sources on first sight).
  for (const auto& [key, obs] : seen) {
    auto [it, inserted] = sources_.try_emplace(key);
    SignalHealth& h = it->second;
    if (inserted) {
      h.check = key.first;
      h.entity = key.second;
      h.first_epoch = record.epoch;
    }
    h.last_epoch = record.epoch;
    ++h.observed_epochs;
    h.last_residual = obs.residual;
    h.residual_ewma = opts_.ewma_alpha * obs.residual +
                      (1.0 - opts_.ewma_alpha) * h.residual_ewma;

    if (obs.failed) {
      ++h.fail_epochs;
      ++h.consecutive_failures;
      h.trust = Clamp01To100(h.trust - opts_.fail_penalty);
      push_history(h, EpochVerdict::kFailed);
    } else if (obs.skipped && !obs.evaluated) {
      ++h.skipped_epochs;
      h.consecutive_failures = 0;
      h.trust = Clamp01To100(h.trust - opts_.skip_penalty);
      push_history(h, EpochVerdict::kSkipped);
    } else if (obs.repaired) {
      ++h.repair_events;
      h.consecutive_failures = 0;
      h.trust = Clamp01To100(h.trust - opts_.repair_penalty);
      push_history(h, EpochVerdict::kRepaired);
    } else {
      h.consecutive_failures = 0;
      h.trust = Clamp01To100(h.trust + opts_.recovery_credit);
      push_history(h, EpochVerdict::kClean);
    }
  }

  // Sources with no record this epoch: no evidence of trouble. Hardening
  // sources only ever appear when flagged, so quiet epochs are how they
  // regain trust after a repair.
  for (auto& [key, h] : sources_) {
    if (seen.count(key)) continue;
    h.consecutive_failures = 0;
    h.trust = Clamp01To100(h.trust + opts_.recovery_credit);
    h.residual_ewma *= (1.0 - opts_.ewma_alpha);
    push_history(h, EpochVerdict::kQuiet);
  }
}

const SignalHealth* SignalHealthBoard::Find(const std::string& check,
                                            const std::string& entity) const {
  const auto it = sources_.find({check, entity});
  return it == sources_.end() ? nullptr : &it->second;
}

std::vector<const SignalHealth*> SignalHealthBoard::SourcesByTrust() const {
  std::vector<const SignalHealth*> out;
  out.reserve(sources_.size());
  for (const auto& [key, h] : sources_) out.push_back(&h);
  std::stable_sort(out.begin(), out.end(),
                   [](const SignalHealth* a, const SignalHealth* b) {
                     if (a->trust != b->trust) return a->trust < b->trust;
                     if (a->check != b->check) return a->check < b->check;
                     return a->entity < b->entity;
                   });
  return out;
}

double SignalHealthBoard::MinTrust() const {
  double min = 100.0;
  for (const auto& [key, h] : sources_) min = std::min(min, h.trust);
  return min;
}

void SignalHealthBoard::PublishGauges(MetricsRegistry* registry) const {
  MetricsRegistry& reg = ResolveRegistry(registry);
  for (const auto& [key, h] : sources_) {
    reg.GetGauge("hodor_signal_trust",
                 {{"check", h.check}, {"entity", h.entity}},
                 "Signal-source trust score (0-100)")
        .Set(h.trust);
  }
}

std::string SignalHealthBoard::ToJson() const {
  std::ostringstream os;
  os << "{\"epochs\":" << epochs_observed_ << ",\"sources\":[";
  bool first = true;
  for (const SignalHealth* h : SourcesByTrust()) {
    if (!first) os << ",";
    os << h->ToJson();
    first = false;
  }
  os << "]}";
  return os.str();
}

std::string ExtractInvariantEntity(const std::string& invariant) {
  if (invariant.empty() || invariant.back() != ')') return invariant;
  const std::size_t open = invariant.rfind('(');
  if (open == std::string::npos) return invariant;
  return invariant.substr(open + 1, invariant.size() - open - 2);
}

}  // namespace hodor::obs
