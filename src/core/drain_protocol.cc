#include "core/drain_protocol.h"

#include <sstream>

namespace hodor::core {

DrainLedger::DrainLedger(const net::Topology& topo)
    : topo_(&topo), by_link_(topo.link_count()) {}

void DrainLedger::Announce(net::LinkId link, DrainReason reason) {
  HODOR_CHECK(link.valid() && link.value() < by_link_.size());
  by_link_[link.value()] = reason;
}

void DrainLedger::AnnounceBoth(net::LinkId link, DrainReason reason) {
  Announce(link, reason);
  Announce(topo_->link(link).reverse, reason);
}

void DrainLedger::AnnounceNodeDrain(net::NodeId node) {
  for (net::LinkId e : topo_->OutLinks(node)) {
    AnnounceBoth(e, DrainReason::kNodeMaintenance);
  }
}

std::optional<DrainReason> DrainLedger::AnnouncementAt(
    net::LinkId link) const {
  HODOR_CHECK(link.valid() && link.value() < by_link_.size());
  return by_link_[link.value()];
}

bool DrainLedger::PhysicalLinkDrained(net::LinkId link) const {
  return AnnouncementAt(link).has_value() ||
         AnnouncementAt(topo_->link(link).reverse).has_value();
}

bool DrainLedger::NodeFullyDrained(const net::Topology& topo,
                                   net::NodeId node) const {
  const auto& out = topo.OutLinks(node);
  if (out.empty()) return false;
  for (net::LinkId e : out) {
    if (!AnnouncementAt(e).has_value() ||
        !AnnouncementAt(topo.link(e).reverse).has_value()) {
      return false;
    }
  }
  return true;
}

std::size_t DrainLedger::announcement_count() const {
  std::size_t n = 0;
  for (const auto& a : by_link_) {
    if (a.has_value()) ++n;
  }
  return n;
}

std::string DrainProtocolViolation::ToString(const net::Topology& topo) const {
  std::ostringstream os;
  switch (kind) {
    case DrainProtocolViolationKind::kAsymmetricAnnouncement:
      os << "asymmetric drain announcement on " << topo.LinkName(link);
      break;
    case DrainProtocolViolationKind::kReasonMismatch:
      os << "drain reason mismatch on " << topo.LinkName(link);
      break;
    case DrainProtocolViolationKind::kUnsubstantiatedFault:
      os << "unsubstantiated fault drain on " << topo.LinkName(link);
      break;
  }
  if (!detail.empty()) os << " (" << detail << ")";
  return os.str();
}

namespace {

// Maintenance-style reasons encode operator intent and cannot be refuted
// by link health; fault-style reasons assert an observable condition.
bool IsFaultReason(DrainReason r) {
  return r == DrainReason::kFaultyNeighbor || r == DrainReason::kAutomation;
}

// Two ends may legitimately label one drain differently only when both
// labels are maintenance-flavoured (e.g. node-maintenance at one end seen
// as link maintenance by a neighbouring automation rollup).
bool ReasonsCompatible(DrainReason a, DrainReason b) {
  if (a == b) return true;
  return !IsFaultReason(a) && !IsFaultReason(b);
}

}  // namespace

DrainProtocolResult ValidateDrainLedger(const net::Topology& topo,
                                        const DrainLedger& ledger,
                                        const HardenedState& hardened,
                                        const DrainProtocolOptions& opts) {
  DrainProtocolResult result;
  for (net::LinkId e : topo.LinkIds()) {
    const net::Link& l = topo.link(e);
    if (l.reverse.value() < e.value()) continue;  // once per physical link
    const auto here = ledger.AnnouncementAt(e);
    const auto there = ledger.AnnouncementAt(l.reverse);
    if (!here && !there) continue;
    ++result.validated_announcements;

    // Symmetry: link drains must be announced by both ends (§4.3).
    if (here.has_value() != there.has_value()) {
      result.violations.push_back(DrainProtocolViolation{
          e, DrainProtocolViolationKind::kAsymmetricAnnouncement,
          std::string("announced only at ") +
              topo.node(here ? l.src : l.dst).name});
      continue;
    }
    if (!ReasonsCompatible(*here, *there)) {
      result.violations.push_back(DrainProtocolViolation{
          e, DrainProtocolViolationKind::kReasonMismatch,
          std::string(DrainReasonName(*here)) + " vs " +
              DrainReasonName(*there)});
      continue;
    }

    // Reason-specific redundancy: a fault drain claims the link is sick;
    // the hardened verdict can corroborate or refute that claim.
    if (IsFaultReason(*here) || IsFaultReason(*there)) {
      const HardenedLinkState& verdict = hardened.links[e.value()];
      if (verdict.verdict == LinkVerdict::kUp &&
          verdict.confidence >= opts.refute_confidence) {
        result.violations.push_back(DrainProtocolViolation{
            e, DrainProtocolViolationKind::kUnsubstantiatedFault,
            std::string("reason ") + DrainReasonName(*here) +
                " but hardened verdict is confidently up"});
      }
    }
  }
  return result;
}

}  // namespace hodor::core
