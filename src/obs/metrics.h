// Metrics registry: the process-wide accounting surface of the
// observability layer.
//
// The paper frames Hodor as an always-on service in front of a production
// controller, so operators need the standard three instrument kinds:
//   - Counter:   monotone totals (inputs validated, invariants fired);
//   - Gauge:     last-written values (current loss fraction, pool sizes);
//   - Histogram: fixed-bucket distributions (per-stage wall-clock).
//
// Metrics are organised Prometheus-style: a *family* (name + type + help)
// holds one series per distinct label set, e.g.
//     hodor_stage_duration_us{stage="harden"}.
// The registry renders either as Prometheus text exposition or as JSON
// (see ExportPrometheus / ExportJson); both are covered by tests/obs/.
//
// Like util::Logger, the registry is deliberately not thread-safe.
// Parallel sections follow the same ordered-merge discipline as
// util/parallel's sharded ParallelFor: each worker mutates its own shard
// registry and the control thread merges the shards back (MergeFrom) in a
// fixed order at stage/epoch boundaries, so totals are deterministic at
// any thread count. Debug builds enforce the single-writer rule with a
// thread-ownership assertion: the first mutating call binds the registry
// to the calling thread and any mutation from another thread raises via
// HODOR_CHECK; ReleaseOwnerThread() hands a shard to its next worker.
// Instrumented components take a `MetricsRegistry*` where nullptr means
// "the process-global registry" (ResolveRegistry); tests pass their own
// instance to stay hermetic.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#ifndef NDEBUG
#include <atomic>
#include <thread>
#endif

namespace hodor::obs {

// Label set for one series, e.g. {{"stage", "collect"}}. Order-insensitive:
// the registry sorts labels by key before building the series identity.
using Labels = std::vector<std::pair<std::string, std::string>>;

class Counter {
 public:
  void Increment(double delta = 1.0) { value_ += delta; }
  double value() const { return value_; }

 private:
  friend class MetricsRegistry;  // CopyFrom mirrors the exact value
  double value_ = 0.0;
};

class Gauge {
 public:
  void Set(double v) { value_ = v; }
  void Add(double delta) { value_ += delta; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

class Histogram {
 public:
  // `upper_bounds` must be strictly increasing; a +Inf overflow bucket is
  // implicit (bucket_counts() has upper_bounds().size() + 1 entries).
  explicit Histogram(std::vector<double> upper_bounds);

  void Observe(double v);

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  const std::vector<double>& upper_bounds() const { return upper_bounds_; }
  // Per-bucket (non-cumulative) observation counts; last entry is overflow.
  const std::vector<std::uint64_t>& bucket_counts() const { return counts_; }

 private:
  friend class MetricsRegistry;  // MergeFrom / CopyFrom manipulate buckets
  std::vector<double> upper_bounds_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
};

// Default microsecond latency buckets for stage spans: 10us .. 1s
// (see DESIGN.md "Observability defaults" for the exact boundaries).
std::vector<double> DefaultLatencyBucketsUs();

// One scalar sample as seen by sample visitors (the time-series layer).
// Counters and gauges contribute one sample each; a histogram contributes
// its running count and sum — enough to derive rates and means over time
// without retaining per-bucket history.
enum class SampleKind { kCounter, kGauge, kHistogramCount, kHistogramSum };

// Registry-wide knobs. Today this is just the histogram default; it is a
// struct so later options (series limits, export prefixes) ride along
// without touching every construction site.
struct MetricsRegistryOptions {
  // Bucket boundaries used when GetHistogram is called with empty
  // `upper_bounds`. Empty means DefaultLatencyBucketsUs().
  std::vector<double> default_histogram_buckets;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  explicit MetricsRegistry(MetricsRegistryOptions opts)
      : opts_(std::move(opts)) {}
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // The process-global registry all instrumentation defaults to.
  static MetricsRegistry& Global();

  // Get-or-create. Registering an existing family with a different type
  // raises via HODOR_CHECK; `help` is kept from the first registration.
  // Returned references stay valid until Reset() (series are heap-held).
  Counter& GetCounter(const std::string& name, const Labels& labels = {},
                      const std::string& help = "");
  Gauge& GetGauge(const std::string& name, const Labels& labels = {},
                  const std::string& help = "");
  Histogram& GetHistogram(const std::string& name, const Labels& labels = {},
                          std::vector<double> upper_bounds = {},
                          const std::string& help = "");

  // Lookup without creating; nullptr when the series does not exist.
  const Counter* FindCounter(const std::string& name,
                             const Labels& labels = {}) const;
  const Gauge* FindGauge(const std::string& name,
                         const Labels& labels = {}) const;
  const Histogram* FindHistogram(const std::string& name,
                                 const Labels& labels = {}) const;

  std::size_t family_count() const { return families_.size(); }
  std::size_t series_count() const;

  // Prometheus text exposition format (# HELP/# TYPE + samples; histograms
  // rendered with cumulative `le` buckets, _sum and _count).
  std::string ExportPrometheus() const;
  // One JSON object: {"counters":[...],"gauges":[...],"histograms":[...]}.
  std::string ExportJson() const;

  // Visits every scalar sample in deterministic (family, series) order
  // without allocating: counters and gauges yield one call each, histograms
  // yield a kHistogramCount then a kHistogramSum call. `label_key` is the
  // registry's internal rendered label string (`check="demand",...`);
  // callers compose display names as `name{label_key}` plus a
  // `_count`/`_sum` suffix for the histogram kinds. `fn` must not mutate
  // the registry (same read contract as Find*/Export*).
  template <typename Fn>
  void VisitSamples(Fn&& fn) const {
    for (const auto& [name, family] : families_) {
      for (const auto& [key, series] : family.series) {
        switch (family.type) {
          case MetricType::kCounter:
            fn(name, key, SampleKind::kCounter, series.counter->value());
            break;
          case MetricType::kGauge:
            fn(name, key, SampleKind::kGauge, series.gauge->value());
            break;
          case MetricType::kHistogram:
            fn(name, key, SampleKind::kHistogramCount,
               static_cast<double>(series.histogram->count()));
            fn(name, key, SampleKind::kHistogramSum, series.histogram->sum());
            break;
        }
      }
    }
  }

  // Ordered-merge discipline for parallel sections: folds another
  // registry's contents into this one. Counters add, gauges adopt the
  // source's last-written value, histograms add per-bucket counts (bounds
  // must match; mismatched bounds raise via HODOR_CHECK). Families and
  // series missing here are created. Deterministic totals follow from the
  // caller merging shards in a fixed order; `src` is typically Reset()
  // afterwards so each merge carries one stage's delta.
  void MergeFrom(const MetricsRegistry& src);

  // MergeFrom variant that stamps `extra_labels` onto every merged series —
  // how the fleet folds per-instance registries into one scoreboard registry
  // as `hodor_*{...,instance="abilene-0"}` without the instances knowing
  // they are being aggregated. `extra_labels` keys must not collide with
  // keys the source series already carry (the rendered selector would hold
  // the key twice).
  void MergeFrom(const MetricsRegistry& src, const Labels& extra_labels);

  // Makes this registry an exact value mirror of `src` (the epoch engine's
  // per-epoch snapshot for the sink thread). Series present in `src` are
  // overwritten in place — steady state allocates nothing — and series
  // this registry has that `src` lacks are left untouched, so a sink may
  // keep its own gauges alongside the mirror. Mirrors therefore only grow.
  void CopyFrom(const MetricsRegistry& src);

  // Drops every family (benches isolate configurations this way).
  // Options survive a Reset: they describe the registry, not its contents.
  // Also releases the debug-build thread binding: a reset registry is
  // ready for a new owner.
  void Reset() {
    AssertOwnedByCurrentThread();
    families_.clear();
    ReleaseOwnerThread();
  }

  // Debug builds bind a registry to the first thread that mutates it.
  // Call this when handing a shard registry to a different worker (after
  // the control thread merged and reset it); release-build no-op.
  void ReleaseOwnerThread() {
#ifndef NDEBUG
    owner_.store(std::thread::id(), std::memory_order_release);
#endif
  }

  const MetricsRegistryOptions& options() const { return opts_; }
  // Replaces the default histogram buckets used by later GetHistogram
  // calls with empty bounds; already-created histograms keep theirs.
  // Empty restores DefaultLatencyBucketsUs().
  void SetDefaultHistogramBuckets(std::vector<double> upper_bounds) {
    opts_.default_histogram_buckets = std::move(upper_bounds);
  }

 private:
  enum class MetricType { kCounter, kGauge, kHistogram };

  struct Series {
    Labels labels;  // sorted by key
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  struct Family {
    MetricType type = MetricType::kCounter;
    std::string help;
    // Keyed by the rendered label string (stable series identity).
    std::map<std::string, Series> series;
  };

  Family& GetFamily(const std::string& name, MetricType type,
                    const std::string& help);
  const Series* FindSeries(const std::string& name, MetricType type,
                           const Labels& labels) const;

  // Debug-build single-writer assertion (see the header comment). Reads
  // (Find*/Export*) are deliberately unchecked: the engine publishes
  // immutable mirrors across threads with external synchronization.
  void AssertOwnedByCurrentThread();

  MetricsRegistryOptions opts_;
  std::map<std::string, Family> families_;
#ifndef NDEBUG
  std::atomic<std::thread::id> owner_{};
#endif
};

// Resolves the "nullptr means global" convention used by every
// instrumented options struct.
inline MetricsRegistry& ResolveRegistry(MetricsRegistry* registry) {
  return registry ? *registry : MetricsRegistry::Global();
}

}  // namespace hodor::obs
