// Custom topology: bring your own WAN.
//
// Loads a topology from the v1 text format (a file path, or a built-in
// sample if none is given), prints its signal catalog summary, runs a
// healthy epoch plus one with a corrupted topology input, and shows the
// verdicts — the path an adopter follows to put Hodor in front of their
// own network model.
//
//   ./build/examples/custom_topology [my-network.topo]
#include <fstream>
#include <iostream>
#include <sstream>

#include "controlplane/services.h"
#include "core/validator.h"
#include "faults/aggregation_faults.h"
#include "flow/simulator.h"
#include "flow/tm_generators.h"
#include "net/serialization.h"
#include "telemetry/collector.h"
#include "telemetry/signal_catalog.h"
#include "util/strings.h"

namespace {

constexpr const char* kSampleTopology = R"(# sample regional WAN
topology sample-wan
node par ext 300
node fra ext 300
node ams ext 300
node lon ext 300
node mad ext 200
node mil ext 200

link par fra 100
link par lon 100
link par mad 100
link fra ams 100
link fra mil 100
link ams lon 100
link mad mil 100 metric 2
link lon ams 40
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace hodor;

  std::string text = kSampleTopology;
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::cerr << "cannot open " << argv[1] << "\n";
      return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    text = buf.str();
  } else {
    std::cout << "(no file given; using the built-in sample)\n";
  }

  auto parsed = net::ParseTopology(text);
  if (!parsed.ok()) {
    std::cerr << "parse error: " << parsed.status().ToString() << "\n";
    return 1;
  }
  const net::Topology topo = std::move(parsed).value();
  std::cout << "loaded '" << topo.name() << "': " << topo.node_count()
            << " routers, " << topo.physical_link_count()
            << " physical links, " << topo.ExternalNodes().size()
            << " external attachment points\n";

  const telemetry::SignalCatalog catalog(topo);
  std::cout << "signal catalog: " << catalog.size() << " signals, "
            << catalog.CorroboratedCount()
            << " corroborable by at least one redundancy source\n"
            << "e.g. " << catalog.signals().front().path << "\n\n";

  // Healthy epoch.
  const net::GroundTruthState state(topo);
  util::Rng rng(7);
  flow::DemandMatrix demand = flow::GravityDemand(topo, rng);
  flow::NormalizeToMaxUtilization(topo, 0.5, demand);
  const auto plan = flow::ShortestPathRouting(topo, demand, net::AllLinks());
  const auto sim = flow::SimulateFlow(topo, state, demand, plan);
  telemetry::Collector collector(topo, {});
  const auto snapshot = collector.Collect(state, sim, 0, rng);
  const auto honest =
      controlplane::AggregateInputs(topo, snapshot, demand, 0, rng);

  const core::Validator validator(topo);
  std::cout << "honest inputs: "
            << validator.Validate(honest, snapshot).Summary() << "\n";

  // The same epoch with a liveness-misreport bug on the first two links.
  auto corrupted = honest;
  faults::LinksMarkedDown(topo,
                          {topo.LinkIds()[0], topo.LinkIds()[2]})(
      corrupted.link_available);
  const auto report = validator.Validate(corrupted, snapshot);
  std::cout << "after liveness misreport: " << report.Summary() << "\n"
            << report.Describe(topo);
  return 0;
}
