#include "obs/provenance.h"

#include <cstdio>
#include <sstream>

#include "obs/json.h"

namespace hodor::obs {

std::uint64_t Fnv1a64(std::string_view bytes) {
  std::uint64_t h = 1469598103934665603ull;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

const char* InvariantVerdictName(InvariantVerdict verdict) {
  switch (verdict) {
    case InvariantVerdict::kPass: return "pass";
    case InvariantVerdict::kFail: return "fail";
    case InvariantVerdict::kSkipped: return "skipped";
  }
  return "?";
}

std::string InvariantRecord::ToJson() const {
  std::ostringstream os;
  os << "{\"check\":\"" << JsonEscape(check) << "\",\"invariant\":\""
     << JsonEscape(invariant) << "\",\"residual\":" << JsonNumber(residual)
     << ",\"threshold\":" << JsonNumber(threshold) << ",\"verdict\":\""
     << InvariantVerdictName(verdict) << "\"";
  if (!detail.empty()) os << ",\"detail\":\"" << JsonEscape(detail) << "\"";
  if (!source.empty()) os << ",\"source\":\"" << JsonEscape(source) << "\"";
  os << ",\"confidence\":" << JsonNumber(confidence);
  os << "}";
  return os.str();
}

std::size_t DecisionRecord::InvariantView::size() const {
  std::size_t n = 0;
  for (const Chunk& c : *chunks_) n += c.records().size();
  return n;
}

bool DecisionRecord::InvariantView::empty() const {
  for (const Chunk& c : *chunks_) {
    if (!c.records().empty()) return false;
  }
  return true;
}

void DecisionRecord::Add(InvariantRecord record) {
  if (chunks_.empty() || chunks_.back().shared != nullptr) {
    chunks_.emplace_back();
  }
  chunks_.back().owned.push_back(std::move(record));
}

void DecisionRecord::Reserve(std::size_t n) {
  if (chunks_.empty() || chunks_.back().shared != nullptr) {
    chunks_.emplace_back();
  }
  std::vector<InvariantRecord>& owned = chunks_.back().owned;
  owned.reserve(owned.size() + n);
}

void DecisionRecord::AddBlock(RecordBlock block) {
  if (block == nullptr) return;
  Chunk chunk;
  chunk.shared = std::move(block);
  chunks_.push_back(std::move(chunk));
}

std::vector<InvariantRecord> DecisionRecord::TakeRecords() {
  // Fast path for the usual fresh-evaluation shape — one owned chunk —
  // where the flat sequence already exists and can be moved wholesale.
  if (chunks_.size() == 1 && chunks_[0].shared == nullptr) {
    std::vector<InvariantRecord> out = std::move(chunks_[0].owned);
    chunks_.clear();
    return out;
  }
  std::vector<InvariantRecord> out;
  out.reserve(Invariants().size());
  for (Chunk& c : chunks_) {
    if (c.shared) {
      out.insert(out.end(), c.shared->begin(), c.shared->end());
    } else {
      out.insert(out.end(), std::make_move_iterator(c.owned.begin()),
                 std::make_move_iterator(c.owned.end()));
    }
  }
  chunks_.clear();
  return out;
}

std::size_t DecisionRecord::evaluated_count() const {
  std::size_t n = 0;
  for (const auto& r : Invariants()) {
    if (r.verdict != InvariantVerdict::kSkipped) ++n;
  }
  return n;
}

std::size_t DecisionRecord::failed_count() const {
  std::size_t n = 0;
  for (const auto& r : Invariants()) {
    if (r.verdict == InvariantVerdict::kFail) ++n;
  }
  return n;
}

std::size_t DecisionRecord::skipped_count() const {
  return Invariants().size() - evaluated_count();
}

const InvariantRecord* DecisionRecord::FirstFailure() const {
  for (const auto& r : Invariants()) {
    if (r.verdict == InvariantVerdict::kFail) return &r;
  }
  return nullptr;
}

std::string DecisionRecord::ToJson() const {
  std::ostringstream os;
  os << "{\"epoch\":" << epoch << ",\"accept\":" << (accept ? "true" : "false")
     << ",\"summary\":\"" << JsonEscape(summary)
     << "\",\"evaluated\":" << evaluated_count()
     << ",\"failed\":" << failed_count()
     << ",\"skipped\":" << skipped_count() << ",\"invariants\":[";
  bool first = true;
  for (const auto& r : Invariants()) {
    if (!first) os << ",";
    os << r.ToJson();
    first = false;
  }
  os << "]}";
  return os.str();
}

namespace {

void AppendExactF64(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

}  // namespace

void DecisionRecord::AppendCanonicalText(std::string& out) const {
  out += std::to_string(epoch);
  out += accept ? "|accept|" : "|reject|";
  out += summary;
  out += '\n';
  for (const InvariantRecord& inv : Invariants()) {
    out += inv.check;
    out += '|';
    out += inv.invariant;
    out += '|';
    AppendExactF64(out, inv.residual);
    out += '|';
    AppendExactF64(out, inv.threshold);
    out += '|';
    out += InvariantVerdictName(inv.verdict);
    out += '|';
    out += inv.source;
    out += '|';
    AppendExactF64(out, inv.confidence);
    out += '|';
    out += inv.detail;
    out += '\n';
  }
}

std::uint64_t DecisionRecord::CanonicalDigest() const {
  std::string text;
  text.reserve(64 + Invariants().size() * 96);
  AppendCanonicalText(text);
  return Fnv1a64(text);
}

}  // namespace hodor::obs
