# Empty dependencies file for bench_availability.
# This may be replaced when dependencies are built.
