// E12 — generalization across environments (§6):
//
//   "Are incorrect inputs a problem in other environments such as
//    protocol-based WANs, datacenter fabrics, or CDN infrastructures? And
//    would the approach we described be applicable to these environments?"
//
// Runs the E2 detection experiment (k zeroed demand entries, τ_e = 2%) and
// the E4 repair experiment (4 corrupted counters) on structurally very
// different networks: three WANs, a leaf-spine datacenter fabric (pure-
// transit spines, ECMP routing), and a hub-heavy star ("CDN origin"
// shape). The approach carries over wherever flow conservation and link
// symmetry exist — which is everywhere traffic is conserved.
#include <iostream>

#include "bench_common.h"
#include "faults/demand_perturbations.h"
#include "faults/snapshot_faults.h"
#include "util/stats.h"
#include "util/strings.h"

namespace {

using namespace hodor;

struct Environment {
  std::string name;
  std::function<net::Topology()> make;
};

double DetectionRate(const net::Topology& topo, std::size_t k, int trials,
                     std::uint64_t base_seed) {
  int detected = 0;
  for (int i = 0; i < trials; ++i) {
    bench::Trial t(topo, base_seed + i, 0.5, bench::DefaultCollector());
    const core::HardenedState hs = core::HardeningEngine().Harden(t.snapshot);
    util::Rng prng(base_seed + 7919 * i);
    if (t.demand.PositiveEntryCount() < k) continue;
    const auto perturbed = faults::ZeroEntries(t.demand, k, prng);
    if (!core::CheckDemand(t.topo, hs, perturbed.matrix).ok()) ++detected;
  }
  return util::SafeRate(static_cast<std::size_t>(detected),
                        static_cast<std::size_t>(trials));
}

double RepairRate(const net::Topology& topo, int trials,
                  std::uint64_t base_seed) {
  std::size_t corrupted = 0, accurate = 0;
  for (int i = 0; i < trials; ++i) {
    bench::Trial t(topo, base_seed + i, 0.5, bench::DefaultCollector());
    util::Rng rng(base_seed + 104729 * i);
    std::vector<net::LinkId> busy;
    for (net::LinkId e : t.topo.LinkIds()) {
      if (t.sim.carried[e.value()] > 1.0) busy.push_back(e);
    }
    if (busy.size() < 4) continue;
    std::vector<telemetry::SnapshotMutator> muts;
    std::vector<net::LinkId> victims;
    for (std::size_t idx : rng.SampleWithoutReplacement(busy.size(), 4)) {
      victims.push_back(busy[idx]);
      muts.push_back(faults::CorruptLinkCounter(
          busy[idx], faults::CounterSide::kTx,
          faults::CounterCorruption::kZero));
    }
    telemetry::NetworkSnapshot snap = t.snapshot;
    faults::ComposeFaults(std::move(muts))(snap);
    const core::HardenedState hs = core::HardeningEngine().Harden(snap);
    for (net::LinkId v : victims) {
      ++corrupted;
      const auto& r = hs.rates[v.value()];
      if (r.value && util::WithinRelativeTolerance(
                         *r.value, t.sim.carried[v.value()], 0.05)) {
        ++accurate;
      }
    }
  }
  return util::SafeRate(accurate, corrupted);
}

}  // namespace

int main() {
  using namespace hodor;
  constexpr int kTrials = 120;

  bench::PrintHeader(
      "E12", "generalization across environments (§6 broader design space)",
      "k zeroed demand entries at tau_e=2% + 4-counter repair, 120 "
      "trials/cell, seeds 50000+");

  const std::vector<Environment> envs = {
      {"abilene (research WAN)", [] { return net::Abilene(); }},
      {"b4like (inter-DC WAN)", [] { return net::B4Like(); }},
      {"geantlike (ISP WAN)", [] { return net::GeantLike(); }},
      {"leafspine 8x4 (DC fabric)", [] { return net::LeafSpine(8, 4); }},
      {"star-10 (CDN origin)", [] { return net::Star(10); }},
  };

  util::TablePrinter table({"environment", "nodes/links", "detect k=1",
                            "detect k=2", "detect k=3",
                            "repair 4 counters"});
  for (const Environment& env : envs) {
    const net::Topology topo = env.make();
    table.AddRowValues(
        env.name,
        std::to_string(topo.node_count()) + "/" +
            std::to_string(topo.physical_link_count()),
        util::FormatPercent(DetectionRate(topo, 1, kTrials, 50000), 1),
        util::FormatPercent(DetectionRate(topo, 2, kTrials, 51000), 1),
        util::FormatPercent(DetectionRate(topo, 3, kTrials, 52000), 1),
        util::FormatPercent(RepairRate(topo, kTrials, 53000), 1));
  }
  std::cout << table.ToString();
  std::cout << "\nThe invariants transfer unchanged: the leaf-spine fabric "
               "has pure-transit spines (no external counters) and still "
               "validates demand at the leaves and repairs spine-link "
               "counters via conservation. Its repair rate is the lowest "
               "because shortest-path routing concentrates traffic on one "
               "spine, so corrupted counters cluster on few equations; "
               "ECMP spreading would raise it.\n";
  return 0;
}
