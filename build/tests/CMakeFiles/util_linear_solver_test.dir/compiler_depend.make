# Empty compiler generated dependencies file for util_linear_solver_test.
# This may be replaced when dependencies are built.
