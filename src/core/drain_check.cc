#include "core/drain_check.h"

#include <sstream>

#include "util/status.h"

namespace hodor::core {

std::string DrainViolation::ToString(const net::Topology& topo) const {
  std::ostringstream os;
  auto entity = [&]() {
    return node.valid() ? topo.node(node).name : topo.LinkName(link);
  };
  switch (kind) {
    case DrainViolationKind::kInputIgnoresDrain:
      os << "input ignores drain of " << entity();
      break;
    case DrainViolationKind::kInputInventsDrain:
      os << "input drains " << entity() << " which reports undrained";
      break;
    case DrainViolationKind::kUndrainedDeadRouter:
      os << topo.node(node).name
         << " cannot carry traffic but is not drained";
      break;
    case DrainViolationKind::kDrainAsymmetry:
      os << "link drain asymmetry on " << topo.LinkName(link);
      break;
  }
  return os.str();
}

DrainCheckResult CheckDrains(const net::Topology& topo,
                             const HardenedState& hardened,
                             const std::vector<bool>& node_drained_input,
                             const std::vector<bool>& link_drained_input) {
  HODOR_CHECK(node_drained_input.size() == topo.node_count());
  HODOR_CHECK(link_drained_input.size() == topo.link_count());
  DrainCheckResult result;

  for (const net::Node& n : topo.nodes()) {
    const HardenedDrain& hd = hardened.drains[n.id.value()];
    const bool input_drained = node_drained_input[n.id.value()];
    if (hd.node_drained.has_value()) {
      if (*hd.node_drained && !input_drained) {
        result.violations.push_back(DrainViolation{
            n.id, net::LinkId::Invalid(),
            DrainViolationKind::kInputIgnoresDrain});
      } else if (!*hd.node_drained && input_drained) {
        result.violations.push_back(DrainViolation{
            n.id, net::LinkId::Invalid(),
            DrainViolationKind::kInputInventsDrain});
      }
    }
    if (hd.undrained_but_dead && !input_drained) {
      result.violations.push_back(DrainViolation{
          n.id, net::LinkId::Invalid(),
          DrainViolationKind::kUndrainedDeadRouter});
    }
    if (hd.drained_but_active) {
      result.warnings_drained_but_active.push_back(n.id);
    }
  }

  for (net::LinkId e : topo.LinkIds()) {
    const net::Link& l = topo.link(e);
    if (l.reverse.value() < e.value()) continue;  // once per physical link
    if (hardened.link_drain_disagreement[e.value()]) {
      result.violations.push_back(DrainViolation{
          net::NodeId::Invalid(), e, DrainViolationKind::kDrainAsymmetry});
    }
    const auto& hd = hardened.link_drained[e.value()];
    if (!hd.has_value()) continue;
    const bool input_drained = link_drained_input[e.value()];
    if (*hd && !input_drained) {
      result.violations.push_back(DrainViolation{
          net::NodeId::Invalid(), e, DrainViolationKind::kInputIgnoresDrain});
    } else if (!*hd && input_drained) {
      result.violations.push_back(DrainViolation{
          net::NodeId::Invalid(), e, DrainViolationKind::kInputInventsDrain});
    }
  }
  return result;
}

}  // namespace hodor::core
