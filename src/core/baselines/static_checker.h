// Baseline 1: the static sanity checks operators run today (paper §1).
//
// Two families, both deliberately faithful to their weaknesses:
//  - impossible-value checks: inputs that cannot possibly occur (demand
//    exceeding the physical edge capacity, malformed sizes, drained routers
//    that don't exist);
//  - historically-unlikely checks: per-feature [min, max] ranges learned
//    from past accepted inputs, with a configurable margin. These are the
//    ad-hoc heuristics the paper criticises: they miss wrong-but-plausible
//    inputs and false-positive on legitimate atypical states (disasters).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "controlplane/controller_input.h"
#include "net/topology.h"

namespace hodor::core::baselines {

struct StaticCheckerOptions {
  // Margin applied around the historically observed [min, max] per feature.
  double history_margin = 0.10;
  // History rows needed before the historical checks activate.
  std::size_t min_history = 3;
  bool enable_impossible_checks = true;
  bool enable_history_checks = true;
};

struct StaticCheckResult {
  std::vector<std::string> violations;
  bool ok() const { return violations.empty(); }
};

class StaticChecker {
 public:
  StaticChecker(const net::Topology& topo, StaticCheckerOptions opts = {})
      : topo_(&topo), opts_(opts) {}

  // Records an input the operator accepted (grows the historical ranges).
  void Observe(const controlplane::ControllerInput& input);

  StaticCheckResult Check(const controlplane::ControllerInput& input) const;

  std::size_t history_size() const { return observed_; }

 private:
  // Features tracked per input: per-node demand row sums, total demand,
  // available-link count, drained-node count.
  std::vector<double> Features(
      const controlplane::ControllerInput& input) const;

  const net::Topology* topo_;
  StaticCheckerOptions opts_;
  std::size_t observed_ = 0;
  std::vector<double> feature_min_;
  std::vector<double> feature_max_;
};

}  // namespace hodor::core::baselines
