// E6 — Hodor vs the operators' existing toolbox (§1, §5).
//
// Compares three validators on every catalog scenario:
//   static   — impossible-value + historical-range checks (what operators
//              run today, per §1);
//   anomaly  — EWMA z-score outlier detection on input features (§5);
//   hodor    — dynamic validation against hardened router signals.
//
// The paper's two claims to reproduce: (1) static/anomaly checks miss
// wrong-but-plausible inputs ("not because they cannot possibly occur ...
// but because they are not *currently occurring*"), and (2) they false-
// positive on legitimate disasters, which dynamic validation accepts.
#include <iostream>

#include "bench_common.h"
#include "core/baselines/anomaly_detector.h"
#include "core/baselines/static_checker.h"
#include "core/experiment.h"
#include "faults/scenario_catalog.h"
#include "util/logging.h"
#include "util/strings.h"

int main() {
  using namespace hodor;
  util::Logger::Instance().SetMinLevel(util::LogLevel::kError);

  bench::PrintHeader(
      "E6", "baseline comparison (static checks / anomaly detection / Hodor)",
      "abilene, gravity TM at 0.35 max-util (seed 77); baselines trained on "
      "12 honest epochs (seeds 300..311); scenario seed 5");

  const net::Topology topo = net::Abilene();
  const faults::ScenarioCatalog catalog(topo);
  util::Rng rng(77);
  flow::DemandMatrix demand = flow::GravityDemand(topo, rng);
  flow::NormalizeToMaxUtilization(topo, 0.35, demand);

  // Train the history-based baselines on honest epochs with normal
  // day-to-day variation (different measurement noise per epoch).
  core::baselines::StaticChecker static_checker(topo);
  core::baselines::AnomalyDetector anomaly(topo);
  const auto copts = bench::DefaultCollector();
  for (std::uint64_t s = 300; s < 312; ++s) {
    net::GroundTruthState state(topo);
    const flow::RoutingPlan plan =
        flow::ShortestPathRouting(topo, demand, net::AllLinks());
    const flow::SimulationResult sim =
        flow::SimulateFlow(topo, state, demand, plan);
    util::Rng crng(s);
    telemetry::Collector collector(topo, copts);
    const auto snap = collector.Collect(state, sim, s, crng);
    util::Rng arng(s + 50);
    const auto input = controlplane::AggregateInputs(topo, snap, demand, s,
                                                     arng, {}, {});
    static_checker.Observe(input);
    anomaly.Observe(input);
  }

  // For each scenario, produce the faulted epoch's input+snapshot the same
  // way the pipeline would, then ask each validator.
  core::ScenarioRunOptions opts;
  opts.seed = 5;
  opts.pipeline.collector.probes.false_loss_rate = 0.0;
  const core::Validator hodor(topo, opts.validator);

  util::TablePrinter table(
      {"scenario", "should flag", "static", "anomaly", "hodor"});
  struct Score {
    int caught = 0, missed = 0, false_pos = 0;
  } s_static, s_anomaly, s_hodor;

  for (const faults::OutageScenario& sc : catalog.scenarios()) {
    // Reproduce the faulted epoch deterministically.
    controlplane::Pipeline pipeline(topo, opts.pipeline,
                                    util::Rng(opts.seed));
    net::GroundTruthState state(topo);
    pipeline.Bootstrap(state, demand);
    (void)pipeline.RunEpoch(state, demand);
    if (sc.setup) sc.setup(state);
    const auto epoch =
        pipeline.RunEpoch(state, demand, sc.snapshot_fault, sc.aggregation);

    const bool static_flag = !static_checker.Check(epoch.raw_input).ok();
    const bool anomaly_flag = !anomaly.Check(epoch.raw_input).ok();
    const auto report = hodor.Validate(epoch.raw_input, epoch.snapshot);
    const bool hodor_flag =
        !report.ok() || !report.drain.warnings_drained_but_active.empty();

    auto mark = [&](Score& sco, bool flagged) -> std::string {
      if (sc.input_fault) {
        flagged ? ++sco.caught : ++sco.missed;
        return flagged ? "caught" : "MISSED";
      }
      if (flagged) {
        ++sco.false_pos;
        return "FALSE POS";
      }
      return "ok";
    };
    const std::string st = mark(s_static, static_flag);
    const std::string an = mark(s_anomaly, anomaly_flag);
    const std::string ho = mark(s_hodor, hodor_flag);
    table.AddRowValues(sc.id, sc.input_fault ? "yes" : "no", st, an, ho);
  }
  std::cout << table.ToString();

  util::TablePrinter summary(
      {"validator", "caught", "missed", "false positives"});
  summary.AddRowValues("static checks", s_static.caught, s_static.missed,
                       s_static.false_pos);
  summary.AddRowValues("anomaly detection", s_anomaly.caught,
                       s_anomaly.missed, s_anomaly.false_pos);
  summary.AddRowValues("hodor", s_hodor.caught, s_hodor.missed,
                       s_hodor.false_pos);
  std::cout << "\n" << summary.ToString();
  return 0;
}
