file(REMOVE_RECURSE
  "CMakeFiles/property_validation_property_test.dir/property/validation_property_test.cc.o"
  "CMakeFiles/property_validation_property_test.dir/property/validation_property_test.cc.o.d"
  "property_validation_property_test"
  "property_validation_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_validation_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
