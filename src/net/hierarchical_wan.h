// Seeded hierarchical WAN generator for fleet-scale experiments.
//
// Real operator WANs are not flat random graphs: they are built in tiers —
// a small full-bandwidth core, a middle aggregation layer dual-homed into
// the core, and a wide edge tier where customer/datacenter traffic actually
// attaches. The generator reproduces that shape at 400–10k nodes so fleet
// experiments can mix realistic large slices with the canned research
// topologies (Abilene, waxman100/400) without shipping a 10k-node file.
//
// Structure (connected by construction):
//  - Core tier: a ring over `cores` routers plus seeded random chords
//    (probability `core_chord_prob` per non-ring pair). Highest capacity.
//  - Aggregation tier: `aggs_per_core` routers per core, each dual-homed to
//    its parent core and the next core around the ring (survives any single
//    core failure).
//  - Edge tier: `edges_per_agg` routers per aggregation, each homed to its
//    parent and to a second, seeded-random aggregation in the same core
//    region. Only edge routers carry external ports — demand enters and
//    leaves at the edge, transits agg/core.
//
// Total nodes = cores * (1 + aggs_per_core * (1 + edges_per_agg)).
// The rng drives chord selection and secondary edge homing, so the same
// seed yields a bit-identical topology (see net::StructuralDigest) and
// different seeds yield structurally different graphs.
#pragma once

#include <cstddef>
#include <string>

#include "net/topology.h"
#include "util/rng.h"

namespace hodor::net {

struct HierarchicalWanParams {
  std::size_t cores = 8;
  std::size_t aggs_per_core = 4;
  std::size_t edges_per_agg = 30;
  // Probability of an extra core-core chord beyond the ring, per pair.
  double core_chord_prob = 0.3;
  // Capacity tiers, Gbps per direction.
  double core_capacity = 400.0;
  double agg_capacity = 100.0;
  double edge_capacity = 25.0;
  // External port capacity on edge routers.
  double external_capacity = 50.0;
};

// Generates one hierarchical WAN. Preconditions: cores >= 3 (ring),
// aggs_per_core >= 1, edges_per_agg >= 1.
Topology HierarchicalWan(const HierarchicalWanParams& params, util::Rng& rng);

// Canned parameter sets by approximate node count. Accepts 400, 1000
// (alias 1k) and 10000 (alias 10k):
//   400   -> 4 cores x 4 aggs x 24 edges   = 404 nodes
//   1000  -> 8 cores x 4 aggs x 30 edges   = 1000 nodes
//   10000 -> 16 cores x 8 aggs x 77 edges  = 10000 nodes
// Any other value CHECK-fails.
HierarchicalWanParams HierarchicalWanPreset(std::size_t approx_nodes);

}  // namespace hodor::net
