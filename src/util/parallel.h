// Deterministic work sharding for the hot validation loops.
//
// A ThreadPool owns long-lived worker threads; ParallelFor splits an index
// range [0, total) into at most `pool->thread_count()` contiguous shards and
// runs `body(begin, end, shard)` on each. Shards are contiguous and ordered,
// so a caller that writes per-shard results and concatenates them in shard
// index order reproduces the exact serial iteration order — including
// floating-point accumulation order — at any thread count. With a null pool
// (or one thread) the body runs inline on the calling thread, making
// single-threaded behaviour trivially identical to unsharded code.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/exec_trace.h"

namespace hodor::util {

class ThreadPool {
 public:
  // Spawns `threads - 1` workers (the calling thread always executes the
  // first shard itself). `threads <= 1` spawns nothing.
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return threads_; }

  // Attaches an execution tracer: every task execution emits one
  // kPoolTask event (arg = task index) on the executing thread's stream
  // ("pool-0" is the calling thread's share, "pool-1".. the workers).
  // Call before the first Run — Run's dispatch handshake is what
  // publishes the tracer pointer to the workers.
  void SetTracer(ExecTracer* tracer);

  // Runs `task(i)` for i in [0, count) across the workers plus the calling
  // thread; returns when every task finished. Tasks must not throw.
  void Run(std::size_t count, const std::function<void(std::size_t)>& task);

 private:
  void WorkerLoop(std::size_t worker);

  // Runs one task, tracing it when a tracer is attached. `stream` indexes
  // trace_handles_: 0 for the calling thread, worker index otherwise.
  void RunTask(const std::function<void(std::size_t)>& task, std::size_t i,
               std::size_t stream) {
    if (tracer_ != nullptr) {
      const std::uint64_t t0 = tracer_->NowNs();
      task(i);
      tracer_->Emit(trace_handles_[stream],
                    ExecEvent{t0, tracer_->NowNs() - t0,
                              tracer_->current_epoch(),
                              ExecEventKind::kPoolTask,
                              static_cast<std::uint16_t>(i & 0xffff), 0});
    } else {
      task(i);
    }
  }

  std::size_t threads_;
  bool spin_ok_ = true;  // false when threads_ exceeds the hardware cores
  ExecTracer* tracer_ = nullptr;
  std::vector<ExecThreadHandle> trace_handles_;  // [0]=caller, [i]=worker i
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;
  // task_/task_count_/next_index_ are guarded by mu_; generation_ and
  // pending_ are atomics so the spin-then-sleep waits can poll them without
  // taking the lock (they are still only *written* while holding mu_, or —
  // for pending_ — by the worker that just finished a task).
  const std::function<void(std::size_t)>* task_ = nullptr;
  std::size_t task_count_ = 0;
  std::size_t next_index_ = 0;
  std::atomic<std::size_t> pending_{0};
  std::atomic<std::uint64_t> generation_{0};
  std::atomic<bool> shutdown_{false};
};

// How many shards ParallelFor will use for a range of `total` items — the
// size callers should use for per-shard result buffers.
std::size_t ShardCount(const ThreadPool* pool, std::size_t total);

// Shards [0, total) over `pool` (inline when pool is null, has one thread,
// or the range is small). `body(begin, end, shard)` sees contiguous,
// in-order shards; `shard` indexes them densely from 0. A template so the
// serial path invokes the body directly — no std::function allocation on
// the default num_threads=1 hot path.
template <typename Body>
void ParallelFor(ThreadPool* pool, std::size_t total, Body&& body) {
  const std::size_t shards = ShardCount(pool, total);
  if (shards == 0) return;
  if (shards == 1) {
    body(std::size_t{0}, total, std::size_t{0});
    return;
  }
  const std::size_t chunk = (total + shards - 1) / shards;
  pool->Run(shards, [&](std::size_t s) {
    const std::size_t begin = s * chunk;
    const std::size_t end = begin + chunk < total ? begin + chunk : total;
    if (begin < end) body(begin, end, s);
  });
}

// Thread count requested via the HODOR_THREADS environment variable —
// the one parser every consumer (epoch engine wiring, hardening options,
// CLI drivers, benches, /buildz) goes through, so validation and
// diagnostics live in exactly one place. Returns `fallback` when the
// variable is unset; a malformed value (non-numeric, trailing junk, zero,
// negative) logs one warning per distinct value and falls back; values
// beyond kMaxThreadsFromEnv are clamped with a warning. The result is
// always in [1, kMaxThreadsFromEnv] or `fallback`.
inline constexpr std::size_t kMaxThreadsFromEnv = 512;
std::size_t ThreadsFromEnv(std::size_t fallback = 1);

}  // namespace hodor::util
