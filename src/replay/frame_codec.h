// FrameCodec: versioned little-endian binary encode/decode of everything
// one control epoch leaves behind — the columnar telemetry::SignalFrame
// (per-column contiguous value writes, presence bitsets verbatim), the
// controlplane::ControllerInput the services aggregated (demand matrix,
// topology view, drain sets), and the validation verdict with its
// decision-record digest.
//
// The columnar SoA frame makes this codec almost free: each signal kind is
// one contiguous value array plus one packed presence bitset, so encode
// and decode are a handful of bulk copies per column instead of a
// per-router map walk. Every decode path is bounds-checked and returns
// util::Status on malformed input — a corrupted or truncated log must be
// a reportable condition, never UB.
//
// Container framing (magic, CRC32C, record lengths, the index footer)
// lives in replay/epoch_log.h; this header is only the payload codec.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "controlplane/controller_input.h"
#include "obs/provenance.h"
#include "replay/wire.h"
#include "telemetry/snapshot.h"
#include "util/status.h"

namespace hodor::replay {

// Bumped whenever the wire layout changes. Readers accept any version in
// [kMinFormatVersion, kFormatVersion] — older fields decode with their
// documented defaults — and refuse anything else with a structured error
// (no silent misparse across format revisions).
//
// History:
//   v1  original layout.
//   v2  each recorded invariant gains repair provenance: a source string
//       and a confidence double. A v1 log decodes with source empty and
//       confidence 0.0.
inline constexpr std::uint32_t kFormatVersion = 2;
inline constexpr std::uint32_t kMinFormatVersion = 1;

// One invariant evaluation in compact recorded form — enough to diff a
// replayed decision invariant-by-invariant (the operator-facing `detail`
// string participates in the digest but is not stored per invariant).
struct RecordedInvariant {
  std::string check;      // "hardening" | "demand" | "topology" | "drain"
  std::string invariant;  // e.g. "ingress(SEAT)"
  double residual = 0.0;
  double threshold = 0.0;
  obs::InvariantVerdict verdict = obs::InvariantVerdict::kPass;
  // v2: repair provenance (obs::InvariantRecord::source / ::confidence).
  // Absent on the v1 wire; a v1 decode leaves these defaults.
  std::string source;
  double confidence = 0.0;
};

// The validation outcome of one recorded epoch.
struct EpochVerdict {
  bool validated = false;      // was a validator installed that epoch?
  bool accept = true;
  bool used_fallback = false;  // pipeline replaced the input by last-good
  std::string reason;          // ValidationDecision::reason
  std::string summary;         // DecisionRecord::summary
  // obs::DecisionRecord::CanonicalDigest() of the full decision record at
  // record time: the bit-exact fingerprint replay diffs against.
  std::uint64_t decision_digest = 0;
  std::uint32_t evaluated = 0;
  std::uint32_t failed = 0;
  std::uint32_t skipped = 0;
  std::vector<RecordedInvariant> invariants;
};

// One fully decoded epoch. The snapshot's frame points at the topology the
// log reader decoded from the prologue, so records must not outlive the
// reader that produced them.
struct EpochRecord {
  std::uint64_t epoch = 0;
  telemetry::NetworkSnapshot snapshot;
  controlplane::ControllerInput input;
  EpochVerdict verdict;

  explicit EpochRecord(const net::Topology& topo) : snapshot(topo, 0) {}
};

// --- payload codecs ---------------------------------------------------------
// Encoders append to the writer and cannot fail; decoders fill a
// caller-provided object sized for `topo` and fail with InvalidArgument /
// OutOfRange on any malformed byte.

void EncodeFrame(const telemetry::SignalFrame& frame, ByteWriter& w);
util::Status DecodeFrame(ByteReader& r, telemetry::SignalFrame& frame);

// Frame plus probe results (the snapshot's epoch is carried by the
// enclosing record).
void EncodeSnapshot(const telemetry::NetworkSnapshot& snapshot, ByteWriter& w);
util::Status DecodeSnapshot(ByteReader& r, telemetry::NetworkSnapshot& snapshot);

void EncodeInput(const controlplane::ControllerInput& input, ByteWriter& w);
util::Status DecodeInput(ByteReader& r, const net::Topology& topo,
                         controlplane::ControllerInput& input);

// `version` selects the wire layout (see kFormatVersion history); the
// epoch-log container passes the version it stamped in its file header.
void EncodeVerdict(const EpochVerdict& verdict, ByteWriter& w,
                   std::uint32_t version = kFormatVersion);
util::Status DecodeVerdict(ByteReader& r, EpochVerdict& verdict,
                           std::uint32_t version = kFormatVersion);

// Whole epoch record (epoch id + snapshot + input + verdict).
void EncodeEpochRecord(std::uint64_t epoch,
                       const telemetry::NetworkSnapshot& snapshot,
                       const controlplane::ControllerInput& input,
                       const EpochVerdict& verdict, ByteWriter& w,
                       std::uint32_t version = kFormatVersion);
util::Status DecodeEpochRecord(ByteReader& r, EpochRecord& record,
                               std::uint32_t version = kFormatVersion);

}  // namespace hodor::replay
