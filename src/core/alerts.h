// Operator alerting — the integration surface §3 step 3 describes:
//
//   "We anticipate Hodor's validation checks to be integrated in a similar
//    process to how existing checks are integrated today into alerting and
//    management tools: for instance, Hodor can reject inputs that fail
//    validation and fall back temporarily to the last input state, or
//    trigger an alert for a reliability engineer to intervene."
//
// AlertBuilder turns a ValidationReport into structured Alert records a
// management system can route: severity, the affected entity, a
// human-readable message, the paper mechanism that fired, and — where the
// finding concerns concrete router signals — the OpenConfig-style paths an
// engineer would query first (via the SignalCatalog).
//
// AlertEngine adds the lifecycle a management system expects on top of the
// per-epoch BuildAlerts snapshots: alerts are deduplicated by a stable key
// (source + entity), transition firing → active → resolved, are held
// active for a minimum number of epochs so one-epoch flaps don't page
// twice, and escalate in severity when the same invariant keeps failing.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "core/validator.h"
#include "telemetry/signal_catalog.h"

namespace hodor::core {

enum class AlertSeverity {
  kInfo,      // noteworthy, no action needed (e.g. repaired counters)
  kWarning,   // needs eyes (drained-but-active, low-confidence verdicts)
  kCritical,  // controller input does not reflect the network: intervene
};

constexpr const char* AlertSeverityName(AlertSeverity s) {
  switch (s) {
    case AlertSeverity::kInfo: return "INFO";
    case AlertSeverity::kWarning: return "WARNING";
    case AlertSeverity::kCritical: return "CRITICAL";
  }
  return "?";
}

struct Alert {
  AlertSeverity severity = AlertSeverity::kInfo;
  // Which validation mechanism raised it: "hardening", "demand-check",
  // "topology-check", "drain-check".
  std::string source;
  // The affected router or link, by name ("NYCMng", "NYCMng->WASHng").
  std::string entity;
  std::string message;
  // Signal paths an engineer should inspect first (may be empty).
  std::vector<std::string> signal_paths;

  // "[CRITICAL] demand-check NYCMng: ingress invariant ... (paths: ...)".
  std::string Render() const;
};

struct AlertOptions {
  // Repaired counters are reported as kInfo when true; silently dropped
  // otherwise (production systems usually want the paper trail).
  bool report_repairs = true;
};

// Builds the alert list for one validation report. Deterministic; ordering
// is severity-descending, then source.
std::vector<Alert> BuildAlerts(const net::Topology& topo,
                               const telemetry::SignalCatalog& catalog,
                               const ValidationReport& report,
                               const AlertOptions& opts = {});

// Builds alerts from decision provenance alone (the DecisionRecord each
// EpochResult already carries), for consumers that sit behind the pipeline
// and never see the full ValidationReport. Mapping: failed invariants are
// critical (warning for hardening), hardening repairs are info (subject to
// AlertOptions::report_repairs), hardening skips — an unrecoverable signal
// — are warnings. Non-hardening skipped invariants produce no alert.
// Signal paths are not resolved here (no catalog); entities come from the
// invariant names.
std::vector<Alert> AlertsFromProvenance(const obs::DecisionRecord& record,
                                        const AlertOptions& opts = {});

// --- alert lifecycle --------------------------------------------------------

enum class AlertState {
  kFiring,    // first epoch this condition was observed
  kActive,    // observed again on a later epoch (or held by flap hold)
  kResolved,  // unobserved for at least min_hold_epochs
};

constexpr const char* AlertStateName(AlertState s) {
  switch (s) {
    case AlertState::kFiring: return "firing";
    case AlertState::kActive: return "active";
    case AlertState::kResolved: return "resolved";
  }
  return "?";
}

struct AlertEngineOptions {
  // Flap suppression: an alert stays active until it has gone unobserved
  // for this many consecutive epochs. 1 resolves on the first clean epoch.
  std::uint64_t min_hold_epochs = 2;
  // Severity escalation: after this many consecutive observed epochs a
  // non-critical alert is promoted one level (info → warning → critical).
  // 0 disables escalation.
  std::uint64_t escalation_threshold = 3;
  // Resolved-alert history kept for /alerts and post-mortems.
  std::size_t max_resolved = 64;
  // Lifecycle counters/gauges (fired/resolved/escalated/active) are
  // emitted here; nullptr → the process-global registry.
  obs::MetricsRegistry* metrics = nullptr;
};

// One tracked condition with its lifecycle bookkeeping.
struct AlertRecord {
  Alert alert;  // latest content; message refreshes on re-observation
  AlertState state = AlertState::kFiring;
  std::string key;  // dedup identity, see AlertEngine::DedupKey
  std::uint64_t first_epoch = 0;
  std::uint64_t last_seen_epoch = 0;
  std::uint64_t resolved_epoch = 0;  // meaningful once state == kResolved
  std::uint64_t observed_epochs = 0;     // total epochs observed
  std::uint64_t consecutive_epochs = 0;  // current observed run length
  // Severity as reported before any escalation.
  AlertSeverity base_severity = AlertSeverity::kInfo;
  bool escalated = false;

  // "[CRITICAL] demand-check NYCMng (active since epoch 8, seen 3x): ..."
  std::string Render() const;
  std::string ToJson() const;
};

// What one Observe() call changed — the transition log an operator console
// would show for the epoch.
struct AlertEngineSummary {
  std::size_t fired = 0;      // new conditions (state kFiring)
  std::size_t refired = 0;    // of `fired`, conditions seen before (flap)
  std::size_t repeated = 0;   // already-active conditions observed again
  std::size_t escalated = 0;  // severity promotions this epoch
  std::size_t held = 0;       // unobserved but kept by flap suppression
  std::size_t resolved = 0;   // transitioned to kResolved this epoch
};

// Feeds per-epoch alert snapshots (from BuildAlerts or
// AlertsFromProvenance) through the lifecycle. Epochs must be observed in
// non-decreasing order; call Observe once per epoch even when the alert
// list is empty — resolution is driven by absence.
class AlertEngine {
 public:
  explicit AlertEngine(AlertEngineOptions opts = {});

  const AlertEngineOptions& options() const { return opts_; }

  AlertEngineSummary Observe(std::uint64_t epoch,
                             const std::vector<Alert>& alerts);

  // Firing + active conditions, ordered by first_epoch then key.
  const std::vector<AlertRecord>& active() const { return active_; }
  // Most recently resolved first, capped at max_resolved.
  const std::deque<AlertRecord>& resolved() const { return resolved_; }

  // nullptr when the condition is not currently firing/active.
  const AlertRecord* FindActive(const std::string& key) const;
  // Searches the resolved history (newest match wins).
  const AlertRecord* FindResolved(const std::string& key) const;

  // The dedup identity: "source|entity". Messages and severities vary
  // epoch to epoch (residuals move); the condition is the pair.
  static std::string DedupKey(const Alert& alert);

  // {"active":[...],"resolved":[...]} — the GET /alerts payload.
  std::string ToJson() const;

 private:
  AlertEngineOptions opts_;
  std::vector<AlertRecord> active_;
  std::deque<AlertRecord> resolved_;
  std::uint64_t last_epoch_ = 0;
  bool observed_any_ = false;
};

}  // namespace hodor::core
