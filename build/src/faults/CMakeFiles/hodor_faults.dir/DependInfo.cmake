
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/faults/aggregation_faults.cc" "src/faults/CMakeFiles/hodor_faults.dir/aggregation_faults.cc.o" "gcc" "src/faults/CMakeFiles/hodor_faults.dir/aggregation_faults.cc.o.d"
  "/root/repo/src/faults/demand_perturbations.cc" "src/faults/CMakeFiles/hodor_faults.dir/demand_perturbations.cc.o" "gcc" "src/faults/CMakeFiles/hodor_faults.dir/demand_perturbations.cc.o.d"
  "/root/repo/src/faults/scenario_catalog.cc" "src/faults/CMakeFiles/hodor_faults.dir/scenario_catalog.cc.o" "gcc" "src/faults/CMakeFiles/hodor_faults.dir/scenario_catalog.cc.o.d"
  "/root/repo/src/faults/snapshot_faults.cc" "src/faults/CMakeFiles/hodor_faults.dir/snapshot_faults.cc.o" "gcc" "src/faults/CMakeFiles/hodor_faults.dir/snapshot_faults.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/controlplane/CMakeFiles/hodor_controlplane.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/hodor_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/flow/CMakeFiles/hodor_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/hodor_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hodor_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
