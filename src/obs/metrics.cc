#include "obs/metrics.h"

#include <algorithm>
#include <sstream>

#include "obs/json.h"
#include "util/status.h"

namespace hodor::obs {

namespace {

// Sorted copy: the series identity must not depend on caller label order.
Labels SortedLabels(const Labels& labels) {
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  return sorted;
}

// Renders `stage="collect",check="demand"` — the Prometheus selector body
// and the registry's internal series key.
std::string RenderLabels(const Labels& sorted) {
  std::ostringstream os;
  bool first = true;
  for (const auto& [k, v] : sorted) {
    if (!first) os << ",";
    os << k << "=\"" << JsonEscape(v) << "\"";
    first = false;
  }
  return os.str();
}

// Bound rendering for `le` labels: default ostream %g-style, "+Inf" last.
std::string RenderBound(double bound) {
  std::ostringstream os;
  os << bound;
  return os.str();
}

}  // namespace

Histogram::Histogram(std::vector<double> upper_bounds)
    : upper_bounds_(std::move(upper_bounds)),
      counts_(upper_bounds_.size() + 1, 0) {
  for (std::size_t i = 1; i < upper_bounds_.size(); ++i) {
    HODOR_CHECK_MSG(upper_bounds_[i - 1] < upper_bounds_[i],
                    "histogram bounds must be strictly increasing");
  }
}

void Histogram::Observe(double v) {
  std::size_t bucket = upper_bounds_.size();  // overflow by default
  for (std::size_t i = 0; i < upper_bounds_.size(); ++i) {
    if (v <= upper_bounds_[i]) {
      bucket = i;
      break;
    }
  }
  ++counts_[bucket];
  ++count_;
  sum_ += v;
}

std::vector<double> DefaultLatencyBucketsUs() {
  return {10,    25,    50,    100,    250,    500,    1000,   2500,
          5000,  10000, 25000, 50000,  100000, 250000, 500000, 1000000};
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry registry;
  return registry;
}

void MetricsRegistry::AssertOwnedByCurrentThread() {
#ifndef NDEBUG
  const std::thread::id self = std::this_thread::get_id();
  std::thread::id expected{};  // unowned
  if (owner_.compare_exchange_strong(expected, self,
                                     std::memory_order_acq_rel)) {
    return;  // first mutating access binds the registry to this thread
  }
  HODOR_CHECK_MSG(expected == self,
                  "MetricsRegistry mutated from a second thread — give each "
                  "worker its own shard and MergeFrom it in a fixed order "
                  "(ReleaseOwnerThread() hands a shard to a new owner)");
#endif
}

void MetricsRegistry::MergeFrom(const MetricsRegistry& src) {
  MergeFrom(src, Labels{});
}

void MetricsRegistry::MergeFrom(const MetricsRegistry& src,
                                const Labels& extra_labels) {
  AssertOwnedByCurrentThread();
  for (const auto& [name, src_family] : src.families_) {
    Family& family = GetFamily(name, src_family.type, src_family.help);
    for (const auto& [key, src_series] : src_family.series) {
      // With extra labels the destination series identity differs from the
      // source's: re-sort and re-render so label order stays canonical.
      Labels dst_labels = src_series.labels;
      std::string dst_key = key;
      if (!extra_labels.empty()) {
        dst_labels.insert(dst_labels.end(), extra_labels.begin(),
                          extra_labels.end());
        dst_labels = SortedLabels(dst_labels);
        dst_key = RenderLabels(dst_labels);
      }
      auto [it, inserted] = family.series.try_emplace(dst_key);
      Series& series = it->second;
      if (inserted) series.labels = dst_labels;
      switch (src_family.type) {
        case MetricType::kCounter:
          if (!series.counter) series.counter = std::make_unique<Counter>();
          series.counter->Increment(src_series.counter->value());
          break;
        case MetricType::kGauge:
          if (!series.gauge) series.gauge = std::make_unique<Gauge>();
          series.gauge->Set(src_series.gauge->value());
          break;
        case MetricType::kHistogram: {
          const Histogram& sh = *src_series.histogram;
          if (!series.histogram) {
            series.histogram = std::make_unique<Histogram>(sh.upper_bounds());
          }
          Histogram& dh = *series.histogram;
          HODOR_CHECK_MSG(dh.upper_bounds_ == sh.upper_bounds_,
                          "MergeFrom: histogram bucket bounds differ: " + name);
          for (std::size_t i = 0; i < dh.counts_.size(); ++i) {
            dh.counts_[i] += sh.counts_[i];
          }
          dh.count_ += sh.count_;
          dh.sum_ += sh.sum_;
          break;
        }
      }
    }
  }
}

void MetricsRegistry::CopyFrom(const MetricsRegistry& src) {
  AssertOwnedByCurrentThread();
  for (const auto& [name, src_family] : src.families_) {
    Family& family = GetFamily(name, src_family.type, src_family.help);
    for (const auto& [key, src_series] : src_family.series) {
      auto [it, inserted] = family.series.try_emplace(key);
      Series& series = it->second;
      if (inserted) series.labels = src_series.labels;
      switch (src_family.type) {
        case MetricType::kCounter:
          if (!series.counter) series.counter = std::make_unique<Counter>();
          series.counter->value_ = src_series.counter->value();
          break;
        case MetricType::kGauge:
          if (!series.gauge) series.gauge = std::make_unique<Gauge>();
          series.gauge->Set(src_series.gauge->value());
          break;
        case MetricType::kHistogram: {
          const Histogram& sh = *src_series.histogram;
          if (!series.histogram ||
              series.histogram->upper_bounds_ != sh.upper_bounds_) {
            series.histogram = std::make_unique<Histogram>(sh.upper_bounds());
          }
          Histogram& dh = *series.histogram;
          dh.counts_ = sh.counts_;
          dh.count_ = sh.count_;
          dh.sum_ = sh.sum_;
          break;
        }
      }
    }
  }
}

MetricsRegistry::Family& MetricsRegistry::GetFamily(const std::string& name,
                                                    MetricType type,
                                                    const std::string& help) {
  auto [it, inserted] = families_.try_emplace(name);
  if (inserted) {
    it->second.type = type;
    it->second.help = help;
  } else {
    HODOR_CHECK_MSG(it->second.type == type,
                    "metric family re-registered with a different type: " +
                        name);
  }
  return it->second;
}

Counter& MetricsRegistry::GetCounter(const std::string& name,
                                     const Labels& labels,
                                     const std::string& help) {
  AssertOwnedByCurrentThread();
  Family& family = GetFamily(name, MetricType::kCounter, help);
  const Labels sorted = SortedLabels(labels);
  auto [it, inserted] = family.series.try_emplace(RenderLabels(sorted));
  if (inserted) {
    it->second.labels = sorted;
    it->second.counter = std::make_unique<Counter>();
  }
  return *it->second.counter;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name, const Labels& labels,
                                 const std::string& help) {
  AssertOwnedByCurrentThread();
  Family& family = GetFamily(name, MetricType::kGauge, help);
  const Labels sorted = SortedLabels(labels);
  auto [it, inserted] = family.series.try_emplace(RenderLabels(sorted));
  if (inserted) {
    it->second.labels = sorted;
    it->second.gauge = std::make_unique<Gauge>();
  }
  return *it->second.gauge;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         const Labels& labels,
                                         std::vector<double> upper_bounds,
                                         const std::string& help) {
  AssertOwnedByCurrentThread();
  Family& family = GetFamily(name, MetricType::kHistogram, help);
  const Labels sorted = SortedLabels(labels);
  auto [it, inserted] = family.series.try_emplace(RenderLabels(sorted));
  if (inserted) {
    it->second.labels = sorted;
    if (upper_bounds.empty()) {
      upper_bounds = opts_.default_histogram_buckets.empty()
                         ? DefaultLatencyBucketsUs()
                         : opts_.default_histogram_buckets;
    }
    it->second.histogram = std::make_unique<Histogram>(std::move(upper_bounds));
  }
  return *it->second.histogram;
}

const MetricsRegistry::Series* MetricsRegistry::FindSeries(
    const std::string& name, MetricType type, const Labels& labels) const {
  const auto fit = families_.find(name);
  if (fit == families_.end() || fit->second.type != type) return nullptr;
  const auto sit = fit->second.series.find(RenderLabels(SortedLabels(labels)));
  if (sit == fit->second.series.end()) return nullptr;
  return &sit->second;
}

const Counter* MetricsRegistry::FindCounter(const std::string& name,
                                            const Labels& labels) const {
  const Series* s = FindSeries(name, MetricType::kCounter, labels);
  return s ? s->counter.get() : nullptr;
}

const Gauge* MetricsRegistry::FindGauge(const std::string& name,
                                        const Labels& labels) const {
  const Series* s = FindSeries(name, MetricType::kGauge, labels);
  return s ? s->gauge.get() : nullptr;
}

const Histogram* MetricsRegistry::FindHistogram(const std::string& name,
                                                const Labels& labels) const {
  const Series* s = FindSeries(name, MetricType::kHistogram, labels);
  return s ? s->histogram.get() : nullptr;
}

std::size_t MetricsRegistry::series_count() const {
  std::size_t n = 0;
  for (const auto& [name, family] : families_) n += family.series.size();
  return n;
}

std::string MetricsRegistry::ExportPrometheus() const {
  std::ostringstream os;
  for (const auto& [name, family] : families_) {
    if (!family.help.empty()) os << "# HELP " << name << " " << family.help << "\n";
    os << "# TYPE " << name << " "
       << (family.type == MetricType::kCounter     ? "counter"
           : family.type == MetricType::kGauge     ? "gauge"
                                                   : "histogram")
       << "\n";
    for (const auto& [key, series] : family.series) {
      const std::string selector = key.empty() ? "" : "{" + key + "}";
      switch (family.type) {
        case MetricType::kCounter:
          os << name << selector << " " << JsonNumber(series.counter->value())
             << "\n";
          break;
        case MetricType::kGauge:
          os << name << selector << " " << JsonNumber(series.gauge->value())
             << "\n";
          break;
        case MetricType::kHistogram: {
          const Histogram& h = *series.histogram;
          std::uint64_t cumulative = 0;
          for (std::size_t i = 0; i < h.upper_bounds().size(); ++i) {
            cumulative += h.bucket_counts()[i];
            os << name << "_bucket{" << key << (key.empty() ? "" : ",")
               << "le=\"" << RenderBound(h.upper_bounds()[i]) << "\"} "
               << cumulative << "\n";
          }
          os << name << "_bucket{" << key << (key.empty() ? "" : ",")
             << "le=\"+Inf\"} " << h.count() << "\n";
          os << name << "_sum" << selector << " " << JsonNumber(h.sum())
             << "\n";
          os << name << "_count" << selector << " " << h.count() << "\n";
          break;
        }
      }
    }
  }
  return os.str();
}

namespace {

void AppendLabelsJson(std::ostringstream& os, const Labels& labels) {
  os << "\"labels\":{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) os << ",";
    os << "\"" << JsonEscape(k) << "\":\"" << JsonEscape(v) << "\"";
    first = false;
  }
  os << "}";
}

}  // namespace

std::string MetricsRegistry::ExportJson() const {
  std::ostringstream counters, gauges, histograms;
  bool first_c = true, first_g = true, first_h = true;
  for (const auto& [name, family] : families_) {
    for (const auto& [key, series] : family.series) {
      switch (family.type) {
        case MetricType::kCounter: {
          if (!first_c) counters << ",";
          first_c = false;
          counters << "{\"name\":\"" << JsonEscape(name) << "\",";
          AppendLabelsJson(counters, series.labels);
          counters << ",\"value\":" << JsonNumber(series.counter->value())
                   << "}";
          break;
        }
        case MetricType::kGauge: {
          if (!first_g) gauges << ",";
          first_g = false;
          gauges << "{\"name\":\"" << JsonEscape(name) << "\",";
          AppendLabelsJson(gauges, series.labels);
          gauges << ",\"value\":" << JsonNumber(series.gauge->value()) << "}";
          break;
        }
        case MetricType::kHistogram: {
          if (!first_h) histograms << ",";
          first_h = false;
          const Histogram& h = *series.histogram;
          histograms << "{\"name\":\"" << JsonEscape(name) << "\",";
          AppendLabelsJson(histograms, series.labels);
          histograms << ",\"buckets\":[";
          for (std::size_t i = 0; i < h.upper_bounds().size(); ++i) {
            if (i) histograms << ",";
            histograms << "{\"le\":" << JsonNumber(h.upper_bounds()[i])
                       << ",\"count\":" << h.bucket_counts()[i] << "}";
          }
          if (!h.upper_bounds().empty()) histograms << ",";
          histograms << "{\"le\":null,\"count\":"
                     << h.bucket_counts().back() << "}";
          histograms << "],\"sum\":" << JsonNumber(h.sum())
                     << ",\"count\":" << h.count() << "}";
          break;
        }
      }
    }
  }
  std::ostringstream os;
  os << "{\"counters\":[" << counters.str() << "],\"gauges\":["
     << gauges.str() << "],\"histograms\":[" << histograms.str() << "]}";
  return os.str();
}

}  // namespace hodor::obs
