#include "core/hardening.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <sstream>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/span.h"
#include "util/linear_solver.h"
#include "util/parallel.h"
#include "util/stats.h"

namespace hodor::core {

namespace {

using net::LinkId;
using net::NodeId;
using net::Topology;
using telemetry::NetworkSnapshot;

// Flow-conservation bookkeeping at one router:
//   (Σ_in rates + ext_in)  vs  (Σ_out rates + dropped + ext_out).
// Computable only when the node's own scalar signals and all incident link
// rates are known (an override supplies the candidate value under test).
struct ConservationCheck {
  bool computable = false;
  double relative_residual = 0.0;
};

ConservationCheck CheckConservation(const Topology& topo,
                                    const HardenedState& hs, NodeId v,
                                    LinkId override_link,
                                    double override_value) {
  ConservationCheck out;
  const auto& ei = hs.ext_in[v.value()];
  const auto& eo = hs.ext_out[v.value()];
  const auto& dr = hs.dropped[v.value()];
  const bool is_external = topo.node(v).has_external_port;
  if ((is_external && (!ei || !eo)) || !dr) return out;

  double in_sum = is_external ? *ei : 0.0;
  for (LinkId e : topo.InLinks(v)) {
    if (e == override_link) {
      in_sum += override_value;
      continue;
    }
    const auto& r = hs.rates[e.value()];
    if (!r.value) return out;
    in_sum += *r.value;
  }
  double out_sum = *dr + (is_external ? *eo : 0.0);
  for (LinkId e : topo.OutLinks(v)) {
    if (e == override_link) {
      out_sum += override_value;
      continue;
    }
    const auto& r = hs.rates[e.value()];
    if (!r.value) return out;
    out_sum += *r.value;
  }
  out.computable = true;
  out.relative_residual = util::RelativeDifference(in_sum, out_sum);
  return out;
}

}  // namespace

std::string HardenedState::Summary() const {
  std::ostringstream os;
  os << "hardening: flagged=" << flagged_rate_count
     << " repaired=" << repaired_rate_count
     << " unknown=" << unknown_rate_count
     << " status_disagreements=" << status_disagreement_count;
  return os.str();
}

// Scratch buffers reused across Harden calls (zero steady-state
// allocation). Per-shard buffers are merged in shard index order, which —
// shards being contiguous ranges — reproduces the serial iteration order
// exactly, including floating-point accumulation order.
struct HardeningEngine::Workspace {
  // R1 candidate columns, one slot per directed link.
  std::vector<std::optional<double>> tx;
  std::vector<std::optional<double>> rx;

  // Repair (a): decisions collected per shard, applied in shard order.
  struct Decision {
    LinkId link;
    double value;
    std::optional<double> rejected;
  };
  std::vector<std::vector<Decision>> shard_decisions;

  // Repair (b): per-shard (link, solved) pairs plus the per-link
  // accumulation columns they merge into.
  std::vector<std::vector<std::pair<std::uint32_t, double>>> shard_solutions;
  std::vector<double> prop_sum;
  std::vector<double> prop_first;
  std::vector<std::uint32_t> prop_count;
  std::vector<std::uint32_t> prop_touched;

  // Repair (c): unknown-column index, one slot per directed link.
  std::vector<std::size_t> column_of;
};

HardeningEngine::HardeningEngine(HardeningOptions opts)
    : opts_(opts), ws_(std::make_unique<Workspace>()) {}

HardeningEngine::~HardeningEngine() = default;

HardeningEngine::HardeningEngine(const HardeningEngine& other)
    : opts_(other.opts_), ws_(std::make_unique<Workspace>()) {}

HardeningEngine& HardeningEngine::operator=(const HardeningEngine& other) {
  if (this != &other) {
    opts_ = other.opts_;
    pool_.reset();
    ws_ = std::make_unique<Workspace>();
  }
  return *this;
}

HardeningEngine::HardeningEngine(HardeningEngine&&) noexcept = default;
HardeningEngine& HardeningEngine::operator=(HardeningEngine&&) noexcept =
    default;

util::ThreadPool* HardeningEngine::pool() const {
  if (opts_.num_threads <= 1) return nullptr;
  if (!pool_) pool_ = std::make_unique<util::ThreadPool>(opts_.num_threads);
  return pool_.get();
}

HardenedState HardeningEngine::Harden(const NetworkSnapshot& snapshot) const {
  HardenedState out;
  HardenInto(snapshot, out);
  return out;
}

void HardeningEngine::HardenInto(const NetworkSnapshot& snapshot,
                                 HardenedState& out) const {
  obs::StageSpan span(obs::Stage::kHarden, snapshot.epoch(), opts_.metrics,
                      opts_.trace);
  const Topology& topo = snapshot.topology();
  const std::size_t links = topo.link_count();
  const std::size_t nodes = topo.node_count();
  out.rates.assign(links, HardenedRate{});
  out.links.assign(links, HardenedLinkState{});
  out.link_drained.assign(links, std::nullopt);
  out.link_drain_disagreement.assign(links, false);
  out.ext_in.assign(nodes, std::nullopt);
  out.ext_out.assign(nodes, std::nullopt);
  out.dropped.assign(nodes, std::nullopt);
  out.drains.assign(nodes, HardenedDrain{});
  out.flagged_rate_count = 0;
  out.repaired_rate_count = 0;
  out.unknown_rate_count = 0;
  out.status_disagreement_count = 0;

  // Node-scalar signals are single-sourced; hardened value == reported value
  // (when the router answered). Their trustworthiness comes from being used
  // *jointly* in conservation equations: a corrupt scalar surfaces as an
  // unresolvable inconsistency rather than silently poisoning repairs.
  for (std::uint32_t i = 0; i < nodes; ++i) {
    const NodeId v(i);
    out.ext_in[i] = snapshot.ExtInRate(v);
    out.ext_out[i] = snapshot.ExtOutRate(v);
    out.dropped[i] = snapshot.DroppedRate(v);
  }

  HardenRates(snapshot, out);
  HardenLinkStates(snapshot, out);
  HardenDrains(snapshot, out);

  // Confidence scoring (R3/R4's role in the repair process): agreeing
  // pairs are fully trusted; inferred values start lower and gain from
  // each independent corroborating signal. Each link scores alone, so the
  // scan shards freely.
  util::ParallelFor(pool(), links, [&](std::size_t begin, std::size_t end,
                                       std::size_t) {
    for (std::size_t i = begin; i < end; ++i) {
      const LinkId e(static_cast<std::uint32_t>(i));
      HardenedRate& r = out.rates[i];
      switch (r.origin) {
        case RateOrigin::kAgreeing:
          r.confidence = 1.0;
          break;
        case RateOrigin::kRepaired:
        case RateOrigin::kSingleWitness: {
          double c = r.origin == RateOrigin::kRepaired ? 0.7 : 0.5;
          const bool active = r.value && *r.value > opts_.activity_floor;
          const auto probe = snapshot.ProbeSucceeded(e);
          // A successful probe corroborates a positive inferred rate; a
          // failed probe corroborates an inferred-idle link.
          if (probe && *probe == active) c += 0.15;
          const auto status = snapshot.StatusAtSrc(e);
          if (status &&
              (*status == telemetry::LinkStatus::kUp) == active) {
            c += 0.1;
          }
          r.confidence = std::min(1.0, c);
          break;
        }
        case RateOrigin::kUnknown:
          r.confidence = 0.0;
          break;
      }
    }
  });

  for (const HardenedRate& r : out.rates) {
    if (r.flagged) ++out.flagged_rate_count;
    if (r.origin == RateOrigin::kRepaired) ++out.repaired_rate_count;
    if (!r.value) ++out.unknown_rate_count;
  }
  for (std::size_t e = 0; e < out.links.size(); ++e) {
    if (out.links[e].status_disagreement &&
        e < topo.link(LinkId(static_cast<std::uint32_t>(e))).reverse.value()) {
      ++out.status_disagreement_count;  // count each physical link once
    }
  }

  obs::MetricsRegistry& reg = obs::ResolveRegistry(opts_.metrics);
  reg.GetCounter("hodor_hardening_runs_total", {}, "Snapshots hardened")
      .Increment();
  reg.GetCounter("hodor_hardening_flagged_rates_total", {},
                 "Rate pairs flagged by R1 link symmetry")
      .Increment(static_cast<double>(out.flagged_rate_count));
  reg.GetCounter("hodor_hardening_repaired_rates_total", {},
                 "Rates recovered via R2 flow conservation")
      .Increment(static_cast<double>(out.repaired_rate_count));
  reg.GetCounter("hodor_hardening_unknown_rates_total", {},
                 "Rates left unrecoverable after R1-R4")
      .Increment(static_cast<double>(out.unknown_rate_count));
  reg.GetCounter("hodor_hardening_status_disagreements_total", {},
                 "Physical links whose two status reports disagreed")
      .Increment(static_cast<double>(out.status_disagreement_count));
}

void HardeningEngine::HardenRates(const NetworkSnapshot& snapshot,
                                  HardenedState& out) const {
  const Topology& topo = snapshot.topology();
  const std::size_t links = topo.link_count();
  Workspace& ws = *ws_;
  util::ThreadPool* tp = pool();

  // --- R1: detection via link symmetry -----------------------------------
  // Each link reads and writes only its own slots: embarrassingly parallel.
  ws.tx.assign(links, std::nullopt);
  ws.rx.assign(links, std::nullopt);
  util::ParallelFor(tp, links, [&](std::size_t begin, std::size_t end,
                                   std::size_t) {
    for (std::size_t i = begin; i < end; ++i) {
      const LinkId e(static_cast<std::uint32_t>(i));
      const auto tx = snapshot.TxRate(e);
      const auto rx = snapshot.RxRate(e);
      ws.tx[i] = tx;
      ws.rx[i] = rx;
      HardenedRate& r = out.rates[i];
      if (tx && rx && util::WithinRelativeTolerance(*tx, *rx, opts_.tau_h)) {
        r.value = (*tx + *rx) / 2.0;
        r.origin = RateOrigin::kAgreeing;
      } else {
        // Mismatch or missing side: the pair is spurious; the true rate
        // becomes an unknown variable (paper §4.1).
        r.flagged = true;
        r.origin = RateOrigin::kUnknown;
      }
    }
  });

  // --- repair (a): pairwise disambiguation --------------------------------
  // Decide from the pre-repair state, then apply, so ordering cannot let
  // one repaired guess justify another within the same pass. The scan only
  // reads pre-repair rates, so flagged links disambiguate in parallel;
  // per-shard decision lists concatenate back to serial link order.
  if (opts_.pairwise_disambiguation) {
    const std::size_t shards = util::ShardCount(tp, links);
    ws.shard_decisions.resize(shards);
    for (auto& d : ws.shard_decisions) d.clear();
    util::ParallelFor(tp, links, [&](std::size_t begin, std::size_t end,
                                     std::size_t shard) {
      std::vector<Workspace::Decision>& decisions = ws.shard_decisions[shard];
      for (std::size_t i = begin; i < end; ++i) {
        const LinkId e(static_cast<std::uint32_t>(i));
        const HardenedRate& r = out.rates[i];
        if (!r.flagged || r.value) continue;
        const std::optional<double>& ctx = ws.tx[i];
        const std::optional<double>& crx = ws.rx[i];
        const net::Link& l = topo.link(e);

        std::optional<double> tx_resid, rx_resid;
        if (ctx) {
          const auto chk = CheckConservation(topo, out, l.src, e, *ctx);
          if (chk.computable) tx_resid = chk.relative_residual;
        }
        if (crx) {
          const auto chk = CheckConservation(topo, out, l.dst, e, *crx);
          if (chk.computable) rx_resid = chk.relative_residual;
        }
        const bool tx_fits = tx_resid && *tx_resid <= opts_.conservation_tau;
        const bool rx_fits = rx_resid && *rx_resid <= opts_.conservation_tau;
        if (tx_fits && rx_fits) {
          // Both candidates satisfy conservation at their own routers; keep
          // the one that fits more tightly.
          if (*tx_resid <= *rx_resid) {
            decisions.push_back({e, *ctx, crx});
          } else {
            decisions.push_back({e, *crx, ctx});
          }
        } else if (tx_fits) {
          decisions.push_back({e, *ctx, crx});
        } else if (rx_fits) {
          decisions.push_back({e, *crx, ctx});
        }
      }
    });
    for (const auto& shard : ws.shard_decisions) {
      for (const Workspace::Decision& d : shard) {
        HardenedRate& r = out.rates[d.link.value()];
        r.value = d.value;
        r.origin = RateOrigin::kRepaired;
        r.rejected_value = d.rejected;
      }
    }
  }

  // --- repair (b): constraint propagation ---------------------------------
  // A node equation with exactly one unknown incident rate determines it
  // (the paper's worked example: flow conservation at B gives x = 76).
  if (opts_.propagation_repair) {
    const std::size_t nodes = topo.node_count();
    ws.prop_sum.assign(links, 0.0);
    ws.prop_first.assign(links, 0.0);
    ws.prop_count.assign(links, 0);
    const std::size_t shards = util::ShardCount(tp, nodes);
    ws.shard_solutions.resize(shards);
    bool changed = true;
    while (changed) {
      // One synchronous round: every single-unknown node equation solves
      // against the rates as they stood at the start of the round; the
      // solutions are merged in shard (= node) order and assigned after.
      // An unknown adjacent to two solvable routers gets two (slightly
      // differing, per footnote 3) solutions — averaged or first-picked
      // per the option.
      for (auto& s : ws.shard_solutions) s.clear();
      util::ParallelFor(tp, nodes, [&](std::size_t begin, std::size_t end,
                                       std::size_t shard) {
        auto& sols = ws.shard_solutions[shard];
        for (std::size_t i = begin; i < end; ++i) {
          const NodeId v(static_cast<std::uint32_t>(i));
          const bool is_external = topo.node(v).has_external_port;
          if (!out.dropped[i]) continue;
          if (is_external && (!out.ext_in[i] || !out.ext_out[i])) continue;
          LinkId unknown = LinkId::Invalid();
          bool unknown_is_in = false;
          int unknown_count = 0;
          double in_sum = is_external ? *out.ext_in[i] : 0.0;
          double out_sum =
              *out.dropped[i] + (is_external ? *out.ext_out[i] : 0.0);
          for (LinkId e : topo.InLinks(v)) {
            const auto& r = out.rates[e.value()];
            if (r.value) {
              in_sum += *r.value;
            } else {
              ++unknown_count;
              unknown = e;
              unknown_is_in = true;
            }
          }
          for (LinkId e : topo.OutLinks(v)) {
            const auto& r = out.rates[e.value()];
            if (r.value) {
              out_sum += *r.value;
            } else {
              ++unknown_count;
              unknown = e;
              unknown_is_in = false;
            }
          }
          if (unknown_count != 1) continue;
          const double solved =
              unknown_is_in ? out_sum - in_sum : in_sum - out_sum;
          sols.emplace_back(unknown.value(), solved);
        }
      });
      ws.prop_touched.clear();
      for (const auto& sols : ws.shard_solutions) {
        for (const auto& [lid, v] : sols) {
          if (ws.prop_count[lid] == 0) {
            ws.prop_first[lid] = v;
            ws.prop_sum[lid] = v;
            ws.prop_touched.push_back(lid);
          } else {
            ws.prop_sum[lid] += v;
          }
          ++ws.prop_count[lid];
        }
      }
      changed = !ws.prop_touched.empty();
      for (std::uint32_t lid : ws.prop_touched) {
        const double v = opts_.average_adjacent_solutions
                             ? ws.prop_sum[lid] /
                                   static_cast<double>(ws.prop_count[lid])
                             : ws.prop_first[lid];
        HardenedRate& r = out.rates[lid];
        r.value = std::max(0.0, v);  // jitter can push tiny negatives
        r.origin = RateOrigin::kRepaired;
        ws.prop_count[lid] = 0;  // reset for the next round
      }
    }
  }

  // --- repair (c): global least-squares over remaining unknowns -----------
  if (opts_.global_least_squares) {
    std::vector<LinkId> unknowns;
    ws.column_of.assign(links, 0);
    for (std::size_t i = 0; i < links; ++i) {
      if (!out.rates[i].value) {
        ws.column_of[i] = unknowns.size();
        unknowns.push_back(LinkId(static_cast<std::uint32_t>(i)));
      }
    }
    if (!unknowns.empty()) {
      std::vector<std::vector<double>> rows;
      std::vector<double> rhs;
      for (const net::Node& n : topo.nodes()) {
        const bool is_external = n.has_external_port;
        if (!out.dropped[n.id.value()]) continue;
        if (is_external &&
            (!out.ext_in[n.id.value()] || !out.ext_out[n.id.value()])) {
          continue;
        }
        std::vector<double> row(unknowns.size(), 0.0);
        bool any_unknown = false;
        // Σ_in(unknown) − Σ_out(unknown) = known_out − known_in.
        double b = *out.dropped[n.id.value()] +
                   (is_external ? *out.ext_out[n.id.value()] -
                                      *out.ext_in[n.id.value()]
                                : 0.0);
        for (LinkId e : topo.InLinks(n.id)) {
          const auto& r = out.rates[e.value()];
          if (r.value) {
            b -= *r.value;
          } else {
            row[ws.column_of[e.value()]] += 1.0;
            any_unknown = true;
          }
        }
        for (LinkId e : topo.OutLinks(n.id)) {
          const auto& r = out.rates[e.value()];
          if (r.value) {
            b += *r.value;
          } else {
            row[ws.column_of[e.value()]] -= 1.0;
            any_unknown = true;
          }
        }
        if (!any_unknown) continue;
        rows.push_back(std::move(row));
        rhs.push_back(-b);  // move knowns to rhs with matching sign
      }
      if (!rows.empty()) {
        util::Matrix m(rows.size(), unknowns.size());
        for (std::size_t r = 0; r < rows.size(); ++r) {
          for (std::size_t c = 0; c < unknowns.size(); ++c) {
            m.At(r, c) = rows[r][c];
          }
        }
        auto solved = util::SolveLeastSquares(m, rhs);
        if (solved.ok() &&
            solved.value().outcome == util::SolveOutcome::kUnique) {
          const auto& x = solved.value().solution;
          for (std::size_t c = 0; c < unknowns.size(); ++c) {
            HardenedRate& r = out.rates[unknowns[c].value()];
            r.value = std::max(0.0, x[c]);
            r.origin = RateOrigin::kRepaired;
          }
        }
      }
    }
  }

  // --- repair (d): single-witness acceptance -------------------------------
  if (opts_.accept_single_witness) {
    util::ParallelFor(tp, links, [&](std::size_t begin, std::size_t end,
                                     std::size_t) {
      for (std::size_t i = begin; i < end; ++i) {
        HardenedRate& r = out.rates[i];
        if (r.value) continue;
        const std::optional<double>& ctx = ws.tx[i];
        const std::optional<double>& crx = ws.rx[i];
        if (ctx.has_value() == crx.has_value()) continue;  // 0 or 2 witnesses
        r.value = ctx.has_value() ? *ctx : *crx;
        r.origin = RateOrigin::kSingleWitness;
      }
    });
  }
}

void HardeningEngine::HardenLinkStates(const NetworkSnapshot& snapshot,
                                       HardenedState& out) const {
  const Topology& topo = snapshot.topology();
  // One pass per physical link; each pass writes only its own direction
  // pair, so the scan shards over the directed-link range.
  util::ParallelFor(pool(), topo.link_count(), [&](std::size_t begin,
                                                   std::size_t end,
                                                   std::size_t) {
    for (std::size_t i = begin; i < end; ++i) {
      const LinkId e(static_cast<std::uint32_t>(i));
      const net::Link& l = topo.link(e);
      if (l.reverse.value() < e.value()) continue;

      double up_evidence = 0.0;
      double down_evidence = 0.0;

      // R1: the two ends' status reports.
      const auto s_src = snapshot.StatusAtSrc(e);
      const auto s_dst = snapshot.StatusAtDst(e);
      for (const auto& s : {s_src, s_dst}) {
        if (!s) continue;
        (*s == telemetry::LinkStatus::kUp ? up_evidence : down_evidence) +=
            opts_.status_weight;
      }
      const bool disagreement = s_src && s_dst && *s_src != *s_dst;

      // R3: alternative signals — hardened rates. Traffic flowing is strong
      // evidence the link is up; both directions idle is weak down-evidence
      // (an up link may simply be unused).
      if (opts_.use_alternative_signals) {
        bool any_active = false;
        bool all_known_idle = true;
        for (LinkId dir : {e, l.reverse}) {
          const auto& r = out.rates[dir.value()];
          if (!r.value) {
            all_known_idle = false;
            continue;
          }
          if (*r.value > opts_.activity_floor) {
            any_active = true;
            all_known_idle = false;
          }
        }
        if (any_active) up_evidence += opts_.rate_weight;
        else if (all_known_idle) down_evidence += 0.5 * opts_.rate_weight;
      }

      // R4: manufactured signals — active probes exercise the dataplane.
      if (opts_.use_probes) {
        for (LinkId dir : {e, l.reverse}) {
          const auto p = snapshot.ProbeSucceeded(dir);
          if (!p) continue;
          (*p ? up_evidence : down_evidence) += opts_.probe_weight;
        }
      }

      HardenedLinkState verdict;
      verdict.status_disagreement = disagreement;
      const double total = up_evidence + down_evidence;
      if (total <= 0.0 || up_evidence == down_evidence) {
        verdict.verdict = LinkVerdict::kUnknown;
        verdict.confidence = 0.0;
      } else if (up_evidence > down_evidence) {
        verdict.verdict = LinkVerdict::kUp;
        verdict.confidence = up_evidence / total;
      } else {
        verdict.verdict = LinkVerdict::kDown;
        verdict.confidence = down_evidence / total;
      }
      out.links[i] = verdict;
      out.links[l.reverse.value()] = verdict;
    }
  });
}

void HardeningEngine::HardenDrains(const NetworkSnapshot& snapshot,
                                   HardenedState& out) const {
  const Topology& topo = snapshot.topology();
  util::ThreadPool* tp = pool();

  // Per-router drain fusion: each node writes only its own slot.
  util::ParallelFor(tp, topo.node_count(), [&](std::size_t begin,
                                               std::size_t end, std::size_t) {
    for (std::size_t i = begin; i < end; ++i) {
      const NodeId v(static_cast<std::uint32_t>(i));
      HardenedDrain d;
      d.node_drained = snapshot.NodeDrained(v);

      bool carrying = false;
      bool any_up_status = false;
      bool any_probe = false;
      bool any_probe_ok = false;
      auto consider = [&](LinkId e) {
        const auto& r = out.rates[e.value()];
        if (r.value && *r.value > opts_.activity_floor) carrying = true;
        const auto s = snapshot.StatusAtSrc(e);
        if (s && *s == telemetry::LinkStatus::kUp) any_up_status = true;
        const auto p = snapshot.ProbeSucceeded(e);
        if (p) {
          any_probe = true;
          if (*p) any_probe_ok = true;
        }
      };
      for (LinkId e : topo.OutLinks(v)) consider(e);
      for (LinkId e : topo.InLinks(v)) consider(e);

      // §4.3 case 1: not marked drained, yet nothing gets through —
      // statuses are up while every probe fails and no counter moves.
      d.undrained_but_dead = !d.node_drained.value_or(false) && !carrying &&
                             any_up_status && any_probe && !any_probe_ok;
      // §4.3 case 2: marked drained but traffic is clearly flowing.
      d.drained_but_active = d.node_drained.value_or(false) && carrying;
      out.drains[i] = d;
    }
  });

  util::ParallelFor(tp, topo.link_count(), [&](std::size_t begin,
                                               std::size_t end, std::size_t) {
    for (std::size_t i = begin; i < end; ++i) {
      const LinkId e(static_cast<std::uint32_t>(i));
      const auto d1 = snapshot.LinkDrainAtSrc(e);
      const auto d2 = snapshot.LinkDrainAtDst(e);
      if (!d1 && !d2) {
        out.link_drained[i] = std::nullopt;
        continue;
      }
      out.link_drained[i] = d1.value_or(false) || d2.value_or(false);
      // Link drains carry natural symmetry (§4.3): both ends must agree.
      out.link_drain_disagreement[i] = d1 && d2 && *d1 != *d2;
    }
  });
}

}  // namespace hodor::core
